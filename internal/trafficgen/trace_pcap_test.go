package trafficgen

import (
	"bytes"
	"testing"

	"packetmill/internal/wire/pcapio"
)

func pcapTestTrace() *Trace {
	t := &Trace{}
	for i, n := range []int{60, 73, 1514} {
		f := make([]byte, n)
		for j := range f {
			f[j] = byte(i + j)
		}
		f[12], f[13] = 0x08, 0x00
		t.frames = append(t.frames, f)
		// Integer nanoseconds: exactly representable in both formats.
		t.ns = append(t.ns, float64(1_000_000+i*1_003))
	}
	return t
}

// TestTracePcapRoundTrip sends a trace through a nanosecond pcap and
// back: frames must be byte-identical and timestamps exact.
func TestTracePcapRoundTrip(t *testing.T) {
	for _, format := range []pcapio.Format{pcapio.FormatPcap, pcapio.FormatPcapNG} {
		src := pcapTestTrace()
		var buf bytes.Buffer
		if err := src.ToPcap(&buf, pcapio.WriterOptions{Format: format, Nanosecond: true}); err != nil {
			t.Fatalf("ToPcap: %v", err)
		}
		got, err := TraceFromPcap(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("TraceFromPcap: %v", err)
		}
		if got.Len() != src.Len() {
			t.Fatalf("format %d: %d frames, want %d", format, got.Len(), src.Len())
		}
		for i := range src.frames {
			if !bytes.Equal(got.frames[i], src.frames[i]) {
				t.Errorf("format %d: frame %d differs", format, i)
			}
			if got.ns[i] != src.ns[i] {
				t.Errorf("format %d: frame %d ts = %v, want %v", format, i, got.ns[i], src.ns[i])
			}
		}
	}
}

// TestReadAnyTrace sniffs both the native format and pcap.
func TestReadAnyTrace(t *testing.T) {
	src := pcapTestTrace()

	var native bytes.Buffer
	if _, err := src.WriteTo(&native); err != nil {
		t.Fatal(err)
	}
	var capture bytes.Buffer
	if err := src.ToPcap(&capture, pcapio.WriterOptions{Nanosecond: true}); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"native": native.Bytes(), "pcap": capture.Bytes()} {
		got, err := ReadAnyTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != src.Len() {
			t.Fatalf("%s: %d frames, want %d", name, got.Len(), src.Len())
		}
		for i := range src.frames {
			if !bytes.Equal(got.frames[i], src.frames[i]) {
				t.Errorf("%s: frame %d differs", name, i)
			}
		}
	}
}
