// Flow-churn workloads: sources that stress the connection-tracking
// state plane rather than the packet path. NewChurn holds a constant
// population of concurrent flows with Zipf-skewed popularity, each
// walking a full TCP lifecycle (SYN → data → FIN) before a fresh flow
// replaces it — the steady-state insertion/expiry mill a conntrack
// table must survive indefinitely. NewSYNFlood opens an endless stream
// of distinct half-open handshakes and never completes one — pure
// embryonic pressure. NewExpiryStorm opens flows in dense waves
// separated by silence, so every wave's timers fire together — the
// mass-expiry storm the timer wheel's sweep budget must amortize.
//
// Unlike the campus generator there is no per-flow template: a churn
// population can be millions of flows, so frames are minted by patching
// one shared template's addresses, ports, and TCP flags per packet.
// Every source is deterministic from its seed: same seed, byte-identical
// frame/timestamp stream.
package trafficgen

import (
	"packetmill/internal/netpkt"
	"packetmill/internal/simrand"
)

// ChurnConfig shapes a flow-churn source.
type ChurnConfig struct {
	Config
	// Concurrent is the live-flow population held at steady state
	// (default 1024).
	Concurrent int
	// FlowPackets is the mean data-packet count per flow lifetime
	// (default 12); actual lengths are uniform in [1, 2*FlowPackets).
	FlowPackets int
	// ZipfS is the popularity skew across the live population
	// (default 1.2, the campus generator's exponent).
	ZipfS float64
	// FrameSize is the fixed frame size (default 64 — churn stresses
	// state, not bandwidth).
	FrameSize int
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	c.Config = c.Config.withDefaults()
	if c.Concurrent <= 0 {
		c.Concurrent = 1024
	}
	if c.FlowPackets <= 0 {
		c.FlowPackets = 12
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.FrameSize < 64 {
		c.FrameSize = 64
	}
	return c
}

// Flow lifecycle phases.
const (
	phaseSyn = iota // next packet is the SYN
	phaseAck        // next packet completes the handshake
	phaseData
	phaseFin
)

// churnFlow is one live slot in the population.
type churnFlow struct {
	id    uint64
	proto uint8
	phase uint8
	left  int // data packets remaining before FIN
}

// Churn produces the flow-churn stream. It implements Source.
type Churn struct {
	cfg    ChurnConfig
	rng    *simrand.Rand
	zipf   *simrand.Zipf
	slots  []churnFlow
	nextID uint64

	// synOnly turns every packet into a fresh half-open SYN (SYN flood).
	synOnly bool
	// forceTCP pins every minted flow to TCP (flood/storm modes).
	forceTCP bool
	// waveSize > 0 groups flow openings into dense waves separated by
	// silenceNS of idle wire (expiry storm).
	waveSize  int
	silenceNS float64
	inWave    int

	tcpTmpl, udpTmpl []byte
	scratch          []byte
	produced         int
	clockNS          float64

	// Opened/Completed count flow lifecycle edges, for test assertions.
	Opened, Completed uint64
}

func newChurn(cfg ChurnConfig) *Churn {
	cfg = cfg.withDefaults()
	if cfg.RateGbps <= 0 {
		panic("trafficgen: RateGbps must be positive")
	}
	const maxFrame = 1514
	c := &Churn{
		cfg:     cfg,
		rng:     simrand.New(cfg.Seed),
		scratch: make([]byte, 2048),
	}
	c.tcpTmpl = netpkt.BuildTCP(make([]byte, maxFrame), netpkt.TCPPacketSpec{
		SrcMAC: cfg.SrcMAC, DstMAC: cfg.DstMAC,
		SrcIP: cfg.SrcNet, DstIP: cfg.DstNet,
		SrcPort: 1024, DstPort: 80, TotalLen: maxFrame,
	})
	c.udpTmpl = netpkt.BuildUDP(make([]byte, maxFrame), netpkt.UDPPacketSpec{
		SrcMAC: cfg.SrcMAC, DstMAC: cfg.DstMAC,
		SrcIP: cfg.SrcNet, DstIP: cfg.DstNet,
		SrcPort: 1024, DstPort: 80, TotalLen: maxFrame,
	})
	if cfg.Concurrent > 1 {
		c.zipf = simrand.NewZipf(c.rng, cfg.ZipfS, 1, uint64(cfg.Concurrent-1))
	}
	c.slots = make([]churnFlow, cfg.Concurrent)
	return c
}

func (c *Churn) fill() {
	for i := range c.slots {
		c.slots[i] = c.openFlow()
	}
}

// NewChurn returns the steady-state flow-churn source: Concurrent live
// flows, Zipf-popular, each opening, exchanging data, and closing, with
// finished flows replaced by fresh 5-tuples.
func NewChurn(cfg ChurnConfig) *Churn {
	c := newChurn(cfg)
	c.fill()
	return c
}

// NewSYNFlood returns an attack stream of distinct never-completing
// SYNs — every frame opens a new embryonic flow.
func NewSYNFlood(cfg Config) *Churn {
	c := newChurn(ChurnConfig{Config: cfg, Concurrent: 1})
	c.synOnly = true
	c.forceTCP = true
	c.fill()
	return c
}

// NewExpiryStorm returns a source that opens flows in waves of wave
// back-to-back handshakes, then goes silent for silenceNS before the
// next wave — so each wave's idle timers all mature together.
func NewExpiryStorm(cfg Config, wave int, silenceNS float64) *Churn {
	if wave <= 0 {
		wave = 1024
	}
	c := newChurn(ChurnConfig{Config: cfg, Concurrent: 1, FlowPackets: 1})
	c.waveSize = wave
	c.silenceNS = silenceNS
	c.forceTCP = true
	c.fill()
	return c
}

// openFlow mints a fresh flow in its opening phase.
func (c *Churn) openFlow() churnFlow {
	f := churnFlow{id: c.nextID, phase: phaseSyn}
	c.nextID++
	c.Opened++
	if c.forceTCP || c.rng.Float64() < c.cfg.TCPShare {
		f.proto = netpkt.ProtoTCP
	} else {
		f.proto = netpkt.ProtoUDP
		f.phase = phaseData // no handshake to perform
	}
	f.left = 1 + c.rng.Intn(2*c.cfg.FlowPackets)
	return f
}

// tuple derives flow id i's deterministic 5-tuple endpoints. The low 16
// bits walk the /16 host space; higher bits rotate the source port, so
// populations far beyond 65536 stay distinct.
func (c *Churn) tuple(i uint64) (src, dst netpkt.IPv4, sport, dport uint16) {
	src = c.cfg.SrcNet
	src[2], src[3] = byte(i>>8), byte(i)
	dst = c.cfg.DstNet
	dst[2], dst[3] = byte((i*7)>>8), byte(i*7)
	sport = uint16(1024 + (i>>16)%60000)
	dport = 80
	return
}

// Remaining implements Source.
func (c *Churn) Remaining() int { return c.cfg.Count - c.produced }

// Next implements Source.
func (c *Churn) Next() ([]byte, float64, bool) {
	if c.produced >= c.cfg.Count {
		return nil, 0, false
	}
	var f *churnFlow
	var slot int
	switch {
	case c.synOnly:
		c.slots[0] = c.openFlow() // forceTCP: always a fresh SYN
		f = &c.slots[0]
	case c.waveSize > 0:
		if c.inWave == c.waveSize {
			c.inWave = 0
			c.clockNS += c.silenceNS
		}
		f = &c.slots[0]
	default:
		if c.zipf != nil {
			slot = int(c.zipf.Uint64())
		}
		f = &c.slots[slot]
	}

	var flags uint8
	done := false
	switch f.phase {
	case phaseSyn:
		flags = netpkt.TCPFlagSYN
		f.phase = phaseAck
	case phaseAck:
		flags = netpkt.TCPFlagACK
		f.phase = phaseData
		if c.waveSize > 0 {
			// A wave flow is done once established: it then goes idle
			// and waits for the timer wheel.
			done = true
			c.inWave++
		}
	case phaseData:
		flags = netpkt.TCPFlagACK | netpkt.TCPFlagPSH
		f.left--
		if f.left <= 0 {
			if f.proto == netpkt.ProtoTCP {
				f.phase = phaseFin
			} else {
				done = true
			}
		}
	case phaseFin:
		flags = netpkt.TCPFlagFIN | netpkt.TCPFlagACK
		done = true
	}

	frame := c.mint(f.id, f.proto, flags)
	if done {
		c.Completed++
		*f = c.openFlow()
	}
	ns := c.clockNS
	c.clockNS += float64(len(frame)+WireOverheadBytes) * 8 / c.cfg.RateGbps
	c.produced++
	return frame, ns, true
}

// mint patches the shared template into a frame for flow id/proto with
// the given TCP flags, recomputing the IP checksum.
func (c *Churn) mint(id uint64, proto uint8, flags uint8) []byte {
	size := c.cfg.FrameSize
	frame := c.scratch[:size]
	if proto == netpkt.ProtoTCP {
		copy(frame, c.tcpTmpl[:size])
	} else {
		copy(frame, c.udpTmpl[:size])
	}
	src, dst, sport, dport := c.tuple(id)
	ip := frame[netpkt.EtherHdrLen:]
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	l4 := ip[netpkt.IPv4HdrLen:]
	l4[0], l4[1] = byte(sport>>8), byte(sport)
	l4[2], l4[3] = byte(dport>>8), byte(dport)
	if proto == netpkt.ProtoTCP {
		l4[13] = flags
	}
	c.patchIP(frame, proto, size)
	return frame
}

// patchIP fixes the IP total length and checksum after address patches,
// and the UDP length field for datagrams (mirrors Gen.patchLengths).
func (c *Churn) patchIP(frame []byte, proto uint8, size int) {
	ip := frame[netpkt.EtherHdrLen:]
	ipLen := size - netpkt.EtherHdrLen
	ip[2] = byte(ipLen >> 8)
	ip[3] = byte(ipLen)
	ip[10], ip[11] = 0, 0
	ck := netpkt.Checksum(ip[:netpkt.IPv4HdrLen], 0)
	ip[10] = byte(ck >> 8)
	ip[11] = byte(ck)
	if proto == netpkt.ProtoUDP {
		ul := ipLen - netpkt.IPv4HdrLen
		udp := ip[netpkt.IPv4HdrLen:]
		udp[4] = byte(ul >> 8)
		udp[5] = byte(ul)
	}
}
