package trafficgen

import (
	"bytes"
	"testing"

	"packetmill/internal/netpkt"
)

func churnCfg(count int) ChurnConfig {
	return ChurnConfig{
		Config:      Config{Seed: 42, RateGbps: 10, Count: count},
		Concurrent:  64,
		FlowPackets: 8,
	}
}

// drain pulls the whole stream, copying frames (the Source contract
// only keeps them valid until the next call).
func drain(t *testing.T, s Source) ([][]byte, []float64) {
	t.Helper()
	var frames [][]byte
	var times []float64
	for {
		f, ns, ok := s.Next()
		if !ok {
			break
		}
		frames = append(frames, append([]byte(nil), f...))
		times = append(times, ns)
	}
	return frames, times
}

// Same seed, byte-identical trace — the determinism contract every
// reproducible exhibit depends on.
func TestChurnDeterministic(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func() Source
	}{
		{"churn", func() Source { return NewChurn(churnCfg(5000)) }},
		{"synflood", func() Source {
			return NewSYNFlood(Config{Seed: 7, RateGbps: 10, Count: 5000})
		}},
		{"expiry-storm", func() Source {
			return NewExpiryStorm(Config{Seed: 7, RateGbps: 10, Count: 5000}, 256, 1e9)
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			fa, ta := drain(t, mk.make())
			fb, tb := drain(t, mk.make())
			if len(fa) != len(fb) || len(fa) == 0 {
				t.Fatalf("lengths differ: %d vs %d", len(fa), len(fb))
			}
			for i := range fa {
				if !bytes.Equal(fa[i], fb[i]) {
					t.Fatalf("frame %d differs between runs", i)
				}
				if ta[i] != tb[i] {
					t.Fatalf("timestamp %d differs: %v vs %v", i, ta[i], tb[i])
				}
			}
		})
	}
}

// tcpFlagsOf extracts the TCP flag byte (frames are fixed 64 B, no IP
// options).
func tcpFlagsOf(f []byte) (uint8, bool) {
	if f[netpkt.EtherHdrLen+9] != netpkt.ProtoTCP {
		return 0, false
	}
	return f[netpkt.EtherHdrLen+netpkt.IPv4HdrLen+13], true
}

func flowKeyOf(f []byte) string {
	ip := f[netpkt.EtherHdrLen:]
	return string(ip[12:20]) + string(ip[20:24])
}

// Every TCP flow in the churn stream must open with exactly one SYN and
// close with exactly one FIN, and the live population must stay at the
// configured concurrency.
func TestChurnLifecycle(t *testing.T) {
	cfg := churnCfg(20000)
	c := NewChurn(cfg)
	frames, _ := drain(t, c)
	if len(frames) != cfg.Count {
		t.Fatalf("produced %d frames, want %d", len(frames), cfg.Count)
	}
	syns := map[string]int{}
	fins := map[string]int{}
	for _, f := range frames {
		flags, tcp := tcpFlagsOf(f)
		if !tcp {
			continue
		}
		k := flowKeyOf(f)
		if flags&netpkt.TCPFlagSYN != 0 {
			syns[k]++
		}
		if flags&netpkt.TCPFlagFIN != 0 {
			fins[k]++
		}
	}
	for k, n := range syns {
		if n != 1 {
			t.Fatalf("flow %x saw %d SYNs", k, n)
		}
	}
	for k, n := range fins {
		if n != 1 {
			t.Fatalf("flow %x saw %d FINs", k, n)
		}
		if syns[k] != 1 {
			t.Fatalf("flow %x closed without opening", k)
		}
	}
	if c.Completed == 0 {
		t.Fatal("no flows completed — churn is not churning")
	}
	// Live population == opened - completed == Concurrent.
	if live := c.Opened - c.Completed; live != uint64(cfg.Concurrent) {
		t.Fatalf("live population %d, want %d", live, cfg.Concurrent)
	}
}

// A SYN flood must be all SYNs, every flow distinct — never a repeat,
// never an established connection.
func TestSYNFloodAllDistinctSYNs(t *testing.T) {
	frames, _ := drain(t, NewSYNFlood(Config{Seed: 3, RateGbps: 10, Count: 8192}))
	seen := map[string]bool{}
	for i, f := range frames {
		flags, tcp := tcpFlagsOf(f)
		if !tcp || flags != netpkt.TCPFlagSYN {
			t.Fatalf("frame %d: flags %#x, want pure SYN", i, flags)
		}
		k := flowKeyOf(f)
		if seen[k] {
			t.Fatalf("frame %d repeats flow %x", i, k)
		}
		seen[k] = true
	}
}

// An expiry storm's waves must be separated by at least the configured
// silence, and each wave's flows must complete their handshakes (so the
// tracker holds established entries that then all age out together).
func TestExpiryStormWaves(t *testing.T) {
	const wave, silence = 128, 5e8
	frames, times := drain(t, NewExpiryStorm(
		Config{Seed: 9, RateGbps: 10, Count: wave * 2 * 3}, wave, silence))
	gaps := 0
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] >= silence {
			gaps++
		}
	}
	if gaps != 2 {
		t.Fatalf("saw %d silence gaps, want 2 (3 waves)", gaps)
	}
	// Each flow: exactly one SYN and one bare ACK.
	acks := map[string]int{}
	for _, f := range frames {
		flags, tcp := tcpFlagsOf(f)
		if !tcp {
			t.Fatal("non-TCP frame in storm")
		}
		if flags == netpkt.TCPFlagACK {
			acks[flowKeyOf(f)]++
		}
	}
	for k, n := range acks {
		if n != 1 {
			t.Fatalf("flow %x saw %d handshake ACKs", k, n)
		}
	}
	if len(acks) != wave*3 {
		t.Fatalf("%d flows completed handshakes, want %d", len(acks), wave*3)
	}
}

// Frames must carry valid IPv4 header checksums after per-packet
// template patching.
func TestChurnChecksums(t *testing.T) {
	frames, _ := drain(t, NewChurn(churnCfg(2000)))
	for i, f := range frames {
		if !netpkt.VerifyIPv4Checksum(f[netpkt.EtherHdrLen:]) {
			t.Fatalf("frame %d: bad IP checksum", i)
		}
	}
}
