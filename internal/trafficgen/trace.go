// Trace capture and replay: the paper replays the first two million
// packets of its campus capture 25 times. Trace records any Source into
// memory, replays it N times with a continuous clock, and round-trips
// through a simple binary format (a pcap stand-in the tools can exchange).
package trafficgen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Trace is a recorded packet sequence with arrival timestamps.
type Trace struct {
	frames [][]byte
	ns     []float64
}

// Record drains src into a Trace (at most limit frames; 0 = all).
func Record(src Source, limit int) *Trace {
	t := &Trace{}
	for {
		if limit > 0 && len(t.frames) >= limit {
			break
		}
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		cp := make([]byte, len(frame))
		copy(cp, frame)
		t.frames = append(t.frames, cp)
		t.ns = append(t.ns, ns)
	}
	return t
}

// Len returns the number of recorded frames.
func (t *Trace) Len() int { return len(t.frames) }

// Bytes returns the total payload bytes.
func (t *Trace) Bytes() uint64 {
	var b uint64
	for _, f := range t.frames {
		b += uint64(len(f))
	}
	return b
}

// Duration returns the capture's time span in ns.
func (t *Trace) Duration() float64 {
	if len(t.ns) < 2 {
		return 0
	}
	return t.ns[len(t.ns)-1] - t.ns[0]
}

// Replay returns a Source that plays the trace `times` times back to
// back; the clock keeps running across repetitions (the inter-repetition
// gap equals the trace's mean inter-arrival).
func (t *Trace) Replay(times int) Source {
	if times < 1 {
		times = 1
	}
	gap := 0.0
	if len(t.ns) > 1 {
		gap = t.Duration() / float64(len(t.ns)-1)
	}
	return &replaySource{trace: t, times: times, gap: gap}
}

type replaySource struct {
	trace  *Trace
	times  int
	gap    float64
	rep    int
	idx    int
	offset float64
}

// Next implements Source.
func (r *replaySource) Next() ([]byte, float64, bool) {
	if r.rep >= r.times {
		return nil, 0, false
	}
	t := r.trace
	frame := t.frames[r.idx]
	ns := r.offset + (t.ns[r.idx] - t.ns[0])
	r.idx++
	if r.idx >= len(t.frames) {
		r.idx = 0
		r.rep++
		r.offset = ns + r.gap
	}
	return frame, ns, true
}

// Remaining implements Source.
func (r *replaySource) Remaining() int {
	if r.rep >= r.times {
		return 0
	}
	return (r.times-r.rep)*r.trace.Len() - r.idx
}

// Binary trace format: "PMTR" magic, u32 version, u32 count, then per
// frame u32 length + f64 timestamp + bytes. Little endian throughout.
const traceMagic = "PMTR"

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(traceMagic); err != nil {
		return written, err
	}
	written += 4
	if err := put(uint32(1)); err != nil {
		return written, err
	}
	if err := put(uint32(len(t.frames))); err != nil {
		return written, err
	}
	for i, f := range t.frames {
		if err := put(uint32(len(f))); err != nil {
			return written, err
		}
		if err := put(math.Float64bits(t.ns[i])); err != nil {
			return written, err
		}
		n, err := bw.Write(f)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trafficgen: trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trafficgen: bad trace magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("trafficgen: unsupported trace version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("trafficgen: implausible frame count %d", count)
	}
	// Never trust the header for the initial allocation — a forged count
	// must not reserve gigabytes before the payload reads fail.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	t := &Trace{frames: make([][]byte, 0, capHint), ns: make([]float64, 0, capHint)}
	for i := uint32(0); i < count; i++ {
		var ln uint32
		var tsBits uint64
		if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
			return nil, fmt.Errorf("trafficgen: frame %d length: %w", i, err)
		}
		if ln > 64<<10 {
			return nil, fmt.Errorf("trafficgen: frame %d implausibly long (%d)", i, ln)
		}
		if err := binary.Read(br, binary.LittleEndian, &tsBits); err != nil {
			return nil, err
		}
		f := make([]byte, ln)
		if _, err := io.ReadFull(br, f); err != nil {
			return nil, fmt.Errorf("trafficgen: frame %d payload: %w", i, err)
		}
		t.frames = append(t.frames, f)
		t.ns = append(t.ns, math.Float64frombits(tsBits))
	}
	return t, nil
}
