package trafficgen

import (
	"math"
	"testing"

	"packetmill/internal/netpkt"
)

func baseCfg() Config {
	return Config{Seed: 1, Flows: 64, RateGbps: 100, Count: 1000}
}

// ipOnlyCfg disables the ARP share so every frame is IPv4 (fixed-size
// tests depend on uniform sizes; ARP requests are always 64 B).
func ipOnlyCfg() Config {
	cfg := baseCfg()
	cfg.TCPShare, cfg.UDPShare, cfg.ICMPShare = 0.9, 0.08, 0.02
	return cfg
}

func TestFixedSizeFrames(t *testing.T) {
	g := NewFixedSize(ipOnlyCfg(), 256)
	n := 0
	for {
		frame, _, ok := g.Next()
		if !ok {
			break
		}
		if len(frame) != 256 {
			t.Fatalf("frame %d has size %d", n, len(frame))
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("produced %d", n)
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining %d", g.Remaining())
	}
}

func TestPacingMatchesRate(t *testing.T) {
	g := NewFixedSize(ipOnlyCfg(), 1000)
	_, t0, _ := g.Next()
	var last float64
	for {
		_, ns, ok := g.Next()
		if !ok {
			break
		}
		last = ns
	}
	// 999 gaps of (1000+20)*8/100 = 81.6 ns.
	want := t0 + 999*81.6
	if math.Abs(last-want) > 1 {
		t.Fatalf("last arrival %v, want %v", last, want)
	}
}

func TestDeterminism(t *testing.T) {
	g1, g2 := NewCampus(baseCfg()), NewCampus(baseCfg())
	for i := 0; i < 500; i++ {
		f1, ns1, ok1 := g1.Next()
		f2, ns2, ok2 := g2.Next()
		if ok1 != ok2 || ns1 != ns2 || string(f1) != string(f2) {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestCampusMeanSize(t *testing.T) {
	if m := CampusMeanSize(); math.Abs(m-981) > 25 {
		t.Fatalf("campus mix mean = %v, want ≈981", m)
	}
	cfg := baseCfg()
	cfg.Count = 50000
	g := NewCampus(cfg)
	var total, n float64
	for {
		frame, _, ok := g.Next()
		if !ok {
			break
		}
		total += float64(len(frame))
		n++
	}
	if got := total / n; math.Abs(got-981) > 40 {
		t.Fatalf("empirical mean size = %v, want ≈981", got)
	}
}

func TestFramesAreValidPackets(t *testing.T) {
	cfg := baseCfg()
	cfg.Count = 2000
	g := NewCampus(cfg)
	protos := map[uint8]int{}
	arp := 0
	for {
		frame, _, ok := g.Next()
		if !ok {
			break
		}
		eh, err := netpkt.ParseEther(frame)
		if err != nil {
			t.Fatal(err)
		}
		switch eh.EtherType {
		case netpkt.EtherTypeARP:
			arp++
			if _, err := netpkt.ParseARP(frame[netpkt.EtherHdrLen:]); err != nil {
				t.Fatal(err)
			}
		case netpkt.EtherTypeIPv4:
			ip := frame[netpkt.EtherHdrLen:]
			if !netpkt.VerifyIPv4Checksum(ip) {
				t.Fatal("generated frame fails IP checksum")
			}
			h, _, err := netpkt.ParseIPv4Header(ip)
			if err != nil {
				t.Fatal(err)
			}
			if int(h.TotalLen) != len(frame)-netpkt.EtherHdrLen {
				t.Fatalf("IP total length %d vs frame %d", h.TotalLen, len(frame))
			}
			protos[h.Protocol]++
		default:
			t.Fatalf("unexpected ethertype %#x", eh.EtherType)
		}
	}
	if protos[netpkt.ProtoTCP] == 0 || protos[netpkt.ProtoUDP] == 0 {
		t.Fatalf("protocol mix missing: %v", protos)
	}
	if arp == 0 {
		t.Fatal("no ARP frames in campus mix")
	}
	if protos[netpkt.ProtoTCP] < protos[netpkt.ProtoUDP] {
		t.Fatalf("TCP (%d) should dominate UDP (%d)", protos[netpkt.ProtoTCP], protos[netpkt.ProtoUDP])
	}
}

func TestUDPLengthPatched(t *testing.T) {
	cfg := baseCfg()
	cfg.TCPShare, cfg.UDPShare, cfg.ICMPShare = 0, 1, 0
	g := NewFixedSize(cfg, 200)
	frame, _, _ := g.Next()
	uh, err := netpkt.ParseUDP(frame[netpkt.EtherHdrLen+netpkt.IPv4HdrLen:])
	if err != nil {
		t.Fatal(err)
	}
	if int(uh.Length) != 200-netpkt.EtherHdrLen-netpkt.IPv4HdrLen {
		t.Fatalf("udp length %d", uh.Length)
	}
}

func TestFlowSkew(t *testing.T) {
	cfg := baseCfg()
	cfg.Count = 20000
	cfg.TCPShare, cfg.UDPShare, cfg.ICMPShare = 1, 0, 0 // no ARP noise
	g := NewFixedSize(cfg, 128)
	counts := map[string]int{}
	for {
		frame, _, ok := g.Next()
		if !ok {
			break
		}
		key := string(frame[26:34]) // src+dst IP
		counts[key]++
	}
	if len(counts) < 16 {
		t.Fatalf("only %d distinct flows", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20000/16 {
		t.Fatalf("no Zipf skew: hottest flow %d/20000", max)
	}
}

func TestUniformSizes(t *testing.T) {
	g := NewUniformSizes(ipOnlyCfg(), []int{64, 1500})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		frame, _, ok := g.Next()
		if !ok {
			break
		}
		seen[len(frame)] = true
	}
	if !seen[64] || !seen[1500] {
		t.Fatalf("sizes seen: %v", seen)
	}
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixedSize(Config{Count: 1}, 64)
}

func TestSizeClamping(t *testing.T) {
	g := NewFixedSize(ipOnlyCfg(), 10) // below minimum
	frame, _, _ := g.Next()
	if len(frame) != 64 {
		t.Fatalf("size %d, want clamped 64", len(frame))
	}
	g2 := NewFixedSize(ipOnlyCfg(), 9000) // jumbo clamped
	frame2, _, _ := g2.Next()
	if len(frame2) != 1514 {
		t.Fatalf("size %d, want clamped 1514", len(frame2))
	}
}
