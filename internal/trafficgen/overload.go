// Overload workloads: sources that stress the control plane rather than
// model a trace. Merge interleaves streams by arrival time (the building
// block for class mixes), PriorityMix layers a high-precedence stream on
// the campus mix, Burst re-times any source into on/off trains, and
// Flood compresses pacing so the same frames arrive at a multiple of the
// configured rate — the "offered = N× capacity" knob the overload
// exhibits sweep.
package trafficgen

import "math"

// Merge interleaves several sources by arrival time. The merged stream
// is deterministic given its inputs; frames remain valid only until the
// next call, as the Source contract requires.
type Merge struct {
	srcs  []Source
	heads []srcHead
	last  int // head to re-pull on the next call (-1 = none)
}

type srcHead struct {
	frame []byte
	ns    float64
	ok    bool
}

// NewMerge builds the time-ordered interleaving of srcs.
func NewMerge(srcs ...Source) *Merge {
	m := &Merge{srcs: srcs, heads: make([]srcHead, len(srcs)), last: -1}
	for i := range srcs {
		m.pull(i)
	}
	return m
}

func (m *Merge) pull(i int) {
	f, ns, ok := m.srcs[i].Next()
	m.heads[i] = srcHead{frame: f, ns: ns, ok: ok}
}

// Next implements Source: the earliest pending head wins.
func (m *Merge) Next() ([]byte, float64, bool) {
	// The previously returned frame lives in its source's scratch; only
	// now that the caller is done with it may that source advance.
	if m.last >= 0 {
		m.pull(m.last)
		m.last = -1
	}
	best, bestNS := -1, math.Inf(1)
	for i, h := range m.heads {
		if h.ok && h.ns < bestNS {
			best, bestNS = i, h.ns
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	m.last = best
	return m.heads[best].frame, m.heads[best].ns, true
}

// Remaining implements Source.
func (m *Merge) Remaining() int {
	n := 0
	for i, s := range m.srcs {
		n += s.Remaining()
		if m.heads[i].ok && i != m.last {
			n++
		}
	}
	if m.last >= 0 {
		n += 1 // the un-pulled replacement for the frame just returned
	}
	return n
}

// NewPriorityMix layers a high-precedence campus stream over the normal
// one: hiShare of the frames (and of the wire rate) carry hiTOS in their
// IPv4 TOS byte, so the overload priority shedder protects them while
// the best-effort remainder sheds first. hiTOS 0xE0 maps to class 7.
func NewPriorityMix(cfg Config, hiShare float64, hiTOS uint8) Source {
	cfg = cfg.withDefaults()
	if hiShare <= 0 || hiShare >= 1 {
		hi := cfg
		if hiShare >= 1 {
			hi.TOS = hiTOS
		}
		return NewCampus(hi)
	}
	hi := cfg
	hi.TOS = hiTOS
	hi.Count = int(float64(cfg.Count)*hiShare + 0.5)
	hi.RateGbps = cfg.RateGbps * hiShare
	hi.Seed = cfg.Seed ^ 0x9d10
	lo := cfg
	lo.Count = cfg.Count - hi.Count
	lo.RateGbps = cfg.RateGbps * (1 - hiShare)
	return NewMerge(NewCampus(hi), NewCampus(lo))
}

// Burst re-times an inner source into on/off trains: frames arrive
// back-to-back (intraNS apart) in groups of n, with gapNS of silence
// between groups. The overload state machine's dwell hysteresis is what
// keeps trains like these from flapping the health state.
type Burst struct {
	src     Source
	n       int
	gapNS   float64
	intraNS float64
	i       int
	clockNS float64
}

// NewBurst wraps src; n is the burst length, gapNS the inter-burst gap.
func NewBurst(src Source, n int, gapNS float64) *Burst {
	if n <= 0 {
		n = 32
	}
	return &Burst{src: src, n: n, gapNS: gapNS, intraNS: 10}
}

// Next implements Source.
func (b *Burst) Next() ([]byte, float64, bool) {
	f, _, ok := b.src.Next()
	if !ok {
		return nil, 0, false
	}
	if b.i == b.n {
		b.i = 0
		b.clockNS += b.gapNS
	}
	ns := b.clockNS + float64(b.i)*b.intraNS
	b.i++
	if b.i == b.n {
		b.clockNS = ns
	}
	return f, ns, true
}

// Remaining implements Source.
func (b *Burst) Remaining() int { return b.src.Remaining() }

// Flood compresses an inner source's pacing by a constant factor: the
// same frames arrive in 1/factor the time, offering factor× the
// configured wire rate. This is the sustained-overload knob: factor 4
// against a saturated DUT is the acceptance exhibit's 4× load.
type Flood struct {
	src    Source
	factor float64
}

// NewFlood wraps src with pacing compressed by factor (>1 overloads).
func NewFlood(src Source, factor float64) *Flood {
	if factor <= 0 {
		factor = 1
	}
	return &Flood{src: src, factor: factor}
}

// Next implements Source.
func (f *Flood) Next() ([]byte, float64, bool) {
	frame, ns, ok := f.src.Next()
	return frame, ns / f.factor, ok
}

// Remaining implements Source.
func (f *Flood) Remaining() int { return f.src.Remaining() }
