// Capture interchange: a Trace converts to and from the pcap/pcapng
// containers in internal/wire/pcapio, so recorded workloads can leave for
// Wireshark/tcpdump and real captures can come back as replay sources.
//
// The native trace format (WriteTo/ReadTrace) remains the tools'
// lossless interchange: its "PMTR" magic, u32 version (currently 1) and
// u32 frame count head a flat little-endian sequence of
// {u32 length, f64 timestamp-ns, payload} records. Timestamps there are
// float64 nanoseconds, exactly as the generators produce them; pcap
// necessarily rounds to integer nanoseconds (or truncates to
// microseconds under classic µs resolution), so a trace whose
// timestamps carry sub-nanosecond fractions round-trips through PMTR
// but only approximately through pcap.
package trafficgen

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"packetmill/internal/wire/pcapio"
)

// ToPcap writes the trace as a capture file. Timestamps are rounded to
// the nearest nanosecond; pass o.Nanosecond=true to keep them (classic
// microsecond pcap truncates further).
func (t *Trace) ToPcap(w io.Writer, o pcapio.WriterOptions) error {
	pw, err := pcapio.NewWriter(w, o)
	if err != nil {
		return err
	}
	for i, f := range t.frames {
		if err := pw.WriteFrame(f, int64(math.Round(t.ns[i]))); err != nil {
			return fmt.Errorf("trafficgen: frame %d: %w", i, err)
		}
	}
	return pw.Flush()
}

// TraceFromPcap reads an entire pcap or pcapng capture into a Trace.
func TraceFromPcap(r io.Reader) (*Trace, error) {
	pr, err := pcapio.NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	for {
		frame, tsNS, err := pr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(frame))
		copy(cp, frame)
		t.frames = append(t.frames, cp)
		t.ns = append(t.ns, float64(tsNS))
	}
}

// ReadAnyTrace sniffs the leading magic and reads either the native PMTR
// format or a pcap/pcapng capture — the commands accept both.
func ReadAnyTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trafficgen: trace magic: %w", err)
	}
	if string(magic) == traceMagic {
		return ReadTrace(br)
	}
	return TraceFromPcap(br)
}
