package trafficgen

import (
	"bytes"
	"testing"
)

func recordCampus(t *testing.T, n int) *Trace {
	t.Helper()
	cfg := Config{Seed: 3, Flows: 32, RateGbps: 100, Count: n}
	return Record(NewCampus(cfg), 0)
}

func TestRecordCapturesEverything(t *testing.T) {
	tr := recordCampus(t, 500)
	if tr.Len() != 500 {
		t.Fatalf("recorded %d", tr.Len())
	}
	if tr.Bytes() == 0 || tr.Duration() <= 0 {
		t.Fatalf("bytes=%d duration=%v", tr.Bytes(), tr.Duration())
	}
}

func TestRecordLimit(t *testing.T) {
	cfg := Config{Seed: 3, Flows: 8, RateGbps: 100, Count: 1000}
	tr := Record(NewCampus(cfg), 100)
	if tr.Len() != 100 {
		t.Fatalf("limit ignored: %d", tr.Len())
	}
}

func TestReplayRepeatsWithContinuousClock(t *testing.T) {
	tr := recordCampus(t, 100)
	src := tr.Replay(3)
	if src.Remaining() != 300 {
		t.Fatalf("remaining %d", src.Remaining())
	}
	var last float64 = -1
	count := 0
	var firstFrame []byte
	for {
		frame, ns, ok := src.Next()
		if !ok {
			break
		}
		if count == 0 {
			firstFrame = append([]byte{}, frame...)
		}
		if count == 100 {
			// First frame of the second repetition: identical bytes.
			if !bytes.Equal(frame, firstFrame) {
				t.Fatal("repetition changed frame contents")
			}
		}
		if ns < last {
			t.Fatalf("clock went backwards at %d: %v < %v", count, ns, last)
		}
		last = ns
		count++
	}
	if count != 300 {
		t.Fatalf("replayed %d", count)
	}
	// Total replay time ≈ 3× capture duration.
	if last < 2.5*tr.Duration() {
		t.Fatalf("replay duration %v vs capture %v", last, tr.Duration())
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := recordCampus(t, 250)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Bytes() != tr.Bytes() {
		t.Fatalf("round trip: %d/%d bytes %d/%d", got.Len(), tr.Len(), got.Bytes(), tr.Bytes())
	}
	for i := range tr.frames {
		if !bytes.Equal(tr.frames[i], got.frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
		if tr.ns[i] != got.ns[i] {
			t.Fatalf("timestamp %d differs", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not a trace at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated payload.
	tr := recordCampus(t, 10)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewBuffer(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReplaySingleFrameTrace(t *testing.T) {
	cfg := Config{Seed: 3, Flows: 1, RateGbps: 100, Count: 1, TCPShare: 1}
	tr := Record(NewFixedSize(cfg, 128), 0)
	src := tr.Replay(2)
	n := 0
	for {
		_, _, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("replayed %d", n)
	}
}
