package trafficgen

import (
	"bytes"
	"testing"
)

// FuzzReadTrace guards the binary trace reader against corrupt input:
// errors are fine, panics and unbounded allocations are not.
func FuzzReadTrace(f *testing.F) {
	tr := Record(NewCampus(Config{Seed: 1, RateGbps: 100, Count: 20}), 0)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("PMTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully read trace must round-trip byte-identically.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		re, err := ReadTrace(&out)
		if err != nil || re.Len() != got.Len() {
			t.Fatalf("round trip: %v (%d vs %d)", err, re.Len(), got.Len())
		}
	})
}
