// Package trafficgen synthesizes the workloads of §4: fixed-size frame
// streams (§4.3, §4.6) and a campus-trace-like mix matching the published
// average packet size of 981 B, with Zipf-distributed flows and a
// realistic protocol blend. Every generator is deterministic from its
// seed, and paced like the paper's hardware generator: frames are offered
// at a configured wire rate with constant inter-arrival gaps.
//
// The real 28-minute campus trace is GDPR-bound and unpublished (paper
// Appendix B.2); this synthetic stand-in reproduces the properties the
// evaluation depends on — mean size, flow skew, header diversity — which
// is the substitution DESIGN.md documents.
package trafficgen

import (
	"packetmill/internal/netpkt"
	"packetmill/internal/simrand"
)

// WireOverheadBytes is the per-frame overhead on the wire (preamble, SFD,
// inter-frame gap) used when pacing against a link rate.
const WireOverheadBytes = 20

// Config shapes a generator.
type Config struct {
	Seed uint64
	// Flows is the number of distinct 5-tuples (Zipf-popular).
	Flows int
	// RateGbps is the offered wire rate. Required > 0.
	RateGbps float64
	// Count is the total number of frames to produce.
	Count int
	// SrcMAC/DstMAC address the DUT.
	SrcMAC, DstMAC netpkt.MAC
	// SrcNet/DstNet are /16 bases for flow addresses.
	SrcNet, DstNet netpkt.IPv4
	// TCPShare, UDPShare, ICMPShare set the protocol mix (must sum ≤ 1;
	// the remainder is ARP requests). Zero values default to the campus
	// blend 0.85/0.12/0.02.
	TCPShare, UDPShare, ICMPShare float64
	// VLANID, when non-zero, 802.1Q-tags every frame with this VLAN —
	// the workload that exposed the RSS queue-collapse bug (a NIC that
	// cannot hash past the tag pins all tagged traffic to queue 0).
	VLANID uint16
	// TOS, when non-zero, is written into every IPv4 header's TOS byte.
	// Its top three bits (IP precedence) are the traffic class the
	// overload control plane's priority shedder reads.
	TOS uint8
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Flows <= 0 {
		c.Flows = 1024
	}
	if c.Count <= 0 {
		c.Count = 100000
	}
	if c.SrcMAC == (netpkt.MAC{}) {
		c.SrcMAC = netpkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	}
	if c.DstMAC == (netpkt.MAC{}) {
		c.DstMAC = netpkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	}
	if c.SrcNet == (netpkt.IPv4{}) {
		c.SrcNet = netpkt.IPv4{10, 0, 0, 0}
	}
	if c.DstNet == (netpkt.IPv4{}) {
		c.DstNet = netpkt.IPv4{10, 1, 0, 0}
	}
	if c.TCPShare == 0 && c.UDPShare == 0 && c.ICMPShare == 0 {
		c.TCPShare, c.UDPShare, c.ICMPShare = 0.85, 0.12, 0.02
	}
	return c
}

// Source produces timestamped frames. Implementations return a frame
// slice that remains valid only until the next call.
type Source interface {
	// Next returns the next frame and its wire arrival time in ns.
	// ok is false when the source is exhausted.
	Next() (frame []byte, ns float64, ok bool)
	// Remaining reports frames left.
	Remaining() int
}

// flow is a precomputed 5-tuple template.
type flow struct {
	template []byte // full-size frame, headers prebuilt
	proto    uint8
}

// Gen is the common generator machinery.
type Gen struct {
	cfg         Config
	rng         *simrand.Rand
	zipf        *simrand.Zipf
	flows       []flow
	sizeOf      func(*simrand.Rand) int
	produced    int
	clockNS     float64
	scratch     []byte
	vlanScratch []byte
	arpEvery    int // every Nth packet becomes an ARP request (0 = never)
}

func newGen(cfg Config, sizeOf func(*simrand.Rand) int) *Gen {
	cfg = cfg.withDefaults()
	if cfg.RateGbps <= 0 {
		panic("trafficgen: RateGbps must be positive")
	}
	g := &Gen{
		cfg:     cfg,
		rng:     simrand.New(cfg.Seed),
		sizeOf:  sizeOf,
		scratch: make([]byte, 2048),
	}
	if cfg.Flows > 1 {
		g.zipf = simrand.NewZipf(g.rng, 1.2, 1, uint64(cfg.Flows-1))
	}
	arpShare := 1 - cfg.TCPShare - cfg.UDPShare - cfg.ICMPShare
	if arpShare > 0.0005 {
		g.arpEvery = int(1 / arpShare)
	}
	g.buildFlows()
	return g
}

func (g *Gen) buildFlows() {
	const maxFrame = 1514
	for i := 0; i < g.cfg.Flows; i++ {
		src := g.cfg.SrcNet
		src[2] = byte(i >> 8)
		src[3] = byte(i)
		dst := g.cfg.DstNet
		dst[2] = byte((i * 7) >> 8)
		dst[3] = byte(i * 7)
		sport := uint16(1024 + i%60000)
		dport := uint16(80)

		p := g.rng.Float64()
		var f flow
		switch {
		case p < g.cfg.TCPShare:
			f.proto = netpkt.ProtoTCP
			f.template = netpkt.BuildTCP(make([]byte, maxFrame), netpkt.TCPPacketSpec{
				SrcMAC: g.cfg.SrcMAC, DstMAC: g.cfg.DstMAC,
				SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport,
				TotalLen: maxFrame,
			})
		case p < g.cfg.TCPShare+g.cfg.UDPShare:
			f.proto = netpkt.ProtoUDP
			f.template = netpkt.BuildUDP(make([]byte, maxFrame), netpkt.UDPPacketSpec{
				SrcMAC: g.cfg.SrcMAC, DstMAC: g.cfg.DstMAC,
				SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: dport,
				TotalLen: maxFrame,
			})
		default:
			f.proto = netpkt.ProtoICMP
			f.template = netpkt.BuildICMPEcho(make([]byte, maxFrame),
				g.cfg.SrcMAC, g.cfg.DstMAC, src, dst, uint16(i), 0, maxFrame)
		}
		if g.cfg.TOS != 0 {
			// Stamp the template's TOS byte; patchLengths re-checksums the
			// IP header per emitted frame, so the stamp survives sizing.
			f.template[netpkt.EtherHdrLen+1] = g.cfg.TOS
		}
		g.flows = append(g.flows, f)
	}
}

// Remaining implements Source.
func (g *Gen) Remaining() int { return g.cfg.Count - g.produced }

// Next implements Source.
func (g *Gen) Next() ([]byte, float64, bool) {
	if g.produced >= g.cfg.Count {
		return nil, 0, false
	}
	size := g.sizeOf(g.rng)
	if size < 64 {
		size = 64
	}
	if size > 1514 {
		size = 1514
	}

	var frame []byte
	if g.arpEvery > 0 && g.produced%g.arpEvery == g.arpEvery-1 {
		frame = g.buildARP()
	} else {
		fi := 0
		if g.zipf != nil {
			fi = int(g.zipf.Uint64())
		}
		f := g.flows[fi]
		frame = g.scratch[:size]
		copy(frame, f.template[:size])
		g.patchLengths(frame, f.proto, size)
	}
	if g.cfg.VLANID != 0 {
		frame = g.tagVLAN(frame)
	}

	ns := g.clockNS
	g.clockNS += float64(len(frame)+WireOverheadBytes) * 8 / g.cfg.RateGbps
	g.produced++
	return frame, ns, true
}

// tagVLAN splices the 802.1Q shim after the MAC addresses, reusing a
// scratch buffer so tagging stays allocation-free in the hot path.
func (g *Gen) tagVLAN(frame []byte) []byte {
	if g.vlanScratch == nil {
		g.vlanScratch = make([]byte, 2048)
	}
	out := g.vlanScratch[:len(frame)+netpkt.VLANTagLen]
	copy(out, frame[:12])
	out[12], out[13] = byte(netpkt.EtherTypeVLAN>>8), byte(netpkt.EtherTypeVLAN&0xff)
	out[14], out[15] = byte(g.cfg.VLANID>>8), byte(g.cfg.VLANID&0xff)
	copy(out[16:], frame[12:])
	return out
}

// patchLengths fixes IP/L4 length fields and the IP checksum after the
// template was truncated to size.
func (g *Gen) patchLengths(frame []byte, proto uint8, size int) {
	ip := frame[netpkt.EtherHdrLen:]
	ipLen := size - netpkt.EtherHdrLen
	ip[2] = byte(ipLen >> 8)
	ip[3] = byte(ipLen)
	ip[10], ip[11] = 0, 0
	ck := netpkt.Checksum(ip[:netpkt.IPv4HdrLen], 0)
	ip[10] = byte(ck >> 8)
	ip[11] = byte(ck)
	if proto == netpkt.ProtoUDP {
		ul := ipLen - netpkt.IPv4HdrLen
		udp := ip[netpkt.IPv4HdrLen:]
		udp[4] = byte(ul >> 8)
		udp[5] = byte(ul)
	}
}

func (g *Gen) buildARP() []byte {
	frame := g.scratch[:64]
	for i := range frame {
		frame[i] = 0
	}
	netpkt.PutEther(frame, netpkt.EtherHeader{
		Dst:       netpkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       g.cfg.SrcMAC,
		EtherType: netpkt.EtherTypeARP,
	})
	sip := g.cfg.SrcNet
	sip[3] = 1
	tip := g.cfg.DstNet
	tip[3] = 1
	netpkt.PutARP(frame[netpkt.EtherHdrLen:], netpkt.ARPPacket{
		Op: netpkt.ARPRequest, SenderHA: g.cfg.SrcMAC, SenderIP: sip, TargetIP: tip,
	})
	return frame
}

// NewFixedSize returns a generator of constant-size frames — the synthetic
// workloads of §4.3 and §4.6.
func NewFixedSize(cfg Config, size int) *Gen {
	return newGen(cfg, func(*simrand.Rand) int { return size })
}

// campusMix is the size histogram of the synthetic campus trace. Weights
// are chosen so the mean frame size is ≈981 B, matching the published
// trace statistics (799 M packets, average 981 B).
var campusMix = []struct {
	size   int
	weight float64
}{
	{64, 0.21},
	{128, 0.05},
	{256, 0.05},
	{576, 0.05},
	{1024, 0.07},
	{1500, 0.57},
}

// CampusMeanSize returns the expected frame size of the campus mix.
func CampusMeanSize() float64 {
	var m, w float64
	for _, b := range campusMix {
		m += float64(b.size) * b.weight
		w += b.weight
	}
	return m / w
}

// NewCampus returns the campus-trace-like generator used for the paper's
// headline experiments.
func NewCampus(cfg Config) *Gen {
	var cum []float64
	total := 0.0
	for _, b := range campusMix {
		total += b.weight
		cum = append(cum, total)
	}
	return newGen(cfg, func(r *simrand.Rand) int {
		u := r.Float64() * total
		for i, c := range cum {
			if u <= c {
				return campusMix[i].size
			}
		}
		return campusMix[len(campusMix)-1].size
	})
}

// NewUniformSizes returns a generator drawing sizes uniformly from the
// given list (handy in tests and ablations).
func NewUniformSizes(cfg Config, sizes []int) *Gen {
	if len(sizes) == 0 {
		panic("trafficgen: no sizes")
	}
	return newGen(cfg, func(r *simrand.Rand) int { return sizes[r.Intn(len(sizes))] })
}
