package faults

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"packetmill/internal/simrand"
	"packetmill/internal/stats"
)

func mustParse(t *testing.T, src string) *Schedule {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseRejectsBadInput(t *testing.T) {
	bad := []string{
		"explode p=0.1",                   // unknown kind
		"drop",                            // neither p nor burst/every
		"drop p=0.1 burst=4 every=10",     // both forms
		"drop burst=4",                    // burst without every
		"drop p=2",                        // not a probability
		"drop p=NaN",                      // NaN probability
		"corrupt bits=3",                  // missing p
		"corrupt p=0.1 bits=0",            // bits out of range
		"corrupt p=0.1 p=0.2",             // duplicate key
		"truncate p=0.1 min=-1",           // negative floor
		"flap at=1ms",                     // missing for
		"stall for=1ms",                   // missing at
		"deplete target=gpu at=0 for=1ms", // unknown target
		"slowrx at=0 for=1ms",             // missing factor
		"slowrx factor=0.5",               // factor < 1
		"drop p",                          // not key=value
		"flap at=-5ns for=1ms",            // negative duration
		"flap at=1xyz for=1ms",            // unparseable duration
		"drop p=0.1 surprise=1",           // unknown key
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestParseDurationsAndComments(t *testing.T) {
	s := mustParse(t, `
# preamble comment
flap at=1ms for=100us   # trailing comment
stall at=2s for=50ns
`)
	if len(s.Clauses) != 2 {
		t.Fatalf("%d clauses", len(s.Clauses))
	}
	if s.Clauses[0].At != 1e6 || s.Clauses[0].For != 1e5 {
		t.Fatalf("flap window: at=%v for=%v", s.Clauses[0].At, s.Clauses[0].For)
	}
	if s.Clauses[1].At != 2e9 || s.Clauses[1].For != 50 {
		t.Fatalf("stall window: at=%v for=%v", s.Clauses[1].At, s.Clauses[1].For)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"drop p=0.01",
		"drop burst=8 every=1000",
		"corrupt p=0.001 bits=3; truncate p=0.002 min=20",
		"flap at=1ms for=100us; stall at=2ms for=50us",
		"deplete target=desc at=1ms for=200us; deplete target=mempool at=0 for=1us",
		"slowrx at=1ms factor=8 for=500us",
		"slowrx factor=4",
	}
	for _, src := range srcs {
		s := mustParse(t, src)
		canon := s.String()
		s2 := mustParse(t, canon)
		if got := s2.String(); got != canon {
			t.Errorf("round trip not stable: %q -> %q -> %q", src, canon, got)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	// Same schedule, seed, and frame sequence -> bit-identical outcomes.
	const src = "drop p=0.2; corrupt p=0.3 bits=4; truncate p=0.2 min=10; flap at=5000ns for=2000ns"
	run := func() ([]WireResult, InjectedStats) {
		e := NewEngine(mustParse(t, src), 42)
		var rs []WireResult
		for i := 0; i < 500; i++ {
			frame := bytes.Repeat([]byte{byte(i)}, 64+i%100)
			r := e.Wire(frame, float64(i)*100)
			// Copy the surviving frame: the buffer is caller-owned.
			if r.Frame != nil {
				r.Frame = append([]byte(nil), r.Frame...)
			}
			rs = append(rs, r)
		}
		return rs, e.Injected
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("injected stats diverged: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i].Dropped != b[i].Dropped || a[i].Reason != b[i].Reason ||
			a[i].Mutated != b[i].Mutated || !bytes.Equal(a[i].Frame, b[i].Frame) {
			t.Fatalf("frame %d diverged between identical runs", i)
		}
	}
	if sa.WireDrops == 0 || sa.Corruptions == 0 || sa.Truncations == 0 || sa.LinkDownDrops == 0 {
		t.Fatalf("schedule did not exercise every clause: %+v", sa)
	}
}

func TestEngineSeedChangesOutcomes(t *testing.T) {
	sched := mustParse(t, "drop p=0.5")
	outcomes := func(seed uint64) string {
		e := NewEngine(sched, seed)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if e.Wire(make([]byte, 64), 0).Dropped {
				b.WriteByte('D')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	if outcomes(1) == outcomes(2) {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestFlapWindow(t *testing.T) {
	e := NewEngine(mustParse(t, "flap at=1000ns for=500ns"), 0)
	cases := []struct {
		ns   float64
		down bool
	}{{999, false}, {1000, true}, {1499, true}, {1500, false}}
	for _, c := range cases {
		r := e.Wire(make([]byte, 64), c.ns)
		if r.Dropped != c.down {
			t.Fatalf("at %v ns: dropped=%v, want %v", c.ns, r.Dropped, c.down)
		}
		if c.down && r.Reason != stats.DropLinkDown {
			t.Fatalf("at %v ns: reason %v", c.ns, r.Reason)
		}
	}
}

func TestBurstyDropCadence(t *testing.T) {
	// every=10 burst=3: frames 10,11,12, 20,21,22, ... are lost.
	e := NewEngine(mustParse(t, "drop burst=3 every=10"), 0)
	var lost []int
	for i := 1; i <= 30; i++ {
		if e.Wire(make([]byte, 64), 0).Dropped {
			lost = append(lost, i)
		}
	}
	want := []int{10, 11, 12, 20, 21, 22, 30}
	if len(lost) != len(want) {
		t.Fatalf("lost %v, want %v", lost, want)
	}
	for i := range want {
		if lost[i] != want[i] {
			t.Fatalf("lost %v, want %v", lost, want)
		}
	}
}

func TestTruncateRespectsFloor(t *testing.T) {
	e := NewEngine(mustParse(t, "truncate p=1 min=30"), 7)
	for i := 0; i < 200; i++ {
		r := e.Wire(make([]byte, 64), 0)
		if r.Dropped {
			t.Fatal("truncate must not drop")
		}
		if len(r.Frame) < 30 || len(r.Frame) >= 64 {
			t.Fatalf("truncated to %d, want [30,64)", len(r.Frame))
		}
	}
	// A frame already at or below the floor passes untouched.
	r := e.Wire(make([]byte, 30), 0)
	if len(r.Frame) != 30 || r.Mutated {
		t.Fatalf("short frame mangled: len=%d mutated=%v", len(r.Frame), r.Mutated)
	}
}

func TestCorruptFlipsRequestedBits(t *testing.T) {
	e := NewEngine(mustParse(t, "corrupt p=1 bits=1"), 3)
	orig := bytes.Repeat([]byte{0xAA}, 64)
	frame := append([]byte(nil), orig...)
	r := e.Wire(frame, 0)
	if !r.Mutated || r.Dropped {
		t.Fatalf("mutated=%v dropped=%v", r.Mutated, r.Dropped)
	}
	diff := 0
	for i := range orig {
		diff += popcount8(orig[i] ^ frame[i])
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestStallAndDepleteWindows(t *testing.T) {
	e := NewEngine(mustParse(t,
		"stall at=100ns for=50ns; deplete target=mempool at=200ns for=50ns; deplete target=desc at=300ns for=50ns"), 0)
	if got := e.RxStall(0, 120); got != 150 {
		t.Fatalf("RxStall inside window = %v, want 150", got)
	}
	if got := e.RxStall(0, 99); got != 0 {
		t.Fatalf("RxStall before window = %v", got)
	}
	if got := e.RxStall(0, 150); got != 0 {
		t.Fatalf("RxStall at window end = %v", got)
	}
	if !e.DepleteMempool(210) || e.DepleteMempool(199) || e.DepleteMempool(250) {
		t.Fatal("mempool depletion window wrong")
	}
	if !e.DepleteDesc(310) || e.DepleteDesc(210) {
		t.Fatal("desc depletion window wrong (or leaking across targets)")
	}
	if e.DepleteMempool(310) {
		t.Fatal("mempool depleted during desc window")
	}
}

func TestTxSlowFactor(t *testing.T) {
	e := NewEngine(mustParse(t, "slowrx at=100ns factor=8 for=100ns; slowrx at=150ns factor=3 for=100ns"), 0)
	if f := e.TxSlowFactor(50); f != 1 {
		t.Fatalf("factor before window = %v", f)
	}
	if f := e.TxSlowFactor(160); f != 8 {
		t.Fatalf("overlapping windows: factor = %v, want max 8", f)
	}
	if f := e.TxSlowFactor(210); f != 3 {
		t.Fatalf("after first window: factor = %v, want 3", f)
	}
	// slowrx with no for= stays on forever.
	e2 := NewEngine(mustParse(t, "slowrx factor=4"), 0)
	if f := e2.TxSlowFactor(math.MaxFloat64 / 2); f != 4 {
		t.Fatalf("unbounded slowrx factor = %v", f)
	}
}

func TestNilScheduleEngineIsNoOp(t *testing.T) {
	e := NewEngine(nil, 1)
	frame := bytes.Repeat([]byte{1}, 64)
	r := e.Wire(frame, 0)
	if r.Dropped || r.Mutated || len(r.Frame) != 64 {
		t.Fatal("no-op engine touched the frame")
	}
	if e.RxStall(0, 0) != 0 || e.TxSlowFactor(0) != 1 || e.DepleteMempool(0) || e.DepleteDesc(0) {
		t.Fatal("no-op engine gated resources")
	}
}

func TestRandomSchedulesParseAndRoundTrip(t *testing.T) {
	r := simrand.New(99)
	for i := 0; i < 200; i++ {
		s := Random(r, 1e6)
		if len(s.Clauses) == 0 {
			t.Fatal("empty random schedule")
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("random schedule does not re-parse: %v\n%q", err, canon)
		}
		if s2.String() != canon {
			t.Fatalf("random schedule round trip unstable: %q vs %q", canon, s2.String())
		}
	}
}
