// Package faults is the deterministic fault-injection layer: a parsed
// fault schedule plus a seeded engine that perturbs the datapath at the
// points where real deployments fail — on the wire (drops, corruption,
// truncation, link flaps), at the NIC (descriptor-ring stalls, slow
// receivers starving TX), and in the allocators (mempool and X-Change
// descriptor-pool depletion).
//
// The package deliberately knows nothing about the NIC, DPDK, or
// X-Change packages: those expose small hook functions, and the testbed
// wires an Engine's methods into them. Everything is driven by
// internal/simrand, so a (schedule, seed, traffic) triple replays
// bit-identically.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates fault clause kinds.
type Kind uint8

// The fault taxonomy. Wire-level kinds consume or mutate frames before
// the NIC sees them; the others gate datapath resources over a time
// window.
const (
	// KindDrop loses frames on the wire: i.i.d. with probability P, or
	// bursty (every Every-th frame starts a run of Burst losses).
	KindDrop Kind = iota
	// KindCorrupt flips Bits random bits in the frame with probability P.
	KindCorrupt
	// KindTruncate cuts the frame to a random length in [MinLen, len)
	// with probability P — short enough frames trip the MAC runt guard.
	KindTruncate
	// KindFlap takes the link down during [At, At+For): every frame
	// arriving in the window is lost (reason link-down).
	KindFlap
	// KindStall models an RX descriptor-ring stall: completions during
	// [At, At+For) are held until the window ends.
	KindStall
	// KindDeplete makes the targeted pool's Get fail during [At, At+For).
	KindDeplete
	// KindSlowRx models a slow receiver: TX wire serialization is
	// multiplied by Factor during [At, At+For) (For may be infinite).
	KindSlowRx

	numKinds
)

var kindNames = [numKinds]string{
	"drop", "corrupt", "truncate", "flap", "stall", "deplete", "slowrx",
}

// String returns the clause keyword.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Target names the pool a deplete clause gates.
type Target uint8

// Deplete targets.
const (
	// TargetMempool gates the DPDK mempool (RX buffer allocation).
	TargetMempool Target = iota
	// TargetDesc gates the X-Change descriptor pool.
	TargetDesc
)

// String returns the target keyword.
func (t Target) String() string {
	if t == TargetDesc {
		return "desc"
	}
	return "mempool"
}

// Clause is one fault directive. Which fields matter depends on Kind;
// Parse validates the combinations.
type Clause struct {
	Kind Kind

	// P is the per-frame probability for drop/corrupt/truncate.
	P float64
	// Bits is how many bits a corruption flips (default 1).
	Bits int
	// MinLen floors the truncated length (default 0).
	MinLen int
	// Burst/Every describe bursty drops: every Every-th frame starts a
	// run of Burst consecutive losses.
	Burst, Every uint64
	// At/For bound the active window in simulated nanoseconds. For is
	// +Inf for a slowrx clause with no `for=`.
	At, For float64
	// Factor multiplies TX serialization time for slowrx.
	Factor float64
	// Target selects the pool for deplete.
	Target Target
}

// active reports whether ns falls inside the clause's window.
func (c *Clause) active(ns float64) bool {
	return ns >= c.At && ns < c.At+c.For
}

// Schedule is a parsed fault schedule: zero or more clauses, applied in
// order.
type Schedule struct {
	Clauses []Clause
}

// parseDur parses a duration with an optional ns/us/ms/s suffix (bare
// numbers are nanoseconds).
func parseDur(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1e3
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1e6
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], 1e9
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("faults: bad duration %q", s)
	}
	return v * mult, nil
}

// formatDur renders a nanosecond count the parser accepts back exactly.
func formatDur(ns float64) string {
	return strconv.FormatFloat(ns, 'g', -1, 64) + "ns"
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse reads a fault schedule: clauses separated by semicolons or
// newlines, each `kind key=value ...`. `#` starts a comment clause. An
// empty input parses to an empty (no-op) schedule.
//
//	drop p=0.01
//	drop burst=8 every=1000
//	corrupt p=0.001 bits=3
//	truncate p=0.001 min=0
//	flap at=1ms for=100us
//	stall at=2ms for=50us
//	deplete target=mempool at=1ms for=200us
//	slowrx at=1ms factor=8 for=500us
func Parse(input string) (*Schedule, error) {
	sched := &Schedule{}
	norm := strings.NewReplacer("\n", ";", "\r", ";").Replace(input)
	for _, raw := range strings.Split(norm, ";") {
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fields := strings.Fields(raw)
		c := Clause{Bits: 1, Factor: 1, For: math.Inf(1)}
		kind := fields[0]
		ki := -1
		for i, n := range kindNames {
			if n == kind {
				ki = i
				break
			}
		}
		if ki < 0 {
			return nil, fmt.Errorf("faults: unknown clause kind %q", kind)
		}
		c.Kind = Kind(ki)
		seen := map[string]bool{}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k == "" || v == "" {
				return nil, fmt.Errorf("faults: %s: bad argument %q (want key=value)", kind, f)
			}
			if seen[k] {
				return nil, fmt.Errorf("faults: %s: duplicate key %q", kind, k)
			}
			seen[k] = true
			var err error
			switch k {
			case "p":
				c.P, err = strconv.ParseFloat(v, 64)
				if err != nil || math.IsNaN(c.P) || c.P < 0 || c.P > 1 {
					return nil, fmt.Errorf("faults: %s: p=%q not a probability", kind, v)
				}
			case "bits":
				c.Bits, err = strconv.Atoi(v)
				if err != nil || c.Bits < 1 || c.Bits > 64 {
					return nil, fmt.Errorf("faults: %s: bits=%q out of range [1,64]", kind, v)
				}
			case "min":
				c.MinLen, err = strconv.Atoi(v)
				if err != nil || c.MinLen < 0 {
					return nil, fmt.Errorf("faults: %s: min=%q invalid", kind, v)
				}
			case "burst":
				c.Burst, err = strconv.ParseUint(v, 10, 32)
				if err != nil || c.Burst < 1 {
					return nil, fmt.Errorf("faults: %s: burst=%q invalid", kind, v)
				}
			case "every":
				c.Every, err = strconv.ParseUint(v, 10, 32)
				if err != nil || c.Every < 1 {
					return nil, fmt.Errorf("faults: %s: every=%q invalid", kind, v)
				}
			case "at":
				if c.At, err = parseDur(v); err != nil {
					return nil, fmt.Errorf("faults: %s: at=%q: %w", kind, v, err)
				}
			case "for":
				if c.For, err = parseDur(v); err != nil {
					return nil, fmt.Errorf("faults: %s: for=%q: %w", kind, v, err)
				}
			case "factor":
				c.Factor, err = strconv.ParseFloat(v, 64)
				if err != nil || math.IsNaN(c.Factor) || math.IsInf(c.Factor, 0) || c.Factor < 1 {
					return nil, fmt.Errorf("faults: %s: factor=%q must be >= 1", kind, v)
				}
			case "target":
				switch v {
				case "mempool":
					c.Target = TargetMempool
				case "desc":
					c.Target = TargetDesc
				default:
					return nil, fmt.Errorf("faults: %s: target=%q (want mempool or desc)", kind, v)
				}
			default:
				return nil, fmt.Errorf("faults: %s: unknown key %q", kind, k)
			}
		}
		if err := c.validate(seen); err != nil {
			return nil, err
		}
		sched.Clauses = append(sched.Clauses, c)
	}
	return sched, nil
}

// validate enforces per-kind field combinations.
func (c *Clause) validate(seen map[string]bool) error {
	switch c.Kind {
	case KindDrop:
		bursty := seen["burst"] || seen["every"]
		if bursty && (!seen["burst"] || !seen["every"]) {
			return fmt.Errorf("faults: drop: burst and every go together")
		}
		if bursty == seen["p"] {
			return fmt.Errorf("faults: drop: want either p= or burst=/every=")
		}
	case KindCorrupt, KindTruncate:
		if !seen["p"] {
			return fmt.Errorf("faults: %s: missing p=", c.Kind)
		}
	case KindFlap, KindStall, KindDeplete:
		if !seen["at"] || !seen["for"] || math.IsInf(c.For, 1) {
			return fmt.Errorf("faults: %s: needs at= and a finite for=", c.Kind)
		}
	case KindSlowRx:
		if !seen["factor"] {
			return fmt.Errorf("faults: slowrx: missing factor=")
		}
	}
	return nil
}

// String renders the schedule in the canonical form Parse accepts;
// Parse(s.String()) reproduces s exactly.
func (s *Schedule) String() string {
	var b strings.Builder
	for i := range s.Clauses {
		c := &s.Clauses[i]
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(c.Kind.String())
		switch c.Kind {
		case KindDrop:
			if c.Every > 0 {
				fmt.Fprintf(&b, " burst=%d every=%d", c.Burst, c.Every)
			} else {
				b.WriteString(" p=" + formatF(c.P))
			}
		case KindCorrupt:
			fmt.Fprintf(&b, " p=%s bits=%d", formatF(c.P), c.Bits)
		case KindTruncate:
			fmt.Fprintf(&b, " p=%s min=%d", formatF(c.P), c.MinLen)
		case KindFlap, KindStall:
			fmt.Fprintf(&b, " at=%s for=%s", formatDur(c.At), formatDur(c.For))
		case KindDeplete:
			fmt.Fprintf(&b, " target=%s at=%s for=%s",
				c.Target, formatDur(c.At), formatDur(c.For))
		case KindSlowRx:
			fmt.Fprintf(&b, " at=%s factor=%s", formatDur(c.At), formatF(c.Factor))
			if !math.IsInf(c.For, 1) {
				b.WriteString(" for=" + formatDur(c.For))
			}
		}
	}
	return b.String()
}
