package faults

import "testing"

// FuzzFaultSchedule guards the fault-schedule front end the same way
// click's FuzzParse guards the configuration language: arbitrary input
// must either parse cleanly or return an error — never panic — and
// whatever parses must round-trip through its canonical form.
func FuzzFaultSchedule(f *testing.F) {
	seeds := []string{
		"drop p=0.01",
		"drop burst=8 every=1000",
		"corrupt p=0.001 bits=3",
		"truncate p=0.001 min=0",
		"flap at=1ms for=100us",
		"stall at=2ms for=50us",
		"deplete target=mempool at=1ms for=200us",
		"deplete target=desc at=0 for=1us",
		"slowrx at=1ms factor=8 for=500us",
		"slowrx factor=2",
		"# comment only\ndrop p=0.5 # trailing",
		"drop p=0.1; flap at=0 for=1ns\nstall at=5us for=5us",
		"",
		";;;",
		"drop p=",
		"flap at=1msfor=2ms",
		// Overlapping windows: two resource faults sharing simulated time.
		"flap at=1ms for=200us; stall at=1.1ms for=200us",
		"deplete target=mempool at=0 for=2ms; deplete target=desc at=1ms for=2ms",
		// Zero-duration windows: legal to parse, never active.
		"stall at=1ms for=0",
		"slowrx at=1ms factor=2 for=0ns",
		"flap at=0 for=0",
		// Mid-run starts: windows that open well after time zero.
		"stall at=2.5ms for=100us",
		"slowrx at=4ms factor=1000000 for=1ms",
		"deplete target=desc at=3ms for=50us; drop p=0.05",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\noriginal: %q\ncanonical: %q",
				err, src, canon)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q\noriginal: %q",
				canon, got, src)
		}
	})
}
