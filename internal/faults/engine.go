// Engine: the runtime side of the fault layer. One engine is built per
// run from a (schedule, seed) pair and consulted at the injection points;
// all randomness flows through one simrand stream in frame order, so the
// same schedule, seed, and traffic replay identically.
package faults

import (
	"math"

	"packetmill/internal/simrand"
	"packetmill/internal/stats"
)

// InjectedStats counts what the engine actually did — the ground truth a
// chaos run checks its conservation invariant against.
type InjectedStats struct {
	// WireDrops counts frames consumed by drop clauses.
	WireDrops uint64
	// LinkDownDrops counts frames lost to a downed link (flap windows).
	LinkDownDrops uint64
	// Corruptions and Truncations count frames mutated in place (the
	// frame still arrives; truncation below the MAC's minimum frame size
	// is then dropped by the NIC as a runt).
	Corruptions, Truncations uint64
}

// Engine applies a Schedule deterministically.
type Engine struct {
	Sched *Schedule
	rng   *simrand.Rand

	// Per-clause frame counters and burst state for bursty drops.
	frames    []uint64
	burstLeft []uint64

	Injected InjectedStats
}

// NewEngine builds an engine for the schedule; a nil schedule yields an
// engine whose every hook is a no-op.
func NewEngine(s *Schedule, seed uint64) *Engine {
	if s == nil {
		s = &Schedule{}
	}
	return &Engine{
		Sched:     s,
		rng:       simrand.New(seed),
		frames:    make([]uint64, len(s.Clauses)),
		burstLeft: make([]uint64, len(s.Clauses)),
	}
}

// WireResult reports what Wire did to a frame.
type WireResult struct {
	// Frame is the (possibly truncated) frame; nil when dropped.
	Frame []byte
	// Dropped is true when the wire consumed the frame; Reason then says
	// why (wire-fault or link-down).
	Dropped bool
	Reason  stats.DropReason
	// Mutated is true when the surviving frame's bytes or length changed.
	Mutated bool
}

// Wire runs every wire-level clause over a frame arriving at ns. The
// frame is mutated in place by corruption (the caller owns the buffer).
// Clauses apply in schedule order; the first dropping clause wins.
func (e *Engine) Wire(frame []byte, ns float64) WireResult {
	res := WireResult{Frame: frame}
	for i := range e.Sched.Clauses {
		c := &e.Sched.Clauses[i]
		switch c.Kind {
		case KindFlap:
			if c.active(ns) {
				e.Injected.LinkDownDrops++
				return WireResult{Dropped: true, Reason: stats.DropLinkDown}
			}
		case KindDrop:
			e.frames[i]++
			if c.Every > 0 {
				if e.frames[i]%c.Every == 0 {
					e.burstLeft[i] = c.Burst
				}
				if e.burstLeft[i] > 0 {
					e.burstLeft[i]--
					e.Injected.WireDrops++
					return WireResult{Dropped: true, Reason: stats.DropWireFault}
				}
			} else if e.rng.Float64() < c.P {
				e.Injected.WireDrops++
				return WireResult{Dropped: true, Reason: stats.DropWireFault}
			}
		case KindCorrupt:
			if len(res.Frame) > 0 && e.rng.Float64() < c.P {
				for b := 0; b < c.Bits; b++ {
					bit := e.rng.Intn(len(res.Frame) * 8)
					res.Frame[bit/8] ^= 1 << (bit % 8)
				}
				e.Injected.Corruptions++
				res.Mutated = true
			}
		case KindTruncate:
			if len(res.Frame) > 0 && e.rng.Float64() < c.P {
				min := c.MinLen
				if min >= len(res.Frame) {
					break
				}
				cut := min + e.rng.Intn(len(res.Frame)-min)
				res.Frame = res.Frame[:cut]
				e.Injected.Truncations++
				res.Mutated = true
			}
		}
	}
	return res
}

// RxStall implements the NIC's FaultRxStall hook: the time before which
// queue q's completions must not surface (0 = no stall at ns).
func (e *Engine) RxStall(q int, ns float64) float64 {
	until := 0.0
	for i := range e.Sched.Clauses {
		c := &e.Sched.Clauses[i]
		if c.Kind == KindStall && c.active(ns) && c.At+c.For > until {
			until = c.At + c.For
		}
	}
	return until
}

// TxSlowFactor implements the NIC's FaultTxSlow hook: the serialization
// multiplier at ns (1 = full speed).
func (e *Engine) TxSlowFactor(ns float64) float64 {
	f := 1.0
	for i := range e.Sched.Clauses {
		c := &e.Sched.Clauses[i]
		if c.Kind == KindSlowRx && c.active(ns) && c.Factor > f {
			f = c.Factor
		}
	}
	return f
}

// depleted reports whether a deplete clause for target is active at ns.
func (e *Engine) depleted(t Target, ns float64) bool {
	for i := range e.Sched.Clauses {
		c := &e.Sched.Clauses[i]
		if c.Kind == KindDeplete && c.Target == t && c.active(ns) {
			return true
		}
	}
	return false
}

// DepleteMempool implements the mempool's FaultDeplete hook.
func (e *Engine) DepleteMempool(ns float64) bool { return e.depleted(TargetMempool, ns) }

// DepleteDesc implements the port's FaultDescDeplete hook.
func (e *Engine) DepleteDesc(ns float64) bool { return e.depleted(TargetDesc, ns) }

// Random draws a small random schedule for soak runs: one to four
// clauses with parameters scaled to a run of roughly durationNS. Every
// draw is reproducible from the generator's state.
func Random(r *simrand.Rand, durationNS float64) *Schedule {
	if durationNS <= 0 {
		durationNS = 1e6
	}
	s := &Schedule{}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		at := r.Float64() * durationNS * 0.8
		dur := (0.05 + 0.2*r.Float64()) * durationNS
		switch Kind(r.Intn(int(numKinds))) {
		case KindDrop:
			if r.Intn(2) == 0 {
				s.Clauses = append(s.Clauses, Clause{Kind: KindDrop,
					P: 0.001 + 0.05*r.Float64(), Bits: 1, Factor: 1, For: inf()})
			} else {
				s.Clauses = append(s.Clauses, Clause{Kind: KindDrop,
					Burst: uint64(1 + r.Intn(16)), Every: uint64(64 + r.Intn(1024)),
					Bits: 1, Factor: 1, For: inf()})
			}
		case KindCorrupt:
			s.Clauses = append(s.Clauses, Clause{Kind: KindCorrupt,
				P: 0.001 + 0.02*r.Float64(), Bits: 1 + r.Intn(8), Factor: 1, For: inf()})
		case KindTruncate:
			s.Clauses = append(s.Clauses, Clause{Kind: KindTruncate,
				P: 0.001 + 0.02*r.Float64(), Bits: 1, Factor: 1, For: inf()})
		case KindFlap:
			s.Clauses = append(s.Clauses, Clause{Kind: KindFlap,
				At: at, For: dur, Bits: 1, Factor: 1})
		case KindStall:
			s.Clauses = append(s.Clauses, Clause{Kind: KindStall,
				At: at, For: dur * 0.3, Bits: 1, Factor: 1})
		case KindDeplete:
			s.Clauses = append(s.Clauses, Clause{Kind: KindDeplete,
				Target: Target(r.Intn(2)), At: at, For: dur, Bits: 1, Factor: 1})
		case KindSlowRx:
			s.Clauses = append(s.Clauses, Clause{Kind: KindSlowRx,
				At: at, For: dur, Factor: 2 + 6*r.Float64(), Bits: 1})
		}
	}
	return s
}

func inf() float64 { return math.Inf(1) }
