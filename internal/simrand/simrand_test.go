package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	w := r.Uint64()
	if v == 0 && w == 0 {
		t.Fatal("zero seed produced a stuck all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPowerOfTwoAndOdd(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
		if v := r.Uint64n(13); v >= 13 {
			t.Fatalf("Uint64n(13) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	p := r.Perm(257)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(15)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 1.2, 1, 999)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Uint64()
		if v > 999 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 100 heavily under s=1.2.
	if counts[0] < counts[100]*5 {
		t.Fatalf("zipf not skewed: rank0=%d rank100=%d", counts[0], counts[100])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(s=1) did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 1, 10)
}
