// Package simrand provides deterministic pseudo-random number generators
// used throughout the simulator. Everything in this repository that needs
// randomness takes an explicit *Rand so that every experiment is exactly
// reproducible from its seed; we never touch math/rand's global state.
//
// The core generator is xoshiro256** seeded via SplitMix64, the combination
// recommended by Blackman & Vigna. It is small, fast, and has no global
// locks, which matters because the traffic generator draws a few values per
// simulated packet.
package simrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding the main generator.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}

// mix64 is SplitMix64's finalizer: a bijective avalanche function whose
// output bits all depend on all input bits. Derive builds on it.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString hashes s with 64-bit FNV-1a. It gives every experiment id a
// stable numeric identity that seed derivation can mix from, independent
// of registration order or process state.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Derive deterministically combines a base seed with one or more stream
// indices into a new seed. The same (base, stream...) always yields the
// same value, and nearby indices yield statistically unrelated seeds — the
// property the parallel experiment scheduler relies on so that unit i's
// simulation is identical whether it runs serially or on a worker pool.
func Derive(base uint64, stream ...uint64) uint64 {
	s := base
	for _, v := range stream {
		s += 0x9e3779b97f4a7c15
		s ^= mix64(v)
		s = mix64(s)
	}
	return s
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
// Two generators built from the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic rejection on the top bits to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v <= max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// suitable for Poisson inter-arrival times.
func (r *Rand) ExpFloat64() float64 {
	// Inverse transform; clamp the argument away from zero so Log never
	// sees 0.
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1 - u)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly swaps the n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf(s, v) distribution over [0, n), the classic
// heavy-tailed popularity law used to pick flow identifiers. It uses the
// rejection-inversion sampler of Hörmann & Derflinger, the same algorithm
// as math/rand.Zipf, reimplemented here so it runs on our generator.
type Zipf struct {
	r                *Rand
	imax             float64
	v, q             float64
	oneMinusQ        float64
	oneMinusQInv     float64
	hxm, hx0MinusHxm float64
	s                float64
}

// NewZipf returns a Zipf sampler producing values in [0, imax].
// Requires s > 1, v >= 1. Panics otherwise.
func NewZipf(r *Rand, s, v float64, imax uint64) *Zipf {
	if s <= 1 || v < 1 {
		panic("simrand: NewZipf requires s > 1 and v >= 1")
	}
	z := &Zipf{r: r, imax: float64(imax), v: v, q: s}
	z.oneMinusQ = 1 - z.q
	z.oneMinusQInv = 1 / z.oneMinusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0MinusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusQ*math.Log(z.v+x)) * z.oneMinusQInv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneMinusQInv*math.Log(z.oneMinusQ*x)) - z.v
}

// Uint64 draws the next Zipf value.
func (z *Zipf) Uint64() uint64 {
	for {
		r := z.r.Float64()
		ur := z.hxm + r*z.hx0MinusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
