package simrand

import "testing"

func TestHashStringStable(t *testing.T) {
	// FNV-1a reference values must never drift: experiment seeds derive
	// from them, and a drift would silently change every exhibit.
	if got := HashString(""); got != 14695981039346656037 {
		t.Fatalf("HashString(\"\") = %d", got)
	}
	if HashString("fig4") == HashString("fig5a") {
		t.Fatal("distinct ids collided")
	}
	if HashString("fig4") != HashString("fig4") {
		t.Fatal("HashString not deterministic")
	}
}

func TestDerive(t *testing.T) {
	base := HashString("fig4")
	if Derive(base, 0) == Derive(base, 1) {
		t.Fatal("adjacent unit indices derived the same seed")
	}
	if Derive(base, 3) != Derive(base, 3) {
		t.Fatal("Derive not deterministic")
	}
	if Derive(base) != base {
		t.Fatal("Derive with no stream must be the identity")
	}
	// Multi-level derivation must depend on every index.
	if Derive(base, 1, 2) == Derive(base, 2, 1) {
		t.Fatal("Derive ignores stream order")
	}
	// Streams from nearby seeds must diverge immediately.
	a, b := New(Derive(base, 0)), New(Derive(base, 1))
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived seeds produced identical first draws")
	}
}
