package verify

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

// lightOpts leaves ample headroom so neither build drops packets and the
// comparison is pure functional equivalence.
func lightOpts(model click.MetadataModel) testbed.Options {
	return testbed.Options{
		FreqGHz: 3.0, Model: model, RateGbps: 10, Packets: 3000, Seed: 7,
	}
}

func TestModelsAreFunctionallyEquivalent(t *testing.T) {
	// §5 FAQ: the metadata model must not change what the NF *does*.
	for _, cfg := range map[string]string{
		"forwarder": nf.Forwarder(0, 32),
		"router":    nf.Router(32),
		"ids":       nf.IDSRouter(32),
		"nat":       nf.NATRouter(32),
	} {
		for _, m := range []click.MetadataModel{click.Overlaying, click.XChange} {
			rep, err := Differential(cfg, lightOpts(click.Copying), lightOpts(m))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Equivalent() {
				t.Errorf("copying vs %v: %s", m, rep)
				if len(rep.Mismatches) > 0 {
					mm := rep.Mismatches[0]
					t.Errorf("first mismatch at %d:\nA: %x\nB: %x", mm.Index, mm.A, mm.B)
				}
			}
		}
	}
}

func TestMilledBuildIsFunctionallyEquivalent(t *testing.T) {
	// The optimized binary must forward the exact same frames as the
	// vanilla one — the verification stage the paper calls for.
	for name, cfg := range map[string]string{
		"router": nf.Router(32),
		"nat":    nf.NATRouter(32),
	} {
		vanilla, err := core.Parse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		milled, err := core.Parse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := milled.Mill(); err != nil {
			t.Fatal(err)
		}
		a := lightOpts(click.Copying)
		b := lightOpts(click.Copying)
		b.Opt = milled.Plan.Opt
		rep, err := DifferentialGraphs(vanilla.Plan.Graph, milled.Plan.Graph, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Equivalent() {
			t.Errorf("%s vanilla vs milled: %s", name, rep)
		}
	}
}

func TestReorderedLayoutIsFunctionallyEquivalent(t *testing.T) {
	base := lightOpts(click.Copying)
	reordered := lightOpts(click.Copying)
	p, err := core.Parse(nf.Router(32))
	if err != nil {
		t.Fatal(err)
	}
	p.Model = click.Copying
	if err := p.ReorderMetadata(lightOpts(click.Copying), layout.ByAccessCount); err != nil {
		t.Fatal(err)
	}
	reordered.MetaLayout = p.Plan.MetaLayout
	rep, err := Differential(nf.Router(32), base, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent() {
		t.Errorf("reordered layout changed behaviour: %s", rep)
	}
}

func TestDifferentialDetectsRealDifferences(t *testing.T) {
	// Negative control: two genuinely different NFs must NOT verify.
	ga, err := click.Parse(nf.Forwarder(0, 32)) // rewrites MACs
	if err != nil {
		t.Fatal(err)
	}
	gb, err := click.Parse(nf.Mirror(0, 32)) // swaps MACs
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DifferentialGraphs(ga, gb, lightOpts(click.Copying), lightOpts(click.Copying))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equivalent() {
		t.Fatal("differential failed to distinguish EtherRewrite from EtherMirror")
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("no mismatch recorded")
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestDifferentialParseErrors(t *testing.T) {
	if _, err := Differential("garbage", lightOpts(click.Copying), lightOpts(click.Copying)); err == nil {
		t.Fatal("garbage accepted")
	}
}
