// Package verify answers the paper's §5 correctness question ("Does
// PacketMill affect the correctness?") with differential testing: run two
// builds of the same network function — different metadata models,
// different optimization levels, a reordered or pruned descriptor layout —
// against byte-identical traffic and require byte-identical output frame
// sequences. The paper defers correctness to future symbolic-execution
// integration; a deterministic testbed makes the cheaper check exact.
package verify

import (
	"bytes"
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/testbed"
)

// Mismatch is one divergence between the two builds' output streams.
type Mismatch struct {
	// Index is the position in the departure sequence.
	Index int
	// A and B are the differing frames (nil when one stream ended early).
	A, B []byte
}

// Report summarizes a differential run.
type Report struct {
	// AFrames/BFrames count the frames each build emitted.
	AFrames, BFrames int
	// ADropped/BDropped count frames each build lost (offered − emitted
	// differences show up here before they show up as mismatches).
	ADropped, BDropped uint64
	// Mismatches lists up to MaxMismatches divergences.
	Mismatches []Mismatch
}

// MaxMismatches bounds the report size.
const MaxMismatches = 16

// Equivalent reports whether the two builds behaved identically.
func (r *Report) Equivalent() bool {
	return len(r.Mismatches) == 0 && r.AFrames == r.BFrames
}

// String renders a short verdict.
func (r *Report) String() string {
	if r.Equivalent() {
		return fmt.Sprintf("equivalent: %d frames, %d drops", r.AFrames, r.ADropped)
	}
	return fmt.Sprintf("NOT equivalent: %d vs %d frames, %d mismatches (drops %d vs %d)",
		r.AFrames, r.BFrames, len(r.Mismatches), r.ADropped, r.BDropped)
}

// capture runs one build and records its output frame sequence.
func capture(g *click.Graph, o testbed.Options) ([][]byte, uint64, error) {
	var frames [][]byte
	o.Tap = func(frame []byte, _ float64) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		frames = append(frames, cp)
	}
	res, err := testbed.RunGraph(g, o)
	if err != nil {
		return nil, 0, err
	}
	return frames, res.Dropped, nil
}

// Differential runs config under options a and b (same traffic: the seed,
// rate, and packet count are forced equal, taken from a) and diffs the
// output streams. The offered rate should leave headroom for both builds,
// or drops will legitimately diverge; the report exposes drop counts so
// callers can tell congestion apart from corruption.
func Differential(config string, a, b testbed.Options) (*Report, error) {
	ga, err := click.Parse(config)
	if err != nil {
		return nil, err
	}
	gb, err := click.Parse(config)
	if err != nil {
		return nil, err
	}
	return DifferentialGraphs(ga, gb, a, b)
}

// DifferentialGraphs is Differential for already-transformed graphs (e.g.
// a vanilla graph vs its milled counterpart).
func DifferentialGraphs(ga, gb *click.Graph, a, b testbed.Options) (*Report, error) {
	// Identical traffic: everything the generator consumes comes from a.
	b.Seed = a.Seed
	b.RateGbps = a.RateGbps
	b.Packets = a.Packets
	b.FixedSize = a.FixedSize
	b.Traffic = a.Traffic
	b.NICs = a.NICs
	b.Cores = a.Cores

	fa, da, err := capture(ga, a)
	if err != nil {
		return nil, fmt.Errorf("verify: build A: %w", err)
	}
	fb, db, err := capture(gb, b)
	if err != nil {
		return nil, fmt.Errorf("verify: build B: %w", err)
	}
	rep := &Report{AFrames: len(fa), BFrames: len(fb), ADropped: da, BDropped: db}
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	for i := 0; i < n && len(rep.Mismatches) < MaxMismatches; i++ {
		if !bytes.Equal(fa[i], fb[i]) {
			rep.Mismatches = append(rep.Mismatches, Mismatch{Index: i, A: fa[i], B: fb[i]})
		}
	}
	if len(fa) != len(fb) && len(rep.Mismatches) < MaxMismatches {
		m := Mismatch{Index: n}
		if len(fa) > n {
			m.A = fa[n]
		}
		if len(fb) > n {
			m.B = fb[n]
		}
		rep.Mismatches = append(rep.Mismatches, m)
	}
	return rep, nil
}
