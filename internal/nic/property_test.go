package nic

import (
	"testing"
	"testing/quick"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/simrand"
)

// TestRxConservationProperty drives random delivery/poll interleavings and
// checks the invariant: delivered = polled + pending, and
// offered = delivered + dropped. No packet may ever be duplicated or lost
// inside the adapter.
func TestRxConservationProperty(t *testing.T) {
	r := simrand.New(0x71C)
	if err := quick.Check(func(seed uint16) bool {
		_ = seed
		m, core := machine.Default(2.0)
		huge := memsim.NewArena("huge", memsim.HugeBase, 1<<28)
		cfg := DefaultConfig("p")
		cfg.RXRingSize = 8 + r.Intn(56)
		cfg.MaxQueuePPS = 0
		n := New(cfg, m.Sys, huge)
		q := n.RX(0)

		post := func() bool {
			if q.PostedCount()+q.PendingCount() < cfg.RXRingSize {
				addr := huge.Alloc(2048, 64)
				q.Post(pktbuf.NewPacket(make([]byte, 2048), addr, 128))
				return true
			}
			return false
		}
		for i := 0; i < cfg.RXRingSize/2; i++ {
			post()
		}

		frame := make([]byte, 100)
		var offered, delivered, polled uint64
		now := 0.0
		pkts := make([]*pktbuf.Packet, 64)
		descs := make([]Descriptor, 64)
		steps := 50 + r.Intn(200)
		for i := 0; i < steps; i++ {
			switch r.Intn(4) {
			case 0, 1: // deliver
				offered++
				if n.Deliver(0, frame, now) {
					delivered++
				}
				now += 10
			case 2: // poll some
				got := q.Poll(core, now, 1+r.Intn(8), pkts, descs)
				polled += uint64(got)
			case 3: // repost a buffer
				post()
			}
		}
		dropped := n.Stats.RxDropNoBuf + n.Stats.RxDropFull
		if offered != delivered+dropped {
			t.Logf("offered %d != delivered %d + dropped %d", offered, delivered, dropped)
			return false
		}
		if delivered != polled+uint64(q.PendingCount()) {
			t.Logf("delivered %d != polled %d + pending %d", delivered, polled, q.PendingCount())
			return false
		}
		if n.Stats.RxDelivered != delivered {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTxOrderingProperty: departures must be monotonically non-decreasing
// regardless of enqueue times and frame sizes (the two pipelined resources
// never reorder frames).
func TestTxOrderingProperty(t *testing.T) {
	r := simrand.New(0x7E5)
	if err := quick.Check(func(seed uint16) bool {
		_ = seed
		m, core := machine.Default(2.0)
		huge := memsim.NewArena("huge", memsim.HugeBase, 1<<28)
		cfg := DefaultConfig("p")
		n := New(cfg, m.Sys, huge)
		tx := n.TX(0)
		var departs []float64
		n.OnDepart = func(_ *pktbuf.Packet, d float64) { departs = append(departs, d) }
		now := 0.0
		for i := 0; i < 100; i++ {
			addr := huge.Alloc(2048, 64)
			p := pktbuf.NewPacket(make([]byte, 2048), addr, 128)
			p.SetFrame(make([]byte, 64+r.Intn(1400)))
			if !tx.Enqueue(core, p, now) {
				break
			}
			now += float64(r.Intn(200))
		}
		for i := 1; i < len(departs); i++ {
			if departs[i] < departs[i-1] {
				t.Logf("departure %d (%.1f) before %d (%.1f)", i, departs[i], i-1, departs[i-1])
				return false
			}
			// And no frame departs before it was enqueued-ish (sanity:
			// positive timestamps).
			if departs[i] <= 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
