// Package nic simulates a 100-GbE network adapter: receive and transmit
// descriptor rings, DMA through the DDIO window of the shared LLC, RSS
// spreading across queues, a line-rate serialization model, and the
// per-queue packet-rate ceiling that caps single-queue throughput on real
// ConnectX-5 hardware (the "other NIC-related issues" of §4.2 that make
// X-Change flatten out above 2.2 GHz on one NIC).
//
// The NIC is passive: a driver (internal/dpdk's poll-mode driver, with or
// without X-Change bindings) posts buffers, polls completions, and enqueues
// transmissions; the testbed delivers generator frames with Deliver.
package nic

import (
	"errors"
	"fmt"
	"math"

	"packetmill/internal/cache"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

// Config describes one adapter.
type Config struct {
	Name        string
	LinkGbps    float64 // line rate, e.g. 100
	MaxQueuePPS float64 // per-queue completion ceiling; 0 disables
	RXRingSize  int
	TXRingSize  int
	NumQueues   int
}

// DefaultConfig returns the ConnectX-5-like adapter used by every
// experiment: 100 Gbps, 4096-descriptor rings, 11.8-Mpps single-queue
// ceiling.
func DefaultConfig(name string) Config {
	return Config{
		Name:        name,
		LinkGbps:    100,
		MaxQueuePPS: 11.8e6,
		RXRingSize:  4096,
		TXRingSize:  4096,
		NumQueues:   1,
	}
}

// Stats aggregates adapter counters.
type Stats struct {
	RxDelivered uint64 // frames accepted into an RX ring
	RxDropNoBuf uint64 // dropped: no posted buffer
	RxDropFull  uint64 // dropped: completion ring full
	RxDropRunt  uint64 // dropped: below the 60-byte Ethernet minimum
	TxSent      uint64
	TxDropFull  uint64
	TxBytes     uint64
	RxBytes     uint64
}

// RXQueueStats scopes the receive counters to one queue, so a collapsed
// RSS distribution or a single starving queue is visible instead of being
// averaged away in the adapter-global Stats.
type RXQueueStats struct {
	Delivered uint64
	Bytes     uint64
	DropNoBuf uint64
	DropFull  uint64
	DropRunt  uint64
}

// TXQueueStats scopes the transmit counters to one queue.
type TXQueueStats struct {
	Sent     uint64
	Bytes    uint64
	DropFull uint64
	// DropTransient counts frames lost to transient send errors
	// (EAGAIN/ENOBUFS on a live wire) that stayed failed after
	// bounded-backoff retries — distinct from ring-full drops.
	DropTransient uint64
	// DropOversize counts frames refused at the TX boundary for
	// exceeding the port MTU — a configuration error, not congestion.
	DropOversize uint64
}

// MinFrameSize is the smallest frame the MAC accepts (Ethernet's 64-byte
// minimum less the 4-byte FCS, which the model does not carry). Anything
// shorter — e.g. a fault-truncated runt — is discarded at the MAC, as on
// real hardware.
const MinFrameSize = 60

// ErrOverPosted reports a driver posting more RX buffers than the ring
// has descriptors. It replaces the panic that used to kill the run: the
// driver treats it as "ring full, keep the buffer".
var ErrOverPosted = errors.New("nic: RX ring over-posted")

// rxEntry is a completed receive awaiting the driver's poll.
type rxEntry struct {
	pkt     *pktbuf.Packet
	desc    Descriptor
	readyNS float64
}

// ring is a fixed-capacity FIFO backing a descriptor ring. The queues used
// to append/re-slice Go slices, which reallocated and retained garbage
// under steady load; a ring bounded by the descriptor count allocates once
// at queue construction and never again. Callers guard fullness against
// the configured ring size before pushing.
type ring[T any] struct {
	buf   []T
	head  int
	count int
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) len() int { return r.count }

func (r *ring[T]) push(v T) {
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// front returns the oldest entry; only valid when len() > 0.
func (r *ring[T]) front() *T { return &r.buf[r.head] }

func (r *ring[T]) pop() {
	var zero T
	r.buf[r.head] = zero // drop the packet reference
	r.head = (r.head + 1) % len(r.buf)
	r.count--
}

// Descriptor carries the wire metadata the NIC extracted for a received
// frame — the CQE contents the PMD converts into application metadata.
type Descriptor struct {
	Len     int
	VlanTCI uint16
	RSSHash uint32
	PktType uint32
	Queue   int
}

// Port is one RX/TX queue pair as a poll-mode driver sees it: the seam
// between an adapter and internal/dpdk. The simulated NIC exposes its
// queue pairs through NIC.Port; internal/wire implements the same surface
// over live datagram sockets, so the PMD, the metadata bindings, fault
// injection, and telemetry run unchanged on either backend.
type Port interface {
	// PortName names the adapter for reports; QueueID is the queue index.
	PortName() string
	QueueID() int
	// RXRingSize/TXRingSize bound the descriptor rings the driver fills.
	RXRingSize() int
	TXRingSize() int

	// Post hands a fresh buffer to the RX ring (refill); ErrOverPosted
	// when the ring cannot take more.
	Post(p *pktbuf.Packet) error
	// PostedCount reports buffers awaiting frames; PendingCount reports
	// completed receptions awaiting the driver's poll.
	PostedCount() int
	PendingCount() int
	// NextReadyNS is the readiness time of the oldest pending completion
	// (+Inf when idle; a live backend returns -Inf when frames are
	// pending, since real arrivals are never in the simulated future).
	NextReadyNS() float64
	// Poll pops up to max completed receptions ready by nowNS.
	Poll(core *machine.Core, nowNS float64, max int, pkts []*pktbuf.Packet, descs []Descriptor) int
	// PollCompressed is Poll through the compressed-CQE (vectorized) path.
	PollCompressed(core *machine.Core, nowNS float64, max int, pkts []*pktbuf.Packet, descs []Descriptor) int

	// Enqueue queues a frame for transmission; false when the ring is full.
	Enqueue(core *machine.Core, p *pktbuf.Packet, nowNS float64) bool
	// Reap returns buffers whose frames have left the wire by nowNS.
	Reap(nowNS float64, out []*pktbuf.Packet) int
	// InflightCount reports frames queued but not yet departed.
	InflightCount() int

	// RXStats/TXStats snapshot the queue counters for telemetry.
	RXStats() RXQueueStats
	TXStats() TXQueueStats
}

// QueuePair adapts one (RXQueue, TXQueue) pair of the simulated adapter
// to the Port interface.
type QueuePair struct {
	n  *NIC
	rx *RXQueue
	tx *TXQueue
}

var _ Port = (*QueuePair)(nil)

// Port returns queue q of the adapter as a driver-facing Port.
func (n *NIC) Port(q int) *QueuePair {
	return &QueuePair{n: n, rx: n.rx[q], tx: n.tx[q]}
}

// PortName implements Port.
func (qp *QueuePair) PortName() string { return qp.n.Cfg.Name }

// QueueID implements Port.
func (qp *QueuePair) QueueID() int { return qp.rx.id }

// RXRingSize implements Port.
func (qp *QueuePair) RXRingSize() int { return qp.n.Cfg.RXRingSize }

// TXRingSize implements Port.
func (qp *QueuePair) TXRingSize() int { return qp.n.Cfg.TXRingSize }

// Post implements Port.
func (qp *QueuePair) Post(p *pktbuf.Packet) error { return qp.rx.Post(p) }

// PostedCount implements Port.
func (qp *QueuePair) PostedCount() int { return qp.rx.PostedCount() }

// PendingCount implements Port.
func (qp *QueuePair) PendingCount() int { return qp.rx.PendingCount() }

// NextReadyNS implements Port.
func (qp *QueuePair) NextReadyNS() float64 { return qp.rx.NextReadyNS() }

// Poll implements Port.
func (qp *QueuePair) Poll(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []Descriptor) int {
	return qp.rx.Poll(core, nowNS, max, pkts, descs)
}

// PollCompressed implements Port.
func (qp *QueuePair) PollCompressed(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []Descriptor) int {
	return qp.rx.PollCompressed(core, nowNS, max, pkts, descs)
}

// Enqueue implements Port.
func (qp *QueuePair) Enqueue(core *machine.Core, p *pktbuf.Packet, nowNS float64) bool {
	return qp.tx.Enqueue(core, p, nowNS)
}

// Reap implements Port.
func (qp *QueuePair) Reap(nowNS float64, out []*pktbuf.Packet) int {
	return qp.tx.Reap(nowNS, out)
}

// InflightCount implements Port.
func (qp *QueuePair) InflightCount() int { return qp.tx.InflightCount() }

// RXStats implements Port.
func (qp *QueuePair) RXStats() RXQueueStats { return qp.rx.Stats }

// TXStats implements Port.
func (qp *QueuePair) TXStats() TXQueueStats { return qp.tx.Stats }

// RXQueue is one receive queue: posted buffers plus completed entries.
type RXQueue struct {
	nic        *NIC
	id         int
	posted     ring[*pktbuf.Packet]
	completed  ring[rxEntry]
	cqBase     memsim.Addr
	cqHead     uint64 // absolute index of next completion the driver reads
	lastCompNS float64
	// Stats are this queue's own counters (the adapter-global Stats
	// aggregate every queue).
	Stats RXQueueStats
}

// TXQueue is one transmit queue. Transmission uses two pipelined
// resources: the wire serializer (one frame-time each) and the descriptor
// engine (one MaxQueuePPS-gap each); a frame departs when both are done
// with it. Modelling them separately matters for mixed-size traffic —
// taking max(wire, gap) per frame would undercount the pipelining and cap
// mixed traffic below the true queue rate.
type TXQueue struct {
	nic      *NIC
	id       int
	inflight ring[txEntry]
	sqBase   memsim.Addr
	sqTail   uint64
	// wireDoneNS / descDoneNS are the two resources' clocks.
	wireDoneNS float64
	descDoneNS float64
	// Stats are this queue's own counters.
	Stats TXQueueStats
}

type txEntry struct {
	pkt      *pktbuf.Packet
	departNS float64
}

// NIC is one simulated adapter.
type NIC struct {
	Cfg   Config
	Stats Stats
	sys   *cache.System
	rx    []*RXQueue
	tx    []*TXQueue
	// OnDepart, when set, observes every transmitted packet with its
	// wire departure time — the testbed's latency probe.
	OnDepart func(p *pktbuf.Packet, departNS float64)

	// Fault-injection hooks, nil in normal runs (a nil check is the only
	// cost the fault layer adds to a clean datapath).
	//
	// FaultRxStall models a descriptor-ring stall: completions for queue
	// q at time ns become ready no earlier than the returned absolute
	// time (0 = no stall).
	FaultRxStall func(q int, ns float64) float64
	// FaultTxSlow models a slow receiver starving TX: the returned
	// factor (≥1) multiplies the wire-serialization time at ns.
	FaultTxSlow func(ns float64) float64
}

// New builds an adapter, carving descriptor rings out of the hugepage
// arena so CQE/SQE accesses land at stable simulated addresses.
func New(cfg Config, sys *cache.System, hugepages *memsim.Arena) *NIC {
	if cfg.NumQueues <= 0 {
		cfg.NumQueues = 1
	}
	if cfg.RXRingSize <= 0 || cfg.TXRingSize <= 0 {
		panic("nic: ring sizes must be positive")
	}
	n := &NIC{Cfg: cfg, sys: sys}
	for q := 0; q < cfg.NumQueues; q++ {
		n.rx = append(n.rx, &RXQueue{
			nic:        n,
			id:         q,
			posted:     newRing[*pktbuf.Packet](cfg.RXRingSize),
			completed:  newRing[rxEntry](cfg.RXRingSize),
			cqBase:     hugepages.Alloc(uint64(cfg.RXRingSize)*cqeSize, memsim.PageSize),
			lastCompNS: math.Inf(-1),
		})
		n.tx = append(n.tx, &TXQueue{
			nic:        n,
			id:         q,
			inflight:   newRing[txEntry](cfg.TXRingSize),
			sqBase:     hugepages.Alloc(uint64(cfg.TXRingSize)*sqeSize, memsim.PageSize),
			wireDoneNS: math.Inf(-1),
			descDoneNS: math.Inf(-1),
		})
	}
	return n
}

// Descriptor entry sizes (bytes) — an MLX5 CQE is 64 B, an SQE segment 64 B.
const (
	cqeSize = 64
	sqeSize = 64
)

// RX returns receive queue q.
func (n *NIC) RX(q int) *RXQueue { return n.rx[q] }

// TX returns transmit queue q.
func (n *NIC) TX(q int) *TXQueue { return n.tx[q] }

// RSSQueue picks the receive queue for a frame using a flow hash over the
// IPv4 addresses and L4 ports (symmetric simple hash; distribution, not
// cryptography, is what matters).
func (n *NIC) RSSQueue(frame []byte) int {
	if n.Cfg.NumQueues == 1 {
		return 0
	}
	h := rssHash(frame)
	return int(h % uint32(n.Cfg.NumQueues))
}

// HashFrame exposes the adapter's RSS flow hash to other backends (the
// wire NIC computes the same hash so RSS-keyed engines behave identically
// on real frames).
func HashFrame(frame []byte) uint32 { return rssHash(frame) }

// HashTuple computes the RSS hash an untagged IPv4 TCP/UDP frame with
// this 5-tuple would receive from HashFrame — the same FNV walk over
// the network-order src/dst IP and port bytes. Flow-affine subsystems
// (conntrack migration chasing fanout bucket moves) use it to map a
// flow key to its RSS bucket without a frame in hand.
func HashTuple(srcIP, dstIP uint32, srcPort, dstPort uint16, proto uint8) uint32 {
	var h uint32 = 2166136261
	mix := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
	mix32 := func(v uint32) { mix(byte(v >> 24)); mix(byte(v >> 16)); mix(byte(v >> 8)); mix(byte(v)) }
	mix16 := func(v uint16) { mix(byte(v >> 8)); mix(byte(v)) }
	mix32(srcIP)
	mix32(dstIP)
	if proto == netpkt.ProtoTCP || proto == netpkt.ProtoUDP {
		mix16(srcPort)
		mix16(dstPort)
	}
	return h
}

// FrameVlanTCI extracts the outer VLAN TCI the adapter strips into the
// descriptor, or 0 for untagged (or too-short) frames. Both shim TPIDs
// are accepted — 802.1Q (0x8100) and 802.1ad/QinQ (0x88a8) — matching
// the shim walk rssHash performs, so a QinQ frame's descriptor carries
// its service tag instead of a bogus zero.
func FrameVlanTCI(frame []byte) uint16 {
	if len(frame) < netpkt.EtherHdrLen+2 {
		return 0
	}
	et := uint16(frame[12])<<8 | uint16(frame[13])
	if et != netpkt.EtherTypeVLAN && et != netpkt.EtherTypeQinQ {
		return 0
	}
	return uint16(frame[14])<<8 | uint16(frame[15])
}

func rssHash(frame []byte) uint32 {
	// Walk past up to two 802.1Q/802.1ad shims to find the real
	// EtherType, the way hardware RSS parses tagged frames. The old code
	// looked for IPv4 at the untagged offset only, so every VLAN-tagged
	// frame hashed to 0 and multi-queue runs collapsed onto queue 0.
	etOff := netpkt.EtherHdrLen - 2 // EtherType position
	for tags := 0; tags < 2 && len(frame) >= etOff+2; tags++ {
		et := uint16(frame[etOff])<<8 | uint16(frame[etOff+1])
		if et != netpkt.EtherTypeVLAN && et != netpkt.EtherTypeQinQ {
			break
		}
		etOff += netpkt.VLANTagLen
	}
	if len(frame) >= etOff+2 &&
		frame[etOff] == 0x08 && frame[etOff+1] == 0x00 &&
		len(frame) >= etOff+2+netpkt.IPv4HdrLen {
		ip := frame[etOff+2:]
		var h uint32 = 2166136261
		mix := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
		for _, b := range ip[12:20] { // src+dst IP
			mix(b)
		}
		ihl := int(ip[0]&0x0f) * 4
		if len(ip) >= ihl+4 && (ip[9] == netpkt.ProtoTCP || ip[9] == netpkt.ProtoUDP) {
			for _, b := range ip[ihl : ihl+4] { // ports
				mix(b)
			}
		}
		return h
	}
	return fallbackHash(frame)
}

// fallbackHash spreads non-IPv4 traffic (ARP, unknown EtherTypes, runtish
// frames) by hashing the MAC addresses, the EtherType words, and the
// first payload bytes — enough entropy that distinct L2 flows land on
// distinct queues instead of the constant-0 hash that used to pin every
// such frame (and all its cache pressure) to queue 0.
func fallbackHash(frame []byte) uint32 {
	n := len(frame)
	if n > 34 {
		n = 34 // MACs + type + ARP sender/target fields
	}
	var h uint32 = 0x9dc5b7a1
	for _, b := range frame[:n] {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// Deliver presents a frame on the wire at time ns. The frame is DMA'd into
// the next posted buffer of queue q (or dropped, matching hardware drop
// semantics). Returns true if the frame entered the ring.
func (n *NIC) Deliver(q int, frame []byte, ns float64) bool {
	rxq := n.rx[q]
	if len(frame) < MinFrameSize {
		// The MAC discards runts (e.g. fault-truncated frames) before
		// they consume a descriptor.
		n.Stats.RxDropRunt++
		rxq.Stats.DropRunt++
		return false
	}
	if rxq.completed.len() >= n.Cfg.RXRingSize {
		n.Stats.RxDropFull++
		rxq.Stats.DropFull++
		return false
	}
	if rxq.posted.len() == 0 {
		n.Stats.RxDropNoBuf++
		rxq.Stats.DropNoBuf++
		return false
	}
	pkt := *rxq.posted.front()
	rxq.posted.pop()

	pkt.SetFrame(frame)
	pkt.ArrivalNS = ns

	// DMA: payload into the buffer, CQE write-back into the ring.
	n.sys.DMAWrite(pkt.DataAddr(), uint64(len(frame)))
	cqe := rxq.cqBase + memsim.Addr((rxq.cqHead+uint64(rxq.completed.len()))%uint64(n.Cfg.RXRingSize)*cqeSize)
	n.sys.DMAWrite(cqe, cqeSize)

	// Completion pacing: the queue cannot complete faster than its PPS
	// ceiling.
	ready := ns
	if n.Cfg.MaxQueuePPS > 0 {
		minGap := 1e9 / n.Cfg.MaxQueuePPS
		if rxq.lastCompNS+minGap > ready {
			ready = rxq.lastCompNS + minGap
		}
	}
	if n.FaultRxStall != nil {
		// Injected descriptor-ring stall: the completion write-back is
		// deferred to the end of the stall window.
		if until := n.FaultRxStall(q, ns); until > ready {
			ready = until
		}
	}
	rxq.lastCompNS = ready

	// FrameVlanTCI needs 16 bytes, not 14: the old guard was only masked
	// by the runt check above, and a direct short delivery would have
	// read past the frame.
	desc := Descriptor{Len: len(frame), Queue: q, RSSHash: rssHash(frame),
		VlanTCI: FrameVlanTCI(frame)}
	rxq.completed.push(rxEntry{pkt: pkt, desc: desc, readyNS: ready})
	n.Stats.RxDelivered++
	n.Stats.RxBytes += uint64(len(frame))
	rxq.Stats.Delivered++
	rxq.Stats.Bytes += uint64(len(frame))
	return true
}

// Post hands a fresh buffer to the queue for future DMA. The driver calls
// this during ring refill. Posting beyond the ring's descriptor count is
// refused with ErrOverPosted — the caller keeps the buffer and backs off,
// instead of the old panic that killed the run.
func (q *RXQueue) Post(p *pktbuf.Packet) error {
	if q.posted.len()+q.completed.len() >= q.nic.Cfg.RXRingSize {
		return ErrOverPosted
	}
	q.posted.push(p)
	return nil
}

// PostedCount reports buffers currently posted.
func (q *RXQueue) PostedCount() int { return q.posted.len() }

// PendingCount reports completions waiting for the driver.
func (q *RXQueue) PendingCount() int { return q.completed.len() }

// Poll pops up to max completed receptions that are ready by nowNS,
// charging the CQE reads to core. It returns the packets and their wire
// descriptors.
func (q *RXQueue) Poll(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []Descriptor) int {
	n := 0
	for n < max && q.completed.len() > 0 {
		e := *q.completed.front()
		if e.readyNS > nowNS {
			break
		}
		// Driver reads the CQE.
		cqe := q.cqBase + memsim.Addr(q.cqHead%uint64(q.nic.Cfg.RXRingSize)*cqeSize)
		core.Load(cqe, cqeSize)
		q.cqHead++
		q.completed.pop()
		pkts[n] = e.pkt
		descs[n] = e.desc
		n++
	}
	return n
}

// PollCompressed is Poll for a vectorized driver using CQE compression:
// one 64-B read covers a session of up to four completions (mlx5's
// compressed CQE format), so descriptor traffic drops ~4x.
func (q *RXQueue) PollCompressed(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []Descriptor) int {
	n := 0
	for n < max && q.completed.len() > 0 {
		e := *q.completed.front()
		if e.readyNS > nowNS {
			break
		}
		if q.cqHead%4 == 0 || n == 0 {
			cqe := q.cqBase + memsim.Addr(q.cqHead%uint64(q.nic.Cfg.RXRingSize)*cqeSize)
			core.Load(cqe, cqeSize)
		}
		q.cqHead++
		q.completed.pop()
		pkts[n] = e.pkt
		descs[n] = e.desc
		n++
	}
	return n
}

// NextReadyNS returns the readiness time of the oldest pending completion,
// or +Inf when the queue is idle — the testbed uses it to fast-forward an
// idle core.
func (q *RXQueue) NextReadyNS() float64 {
	if q.completed.len() == 0 {
		return inf
	}
	return q.completed.front().readyNS
}

var inf = math.Inf(1)

// Enqueue queues a frame for transmission at time nowNS, charging the SQE
// write to core. It returns false when the TX ring is full.
func (q *TXQueue) Enqueue(core *machine.Core, p *pktbuf.Packet, nowNS float64) bool {
	if q.inflight.len() >= q.nic.Cfg.TXRingSize {
		q.nic.Stats.TxDropFull++
		q.Stats.DropFull++
		return false
	}
	sqe := q.sqBase + memsim.Addr(q.sqTail%uint64(q.nic.Cfg.TXRingSize)*sqeSize)
	core.Store(sqe, sqeSize)
	q.sqTail++

	// The adapter DMA-reads the frame.
	q.nic.sys.DMARead(p.DataAddr(), uint64(p.Len()))

	// Serialization: the wire takes one frame-time, the descriptor
	// engine one PPS-gap; the two overlap across frames.
	wire := float64(p.Len()+20) * 8 / q.nic.Cfg.LinkGbps // +20B preamble/IFG/FCS overhead
	if q.nic.FaultTxSlow != nil {
		// Injected slow receiver: the link partner's pause frames
		// stretch every frame's effective serialization time.
		if f := q.nic.FaultTxSlow(nowNS); f > 1 {
			wire *= f
		}
	}
	start := nowNS
	if q.wireDoneNS > start {
		start = q.wireDoneNS
	}
	q.wireDoneNS = start + wire
	depart := q.wireDoneNS
	if q.nic.Cfg.MaxQueuePPS > 0 {
		gap := 1e9 / q.nic.Cfg.MaxQueuePPS
		d := nowNS
		if q.descDoneNS > d {
			d = q.descDoneNS
		}
		q.descDoneNS = d + gap
		if q.descDoneNS > depart {
			depart = q.descDoneNS
		}
	}

	q.inflight.push(txEntry{pkt: p, departNS: depart})
	q.nic.Stats.TxSent++
	q.nic.Stats.TxBytes += uint64(p.Len())
	q.Stats.Sent++
	q.Stats.Bytes += uint64(p.Len())
	if q.nic.OnDepart != nil {
		q.nic.OnDepart(p, depart)
	}
	return true
}

// Reap returns buffers whose frames have fully left the wire by nowNS so
// the driver can recycle them.
func (q *TXQueue) Reap(nowNS float64, out []*pktbuf.Packet) int {
	n := 0
	for n < len(out) && q.inflight.len() > 0 && q.inflight.front().departNS <= nowNS {
		out[n] = q.inflight.front().pkt
		q.inflight.pop()
		n++
	}
	return n
}

// InflightCount reports frames queued but not yet departed.
func (q *TXQueue) InflightCount() int { return q.inflight.len() }

// String summarizes the adapter state for debugging.
func (n *NIC) String() string {
	return fmt.Sprintf("%s: rx=%d dropNoBuf=%d dropFull=%d dropRunt=%d tx=%d txDrop=%d",
		n.Cfg.Name, n.Stats.RxDelivered, n.Stats.RxDropNoBuf, n.Stats.RxDropFull,
		n.Stats.RxDropRunt, n.Stats.TxSent, n.Stats.TxDropFull)
}
