package nic

import (
	"errors"
	"math"
	"testing"

	"packetmill/internal/cache"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

type rig struct {
	mach *machine.Machine
	core *machine.Core
	nic  *NIC
	huge *memsim.Arena
}

func newRig(cfg Config) *rig {
	m, core := machine.Default(2.0)
	huge := memsim.NewArena("huge", memsim.HugeBase, 1<<30)
	return &rig{mach: m, core: core, nic: New(cfg, m.Sys, huge), huge: huge}
}

func (r *rig) freshBuf() *pktbuf.Packet {
	addr := r.huge.Alloc(2048, 2048)
	return pktbuf.NewPacket(make([]byte, 2048), addr, 128)
}

func testFrame(size int) []byte {
	return netpkt.BuildUDP(make([]byte, 2048), netpkt.UDPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, TotalLen: size,
	})
}

func TestDeliverPollRoundTrip(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	q := r.nic.RX(0)
	q.Post(r.freshBuf())
	frame := testFrame(128)
	if !r.nic.Deliver(0, frame, 100) {
		t.Fatal("deliver failed")
	}
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]Descriptor, 32)
	n := q.Poll(r.core, 1e9, 32, pkts, descs)
	if n != 1 {
		t.Fatalf("polled %d", n)
	}
	if pkts[0].Len() != 128 || descs[0].Len != 128 {
		t.Fatalf("lengths: pkt=%d desc=%d", pkts[0].Len(), descs[0].Len)
	}
	if pkts[0].ArrivalNS != 100 {
		t.Fatalf("arrival = %v", pkts[0].ArrivalNS)
	}
	if string(pkts[0].Bytes()) != string(frame) {
		t.Fatal("payload corrupted in DMA")
	}
}

func TestDeliverDropsWithoutBuffers(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	if r.nic.Deliver(0, testFrame(64), 0) {
		t.Fatal("delivered with no posted buffer")
	}
	if r.nic.Stats.RxDropNoBuf != 1 {
		t.Fatalf("drop counter = %d", r.nic.Stats.RxDropNoBuf)
	}
}

func TestDeliverDropsWhenRingFull(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.RXRingSize = 4
	r := newRig(cfg)
	q := r.nic.RX(0)
	for i := 0; i < 4; i++ {
		q.Post(r.freshBuf())
	}
	for i := 0; i < 4; i++ {
		if !r.nic.Deliver(0, testFrame(64), float64(i)) {
			t.Fatalf("deliver %d failed", i)
		}
	}
	if r.nic.Deliver(0, testFrame(64), 5) {
		t.Fatal("delivered into full ring")
	}
	if r.nic.Stats.RxDropFull != 1 {
		t.Fatalf("RxDropFull = %d", r.nic.Stats.RxDropFull)
	}
}

func TestOverPostReturnsError(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.RXRingSize = 2
	r := newRig(cfg)
	q := r.nic.RX(0)
	if err := q.Post(r.freshBuf()); err != nil {
		t.Fatal(err)
	}
	if err := q.Post(r.freshBuf()); err != nil {
		t.Fatal(err)
	}
	if err := q.Post(r.freshBuf()); !errors.Is(err, ErrOverPosted) {
		t.Fatalf("over-post: err = %v, want ErrOverPosted", err)
	}
	if got := q.PostedCount(); got != 2 {
		t.Fatalf("posted %d after rejected post", got)
	}
}

func TestPollRespectsReadyTime(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	q := r.nic.RX(0)
	q.Post(r.freshBuf())
	r.nic.Deliver(0, testFrame(64), 5000)
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]Descriptor, 32)
	if n := q.Poll(r.core, 1000, 32, pkts, descs); n != 0 {
		t.Fatalf("polled %d before arrival", n)
	}
	if n := q.Poll(r.core, 6000, 32, pkts, descs); n != 1 {
		t.Fatalf("polled %d after arrival", n)
	}
}

func TestQueuePPSCeilingPacesCompletions(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.MaxQueuePPS = 1e6 // 1 µs spacing
	r := newRig(cfg)
	q := r.nic.RX(0)
	for i := 0; i < 3; i++ {
		q.Post(r.freshBuf())
	}
	// All arrive at t=0; completions must be spaced 1 µs apart.
	for i := 0; i < 3; i++ {
		r.nic.Deliver(0, testFrame(64), 0)
	}
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]Descriptor, 32)
	if n := q.Poll(r.core, 500, 32, pkts, descs); n != 1 {
		t.Fatalf("at 0.5µs polled %d, want 1", n)
	}
	if n := q.Poll(r.core, 1500, 32, pkts, descs); n != 1 {
		t.Fatalf("at 1.5µs polled %d more, want 1", n)
	}
	if n := q.Poll(r.core, 1e9, 32, pkts, descs); n != 1 {
		t.Fatalf("final poll %d, want 1", n)
	}
}

func TestNextReadyNS(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	q := r.nic.RX(0)
	if !math.IsInf(q.NextReadyNS(), 1) {
		t.Fatal("idle queue NextReadyNS not +Inf")
	}
	q.Post(r.freshBuf())
	r.nic.Deliver(0, testFrame(64), 777)
	if q.NextReadyNS() != 777 {
		t.Fatalf("NextReadyNS = %v", q.NextReadyNS())
	}
}

func TestDMAPopulatesLLC(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	q := r.nic.RX(0)
	buf := r.freshBuf()
	q.Post(buf)
	r.nic.Deliver(0, testFrame(512), 0)
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]Descriptor, 32)
	q.Poll(r.core, 1, 32, pkts, descs)
	// Reading the packet's first line must hit LLC (DDIO), not DRAM.
	if lvl := r.core.Load(pkts[0].DataAddr(), 64); lvl != cache.LLC {
		t.Fatalf("DMA'd payload served from %v, want LLC", lvl)
	}
}

func TestTxSerializationAtLineRate(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.MaxQueuePPS = 0
	r := newRig(cfg)
	tx := r.nic.TX(0)
	var departs []float64
	r.nic.OnDepart = func(_ *pktbuf.Packet, d float64) { departs = append(departs, d) }
	for i := 0; i < 3; i++ {
		p := r.freshBuf()
		p.SetFrame(testFrame(1000))
		if !tx.Enqueue(r.core, p, 0) {
			t.Fatal("enqueue failed")
		}
	}
	// 1020 B on the wire at 100 Gbps = 81.6 ns per frame.
	want := 1020.0 * 8 / 100
	if math.Abs(departs[0]-want) > 1e-9 {
		t.Fatalf("first departure %v, want %v", departs[0], want)
	}
	if gap := departs[1] - departs[0]; math.Abs(gap-want) > 1e-9 {
		t.Fatalf("inter-departure gap %v, want %v", gap, want)
	}
}

func TestTxRingFullDrops(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.TXRingSize = 2
	r := newRig(cfg)
	tx := r.nic.TX(0)
	for i := 0; i < 2; i++ {
		p := r.freshBuf()
		p.SetFrame(testFrame(64))
		if !tx.Enqueue(r.core, p, 0) {
			t.Fatal("enqueue failed")
		}
	}
	p := r.freshBuf()
	p.SetFrame(testFrame(64))
	if tx.Enqueue(r.core, p, 0) {
		t.Fatal("enqueued into full ring")
	}
	if r.nic.Stats.TxDropFull != 1 {
		t.Fatalf("TxDropFull = %d", r.nic.Stats.TxDropFull)
	}
}

func TestTxReapRecyclesAfterDeparture(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	tx := r.nic.TX(0)
	p := r.freshBuf()
	p.SetFrame(testFrame(1000))
	tx.Enqueue(r.core, p, 0)
	out := make([]*pktbuf.Packet, 8)
	if n := tx.Reap(1, out); n != 0 {
		t.Fatalf("reaped %d before departure", n)
	}
	if n := tx.Reap(1e6, out); n != 1 || out[0] != p {
		t.Fatalf("reap after departure: n=%d", n)
	}
	if tx.InflightCount() != 0 {
		t.Fatal("inflight not drained")
	}
}

func TestRSSSpreadsFlows(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.NumQueues = 4
	r := newRig(cfg)
	seen := map[int]int{}
	for i := 0; i < 64; i++ {
		f := netpkt.BuildUDP(make([]byte, 256), netpkt.UDPPacketSpec{
			SrcIP: netpkt.IPv4{10, 0, byte(i), 1}, DstIP: netpkt.IPv4{10, 1, 0, 2},
			SrcPort: uint16(1000 + i), DstPort: 80, TotalLen: 100,
		})
		seen[r.nic.RSSQueue(f)]++
	}
	if len(seen) < 3 {
		t.Fatalf("RSS used only %d of 4 queues: %v", len(seen), seen)
	}
}

func TestRSSIsFlowStable(t *testing.T) {
	cfg := DefaultConfig("nic0")
	cfg.NumQueues = 4
	r := newRig(cfg)
	f := testFrame(200)
	q := r.nic.RSSQueue(f)
	for i := 0; i < 10; i++ {
		if r.nic.RSSQueue(f) != q {
			t.Fatal("RSS not deterministic per flow")
		}
	}
}

func TestVLANDescriptorExtraction(t *testing.T) {
	r := newRig(DefaultConfig("nic0"))
	q := r.nic.RX(0)
	q.Post(r.freshBuf())
	buf := make([]byte, netpkt.VLANTagLen+100)
	copy(buf[netpkt.VLANTagLen:], testFrame(100))
	tagged := netpkt.InsertVLAN(buf, netpkt.VLANTagLen, netpkt.VLANTag{PCP: 3, VID: 7})
	r.nic.Deliver(0, tagged, 0)
	pkts := make([]*pktbuf.Packet, 1)
	descs := make([]Descriptor, 1)
	q.Poll(r.core, 1, 1, pkts, descs)
	wantTCI := uint16(3)<<13 | 7
	if descs[0].VlanTCI != wantTCI {
		t.Fatalf("VlanTCI = %#x, want %#x", descs[0].VlanTCI, wantTCI)
	}
}

func TestStringSummary(t *testing.T) {
	r := newRig(DefaultConfig("nicX"))
	if s := r.nic.String(); s == "" {
		t.Fatal("empty summary")
	}
}
