package nic

import (
	"testing"

	"packetmill/internal/netpkt"
	"packetmill/internal/trafficgen"
)

// TestRSSSpreadsVLANMix is the queue-collapse regression: a 4-queue NIC
// offered a VLAN-tagged TCP/UDP/ARP mix must spread traffic so no queue
// receives more than 2× its fair share. Before the rssHash fix every
// 802.1Q frame (and every non-IPv4 frame) hashed to 0, pinning the whole
// load onto queue 0.
func TestRSSSpreadsVLANMix(t *testing.T) {
	const queues = 4
	cfg := DefaultConfig("rss")
	cfg.NumQueues = queues
	r := newRig(cfg)

	src := trafficgen.NewFixedSize(trafficgen.Config{
		Seed: 7, RateGbps: 100, Count: 20000, Flows: 512,
		TCPShare: 0.55, UDPShare: 0.35, ICMPShare: 0.05, // remainder ARP
		VLANID: 42,
	}, 128)

	counts := make([]int, queues)
	total := 0
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		if frame[12] != 0x81 || frame[13] != 0x00 {
			t.Fatalf("generator produced untagged frame")
		}
		counts[r.nic.RSSQueue(frame)]++
		total++
	}
	fair := float64(total) / queues
	for q, c := range counts {
		if float64(c) > 2*fair {
			t.Fatalf("queue %d got %d of %d frames (>2x fair share %.0f): %v",
				q, c, total, fair, counts)
		}
		if c == 0 {
			t.Fatalf("queue %d received nothing: %v", q, counts)
		}
	}
}

// TestRSSTaggedMatchesUntaggedFlow checks the VLAN skip finds the same
// flow hash as the untagged frame — tagging must not reshuffle flows.
func TestRSSTaggedMatchesUntaggedFlow(t *testing.T) {
	frame := netpkt.BuildTCP(make([]byte, 128), netpkt.TCPPacketSpec{
		SrcMAC: netpkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: netpkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 1, 0, 1},
		SrcPort: 1234, DstPort: 80, TotalLen: 128,
	})
	// Copy into a fresh buffer with headroom: the in-place insert would
	// otherwise corrupt the untagged frame we hash against.
	buf := make([]byte, netpkt.VLANTagLen+len(frame))
	copy(buf[netpkt.VLANTagLen:], frame)
	tagged := netpkt.InsertVLAN(buf, netpkt.VLANTagLen, netpkt.VLANTag{VID: 7})
	if h1, h2 := rssHash(frame), rssHash(tagged); h1 != h2 {
		t.Fatalf("tagged flow hashed %#x, untagged %#x — VLAN shim not skipped", h2, h1)
	}
}

// TestRSSNonIPv4NotConstant checks distinct ARP frames no longer share
// the constant 0 hash.
func TestRSSNonIPv4NotConstant(t *testing.T) {
	mk := func(last byte) []byte {
		f := make([]byte, 64)
		netpkt.PutEther(f, netpkt.EtherHeader{
			Dst:       netpkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			Src:       netpkt.MAC{2, 0, 0, 0, 0, last},
			EtherType: netpkt.EtherTypeARP,
		})
		netpkt.PutARP(f[netpkt.EtherHdrLen:], netpkt.ARPPacket{
			Op: netpkt.ARPRequest, SenderHA: netpkt.MAC{2, 0, 0, 0, 0, last},
			SenderIP: netpkt.IPv4{10, 0, 0, last}, TargetIP: netpkt.IPv4{10, 1, 0, 1},
		})
		return f
	}
	seen := map[uint32]bool{}
	for i := byte(1); i <= 8; i++ {
		seen[rssHash(mk(i))] = true
	}
	if len(seen) < 4 {
		t.Fatalf("8 distinct ARP flows produced only %d hashes", len(seen))
	}
}

// TestFrameVlanTCIBothTPIDs: the stripped-tag extraction must accept
// both shim TPIDs — 802.1Q (0x8100) and 802.1ad/QinQ (0x88a8) — the same
// way the rssHash shim walk does. Before the fix a QinQ frame's
// descriptor carried VlanTCI 0 while its RSS hash still skipped the
// shim, so the two disagreed about whether the frame was tagged.
func TestFrameVlanTCIBothTPIDs(t *testing.T) {
	mk := func(tpid, tci uint16) []byte {
		f := make([]byte, 64)
		f[12], f[13] = byte(tpid>>8), byte(tpid)
		f[14], f[15] = byte(tci>>8), byte(tci)
		f[16], f[17] = 0x08, 0x00
		return f
	}
	if got := FrameVlanTCI(mk(netpkt.EtherTypeVLAN, 0x0123)); got != 0x0123 {
		t.Fatalf("802.1Q TCI = %#x, want 0x0123", got)
	}
	if got := FrameVlanTCI(mk(netpkt.EtherTypeQinQ, 0x2456)); got != 0x2456 {
		t.Fatalf("QinQ service tag = %#x, want 0x2456", got)
	}
	if got := FrameVlanTCI(mk(netpkt.EtherTypeIPv4, 0xbeef)); got != 0 {
		t.Fatalf("untagged frame TCI = %#x, want 0", got)
	}
	if got := FrameVlanTCI(make([]byte, netpkt.EtherHdrLen+1)); got != 0 {
		t.Fatalf("short frame TCI = %#x, want 0", got)
	}
}

// TestDeliverShortVLANFrameSafe is the bounds-guard regression for the
// Deliver TCI read: a frame that looks like 802.1Q but ends before the
// TCI must not read past the buffer. (Today the runt check drops it
// first; the guard must hold even if that ordering changes.)
func TestDeliverShortVLANFrameSafe(t *testing.T) {
	r := newRig(DefaultConfig("short"))
	r.nic.RX(0).Post(r.freshBuf())
	frame := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 0x81, 0x00, 0xff} // 15B, no TCI
	if r.nic.Deliver(0, frame, 0) {
		t.Fatal("15-byte frame accepted")
	}
	if r.nic.Stats.RxDropRunt != 1 || r.nic.RX(0).Stats.DropRunt != 1 {
		t.Fatalf("runt not counted per NIC and per queue: %+v %+v",
			r.nic.Stats, r.nic.RX(0).Stats)
	}
}

// TestPerQueueStatsPartitionNICStats delivers across queues and checks
// the per-queue ledgers sum to the adapter-global ones.
func TestPerQueueStatsPartitionNICStats(t *testing.T) {
	cfg := DefaultConfig("split")
	cfg.NumQueues = 4
	r := newRig(cfg)
	for q := 0; q < 4; q++ {
		for i := 0; i < q+1; i++ {
			if err := r.nic.RX(q).Post(r.freshBuf()); err != nil {
				t.Fatal(err)
			}
		}
	}
	frame := testFrame(64)
	for q := 0; q < 4; q++ {
		for i := 0; i < q+2; i++ { // one more than posted: last drops no-buf
			r.nic.Deliver(q, frame, float64(i))
		}
	}
	var delivered, noBuf uint64
	for q := 0; q < 4; q++ {
		st := r.nic.RX(q).Stats
		if st.Delivered != uint64(q+1) || st.DropNoBuf != 1 {
			t.Fatalf("queue %d stats: %+v", q, st)
		}
		delivered += st.Delivered
		noBuf += st.DropNoBuf
	}
	if delivered != r.nic.Stats.RxDelivered || noBuf != r.nic.Stats.RxDropNoBuf {
		t.Fatalf("per-queue sums (%d, %d) != NIC stats (%d, %d)",
			delivered, noBuf, r.nic.Stats.RxDelivered, r.nic.Stats.RxDropNoBuf)
	}
}
