package flowlog

import (
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"

	"packetmill/internal/conntrack"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/stats"
)

func newShard(t *testing.T, cfg conntrack.Config) *conntrack.Shard {
	t.Helper()
	return conntrack.NewShard(cfg, memsim.NewArena("fl", memsim.HeapBase, 1<<28), 7)
}

// makeTCPFrame builds a minimal Ethernet+IPv4+TCP frame for the given
// 5-tuple (payload padding to 64 bytes).
func makeTCPFrame(srcIP, dstIP uint32, sport, dport uint16) []byte {
	f := make([]byte, 64)
	binary.BigEndian.PutUint16(f[12:14], netpkt.EtherTypeIPv4)
	ip := f[netpkt.EtherHdrLen:]
	ip[0] = 0x45
	ip[9] = netpkt.ProtoTCP
	binary.BigEndian.PutUint32(ip[12:16], srcIP)
	binary.BigEndian.PutUint32(ip[16:20], dstIP)
	l4 := ip[20:]
	binary.BigEndian.PutUint16(l4[0:2], sport)
	binary.BigEndian.PutUint16(l4[2:4], dport)
	return f
}

func TestKeyFromFrame(t *testing.T) {
	f := makeTCPFrame(0x0a000001, 0x0a010002, 1024, 80)
	k, ok := KeyFromFrame(f)
	if !ok {
		t.Fatal("KeyFromFrame rejected a well-formed TCP frame")
	}
	want := conntrack.Key{SrcIP: 0x0a000001, DstIP: 0x0a010002,
		SrcPort: 1024, DstPort: 80, Proto: netpkt.ProtoTCP}
	if k != want {
		t.Fatalf("key = %+v, want %+v", k, want)
	}

	// One VLAN tag is tolerated.
	tagged := make([]byte, 0, len(f)+4)
	tagged = append(tagged, f[:12]...)
	tagged = append(tagged, 0x81, 0x00, 0x00, 0x2a)
	tagged = append(tagged, f[12:]...)
	if kk, ok := KeyFromFrame(tagged); !ok || kk != want {
		t.Fatalf("VLAN-tagged key = %+v ok=%v, want %+v", kk, ok, want)
	}

	// Non-IP and truncated frames are refused, not mis-parsed.
	arp := make([]byte, 64)
	binary.BigEndian.PutUint16(arp[12:14], netpkt.EtherTypeARP)
	if _, ok := KeyFromFrame(arp); ok {
		t.Fatal("KeyFromFrame accepted an ARP frame")
	}
	if _, ok := KeyFromFrame(f[:20]); ok {
		t.Fatal("KeyFromFrame accepted a truncated frame")
	}
}

// Every record must encode as valid JSON with the schema tag; flow
// records carry the tuple, aggregates the reason.
func TestRecordJSON(t *testing.T) {
	flow := Record{
		Core: 0,
		Key: conntrack.Key{SrcIP: 0x0a000001, DstIP: 0x0a010002,
			SrcPort: 1024, DstPort: 80, Proto: 6},
		State: conntrack.StateEstablished, Verdict: VerdictForwarded,
		End: EndExpired, Reason: stats.NumDropReasons,
		Packets: 9, Bytes: 4096, FirstNS: 1000, LastNS: 9000,
		NATIP: 0xc0a80001, NATPort: 40001,
		LatSamples: 3, LatSumNS: 9000, LatMaxNS: 5000,
	}
	agg := Record{
		Core: -1, Verdict: VerdictShed, End: EndAggregate,
		Reason: stats.DropOverloadShed, Aggregate: true, Packets: 512,
	}
	var doc map[string]any
	for _, r := range []Record{flow, agg} {
		line := AppendJSON(nil, &r)
		if err := json.Unmarshal(line, &doc); err != nil {
			t.Fatalf("record does not parse as JSON: %v\n%s", err, line)
		}
		if doc["schema"] != Schema {
			t.Fatalf("schema = %v, want %q", doc["schema"], Schema)
		}
	}
	line := string(AppendJSON(nil, &flow))
	for _, want := range []string{`"src":"10.0.0.1"`, `"dst":"10.1.0.2"`,
		`"sport":1024`, `"dport":80`, `"state":"established"`,
		`"verdict":"forwarded"`, `"end":"expired"`,
		`"nat_ip":"192.168.0.1"`, `"nat_port":40001`, `"lat_samples":3`} {
		if !strings.Contains(line, want) {
			t.Fatalf("flow record lacks %s:\n%s", want, line)
		}
	}
	line = string(AppendJSON(nil, &agg))
	for _, want := range []string{`"aggregate":true`, `"reason":"overload-shed"`,
		`"verdict":"shed"`, `"packets":512`} {
		if !strings.Contains(line, want) {
			t.Fatalf("aggregate record lacks %s:\n%s", want, line)
		}
	}
	if strings.Contains(line, `"src"`) {
		t.Fatalf("aggregate record carries a flow tuple:\n%s", line)
	}
	if got := JSONL([]Record{flow, agg}); strings.Count(string(got), "\n") != 2 {
		t.Fatalf("JSONL emitted %d lines, want 2", strings.Count(string(got), "\n"))
	}
}

func TestVerdictForReason(t *testing.T) {
	for _, r := range stats.Reasons() {
		v := VerdictForReason(r)
		switch {
		case r.IsOverload() && v != VerdictShed:
			t.Fatalf("%s -> %s, want shed", r, v)
		case r.IsFlowTable() && v != VerdictRefused:
			t.Fatalf("%s -> %s, want refused", r, v)
		case !r.IsOverload() && !r.IsFlowTable() && v != VerdictDropped:
			t.Fatalf("%s -> %s, want dropped", r, v)
		}
	}
}

// Ring overflow must lose records, never packets: overwritten entries
// roll into per-verdict aggregates and the packet totals stay exact.
func TestRingOverflowConservesPackets(t *testing.T) {
	col := New(Config{RingSize: 8})
	c := col.Core(0)
	const flows = 50
	var totalPkts uint64
	for i := 0; i < flows; i++ {
		e := &conntrack.Entry{
			Key:     conntrack.Key{SrcIP: uint32(i + 1), DstIP: 2, SrcPort: 1, DstPort: 2, Proto: 6},
			Packets: uint64(i + 1), Bytes: uint64((i + 1) * 100),
			Created: float64(i), Last: float64(i + 10),
		}
		totalPkts += e.Packets
		c.FlowEnd(e, conntrack.CauseExpired)
	}
	if lost := col.RecordsLost(); lost != flows-8 {
		t.Fatalf("RecordsLost = %d, want %d", lost, flows-8)
	}
	var drops stats.DropCounters
	recs := col.Records(&drops, totalPkts)
	s := Summarize(recs)
	if s.TxSidePackets != totalPkts {
		t.Fatalf("TX-side packets = %d, want %d", s.TxSidePackets, totalPkts)
	}
	rec := Reconcile(recs, totalPkts, totalPkts, &drops)
	if !rec.Exact {
		t.Fatalf("reconciliation inexact: %+v", rec)
	}
	// Migrations must not emit records.
	before := len(col.Records(&drops, totalPkts))
	c.FlowEnd(&conntrack.Entry{Packets: 5}, conntrack.CauseMigrated)
	if after := len(col.Records(&drops, totalPkts)); after != before {
		t.Fatal("a migrated flow emitted a record")
	}
}

// The full join: ended flows, live flows from a bound shard, element
// refusals subtracted from the external ledger, the ledger remainder,
// and the wire residue — all reconciling exactly.
func TestRecordsReconcileExactly(t *testing.T) {
	col := New(Config{})
	c := col.Core(0)
	s := newShard(t, conntrack.Config{Capacity: 64})
	c.BindShard(s, true, 0)

	// Three live flows, 4 packets each.
	var livePkts uint64
	for i := 0; i < 3; i++ {
		k := conntrack.Key{SrcIP: uint32(0x0a000001 + i), DstIP: 0x0a010002,
			SrcPort: 1000, DstPort: 80, Proto: netpkt.ProtoTCP}
		kk, _ := conntrack.Canonical(k)
		for p := 0; p < 4; p++ {
			e, _ := s.Track(nil, kk, netpkt.ProtoTCP, netpkt.TCPFlagSYN, float64(p)*1e3, 0)
			if e != nil {
				e.Bytes += 64
			}
			livePkts++
		}
	}
	// Two ended flows, 10 packets each.
	var endedPkts uint64
	for i := 0; i < 2; i++ {
		e := &conntrack.Entry{
			Key:     conntrack.Key{SrcIP: uint32(100 + i), DstIP: 7, SrcPort: 5, DstPort: 6, Proto: 17},
			Packets: 10, Bytes: 1000, Created: 0, Last: 5e6,
		}
		endedPkts += 10
		c.FlowEnd(e, conntrack.CauseDeleted)
	}
	// One evicted flow: TX-side by definition.
	ev := &conntrack.Entry{
		Key:     conntrack.Key{SrcIP: 200, DstIP: 7, SrcPort: 5, DstPort: 6, Proto: 6},
		Packets: 3, Bytes: 300,
	}
	c.FlowEnd(ev, conntrack.CauseEvicted)
	// Element refusals: booked here AND in the external ledger.
	for i := 0; i < 5; i++ {
		c.Refused(stats.DropFlowTableFull, 64, float64(i)*1e3)
	}
	// Untracked passthrough.
	c.Untracked(60)
	c.Untracked(60)

	var drops stats.DropCounters
	drops.Add(stats.DropFlowTableFull, 5) // the refusals, externally booked
	drops.Add(stats.DropOverloadShed, 20) // sheds with no element hook
	drops.Add(stats.DropRxNoBuf, 7)       // NIC loss

	txWire := livePkts + endedPkts + 3 + 2 + 11 // +3 evicted, +2 untracked, +11 residue
	offered := txWire + drops.Total()
	recs := col.Records(&drops, txWire)
	rec := Reconcile(recs, offered, txWire, &drops)
	if !rec.Exact {
		t.Fatalf("reconciliation inexact: %+v", rec)
	}
	sum := Summarize(recs)
	if sum.Packets[VerdictShed] != 20 {
		t.Fatalf("shed packets = %d, want 20", sum.Packets[VerdictShed])
	}
	if sum.Packets[VerdictRefused] != 5 {
		t.Fatalf("refused packets = %d, want 5 (ledger remainder must not double-count)", sum.Packets[VerdictRefused])
	}
	if sum.Packets[VerdictDropped] != 7 {
		t.Fatalf("dropped packets = %d, want 7", sum.Packets[VerdictDropped])
	}
	if sum.Packets[VerdictEvicted] != 3 {
		t.Fatalf("evicted packets = %d, want 3", sum.Packets[VerdictEvicted])
	}
	if sum.Unattributed != 2+11 {
		t.Fatalf("unattributed = %d, want 13", sum.Unattributed)
	}
	// Live flows surface as active records with their tuple.
	var active int
	for i := range recs {
		if recs[i].End == EndActive {
			active++
			if recs[i].Aggregate || recs[i].Key.DstIP != 0x0a010002 {
				t.Fatalf("malformed active record: %+v", recs[i])
			}
		}
	}
	if active != 3 {
		t.Fatalf("active records = %d, want 3", active)
	}
}

// The depart hook samples 1-in-N, parses keys back, and folds latency
// into the live entry; unknown tuples count as misses.
func TestNoteDepartSampling(t *testing.T) {
	col := New(Config{SampleEvery: 2})
	c := col.Core(0)
	s := newShard(t, conntrack.Config{Capacity: 64})
	c.BindShard(s, true, 0)

	k := conntrack.Key{SrcIP: 0x0a000001, DstIP: 0x0a010002,
		SrcPort: 1024, DstPort: 80, Proto: netpkt.ProtoTCP}
	kk, _ := conntrack.Canonical(k)
	e, _ := s.Track(nil, kk, netpkt.ProtoTCP, netpkt.TCPFlagSYN, 0, 0)
	if e == nil {
		t.Fatal("Track refused the flow")
	}

	frame := makeTCPFrame(k.SrcIP, k.DstIP, k.SrcPort, k.DstPort)
	for i := 0; i < 8; i++ {
		c.NoteDepart(frame, 1000)
	}
	sampled, misses := col.LatencySampled()
	if sampled != 4 || misses != 0 {
		t.Fatalf("sampled=%d misses=%d, want 4/0 (1-in-2 of 8)", sampled, misses)
	}
	if e.LatSamples != 4 || e.LatSumNS != 4000 || e.LatMaxNS != 1000 {
		t.Fatalf("entry latency = {n=%d sum=%v max=%v}, want {4 4000 1000}",
			e.LatSamples, e.LatSumNS, e.LatMaxNS)
	}
	// A tuple no table knows counts as a miss.
	stranger := makeTCPFrame(1, 2, 3, 4)
	c.NoteDepart(stranger, 500)
	c.NoteDepart(stranger, 500)
	if _, misses = col.LatencySampled(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestTopByBytesAndBuckets(t *testing.T) {
	recs := []Record{
		{Key: conntrack.Key{SrcIP: 1}, Bytes: 100},
		{Key: conntrack.Key{SrcIP: 2}, Bytes: 900},
		{Key: conntrack.Key{SrcIP: 3}, Bytes: 500},
		{Aggregate: true, Bytes: 1 << 30}, // aggregates never rank
	}
	top := TopByBytes(recs, 2)
	if len(top) != 2 || top[0].Bytes != 900 || top[1].Bytes != 500 {
		t.Fatalf("TopByBytes = %+v", top)
	}
	// BucketOf is deterministic and in-range.
	k := conntrack.Key{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: 6}
	b := BucketOf(k, 256)
	if b < 0 || b >= 256 {
		t.Fatalf("BucketOf out of range: %d", b)
	}
	if BucketOf(k, 256) != b {
		t.Fatal("BucketOf not deterministic")
	}
}
