// The flow-record pipeline: per-core, zero-alloc collection of flow
// lifecycle events, joined with the conntrack ledgers into the Records
// a run exports. Stateful elements bind a per-core Core and call its
// hooks from the hot path — flow endings land in a preallocated ring,
// refusals and untracked traffic in per-reason counters, and the TX
// depart hook samples per-flow latency back into the live table entry.
// Nothing on the hot path allocates; the join with live flows, external
// drop ledgers, and the wire-TX residue happens once, at Records time.
//
// The model is retina's packetparser→enricher→hubble chain collapsed
// into the run-to-completion core: the "parser" is the element that
// already holds the flow entry, the "enricher" is the end-of-run join,
// and the export surface is the existing /metrics//report//flows
// exporter.
package flowlog

import (
	"sort"
	"sync"

	"packetmill/internal/conntrack"
	"packetmill/internal/stats"
)

// Hookable is the seam stateful elements implement so the testbed can
// discover them per core and arm flow logging.
type Hookable interface {
	BindFlowLog(*Core)
}

// Config sizes the collector.
type Config struct {
	// RingSize is the per-core closed-flow ring capacity (default
	// 4096). Overflow rolls the oldest records into per-verdict
	// aggregates, so counters stay exact even when records are lost.
	RingSize int
	// SampleEvery is the TX latency sampling period in packets
	// (default 8).
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 8
	}
	return c
}

// Collector owns the per-core flow logs of one run. Cores are created
// lazily at build time; the hot path never touches the collector, only
// its per-core Cores.
type Collector struct {
	cfg   Config
	mu    sync.Mutex
	cores []*Core
}

// New builds a collector.
func New(cfg Config) *Collector {
	return &Collector{cfg: cfg.withDefaults()}
}

// Core returns core i's flow log, creating it on first use. Setup-time
// only; returns nil on a nil collector so call sites stay unconditional.
func (c *Collector) Core(i int) *Core {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.cores) <= i {
		c.cores = append(c.cores, nil)
	}
	if c.cores[i] == nil {
		c.cores[i] = &Core{
			id:          i,
			ring:        make([]Record, c.cfg.RingSize),
			sampleEvery: c.cfg.SampleEvery,
		}
	}
	return c.cores[i]
}

// boundShard is one stateful element's table registered with a core.
type boundShard struct {
	s *conntrack.Shard
	// canonical: the table is keyed by conntrack.Canonical 5-tuples
	// (ConnTracker); false for as-seen keys (IPRewriter).
	canonical bool
	// natIP tags the table's flows with their NAT external IP; the
	// external port travels in Entry.Value.
	natIP uint32
}

// Core is one core's flow log. Single-writer: only the owning core's
// datapath goroutine touches it, so no field is synchronized — readers
// (Records, snapshots) run while cores are quiescent, exactly like the
// rest of the per-core telemetry.
type Core struct {
	id   int
	ring []Record
	next int
	// emitted counts closed-flow records ever written; kept is
	// min(emitted, len(ring)).
	emitted uint64

	// Exact aggregates over closed flows, by verdict — immune to ring
	// overflow.
	endFlows [NumVerdicts]uint64
	endPkts  [NumVerdicts]uint64
	endBytes [NumVerdicts]uint64

	// Ring-overflow roll-up: records overwritten before export.
	ovFlows [NumVerdicts]uint64
	ovPkts  [NumVerdicts]uint64
	ovBytes [NumVerdicts]uint64

	// Element-refused packets by reason (flow-table refusals and other
	// element kills observed at the hook).
	refPkts  [stats.NumDropReasons]uint64
	refBytes [stats.NumDropReasons]uint64
	refFirst [stats.NumDropReasons]float64
	refLast  [stats.NumDropReasons]float64

	// Traffic forwarded outside any flow table's jurisdiction (non-IP
	// passthrough).
	untrackedPkts  uint64
	untrackedBytes uint64

	// TX latency sampler.
	sampleEvery int
	tick        int
	shards      []boundShard
	latSampled  uint64
	latMisses   uint64
}

// BindShard registers a stateful element's table with this core's log:
// its live flows join the export, and the depart hook samples latency
// into its entries. Setup-time only; nil-safe.
func (c *Core) BindShard(s *conntrack.Shard, canonical bool, natIP uint32) {
	if c == nil || s == nil {
		return
	}
	c.shards = append(c.shards, boundShard{s: s, canonical: canonical, natIP: natIP})
}

// FlowEnd records a flow leaving a ConnTracker table. Hot path:
// nil-safe, allocation-free. Migrations are skipped — the importing
// core's entry carries the flow's full history and will emit the one
// record when the flow truly ends.
func (c *Core) FlowEnd(e *conntrack.Entry, cause conntrack.Cause) {
	if c == nil || cause == conntrack.CauseMigrated {
		return
	}
	c.record(e, cause, 0, 0)
}

// FlowEndNAT is FlowEnd for NAT-owned flows, tagging the record with
// the translation (external IP + the port in Entry.Value).
func (c *Core) FlowEndNAT(e *conntrack.Entry, cause conntrack.Cause, natIP uint32) {
	if c == nil || cause == conntrack.CauseMigrated {
		return
	}
	c.record(e, cause, natIP, uint16(e.Value))
}

func (c *Core) record(e *conntrack.Entry, cause conntrack.Cause, natIP uint32, natPort uint16) {
	var v Verdict
	var end EndCause
	switch cause {
	case conntrack.CauseEvicted:
		v, end = VerdictEvicted, EndEvicted
	case conntrack.CauseExpired:
		v, end = VerdictForwarded, EndExpired
	default:
		v, end = VerdictForwarded, EndDeleted
	}
	if c.emitted >= uint64(len(c.ring)) {
		old := &c.ring[c.next]
		c.ovFlows[old.Verdict]++
		c.ovPkts[old.Verdict] += old.Packets
		c.ovBytes[old.Verdict] += old.Bytes
	}
	r := &c.ring[c.next]
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
	}
	c.emitted++
	*r = Record{
		Core: int32(c.id), Key: e.Key, State: e.State, Verdict: v, End: end,
		Reason:  stats.NumDropReasons,
		Packets: e.Packets, Bytes: e.Bytes,
		FirstNS: e.Created, LastNS: e.Last,
		NATIP: natIP, NATPort: natPort,
		LatSamples: e.LatSamples, LatSumNS: e.LatSumNS, LatMaxNS: e.LatMaxNS,
	}
	c.endFlows[v]++
	c.endPkts[v] += e.Packets
	c.endBytes[v] += e.Bytes
}

// Refused books a packet an element killed (flow-table refusal or other
// element-level drop), under its drop reason. Hot path: nil-safe,
// allocation-free. The reason must also be booked in the run's drop
// ledger by the element (KillReason does) — Records subtracts these
// from the external ledger so nothing double-counts.
func (c *Core) Refused(r stats.DropReason, bytes uint64, nowNS float64) {
	if c == nil || r >= stats.NumDropReasons {
		return
	}
	if c.refPkts[r] == 0 || nowNS < c.refFirst[r] {
		c.refFirst[r] = nowNS
	}
	if nowNS > c.refLast[r] {
		c.refLast[r] = nowNS
	}
	c.refPkts[r]++
	c.refBytes[r] += bytes
}

// Untracked books a packet forwarded outside any flow table's
// jurisdiction (non-IP passthrough). Hot path: nil-safe.
func (c *Core) Untracked(bytes uint64) {
	if c == nil {
		return
	}
	c.untrackedPkts++
	c.untrackedBytes += bytes
}

// NoteDepart is the TX-side latency hook: every sampleEvery-th
// departing frame is parsed back to its flow key and the latency folded
// into the live table entry. Hot path: nil-safe, allocation-free;
// misses (flow already gone, NAT-rewritten tuple) are counted, not
// chased.
func (c *Core) NoteDepart(frame []byte, latNS float64) {
	if c == nil || len(c.shards) == 0 {
		return
	}
	c.tick++
	if c.tick < c.sampleEvery {
		return
	}
	c.tick = 0
	k, ok := KeyFromFrame(frame)
	if !ok {
		return
	}
	for i := range c.shards {
		b := &c.shards[i]
		kk := k
		if b.canonical {
			kk, _ = conntrack.Canonical(k)
		}
		if e, hit := b.s.Lookup(nil, kk); hit {
			e.LatSumNS += latNS
			if latNS > e.LatMaxNS {
				e.LatMaxNS = latNS
			}
			e.LatSamples++
			c.latSampled++
			return
		}
	}
	c.latMisses++
}

// RecordsLost reports closed-flow records rolled into overflow
// aggregates because the ring wrapped.
func (c *Collector) RecordsLost() uint64 {
	if c == nil {
		return 0
	}
	var lost uint64
	for _, co := range c.cores {
		if co != nil && co.emitted > uint64(len(co.ring)) {
			lost += co.emitted - uint64(len(co.ring))
		}
	}
	return lost
}

// LatencySampled and LatencyMisses report the depart hook's hit/miss
// tallies across cores.
func (c *Collector) LatencySampled() (sampled, misses uint64) {
	if c == nil {
		return 0, 0
	}
	for _, co := range c.cores {
		if co != nil {
			sampled += co.latSampled
			misses += co.latMisses
		}
	}
	return sampled, misses
}

// Records cuts the run's flow records: ring contents, live flows from
// every bound table, overflow and refusal roll-ups, the drop-ledger
// remainder (losses booked outside any element hook — NIC rings,
// sheds, faults), and an unattributed-forwarded residue covering wire
// TX that crossed no tracking element. drops is the run's merged drop
// ledger; txWire the wire-departed frame count. The result reconciles:
// TX-side packets sum to txWire and drop-side packets to drops.Total()
// whenever the element hooks and ledgers agree. Read-only — safe to
// call repeatedly on a quiescent or snapshot-gated run.
func (c *Collector) Records(drops *stats.DropCounters, txWire uint64) []Record {
	if c == nil {
		return nil
	}
	var out []Record
	var internal stats.DropCounters
	var txAttr uint64
	for _, co := range c.cores {
		if co == nil {
			continue
		}
		n := int(co.emitted)
		if n > len(co.ring) {
			n = len(co.ring)
		}
		start := (co.next - n + len(co.ring)) % len(co.ring)
		for i := 0; i < n; i++ {
			out = append(out, co.ring[(start+i)%len(co.ring)])
		}
		txAttr += co.endPkts[VerdictForwarded] + co.endPkts[VerdictEvicted]
		// Ring-overflow roll-ups: overwritten records surface as one
		// aggregate per verdict, so per-record packet sums still equal
		// the exact end-of-flow counters.
		for v := Verdict(0); v < NumVerdicts; v++ {
			if co.ovFlows[v] > 0 {
				out = append(out, Record{
					Core: int32(co.id), Verdict: v, End: EndAggregate,
					Reason: stats.NumDropReasons, Aggregate: true,
					Packets: co.ovPkts[v], Bytes: co.ovBytes[v],
				})
			}
		}
		for i := range co.shards {
			b := co.shards[i]
			b.s.ForEachLive(func(e *conntrack.Entry) bool {
				rec := Record{
					Core: int32(co.id), Key: e.Key, State: e.State,
					Verdict: VerdictForwarded, End: EndActive,
					Reason:  stats.NumDropReasons,
					Packets: e.Packets, Bytes: e.Bytes,
					FirstNS: e.Created, LastNS: e.Last,
					LatSamples: e.LatSamples, LatSumNS: e.LatSumNS,
					LatMaxNS: e.LatMaxNS,
				}
				if b.natIP != 0 {
					rec.NATIP = b.natIP
					rec.NATPort = uint16(e.Value)
				}
				out = append(out, rec)
				txAttr += e.Packets
				return true
			})
		}
		if co.untrackedPkts > 0 {
			out = append(out, Record{
				Core: int32(co.id), Verdict: VerdictForwarded,
				End: EndAggregate, Reason: stats.NumDropReasons,
				Aggregate: true,
				Packets:   co.untrackedPkts, Bytes: co.untrackedBytes,
			})
			txAttr += co.untrackedPkts
		}
		for r := stats.DropReason(0); r < stats.NumDropReasons; r++ {
			if co.refPkts[r] == 0 {
				continue
			}
			out = append(out, Record{
				Core: int32(co.id), Verdict: VerdictForReason(r),
				End: EndAggregate, Reason: r, Aggregate: true,
				Packets: co.refPkts[r], Bytes: co.refBytes[r],
				FirstNS: co.refFirst[r], LastNS: co.refLast[r],
			})
			internal.Add(r, co.refPkts[r])
		}
	}
	// The drop ledger's remainder: losses booked by layers with no flow
	// hook (NIC rings, overload sheds, faults, TX congestion).
	if drops != nil {
		for r := stats.DropReason(0); r < stats.NumDropReasons; r++ {
			d := drops.Get(r)
			if in := internal.Get(r); d > in {
				out = append(out, Record{
					Core: -1, Verdict: VerdictForReason(r),
					End: EndAggregate, Reason: r, Aggregate: true,
					Packets: d - in,
				})
			}
		}
	}
	// Wire TX no flow record accounts for: traffic that crossed no
	// tracking element at all (plain forwarders).
	if txWire > txAttr {
		out = append(out, Record{
			Core: -1, Verdict: VerdictForwarded, End: EndAggregate,
			Reason: stats.NumDropReasons, Aggregate: true,
			Packets: txWire - txAttr,
		})
	}
	sortRecords(out)
	return out
}

// sortRecords orders deterministically: per-flow records by (first
// seen, core, key), aggregates last by (core, verdict, reason).
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.Aggregate != b.Aggregate {
			return !a.Aggregate
		}
		if a.Aggregate {
			if a.Core != b.Core {
				return a.Core < b.Core
			}
			if a.Verdict != b.Verdict {
				return a.Verdict < b.Verdict
			}
			return a.Reason < b.Reason
		}
		if a.FirstNS != b.FirstNS {
			return a.FirstNS < b.FirstNS
		}
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		return keyLess(a.Key, b.Key)
	})
}

func keyLess(a, b conntrack.Key) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Summary is the roll-up of one record set.
type Summary struct {
	Records uint64
	// Flows/Packets/Bytes by verdict index.
	Flows   [NumVerdicts]uint64
	Packets [NumVerdicts]uint64
	Bytes   [NumVerdicts]uint64
	// TxSidePackets/DropSidePackets split the set along the
	// conservation invariant.
	TxSidePackets   uint64
	DropSidePackets uint64
	// Unattributed counts forwarded packets carried only by aggregate
	// records (untracked passthrough + the wire residue) — zero when
	// every TX'd packet crossed a tracking element.
	Unattributed uint64
	// LatSamples sums sampled latency observations across records.
	LatSamples uint64
}

// Summarize rolls a record set up.
func Summarize(recs []Record) Summary {
	var s Summary
	s.Records = uint64(len(recs))
	for i := range recs {
		r := &recs[i]
		if r.Verdict < NumVerdicts {
			s.Flows[r.Verdict]++
			s.Packets[r.Verdict] += r.Packets
			s.Bytes[r.Verdict] += r.Bytes
		}
		if r.TxSide() {
			s.TxSidePackets += r.Packets
			if r.Aggregate {
				s.Unattributed += r.Packets
			}
		} else {
			s.DropSidePackets += r.Packets
		}
		s.LatSamples += uint64(r.LatSamples)
	}
	return s
}

// Reconciliation checks a record set against the run's conservation
// ledgers.
type Reconciliation struct {
	Offered, TxWire, Drops uint64
	TxSide, DropSide       uint64
	Exact                  bool
}

// Reconcile verifies that the record set's packet attribution matches
// the run: TX-side records sum to the wire-departed count, drop-side
// records to the drop ledger, and conservation holds end to end.
func Reconcile(recs []Record, offered, txWire uint64, drops *stats.DropCounters) Reconciliation {
	s := Summarize(recs)
	rec := Reconciliation{
		Offered: offered, TxWire: txWire,
		TxSide: s.TxSidePackets, DropSide: s.DropSidePackets,
	}
	if drops != nil {
		rec.Drops = drops.Total()
	}
	rec.Exact = rec.TxSide == txWire && rec.DropSide == rec.Drops &&
		offered == txWire+rec.Drops
	return rec
}

// TopByBytes returns the k largest per-flow records by byte count —
// the export surface's top-k families and the diagnosis engine's
// elephant detector both draw from it.
func TopByBytes(recs []Record, k int) []Record {
	var flows []Record
	for i := range recs {
		if !recs[i].Aggregate {
			flows = append(flows, recs[i])
		}
	}
	sort.SliceStable(flows, func(i, j int) bool {
		if flows[i].Bytes != flows[j].Bytes {
			return flows[i].Bytes > flows[j].Bytes
		}
		return keyLess(flows[i].Key, flows[j].Key)
	})
	if len(flows) > k {
		flows = flows[:k]
	}
	return flows
}
