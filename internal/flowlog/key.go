// Flow-key extraction straight from frame bytes: the allocation-free
// parse the TX-side latency sampler and the pktgen flow-summary mode
// share. It mirrors the ConnTracker's key derivation (IPv4 addresses +
// L4 ports when present), so a key pulled from a departing frame finds
// the same entry the tracker installed on ingress.
package flowlog

import (
	"encoding/binary"

	"packetmill/internal/conntrack"
	"packetmill/internal/netpkt"
)

// KeyFromFrame derives the flow key of an Ethernet frame (one VLAN tag
// tolerated). It reports false for non-IPv4 or truncated frames. The
// key is direction-sensitive; callers matching a canonicalized table
// apply conntrack.Canonical themselves.
func KeyFromFrame(frame []byte) (conntrack.Key, bool) {
	var k conntrack.Key
	if len(frame) < netpkt.EtherHdrLen+netpkt.IPv4HdrLen {
		return k, false
	}
	off := netpkt.EtherHdrLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == netpkt.EtherTypeVLAN {
		if len(frame) < off+4+netpkt.IPv4HdrLen {
			return k, false
		}
		et = binary.BigEndian.Uint16(frame[16:18])
		off += 4
	}
	if et != netpkt.EtherTypeIPv4 {
		return k, false
	}
	hdr := frame[off:]
	if hdr[0]>>4 != 4 {
		return k, false
	}
	ihl := int(hdr[0]&0x0f) * 4
	if ihl < netpkt.IPv4HdrLen || len(frame) < off+ihl {
		return k, false
	}
	k.Proto = hdr[9]
	k.SrcIP = binary.BigEndian.Uint32(hdr[12:16])
	k.DstIP = binary.BigEndian.Uint32(hdr[16:20])
	if (k.Proto == netpkt.ProtoTCP || k.Proto == netpkt.ProtoUDP) &&
		len(frame) >= off+ihl+4 {
		k.SrcPort = binary.BigEndian.Uint16(frame[off+ihl : off+ihl+2])
		k.DstPort = binary.BigEndian.Uint16(frame[off+ihl+2 : off+ihl+4])
	}
	return k, true
}

// BucketOf hashes a canonical key into one of n fanout buckets (n a
// power of two) — the diagnosis engine uses it to measure elephant-flow
// skew across the RSS indirection table.
func BucketOf(k conntrack.Key, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(k.SrcIP), 4)
	mix(uint64(k.DstIP), 4)
	mix(uint64(k.SrcPort), 2)
	mix(uint64(k.DstPort), 2)
	mix(uint64(k.Proto), 1)
	return int(h & uint64(n-1))
}
