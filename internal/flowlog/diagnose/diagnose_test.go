package diagnose

import (
	"testing"

	"packetmill/internal/conntrack"
	"packetmill/internal/flowlog"
	"packetmill/internal/stats"
)

func key(i uint32) conntrack.Key {
	return conntrack.Key{SrcIP: 0x0a000000 + i, DstIP: 0x0a010001,
		SrcPort: uint16(1024 + i%40000), DstPort: 80, Proto: 6}
}

// cleanChurn is a healthy baseline: completed TCP flows, no pressure.
func cleanChurn(n int) []flowlog.Record {
	var recs []flowlog.Record
	for i := 0; i < n; i++ {
		recs = append(recs, flowlog.Record{
			Key: key(uint32(i)), State: conntrack.StateClosed,
			Verdict: flowlog.VerdictForwarded, End: flowlog.EndDeleted,
			Reason:  stats.NumDropReasons,
			Packets: 8, Bytes: 4096,
			FirstNS: float64(i) * 1e5, LastNS: float64(i)*1e5 + 5e6,
		})
	}
	return recs
}

func synFlood() []flowlog.Record {
	recs := cleanChurn(10) // a few legitimate connections survive
	for i := 0; i < 300; i++ {
		recs = append(recs, flowlog.Record{
			Key: key(uint32(1000 + i)), State: conntrack.StateSynSent,
			Verdict: flowlog.VerdictEvicted, End: flowlog.EndEvicted,
			Reason:  stats.NumDropReasons,
			Packets: 1, Bytes: 64,
			FirstNS: float64(i) * 1e4, LastNS: float64(i) * 1e4,
		})
	}
	recs = append(recs, flowlog.Record{
		Core: 0, Verdict: flowlog.VerdictRefused, End: flowlog.EndAggregate,
		Reason: stats.DropFlowTableFull, Aggregate: true, Packets: 200, Bytes: 12800,
	})
	return recs
}

func natExhaustion() []flowlog.Record {
	var recs []flowlog.Record
	for i := 0; i < 50; i++ {
		r := flowlog.Record{
			Key: key(uint32(i)), State: conntrack.StateEstablished,
			Verdict: flowlog.VerdictForwarded, End: flowlog.EndActive,
			Reason:  stats.NumDropReasons,
			Packets: 6, Bytes: 3000,
			NATIP:   0xc0a80001, NATPort: uint16(40000 + i),
			FirstNS: float64(i) * 1e5, LastNS: 1e8,
		}
		recs = append(recs, r)
	}
	recs = append(recs, flowlog.Record{
		Verdict: flowlog.VerdictRefused, End: flowlog.EndAggregate,
		Reason: stats.DropFlowTableNoPort, Aggregate: true, Packets: 400,
	})
	return recs
}

func shedStorm() []flowlog.Record {
	recs := cleanChurn(50) // 400 forwarded packets
	recs = append(recs, flowlog.Record{
		Core: -1, Verdict: flowlog.VerdictShed, End: flowlog.EndAggregate,
		Reason: stats.DropOverloadShed, Aggregate: true, Packets: 300,
	})
	return recs
}

func expiryStorm() []flowlog.Record {
	var recs []flowlog.Record
	// Three dense waves of expiries separated by silence.
	for wave := 0; wave < 3; wave++ {
		base := float64(wave) * 1e9
		for i := 0; i < 100; i++ {
			recs = append(recs, flowlog.Record{
				Key: key(uint32(wave*1000 + i)), State: conntrack.StateEstablished,
				Verdict: flowlog.VerdictForwarded, End: flowlog.EndExpired,
				Reason:  stats.NumDropReasons,
				Packets: 4, Bytes: 2048,
				FirstNS: base, LastNS: base + float64(i)*1e3,
			})
		}
	}
	return recs
}

func elephantSkew() []flowlog.Record {
	recs := cleanChurn(100) // mice: 4096 bytes each
	recs = append(recs, flowlog.Record{
		Key: conntrack.Key{SrcIP: 0x0afe0001, DstIP: 0x0a010001,
			SrcPort: 9999, DstPort: 443, Proto: 6},
		State: conntrack.StateEstablished, Verdict: flowlog.VerdictForwarded,
		End: flowlog.EndActive, Reason: stats.NumDropReasons,
		Packets: 1000, Bytes: 1 << 20,
		FirstNS: 0, LastNS: 1e9,
	})
	return recs
}

// Each scenario's record stream must earn exactly its own finding — and
// no detector may cross-fire on another scenario's stream or on the
// clean baseline. This is the same zero-false-positive matrix the
// exhibit enforces end to end; here it runs on synthetic streams so a
// detector regression is caught without driving the testbed.
func TestDiagnosisMatrix(t *testing.T) {
	streams := map[Scenario][]flowlog.Record{
		SYNFlood:          synFlood(),
		NATPortExhaustion: natExhaustion(),
		ShedStorm:         shedStorm(),
		ExpiryStorm:       expiryStorm(),
		ElephantSkew:      elephantSkew(),
	}
	if got := Run(cleanChurn(200), Defaults()); len(got) != 0 {
		t.Fatalf("clean churn produced findings: %+v", got)
	}
	for want, recs := range streams {
		findings := Run(recs, Defaults())
		if len(findings) != 1 {
			t.Fatalf("%s stream: %d findings, want exactly 1: %+v", want, len(findings), findings)
		}
		if findings[0].Scenario != want {
			t.Fatalf("%s stream diagnosed as %s", want, findings[0].Scenario)
		}
		if findings[0].Summary == "" || len(findings[0].Evidence) == 0 {
			t.Fatalf("%s finding lacks summary/evidence: %+v", want, findings[0])
		}
	}
}

// Below their evidence floors the detectors stay silent.
func TestThresholdFloors(t *testing.T) {
	// A handful of half-open evictions is churn, not a flood.
	few := cleanChurn(10)
	for i := 0; i < 8; i++ {
		few = append(few, flowlog.Record{
			Key: key(uint32(500 + i)), State: conntrack.StateSynSent,
			Verdict: flowlog.VerdictEvicted, End: flowlog.EndEvicted,
			Reason: stats.NumDropReasons, Packets: 1, Bytes: 64,
		})
	}
	if got := Run(few, Defaults()); len(got) != 0 {
		t.Fatalf("sub-threshold evictions produced findings: %+v", got)
	}
	// A trickle of sheds under the share floor is not a storm.
	trickle := cleanChurn(2000) // 16000 packets forwarded
	trickle = append(trickle, flowlog.Record{
		Verdict: flowlog.VerdictShed, End: flowlog.EndAggregate,
		Reason: stats.DropOverloadShed, Aggregate: true, Packets: 100,
	})
	if got := Run(trickle, Defaults()); len(got) != 0 {
		t.Fatalf("sub-share sheds produced findings: %+v", got)
	}
	// Steady expiries (uniform in time) are not a storm.
	var steady []flowlog.Record
	for i := 0; i < 500; i++ {
		steady = append(steady, flowlog.Record{
			Key: key(uint32(i)), State: conntrack.StateEstablished,
			Verdict: flowlog.VerdictForwarded, End: flowlog.EndExpired,
			Reason: stats.NumDropReasons, Packets: 4, Bytes: 2048,
			FirstNS: 0, LastNS: float64(i) * 1e6,
		})
	}
	if got := Run(steady, Defaults()); len(got) != 0 {
		t.Fatalf("uniform expiries produced findings: %+v", got)
	}
}
