// Scenario diagnosis over flow-record streams: pattern-match one run's
// records into named findings with evidence counts, the way an operator
// would read the ledgers — "this was a SYN flood", "the NAT's port pool
// is dry", "one elephant is pinning a fanout bucket". Detectors are
// deliberately conservative: each demands both an absolute evidence
// floor and a structural signature, so a clean churn run produces zero
// findings and no scenario cross-fires on another's run (the exhibit's
// zero-false-positive matrix holds the line).
package diagnose

import (
	"fmt"

	"packetmill/internal/conntrack"
	"packetmill/internal/flowlog"
	"packetmill/internal/stats"
)

// Scenario names one recognized failure/traffic pattern.
type Scenario string

const (
	// SYNFlood: embryonic pressure — half-open flows evicted or
	// refused in bulk while completed connections stay rare.
	SYNFlood Scenario = "syn-flood"
	// NATPortExhaustion: the rewriter's external-port pool ran dry.
	NATPortExhaustion Scenario = "nat-port-exhaustion"
	// ShedStorm: the overload control plane refused a significant
	// share of offered load at the RX boundary.
	ShedStorm Scenario = "overload-shed-storm"
	// ExpiryStorm: flow timeouts matured in dense waves instead of a
	// steady trickle.
	ExpiryStorm Scenario = "expiry-storm"
	// ElephantSkew: a few flows dominate bytes and pin their fanout
	// buckets.
	ElephantSkew Scenario = "elephant-skew"
)

// Evidence is one named count backing a finding.
type Evidence struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Finding is one diagnosed scenario.
type Finding struct {
	Scenario Scenario   `json:"scenario"`
	Summary  string     `json:"summary"`
	Evidence []Evidence `json:"evidence"`
}

// Thresholds are the detectors' evidence floors. The zero value is
// replaced by Defaults.
type Thresholds struct {
	// SYN flood: at least MinSYNPressure half-open flows lost to
	// eviction/refusal, and half-open endings at least
	// SYNHalfOpenFactor times the completed-connection count.
	MinSYNPressure    uint64
	SYNHalfOpenFactor float64

	// NAT exhaustion: at least MinNoPortPackets refused for want of a
	// port.
	MinNoPortPackets uint64

	// Shed storm: at least MinShedPackets shed AND at least
	// MinShedShare of total observed packets.
	MinShedPackets uint64
	MinShedShare   float64

	// Expiry storm: at least MinExpired flows expired AND the densest
	// of ExpiryWindows time windows holds at least ExpiryPeakFactor
	// times the uniform share.
	MinExpired       uint64
	ExpiryWindows    int
	ExpiryPeakFactor float64

	// Elephant skew: the largest flow carries at least
	// MinElephantShare of flow bytes (and at least MinElephantBytes),
	// measured against FanoutBuckets hash buckets.
	MinElephantShare float64
	MinElephantBytes uint64
	FanoutBuckets    int
}

// Defaults returns the tuned evidence floors.
func Defaults() Thresholds {
	return Thresholds{
		MinSYNPressure:    64,
		SYNHalfOpenFactor: 4,
		MinNoPortPackets:  64,
		MinShedPackets:    64,
		MinShedShare:      0.02,
		MinExpired:        128,
		ExpiryWindows:     16,
		ExpiryPeakFactor:  2.5,
		MinElephantShare:  0.2,
		MinElephantBytes:  64 << 10,
		FanoutBuckets:     256,
	}
}

func (t Thresholds) withDefaults() Thresholds {
	d := Defaults()
	if t.MinSYNPressure == 0 {
		t.MinSYNPressure = d.MinSYNPressure
	}
	if t.SYNHalfOpenFactor == 0 {
		t.SYNHalfOpenFactor = d.SYNHalfOpenFactor
	}
	if t.MinNoPortPackets == 0 {
		t.MinNoPortPackets = d.MinNoPortPackets
	}
	if t.MinShedPackets == 0 {
		t.MinShedPackets = d.MinShedPackets
	}
	if t.MinShedShare == 0 {
		t.MinShedShare = d.MinShedShare
	}
	if t.MinExpired == 0 {
		t.MinExpired = d.MinExpired
	}
	if t.ExpiryWindows == 0 {
		t.ExpiryWindows = d.ExpiryWindows
	}
	if t.ExpiryPeakFactor == 0 {
		t.ExpiryPeakFactor = d.ExpiryPeakFactor
	}
	if t.MinElephantShare == 0 {
		t.MinElephantShare = d.MinElephantShare
	}
	if t.MinElephantBytes == 0 {
		t.MinElephantBytes = d.MinElephantBytes
	}
	if t.FanoutBuckets == 0 {
		t.FanoutBuckets = d.FanoutBuckets
	}
	return t
}

// Run diagnoses one run's record stream. Detectors are independent; a
// run can legitimately earn several findings (a flood that also trips
// table refusals), and a clean run earns none.
func Run(recs []flowlog.Record, th Thresholds) []Finding {
	th = th.withDefaults()
	var out []Finding
	if f, ok := detectSYNFlood(recs, th); ok {
		out = append(out, f)
	}
	if f, ok := detectNATExhaustion(recs, th); ok {
		out = append(out, f)
	}
	if f, ok := detectShedStorm(recs, th); ok {
		out = append(out, f)
	}
	if f, ok := detectExpiryStorm(recs, th); ok {
		out = append(out, f)
	}
	if f, ok := detectElephantSkew(recs, th); ok {
		out = append(out, f)
	}
	return out
}

// halfOpen marks TCP states that never completed a handshake.
func halfOpen(s conntrack.State) bool {
	return s == conntrack.StateSynSent || s == conntrack.StateSynAck
}

// completed marks states at or past a finished handshake.
func completed(s conntrack.State) bool {
	return s == conntrack.StateEstablished || s == conntrack.StateFinWait ||
		s == conntrack.StateClosed
}

func detectSYNFlood(recs []flowlog.Record, th Thresholds) (Finding, bool) {
	var evictedHalfOpen, refusedFull, halfOpenFlows, completedFlows uint64
	for i := range recs {
		r := &recs[i]
		if r.Aggregate {
			if r.Reason == stats.DropFlowTableFull {
				refusedFull += r.Packets
			}
			continue
		}
		if r.Key.Proto != 6 {
			continue
		}
		if halfOpen(r.State) {
			halfOpenFlows++
			if r.Verdict == flowlog.VerdictEvicted {
				evictedHalfOpen++
			}
		} else if completed(r.State) {
			completedFlows++
		}
	}
	pressure := evictedHalfOpen + refusedFull
	if pressure < th.MinSYNPressure {
		return Finding{}, false
	}
	if float64(halfOpenFlows) < th.SYNHalfOpenFactor*float64(completedFlows) {
		return Finding{}, false
	}
	return Finding{
		Scenario: SYNFlood,
		Summary: fmt.Sprintf("half-open pressure: %d embryonic flows evicted, %d packets refused table-full, %d half-open vs %d completed connections",
			evictedHalfOpen, refusedFull, halfOpenFlows, completedFlows),
		Evidence: []Evidence{
			{"evicted_half_open_flows", float64(evictedHalfOpen)},
			{"refused_table_full_packets", float64(refusedFull)},
			{"half_open_flows", float64(halfOpenFlows)},
			{"completed_flows", float64(completedFlows)},
		},
	}, true
}

func detectNATExhaustion(recs []flowlog.Record, th Thresholds) (Finding, bool) {
	var noPort uint64
	var translated uint64
	for i := range recs {
		r := &recs[i]
		if r.Aggregate && r.Reason == stats.DropFlowTableNoPort {
			noPort += r.Packets
		}
		if !r.Aggregate && r.NATIP != 0 {
			translated++
		}
	}
	if noPort < th.MinNoPortPackets {
		return Finding{}, false
	}
	return Finding{
		Scenario: NATPortExhaustion,
		Summary: fmt.Sprintf("external-port pool dry: %d packets refused no-port while %d flows hold translations",
			noPort, translated),
		Evidence: []Evidence{
			{"refused_no_port_packets", float64(noPort)},
			{"translated_flows", float64(translated)},
		},
	}, true
}

func detectShedStorm(recs []flowlog.Record, th Thresholds) (Finding, bool) {
	var shed, total uint64
	for i := range recs {
		if recs[i].Verdict == flowlog.VerdictShed {
			shed += recs[i].Packets
		}
		total += recs[i].Packets
	}
	if shed < th.MinShedPackets || total == 0 {
		return Finding{}, false
	}
	share := float64(shed) / float64(total)
	if share < th.MinShedShare {
		return Finding{}, false
	}
	return Finding{
		Scenario: ShedStorm,
		Summary: fmt.Sprintf("overload plane shed %d packets (%.1f%% of observed load) at the RX boundary",
			shed, share*100),
		Evidence: []Evidence{
			{"shed_packets", float64(shed)},
			{"shed_share", share},
		},
	}, true
}

func detectExpiryStorm(recs []flowlog.Record, th Thresholds) (Finding, bool) {
	var expired []float64
	var first, last float64
	for i := range recs {
		r := &recs[i]
		if r.Aggregate || r.End != flowlog.EndExpired {
			continue
		}
		expired = append(expired, r.LastNS)
		if len(expired) == 1 || r.LastNS < first {
			first = r.LastNS
		}
		if r.LastNS > last {
			last = r.LastNS
		}
	}
	if uint64(len(expired)) < th.MinExpired || last <= first {
		return Finding{}, false
	}
	windows := make([]uint64, th.ExpiryWindows)
	span := last - first
	for _, t := range expired {
		w := int(float64(th.ExpiryWindows) * (t - first) / span)
		if w >= th.ExpiryWindows {
			w = th.ExpiryWindows - 1
		}
		windows[w]++
	}
	var peak uint64
	for _, w := range windows {
		if w > peak {
			peak = w
		}
	}
	uniform := float64(len(expired)) / float64(th.ExpiryWindows)
	factor := float64(peak) / uniform
	if factor < th.ExpiryPeakFactor {
		return Finding{}, false
	}
	return Finding{
		Scenario: ExpiryStorm,
		Summary: fmt.Sprintf("%d flows expired in waves: densest window holds %.1fx the uniform share",
			len(expired), factor),
		Evidence: []Evidence{
			{"expired_flows", float64(len(expired))},
			{"peak_window_factor", factor},
			{"peak_window_flows", float64(peak)},
		},
	}, true
}

func detectElephantSkew(recs []flowlog.Record, th Thresholds) (Finding, bool) {
	var totalBytes uint64
	buckets := make([]uint64, th.FanoutBuckets)
	top := flowlog.TopByBytes(recs, 1)
	for i := range recs {
		r := &recs[i]
		if r.Aggregate {
			continue
		}
		totalBytes += r.Bytes
		buckets[flowlog.BucketOf(r.Key, th.FanoutBuckets)] += r.Bytes
	}
	if len(top) == 0 || totalBytes == 0 {
		return Finding{}, false
	}
	topBytes := top[0].Bytes
	share := float64(topBytes) / float64(totalBytes)
	if topBytes < th.MinElephantBytes || share < th.MinElephantShare {
		return Finding{}, false
	}
	var peakBucket uint64
	for _, b := range buckets {
		if b > peakBucket {
			peakBucket = b
		}
	}
	bucketShare := float64(peakBucket) / float64(totalBytes)
	return Finding{
		Scenario: ElephantSkew,
		Summary: fmt.Sprintf("elephant %s carries %.1f%% of flow bytes; hottest fanout bucket holds %.1f%%",
			flowlog.FormatKey(top[0].Key), share*100, bucketShare*100),
		Evidence: []Evidence{
			{"top_flow_bytes", float64(topBytes)},
			{"top_flow_share", share},
			{"peak_bucket_share", bucketShare},
		},
	}, true
}
