// Flow records: the versioned, flow-level unit of observability. One
// Record answers the operator question "what happened to this flow and
// why": its 5-tuple, final TCP state, packet/byte counters, NAT
// translation, sampled TX latency, and a verdict — forwarded, dropped
// (with the DropReason), shed by the overload plane, evicted under
// table pressure, or refused by a stateful element. Records that stand
// for many packets with no per-flow identity (sheds at the RX boundary,
// NIC-level losses, untracked traffic) carry Aggregate=true and a zero
// key; their counters still reconcile against the run's conservation
// invariant.
package flowlog

import (
	"strconv"

	"packetmill/internal/conntrack"
	"packetmill/internal/stats"
)

// Schema versions the JSON-lines encoding; bump it when Record's wire
// shape changes incompatibly.
const Schema = "packetmill/flow/v1"

// Verdict is a flow record's final disposition.
type Verdict uint8

const (
	// VerdictForwarded: the flow's packets left on the wire.
	VerdictForwarded Verdict = iota
	// VerdictDropped: lost in the datapath (NIC rings, pools, faults,
	// engine policy) under a non-overload, non-flow-table reason.
	VerdictDropped
	// VerdictShed: refused by the overload control plane at the RX
	// boundary (tail-drop, RED, priority, or restart flush).
	VerdictShed
	// VerdictEvicted: the flow's table entry was displaced by a newer
	// flow under capacity pressure; packets already admitted were
	// forwarded, but the flow lost its state mid-life.
	VerdictEvicted
	// VerdictRefused: a stateful element's flow table turned the
	// packets away (table full, port pool dry, strict-mode invalid).
	VerdictRefused

	// NumVerdicts bounds the verdict space.
	NumVerdicts
)

var verdictNames = [NumVerdicts]string{
	"forwarded", "dropped", "shed", "evicted", "refused",
}

// String names the verdict the way records and metrics print it.
func (v Verdict) String() string {
	if v < NumVerdicts {
		return verdictNames[v]
	}
	return "invalid"
}

// VerdictForReason maps a drop reason onto the verdict its packets
// carry in flow records: overload sheds, flow-table refusals, and
// everything else a plain drop.
func VerdictForReason(r stats.DropReason) Verdict {
	switch {
	case r.IsOverload():
		return VerdictShed
	case r.IsFlowTable():
		return VerdictRefused
	default:
		return VerdictDropped
	}
}

// EndCause tells how a flow record was closed.
type EndCause uint8

const (
	// EndActive: the flow was still live when the records were cut
	// (end-of-run snapshot or a live /flows scrape).
	EndActive EndCause = iota
	// EndExpired: the idle timeout fired.
	EndExpired
	// EndEvicted: displaced under table pressure.
	EndEvicted
	// EndDeleted: removed explicitly.
	EndDeleted
	// EndAggregate: not a single flow — a counter roll-up (refusals by
	// reason, sheds, untracked traffic, ring-overflow remainders).
	EndAggregate
)

var endNames = [...]string{"active", "expired", "evicted", "deleted", "aggregate"}

// String names the end cause.
func (c EndCause) String() string {
	if int(c) < len(endNames) {
		return endNames[c]
	}
	return "invalid"
}

// Record is one flow-level observation. It is a fixed-size value — no
// pointers, no maps — so per-core rings of Records are preallocated
// once and the hot path writes them without allocating.
type Record struct {
	// Core is the owning core, or -1 for run-level aggregates.
	Core int32
	// Key is the canonical 5-tuple; zero for aggregates.
	Key conntrack.Key
	// State is the flow's final TCP state (flows only).
	State conntrack.State
	// Verdict is the final disposition.
	Verdict Verdict
	// End tells how the record was closed.
	End EndCause
	// Reason qualifies dropped/shed/refused aggregates; NumDropReasons
	// when not applicable.
	Reason stats.DropReason
	// Aggregate marks counter roll-ups with no per-flow identity.
	Aggregate bool

	Packets uint64
	Bytes   uint64
	FirstNS float64
	LastNS  float64

	// NAT translation, when an IPRewriter owned the flow.
	NATIP   uint32
	NATPort uint16

	// Sampled TX latency.
	LatSamples uint32
	LatSumNS   float64
	LatMaxNS   float64
}

// DurationNS is the observed flow lifetime.
func (r *Record) DurationNS() float64 { return r.LastNS - r.FirstNS }

// LatAvgNS is the mean sampled TX latency, 0 when never sampled.
func (r *Record) LatAvgNS() float64 {
	if r.LatSamples == 0 {
		return 0
	}
	return r.LatSumNS / float64(r.LatSamples)
}

// TxSide reports whether the record's packets count toward the TX side
// of the conservation invariant (they left on the wire) rather than the
// drop side. Evicted flows forwarded every packet they ever admitted —
// eviction displaces state, not packets in flight.
func (r *Record) TxSide() bool {
	return r.Verdict == VerdictForwarded || r.Verdict == VerdictEvicted
}

func appendIP(dst []byte, ip uint32) []byte {
	dst = strconv.AppendUint(dst, uint64(ip>>24), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(ip>>16&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(ip>>8&0xff), 10)
	dst = append(dst, '.')
	return strconv.AppendUint(dst, uint64(ip&0xff), 10)
}

// FormatKey renders a 5-tuple like "tcp 10.0.0.1:1024>10.1.0.2:80".
func FormatKey(k conntrack.Key) string {
	var proto string
	switch k.Proto {
	case 6:
		proto = "tcp"
	case 17:
		proto = "udp"
	case 1:
		proto = "icmp"
	default:
		proto = "proto-" + strconv.Itoa(int(k.Proto))
	}
	b := make([]byte, 0, 48)
	b = append(b, proto...)
	b = append(b, ' ')
	b = appendIP(b, k.SrcIP)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.SrcPort), 10)
	b = append(b, '>')
	b = appendIP(b, k.DstIP)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.DstPort), 10)
	return string(b)
}

// AppendJSON appends the record as one JSON object (no newline). Fields
// that do not apply (reason, NAT, latency) are omitted.
func AppendJSON(dst []byte, r *Record) []byte {
	dst = append(dst, `{"schema":"`...)
	dst = append(dst, Schema...)
	dst = append(dst, `","core":`...)
	dst = strconv.AppendInt(dst, int64(r.Core), 10)
	dst = append(dst, `,"verdict":"`...)
	dst = append(dst, r.Verdict.String()...)
	dst = append(dst, `","end":"`...)
	dst = append(dst, r.End.String()...)
	dst = append(dst, '"')
	if r.Aggregate {
		dst = append(dst, `,"aggregate":true`...)
		if r.Verdict != VerdictForwarded && r.Reason < stats.NumDropReasons {
			dst = append(dst, `,"reason":"`...)
			dst = append(dst, r.Reason.String()...)
			dst = append(dst, '"')
		}
	} else {
		dst = append(dst, `,"proto":`...)
		dst = strconv.AppendUint(dst, uint64(r.Key.Proto), 10)
		dst = append(dst, `,"src":"`...)
		dst = appendIP(dst, r.Key.SrcIP)
		dst = append(dst, `","sport":`...)
		dst = strconv.AppendUint(dst, uint64(r.Key.SrcPort), 10)
		dst = append(dst, `,"dst":"`...)
		dst = appendIP(dst, r.Key.DstIP)
		dst = append(dst, `","dport":`...)
		dst = strconv.AppendUint(dst, uint64(r.Key.DstPort), 10)
		dst = append(dst, `,"state":"`...)
		dst = append(dst, r.State.String()...)
		dst = append(dst, '"')
	}
	dst = append(dst, `,"packets":`...)
	dst = strconv.AppendUint(dst, r.Packets, 10)
	dst = append(dst, `,"bytes":`...)
	dst = strconv.AppendUint(dst, r.Bytes, 10)
	if r.FirstNS > 0 || r.LastNS > 0 {
		dst = append(dst, `,"first_ns":`...)
		dst = strconv.AppendFloat(dst, r.FirstNS, 'f', 0, 64)
		dst = append(dst, `,"last_ns":`...)
		dst = strconv.AppendFloat(dst, r.LastNS, 'f', 0, 64)
	}
	if r.NATIP != 0 {
		dst = append(dst, `,"nat_ip":"`...)
		dst = appendIP(dst, r.NATIP)
		dst = append(dst, `","nat_port":`...)
		dst = strconv.AppendUint(dst, uint64(r.NATPort), 10)
	}
	if r.LatSamples > 0 {
		dst = append(dst, `,"lat_samples":`...)
		dst = strconv.AppendUint(dst, uint64(r.LatSamples), 10)
		dst = append(dst, `,"lat_avg_us":`...)
		dst = strconv.AppendFloat(dst, r.LatAvgNS()/1e3, 'f', 3, 64)
		dst = append(dst, `,"lat_max_us":`...)
		dst = strconv.AppendFloat(dst, r.LatMaxNS/1e3, 'f', 3, 64)
	}
	return append(dst, '}')
}

// JSONL renders records as JSON lines — the /flows endpoint body and
// the -flows-out file format.
func JSONL(recs []Record) []byte {
	var dst []byte
	for i := range recs {
		dst = AppendJSON(dst, &recs[i])
		dst = append(dst, '\n')
	}
	return dst
}
