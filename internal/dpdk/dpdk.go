// Package dpdk models the kernel-bypass I/O layer the paper's frameworks
// sit on: hugepage-backed packet mempools with rte_mbuf-style descriptors,
// and a poll-mode driver (PMD) that moves packets between the simulated
// NIC's rings and the application.
//
// The PMD never assigns wire metadata directly; every touch point goes
// through an xchg.Binding (the paper's conversion functions), so the same
// driver code serves stock DPDK (rte_mbuf), Overlaying (framework struct
// cast over the mbuf), and X-Change (application descriptors + buffer
// exchange) — selected by "linking" a different binding, exactly the
// workflow of §3.1.
package dpdk

import (
	"errors"
	"fmt"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/trace"
	"packetmill/internal/xchg"
)

// Typed datapath errors. They replace the runtime panics this layer used
// to raise under overload or misuse: a fault-injected or undersized run
// now degrades with accounting and a detectable error instead of killing
// the experiment.
var (
	// ErrDoubleFree reports a buffer returned to a mempool it is not
	// currently allocated from (freed twice, or foreign).
	ErrDoubleFree = errors.New("dpdk: mempool double free")
	// ErrPoolExhausted reports an RX burst that had to drop packets
	// because the descriptor pool (or mempool) had nothing free.
	ErrPoolExhausted = errors.New("dpdk: descriptor pool exhausted on RX path")
)

// Buffer geometry defaults, matching DPDK's RTE_PKTMBUF_HEADROOM and the
// common 2-KiB dataroom.
const (
	DefaultHeadroom = 128
	DefaultDataRoom = 2048
	// MbufStructSize is the rte_mbuf region preceding the headroom.
	MbufStructSize = 128
)

// BufSpec describes the buffers a mempool carves.
type BufSpec struct {
	// MetaLayout is the descriptor layout placed at the buffer head.
	// With SeparateMbuf the layout must be the rte_mbuf layout and the
	// descriptor is attached as Packet.Mbuf; otherwise it is attached as
	// Packet.Meta (the Overlaying cast).
	MetaLayout   *layout.Layout
	SeparateMbuf bool
	Headroom     int
	DataRoom     int
	// Prof, when non-nil, profiles descriptor accesses (reorder pass input).
	Prof *layout.OrderProfile
}

// DefaultBufSpec returns the stock-DPDK buffer shape (separate rte_mbuf).
func DefaultBufSpec() BufSpec {
	return BufSpec{
		MetaLayout:   layout.RteMbuf(),
		SeparateMbuf: true,
		Headroom:     DefaultHeadroom,
		DataRoom:     DefaultDataRoom,
	}
}

// Mempool is a fixed-size packet-buffer pool in hugepage memory with a
// LIFO free list (DPDK's per-lcore mempool cache behaviour: the most
// recently freed object is handed out next).
type Mempool struct {
	name     string
	spec     BufSpec
	free     []*pktbuf.Packet
	capacity int
	// out tracks which buffers are currently allocated. It is the
	// ground truth the double-free detector and the leak audit read:
	// a Put of a buffer not in this set is ErrDoubleFree, and after a
	// drained run len(out) must reconcile with the rings' holdings.
	out map[*pktbuf.Packet]struct{}
	// ringBase is the simulated address of the free-list array; every
	// get/put touches one 8-byte slot, like the mempool cache does.
	ringBase memsim.Addr
	// Cost knobs: instructions per get/put, covering DPDK's generic
	// mempool bookkeeping ("supporting many unnecessary features").
	opInstr float64

	// FaultDeplete, when set, makes Get behave as exhausted while it
	// returns true for the core's current time — the fault engine's
	// mempool-depletion hook. Nil in normal runs.
	FaultDeplete func(nowNS float64) bool

	Gets, Puts, Fails uint64
	// DoubleFrees counts Put calls rejected with ErrDoubleFree.
	DoubleFrees uint64
}

// MempoolOpInstr is the instruction cost of one mempool get or put
// (DPDK's generic mempool maintains rings, caches, and statistics —
// the "many unnecessary features" of §3.1).
const MempoolOpInstr = 40

// NewMempool carves n buffers out of the hugepage arena. An arena too
// small for the requested pool returns a typed *memsim.ExhaustedError —
// pool sizing is run configuration, so it must not crash the process.
func NewMempool(name string, n int, arena *memsim.Arena, spec BufSpec) (*Mempool, error) {
	if spec.MetaLayout == nil {
		return nil, fmt.Errorf("dpdk: mempool %q needs a metadata layout", name)
	}
	ringBase, err := arena.TryAlloc(uint64(n)*8, memsim.CacheLineSize)
	if err != nil {
		return nil, fmt.Errorf("dpdk: mempool %q free list: %w", name, err)
	}
	mp := &Mempool{
		name:     name,
		spec:     spec,
		capacity: n,
		out:      make(map[*pktbuf.Packet]struct{}, n),
		ringBase: ringBase,
		opInstr:  MempoolOpInstr,
	}
	metaSize := uint64(spec.MetaLayout.Size())
	if spec.SeparateMbuf {
		metaSize = MbufStructSize
	}
	for i := 0; i < n; i++ {
		base, err := arena.TryAlloc(metaSize+uint64(spec.Headroom+spec.DataRoom), memsim.CacheLineSize)
		if err != nil {
			return nil, fmt.Errorf("dpdk: mempool %q (%d of %d buffers placed): %w", name, i, n, err)
		}
		bufAddr := base + memsim.Addr(metaSize)
		p := pktbuf.NewPacket(make([]byte, spec.Headroom+spec.DataRoom), bufAddr, spec.Headroom)
		p.Owner = mp
		m := &pktbuf.Meta{Base: base, L: spec.MetaLayout, Prof: spec.Prof}
		m.Poke(layout.FieldBufAddr, uint64(bufAddr))
		if spec.SeparateMbuf {
			p.Mbuf = m
		} else {
			p.Meta = m
		}
		mp.free = append(mp.free, p)
	}
	return mp, nil
}

// Capacity returns the pool's total buffer count.
func (mp *Mempool) Capacity() int { return mp.capacity }

// Available returns the free buffer count.
func (mp *Mempool) Available() int { return len(mp.free) }

// Outstanding reports buffers currently allocated from the pool. After a
// drained run it must equal the buffers held by the NIC rings — the leak
// invariant the chaos harness checks.
func (mp *Mempool) Outstanding() int { return len(mp.out) }

// Get allocates a buffer, charging the free-list access, the mempool
// bookkeeping, and the mbuf rearm stores (rte_pktmbuf_reset touches the
// descriptor's first line). Returns nil when the pool is exhausted.
func (mp *Mempool) Get(core *machine.Core) *pktbuf.Packet {
	if mp.FaultDeplete != nil && mp.FaultDeplete(core.NowNS()) {
		mp.Fails++
		return nil
	}
	if len(mp.free) == 0 {
		mp.Fails++
		return nil
	}
	idx := len(mp.free) - 1
	p := mp.free[idx]
	mp.free = mp.free[:idx]
	mp.out[p] = struct{}{}
	mp.Gets++

	core.Load(mp.ringBase+memsim.Addr(idx*8), 8)
	core.Compute(mp.opInstr)

	// Rearm: reset offsets/refcount on the descriptor.
	m := mp.meta(p)
	m.Set(core, layout.FieldDataOff, uint64(mp.spec.Headroom))
	m.Set(core, layout.FieldRefCnt, 1)
	m.Set(core, layout.FieldNbSegs, 1)
	p.Reset(mp.spec.Headroom)
	return p
}

// Put frees a buffer back to the pool. A buffer that is not currently
// allocated from this pool — freed twice, or never taken from it — is
// rejected with a wrapped ErrDoubleFree and counted; the pool's ledger
// stays intact, so one buggy (or fault-injected) free cannot corrupt the
// free list the way rte_mempool's unchecked put does.
func (mp *Mempool) Put(core *machine.Core, p *pktbuf.Packet) error {
	if owner, ok := p.Owner.(*Mempool); ok && owner != mp {
		// rte_pktmbuf_free semantics: a buffer always returns to the pool
		// it was carved from, no matter which port frees it (multi-NIC
		// forwarding frees RX buffers of one port on another).
		return owner.Put(core, p)
	}
	if _, ok := mp.out[p]; !ok {
		mp.DoubleFrees++
		return fmt.Errorf("mempool %q: %w", mp.name, ErrDoubleFree)
	}
	delete(mp.out, p)
	core.Store(mp.ringBase+memsim.Addr(len(mp.free)*8), 8)
	core.Compute(mp.opInstr)
	// rte_pktmbuf_free reads the descriptor before recycling: the
	// refcount in the RX line and the pool/next pointers in the TX line
	// (cold — nothing touched it since this buffer's last rearm).
	m := mp.meta(p)
	core.Load(m.Base+memsim.Addr(m.L.Offset(layout.FieldRefCnt)), 2)
	core.Load(m.Base+64, 16)
	if mp.spec.SeparateMbuf {
		// The framework descriptor (if any) was detached by the app;
		// only the mbuf returns with the buffer.
		p.Meta = nil
	}
	mp.free = append(mp.free, p)
	mp.Puts++
	return nil
}

func (mp *Mempool) meta(p *pktbuf.Packet) *pktbuf.Meta {
	if mp.spec.SeparateMbuf {
		return p.Mbuf
	}
	return p.Meta
}

// AllocRawBuffers carves n bare buffers (headroom+dataroom, no descriptor)
// for the X-Change workflow, where metadata lives in the application's
// descriptor pool instead of in front of every buffer. An arena too small
// for the request returns a typed *memsim.ExhaustedError.
func AllocRawBuffers(arena *memsim.Arena, n, headroom, dataroom int) ([]*pktbuf.Packet, error) {
	out := make([]*pktbuf.Packet, n)
	for i := range out {
		base, err := arena.TryAlloc(uint64(headroom+dataroom), memsim.CacheLineSize)
		if err != nil {
			return nil, fmt.Errorf("dpdk: raw buffers (%d of %d placed): %w", i, n, err)
		}
		out[i] = pktbuf.NewPacket(make([]byte, headroom+dataroom), base, headroom)
	}
	return out, nil
}

// Port is one PMD-driven NIC queue pair. Dev is the device seam: a
// simulated queue pair (nic.QueuePair) or a live socket backend
// (wire.Port) — the PMD cannot tell them apart.
type Port struct {
	ID    int
	Dev   nic.Port
	Pool  *Mempool // nil under buffer-exchange bindings
	Bind  xchg.Binding
	Burst int

	// spare holds application-provided buffers awaiting RX posting
	// (X-Change) .
	spare []*pktbuf.Packet

	descs []nic.Descriptor
	reap  []*pktbuf.Packet

	// RxConvInstr approximates the per-packet descriptor-parsing work in
	// the RX hot loop (CQE decode, flags).
	RxConvInstr float64
	// TxConvInstr approximates per-packet SQE preparation work.
	TxConvInstr float64

	// Vectorized enables the SIMD receive path: compressed CQEs are
	// decoded four at a time with vector instructions, halving the
	// per-packet conversion work and quartering descriptor reads. The
	// paper's X-Change prototype does not support it ("we have disabled
	// it in all of our experiments, except in §4.1"), and neither does
	// ours: SetVectorized rejects exchange bindings.
	Vectorized bool

	// Drops is the port's drop ledger: packets this PMD had to shed
	// (descriptor-pool exhaustion on RX, double-free rejections). The
	// testbed merges it into the run's taxonomy.
	Drops stats.DropCounters

	// Stats is the port's poll/refill ledger, read by the telemetry layer.
	Stats PortStats

	// FaultDescDeplete, when set, makes the RX conversion path treat the
	// exchange descriptor pool as exhausted while it returns true — the
	// fault engine's exchange-pool depletion hook. Nil in normal runs.
	FaultDescDeplete func(nowNS float64) bool

	// Trace is the owning core's flight recorder, or nil. RxBurst runs
	// the 1-in-N sampler on every packet that survives conversion;
	// TxBurst emits the matching depart event.
	Trace *trace.CoreTrace

	// LatHist, when set, receives the RX→TX-enqueue latency of every
	// transmitted packet in nanoseconds — the port-level end-to-end
	// distribution behind the live exporter and report percentiles.
	LatHist *trace.Hist

	// OnTxLat, when set, observes (frame bytes, RX→TX-enqueue latency)
	// for every packet accepted by the TX ring — the flow log's
	// per-flow latency sampling hook. The callback must not retain the
	// frame slice and must not allocate: it runs on the hot path.
	OnTxLat func(frame []byte, latNS float64)

	// Overload is the core's overload control plane, or nil. When set,
	// RxBurst prices every arriving frame against the active admission
	// policy *before* paying conversion cost; a shed frame costs one
	// descriptor poll and a class lookup, nothing more. Sheds are booked
	// in Drops under the DropOverload* reasons so conservation balances.
	Overload *overload.Controller
}

// PortStats counts per-port PMD activity. RefillShort events used to be
// invisible: the refill loop would silently leave the RX ring short when
// buffers ran out, and the only symptom was a later RxDropNoBuf surge on
// the NIC.
type PortStats struct {
	// Polls counts RxBurst calls; EmptyPolls those that returned nothing.
	Polls, EmptyPolls uint64
	// RxPackets / TxPackets count packets handed to the application /
	// accepted for transmit.
	RxPackets, TxPackets uint64
	// RefillShort counts refill loops that could not restore every
	// consumed RX descriptor; RefillShortBufs counts the missing buffers.
	RefillShort, RefillShortBufs uint64
}

// Per-packet PMD instruction costs (beyond the charged memory accesses).
const (
	DefaultRxConvInstr = 30
	DefaultTxConvInstr = 26
)

// NewPort wires a PMD onto a device queue pair.
func NewPort(id int, dev nic.Port, pool *Mempool, bind xchg.Binding, burst int) *Port {
	if burst <= 0 {
		burst = 32
	}
	return &Port{
		ID: id, Dev: dev, Pool: pool, Bind: bind, Burst: burst,
		descs:       make([]nic.Descriptor, burst),
		reap:        make([]*pktbuf.Packet, burst*2),
		RxConvInstr: DefaultRxConvInstr,
		TxConvInstr: DefaultTxConvInstr,
	}
}

// SetVectorized switches the RX path to the SIMD implementation. It
// returns an error under an exchange binding, mirroring the paper's
// prototype limitation.
func (pt *Port) SetVectorized(on bool) error {
	if on && pt.Bind.ExchangesBuffers() {
		return fmt.Errorf("dpdk: port %d: vectorized PMD does not support X-Change (paper §4, footnote)", pt.ID)
	}
	pt.Vectorized = on
	return nil
}

// ProvideBuffers lends application buffers to the driver (X-Change setup
// and steady-state exchange).
func (pt *Port) ProvideBuffers(bufs []*pktbuf.Packet) {
	pt.spare = append(pt.spare, bufs...)
}

// SpareCount reports application buffers waiting to be posted.
func (pt *Port) SpareCount() int { return len(pt.spare) }

// SetupRX fills the receive ring with buffers: from the mempool under
// stock bindings, from the application's provided buffers under exchange
// bindings. It charges nothing (initialization phase).
func (pt *Port) SetupRX() error {
	rxq := pt.Dev
	want := rxq.RXRingSize() - rxq.PostedCount() - rxq.PendingCount()
	for i := 0; i < want; i++ {
		var b *pktbuf.Packet
		if pt.Bind.ExchangesBuffers() {
			if len(pt.spare) == 0 {
				return fmt.Errorf("dpdk: port %d: %d app buffers short for RX ring", pt.ID, want-i)
			}
			b = pt.spare[len(pt.spare)-1]
			pt.spare = pt.spare[:len(pt.spare)-1]
		} else {
			if b = pt.takeFromPoolInit(); b == nil {
				return fmt.Errorf("dpdk: port %d: mempool too small for RX ring", pt.ID)
			}
		}
		if err := rxq.Post(b); err != nil {
			return fmt.Errorf("dpdk: port %d: %w", pt.ID, err)
		}
	}
	return nil
}

// takeFromPoolInit pops a buffer without charging (init phase). The
// buffer still enters the allocation ledger: it will come back through
// Put during the run like any other.
func (pt *Port) takeFromPoolInit() *pktbuf.Packet {
	if pt.Pool == nil || len(pt.Pool.free) == 0 {
		return nil
	}
	idx := len(pt.Pool.free) - 1
	p := pt.Pool.free[idx]
	pt.Pool.free = pt.Pool.free[:idx]
	pt.Pool.out[p] = struct{}{}
	return p
}

// RxBurst polls up to len(out) receptions ready by nowNS, runs the
// conversion functions for each, refills the ring, and returns how many
// packets reached the application. This is rte_eth_rx_burst with the
// X-Change patch applied.
//
// Under an exchange binding, a packet whose application descriptor cannot
// be attached — the exchange pool is exhausted (§3.1's sizing rule
// violated at run time) or the fault engine's depletion window is open —
// is dropped with accounting: the buffer goes straight back to the
// driver's spare list, the port's PoolExhausted counter advances, and the
// burst reports a wrapped ErrPoolExhausted alongside the surviving count.
// The old behaviour was a panic that killed the whole experiment.
func (pt *Port) RxBurst(core *machine.Core, nowNS float64, out []*pktbuf.Packet) (int, error) {
	max := len(out)
	if max > len(pt.descs) {
		max = len(pt.descs)
	}
	rxq := pt.Dev
	if rxq.NextReadyNS() > nowNS {
		// Empty-poll fast path: nothing is ready, so skip the poll loop
		// and conversion setup entirely. The simulated charge is the same
		// as an empty Poll — just the CQE peek.
		pt.Stats.Polls++
		pt.Stats.EmptyPolls++
		core.Compute(4)
		return 0, nil
	}
	var n int
	if pt.Vectorized {
		n = rxq.PollCompressed(core, nowNS, max, out, pt.descs)
	} else {
		n = rxq.Poll(core, nowNS, max, out, pt.descs)
	}
	pt.Stats.Polls++
	if n == 0 {
		// An empty poll still costs the CQE peek.
		pt.Stats.EmptyPolls++
		core.Compute(4)
		return 0, nil
	}
	conv := pt.RxConvInstr
	if pt.Vectorized {
		conv /= 2 // SIMD decode amortizes the per-packet scalar work
	}
	if pt.Overload != nil {
		// Admission prices against the ring as it stands at poll time —
		// the frames still queued plus this burst — not the occupancy
		// cached at the last health observation.
		pt.Overload.NoteOccupancy(
			float64(rxq.PendingCount()+n) / float64(rxq.RXRingSize()))
	}
	kept := 0
	var exhausted uint64
	for i := 0; i < n; i++ {
		p, d := out[i], pt.descs[i]
		if pt.Overload != nil {
			core.Compute(2) // class lookup + watermark compare
			if ok, reason := pt.Overload.Admit(overload.ClassOf(p.Bytes())); !ok {
				pt.Drops.Add(reason, 1)
				pt.recycleRx(core, p)
				continue
			}
		}
		if pt.Bind.ExchangesBuffers() {
			gated := pt.FaultDescDeplete != nil && pt.FaultDescDeplete(nowNS)
			if gated || pt.Bind.RxMeta(p) == nil {
				exhausted++
				pt.Drops.Add(stats.DropPoolExhausted, 1)
				// Rewind to the buffer's own headroom: exchange pools may
				// reserve more than DPDK's stock 128 B, and resetting to
				// the global default would silently grow or shrink the
				// room every recycle.
				p.Reset(p.OrigHeadroom())
				pt.spare = append(pt.spare, p)
				continue
			}
		}
		core.Compute(conv)
		pt.Bind.SetDataLen(core, p, uint16(d.Len))
		pt.Bind.SetPktLen(core, p, uint32(d.Len))
		pt.Bind.SetPort(core, p, uint16(pt.ID))
		pt.Bind.SetRSSHash(core, p, d.RSSHash)
		pt.Bind.SetPacketType(core, p, d.PktType)
		if d.VlanTCI != 0 {
			pt.Bind.SetVlanTCI(core, p, d.VlanTCI)
		}
		if pt.Trace != nil {
			p.TraceID = pt.Trace.MaybeSample(d.Len, p.ArrivalNS)
		}
		out[kept] = p
		kept++
	}
	// Ring refill: replacement buffers come from the pool (stock) or the
	// application's exchanged spares (X-Change). n descriptors were
	// consumed from the ring regardless of how many survived conversion.
	refilled := 0
	for i := 0; i < n; i++ {
		var b *pktbuf.Packet
		if pt.Bind.ExchangesBuffers() {
			if len(pt.spare) == 0 {
				break // application under-provisioned; ring shrinks
			}
			b = pt.spare[len(pt.spare)-1]
			pt.spare = pt.spare[:len(pt.spare)-1]
			b.Reset(b.OrigHeadroom())
			core.Compute(4) // exchange bookkeeping, no pool machinery
		} else {
			if b = pt.Pool.Get(core); b == nil {
				break
			}
		}
		if err := rxq.Post(b); err != nil {
			// The ring will not take more buffers; return this one and
			// stop refilling rather than over-posting. Not a shortfall:
			// the ring is already full, so no descriptor went missing.
			pt.unrefill(core, b)
			refilled = n
			break
		}
		refilled++
	}
	if refilled < n {
		// Buffer starvation left the ring short — record it so the shrink
		// shows up in telemetry instead of only as later no-buf drops.
		pt.Stats.RefillShort++
		pt.Stats.RefillShortBufs += uint64(n - refilled)
	}
	pt.Stats.RxPackets += uint64(kept)
	if exhausted > 0 {
		return kept, fmt.Errorf("port %d: %d of %d packets dropped: %w",
			pt.ID, exhausted, n, ErrPoolExhausted)
	}
	return kept, nil
}

// recycleRx returns a freshly-polled buffer the admission shedder
// refused: straight back to the spare list (exchange bindings, where the
// application descriptor was never attached) or the mempool. The frame
// never reached conversion, so nothing else holds a reference.
func (pt *Port) recycleRx(core *machine.Core, p *pktbuf.Packet) {
	if pt.Bind.ExchangesBuffers() {
		p.Reset(p.OrigHeadroom())
		pt.spare = append(pt.spare, p)
		return
	}
	_ = pt.Pool.Put(core, p)
}

// unrefill returns a buffer the RX ring rejected to wherever it came from.
func (pt *Port) unrefill(core *machine.Core, b *pktbuf.Packet) {
	if pt.Bind.ExchangesBuffers() {
		pt.spare = append(pt.spare, b)
		return
	}
	// The buffer was just allocated from the pool, so this cannot
	// double-free.
	_ = pt.Pool.Put(core, b)
}

// TxBurst reaps completed transmissions (recycling their buffers) and
// enqueues pkts[0:n]; returns how many were accepted.
func (pt *Port) TxBurst(core *machine.Core, nowNS float64, pkts []*pktbuf.Packet) int {
	txq := pt.Dev

	// Reap finished frames first, releasing buffers for reuse.
	for {
		r := txq.Reap(nowNS, pt.reap)
		if r == 0 {
			break
		}
		for i := 0; i < r; i++ {
			done := pt.reap[i]
			if pt.Bind.ExchangesBuffers() {
				if cb, ok := pt.Bind.(*xchg.CustomBinding); ok {
					cb.Release(done)
				}
				pt.spare = append(pt.spare, done)
				core.Compute(2)
			} else if err := pt.Pool.Put(core, done); err != nil {
				// A reaped buffer that is not outstanding means someone
				// already freed it; the pool rejected the double free
				// and counted it — nothing else to unwind.
				continue
			}
		}
	}

	sent := 0
	for _, p := range pkts {
		core.Compute(pt.TxConvInstr)
		pt.Bind.GetDataLen(core, p)
		pt.Bind.GetBufAddr(core, p)
		if !txq.Enqueue(core, p, nowNS) {
			break
		}
		pt.LatHist.Record(nowNS - p.ArrivalNS)
		if pt.OnTxLat != nil {
			pt.OnTxLat(p.Bytes(), nowNS-p.ArrivalNS)
		}
		if p.TraceID != 0 {
			pt.Trace.Depart(p.TraceID, p.Len())
			p.TraceID = 0
		}
		if cb, ok := pt.Bind.(*xchg.CustomBinding); ok {
			// X-Change TX swap (§3.1): the metadata has been converted
			// into the SQE, so the application descriptor is free the
			// moment the packet sits in the ring — only the *buffer*
			// stays with the NIC until the wire drains it.
			cb.Release(p)
		}
		sent++
	}
	pt.Stats.TxPackets += uint64(sent)
	return sent
}
