package dpdk

import (
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/xchg"
)

type rig struct {
	mach *machine.Machine
	core *machine.Core
	nic  *nic.NIC
	huge *memsim.Arena
}

func newRig() *rig {
	m, core := machine.Default(2.0)
	huge := memsim.NewArena("huge", memsim.HugeBase, 1<<30)
	cfg := nic.DefaultConfig("nic0")
	cfg.RXRingSize = 256
	cfg.TXRingSize = 256
	cfg.MaxQueuePPS = 0
	return &rig{mach: m, core: core, nic: nic.New(cfg, m.Sys, huge), huge: huge}
}

func frame(size int) []byte {
	return netpkt.BuildUDP(make([]byte, 2048), netpkt.UDPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 53, TotalLen: size,
	})
}

func TestMempoolGetPutLIFO(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 8, r.huge, DefaultBufSpec())
	if mp.Capacity() != 8 || mp.Available() != 8 {
		t.Fatalf("cap=%d avail=%d", mp.Capacity(), mp.Available())
	}
	a := mp.Get(r.core)
	b := mp.Get(r.core)
	if a == nil || b == nil || a == b {
		t.Fatal("get broken")
	}
	mp.Put(r.core, b)
	if c := mp.Get(r.core); c != b {
		t.Fatal("pool not LIFO")
	}
}

func TestMempoolExhaustion(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 2, r.huge, DefaultBufSpec())
	mp.Get(r.core)
	mp.Get(r.core)
	if mp.Get(r.core) != nil {
		t.Fatal("got buffer from empty pool")
	}
	if mp.Fails != 1 {
		t.Fatalf("Fails = %d", mp.Fails)
	}
}

func TestMempoolOverFreePanics(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 1, r.huge, DefaultBufSpec())
	p := mp.Get(r.core)
	mp.Put(r.core, p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mp.Put(r.core, p)
}

func TestMempoolSeparateMbufGeometry(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 4, r.huge, DefaultBufSpec())
	p := mp.Get(r.core)
	if p.Mbuf == nil || p.Meta != nil {
		t.Fatal("separate-mbuf spec must attach Mbuf only")
	}
	if p.Mbuf.L.Name() != "rte_mbuf" {
		t.Fatalf("mbuf layout %s", p.Mbuf.L.Name())
	}
	// Buffer must start right after the 128-B descriptor.
	if p.BufAddr != p.Mbuf.Base+MbufStructSize {
		t.Fatalf("buffer at %#x, mbuf at %#x", p.BufAddr, p.Mbuf.Base)
	}
	if p.Headroom() != DefaultHeadroom {
		t.Fatalf("headroom %d", p.Headroom())
	}
	if got := memsim.Addr(p.Mbuf.Peek(layout.FieldBufAddr)); got != p.BufAddr {
		t.Fatalf("buf_addr field %#x", got)
	}
}

func TestMempoolOverlayGeometry(t *testing.T) {
	r := newRig()
	spec := DefaultBufSpec()
	spec.MetaLayout = layout.OverlayPacket()
	spec.SeparateMbuf = false
	mp := NewMempool("ov", 4, r.huge, spec)
	p := mp.Get(r.core)
	if p.Meta == nil || p.Mbuf != nil {
		t.Fatal("overlay spec must attach Meta only")
	}
	if p.BufAddr != p.Meta.Base+memsim.Addr(layout.OverlayPacket().Size()) {
		t.Fatal("overlay buffer not after the fat descriptor")
	}
}

func TestMempoolRearmChargesDescriptor(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 4, r.huge, DefaultBufSpec())
	before := r.core.Snapshot()
	mp.Get(r.core)
	d := r.core.Snapshot().Delta(before)
	if d.Instructions < MempoolOpInstr {
		t.Fatalf("get under-charged: %+v", d)
	}
}

func newDefaultPort(r *rig, poolSize int) *Port {
	mp := NewMempool("mb", poolSize, r.huge, DefaultBufSpec())
	pt := NewPort(0, r.nic, 0, mp, xchg.NewDefaultBinding(true), 32)
	if err := pt.SetupRX(); err != nil {
		panic(err)
	}
	return pt
}

func TestPortSetupFillsRing(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	if got := r.nic.RX(0).PostedCount(); got != 256 {
		t.Fatalf("posted %d, want ring size 256", got)
	}
	if pt.Pool.Available() != 512-256 {
		t.Fatalf("pool available %d", pt.Pool.Available())
	}
}

func TestPortSetupPoolTooSmall(t *testing.T) {
	r := newRig()
	mp := NewMempool("mb", 10, r.huge, DefaultBufSpec())
	if err := NewPort(0, r.nic, 0, mp, xchg.NewDefaultBinding(true), 32).SetupRX(); err == nil {
		t.Fatal("expected error for undersized pool")
	}
}

func TestRxBurstDefaultBinding(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	for i := 0; i < 10; i++ {
		if !r.nic.Deliver(0, frame(200), float64(i)) {
			t.Fatalf("deliver %d failed", i)
		}
	}
	out := make([]*pktbuf.Packet, 32)
	n := pt.RxBurst(r.core, 1e6, out)
	if n != 10 {
		t.Fatalf("rx %d", n)
	}
	p := out[0]
	if p.Mbuf.Peek(layout.FieldDataLen) != 200 || p.Mbuf.Peek(layout.FieldPktLen) != 200 {
		t.Fatalf("metadata: dataLen=%d", p.Mbuf.Peek(layout.FieldDataLen))
	}
	// The ring must be refilled to capacity.
	if got := r.nic.RX(0).PostedCount(); got != 256 {
		t.Fatalf("ring refill: posted %d", got)
	}
}

func TestRxBurstEmptyChargesPeek(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	before := r.core.Snapshot()
	if n := pt.RxBurst(r.core, 0, make([]*pktbuf.Packet, 32)); n != 0 {
		t.Fatalf("rx %d from idle port", n)
	}
	if d := r.core.Snapshot().Delta(before); d.Instructions == 0 {
		t.Fatal("empty poll was free")
	}
}

func TestTxBurstSendsAndRecycles(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	for i := 0; i < 4; i++ {
		r.nic.Deliver(0, frame(100), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	n := pt.RxBurst(r.core, 1e6, out)
	availAfterRx := pt.Pool.Available()
	if sent := pt.TxBurst(r.core, 1e6, out[:n]); sent != n {
		t.Fatalf("sent %d of %d", sent, n)
	}
	// After wire departure, a later TxBurst reap returns buffers to pool.
	pt.TxBurst(r.core, 1e9, nil)
	if pt.Pool.Available() != availAfterRx+n {
		t.Fatalf("pool did not recover: %d vs %d+%d", pt.Pool.Available(), availAfterRx, n)
	}
	if r.nic.Stats.TxSent != uint64(n) {
		t.Fatalf("TxSent = %d", r.nic.Stats.TxSent)
	}
}

func newXchgPort(r *rig) (*Port, *xchg.CustomBinding) {
	static := memsim.NewArena("static", memsim.StaticBase, 1<<20)
	dp := xchg.NewDescriptorPool(64, layout.XchgPacket(), static, nil)
	bind := xchg.NewCustomBinding("x-change", dp, true)
	pt := NewPort(0, r.nic, 0, nil, bind, 32)
	pt.ProvideBuffers(AllocRawBuffers(r.huge, 256+64, DefaultHeadroom, DefaultDataRoom))
	if err := pt.SetupRX(); err != nil {
		panic(err)
	}
	return pt, bind
}

func TestXchgRxAttachesAppDescriptors(t *testing.T) {
	r := newRig()
	pt, bind := newXchgPort(r)
	for i := 0; i < 8; i++ {
		r.nic.Deliver(0, frame(150), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	n := pt.RxBurst(r.core, 1e6, out)
	if n != 8 {
		t.Fatalf("rx %d", n)
	}
	for i := 0; i < n; i++ {
		if out[i].Meta == nil || out[i].Mbuf != nil {
			t.Fatal("xchg packet must carry app descriptor, no mbuf")
		}
		if out[i].Meta.L.Name() != "xchg_packet" {
			t.Fatalf("layout %s", out[i].Meta.L.Name())
		}
		if out[i].Meta.Peek(layout.FieldDataLen) != 150 {
			t.Fatalf("dataLen %d", out[i].Meta.Peek(layout.FieldDataLen))
		}
	}
	if bind.Pool.FreeCount() != 64-8 {
		t.Fatalf("descriptor pool free %d", bind.Pool.FreeCount())
	}
}

func TestXchgBufferExchangeConservation(t *testing.T) {
	r := newRig()
	pt, bind := newXchgPort(r)
	out := make([]*pktbuf.Packet, 32)
	// Run several RX→TX cycles; buffers and descriptors must be conserved.
	now := 0.0
	for round := 0; round < 20; round++ {
		for i := 0; i < 16; i++ {
			r.nic.Deliver(0, frame(100), now)
		}
		now += 1e5
		n := pt.RxBurst(r.core, now, out)
		pt.TxBurst(r.core, now, out[:n])
	}
	// Let everything drain and reap.
	pt.TxBurst(r.core, now+1e9, nil)
	if got := bind.Pool.FreeCount(); got != 64 {
		t.Fatalf("descriptor leak: %d/64 free", got)
	}
	// All buffers either posted in the ring or spare.
	total := r.nic.RX(0).PostedCount() + pt.SpareCount()
	if total != 256+64 {
		t.Fatalf("buffer leak: %d posted+spare, want 320", total)
	}
}

func TestXchgWritesFewerMetadataLines(t *testing.T) {
	// Per received packet, the X-Change binding must dirty fewer
	// distinct metadata bytes than the default rte_mbuf binding; compare
	// charged work on the same traffic.
	run := func(exchange bool) float64 {
		r := newRig()
		var pt *Port
		if exchange {
			pt, _ = newXchgPort(r)
		} else {
			pt = newDefaultPort(r, 512)
		}
		for i := 0; i < 32; i++ {
			r.nic.Deliver(0, frame(100), 0)
		}
		out := make([]*pktbuf.Packet, 32)
		before := r.core.Snapshot()
		pt.RxBurst(r.core, 1e6, out)
		d := r.core.Snapshot().Delta(before)
		return d.BusyCycles
	}
	def, xc := run(false), run(true)
	if xc >= def {
		t.Fatalf("X-Change RX not cheaper: %v vs %v cycles", xc, def)
	}
}

func TestTxBurstRingFullStops(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 1024)
	// Fill the TX ring beyond capacity by never letting time advance.
	var pkts []*pktbuf.Packet
	for i := 0; i < 300; i++ {
		p := pt.Pool.Get(r.core)
		if p == nil {
			t.Fatal("pool dry")
		}
		p.SetFrame(frame(64))
		pkts = append(pkts, p)
	}
	sent := pt.TxBurst(r.core, 0, pkts)
	if sent != 256 {
		t.Fatalf("sent %d, want TX ring size 256", sent)
	}
}

func TestAllocRawBuffers(t *testing.T) {
	huge := memsim.NewArena("huge", memsim.HugeBase, 1<<24)
	bufs := AllocRawBuffers(huge, 10, 128, 2048)
	if len(bufs) != 10 {
		t.Fatalf("%d buffers", len(bufs))
	}
	for _, b := range bufs {
		if b.Meta != nil || b.Mbuf != nil {
			t.Fatal("raw buffer carries a descriptor")
		}
		if b.Headroom() != 128 {
			t.Fatalf("headroom %d", b.Headroom())
		}
	}
	if bufs[1].BufAddr == bufs[0].BufAddr {
		t.Fatal("buffers share addresses")
	}
}

func TestVectorizedPMDRejectsExchange(t *testing.T) {
	r := newRig()
	pt, _ := newXchgPort(r)
	if err := pt.SetVectorized(true); err == nil {
		t.Fatal("vectorized accepted under an exchange binding")
	}
	if err := pt.SetVectorized(false); err != nil {
		t.Fatalf("disabling must always work: %v", err)
	}
}

func TestVectorizedPMDCheaperRx(t *testing.T) {
	cost := func(vec bool) float64 {
		r := newRig()
		pt := newDefaultPort(r, 512)
		if err := pt.SetVectorized(vec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			r.nic.Deliver(0, frame(100), 0)
		}
		out := make([]*pktbuf.Packet, 32)
		before := r.core.Snapshot()
		if n := pt.RxBurst(r.core, 1e6, out); n != 32 {
			t.Fatalf("rx %d", n)
		}
		return r.core.Snapshot().Delta(before).BusyCycles
	}
	scalar, vector := cost(false), cost(true)
	if vector >= scalar {
		t.Fatalf("vectorized RX not cheaper: %v vs %v cycles", vector, scalar)
	}
}

func TestVectorizedPMDSameSemantics(t *testing.T) {
	// Vectorized and scalar paths must deliver identical packets.
	rx := func(vec bool) []*pktbuf.Packet {
		r := newRig()
		pt := newDefaultPort(r, 512)
		pt.SetVectorized(vec)
		for i := 0; i < 10; i++ {
			r.nic.Deliver(0, frame(100+i), float64(i))
		}
		out := make([]*pktbuf.Packet, 32)
		n := pt.RxBurst(r.core, 1e6, out)
		return out[:n]
	}
	a, b := rx(false), rx(true)
	if len(a) != len(b) {
		t.Fatalf("counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("packet %d length differs: %d vs %d", i, a[i].Len(), b[i].Len())
		}
		if a[i].Mbuf.Peek(layout.FieldDataLen) != b[i].Mbuf.Peek(layout.FieldDataLen) {
			t.Fatalf("packet %d metadata differs", i)
		}
	}
}
