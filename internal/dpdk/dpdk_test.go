package dpdk

import (
	"errors"
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/xchg"
)

type rig struct {
	mach *machine.Machine
	core *machine.Core
	nic  *nic.NIC
	huge *memsim.Arena
}

func newRig() *rig {
	m, core := machine.Default(2.0)
	huge := memsim.NewArena("huge", memsim.HugeBase, 1<<30)
	cfg := nic.DefaultConfig("nic0")
	cfg.RXRingSize = 256
	cfg.TXRingSize = 256
	cfg.MaxQueuePPS = 0
	return &rig{mach: m, core: core, nic: nic.New(cfg, m.Sys, huge), huge: huge}
}

func frame(size int) []byte {
	return netpkt.BuildUDP(make([]byte, 2048), netpkt.UDPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 53, TotalLen: size,
	})
}

// mustMempool builds a pool that is expected to fit its arena.
func mustMempool(name string, n int, arena *memsim.Arena, spec BufSpec) *Mempool {
	mp, err := NewMempool(name, n, arena, spec)
	if err != nil {
		panic(err)
	}
	return mp
}

// rxb is RxBurst for tests that expect no pool exhaustion.
func rxb(t *testing.T, pt *Port, core *machine.Core, now float64, out []*pktbuf.Packet) int {
	t.Helper()
	n, err := pt.RxBurst(core, now, out)
	if err != nil {
		t.Fatalf("RxBurst: %v", err)
	}
	return n
}

func TestMempoolGetPutLIFO(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 8, r.huge, DefaultBufSpec())
	if mp.Capacity() != 8 || mp.Available() != 8 {
		t.Fatalf("cap=%d avail=%d", mp.Capacity(), mp.Available())
	}
	a := mp.Get(r.core)
	b := mp.Get(r.core)
	if a == nil || b == nil || a == b {
		t.Fatal("get broken")
	}
	mp.Put(r.core, b)
	if c := mp.Get(r.core); c != b {
		t.Fatal("pool not LIFO")
	}
}

func TestMempoolExhaustion(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 2, r.huge, DefaultBufSpec())
	mp.Get(r.core)
	mp.Get(r.core)
	if mp.Get(r.core) != nil {
		t.Fatal("got buffer from empty pool")
	}
	if mp.Fails != 1 {
		t.Fatalf("Fails = %d", mp.Fails)
	}
}

func TestMempoolDoubleFreeDetected(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 1, r.huge, DefaultBufSpec())
	p := mp.Get(r.core)
	if err := mp.Put(r.core, p); err != nil {
		t.Fatalf("first free: %v", err)
	}
	err := mp.Put(r.core, p)
	if !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second free: err = %v, want ErrDoubleFree", err)
	}
	if mp.DoubleFrees != 1 {
		t.Fatalf("DoubleFrees = %d", mp.DoubleFrees)
	}
	// The ledger must be intact: the buffer is free exactly once.
	if mp.Available() != 1 || mp.Outstanding() != 0 {
		t.Fatalf("ledger corrupted: avail=%d outstanding=%d", mp.Available(), mp.Outstanding())
	}
	// And the pool still works.
	if mp.Get(r.core) != p {
		t.Fatal("pool unusable after rejected double free")
	}
}

func TestMempoolForeignFreeRoutesToOwner(t *testing.T) {
	// rte_pktmbuf_free semantics: freeing through the wrong port's pool
	// must return the buffer to the pool it was carved from.
	r := newRig()
	a := mustMempool("a", 2, r.huge, DefaultBufSpec())
	b := mustMempool("b", 2, r.huge, DefaultBufSpec())
	p := a.Get(r.core)
	if err := b.Put(r.core, p); err != nil {
		t.Fatalf("foreign free: %v", err)
	}
	if a.Available() != 2 || b.Available() != 2 {
		t.Fatalf("buffer migrated: a=%d b=%d", a.Available(), b.Available())
	}
	if a.Outstanding() != 0 {
		t.Fatalf("owner ledger: %d outstanding", a.Outstanding())
	}
}

func TestMempoolDepletionRecoveryLedger(t *testing.T) {
	// Drain the pool to zero, free everything back, repeat — counters
	// and ledger must reconcile at every point.
	r := newRig()
	const capacity = 16
	mp := mustMempool("mb", capacity, r.huge, DefaultBufSpec())
	for cycle := 0; cycle < 3; cycle++ {
		var taken []*pktbuf.Packet
		for {
			p := mp.Get(r.core)
			if p == nil {
				break
			}
			taken = append(taken, p)
		}
		if len(taken) != capacity {
			t.Fatalf("cycle %d: drained %d, want %d", cycle, len(taken), capacity)
		}
		if mp.Available() != 0 || mp.Outstanding() != capacity {
			t.Fatalf("cycle %d: avail=%d outstanding=%d", cycle, mp.Available(), mp.Outstanding())
		}
		for _, p := range taken {
			if err := mp.Put(r.core, p); err != nil {
				t.Fatalf("cycle %d: put: %v", cycle, err)
			}
		}
		if mp.Available() != capacity || mp.Outstanding() != 0 {
			t.Fatalf("cycle %d after refill: avail=%d outstanding=%d",
				cycle, mp.Available(), mp.Outstanding())
		}
		if mp.Gets-mp.Puts != 0 {
			t.Fatalf("cycle %d: Gets-Puts = %d", cycle, mp.Gets-mp.Puts)
		}
	}
	if int(mp.Fails) != 3 {
		t.Fatalf("Fails = %d, want one per drain cycle", mp.Fails)
	}
}

func TestMempoolSeparateMbufGeometry(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 4, r.huge, DefaultBufSpec())
	p := mp.Get(r.core)
	if p.Mbuf == nil || p.Meta != nil {
		t.Fatal("separate-mbuf spec must attach Mbuf only")
	}
	if p.Mbuf.L.Name() != "rte_mbuf" {
		t.Fatalf("mbuf layout %s", p.Mbuf.L.Name())
	}
	// Buffer must start right after the 128-B descriptor.
	if p.BufAddr != p.Mbuf.Base+MbufStructSize {
		t.Fatalf("buffer at %#x, mbuf at %#x", p.BufAddr, p.Mbuf.Base)
	}
	if p.Headroom() != DefaultHeadroom {
		t.Fatalf("headroom %d", p.Headroom())
	}
	if got := memsim.Addr(p.Mbuf.Peek(layout.FieldBufAddr)); got != p.BufAddr {
		t.Fatalf("buf_addr field %#x", got)
	}
}

func TestMempoolOverlayGeometry(t *testing.T) {
	r := newRig()
	spec := DefaultBufSpec()
	spec.MetaLayout = layout.OverlayPacket()
	spec.SeparateMbuf = false
	mp := mustMempool("ov", 4, r.huge, spec)
	p := mp.Get(r.core)
	if p.Meta == nil || p.Mbuf != nil {
		t.Fatal("overlay spec must attach Meta only")
	}
	if p.BufAddr != p.Meta.Base+memsim.Addr(layout.OverlayPacket().Size()) {
		t.Fatal("overlay buffer not after the fat descriptor")
	}
}

func TestMempoolRearmChargesDescriptor(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 4, r.huge, DefaultBufSpec())
	before := r.core.Snapshot()
	mp.Get(r.core)
	d := r.core.Snapshot().Delta(before)
	if d.Instructions < MempoolOpInstr {
		t.Fatalf("get under-charged: %+v", d)
	}
}

func newDefaultPort(r *rig, poolSize int) *Port {
	mp := mustMempool("mb", poolSize, r.huge, DefaultBufSpec())
	pt := NewPort(0, r.nic.Port(0), mp, xchg.NewDefaultBinding(true), 32)
	if err := pt.SetupRX(); err != nil {
		panic(err)
	}
	return pt
}

func TestPortSetupFillsRing(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	if got := r.nic.RX(0).PostedCount(); got != 256 {
		t.Fatalf("posted %d, want ring size 256", got)
	}
	if pt.Pool.Available() != 512-256 {
		t.Fatalf("pool available %d", pt.Pool.Available())
	}
}

func TestPortSetupPoolTooSmall(t *testing.T) {
	r := newRig()
	mp := mustMempool("mb", 10, r.huge, DefaultBufSpec())
	if err := NewPort(0, r.nic.Port(0), mp, xchg.NewDefaultBinding(true), 32).SetupRX(); err == nil {
		t.Fatal("expected error for undersized pool")
	}
}

func TestRxBurstDefaultBinding(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	for i := 0; i < 10; i++ {
		if !r.nic.Deliver(0, frame(200), float64(i)) {
			t.Fatalf("deliver %d failed", i)
		}
	}
	out := make([]*pktbuf.Packet, 32)
	n := rxb(t, pt, r.core, 1e6, out)
	if n != 10 {
		t.Fatalf("rx %d", n)
	}
	p := out[0]
	if p.Mbuf.Peek(layout.FieldDataLen) != 200 || p.Mbuf.Peek(layout.FieldPktLen) != 200 {
		t.Fatalf("metadata: dataLen=%d", p.Mbuf.Peek(layout.FieldDataLen))
	}
	// The ring must be refilled to capacity.
	if got := r.nic.RX(0).PostedCount(); got != 256 {
		t.Fatalf("ring refill: posted %d", got)
	}
}

func TestRxBurstEmptyChargesPeek(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	before := r.core.Snapshot()
	if n := rxb(t, pt, r.core, 0, make([]*pktbuf.Packet, 32)); n != 0 {
		t.Fatalf("rx %d from idle port", n)
	}
	if d := r.core.Snapshot().Delta(before); d.Instructions == 0 {
		t.Fatal("empty poll was free")
	}
}

func TestTxBurstSendsAndRecycles(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	for i := 0; i < 4; i++ {
		r.nic.Deliver(0, frame(100), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	n := rxb(t, pt, r.core, 1e6, out)
	availAfterRx := pt.Pool.Available()
	if sent := pt.TxBurst(r.core, 1e6, out[:n]); sent != n {
		t.Fatalf("sent %d of %d", sent, n)
	}
	// After wire departure, a later TxBurst reap returns buffers to pool.
	pt.TxBurst(r.core, 1e9, nil)
	if pt.Pool.Available() != availAfterRx+n {
		t.Fatalf("pool did not recover: %d vs %d+%d", pt.Pool.Available(), availAfterRx, n)
	}
	if r.nic.Stats.TxSent != uint64(n) {
		t.Fatalf("TxSent = %d", r.nic.Stats.TxSent)
	}
}

func newXchgPort(r *rig) (*Port, *xchg.CustomBinding) {
	static := memsim.NewArena("static", memsim.StaticBase, 1<<20)
	dp, err := xchg.NewDescriptorPool(64, layout.XchgPacket(), static, nil)
	if err != nil {
		panic(err)
	}
	bind := xchg.NewCustomBinding("x-change", dp, true)
	pt := NewPort(0, r.nic.Port(0), nil, bind, 32)
	bufs, err := AllocRawBuffers(r.huge, 256+64, DefaultHeadroom, DefaultDataRoom)
	if err != nil {
		panic(err)
	}
	pt.ProvideBuffers(bufs)
	if err := pt.SetupRX(); err != nil {
		panic(err)
	}
	return pt, bind
}

func TestXchgRxAttachesAppDescriptors(t *testing.T) {
	r := newRig()
	pt, bind := newXchgPort(r)
	for i := 0; i < 8; i++ {
		r.nic.Deliver(0, frame(150), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	n := rxb(t, pt, r.core, 1e6, out)
	if n != 8 {
		t.Fatalf("rx %d", n)
	}
	for i := 0; i < n; i++ {
		if out[i].Meta == nil || out[i].Mbuf != nil {
			t.Fatal("xchg packet must carry app descriptor, no mbuf")
		}
		if out[i].Meta.L.Name() != "xchg_packet" {
			t.Fatalf("layout %s", out[i].Meta.L.Name())
		}
		if out[i].Meta.Peek(layout.FieldDataLen) != 150 {
			t.Fatalf("dataLen %d", out[i].Meta.Peek(layout.FieldDataLen))
		}
	}
	if bind.Pool.FreeCount() != 64-8 {
		t.Fatalf("descriptor pool free %d", bind.Pool.FreeCount())
	}
}

func TestXchgBufferExchangeConservation(t *testing.T) {
	r := newRig()
	pt, bind := newXchgPort(r)
	out := make([]*pktbuf.Packet, 32)
	// Run several RX→TX cycles; buffers and descriptors must be conserved.
	now := 0.0
	for round := 0; round < 20; round++ {
		for i := 0; i < 16; i++ {
			r.nic.Deliver(0, frame(100), now)
		}
		now += 1e5
		n := rxb(t, pt, r.core, now, out)
		pt.TxBurst(r.core, now, out[:n])
	}
	// Let everything drain and reap.
	pt.TxBurst(r.core, now+1e9, nil)
	if got := bind.Pool.FreeCount(); got != 64 {
		t.Fatalf("descriptor leak: %d/64 free", got)
	}
	// All buffers either posted in the ring or spare.
	total := r.nic.RX(0).PostedCount() + pt.SpareCount()
	if total != 256+64 {
		t.Fatalf("buffer leak: %d posted+spare, want 320", total)
	}
}

func TestRxBurstDescPoolExhausted(t *testing.T) {
	// Undersize the exchange descriptor pool (violating the §3.1 sizing
	// rule): the burst must survive, drop the excess with accounting, and
	// report a typed error — not panic.
	r := newRig()
	static := memsim.NewArena("static", memsim.StaticBase, 1<<20)
	dp, err := xchg.NewDescriptorPool(4, layout.XchgPacket(), static, nil)
	if err != nil {
		t.Fatal(err)
	}
	bind := xchg.NewCustomBinding("x-change", dp, true)
	pt := NewPort(0, r.nic.Port(0), nil, bind, 32)
	bufs, err := AllocRawBuffers(r.huge, 256+64, DefaultHeadroom, DefaultDataRoom)
	if err != nil {
		t.Fatal(err)
	}
	pt.ProvideBuffers(bufs)
	if err := pt.SetupRX(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.nic.Deliver(0, frame(120), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	n, err := pt.RxBurst(r.core, 1e6, out)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	if n != 4 {
		t.Fatalf("kept %d, want 4 (pool size)", n)
	}
	if got := pt.Drops.Get(stats.DropPoolExhausted); got != 6 {
		t.Fatalf("PoolExhausted drops = %d, want 6", got)
	}
	// Dropped buffers must not leak: ring posted + spare + the 4 held
	// packets account for every raw buffer.
	total := r.nic.RX(0).PostedCount() + pt.SpareCount() + n
	if total != 256+64 {
		t.Fatalf("buffer leak after exhausted burst: %d, want 320", total)
	}
	// Returning the survivors (TX + reap) fully recovers the pool.
	pt.TxBurst(r.core, 1e6, out[:n])
	pt.TxBurst(r.core, 1e9, nil)
	if dp.Outstanding() != 0 {
		t.Fatalf("descriptor leak: %d outstanding", dp.Outstanding())
	}
	// And the next burst succeeds again.
	for i := 0; i < 4; i++ {
		r.nic.Deliver(0, frame(80), 2e9)
	}
	if got := rxb(t, pt, r.core, 3e9, out); got != 4 {
		t.Fatalf("post-recovery rx %d", got)
	}
}

func TestDescPoolDepletionRecoveryCycles(t *testing.T) {
	// Repeated exhaust/recover cycles must keep the descriptor ledger
	// exact: size = free + outstanding at every step.
	dp, err := xchg.NewDescriptorPool(8, layout.XchgPacket(),
		memsim.NewArena("static", memsim.StaticBase, 1<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		var taken []*pktbuf.Meta
		for {
			m := dp.Get()
			if m == nil {
				break
			}
			taken = append(taken, m)
		}
		if len(taken) != 8 || dp.FreeCount() != 0 || dp.Outstanding() != 8 {
			t.Fatalf("cycle %d: taken=%d free=%d out=%d",
				cycle, len(taken), dp.FreeCount(), dp.Outstanding())
		}
		for _, m := range taken {
			dp.Put(m)
		}
		if dp.FreeCount() != 8 || dp.Outstanding() != 0 {
			t.Fatalf("cycle %d after refill: free=%d out=%d",
				cycle, dp.FreeCount(), dp.Outstanding())
		}
	}
}

func TestXchgWritesFewerMetadataLines(t *testing.T) {
	// Per received packet, the X-Change binding must dirty fewer
	// distinct metadata bytes than the default rte_mbuf binding; compare
	// charged work on the same traffic.
	run := func(exchange bool) float64 {
		r := newRig()
		var pt *Port
		if exchange {
			pt, _ = newXchgPort(r)
		} else {
			pt = newDefaultPort(r, 512)
		}
		for i := 0; i < 32; i++ {
			r.nic.Deliver(0, frame(100), 0)
		}
		out := make([]*pktbuf.Packet, 32)
		before := r.core.Snapshot()
		if _, err := pt.RxBurst(r.core, 1e6, out); err != nil {
			t.Fatal(err)
		}
		d := r.core.Snapshot().Delta(before)
		return d.BusyCycles
	}
	def, xc := run(false), run(true)
	if xc >= def {
		t.Fatalf("X-Change RX not cheaper: %v vs %v cycles", xc, def)
	}
}

func TestTxBurstRingFullStops(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 1024)
	// Fill the TX ring beyond capacity by never letting time advance.
	var pkts []*pktbuf.Packet
	for i := 0; i < 300; i++ {
		p := pt.Pool.Get(r.core)
		if p == nil {
			t.Fatal("pool dry")
		}
		p.SetFrame(frame(64))
		pkts = append(pkts, p)
	}
	sent := pt.TxBurst(r.core, 0, pkts)
	if sent != 256 {
		t.Fatalf("sent %d, want TX ring size 256", sent)
	}
}

func TestAllocRawBuffers(t *testing.T) {
	huge := memsim.NewArena("huge", memsim.HugeBase, 1<<24)
	bufs, err := AllocRawBuffers(huge, 10, 128, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 10 {
		t.Fatalf("%d buffers", len(bufs))
	}
	for _, b := range bufs {
		if b.Meta != nil || b.Mbuf != nil {
			t.Fatal("raw buffer carries a descriptor")
		}
		if b.Headroom() != 128 {
			t.Fatalf("headroom %d", b.Headroom())
		}
	}
	if bufs[1].BufAddr == bufs[0].BufAddr {
		t.Fatal("buffers share addresses")
	}
}

func TestVectorizedPMDRejectsExchange(t *testing.T) {
	r := newRig()
	pt, _ := newXchgPort(r)
	if err := pt.SetVectorized(true); err == nil {
		t.Fatal("vectorized accepted under an exchange binding")
	}
	if err := pt.SetVectorized(false); err != nil {
		t.Fatalf("disabling must always work: %v", err)
	}
}

func TestVectorizedPMDCheaperRx(t *testing.T) {
	cost := func(vec bool) float64 {
		r := newRig()
		pt := newDefaultPort(r, 512)
		if err := pt.SetVectorized(vec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			r.nic.Deliver(0, frame(100), 0)
		}
		out := make([]*pktbuf.Packet, 32)
		before := r.core.Snapshot()
		if n := rxb(t, pt, r.core, 1e6, out); n != 32 {
			t.Fatalf("rx %d", n)
		}
		return r.core.Snapshot().Delta(before).BusyCycles
	}
	scalar, vector := cost(false), cost(true)
	if vector >= scalar {
		t.Fatalf("vectorized RX not cheaper: %v vs %v cycles", vector, scalar)
	}
}

func TestVectorizedPMDSameSemantics(t *testing.T) {
	// Vectorized and scalar paths must deliver identical packets.
	rx := func(vec bool) []*pktbuf.Packet {
		r := newRig()
		pt := newDefaultPort(r, 512)
		pt.SetVectorized(vec)
		for i := 0; i < 10; i++ {
			r.nic.Deliver(0, frame(100+i), float64(i))
		}
		out := make([]*pktbuf.Packet, 32)
		n := rxb(t, pt, r.core, 1e6, out)
		return out[:n]
	}
	a, b := rx(false), rx(true)
	if len(a) != len(b) {
		t.Fatalf("counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("packet %d length differs: %d vs %d", i, a[i].Len(), b[i].Len())
		}
		if a[i].Mbuf.Peek(layout.FieldDataLen) != b[i].Mbuf.Peek(layout.FieldDataLen) {
			t.Fatalf("packet %d metadata differs", i)
		}
	}
}
