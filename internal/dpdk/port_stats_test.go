package dpdk

import (
	"errors"
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/xchg"
)

// newXchgPortHeadroom builds an exchange port whose raw buffers carry a
// non-default headroom — the configuration the old recycle paths broke by
// resetting to the global DefaultHeadroom constant.
func newXchgPortHeadroom(r *rig, descs, bufs, headroom int) (*Port, *xchg.CustomBinding) {
	static := memsim.NewArena("static", memsim.StaticBase, 1<<20)
	dp, err := xchg.NewDescriptorPool(descs, layout.XchgPacket(), static, nil)
	if err != nil {
		panic(err)
	}
	bind := xchg.NewCustomBinding("x-change", dp, true)
	pt := NewPort(0, r.nic.Port(0), nil, bind, 32)
	raw, err := AllocRawBuffers(r.huge, bufs, headroom, DefaultDataRoom)
	if err != nil {
		panic(err)
	}
	pt.ProvideBuffers(raw)
	if err := pt.SetupRX(); err != nil {
		panic(err)
	}
	return pt, bind
}

func TestXchgRefillPreservesCustomHeadroom(t *testing.T) {
	const headroom = 2 * DefaultHeadroom
	r := newRig()
	pt, _ := newXchgPortHeadroom(r, 64, 256+64, headroom)
	out := make([]*pktbuf.Packet, 32)
	now := 0.0
	for round := 0; round < 4; round++ {
		for i := 0; i < 16; i++ {
			r.nic.Deliver(0, frame(100), now)
		}
		now += 1e5
		n := rxb(t, pt, r.core, now, out)
		for i := 0; i < n; i++ {
			if got := out[i].Headroom(); got != headroom {
				t.Fatalf("round %d: received packet headroom %d, want %d",
					round, got, headroom)
			}
		}
		pt.TxBurst(r.core, now, out[:n])
	}
	pt.TxBurst(r.core, now+1e9, nil)
	for i, b := range pt.spare {
		if got := b.Headroom(); got != headroom {
			t.Fatalf("spare[%d] headroom %d after recycle, want %d", i, got, headroom)
		}
	}
}

func TestXchgExhaustedDropPreservesCustomHeadroom(t *testing.T) {
	// The pool-exhausted drop path recycles the buffer straight back to
	// the spare list; it too must rewind to the buffer's own headroom.
	const headroom = 3 * DefaultHeadroom / 2
	r := newRig()
	pt, _ := newXchgPortHeadroom(r, 2, 256+64, headroom) // 2 descriptors only
	for i := 0; i < 10; i++ {
		r.nic.Deliver(0, frame(120), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	if _, err := pt.RxBurst(r.core, 1e6, out); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
	for i, b := range pt.spare {
		if got := b.Headroom(); got != headroom {
			t.Fatalf("spare[%d] headroom %d after exhausted drop, want %d",
				i, got, headroom)
		}
	}
}

func TestRefillShortCountedWhenSparesDry(t *testing.T) {
	// Provide exactly ring-size buffers: SetupRX consumes them all, so the
	// first burst's refill loop finds the spare list empty and the ring
	// silently shrinks — which must now be ledgered, not silent.
	r := newRig()
	pt, _ := newXchgPortHeadroom(r, 64, 256, DefaultHeadroom)
	if pt.SpareCount() != 0 {
		t.Fatalf("spare %d after setup, want 0", pt.SpareCount())
	}
	for i := 0; i < 8; i++ {
		r.nic.Deliver(0, frame(100), 0)
	}
	out := make([]*pktbuf.Packet, 32)
	if n := rxb(t, pt, r.core, 1e6, out); n != 8 {
		t.Fatalf("rx %d", n)
	}
	if pt.Stats.RefillShort != 1 || pt.Stats.RefillShortBufs != 8 {
		t.Fatalf("refill-short = %d events / %d bufs, want 1/8",
			pt.Stats.RefillShort, pt.Stats.RefillShortBufs)
	}
	if got := r.nic.RX(0).PostedCount(); got != 256-8 {
		t.Fatalf("posted %d, want shrunken ring 248", got)
	}
	// Returning buffers via TX reap lets the next burst refill fully.
	pt.TxBurst(r.core, 1e6, out[:8])
	pt.TxBurst(r.core, 1e9, nil)
	for i := 0; i < 4; i++ {
		r.nic.Deliver(0, frame(100), 2e9)
	}
	if n := rxb(t, pt, r.core, 3e9, out); n != 4 {
		t.Fatalf("post-recovery rx %d", n)
	}
	if pt.Stats.RefillShort != 1 {
		t.Fatalf("refill-short advanced to %d on a healthy burst", pt.Stats.RefillShort)
	}
}

func TestPortStatsPollAndPacketCounters(t *testing.T) {
	r := newRig()
	pt := newDefaultPort(r, 512)
	out := make([]*pktbuf.Packet, 32)
	rxb(t, pt, r.core, 0, out) // empty poll
	for i := 0; i < 5; i++ {
		r.nic.Deliver(0, frame(100), 0)
	}
	n := rxb(t, pt, r.core, 1e6, out)
	pt.TxBurst(r.core, 1e6, out[:n])
	st := pt.Stats
	if st.Polls != 2 || st.EmptyPolls != 1 {
		t.Fatalf("polls=%d empty=%d, want 2/1", st.Polls, st.EmptyPolls)
	}
	if st.RxPackets != 5 || st.TxPackets != 5 {
		t.Fatalf("rx=%d tx=%d packets, want 5/5", st.RxPackets, st.TxPackets)
	}
	if st.RefillShort != 0 {
		t.Fatalf("refill-short %d on a provisioned port", st.RefillShort)
	}
}
