package elements_test

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/elements"
	"packetmill/internal/netpkt"
	"packetmill/internal/testbed"
)

const queuedForwarder = `
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
q :: Queue(CAPACITY 128);
uq :: Unqueue(BURST 32);
input -> q;
q -> uq -> EtherMirror -> output;
`

func TestQueueUnqueuePipeline(t *testing.T) {
	h := newHarness(t, queuedForwarder, click.Copying)
	for i := 0; i < 10; i++ {
		h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	}
	h.step()
	if len(h.captured) != 10 {
		t.Fatalf("captured %d of 10 through the queue", len(h.captured))
	}
	q := h.element("q").(*elements.Queue)
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	if q.HighWater == 0 {
		t.Fatal("queue never held anything")
	}
	uq := h.element("uq").(*elements.Unqueue)
	if uq.Pulled != 10 {
		t.Fatalf("unqueue pulled %d", uq.Pulled)
	}
	// Frames must still be intact (mirrored MACs, valid payload).
	eh, _ := netpkt.ParseEther(h.captured[0])
	if eh.Dst != (netpkt.MAC{0x02, 0, 0, 0, 0, 1}) {
		t.Fatalf("mirror after queue broken: %v", eh.Dst)
	}
}

func TestQueueTailDrop(t *testing.T) {
	h := newHarness(t, `
input :: FromDPDKDevice(PORT 0, BURST 32);
q :: Queue(4);
input -> q;
q -> Unqueue(BURST 32) -> dead :: Discard;
`, click.Copying)
	// Inject 12 frames; the queue holds 4 and tail-drops while the
	// Unqueue task is not scheduled (we step only FromDPDKDevice by
	// injecting before stepping — both tasks run per step, so overflow
	// needs a burst bigger than capacity).
	for i := 0; i < 12; i++ {
		h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	}
	h.step()
	q := h.element("q").(*elements.Queue)
	d := h.element("dead").(*elements.Discard)
	if q.Drops == 0 {
		t.Fatalf("no tail drops (delivered %d, highwater %d)", d.Count, q.HighWater)
	}
	if d.Count+q.Drops+uint64(q.Len()) != 12 {
		t.Fatalf("conservation: delivered %d + dropped %d + queued %d != 12",
			d.Count, q.Drops, q.Len())
	}
}

func TestPullPortMismatchRejected(t *testing.T) {
	d, err := testbed.NewDUT(testbed.Options{FreqGHz: 2.3})
	if err != nil {
		t.Fatal(err)
	}
	// Queue's pull output pushed into a plain push element: must fail.
	g, err := click.Parse(`
input :: FromDPDKDevice(PORT 0);
q :: Queue(8);
input -> q -> EtherMirror -> Discard;
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildRouters(g); err == nil {
		t.Fatal("pull output wired to push input was accepted")
	}
	// And the reverse: a push output into Unqueue's pull input.
	g2, err := click.Parse(`
input :: FromDPDKDevice(PORT 0);
input -> Unqueue -> Discard;
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildRouters(g2); err == nil {
		t.Fatal("push output wired to pull input was accepted")
	}
}
