package elements

import (
	"testing"
)

// fuzzRuleSets are the classifier rule lists the fuzzer (and the table
// test) compile; together they cover dash placement, duplicate rules,
// overlapping prefixes, and rules that subsume each other.
var fuzzRuleSets = [][]string{
	{"12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"},
	{"12/0800", "12/0806", "12/86dd"},
	{"0/02", "0/02", "-"},
	{"12/0800 23/06", "12/0800 23/11", "12/0800", "-"},
	{"-", "12/0800"},
	{"14/45"},
	{"12/0800 23/06", "12/0800", "12/0800 23/11", "-"},
}

// checkAgainstOracle compiles one rule set under the given frequency hint
// and requires the program to agree with the linear scan on one frame.
func checkAgainstOracle(t *testing.T, rules []string, freq []float64, frame []byte) {
	t.Helper()
	patterns, hasDash, dashPort, err := parseClassifierPatterns(rules)
	if err != nil {
		t.Fatalf("parse %q: %v", rules, err)
	}
	cp := compileClassProg(patterns, hasDash, dashPort, freq)
	got := cp.ExecBytes(frame)
	want := linearClassifyBytes(patterns, hasDash, dashPort, frame)
	if got != want {
		t.Fatalf("rules %q freq %v frame %x: compiled=%d linear=%d",
			rules, freq, frame, got, want)
	}
}

// fuzzFrames are representative frames: ARP request/reply, IPv4 TCP/UDP,
// runts, and empties.
func fuzzFrames() [][]byte {
	arp := make([]byte, 42)
	arp[12], arp[13] = 0x08, 0x06
	arp[20], arp[21] = 0x00, 0x01
	arpRep := append([]byte(nil), arp...)
	arpRep[21] = 0x02
	ip := make([]byte, 64)
	ip[12], ip[13] = 0x08, 0x00
	ip[14] = 0x45
	ip[23] = 0x06
	udp := append([]byte(nil), ip...)
	udp[23] = 0x11
	return [][]byte{arp, arpRep, ip, udp, {0x02}, {}, make([]byte, 13)}
}

func TestCompiledClassifierMatchesOracle(t *testing.T) {
	freqs := [][]float64{
		nil,
		{0, 0, 1e6, 5},
		{1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1},
	}
	for _, rules := range fuzzRuleSets {
		for _, freq := range freqs {
			for _, frame := range fuzzFrames() {
				checkAgainstOracle(t, rules, freq, frame)
			}
		}
	}
}

func TestHotOrderKeepsFirstMatchSemantics(t *testing.T) {
	// Rules 0 and 1 overlap (1 subsumes 0): a huge frequency on rule 1
	// must NOT let it jump rule 0.
	patterns, _, _, err := parseClassifierPatterns([]string{"12/0800 23/06", "12/0800", "12/0806"})
	if err != nil {
		t.Fatal(err)
	}
	disjoint := func(i, j int) bool { return patternsDisjoint(patterns[i], patterns[j]) }
	order := hotOrder([]int{0, 1, 2}, []float64{0, 1e9, 0}, disjoint)
	pos := make([]int, 3)
	for at, idx := range order {
		pos[idx] = at
	}
	if pos[1] < pos[0] {
		t.Fatalf("rule 1 (subsuming) hoisted above rule 0: order %v", order)
	}
	// Rule 2 is disjoint from both (different ethertype) and hot: it may
	// lead.
	order = hotOrder([]int{0, 1, 2}, []float64{0, 0, 1e9}, disjoint)
	if order[0] != 2 {
		t.Fatalf("disjoint hot rule not hoisted: order %v", order)
	}
}

func TestHotOrderDeterministicOnTies(t *testing.T) {
	patterns, _, _, err := parseClassifierPatterns([]string{"12/0800", "12/0806", "12/86dd"})
	if err != nil {
		t.Fatal(err)
	}
	disjoint := func(i, j int) bool { return patternsDisjoint(patterns[i], patterns[j]) }
	want := hotOrder([]int{0, 1, 2}, []float64{5, 5, 5}, disjoint)
	for r := 0; r < 10; r++ {
		got := hotOrder([]int{0, 1, 2}, []float64{5, 5, 5}, disjoint)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tie order unstable: %v vs %v", got, want)
			}
		}
	}
	// All-equal frequencies keep declaration order.
	for i, idx := range want {
		if i != idx {
			t.Fatalf("tied frequencies reordered rules: %v", want)
		}
	}
}

// FuzzClassProg cross-checks the compiled classifier against the
// linear-scan oracle on arbitrary frames and frequency hints — the rule
// sets are fixed (real configs), the inputs are not.
func FuzzClassProg(f *testing.F) {
	for i := range fuzzRuleSets {
		for _, frame := range fuzzFrames() {
			f.Add(uint8(i), 1.0, 0.0, 100.0, 7.5, frame)
		}
	}
	f.Add(uint8(0), -1.0, 1e300, 0.5, -0.0, []byte{0x08, 0x06})
	f.Fuzz(func(t *testing.T, sel uint8, f0, f1, f2, f3 float64, frame []byte) {
		rules := fuzzRuleSets[int(sel)%len(fuzzRuleSets)]
		checkAgainstOracle(t, rules, []float64{f0, f1, f2, f3}, frame)
		checkAgainstOracle(t, rules, nil, frame)
	})
}

func TestIPClassifierOrderSafety(t *testing.T) {
	// The CompiledIPClassifier disjointness rule: duplicate protocols and
	// catch-alls must never be crossed, distinct protocols may.
	protos := []int{6, 17, 6, -1} // tcp udp tcp -
	disjoint := func(i, j int) bool {
		return protos[i] != protos[j] && protos[i] != -1 && protos[j] != -1
	}
	order := hotOrder([]int{0, 1, 2, 3}, []float64{0, 0, 1e9, 1e9}, disjoint)
	pos := make([]int, 4)
	for at, idx := range order {
		pos[idx] = at
	}
	if pos[2] < pos[0] {
		t.Fatalf("duplicate tcp rule crossed its twin: %v", order)
	}
	if pos[3] != 3 {
		t.Fatalf("catch-all moved: %v", order)
	}
	// The hot udp rule is free to lead.
	order = hotOrder([]int{0, 1, 2, 3}, []float64{0, 1e9, 0, 0}, disjoint)
	if order[0] != 1 {
		t.Fatalf("hot disjoint udp rule not hoisted: %v", order)
	}
}
