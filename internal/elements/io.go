// Package elements is the element library: the building blocks the
// paper's five NF configurations (Appendix A) are composed from. Every
// element performs its real protocol work on real packet bytes and
// charges its memory traffic and computation to the simulated core.
package elements

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
)

func init() {
	click.Register("FromDPDKDevice", func() click.Element { return &FromDPDKDevice{} })
	click.Register("ToDPDKDevice", func() click.Element { return &ToDPDKDevice{} })
}

// FromDPDKDevice polls a DPDK port and pushes batches into the graph —
// the element where the three metadata models diverge (Figure 2).
type FromDPDKDevice struct {
	click.Base
	PortNo  int
	NQueues int
	Burst   int

	bc      *click.BuildCtx
	scratch []*pktbuf.Packet
	// rxBatch is reused across polls: a stack-local Batch would escape
	// through the Output interface call and heap-allocate every poll.
	rxBatch pktbuf.Batch
}

// Class implements click.Element.
func (e *FromDPDKDevice) Class() string { return "FromDPDKDevice" }

// NInputs implements click.Element.
func (e *FromDPDKDevice) NInputs() int { return 0 }

// NOutputs implements click.Element.
func (e *FromDPDKDevice) NOutputs() int { return 1 }

// Configure implements click.Element. Args: PORT n, N_QUEUES q, BURST b.
func (e *FromDPDKDevice) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.NQueues, e.Burst = 1, 32
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["PORT"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.PortNo = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.PortNo = n
	}
	if v, ok := kw["N_QUEUES"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.NQueues = n
	}
	if v, ok := kw["BURST"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Burst = n
	}
	if _, ok := bc.Ports[e.PortNo]; !ok {
		return fmt.Errorf("FromDPDKDevice: no DPDK port %d", e.PortNo)
	}
	e.bc = bc
	e.scratch = make([]*pktbuf.Packet, e.Burst)
	bc.AllocState(96, 3) // port struct, queue state + PORT/N_QUEUES/BURST params
	return nil
}

// Push implements click.Element (never called; source element).
func (e *FromDPDKDevice) Push(*click.ExecCtx, int, *pktbuf.Batch) {}

// RunTask implements click.Task: one receive burst through the configured
// metadata model, then one push down the graph.
func (e *FromDPDKDevice) RunTask(ec *click.ExecCtx) int {
	// Backpressure: while a downstream stage holds pressure on a lossless
	// pipeline, the PMD RX pauses instead of feeding packets into queues
	// that would drop them mid-graph. The NIC ring absorbs the pause (and
	// sheds at the RX boundary if it overflows, where drops are cheapest).
	if ec.Rt.Overload.Paused() {
		return 0
	}
	core := ec.Core
	port := e.bc.Ports[e.PortNo]
	// The RX loop reads its burst/port parameters unless they were
	// constant-embedded.
	e.Inst.LoadParam(ec, 0)
	e.Inst.LoadParam(ec, 2)

	// A pool-exhaustion error means some of the burst was dropped; the
	// port has already counted those under pool-exhausted, so the element
	// just processes the survivors.
	ec.Tel.Enter(telemetry.StageRx, e.Inst.Name)
	n, _ := port.RxBurst(core, ec.Now, e.scratch)
	ec.Tel.AddPackets(n)
	ec.Tel.Exit()
	if n == 0 {
		return 0
	}

	// The per-packet loop below is the framework-side metadata conversion
	// of §2.2 — the cost the three models disagree about — so it gets its
	// own stage distinct from the PMD poll above.
	ec.Tel.Enter(telemetry.StageConv, e.Inst.Name)
	b := &e.rxBatch
	b.Reset()
	for i := 0; i < n; i++ {
		p := e.scratch[i]
		switch e.bc.Model {
		case click.Copying:
			// Allocate the framework descriptor and copy the useful
			// fields out of the rte_mbuf — the double conversion of
			// §2.2 ("Copying").
			m := e.bc.PacketPool.Get(core)
			if m == nil {
				ec.Rt.KillPacket(ec, p, stats.DropPoolExhausted)
				continue
			}
			p.Meta = m
			m.CopyField(core, p.Mbuf, layout.FieldBufAddr)
			m.CopyField(core, p.Mbuf, layout.FieldDataOff)
			m.CopyField(core, p.Mbuf, layout.FieldDataLen)
			m.CopyField(core, p.Mbuf, layout.FieldPktLen)
			m.CopyField(core, p.Mbuf, layout.FieldTimestamp)
			// Packet::make clears the 48-B annotation area (a memset,
			// not per-field stores — charged as one ranged write).
			core.Store(m.Base+memsim.Addr(m.L.Offset(layout.FieldAnnoPaint)), 48)
			// Packet construction: vtable init, header-pointer setup,
			// headroom/tailroom bookkeeping, destructor registration —
			// the generality tax of the Copying model's per-packet
			// framework object.
			core.Compute(150)
		case click.Overlaying:
			// The descriptor *is* the mbuf (cast); nothing to copy.
		case click.XChange:
			// The driver already wrote the application descriptor.
		}
		// Set the MAC-header annotation, as FastClick's RX path does.
		if p.Meta.L.Has(layout.FieldMacHeader) {
			p.Meta.Set(core, layout.FieldMacHeader, uint64(p.DataAddr()))
		}
		core.Compute(18) // per-packet RX loop body
		b.Append(core, p)
	}
	ec.Tel.AddPackets(b.Count())
	ec.Tel.Exit()
	if b.Empty() {
		return 0
	}
	e.Inst.Output(ec, 0, b)
	return n
}

// ToDPDKDevice transmits batches on a DPDK port, converting framework
// metadata back to what the driver needs. A full TX ring exerts
// backpressure: rejected packets queue in a bounded pending buffer that
// the element's flush task retries independently of the RX path, and only
// pending-buffer overflow drops traffic (reason tx-ring-full).
type ToDPDKDevice struct {
	click.Base
	PortNo int
	Burst  int

	bc *click.BuildCtx

	// pending holds converted packets the TX ring has not accepted yet,
	// bounded at queueCap() entries.
	pending []*pktbuf.Packet

	// Sent counts packets accepted by the NIC.
	Sent uint64
	// DropsFull counts packets dropped because the pending buffer
	// overflowed while the ring stayed full.
	DropsFull uint64

	// raised tracks whether this element currently holds backpressure on
	// the core's overload controller (lossless pipelines only).
	raised bool
}

// Class implements click.Element.
func (e *ToDPDKDevice) Class() string { return "ToDPDKDevice" }

// NInputs implements click.Element.
func (e *ToDPDKDevice) NInputs() int { return 1 }

// NOutputs implements click.Element.
func (e *ToDPDKDevice) NOutputs() int { return 0 }

// Configure implements click.Element. Args: PORT n, BURST b.
func (e *ToDPDKDevice) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Burst = 32
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["PORT"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.PortNo = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.PortNo = n
	}
	if v, ok := kw["BURST"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Burst = n
	}
	if _, ok := bc.Ports[e.PortNo]; !ok {
		return fmt.Errorf("ToDPDKDevice: no DPDK port %d", e.PortNo)
	}
	e.bc = bc
	bc.AllocState(128, 2) // internal queue bookkeeping + PORT/BURST params
	return nil
}

// queueCap bounds the pending buffer: a few bursts of slack so transient
// ring fullness is absorbed, sustained overload still drops.
func (e *ToDPDKDevice) queueCap() int { return 4 * e.Burst }

// Push implements click.Element.
func (e *ToDPDKDevice) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 1)
	// TX-side metadata conversion (framework descriptor back into what
	// the driver consumes) is conversion-stage work, not engine work.
	ec.Tel.Enter(telemetry.StageConv, e.Inst.Name)
	ec.Tel.AddPackets(b.Count())
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if e.bc.Model == click.Copying {
			// Convert framework descriptor back into the mbuf and
			// recycle the descriptor (it is free the moment the mbuf
			// owns the truth again).
			p.Mbuf.CopyField(core, p.Meta, layout.FieldDataLen)
			p.Mbuf.CopyField(core, p.Meta, layout.FieldPktLen)
			e.bc.PacketPool.Put(core, p.Meta)
			p.Meta = nil
			// Packet destruction mirror of the construction tax.
			core.Compute(60)
		}
		core.Compute(14)
		e.pending = append(e.pending, p)
		return true
	})
	ec.Tel.Exit()
	e.flush(ec)
	// Tail-drop whatever the bounded pending buffer cannot hold (Click's
	// blocking=false behaviour once the internal queue is full too).
	if over := len(e.pending) - e.queueCap(); over > 0 {
		drop := e.pending[len(e.pending)-over:]
		e.pending = e.pending[:len(e.pending)-over]
		for _, p := range drop {
			e.DropsFull++
			ec.Rt.KillPacket(ec, p, stats.DropTxRingFull)
		}
	}
	e.updatePressure(ec)
}

// flush pushes pending packets at the ring in bursts until it rejects
// one, returning the number accepted.
func (e *ToDPDKDevice) flush(ec *click.ExecCtx) int {
	if len(e.pending) == 0 {
		return 0
	}
	core := ec.Core
	port := e.bc.Ports[e.PortNo]
	total := 0
	ec.Tel.Enter(telemetry.StageTx, e.Inst.Name)
	for len(e.pending) > 0 {
		n := len(e.pending)
		if n > e.Burst {
			n = e.Burst
		}
		sent := port.TxBurst(core, ec.Now, e.pending[:n])
		e.Sent += uint64(sent)
		total += sent
		copy(e.pending, e.pending[sent:])
		e.pending = e.pending[:len(e.pending)-sent]
		if sent < n {
			break // ring full; the flush task retries later
		}
	}
	ec.Tel.AddPackets(total)
	ec.Tel.Exit()
	return total
}

// RunTask implements click.Task: retry the pending buffer so a ring that
// was full (slow receiver, TX stall) drains without new RX traffic — the
// backpressure path must make progress on its own.
func (e *ToDPDKDevice) RunTask(ec *click.ExecCtx) int {
	n := e.flush(ec)
	e.updatePressure(ec)
	return n
}

// TxBacklog reports packets queued behind a full ring; the testbed drains
// it before declaring a run finished.
func (e *ToDPDKDevice) TxBacklog() int { return len(e.pending) }

// OccupancyFrac reports the pending buffer's fill fraction — one of the
// occupancy signals the overload control plane observes.
func (e *ToDPDKDevice) OccupancyFrac() float64 {
	return float64(len(e.pending)) / float64(e.queueCap())
}

// updatePressure raises or lowers backpressure at the controller's
// watermarks, with hysteresis: pressure raised at the high watermark is
// only released once occupancy falls to the low one.
func (e *ToDPDKDevice) updatePressure(ec *click.ExecCtx) {
	ctl := ec.Rt.Overload
	if !ctl.Lossless() {
		return
	}
	high, low := ctl.Watermarks()
	occ := e.OccupancyFrac()
	switch {
	case !e.raised && occ >= high:
		e.raised = true
		ctl.RaisePressure(ec.Now)
	case e.raised && occ <= low:
		e.raised = false
		ctl.LowerPressure(ec.Now)
	}
}

// DrainRestart flushes the pending buffer as part of the watchdog's
// drain-and-restart recovery, booking every flushed packet under
// overload-restart, and releases any held backpressure. Returns the
// number of packets flushed.
func (e *ToDPDKDevice) DrainRestart(ec *click.ExecCtx) int {
	n := len(e.pending)
	for _, p := range e.pending {
		ec.Rt.KillPacket(ec, p, stats.DropOverloadRestart)
	}
	e.pending = e.pending[:0]
	if e.raised {
		e.raised = false
		ec.Rt.Overload.LowerPressure(ec.Now)
	}
	return n
}
