// Transport-layer sanity checks — the IDS configuration of Appendix A.3:
// "checks the correctness of TCP, UDP, and ICMP headers, except for the
// checksum that can be verified in hardware."
package elements

import (
	"packetmill/internal/click"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("CheckTCPHeader", func() click.Element { return &CheckTCPHeader{} })
	click.Register("CheckUDPHeader", func() click.Element { return &CheckUDPHeader{} })
	click.Register("CheckICMPHeader", func() click.Element { return &CheckICMPHeader{} })
	click.Register("IPClassifier", func() click.Element { return &IPClassifier{} })
}

// ipHeaderAt parses the IP header at offset off, returning the L4 offset
// and protocol; ok=false when malformed.
func ipHeaderAt(ec *click.ExecCtx, p *pktbuf.Packet, off int) (l4 int, proto uint8, ipLen int, ok bool) {
	if p.Len() < off+netpkt.IPv4HdrLen {
		return 0, 0, 0, false
	}
	hdr := p.Load(ec.Core, off, netpkt.IPv4HdrLen)
	h, ihl, err := netpkt.ParseIPv4Header(hdr)
	if err != nil {
		return 0, 0, 0, false
	}
	return off + ihl, h.Protocol, int(h.TotalLen), true
}

// CheckTCPHeader verifies TCP header sanity: data offset, flag
// combinations, and that the segment fits the IP length.
type CheckTCPHeader struct {
	click.Base
	Offset int
	Bad    uint64

	good, bad pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *CheckTCPHeader) Class() string { return "CheckTCPHeader" }

// Configure implements click.Element.
func (e *CheckTCPHeader) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Offset = netpkt.EtherHdrLen
	if len(args) > 0 {
		n, err := click.ParseInt(args[0])
		if err != nil {
			return err
		}
		e.Offset = n
	}
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *CheckTCPHeader) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	good, bad := &e.good, &e.bad
	good.Reset()
	bad.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		l4, proto, ipLen, ok := ipHeaderAt(ec, p, e.Offset)
		if ok && proto == netpkt.ProtoTCP && p.Len() >= l4+netpkt.TCPHdrLen {
			seg := p.Load(core, l4, netpkt.TCPHdrLen)
			core.Compute(48)
			th, hdrLen, err := netpkt.ParseTCP(seg)
			segLen := ipLen - (l4 - e.Offset)
			valid := err == nil && segLen >= hdrLen &&
				// SYN+FIN and null flags are invalid combinations.
				th.Flags&(netpkt.TCPFlagSYN|netpkt.TCPFlagFIN) != (netpkt.TCPFlagSYN|netpkt.TCPFlagFIN) &&
				th.Flags != 0
			if valid {
				good.Append(core, p)
				return true
			}
		} else if ok && proto != netpkt.ProtoTCP {
			// Not TCP: pass through untouched (the IDS chain stacks
			// one checker per protocol).
			core.Compute(10)
			good.Append(core, p)
			return true
		}
		e.Bad++
		bad.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, bad)
	if !good.Empty() {
		e.Inst.Output(ec, 0, good)
	}
}

// CheckUDPHeader verifies the UDP length field.
type CheckUDPHeader struct {
	click.Base
	Offset int
	Bad    uint64

	good, bad pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *CheckUDPHeader) Class() string { return "CheckUDPHeader" }

// Configure implements click.Element.
func (e *CheckUDPHeader) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Offset = netpkt.EtherHdrLen
	if len(args) > 0 {
		n, err := click.ParseInt(args[0])
		if err != nil {
			return err
		}
		e.Offset = n
	}
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *CheckUDPHeader) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	good, bad := &e.good, &e.bad
	good.Reset()
	bad.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		l4, proto, ipLen, ok := ipHeaderAt(ec, p, e.Offset)
		if ok && proto == netpkt.ProtoUDP && p.Len() >= l4+netpkt.UDPHdrLen {
			seg := p.Load(core, l4, netpkt.UDPHdrLen)
			core.Compute(28)
			uh, err := netpkt.ParseUDP(seg)
			if err == nil && int(uh.Length) == ipLen-(l4-e.Offset) && uh.Length >= netpkt.UDPHdrLen {
				good.Append(core, p)
				return true
			}
		} else if ok && proto != netpkt.ProtoUDP {
			core.Compute(10)
			good.Append(core, p)
			return true
		}
		e.Bad++
		bad.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, bad)
	if !good.Empty() {
		e.Inst.Output(ec, 0, good)
	}
}

// CheckICMPHeader verifies ICMP type/code sanity.
type CheckICMPHeader struct {
	click.Base
	Offset int
	Bad    uint64

	good, bad pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *CheckICMPHeader) Class() string { return "CheckICMPHeader" }

// Configure implements click.Element.
func (e *CheckICMPHeader) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Offset = netpkt.EtherHdrLen
	if len(args) > 0 {
		n, err := click.ParseInt(args[0])
		if err != nil {
			return err
		}
		e.Offset = n
	}
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *CheckICMPHeader) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	good, bad := &e.good, &e.bad
	good.Reset()
	bad.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		l4, proto, _, ok := ipHeaderAt(ec, p, e.Offset)
		if ok && proto == netpkt.ProtoICMP && p.Len() >= l4+netpkt.ICMPHdrLen {
			seg := p.Load(core, l4, netpkt.ICMPHdrLen)
			core.Compute(22)
			h, err := netpkt.ParseICMP(seg)
			if err == nil && (h.Type <= 18) {
				good.Append(core, p)
				return true
			}
		} else if ok && proto != netpkt.ProtoICMP {
			core.Compute(10)
			good.Append(core, p)
			return true
		}
		e.Bad++
		bad.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, bad)
	if !good.Empty() {
		e.Inst.Output(ec, 0, good)
	}
}

// IPClassifier splits traffic by IP protocol: one arg per output, each
// "tcp", "udp", "icmp", or "-".
type IPClassifier struct {
	click.Base
	protos []int // -1 = catch-all

	outs []pktbuf.Batch // per-output scratch, reset each push
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *IPClassifier) Class() string { return "IPClassifier" }

// BatchAware implements click.BatchElement.
func (e *IPClassifier) BatchAware() bool { return false }

// Configure implements click.Element.
func (e *IPClassifier) Configure(args []string, bc *click.BuildCtx) error {
	for _, a := range args {
		switch a {
		case "tcp":
			e.protos = append(e.protos, netpkt.ProtoTCP)
		case "udp":
			e.protos = append(e.protos, netpkt.ProtoUDP)
		case "icmp":
			e.protos = append(e.protos, netpkt.ProtoICMP)
		case "-":
			e.protos = append(e.protos, -1)
		default:
			return errBadPattern(a)
		}
	}
	e.InitBase(bc)
	e.outs = make([]pktbuf.Batch, len(e.protos))
	bc.AllocState(uint64(32*len(e.protos)), 1)
	return nil
}

type errBadPattern string

func (e errBadPattern) Error() string { return "IPClassifier: bad pattern " + string(e) }

// NOutputs implements click.Element.
func (e *IPClassifier) NOutputs() int { return len(e.protos) }

// Push implements click.Element.
func (e *IPClassifier) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	e.Inst.TouchState(ec, 0, uint64(8*len(e.protos)))
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		proto := -2
		if p.Len() >= netpkt.EtherHdrLen+netpkt.IPv4HdrLen {
			hdr := p.Load(core, netpkt.EtherHdrLen+9, 1)
			proto = int(hdr[0])
		}
		core.Compute(10)
		for i, want := range e.protos {
			if want == proto || want == -1 {
				outs[i].Append(core, p)
				return true
			}
		}
		dead.Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}
