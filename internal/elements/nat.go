// IPRewriter: the stateful NAPT of Appendix A.3 — "rewrites source IP
// addresses of outgoing packets ... stateful and uses the DPDK Cuckoo
// hash table".
package elements

import (
	"encoding/binary"

	"packetmill/internal/click"
	"packetmill/internal/cuckoo"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("IPRewriter", func() click.Element { return &IPRewriter{} })
}

// IPRewriter performs source NAPT: every new flow gets an external port
// from the pool, and both the flow table entry and the reverse mapping
// are installed in a cuckoo hash table (two inserts, like rte_hash-based
// NATs — the "more lookups and higher memory usage" of A.3).
type IPRewriter struct {
	click.Base
	ExtIP     netpkt.IPv4
	TableSize int

	table    *cuckoo.Table
	nextPort uint16

	// Flows counts distinct flows seen; Rewritten counts packets.
	Flows     uint64
	Rewritten uint64

	out, dead pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *IPRewriter) Class() string { return "IPRewriter" }

// Configure implements click.Element. Args: EXTIP a.b.c.d [, CAPACITY n].
func (e *IPRewriter) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.TableSize = 65536
	kw, pos := click.KeywordArgs(args)
	ext := "192.168.100.1"
	if v, ok := kw["EXTIP"]; ok {
		ext = v
	} else if len(pos) > 0 {
		ext = pos[0]
	}
	var err error
	if e.ExtIP, err = netpkt.ParseIPv4(ext); err != nil {
		return err
	}
	if v, ok := kw["CAPACITY"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.TableSize = n
	}
	// The flow table lives in hugepages like rte_hash.
	e.table = cuckoo.New(e.TableSize, bc.Huge, bc.Seed^0x4e4154)
	e.nextPort = 1024
	bc.AllocState(64, 2)
	return nil
}

// Push implements click.Element.
func (e *IPRewriter) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	out, dead := &e.out, &e.dead
	out.Reset()
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		ipOff := netpkt.EtherHdrLen
		l4, proto, _, ok := ipHeaderAt(ec, p, ipOff)
		if !ok || (proto != netpkt.ProtoTCP && proto != netpkt.ProtoUDP) {
			// Non-L4 traffic passes through unmodified.
			core.Compute(10)
			out.Append(core, p)
			return true
		}
		if p.Len() < l4+4 {
			dead.Append(core, p)
			return true
		}
		hdr := p.Load(core, ipOff, netpkt.IPv4HdrLen)
		ports := p.Load(core, l4, 4)
		key := cuckoo.Key{
			SrcIP:   binary.BigEndian.Uint32(hdr[12:16]),
			DstIP:   binary.BigEndian.Uint32(hdr[16:20]),
			SrcPort: binary.BigEndian.Uint16(ports[0:2]),
			DstPort: binary.BigEndian.Uint16(ports[2:4]),
			Proto:   proto,
		}
		extPort64, found := e.table.Lookup(core, key)
		extPort := uint16(extPort64)
		if !found {
			// New flow: allocate a port and install both directions.
			extPort = e.nextPort
			e.nextPort++
			if e.nextPort < 1024 {
				e.nextPort = 1024
			}
			e.Inst.StoreState(ec, 0, 8) // port allocator state
			if err := e.table.Insert(core, key, uint64(extPort)); err != nil {
				dead.Append(core, p)
				return true
			}
			reverse := cuckoo.Key{
				SrcIP: key.DstIP, DstIP: e.ExtIP.Uint32(),
				SrcPort: key.DstPort, DstPort: extPort, Proto: proto,
			}
			if err := e.table.Insert(core, reverse, uint64(key.SrcIP)<<16|uint64(key.SrcPort)); err != nil {
				dead.Append(core, p)
				return true
			}
			e.Flows++
		}
		// Rewrite source IP and port, patching both checksums
		// incrementally (RFC 1624 twice: IP header + pseudo-header).
		oldIPHi := binary.BigEndian.Uint16(hdr[12:14])
		oldIPLo := binary.BigEndian.Uint16(hdr[14:16])
		wr := p.Store(core, ipOff+12, 4)
		copy(wr, e.ExtIP[:])
		ck := binary.BigEndian.Uint16(hdr[10:12])
		ck = netpkt.IncrementalChecksumUpdate16(ck, oldIPHi, binary.BigEndian.Uint16(e.ExtIP[0:2]))
		ck = netpkt.IncrementalChecksumUpdate16(ck, oldIPLo, binary.BigEndian.Uint16(e.ExtIP[2:4]))
		ckb := p.Store(core, ipOff+10, 2)
		binary.BigEndian.PutUint16(ckb, ck)
		pw := p.Store(core, l4, 2)
		binary.BigEndian.PutUint16(pw, extPort)
		core.Compute(60)
		e.Rewritten++
		out.Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	if !out.Empty() {
		e.Inst.Output(ec, 0, out)
	}
}

// Table exposes the flow table for tests.
func (e *IPRewriter) Table() *cuckoo.Table { return e.table }
