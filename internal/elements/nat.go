// IPRewriter: the stateful NAPT of Appendix A.3 — "rewrites source IP
// addresses of outgoing packets ... stateful and uses the DPDK Cuckoo
// hash table" — rebuilt on the conntrack state plane so the flow table
// ages, bounds, and recycles instead of leaking until full.
package elements

import (
	"encoding/binary"
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/conntrack"
	"packetmill/internal/cuckoo"
	"packetmill/internal/flowlog"
	"packetmill/internal/machine"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
)

func init() {
	click.Register("IPRewriter", func() click.Element { return &IPRewriter{} })
}

// natFirstPort..natLastPort is the external port range, allocated in
// ascending order like the old monotonic allocator, then recycled FIFO
// as flows expire or are evicted.
const (
	natFirstPort = 1024
	natLastPort  = 65535
	natPortCount = natLastPort - natFirstPort + 1
)

// portPool is a fixed ring of external ports: pop from the head for a
// new flow, recycle to the tail on reclaim. Deterministic order, zero
// allocation, survives churn indefinitely.
type portPool struct {
	ports []uint16
	head  int
	n     int
}

func newPortPool(n int) *portPool {
	if n <= 0 || n > natPortCount {
		n = natPortCount
	}
	p := &portPool{ports: make([]uint16, n), n: n}
	for i := range p.ports {
		p.ports[i] = uint16(natFirstPort + i)
	}
	return p
}

func (p *portPool) get() (uint16, bool) {
	if p.n == 0 {
		return 0, false
	}
	port := p.ports[p.head]
	p.head++
	if p.head == len(p.ports) {
		p.head = 0
	}
	p.n--
	return port, true
}

func (p *portPool) put(port uint16) {
	tail := p.head + p.n
	if tail >= len(p.ports) {
		tail -= len(p.ports)
	}
	p.ports[tail] = port
	p.n++
}

func (p *portPool) inUse() int { return len(p.ports) - p.n }

// IPRewriter performs source NAPT. Forward flows live in a conntrack
// shard (Entry.Value holds the external port) aged by the timer wheel;
// the reverse mapping (external 5-tuple → original src) lives in a
// plain cuckoo table kept in lockstep by the shard's reclaim hook, so
// expiry and eviction recycle the port and both mappings together.
type IPRewriter struct {
	click.Base
	ExtIP     netpkt.IPv4
	TableSize int

	shard   *conntrack.Shard
	reverse *cuckoo.Table
	pool    *portPool
	flog    *flowlog.Core

	// cur is the core driving the current Push/Advance, so the reclaim
	// hook can charge its cuckoo deletes to the right core.
	cur *machine.Core

	// Flows counts distinct flows seen; Rewritten counts packets.
	Flows     uint64
	Rewritten uint64
	// PortsRecycled counts external ports returned to the pool by
	// expiry, eviction, or explicit delete.
	PortsRecycled uint64

	// evictedSinceTrace edge-detects pressure waves for the flight
	// recorder: one EvFlow event per burst, not per eviction.
	lastEvictions uint64

	out, dead, deadFull, deadNoPort pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *IPRewriter) Class() string { return "IPRewriter" }

// Configure implements click.Element.
// Args: EXTIP a.b.c.d [, CAPACITY n] [, PORTS n] [, ESTABLISHED_MS n]
// [, EMBRYONIC_MS n] [, CLOSING_MS n] [, UDP_MS n] [, PROTECT bool].
// PORTS bounds the external-port pool (default the full 1024..65535
// range) — small pools model carrier-grade NAT port budgets and the
// port-exhaustion scenario.
func (e *IPRewriter) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.TableSize = 65536
	kw, pos := click.KeywordArgs(args)
	ext := "192.168.100.1"
	if v, ok := kw["EXTIP"]; ok {
		ext = v
	} else if len(pos) > 0 {
		ext = pos[0]
	}
	var err error
	if e.ExtIP, err = netpkt.ParseIPv4(ext); err != nil {
		return err
	}
	if v, ok := kw["CAPACITY"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.TableSize = n
	}
	cfg := conntrack.Config{Capacity: e.TableSize}
	if err := parseTimeoutArgs(kw, &cfg); err != nil {
		return err
	}
	if v, ok := kw["PROTECT"]; ok {
		cfg.ProtectEstablished = v == "true" || v == "1"
	}
	ports := 0
	if v, ok := kw["PORTS"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		ports = n
	}
	// Flow table and reverse mappings live in hugepages like rte_hash.
	e.shard = conntrack.NewShard(cfg, bc.Huge, bc.Seed^0x4e4154)
	e.shard.OnReclaim = e.onReclaim
	e.reverse = cuckoo.New(e.TableSize, bc.Huge, bc.Seed^0x76657254)
	e.pool = newPortPool(ports)
	bc.AllocState(64, 2)
	return nil
}

// parseTimeoutArgs fills conntrack timeout knobs shared by IPRewriter
// and ConnTracker. Values are milliseconds of simulated time.
func parseTimeoutArgs(kw map[string]string, cfg *conntrack.Config) error {
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"ESTABLISHED_MS", &cfg.Timeouts.Established},
		{"EMBRYONIC_MS", &cfg.Timeouts.Embryonic},
		{"CLOSING_MS", &cfg.Timeouts.Closing},
		{"UDP_MS", &cfg.Timeouts.Untracked},
	} {
		if v, ok := kw[f.key]; ok {
			n, err := click.ParseInt(v)
			if err != nil {
				return fmt.Errorf("%s: %w", f.key, err)
			}
			*f.dst = float64(n) * 1e6
		}
	}
	return nil
}

// onReclaim is the shard's reclaim hook: when a flow leaves for any
// reason but migration, return its external port to the pool and drop
// the reverse mapping, keeping both tables in lockstep.
func (e *IPRewriter) onReclaim(ent *conntrack.Entry, cause conntrack.Cause) {
	if cause == conntrack.CauseMigrated {
		return
	}
	e.flog.FlowEndNAT(ent, cause, e.ExtIP.Uint32())
	port := uint16(ent.Value)
	e.reverse.Delete(e.cur, cuckoo.Key{
		SrcIP: ent.Key.DstIP, DstIP: e.ExtIP.Uint32(),
		SrcPort: ent.Key.DstPort, DstPort: port, Proto: ent.Key.Proto,
	})
	e.pool.put(port)
	e.PortsRecycled++
}

// Push implements click.Element.
func (e *IPRewriter) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.cur = core
	e.shard.Advance(core, ec.Now)
	out, dead, deadFull, deadNoPort := &e.out, &e.dead, &e.deadFull, &e.deadNoPort
	out.Reset()
	dead.Reset()
	deadFull.Reset()
	deadNoPort.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		ipOff := netpkt.EtherHdrLen
		l4, proto, _, ok := ipHeaderAt(ec, p, ipOff)
		if !ok || (proto != netpkt.ProtoTCP && proto != netpkt.ProtoUDP) {
			// Non-L4 traffic passes through unmodified.
			core.Compute(10)
			e.flog.Untracked(uint64(p.Len()))
			out.Append(core, p)
			return true
		}
		if p.Len() < l4+4 {
			e.flog.Refused(stats.DropEngine, uint64(p.Len()), ec.Now)
			dead.Append(core, p)
			return true
		}
		hdr := p.Load(core, ipOff, netpkt.IPv4HdrLen)
		ports := p.Load(core, l4, 4)
		key := cuckoo.Key{
			SrcIP:   binary.BigEndian.Uint32(hdr[12:16]),
			DstIP:   binary.BigEndian.Uint32(hdr[16:20]),
			SrcPort: binary.BigEndian.Uint16(ports[0:2]),
			DstPort: binary.BigEndian.Uint16(ports[2:4]),
			Proto:   proto,
		}
		var tcpFlags uint8
		if proto == netpkt.ProtoTCP && p.Len() >= l4+14 {
			tcpFlags = p.Load(core, l4+13, 1)[0]
		}
		ent, hit := e.shard.Update(core, key, proto, tcpFlags, ec.Now)
		if !hit {
			// New flow: allocate a port, then admit. Admission failure
			// hands the port straight back.
			extPort, ok := e.pool.get()
			if !ok {
				e.flog.Refused(stats.DropFlowTableNoPort, uint64(p.Len()), ec.Now)
				deadNoPort.Append(core, p)
				return true
			}
			e.Inst.StoreState(ec, 0, 8) // port allocator state
			var v conntrack.Verdict
			ent, v = e.shard.Admit(core, key, proto, tcpFlags, ec.Now, uint64(extPort))
			if v != conntrack.VerdictNew {
				e.pool.put(extPort)
				e.flog.Refused(stats.DropFlowTableFull, uint64(p.Len()), ec.Now)
				deadFull.Append(core, p)
				return true
			}
			reverse := cuckoo.Key{
				SrcIP: key.DstIP, DstIP: e.ExtIP.Uint32(),
				SrcPort: key.DstPort, DstPort: extPort, Proto: proto,
			}
			if err := e.reverse.Insert(core, reverse, uint64(key.SrcIP)<<16|uint64(key.SrcPort)); err != nil {
				// Reverse index refused: undo the admission (the
				// reclaim hook recycles the port) and refuse the flow.
				e.shard.Delete(core, key)
				e.flog.Refused(stats.DropFlowTableFull, uint64(p.Len()), ec.Now)
				deadFull.Append(core, p)
				return true
			}
			e.Flows++
		}
		ent.Bytes += uint64(p.Len())
		extPort := uint16(ent.Value)
		// Rewrite source IP and port, patching both checksums
		// incrementally (RFC 1624 twice: IP header + pseudo-header).
		oldIPHi := binary.BigEndian.Uint16(hdr[12:14])
		oldIPLo := binary.BigEndian.Uint16(hdr[14:16])
		wr := p.Store(core, ipOff+12, 4)
		copy(wr, e.ExtIP[:])
		ck := binary.BigEndian.Uint16(hdr[10:12])
		ck = netpkt.IncrementalChecksumUpdate16(ck, oldIPHi, binary.BigEndian.Uint16(e.ExtIP[0:2]))
		ck = netpkt.IncrementalChecksumUpdate16(ck, oldIPLo, binary.BigEndian.Uint16(e.ExtIP[2:4]))
		ckb := p.Store(core, ipOff+10, 2)
		binary.BigEndian.PutUint16(ckb, ck)
		pw := p.Store(core, l4, 2)
		binary.BigEndian.PutUint16(pw, extPort)
		core.Compute(60)
		e.Rewritten++
		out.Append(core, p)
		return true
	})
	if !deadNoPort.Empty() {
		ec.Tel.Trace().Flow("nat-port-pool-dry")
	}
	if st := e.shard.StatsSnapshot(); st.EvictionsTotal() > e.lastEvictions {
		e.lastEvictions = st.EvictionsTotal()
		ec.Tel.Trace().Flow("nat-flow-evicted")
	}
	ec.Rt.Kill(ec, dead)
	ec.Rt.KillReason(ec, deadNoPort, stats.DropFlowTableNoPort)
	ec.Rt.KillReason(ec, deadFull, stats.DropFlowTableFull)
	e.cur = nil
	if !out.Empty() {
		e.Inst.Output(ec, 0, out)
	}
}

// BindFlowLog implements flowlog.Hookable: flow endings carry their NAT
// translation into core fc's flow log, refusals (port-pool dry, table
// full) are booked by reason, and the log joins live translations at
// export time. The shard's keys are as-seen 5-tuples (not canonical),
// and departing frames carry the rewritten source, so the depart-hook
// latency sampler registers the table but rarely hits — misses are
// counted, not chased.
func (e *IPRewriter) BindFlowLog(fc *flowlog.Core) {
	e.flog = fc
	fc.BindShard(e.shard, false, e.ExtIP.Uint32())
}

// Shard exposes the flow table for tests and migration wiring.
func (e *IPRewriter) Shard() *conntrack.Shard { return e.shard }

// FlowTableEntries reports current flow-table occupancy — the gauge the
// leak satellite watches.
func (e *IPRewriter) FlowTableEntries() int { return e.shard.Len() }

// FlowReport implements the telemetry flow-table reporting seam; the
// collector fills Core and Element.
func (e *IPRewriter) FlowReport() telemetry.ConntrackReport {
	r := conntrackReportFromShard(e.shard)
	r.PortsInUse = uint64(e.pool.inUse())
	r.PortsRecycled = e.PortsRecycled
	return r
}

// conntrackReportFromShard maps a shard's ledger onto the report shape
// shared by IPRewriter and ConnTracker.
func conntrackReportFromShard(s *conntrack.Shard) telemetry.ConntrackReport {
	st := s.StatsSnapshot()
	r := telemetry.ConntrackReport{
		FlowTableEntries: uint64(s.Len()),
		Capacity:         uint64(s.Capacity()),
		Insertions:       st.Insertions,
		Lookups:          st.Lookups,
		Hits:             st.Hits,
		Expirations:      st.Expirations,
		RefusedFull:      st.RefusedFull,
		RefusedInvalid:   st.RefusedInvalid,
		MigratedIn:       st.MigratedIn,
		MigratedOut:      st.MigratedOut,
		WheelLagUS:       st.MaxWheelLagNS / 1e3,
	}
	if st.EvictionsTotal() > 0 {
		r.Evictions = make(map[string]uint64, conntrack.NumClasses)
		for c := conntrack.ClassEmbryonic; c < conntrack.NumClasses; c++ {
			if n := st.Evictions[c]; n > 0 {
				r.Evictions[c.String()] = n
			}
		}
	}
	return r
}
