package elements_test

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/elements"
	"packetmill/internal/netpkt"
)

func TestSwitchSteersAndDrops(t *testing.T) {
	h := newHarness(t, ioWrap+`
sw :: Switch(1, 2);
a :: Counter;
b :: Counter;
input -> sw;
sw[0] -> a -> Discard;
sw[1] -> b -> output;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if got := h.element("a").(*elements.Counter).Packets; got != 0 {
		t.Fatalf("port 0 got %d", got)
	}
	if got := h.element("b").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("port 1 got %d", got)
	}
	// Switch(-1) drops.
	h2 := newHarness(t, ioWrap+`input -> Switch(-1) -> output;`, click.Copying)
	h2.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h2.step()
	if len(h2.captured) != 0 || h2.rt.Drops != 1 {
		t.Fatalf("Switch(-1): captured %d drops %d", len(h2.captured), h2.rt.Drops)
	}
}

func TestRoundRobinSwitchAlternates(t *testing.T) {
	h := newHarness(t, ioWrap+`
rr :: RoundRobinSwitch(2);
a :: Counter;
b :: Counter;
input -> rr;
rr[0] -> a -> output;
rr[1] -> b -> output;
`, click.Copying)
	// Inject one frame per step so each arrives in its own batch.
	for i := 0; i < 4; i++ {
		h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, byte(i)}, netpkt.IPv4{10, 1, 0, 1}))
		h.step()
	}
	ca := h.element("a").(*elements.Counter).Packets
	cb := h.element("b").(*elements.Counter).Packets
	if ca != 2 || cb != 2 {
		t.Fatalf("round robin split %d/%d, want 2/2", ca, cb)
	}
}

func TestPaintSwitchRoutesByColor(t *testing.T) {
	h := newHarness(t, ioWrap+`
ps :: PaintSwitch(2);
red :: Counter;
blue :: Counter;
input -> Paint(1) -> ps;
ps[0] -> red -> Discard;
ps[1] -> blue -> output;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if got := h.element("blue").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("blue got %d", got)
	}
	if got := h.element("red").(*elements.Counter).Packets; got != 0 {
		t.Fatalf("red got %d", got)
	}
}

func TestPadExtendsShortFrames(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> Truncate(50) -> Pad(60) -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatal("frame lost")
	}
	if got := len(h.captured[0]); got != 60 {
		t.Fatalf("frame length %d, want padded 60", got)
	}
	// The padded tail must be zeros.
	for i := 50; i < 60; i++ {
		if h.captured[0][i] != 0 {
			t.Fatalf("pad byte %d = %#x", i, h.captured[0][i])
		}
	}
}

func TestTruncateChopsLongFrames(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> Truncate(80) -> output;`, click.Copying)
	h.inject(udpFrame(200, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.inject(udpFrame(64, netpkt.IPv4{10, 0, 0, 2}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 2 {
		t.Fatalf("captured %d", len(h.captured))
	}
	if len(h.captured[0]) != 80 || len(h.captured[1]) != 64 {
		t.Fatalf("lengths %d/%d, want 80/64", len(h.captured[0]), len(h.captured[1]))
	}
}

func TestSwitchBadConfigs(t *testing.T) {
	for _, cfg := range []string{
		ioWrap + `input -> Switch() -> output;`,
		ioWrap + `input -> RoundRobinSwitch(0) -> output;`,
		ioWrap + `input -> PaintSwitch(-1) -> output;`,
		ioWrap + `input -> Truncate() -> output;`,
		// Switch port beyond declared output count.
		ioWrap + `sw :: Switch(5, 2); input -> sw; sw[0] -> output;`,
	} {
		if !buildFails(t, cfg) {
			t.Errorf("accepted: %s", cfg)
		}
	}
}
