// Utility elements: Counter, AverageCounter, Discard, Paint, and the
// WorkPackage microbenchmark element of Appendix A.4.
package elements

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/simrand"
)

func init() {
	click.Register("Counter", func() click.Element { return &Counter{} })
	click.Register("AverageCounter", func() click.Element { return &AverageCounter{} })
	click.Register("Discard", func() click.Element { return &Discard{} })
	click.Register("Paint", func() click.Element { return &Paint{} })
	click.Register("WorkPackage", func() click.Element { return &WorkPackage{} })
}

// Counter counts packets and bytes.
type Counter struct {
	click.Base
	Packets, Bytes uint64
}

// Class implements click.Element.
func (e *Counter) Class() string { return "Counter" }

// Configure implements click.Element.
func (e *Counter) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(16, 0)
	return nil
}

// Push implements click.Element.
func (e *Counter) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.TouchState(ec, 0, 16)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		e.Packets++
		e.Bytes += uint64(p.Len())
		core.Compute(8)
		return true
	})
	e.Inst.StoreState(ec, 0, 16)
	e.Inst.Output(ec, 0, b)
}

// AverageCounter reports packet/byte rates over the run window.
type AverageCounter struct {
	click.Base
	Packets, Bytes  uint64
	FirstNS, LastNS float64
}

// Class implements click.Element.
func (e *AverageCounter) Class() string { return "AverageCounter" }

// Configure implements click.Element.
func (e *AverageCounter) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(32, 0)
	return nil
}

// Push implements click.Element.
func (e *AverageCounter) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.TouchState(ec, 0, 32)
	if e.FirstNS == 0 {
		e.FirstNS = ec.Now
	}
	e.LastNS = ec.Now
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		e.Packets++
		e.Bytes += uint64(p.Len())
		core.Compute(8)
		return true
	})
	e.Inst.StoreState(ec, 0, 32)
	e.Inst.Output(ec, 0, b)
}

// RateGbps returns the measured goodput across the window.
func (e *AverageCounter) RateGbps() float64 {
	if e.LastNS <= e.FirstNS {
		return 0
	}
	return float64(e.Bytes) * 8 / (e.LastNS - e.FirstNS)
}

// Discard kills everything it receives (recycling buffers).
type Discard struct {
	click.Base
	Count uint64
}

// Class implements click.Element.
func (e *Discard) Class() string { return "Discard" }

// NOutputs implements click.Element.
func (e *Discard) NOutputs() int { return 0 }

// Configure implements click.Element.
func (e *Discard) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(0, 0)
	return nil
}

// Push implements click.Element.
func (e *Discard) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	e.Count += uint64(b.Count())
	ec.Rt.Kill(ec, b)
}

// Paint writes the paint annotation.
type Paint struct {
	click.Base
	Color uint8
}

// Class implements click.Element.
func (e *Paint) Class() string { return "Paint" }

// Configure implements click.Element.
func (e *Paint) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("Paint: want one color argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	e.Color = uint8(n)
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *Paint) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Meta.L.Has(layout.FieldAnnoPaint) {
			p.Meta.Set(core, layout.FieldAnnoPaint, uint64(e.Color))
		}
		core.Compute(6)
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// WorkPackage emulates memory- and compute-intensive NFs (Appendix A.4):
// per packet it performs N random reads into a static array of S MB and
// generates W pseudo-random numbers.
type WorkPackage struct {
	click.Base
	S int // MB of accessed memory
	N int // random accesses per packet
	W int // pseudo-random numbers per packet
	// PerPacketInstrPerRand approximates one PRNG step's work.
	arrayBase memsim.Addr
	arrayLen  uint64
	rng       *simrand.Rand
}

// randInstr is the instruction cost of generating one pseudo-random number
// (a glibc rand() call and the consuming arithmetic).
const randInstr = 12

// Class implements click.Element.
func (e *WorkPackage) Class() string { return "WorkPackage" }

// Configure implements click.Element. Args: S mb, N accesses, W randoms
// (keyword or positional).
func (e *WorkPackage) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	kw, pos := click.KeywordArgs(args)
	get := func(name string, idx, def int) (int, error) {
		if v, ok := kw[name]; ok {
			return click.ParseInt(v)
		}
		if idx < len(pos) {
			return click.ParseInt(pos[idx])
		}
		return def, nil
	}
	var err error
	if e.S, err = get("S", 0, 1); err != nil {
		return err
	}
	if e.N, err = get("N", 1, 1); err != nil {
		return err
	}
	if e.W, err = get("W", 2, 1); err != nil {
		return err
	}
	if e.S < 0 || e.N < 0 || e.W < 0 {
		return fmt.Errorf("WorkPackage: negative parameter")
	}
	if e.S > 0 {
		e.arrayLen = uint64(e.S) << 20
		e.arrayBase = bc.AllocAux(e.arrayLen)
		// The array is long-lived state a steady-state run would have
		// warmed; install what fits.
		if bc.Prewarm != nil {
			bc.Prewarm(e.arrayBase, e.arrayLen)
		}
	}
	e.rng = simrand.New(bc.Seed ^ 0x774b50)
	bc.AllocState(64, 3)
	return nil
}

// Push implements click.Element.
func (e *WorkPackage) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		// W pseudo-random numbers (CPU intensiveness).
		if e.W > 0 {
			core.Compute(float64(e.W) * randInstr)
		}
		// N random reads into the S-MB array (memory intensiveness).
		if e.arrayLen > 0 {
			for i := 0; i < e.N; i++ {
				off := e.rng.Uint64n(e.arrayLen) &^ 7
				core.Load(e.arrayBase+memsim.Addr(off), 8)
			}
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}
