// Fused elements: single-traversal replacements for hot element chains,
// installed by the mill's profile-guided fusion pass. Each fused element
// is the moral equivalent of the code a source-to-source specializer
// would emit for the whole chain — the packet's header is loaded once and
// every constituent's decision runs against that one copy — while drop
// semantics stay byte-for-byte identical to the original chain
// (CheckedOutput on an unwired port kills, exactly like the originals).
//
// Per-element attribution survives fusion: the fused Push opens a split
// telemetry span (Tracker.EnterShares) whose cost is distributed across
// the original instance names pro-rata by the profile shares the mill
// embedded at fusion time, so reports keep showing CheckIPHeader,
// LookupIPRoute, ... as if the chain were never collapsed.
package elements

import (
	"fmt"
	"strconv"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/lpm"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/telemetry"
)

func init() {
	click.Register("FusedIPPath", func() click.Element { return &FusedIPPath{} })
	click.Register("FusedL4Check", func() click.Element { return &FusedL4Check{} })
}

// FusedChain is one fusable chain pattern: a sequence of element classes
// plus a builder that emits the fused declaration for a concrete match.
type FusedChain struct {
	// Classes is the chain's class sequence, in connection order.
	Classes []string
	// Build returns the fused declaration replacing the matched chain
	// (decls are the concrete elements, len(decls) == len(Classes)), or
	// nil when the concrete arguments don't qualify — e.g. the
	// constituents disagree on header offsets.
	Build func(name string, decls []*click.ElementDecl) *click.ElementDecl
}

// FusableChains lists the registered patterns, longest first, so the
// fusion pass greedily collapses the biggest chain it can prove safe.
func FusableChains() []FusedChain {
	return []FusedChain{
		{Classes: []string{"Strip", "CheckIPHeader", "LookupIPRoute", "DecIPTTL"}, Build: buildFusedIPPath},
		{Classes: []string{"CheckIPHeader", "LookupIPRoute", "DecIPTTL"}, Build: buildFusedIPPath},
		{Classes: []string{"Strip", "CheckIPHeader", "LookupIPRoute"}, Build: buildFusedIPPath},
		{Classes: []string{"CheckIPHeader", "LookupIPRoute"}, Build: buildFusedIPPath},
		{Classes: []string{"CheckTCPHeader", "CheckUDPHeader", "CheckICMPHeader"}, Build: buildFusedL4Check},
	}
}

// declArgOffset extracts the single positional/OFFSET argument the IP and
// L4 check elements use (default def when absent).
func declArgOffset(d *click.ElementDecl, def int) (int, bool) {
	kw, pos := click.KeywordArgs(d.Args)
	s := ""
	if v, ok := kw["OFFSET"]; ok {
		s = v
	} else if len(pos) > 0 {
		s = pos[0]
	} else {
		return def, true
	}
	n, err := click.ParseInt(s)
	if err != nil {
		return 0, false
	}
	return n, true
}

// buildFusedIPPath emits a FusedIPPath declaration for a matched
// [Strip,] CheckIPHeader, LookupIPRoute [, DecIPTTL] chain.
func buildFusedIPPath(name string, decls []*click.ElementDecl) *click.ElementDecl {
	var args []string
	i := 0
	if decls[i].Class == "Strip" {
		if len(decls[i].Args) != 1 {
			return nil
		}
		n, err := click.ParseInt(decls[i].Args[0])
		if err != nil {
			return nil
		}
		args = append(args, fmt.Sprintf("STRIP %d", n))
		i++
	}
	off, ok := declArgOffset(decls[i], 0)
	if !ok {
		return nil
	}
	args = append(args, fmt.Sprintf("OFFSET %d", off))
	i++ // CheckIPHeader

	rt := decls[i]
	if len(rt.Args) == 0 {
		return nil
	}
	for _, a := range rt.Args {
		if _, _, _, err := parseRouteArg(a); err != nil {
			return nil
		}
		args = append(args, "ROUTE "+a)
	}
	i++ // LookupIPRoute

	if i < len(decls) && decls[i].Class == "DecIPTTL" {
		// DecIPTTL must look at the same header CheckIPHeader validated,
		// or the fused single-load walk would change semantics.
		toff := 0
		if len(decls[i].Args) > 0 {
			n, err := click.ParseInt(decls[i].Args[0])
			if err != nil {
				return nil
			}
			toff = n
		}
		if toff != off {
			return nil
		}
		args = append(args, "TTL 1")
	}
	return &click.ElementDecl{Name: name, Class: "FusedIPPath", Args: args}
}

// buildFusedL4Check emits a FusedL4Check declaration for a matched
// CheckTCPHeader, CheckUDPHeader, CheckICMPHeader chain.
func buildFusedL4Check(name string, decls []*click.ElementDecl) *click.ElementDecl {
	off, ok := declArgOffset(decls[0], netpkt.EtherHdrLen)
	if !ok {
		return nil
	}
	for _, d := range decls[1:] {
		o, ok := declArgOffset(d, netpkt.EtherHdrLen)
		if !ok || o != off {
			return nil
		}
	}
	return &click.ElementDecl{
		Name: name, Class: "FusedL4Check",
		Args: []string{fmt.Sprintf("OFFSET %d", off)},
	}
}

// parseShares parses a "SHARES name:weight ..." argument into telemetry
// span parts.
func parseShares(fields []string) ([]telemetry.SharePart, error) {
	var parts []telemetry.SharePart
	for _, f := range fields {
		i := strings.LastIndexByte(f, ':')
		if i <= 0 {
			return nil, fmt.Errorf("bad share %q", f)
		}
		w, err := strconv.ParseFloat(f[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad share %q: %v", f, err)
		}
		parts = append(parts, telemetry.SharePart{Name: f[:i], Share: w})
	}
	return parts, nil
}

// FusedIPPath is the milled router spine: [Strip →] CheckIPHeader →
// LookupIPRoute [→ DecIPTTL] collapsed into one element that loads the
// IPv4 header once and runs validation, route lookup, and TTL decrement
// against that single copy. Outputs mirror LookupIPRoute's port space
// (with the TTL stage applied on port 0, where the original chain hung
// DecIPTTL); bad, expired, and routeless packets die exactly like the
// original chain's unwired bad ports.
type FusedIPPath struct {
	click.Base
	HasStrip bool
	StripN   int
	Offset   int
	HasTTL   bool

	table  *lpm.Table
	nports int

	// Bad / Expired / NoRoute mirror the constituents' reject counters.
	Bad     uint64
	Expired uint64
	NoRoute uint64

	parts []telemetry.SharePart

	outs []pktbuf.Batch // per-output scratch, reset each push
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *FusedIPPath) Class() string { return "FusedIPPath" }

// Configure implements click.Element. Args: [STRIP n,] OFFSET n,
// ROUTE prefix/len [gw] port, ..., [TTL 1,] [SHARES name:w ...].
func (e *FusedIPPath) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.table = lpm.New(bc.Huge)
	routes := 0
	for _, a := range args {
		fields := strings.Fields(a)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "STRIP":
			n, err := click.ParseInt(fields[1])
			if err != nil {
				return err
			}
			e.HasStrip, e.StripN = true, n
		case "OFFSET":
			n, err := click.ParseInt(fields[1])
			if err != nil {
				return err
			}
			e.Offset = n
		case "TTL":
			e.HasTTL = true
		case "ROUTE":
			prefix, length, nh, err := parseRouteArg(strings.Join(fields[1:], " "))
			if err != nil {
				return err
			}
			if err := e.table.AddRoute(prefix.Uint32(), length, nh); err != nil {
				return err
			}
			if nh.Port+1 > e.nports {
				e.nports = nh.Port + 1
			}
			routes++
		case "SHARES":
			parts, err := parseShares(fields[1:])
			if err != nil {
				return fmt.Errorf("FusedIPPath: %w", err)
			}
			e.parts = parts
		default:
			return fmt.Errorf("FusedIPPath: bad argument %q", a)
		}
	}
	if routes == 0 {
		return fmt.Errorf("FusedIPPath: no routes")
	}
	// One state block for the whole fused unit — the chain's separate
	// element states collapse into one placement.
	bc.AllocState(96, 2)
	e.outs = make([]pktbuf.Batch, e.nports)
	return nil
}

// NOutputs implements click.Element.
func (e *FusedIPPath) NOutputs() int { return e.nports }

// Push implements click.Element.
func (e *FusedIPPath) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	if e.parts != nil {
		ec.Tel.EnterShares(telemetry.StageEngine, e.Inst.Name, e.parts)
		ec.Tel.AddPackets(b.Count())
	}
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	e.Inst.LoadParam(ec, 0)
	e.Inst.TouchState(ec, 0, 32)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if e.HasStrip {
			if p.Len() >= e.StripN {
				p.Pull(e.StripN)
			}
			core.Compute(6)
		}
		// CheckIPHeader: the chain's only header load.
		if p.Len() < e.Offset+netpkt.IPv4HdrLen {
			e.Bad++
			dead.Append(core, p)
			return true
		}
		hdr := p.Load(core, e.Offset, netpkt.IPv4HdrLen)
		core.Compute(64)
		h, _, err := netpkt.ParseIPv4Header(hdr)
		if err != nil || !netpkt.VerifyIPv4Checksum(hdr) ||
			int(h.TotalLen) > p.Len()-e.Offset || int(h.TotalLen) < netpkt.IPv4HdrLen {
			e.Bad++
			dead.Append(core, p)
			return true
		}
		if p.Meta.L.Has(layout.FieldNetworkHeader) {
			p.Meta.Set(core, layout.FieldNetworkHeader, uint64(p.DataAddr())+uint64(e.Offset))
		}
		if p.Meta.L.Has(layout.FieldAnnoDstIP) {
			p.Meta.Set(core, layout.FieldAnnoDstIP, uint64(h.Dst.Uint32()))
		}
		// LookupIPRoute: the destination is already in hand — fusion
		// elides the annotation round-trip the split chain pays.
		var dst uint32
		if p.Meta.L.Has(layout.FieldAnnoDstIP) {
			dst = h.Dst.Uint32()
		} else if p.Len() >= 20 {
			// Mirror the unfused fallback exactly (absolute offset 16).
			raw := p.Load(core, 16, 4)
			dst = uint32(raw[0])<<24 | uint32(raw[1])<<16 | uint32(raw[2])<<8 | uint32(raw[3])
		}
		core.Compute(18)
		nh, ok := e.table.Lookup(core, dst)
		if !ok || nh.Port >= e.nports {
			e.NoRoute++
			dead.Append(core, p)
			return true
		}
		if nh.Gateway != 0 && p.Meta.L.Has(layout.FieldAnnoDstIP) {
			p.Meta.Set(core, layout.FieldAnnoDstIP, uint64(nh.Gateway))
		}
		// DecIPTTL on the continuation port, against the same header
		// bytes CheckIPHeader validated.
		if e.HasTTL && nh.Port == 0 {
			core.Compute(22)
			if !netpkt.DecrementTTL(hdr) {
				e.Expired++
				dead.Append(core, p)
				return true
			}
			p.Store(core, e.Offset+8, 4) // dirty TTL+checksum bytes
		}
		outs[nh.Port].Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
	if e.parts != nil {
		ec.Tel.Exit()
	}
}

// FusedL4Check is the IDS prelude — CheckTCPHeader → CheckUDPHeader →
// CheckICMPHeader — collapsed into one element that parses the IP header
// once and dispatches on the protocol instead of filtering three times.
// A packet of any other protocol passes through, exactly like the chain.
type FusedL4Check struct {
	click.Base
	Offset int

	// BadTCP / BadUDP / BadICMP mirror the constituents' counters.
	BadTCP  uint64
	BadUDP  uint64
	BadICMP uint64

	parts []telemetry.SharePart

	good, bad pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *FusedL4Check) Class() string { return "FusedL4Check" }

// Configure implements click.Element. Args: OFFSET n, [SHARES name:w ...].
func (e *FusedL4Check) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Offset = netpkt.EtherHdrLen
	for _, a := range args {
		fields := strings.Fields(a)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "OFFSET":
			n, err := click.ParseInt(fields[1])
			if err != nil {
				return err
			}
			e.Offset = n
		case "SHARES":
			parts, err := parseShares(fields[1:])
			if err != nil {
				return fmt.Errorf("FusedL4Check: %w", err)
			}
			e.parts = parts
		default:
			return fmt.Errorf("FusedL4Check: bad argument %q", a)
		}
	}
	bc.AllocState(24, 1)
	return nil
}

// Push implements click.Element.
func (e *FusedL4Check) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	if e.parts != nil {
		ec.Tel.EnterShares(telemetry.StageEngine, e.Inst.Name, e.parts)
		ec.Tel.AddPackets(b.Count())
	}
	good, bad := &e.good, &e.bad
	good.Reset()
	bad.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		l4, proto, ipLen, ok := ipHeaderAt(ec, p, e.Offset)
		if !ok {
			// Malformed IP dies at the first checker in the chain.
			e.BadTCP++
			bad.Append(core, p)
			return true
		}
		// One protocol dispatch replaces the chain's three pass-through
		// filters.
		core.Compute(8)
		switch proto {
		case netpkt.ProtoTCP:
			if p.Len() >= l4+netpkt.TCPHdrLen {
				seg := p.Load(core, l4, netpkt.TCPHdrLen)
				core.Compute(48)
				th, hdrLen, err := netpkt.ParseTCP(seg)
				segLen := ipLen - (l4 - e.Offset)
				if err == nil && segLen >= hdrLen &&
					th.Flags&(netpkt.TCPFlagSYN|netpkt.TCPFlagFIN) != (netpkt.TCPFlagSYN|netpkt.TCPFlagFIN) &&
					th.Flags != 0 {
					good.Append(core, p)
					return true
				}
			}
			e.BadTCP++
		case netpkt.ProtoUDP:
			if p.Len() >= l4+netpkt.UDPHdrLen {
				seg := p.Load(core, l4, netpkt.UDPHdrLen)
				core.Compute(28)
				uh, err := netpkt.ParseUDP(seg)
				if err == nil && int(uh.Length) == ipLen-(l4-e.Offset) && uh.Length >= netpkt.UDPHdrLen {
					good.Append(core, p)
					return true
				}
			}
			e.BadUDP++
		case netpkt.ProtoICMP:
			if p.Len() >= l4+netpkt.ICMPHdrLen {
				seg := p.Load(core, l4, netpkt.ICMPHdrLen)
				core.Compute(22)
				h, err := netpkt.ParseICMP(seg)
				if err == nil && h.Type <= 18 {
					good.Append(core, p)
					return true
				}
			}
			e.BadICMP++
		default:
			// Unhandled protocols pass every checker.
			good.Append(core, p)
			return true
		}
		bad.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, bad)
	if !good.Empty() {
		e.Inst.Output(ec, 0, good)
	}
	if e.parts != nil {
		ec.Tel.Exit()
	}
}
