package elements_test

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/elements"
	"packetmill/internal/netpkt"
)

func TestIPFilterAllowAndDrop(t *testing.T) {
	h := newHarness(t, ioWrap+`
f :: IPFilter(allow src net 10.0.0.0/8 && dst port 80, deny all);
input -> f -> output;
`, click.Copying)
	// Matches rule 0.
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	// Wrong source net: falls through to deny.
	h.inject(udpFrame(100, netpkt.IPv4{192, 168, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
	f := h.element("f").(*elements.IPFilter)
	if f.Matched[0] != 1 || f.Matched[1] != 1 || f.Dropped != 1 {
		t.Fatalf("matched=%v dropped=%d", f.Matched, f.Dropped)
	}
}

func TestIPFilterPortOutputsAndProto(t *testing.T) {
	h := newHarness(t, ioWrap+`
f :: IPFilter(1 icmp, 0 tcp, drop all);
tcpCnt :: Counter;
icmpCnt :: Counter;
input -> f;
f[0] -> tcpCnt -> output;
f[1] -> icmpCnt -> Discard;
`, click.Copying)
	tcp := netpkt.BuildTCP(make([]byte, 2048), netpkt.TCPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 1, 0, 1},
		SrcPort: 1, DstPort: 2, TotalLen: 100})
	icmp := netpkt.BuildICMPEcho(make([]byte, 2048),
		netpkt.MAC{2, 0, 0, 0, 0, 1}, netpkt.MAC{2, 0, 0, 0, 0, 2},
		netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}, 1, 1, 98)
	udp := udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})
	h.inject(tcp)
	h.inject(icmp)
	h.inject(udp) // dropped
	h.step()
	if got := h.element("tcpCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("tcp out %d", got)
	}
	if got := h.element("icmpCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("icmp out %d", got)
	}
	if got := h.element("f").(*elements.IPFilter).Dropped; got != 1 {
		t.Fatalf("dropped %d", got)
	}
}

func TestIPFilterNegationAndHost(t *testing.T) {
	h := newHarness(t, ioWrap+`
f :: IPFilter(allow !src host 10.0.0.9, drop all);
input -> f -> output;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 9}, netpkt.IPv4{10, 1, 0, 1})) // blocked host
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 7}, netpkt.IPv4{10, 1, 0, 1})) // anyone else
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
	ih, _, _ := netpkt.ParseIPv4Header(h.captured[0][netpkt.EtherHdrLen:])
	if ih.Src != (netpkt.IPv4{10, 0, 0, 7}) {
		t.Fatalf("wrong packet passed: %v", ih.Src)
	}
}

func TestIPFilterSrcPort(t *testing.T) {
	h := newHarness(t, ioWrap+`
f :: IPFilter(allow udp && src port 4000, drop all);
input -> f -> output;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})) // src port 4000
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
}

func TestIPFilterUnmatchedDefaultDrop(t *testing.T) {
	h := newHarness(t, ioWrap+`
f :: IPFilter(allow tcp);
input -> f -> output;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 0 {
		t.Fatal("unmatched packet passed")
	}
}

func TestIPFilterBadRules(t *testing.T) {
	for _, cfg := range []string{
		ioWrap + `input -> IPFilter() -> output;`,
		ioWrap + `input -> IPFilter(allow) -> output;`,
		ioWrap + `input -> IPFilter(banana all) -> output;`,
		ioWrap + `input -> IPFilter(allow src host nonsense) -> output;`,
		ioWrap + `input -> IPFilter(allow src net 10.0.0.0) -> output;`,
		ioWrap + `input -> IPFilter(allow dst port 99999) -> output;`,
		ioWrap + `input -> IPFilter(allow src banana 1) -> output;`,
		ioWrap + `input -> IPFilter(allow !) -> output;`,
	} {
		if !buildFails(t, cfg) {
			t.Errorf("accepted: %s", cfg)
		}
	}
}
