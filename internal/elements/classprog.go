// The classifier compiler: Classifier/IPClassifier rule lists compiled
// into decision bytecode, installed by the mill's profile-guided
// classifier-compilation pass.
//
// A compiled Classifier differs from the linear scan three ways:
//
//   - Branch order follows observed match frequencies (the HOT argument
//     the mill appends from the profile), with a reorder that is proven
//     safe: a rule may only be hoisted above an earlier rule when the two
//     are *disjoint* — some byte position both constrain to different
//     values — so first-match semantics are preserved exactly.
//   - Packet loads are deduplicated through load slots: each distinct
//     (offset, length) range is read once per packet no matter how many
//     rules test it, where the linear scan re-loads per rule.
//   - When a rule's leading test fails, every following rule opening with
//     the identical test is skipped (the compiler chains them), which is
//     the decision-tree shortcut a switch on the discriminating field
//     compiles to.
//
// The interpreter exists twice on purpose: Exec charges the simulated
// core and reads through pktbuf, ExecBytes is a pure function over a raw
// frame used by the fuzz harness to compare the compiled program against
// the linear-scan oracle.
package elements

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("CompiledClassifier", func() click.Element { return &CompiledClassifier{} })
	click.Register("CompiledIPClassifier", func() click.Element { return &CompiledIPClassifier{} })
}

// HotArg is the keyword the mill uses to append observed per-rule match
// frequencies to a compiled classifier's arguments.
const HotArg = "HOT"

type slotRef struct{ off, n int }

type classTest struct {
	slot  int
	value []byte
}

type classBlock struct {
	tests []classTest
	port  int // original rule index = output port
	// skipSame is the block index to resume at when tests[0] fails:
	// every following block opening with the identical first test is
	// skipped (it would fail the same way).
	skipSame int
}

// classProg is a compiled rule list.
type classProg struct {
	slots    []slotRef
	blocks   []classBlock
	hasDash  bool
	dashPort int
	nOut     int
}

// patternsDisjoint reports whether some byte position is constrained to
// different values by a and b — no packet can match both, so their
// relative order is free.
func patternsDisjoint(a, b []match) bool {
	for _, ma := range a {
		for _, mb := range b {
			lo := ma.offset
			if mb.offset > lo {
				lo = mb.offset
			}
			hi := ma.offset + len(ma.value)
			if h := mb.offset + len(mb.value); h < hi {
				hi = h
			}
			for pos := lo; pos < hi; pos++ {
				if ma.value[pos-ma.offset] != mb.value[pos-mb.offset] {
					return true
				}
			}
		}
	}
	return false
}

// hotOrder returns idxs reordered hottest-first under the constraint that
// index c may only precede an originally-earlier index o when
// disjoint(o, c) holds. The order is deterministic: ties keep original
// order, and the original order is always a legal fallback.
func hotOrder(idxs []int, freq []float64, disjoint func(i, j int) bool) []int {
	f := func(i int) float64 {
		if freq == nil || i >= len(freq) {
			return 0
		}
		return freq[i]
	}
	remaining := append([]int(nil), idxs...)
	out := make([]int, 0, len(idxs))
	for len(remaining) > 0 {
		best := -1
		for k, c := range remaining {
			legal := true
			for _, o := range remaining {
				if o < c && !disjoint(o, c) {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			if best == -1 || f(c) > f(remaining[best]) {
				best = k
			}
		}
		if best == -1 {
			best = 0 // unreachable: the smallest index is always legal
		}
		out = append(out, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// compileClassProg compiles a Classifier rule list. freq (optional) maps
// original rule index to its observed match count.
func compileClassProg(patterns [][]match, hasDash bool, dashPort int, freq []float64) *classProg {
	cp := &classProg{hasDash: hasDash, dashPort: dashPort, nOut: len(patterns)}
	var idxs []int
	for i, ms := range patterns {
		if ms != nil {
			idxs = append(idxs, i)
		}
	}
	order := hotOrder(idxs, freq, func(i, j int) bool {
		return patternsDisjoint(patterns[i], patterns[j])
	})
	slotOf := map[slotRef]int{}
	for _, pi := range order {
		blk := classBlock{port: pi}
		for _, m := range patterns[pi] {
			ref := slotRef{off: m.offset, n: len(m.value)}
			s, ok := slotOf[ref]
			if !ok {
				s = len(cp.slots)
				slotOf[ref] = s
				cp.slots = append(cp.slots, ref)
			}
			blk.tests = append(blk.tests, classTest{slot: s, value: m.value})
		}
		cp.blocks = append(cp.blocks, blk)
	}
	for i := range cp.blocks {
		j := i + 1
		for j < len(cp.blocks) && sameFirstTest(&cp.blocks[i], &cp.blocks[j]) {
			j++
		}
		cp.blocks[i].skipSame = j
	}
	return cp
}

func sameFirstTest(a, b *classBlock) bool {
	if len(a.tests) == 0 || len(b.tests) == 0 {
		return false
	}
	return a.tests[0].slot == b.tests[0].slot &&
		bytes.Equal(a.tests[0].value, b.tests[0].value)
}

// ExecBytes runs the program over a raw frame with no cost accounting:
// the reference interpreter the fuzz harness compares against the
// linear-scan oracle. Returns the output port, or -1 for kill.
func (cp *classProg) ExecBytes(frame []byte) int {
	i := 0
	for i < len(cp.blocks) {
		blk := &cp.blocks[i]
		matched := true
		failedFirst := false
		for ti := range blk.tests {
			t := &blk.tests[ti]
			s := cp.slots[t.slot]
			if s.off+s.n > len(frame) || !bytes.Equal(frame[s.off:s.off+s.n], t.value) {
				matched = false
				failedFirst = ti == 0
				break
			}
		}
		if matched {
			return blk.port
		}
		if failedFirst {
			i = blk.skipSame
		} else {
			i++
		}
	}
	if cp.hasDash {
		return cp.dashPort
	}
	return -1
}

// linearClassifyBytes is the linear-scan oracle over a raw frame —
// Classifier.Push's decision, byte for byte, without the simulator.
func linearClassifyBytes(patterns [][]match, hasDash bool, dashPort int, frame []byte) int {
	for i, ms := range patterns {
		if ms == nil {
			continue
		}
		ok := true
		for _, m := range ms {
			if m.offset+len(m.value) > len(frame) ||
				!bytes.Equal(frame[m.offset:m.offset+len(m.value)], m.value) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	if hasDash {
		return dashPort
	}
	return -1
}

// parseClassifierPatterns parses Classifier-style pattern arguments
// ("offset/hex ..." groups, "-" for the catch-all).
func parseClassifierPatterns(args []string) (patterns [][]match, hasDash bool, dashPort int, err error) {
	for i, a := range args {
		a = strings.TrimSpace(a)
		if a == "-" {
			patterns = append(patterns, nil)
			hasDash, dashPort = true, i
			continue
		}
		var ms []match
		for _, part := range strings.Fields(a) {
			var off int
			var hexStr string
			if _, err := fmt.Sscanf(part, "%d/%s", &off, &hexStr); err != nil {
				return nil, false, 0, fmt.Errorf("bad pattern %q", part)
			}
			if len(hexStr)%2 != 0 {
				return nil, false, 0, fmt.Errorf("odd hex in %q", part)
			}
			val := make([]byte, len(hexStr)/2)
			for j := 0; j < len(val); j++ {
				var b int
				if _, err := fmt.Sscanf(hexStr[2*j:2*j+2], "%02x", &b); err != nil {
					return nil, false, 0, fmt.Errorf("bad hex in %q", part)
				}
				val[j] = byte(b)
			}
			ms = append(ms, match{offset: off, value: val})
		}
		patterns = append(patterns, ms)
	}
	return patterns, hasDash, dashPort, nil
}

// splitHotArg strips a trailing "HOT f0 f1 ..." argument, returning the
// remaining arguments and the parsed frequencies (nil when absent).
func splitHotArg(args []string) ([]string, []float64, error) {
	if len(args) == 0 {
		return args, nil, nil
	}
	last := strings.Fields(args[len(args)-1])
	if len(last) == 0 || last[0] != HotArg {
		return args, nil, nil
	}
	freq := make([]float64, 0, len(last)-1)
	for _, f := range last[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad %s weight %q: %v", HotArg, f, err)
		}
		freq = append(freq, v)
	}
	return args[:len(args)-1], freq, nil
}

// CompiledClassifier is the milled replacement for Classifier: the same
// rule list, compiled (see the package comment on the compiler). Port
// numbering, catch-all, and kill behavior are identical to Classifier's.
type CompiledClassifier struct {
	click.Base
	patterns [][]match
	prog     *classProg

	// Per-packet load-slot memo (allocated once in Configure).
	loaded []bool
	views  [][]byte

	outs []pktbuf.Batch
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *CompiledClassifier) Class() string { return "CompiledClassifier" }

// BatchAware implements click.BatchElement: like Classifier, the decision
// is per packet — compilation changes the per-decision cost, not the
// dispatch model.
func (e *CompiledClassifier) BatchAware() bool { return false }

// Configure implements click.Element: Classifier's arguments plus an
// optional trailing "HOT f0 f1 ..." frequency hint.
func (e *CompiledClassifier) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	rules, freq, err := splitHotArg(args)
	if err != nil {
		return fmt.Errorf("CompiledClassifier: %w", err)
	}
	if len(rules) == 0 {
		return fmt.Errorf("CompiledClassifier: no patterns")
	}
	patterns, hasDash, dashPort, err := parseClassifierPatterns(rules)
	if err != nil {
		return fmt.Errorf("CompiledClassifier: %w", err)
	}
	e.patterns = patterns
	e.prog = compileClassProg(patterns, hasDash, dashPort, freq)
	e.loaded = make([]bool, len(e.prog.slots))
	e.views = make([][]byte, len(e.prog.slots))
	// The compiled program is denser than the pattern table: one decision
	// block per rule plus the slot table.
	bc.AllocState(uint64(24*len(patterns)+8*len(e.prog.slots)), 1)
	e.outs = make([]pktbuf.Batch, len(patterns))
	return nil
}

// NOutputs implements click.Element.
func (e *CompiledClassifier) NOutputs() int { return len(e.patterns) }

// Push implements click.Element.
func (e *CompiledClassifier) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	cp := e.prog
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	// Walking the compiled program touches its block and slot tables.
	e.Inst.TouchState(ec, 0, uint64(8*len(cp.blocks)+4*len(cp.slots)))
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		for i := range e.loaded {
			e.loaded[i] = false
		}
		port := -1
		i := 0
		for i < len(cp.blocks) {
			blk := &cp.blocks[i]
			matched := true
			failedFirst := false
			for ti := range blk.tests {
				t := &blk.tests[ti]
				core.Compute(4)
				s := cp.slots[t.slot]
				if s.off+s.n > p.Len() {
					matched, failedFirst = false, ti == 0
					break
				}
				if !e.loaded[t.slot] {
					e.views[t.slot] = p.Load(core, s.off, s.n)
					e.loaded[t.slot] = true
				}
				if !bytes.Equal(e.views[t.slot], t.value) {
					matched, failedFirst = false, ti == 0
					break
				}
			}
			if matched {
				port = blk.port
				break
			}
			if failedFirst {
				i = blk.skipSame
			} else {
				i++
			}
		}
		if port < 0 && cp.hasDash {
			port = cp.dashPort
		}
		if port < 0 {
			dead.Append(core, p)
			return true
		}
		outs[port].Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}

// CompiledIPClassifier is the milled replacement for IPClassifier: the
// same protocol dispatch with the checks evaluated hottest-first. The
// reorder obeys the same disjointness rule as the byte classifier — a
// catch-all ("-") matches everything, so nothing crosses it.
type CompiledIPClassifier struct {
	click.Base
	protos []int // -1 = catch-all (original order, port = index)
	order  []int // compiled evaluation order

	outs []pktbuf.Batch
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *CompiledIPClassifier) Class() string { return "CompiledIPClassifier" }

// BatchAware implements click.BatchElement.
func (e *CompiledIPClassifier) BatchAware() bool { return false }

// Configure implements click.Element: IPClassifier's arguments plus an
// optional trailing "HOT f0 f1 ..." frequency hint.
func (e *CompiledIPClassifier) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	rules, freq, err := splitHotArg(args)
	if err != nil {
		return fmt.Errorf("CompiledIPClassifier: %w", err)
	}
	for _, a := range rules {
		switch a {
		case "tcp":
			e.protos = append(e.protos, netpkt.ProtoTCP)
		case "udp":
			e.protos = append(e.protos, netpkt.ProtoUDP)
		case "icmp":
			e.protos = append(e.protos, netpkt.ProtoICMP)
		case "-":
			e.protos = append(e.protos, -1)
		default:
			return errBadPattern(a)
		}
	}
	idxs := make([]int, len(e.protos))
	for i := range idxs {
		idxs[i] = i
	}
	e.order = hotOrder(idxs, freq, func(i, j int) bool {
		return e.protos[i] != e.protos[j] && e.protos[i] != -1 && e.protos[j] != -1
	})
	e.outs = make([]pktbuf.Batch, len(e.protos))
	bc.AllocState(uint64(32*len(e.protos)), 1)
	return nil
}

// NOutputs implements click.Element.
func (e *CompiledIPClassifier) NOutputs() int { return len(e.protos) }

// Push implements click.Element.
func (e *CompiledIPClassifier) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	e.Inst.TouchState(ec, 0, uint64(8*len(e.protos)))
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		proto := -2
		if p.Len() >= netpkt.EtherHdrLen+netpkt.IPv4HdrLen {
			hdr := p.Load(core, netpkt.EtherHdrLen+9, 1)
			proto = int(hdr[0])
		}
		core.Compute(10)
		for _, i := range e.order {
			if want := e.protos[i]; want == proto || want == -1 {
				outs[i].Append(core, p)
				return true
			}
		}
		dead.Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}
