package elements_test

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/elements"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/testbed"
)

// harness builds a one-core DUT around a config, lets tests inject raw
// frames, step the router, and capture what leaves the wire.
type harness struct {
	t        *testing.T
	dut      *testbed.DUT
	rt       *click.Router
	ec       click.ExecCtx
	captured [][]byte
}

func newHarness(t *testing.T, config string, model click.MetadataModel) *harness {
	t.Helper()
	d, err := testbed.NewDUT(testbed.Options{FreqGHz: 2.3, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(config)
	if err != nil {
		t.Fatal(err)
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, dut: d, rt: routers[0]}
	for _, n := range d.NICs {
		n.OnDepart = func(p *pktbuf.Packet, _ float64) {
			cp := make([]byte, p.Len())
			copy(cp, p.Bytes())
			h.captured = append(h.captured, cp)
		}
	}
	h.ec = click.ExecCtx{Core: d.Cores[0], Rt: h.rt}
	return h
}

// inject delivers a frame to NIC 0 queue 0 at the core's current time.
func (h *harness) inject(frame []byte) {
	if !h.dut.NICs[0].Deliver(0, frame, h.dut.Cores[0].NowNS()) {
		h.t.Fatal("frame rejected by NIC")
	}
}

// step runs driver iterations until the router goes idle.
func (h *harness) step() {
	for i := 0; i < 64; i++ {
		h.ec.Now = h.dut.Cores[0].NowNS() + 1
		h.dut.Cores[0].Idle(h.ec.Now)
		if h.rt.Step(&h.ec) == 0 && i > 2 {
			return
		}
	}
}

// element fetches a wired element by instance name.
func (h *harness) element(name string) click.Element {
	inst := h.rt.Instance(name)
	if inst == nil {
		h.t.Fatalf("no element %q", name)
	}
	return inst.El
}

func udpFrame(size int, src, dst netpkt.IPv4) []byte {
	return netpkt.BuildUDP(make([]byte, 2048), netpkt.UDPPacketSpec{
		SrcMAC: netpkt.MAC{0x02, 0, 0, 0, 0, 1}, DstMAC: netpkt.MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP: src, DstIP: dst, SrcPort: 4000, DstPort: 80, TotalLen: size,
	})
}

const ioWrap = `
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
`

func TestEtherMirrorSwapsAddresses(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> EtherMirror -> output;`, click.Copying)
	f := udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})
	h.inject(f)
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d frames", len(h.captured))
	}
	eh, _ := netpkt.ParseEther(h.captured[0])
	if eh.Src != (netpkt.MAC{0x02, 0, 0, 0, 0, 2}) || eh.Dst != (netpkt.MAC{0x02, 0, 0, 0, 0, 1}) {
		t.Fatalf("not mirrored: %v -> %v", eh.Src, eh.Dst)
	}
}

func TestEtherRewriteSetsConstants(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> EtherRewrite(SRC 0a:0b:0c:0d:0e:0f, DST 0f:0e:0d:0c:0b:0a) -> output;`,
		click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	eh, _ := netpkt.ParseEther(h.captured[0])
	want, _ := netpkt.ParseMAC("0a:0b:0c:0d:0e:0f")
	if eh.Src != want {
		t.Fatalf("src = %v", eh.Src)
	}
}

func TestClassifierSplitsTraffic(t *testing.T) {
	h := newHarness(t, ioWrap+`
c :: Classifier(12/0806, 12/0800, -);
arpCnt :: Counter;
ipCnt :: Counter;
input -> c;
c[0] -> arpCnt -> Discard;
c[1] -> ipCnt -> output;
c[2] -> Discard;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	arp := make([]byte, 64)
	netpkt.PutEther(arp, netpkt.EtherHeader{EtherType: netpkt.EtherTypeARP})
	h.inject(arp)
	h.step()
	if got := h.element("arpCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("arp counter = %d", got)
	}
	if got := h.element("ipCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("ip counter = %d", got)
	}
}

func TestCheckIPHeaderDropsBadChecksum(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> Strip(14) -> chk :: CheckIPHeader(0) -> Unstrip(14) -> output;`,
		click.Copying)
	good := udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})
	bad := udpFrame(100, netpkt.IPv4{10, 0, 0, 2}, netpkt.IPv4{10, 1, 0, 1})
	bad[netpkt.EtherHdrLen+10] ^= 0xff // corrupt checksum
	h.inject(good)
	h.inject(bad)
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d, want only the good frame", len(h.captured))
	}
	if got := h.element("chk").(*elements.CheckIPHeader).Bad; got != 1 {
		t.Fatalf("bad counter = %d", got)
	}
	if h.rt.Drops != 1 {
		t.Fatalf("router drops = %d", h.rt.Drops)
	}
}

func TestDecIPTTLDecrementsAndDropsExpired(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> Strip(14) -> ttl :: DecIPTTL -> Unstrip(14) -> output;`,
		click.Copying)
	f := udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})
	h.inject(f)
	expired := udpFrame(100, netpkt.IPv4{10, 0, 0, 3}, netpkt.IPv4{10, 1, 0, 1})
	// Rebuild with TTL 1.
	netpkt.PutIPv4(expired[netpkt.EtherHdrLen:], netpkt.IPv4Header{
		TotalLen: 86, TTL: 1, Protocol: netpkt.ProtoUDP,
		Src: netpkt.IPv4{10, 0, 0, 3}, Dst: netpkt.IPv4{10, 1, 0, 1}})
	h.inject(expired)
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
	ih, _, err := netpkt.ParseIPv4Header(h.captured[0][netpkt.EtherHdrLen:])
	if err != nil || ih.TTL != 63 {
		t.Fatalf("ttl = %d err %v", ih.TTL, err)
	}
	if !netpkt.VerifyIPv4Checksum(h.captured[0][netpkt.EtherHdrLen:]) {
		t.Fatal("checksum broken after TTL decrement")
	}
	if got := h.element("ttl").(*elements.DecIPTTL).Expired; got != 1 {
		t.Fatalf("expired counter = %d", got)
	}
}

func TestLookupIPRouteSelectsPort(t *testing.T) {
	h := newHarness(t, ioWrap+`
rt :: LookupIPRoute(10.1.0.0/16 0, 10.2.0.0/16 1);
aCnt :: Counter;
bCnt :: Counter;
input -> Strip(14) -> CheckIPHeader(0) -> rt;
rt[0] -> aCnt -> Unstrip(14) -> output;
rt[1] -> bCnt -> Discard;
`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 5, 5}))
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 2, 5, 5}))
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{77, 1, 1, 1})) // no route
	h.step()
	if got := h.element("aCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("port0 counter = %d", got)
	}
	if got := h.element("bCnt").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("port1 counter = %d", got)
	}
}

func TestIDSDropsMalformedTCP(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> ids :: CheckTCPHeader(14) -> output;`, click.Copying)
	good := netpkt.BuildTCP(make([]byte, 2048), netpkt.TCPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 1}, DstIP: netpkt.IPv4{10, 1, 0, 1},
		SrcPort: 1, DstPort: 2, TotalLen: 100,
	})
	bad := netpkt.BuildTCP(make([]byte, 2048), netpkt.TCPPacketSpec{
		SrcIP: netpkt.IPv4{10, 0, 0, 2}, DstIP: netpkt.IPv4{10, 1, 0, 1},
		SrcPort: 1, DstPort: 2, TotalLen: 100,
		Flags: netpkt.TCPFlagSYN | netpkt.TCPFlagFIN, // invalid combo
	})
	h.inject(good)
	h.inject(bad)
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
	if got := h.element("ids").(*elements.CheckTCPHeader).Bad; got != 1 {
		t.Fatalf("bad = %d", got)
	}
}

func TestIDSPassesNonTCP(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> CheckTCPHeader(14) -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatal("UDP did not pass the TCP checker")
	}
}

func TestNATRewritesSource(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> nat :: IPRewriter(EXTIP 192.168.9.9) -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 7}, netpkt.IPv4{10, 1, 0, 1}))
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 7}, netpkt.IPv4{10, 1, 0, 1})) // same flow
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 8}, netpkt.IPv4{10, 1, 0, 1})) // new flow
	h.step()
	if len(h.captured) != 3 {
		t.Fatalf("captured %d", len(h.captured))
	}
	nat := h.element("nat").(*elements.IPRewriter)
	if nat.Flows != 2 || nat.Rewritten != 3 {
		t.Fatalf("flows=%d rewritten=%d", nat.Flows, nat.Rewritten)
	}
	for i, f := range h.captured {
		ih, _, err := netpkt.ParseIPv4Header(f[netpkt.EtherHdrLen:])
		if err != nil {
			t.Fatal(err)
		}
		if ih.Src.String() != "192.168.9.9" {
			t.Fatalf("frame %d src = %s", i, ih.Src)
		}
		if !netpkt.VerifyIPv4Checksum(f[netpkt.EtherHdrLen:]) {
			t.Fatalf("frame %d checksum broken after NAT", i)
		}
	}
	// Same flow must keep the same external port.
	p0, _ := netpkt.ParseUDP(h.captured[0][netpkt.EtherHdrLen+netpkt.IPv4HdrLen:])
	p1, _ := netpkt.ParseUDP(h.captured[1][netpkt.EtherHdrLen+netpkt.IPv4HdrLen:])
	p2, _ := netpkt.ParseUDP(h.captured[2][netpkt.EtherHdrLen+netpkt.IPv4HdrLen:])
	if p0.SrcPort != p1.SrcPort {
		t.Fatalf("same flow got ports %d and %d", p0.SrcPort, p1.SrcPort)
	}
	if p2.SrcPort == p0.SrcPort {
		t.Fatal("distinct flows share an external port")
	}
}

func TestVLANEncapDecap(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> VLANEncap(VLAN_ID 42, VLAN_PCP 3) -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	f := h.captured[0]
	if len(f) != 104 {
		t.Fatalf("tagged length %d", len(f))
	}
	tag, inner, err := netpkt.ParseVLAN(f)
	if err != nil || tag.VID != 42 || tag.PCP != 3 || inner != netpkt.EtherTypeIPv4 {
		t.Fatalf("tag %+v inner %#x err %v", tag, inner, err)
	}
	if !netpkt.VerifyIPv4Checksum(f[netpkt.EtherHdrLen+netpkt.VLANTagLen:]) {
		t.Fatal("payload corrupted by encap")
	}

	// And back off again.
	h2 := newHarness(t, ioWrap+
		`input -> VLANEncap(VLAN_ID 7) -> VLANDecap -> output;`, click.Copying)
	h2.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h2.step()
	if len(h2.captured[0]) != 100 {
		t.Fatalf("decap length %d", len(h2.captured[0]))
	}
	if !netpkt.VerifyIPv4Checksum(h2.captured[0][netpkt.EtherHdrLen:]) {
		t.Fatal("payload corrupted by encap+decap")
	}
}

func TestARPResponderReplies(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> ARPResponder(10.1.0.254 02:aa:bb:cc:dd:ee) -> output;`, click.Copying)
	req := make([]byte, 64)
	netpkt.PutEther(req, netpkt.EtherHeader{
		Dst:       netpkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       netpkt.MAC{0x02, 0, 0, 0, 0, 1},
		EtherType: netpkt.EtherTypeARP,
	})
	netpkt.PutARP(req[netpkt.EtherHdrLen:], netpkt.ARPPacket{
		Op:       netpkt.ARPRequest,
		SenderHA: netpkt.MAC{0x02, 0, 0, 0, 0, 1},
		SenderIP: netpkt.IPv4{10, 1, 0, 9},
		TargetIP: netpkt.IPv4{10, 1, 0, 254},
	})
	h.inject(req)
	// A request for someone else must be dropped.
	other := make([]byte, len(req))
	copy(other, req)
	netpkt.PutARP(other[netpkt.EtherHdrLen:], netpkt.ARPPacket{
		Op: netpkt.ARPRequest, TargetIP: netpkt.IPv4{10, 1, 0, 77},
	})
	h.inject(other)
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("captured %d", len(h.captured))
	}
	rep, err := netpkt.ParseARP(h.captured[0][netpkt.EtherHdrLen:])
	if err != nil || rep.Op != netpkt.ARPReply {
		t.Fatalf("reply: %+v err %v", rep, err)
	}
	wantMAC, _ := netpkt.ParseMAC("02:aa:bb:cc:dd:ee")
	if rep.SenderHA != wantMAC || rep.SenderIP != (netpkt.IPv4{10, 1, 0, 254}) {
		t.Fatalf("reply sender: %v %v", rep.SenderHA, rep.SenderIP)
	}
	if rep.TargetIP != (netpkt.IPv4{10, 1, 0, 9}) {
		t.Fatalf("reply target: %v", rep.TargetIP)
	}
}

func TestPaintSetsAnnotation(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> Paint(9) -> paintCnt :: Counter -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatal("frame lost")
	}
}

func TestDiscardCountsAndRecycles(t *testing.T) {
	h2 := newHarness(t, `
input :: FromDPDKDevice(PORT 0, BURST 32);
input -> d :: Discard;
`, click.Copying)
	for i := 0; i < 10; i++ {
		h2.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	}
	h2.step()
	if got := h2.element("d").(*elements.Discard).Count; got != 10 {
		t.Fatalf("discard count = %d", got)
	}
	if h2.rt.Drops != 10 {
		t.Fatalf("router drops = %d", h2.rt.Drops)
	}
}

func TestWorkPackageForwards(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> WorkPackage(S 2, N 3, W 5) -> output;`, click.Copying)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatal("WorkPackage lost the packet")
	}
}

func TestXChangeModelEndToEndFrames(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> EtherMirror -> output;`, click.XChange)
	f := udpFrame(200, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1})
	h.inject(f)
	h.step()
	if len(h.captured) != 1 || len(h.captured[0]) != 200 {
		t.Fatalf("x-change path broke the frame: %d frames", len(h.captured))
	}
}

func TestOverlayingModelEndToEndFrames(t *testing.T) {
	h := newHarness(t, ioWrap+`input -> EtherMirror -> output;`, click.Overlaying)
	h.inject(udpFrame(200, netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}))
	h.step()
	if len(h.captured) != 1 {
		t.Fatal("overlay path lost the frame")
	}
}

// buildFails reports whether the configuration is rejected at parse or
// build time.
func buildFails(t *testing.T, cfg string) bool {
	t.Helper()
	d, err := testbed.NewDUT(testbed.Options{FreqGHz: 2.3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := click.Parse(cfg)
	if err != nil {
		return true
	}
	_, err = d.BuildRouters(g)
	return err != nil
}

func TestBadElementConfigs(t *testing.T) {
	cases := []string{
		ioWrap + `input -> Strip(nope) -> output;`,
		ioWrap + `input -> Classifier() -> output;`,
		ioWrap + `input -> EtherRewrite(SRC banana) -> output;`,
		ioWrap + `input -> LookupIPRoute(999.0.0.0/8 0) -> output;`,
		ioWrap + `input -> Paint(1, 2) -> output;`,
		`in :: FromDPDKDevice(PORT 7); in -> Discard;`, // no such port
	}
	for _, cfg := range cases {
		d, err := testbed.NewDUT(testbed.Options{FreqGHz: 2.3})
		if err != nil {
			t.Fatal(err)
		}
		g, err := click.Parse(cfg)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := d.BuildRouters(g); err == nil {
			t.Errorf("config accepted: %s", cfg)
		}
	}
}
