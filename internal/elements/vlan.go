// VLAN elements — the encapsulation supplement of Appendix A.3.
package elements

import (
	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("VLANEncap", func() click.Element { return &VLANEncap{} })
	click.Register("VLANDecap", func() click.Element { return &VLANDecap{} })
}

// VLANEncap inserts an 802.1Q shim after the MAC addresses using the
// buffer headroom (zero-copy: the addresses slide forward 4 bytes).
type VLANEncap struct {
	click.Base
	Tag netpkt.VLANTag
}

// Class implements click.Element.
func (e *VLANEncap) Class() string { return "VLANEncap" }

// Configure implements click.Element. Args: VLAN_ID n [, VLAN_PCP p].
func (e *VLANEncap) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["VLAN_ID"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Tag.VID = uint16(n)
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.Tag.VID = uint16(n)
	}
	if v, ok := kw["VLAN_PCP"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Tag.PCP = uint8(n)
	}
	bc.AllocState(8, 2)
	return nil
}

// Push implements click.Element.
func (e *VLANEncap) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Headroom() < netpkt.VLANTagLen || p.Len() < netpkt.EtherHdrLen {
			return true
		}
		// Slide the MAC addresses 4 bytes forward, then write the shim.
		old := p.Load(core, 0, 12)
		var macs [12]byte
		copy(macs[:], old)
		p.Push(netpkt.VLANTagLen)
		front := p.Store(core, 0, 16)
		copy(front[0:12], macs[:])
		netpkt.EncodeVLANInPlace(front, e.Tag, 0)
		core.Compute(28)
		// Update the VLAN annotation if the descriptor carries one.
		if p.Meta.L.Has(layout.FieldAnnoVLAN) {
			tci := uint64(e.Tag.PCP&7)<<13 | uint64(e.Tag.VID&0x0fff)
			p.Meta.Set(core, layout.FieldAnnoVLAN, tci)
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// VLANDecap removes the 802.1Q shim when present.
type VLANDecap struct {
	click.Base
}

// Class implements click.Element.
func (e *VLANDecap) Class() string { return "VLANDecap" }

// Configure implements click.Element.
func (e *VLANDecap) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(0, 0)
	return nil
}

// Push implements click.Element.
func (e *VLANDecap) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() < netpkt.EtherHdrLen+netpkt.VLANTagLen {
			return true
		}
		hdr := p.Load(core, 12, 2)
		if readU16(hdr) != netpkt.EtherTypeVLAN {
			return true
		}
		macs := p.Load(core, 0, 12)
		var save [12]byte
		copy(save[:], macs)
		p.Pull(netpkt.VLANTagLen)
		front := p.Store(core, 0, 12)
		copy(front, save[:])
		core.Compute(28)
		return true
	})
	e.Inst.Output(ec, 0, b)
}
