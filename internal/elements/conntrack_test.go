package elements_test

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/elements"
	"packetmill/internal/netpkt"
	"packetmill/internal/stats"
)

func tcpFrame(src, dst netpkt.IPv4, sport uint16, flags uint8) []byte {
	return netpkt.BuildTCP(make([]byte, 2048), netpkt.TCPPacketSpec{
		SrcMAC: netpkt.MAC{0x02, 0, 0, 0, 0, 1}, DstMAC: netpkt.MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP: src, DstIP: dst, SrcPort: sport, DstPort: 80,
		Flags: flags, TotalLen: 64,
	})
}

// Strict mode must refuse a mid-stream TCP pickup (no SYN seen) under
// the flow-table-invalid reason, while a proper SYN opens the flow.
func TestConnTrackerStrictRefusesMidStream(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> ct :: ConnTracker(CAPACITY 64, STRICT true) -> output;`,
		click.Copying)
	src, dst := netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}

	h.inject(tcpFrame(src, dst, 5000, netpkt.TCPFlagACK)) // mid-stream
	h.step()
	if len(h.captured) != 0 {
		t.Fatalf("mid-stream pickup forwarded (%d frames)", len(h.captured))
	}
	if got := h.rt.DropStats.Get(stats.DropFlowTableInvalid); got != 1 {
		t.Fatalf("flow-table-invalid drops = %d, want 1", got)
	}

	h.inject(tcpFrame(src, dst, 5001, netpkt.TCPFlagSYN)) // proper open
	h.step()
	if len(h.captured) != 1 {
		t.Fatalf("SYN open not forwarded (%d frames)", len(h.captured))
	}
	ct := h.element("ct").(*elements.ConnTracker)
	if ct.Tracked != 1 || ct.Refused != 1 {
		t.Fatalf("tracked=%d refused=%d, want 1/1", ct.Tracked, ct.Refused)
	}
	if ct.FlowTableEntries() != 1 {
		t.Fatalf("occupancy %d, want 1", ct.FlowTableEntries())
	}
}

// With output 1 wired, refused packets take the refuse port instead of
// being killed.
func TestConnTrackerRefusePortWired(t *testing.T) {
	h := newHarness(t, ioWrap+`
ct :: ConnTracker(CAPACITY 64, STRICT true);
ref :: Counter;
input -> ct -> output;
ct[1] -> ref -> Discard;`,
		click.Copying)
	h.inject(tcpFrame(netpkt.IPv4{10, 0, 0, 1}, netpkt.IPv4{10, 1, 0, 1}, 5000, netpkt.TCPFlagACK))
	h.step()
	if got := h.element("ref").(*elements.Counter).Packets; got != 1 {
		t.Fatalf("refuse port saw %d packets, want 1", got)
	}
	if got := h.rt.DropStats.Get(stats.DropFlowTableInvalid); got != 0 {
		t.Fatalf("refused packet double-booked as drop (%d)", got)
	}
}

// A full table of protected established connections must refuse new
// flows under flow-table-full, not evict them.
func TestConnTrackerProtectedFullBooksDrop(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> ct :: ConnTracker(CAPACITY 4, PROTECT true) -> output;`,
		click.Copying)
	src := netpkt.IPv4{10, 0, 0, 1}
	dst := netpkt.IPv4{10, 1, 0, 1}
	for i := 0; i < 4; i++ {
		sport := uint16(6000 + i)
		h.inject(tcpFrame(src, dst, sport, netpkt.TCPFlagSYN))
		h.step()
		h.inject(tcpFrame(src, dst, sport, netpkt.TCPFlagACK))
		h.step()
	}
	ct := h.element("ct").(*elements.ConnTracker)
	if ct.FlowTableEntries() != 4 {
		t.Fatalf("occupancy %d, want 4", ct.FlowTableEntries())
	}
	h.inject(tcpFrame(src, dst, 7000, netpkt.TCPFlagSYN)) // fifth flow
	h.step()
	if got := h.rt.DropStats.Get(stats.DropFlowTableFull); got != 1 {
		t.Fatalf("flow-table-full drops = %d, want 1", got)
	}
	if ct.FlowTableEntries() != 4 {
		t.Fatalf("protected table changed size: %d", ct.FlowTableEntries())
	}
}

// The NAT must expire idle flows and recycle their external ports —
// the flow-table leak fix: under churn the table and the port pool
// reach steady state instead of filling once and dying.
func TestNATExpiresAndRecyclesPorts(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> nat :: IPRewriter(EXTIP 192.168.9.9, CAPACITY 64, UDP_MS 1) -> output;`,
		click.Copying)
	dst := netpkt.IPv4{10, 1, 0, 1}

	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, dst))
	h.step()
	nat := h.element("nat").(*elements.IPRewriter)
	if nat.FlowTableEntries() != 1 {
		t.Fatalf("occupancy %d after first flow", nat.FlowTableEntries())
	}

	// Idle past the 1 ms UDP timeout; the next Push's Advance sweeps.
	h.dut.Cores[0].Idle(h.dut.Cores[0].NowNS() + 5e6)
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 2}, dst))
	h.step()
	if nat.PortsRecycled != 1 {
		t.Fatalf("ports recycled = %d, want 1", nat.PortsRecycled)
	}
	if nat.FlowTableEntries() != 1 {
		t.Fatalf("occupancy %d, want 1 (first flow expired)", nat.FlowTableEntries())
	}

	// The first flow returns: it must be treated as new (fresh port),
	// proving its old mapping is gone, and the table must not leak.
	h.inject(udpFrame(100, netpkt.IPv4{10, 0, 0, 1}, dst))
	h.step()
	if nat.Flows != 3 {
		t.Fatalf("flows = %d, want 3 (reincarnation is a new flow)", nat.Flows)
	}
	if len(h.captured) != 3 {
		t.Fatalf("captured %d frames, want 3", len(h.captured))
	}
	p1 := h.captured[0][netpkt.EtherHdrLen+netpkt.IPv4HdrLen:]
	p3 := h.captured[2][netpkt.EtherHdrLen+netpkt.IPv4HdrLen:]
	if p1[0] == p3[0] && p1[1] == p3[1] {
		// Same source port would mean the old mapping survived expiry.
		t.Fatal("reincarnated flow reused the expired mapping's port")
	}
}

// Port recycling must keep the NAT alive through churn far beyond the
// table capacity — the "survives churn indefinitely" property.
func TestNATSurvivesChurnBeyondCapacity(t *testing.T) {
	h := newHarness(t, ioWrap+
		`input -> nat :: IPRewriter(EXTIP 192.168.9.9, CAPACITY 16, UDP_MS 1) -> output;`,
		click.Copying)
	dst := netpkt.IPv4{10, 1, 0, 1}
	const flows = 200
	for i := 0; i < flows; i++ {
		src := netpkt.IPv4{10, 0, byte(i >> 8), byte(i)}
		h.inject(udpFrame(100, src, dst))
		h.step()
		// Space flows out so expiry (not eviction) does most recycling.
		if i%8 == 7 {
			h.dut.Cores[0].Idle(h.dut.Cores[0].NowNS() + 2e6)
		}
	}
	nat := h.element("nat").(*elements.IPRewriter)
	if len(h.captured) != flows {
		t.Fatalf("captured %d frames, want %d — NAT stalled under churn", len(h.captured), flows)
	}
	if nat.FlowTableEntries() > 16 {
		t.Fatalf("table grew past capacity: %d", nat.FlowTableEntries())
	}
	rep := nat.FlowReport()
	if rep.Expirations == 0 && len(rep.Evictions) == 0 {
		t.Fatal("no expirations or evictions across 200 flows in a 16-entry table")
	}
	if nat.PortsRecycled == 0 {
		t.Fatal("no ports recycled")
	}
}
