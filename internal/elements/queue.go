// Queue and Unqueue: the push-to-pull boundary. A Queue stores packets in
// a ring of pointers (its own simulated memory); an Unqueue is a
// scheduled task that pulls a burst from its upstream pull port and
// pushes it on. Together they express Click's classic buffered pipelines.
package elements

import (
	"packetmill/internal/click"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
)

func init() {
	click.Register("Queue", func() click.Element { return &Queue{} })
	click.Register("Unqueue", func() click.Element { return &Unqueue{} })
}

// Queue buffers packets between a push producer and a pull consumer.
type Queue struct {
	click.Base
	Capacity int

	// buf is a fixed-capacity ring (head + count), allocated once in
	// Configure; the old slice-append/re-slice version leaked capacity
	// and reallocated under steady load.
	buf      []*pktbuf.Packet
	head     int
	count    int
	ringAddr memsim.Addr

	out, dead pktbuf.Batch // per-element scratch, reset each use

	// Drops counts packets killed on overflow (tail drop).
	Drops     uint64
	HighWater int

	// raised tracks whether this queue currently holds backpressure on
	// the core's overload controller (lossless pipelines only).
	raised bool
}

// Class implements click.Element.
func (e *Queue) Class() string { return "Queue" }

// NInputs implements click.Element.
func (e *Queue) NInputs() int { return 1 }

// NOutputs implements click.Element.
func (e *Queue) NOutputs() int { return 1 }

// Configure implements click.Element. Arg: capacity (default 1000, like
// Click).
func (e *Queue) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Capacity = 1000
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["CAPACITY"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Capacity = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.Capacity = n
	}
	if e.Capacity <= 0 {
		e.Capacity = 1
	}
	e.buf = make([]*pktbuf.Packet, e.Capacity)
	bc.AllocState(32, 1)
	e.ringAddr = bc.AllocAux(uint64(e.Capacity) * 8)
	return nil
}

// Push implements click.Element: enqueue with tail drop.
func (e *Queue) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.TouchState(ec, 0, 16) // head/tail indices
	dead := &e.dead
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if e.count >= e.Capacity {
			e.Drops++
			dead.Append(core, p)
			return true
		}
		core.Store(e.ringAddr+memsim.Addr(e.count%e.Capacity*8), 8)
		core.Compute(4)
		e.buf[(e.head+e.count)%e.Capacity] = p
		e.count++
		return true
	})
	if e.count > e.HighWater {
		e.HighWater = e.count
	}
	e.Inst.StoreState(ec, 0, 16)
	ec.Rt.Kill(ec, dead)
	e.updatePressure(ec)
}

// Pull implements click.PullElement: dequeue up to max.
func (e *Queue) Pull(ec *click.ExecCtx, _ int, max int) *pktbuf.Batch {
	core := ec.Core
	e.Inst.TouchState(ec, 0, 16)
	out := &e.out
	out.Reset()
	n := max
	if n > e.count {
		n = e.count
	}
	for i := 0; i < n; i++ {
		core.Load(e.ringAddr+memsim.Addr(i*8), 8)
		core.Compute(4)
		slot := (e.head + i) % e.Capacity
		out.Append(core, e.buf[slot])
		e.buf[slot] = nil
	}
	e.head = (e.head + n) % e.Capacity
	e.count -= n
	if n > 0 {
		e.Inst.StoreState(ec, 0, 16)
		e.updatePressure(ec)
	}
	return out
}

// Len reports the current queue depth.
func (e *Queue) Len() int { return e.count }

// OccupancyFrac reports the ring's fill fraction for the overload
// control plane.
func (e *Queue) OccupancyFrac() float64 {
	return float64(e.count) / float64(e.Capacity)
}

// updatePressure raises backpressure at the controller's high watermark
// and releases it at the low one (hysteresis), so a lossless pipeline
// pauses RX instead of tail-dropping here.
func (e *Queue) updatePressure(ec *click.ExecCtx) {
	ctl := ec.Rt.Overload
	if !ctl.Lossless() {
		return
	}
	high, low := ctl.Watermarks()
	occ := e.OccupancyFrac()
	switch {
	case !e.raised && occ >= high:
		e.raised = true
		ctl.RaisePressure(ec.Now)
	case e.raised && occ <= low:
		e.raised = false
		ctl.LowerPressure(ec.Now)
	}
}

// DrainRestart flushes the ring as part of the watchdog's
// drain-and-restart recovery, booking the flushed packets under
// overload-restart, and releases held backpressure.
func (e *Queue) DrainRestart(ec *click.ExecCtx) int {
	n := e.count
	for i := 0; i < n; i++ {
		slot := (e.head + i) % e.Capacity
		ec.Rt.KillPacket(ec, e.buf[slot], stats.DropOverloadRestart)
		e.buf[slot] = nil
	}
	e.head, e.count = 0, 0
	if e.raised {
		e.raised = false
		ec.Rt.Overload.LowerPressure(ec.Now)
	}
	return n
}

// Unqueue is the scheduled puller that drains a Queue into the push graph.
type Unqueue struct {
	click.Base
	Burst   int
	tickets int

	Pulled uint64
}

// Tickets implements click.TaskTickets.
func (e *Unqueue) Tickets() int { return e.tickets }

// Class implements click.Element.
func (e *Unqueue) Class() string { return "Unqueue" }

// NInputs implements click.Element.
func (e *Unqueue) NInputs() int { return 1 }

// NOutputs implements click.Element.
func (e *Unqueue) NOutputs() int { return 1 }

// PullsInput implements click.PullConsumer.
func (e *Unqueue) PullsInput(port int) bool { return port == 0 }

// Configure implements click.Element. Arg: BURST (default 32).
func (e *Unqueue) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.Burst = 32
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["BURST"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Burst = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.Burst = n
	}
	if v, ok := kw["TICKETS"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.tickets = n
	}
	bc.AllocState(16, 1)
	return nil
}

// Push implements click.Element (never pushed into; pull input).
func (e *Unqueue) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	// A push into a pull input is rejected at build time; killing here
	// keeps buffer accounting sound if it ever happens.
	ec.Rt.Kill(ec, b)
}

// RunTask implements click.Task: pull one burst and push it downstream.
func (e *Unqueue) RunTask(ec *click.ExecCtx) int {
	in := e.Inst.Input(0)
	if in == nil {
		return 0
	}
	e.Inst.LoadParam(ec, 0)
	b := in.Pull(ec, e.Burst)
	if b == nil || b.Empty() {
		return 0
	}
	n := b.Count()
	e.Pulled += uint64(n)
	e.Inst.Output(ec, 0, b)
	return n
}
