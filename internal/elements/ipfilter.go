// IPFilter: Click's rule-based packet filter. Each configuration argument
// is one rule — an action followed by a conjunction of predicates — and
// the first matching rule decides a packet's fate:
//
//	IPFilter(allow src net 10.0.0.0/8 && dst port 80,
//	         drop tcp && src port 23,
//	         1 icmp,
//	         deny all)
//
// Actions: `allow` (output 0), `drop`/`deny` (kill), or an output port
// number. Predicates: `tcp`, `udp`, `icmp`, `src|dst host A`,
// `src|dst net A/L`, `src|dst port N`, `all`/`any`, each optionally
// negated with a leading `!`.
package elements

import (
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("IPFilter", func() click.Element { return &IPFilter{} })
}

// predKind enumerates predicate types.
type predKind int

const (
	predAll predKind = iota
	predProto
	predHost
	predNet
	predPort
)

// pred is one compiled predicate.
type pred struct {
	kind   predKind
	negate bool
	src    bool // src vs dst (host/net/port)
	proto  uint8
	addr   uint32
	mask   uint32
	port   uint16
}

// rule is one compiled filter rule.
type rule struct {
	outPort int // -1 = drop
	preds   []pred
}

// IPFilter evaluates compiled rules against each packet.
type IPFilter struct {
	click.Base
	rules []rule
	nOut  int

	// Matched counts per-rule hits (index-aligned with the rules).
	Matched []uint64
	// Dropped counts packets killed by drop rules or no-match.
	Dropped uint64

	outs []pktbuf.Batch // per-output scratch, reset each push
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *IPFilter) Class() string { return "IPFilter" }

// BatchAware implements click.BatchElement: rule evaluation is per packet.
func (e *IPFilter) BatchAware() bool { return false }

// NOutputs implements click.Element.
func (e *IPFilter) NOutputs() int { return e.nOut }

// Configure implements click.Element.
func (e *IPFilter) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) == 0 {
		return fmt.Errorf("IPFilter: no rules")
	}
	e.nOut = 1
	for _, a := range args {
		r, err := parseRule(a)
		if err != nil {
			return fmt.Errorf("IPFilter: %w", err)
		}
		if r.outPort+1 > e.nOut {
			e.nOut = r.outPort + 1
		}
		e.rules = append(e.rules, r)
	}
	e.Matched = make([]uint64, len(e.rules))
	e.outs = make([]pktbuf.Batch, e.nOut)
	// The compiled classification program lives in element state.
	bc.AllocState(uint64(32*len(e.rules)), 1)
	return nil
}

// parseRule compiles "action pred [&& pred]...".
func parseRule(s string) (rule, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return rule{}, fmt.Errorf("empty rule")
	}
	r := rule{}
	switch fields[0] {
	case "allow":
		r.outPort = 0
	case "drop", "deny":
		r.outPort = -1
	default:
		n, err := click.ParseInt(fields[0])
		if err != nil || n < 0 {
			return rule{}, fmt.Errorf("bad action %q", fields[0])
		}
		r.outPort = n
	}
	toks := fields[1:]
	if len(toks) == 0 {
		return rule{}, fmt.Errorf("rule %q has no predicates", s)
	}
	for len(toks) > 0 {
		if toks[0] == "&&" || toks[0] == "and" {
			toks = toks[1:]
			continue
		}
		p := pred{}
		if toks[0] == "!" {
			p.negate = true
			toks = toks[1:]
			if len(toks) == 0 {
				return rule{}, fmt.Errorf("dangling '!' in %q", s)
			}
		} else if strings.HasPrefix(toks[0], "!") {
			p.negate = true
			toks[0] = toks[0][1:]
		}
		switch toks[0] {
		case "all", "any":
			p.kind = predAll
			toks = toks[1:]
		case "tcp":
			p.kind, p.proto = predProto, netpkt.ProtoTCP
			toks = toks[1:]
		case "udp":
			p.kind, p.proto = predProto, netpkt.ProtoUDP
			toks = toks[1:]
		case "icmp":
			p.kind, p.proto = predProto, netpkt.ProtoICMP
			toks = toks[1:]
		case "src", "dst":
			p.src = toks[0] == "src"
			if len(toks) < 3 {
				return rule{}, fmt.Errorf("truncated predicate in %q", s)
			}
			what, arg := toks[1], toks[2]
			toks = toks[3:]
			switch what {
			case "host":
				ip, err := netpkt.ParseIPv4(arg)
				if err != nil {
					return rule{}, err
				}
				p.kind, p.addr, p.mask = predHost, ip.Uint32(), ^uint32(0)
			case "net":
				slash := strings.IndexByte(arg, '/')
				if slash < 0 {
					return rule{}, fmt.Errorf("net %q needs a /length", arg)
				}
				ip, err := netpkt.ParseIPv4(arg[:slash])
				if err != nil {
					return rule{}, err
				}
				l, err := click.ParseInt(arg[slash+1:])
				if err != nil || l < 0 || l > 32 {
					return rule{}, fmt.Errorf("bad prefix length in %q", arg)
				}
				p.kind = predNet
				if l == 0 {
					p.mask = 0
				} else {
					p.mask = ^uint32(0) << (32 - l)
				}
				p.addr = ip.Uint32() & p.mask
			case "port":
				n, err := click.ParseInt(arg)
				if err != nil || n < 0 || n > 65535 {
					return rule{}, fmt.Errorf("bad port %q", arg)
				}
				p.kind, p.port = predPort, uint16(n)
			default:
				return rule{}, fmt.Errorf("unknown qualifier %q", what)
			}
		default:
			return rule{}, fmt.Errorf("unknown predicate %q", toks[0])
		}
		r.preds = append(r.preds, p)
	}
	return r, nil
}

// pktView is the parsed header view rule evaluation works on.
type pktView struct {
	valid            bool
	proto            uint8
	src, dst         uint32
	srcPort, dstPort uint16
	hasPorts         bool
}

func (e *IPFilter) view(ec *click.ExecCtx, p *pktbuf.Packet) pktView {
	var v pktView
	l4, proto, _, ok := ipHeaderAt(ec, p, netpkt.EtherHdrLen)
	if !ok {
		return v
	}
	hdr := p.Load(ec.Core, netpkt.EtherHdrLen+12, 8)
	v.valid = true
	v.proto = proto
	v.src = uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
	v.dst = uint32(hdr[4])<<24 | uint32(hdr[5])<<16 | uint32(hdr[6])<<8 | uint32(hdr[7])
	if (proto == netpkt.ProtoTCP || proto == netpkt.ProtoUDP) && p.Len() >= l4+4 {
		ports := p.Load(ec.Core, l4, 4)
		v.srcPort = uint16(ports[0])<<8 | uint16(ports[1])
		v.dstPort = uint16(ports[2])<<8 | uint16(ports[3])
		v.hasPorts = true
	}
	return v
}

func (p pred) match(v pktView) bool {
	var m bool
	switch p.kind {
	case predAll:
		m = true
	case predProto:
		m = v.valid && v.proto == p.proto
	case predHost, predNet:
		a := v.dst
		if p.src {
			a = v.src
		}
		m = v.valid && a&p.mask == p.addr
	case predPort:
		pt := v.dstPort
		if p.src {
			pt = v.srcPort
		}
		m = v.valid && v.hasPorts && pt == p.port
	}
	if p.negate {
		return !m
	}
	return m
}

// Push implements click.Element.
func (e *IPFilter) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	e.Inst.TouchState(ec, 0, uint64(16*len(e.rules)))
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		v := e.view(ec, p)
		decided := false
		for i, r := range e.rules {
			ok := true
			for _, pr := range r.preds {
				core.Compute(5)
				if !pr.match(v) {
					ok = false
					break
				}
			}
			if ok {
				e.Matched[i]++
				if r.outPort < 0 {
					e.Dropped++
					dead.Append(core, p)
				} else {
					outs[r.outPort].Append(core, p)
				}
				decided = true
				break
			}
		}
		if !decided { // Click's IPFilter drops unmatched packets
			e.Dropped++
			dead.Append(core, p)
		}
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}
