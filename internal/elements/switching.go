// Switching and shaping elements: Switch, RoundRobinSwitch, PaintSwitch,
// Pad, Truncate — the small utility classes Click configurations lean on.
package elements

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("Switch", func() click.Element { return &Switch{} })
	click.Register("RoundRobinSwitch", func() click.Element { return &RoundRobinSwitch{} })
	click.Register("PaintSwitch", func() click.Element { return &PaintSwitch{} })
	click.Register("Pad", func() click.Element { return &Pad{} })
	click.Register("Truncate", func() click.Element { return &Truncate{} })
}

// Switch sends every packet to one statically selected output (−1 drops
// everything), Click's runtime-steerable demux in its simplest form.
type Switch struct {
	click.Base
	Port int
	nOut int
}

// Class implements click.Element.
func (e *Switch) Class() string { return "Switch" }

// Configure implements click.Element. Args: output port [, N_OUTPUTS].
func (e *Switch) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.nOut = -1
	_, pos := click.KeywordArgs(args)
	if len(pos) < 1 {
		return fmt.Errorf("Switch: want an output port argument")
	}
	n, err := click.ParseInt(pos[0])
	if err != nil {
		return err
	}
	e.Port = n
	if len(pos) > 1 {
		if e.nOut, err = click.ParseInt(pos[1]); err != nil {
			return err
		}
		if e.Port >= e.nOut {
			return fmt.Errorf("Switch: port %d out of range for %d outputs", e.Port, e.nOut)
		}
	}
	bc.AllocState(8, 1)
	return nil
}

// NOutputs implements click.Element.
func (e *Switch) NOutputs() int { return e.nOut }

// Push implements click.Element.
func (e *Switch) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	e.Inst.LoadParam(ec, 0)
	if e.Port < 0 {
		ec.Rt.Kill(ec, b)
		return
	}
	e.CheckedOutput(ec, e.Port, b)
}

// RoundRobinSwitch spreads successive batches across its outputs.
type RoundRobinSwitch struct {
	click.Base
	nOut int
	next int
}

// Class implements click.Element.
func (e *RoundRobinSwitch) Class() string { return "RoundRobinSwitch" }

// Configure implements click.Element. Arg: number of outputs.
func (e *RoundRobinSwitch) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("RoundRobinSwitch: want an output-count argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("RoundRobinSwitch: need at least one output")
	}
	e.nOut = n
	bc.AllocState(8, 1)
	return nil
}

// NOutputs implements click.Element.
func (e *RoundRobinSwitch) NOutputs() int { return e.nOut }

// Push implements click.Element.
func (e *RoundRobinSwitch) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	e.Inst.TouchState(ec, 0, 8)
	port := e.next
	e.next = (e.next + 1) % e.nOut
	e.Inst.StoreState(ec, 0, 8)
	ec.Core.Compute(3)
	e.CheckedOutput(ec, port, b)
}

// PaintSwitch demuxes on the paint annotation.
type PaintSwitch struct {
	click.Base
	nOut int

	outs []pktbuf.Batch // per-output scratch, reset each push
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *PaintSwitch) Class() string { return "PaintSwitch" }

// BatchAware implements click.BatchElement: per-packet decision.
func (e *PaintSwitch) BatchAware() bool { return false }

// Configure implements click.Element. Arg: number of outputs.
func (e *PaintSwitch) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("PaintSwitch: want an output-count argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("PaintSwitch: need at least one output")
	}
	e.nOut = n
	e.outs = make([]pktbuf.Batch, n)
	bc.AllocState(8, 0)
	return nil
}

// NOutputs implements click.Element.
func (e *PaintSwitch) NOutputs() int { return e.nOut }

// Push implements click.Element.
func (e *PaintSwitch) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		core.Compute(3)
		color := -1
		if p.Meta.L.Has(layout.FieldAnnoPaint) {
			color = int(p.Meta.Get(core, layout.FieldAnnoPaint))
		}
		if color < 0 || color >= e.nOut {
			dead.Append(core, p)
			return true
		}
		outs[color].Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}

// Pad extends short frames to a minimum length with zero bytes (tailroom
// permitting) — Ethernet's 64-byte floor for synthesized packets.
type Pad struct {
	click.Base
	MinLen int
}

// Class implements click.Element.
func (e *Pad) Class() string { return "Pad" }

// Configure implements click.Element. Arg: minimum length (default 60,
// Click's pre-FCS minimum).
func (e *Pad) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.MinLen = 60
	if len(args) > 0 {
		n, err := click.ParseInt(args[0])
		if err != nil {
			return err
		}
		e.MinLen = n
	}
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *Pad) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() < e.MinLen && p.Tailroom() >= e.MinLen-p.Len() {
			old := p.Len()
			p.Extend(e.MinLen - old)
			pad := p.Store(core, old, e.MinLen-old)
			for i := range pad {
				pad[i] = 0
			}
			core.Compute(4)
			// Keep the descriptor's length fields coherent.
			if p.Meta.L.Has(layout.FieldDataLen) {
				p.Meta.Set(core, layout.FieldDataLen, uint64(p.Len()))
			}
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// Truncate chops frames to a maximum length.
type Truncate struct {
	click.Base
	MaxLen int
}

// Class implements click.Element.
func (e *Truncate) Class() string { return "Truncate" }

// Configure implements click.Element. Arg: maximum length.
func (e *Truncate) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("Truncate: want a length argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("Truncate: negative length")
	}
	e.MaxLen = n
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *Truncate) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() > e.MaxLen {
			p.Trim(e.MaxLen)
			core.Compute(3)
			if p.Meta.L.Has(layout.FieldDataLen) {
				p.Meta.Set(core, layout.FieldDataLen, uint64(p.Len()))
			}
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}
