// IP-layer elements: Strip/Unstrip, CheckIPHeader, DecIPTTL,
// LookupIPRoute — the spine of the standard router (Appendix A.2).
package elements

import (
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/lpm"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("Strip", func() click.Element { return &Strip{} })
	click.Register("Unstrip", func() click.Element { return &Unstrip{} })
	click.Register("CheckIPHeader", func() click.Element { return &CheckIPHeader{} })
	click.Register("DecIPTTL", func() click.Element { return &DecIPTTL{} })
	click.Register("LookupIPRoute", func() click.Element { return &LookupIPRoute{} })
}

// Strip removes n bytes from the front of each packet.
type Strip struct {
	click.Base
	N int
}

// Class implements click.Element.
func (e *Strip) Class() string { return "Strip" }

// Configure implements click.Element.
func (e *Strip) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("Strip: want one length argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	e.N = n
	bc.AllocState(0, 1)
	return nil
}

// Push implements click.Element.
func (e *Strip) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	e.Inst.LoadParam(ec, 0)
	b.ForEach(ec.Core, func(p *pktbuf.Packet) bool {
		if p.Len() >= e.N {
			p.Pull(e.N)
		}
		ec.Core.Compute(6)
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// Unstrip restores n bytes at the front.
type Unstrip struct {
	click.Base
	N int
}

// Class implements click.Element.
func (e *Unstrip) Class() string { return "Unstrip" }

// Configure implements click.Element.
func (e *Unstrip) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("Unstrip: want one length argument")
	}
	n, err := click.ParseInt(args[0])
	if err != nil {
		return err
	}
	e.N = n
	bc.AllocState(0, 1)
	return nil
}

// Push implements click.Element.
func (e *Unstrip) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	e.Inst.LoadParam(ec, 0)
	b.ForEach(ec.Core, func(p *pktbuf.Packet) bool {
		if p.Headroom() >= e.N {
			p.Push(e.N)
		}
		ec.Core.Compute(6)
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// CheckIPHeader validates the IPv4 header (version, IHL, length, full
// checksum) and records the network-header annotation. Bad packets go to
// output 1 or die.
type CheckIPHeader struct {
	click.Base
	Offset int

	// Bad counts rejected packets.
	Bad uint64

	good, bad pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *CheckIPHeader) Class() string { return "CheckIPHeader" }

// Configure implements click.Element. Args: [OFFSET n].
func (e *CheckIPHeader) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["OFFSET"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.Offset = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.Offset = n
	}
	bc.AllocState(16, 1)
	return nil
}

// Push implements click.Element.
func (e *CheckIPHeader) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	good, bad := &e.good, &e.bad
	good.Reset()
	bad.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() < e.Offset+netpkt.IPv4HdrLen {
			e.Bad++
			bad.Append(core, p)
			return true
		}
		hdr := p.Load(core, e.Offset, netpkt.IPv4HdrLen)
		// Version/IHL/length checks plus the ten-add checksum walk.
		core.Compute(64)
		h, _, err := netpkt.ParseIPv4Header(hdr)
		if err != nil || !netpkt.VerifyIPv4Checksum(hdr) ||
			int(h.TotalLen) > p.Len()-e.Offset || int(h.TotalLen) < netpkt.IPv4HdrLen {
			e.Bad++
			bad.Append(core, p)
			return true
		}
		if p.Meta.L.Has(layout.FieldNetworkHeader) {
			p.Meta.Set(core, layout.FieldNetworkHeader, uint64(p.DataAddr())+uint64(e.Offset))
		}
		// The destination-address annotation feeds LookupIPRoute, as in
		// Click's SetIPAddress/CheckIPHeader convention.
		if p.Meta.L.Has(layout.FieldAnnoDstIP) {
			p.Meta.Set(core, layout.FieldAnnoDstIP, uint64(h.Dst.Uint32()))
		}
		good.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, bad)
	if !good.Empty() {
		e.Inst.Output(ec, 0, good)
	}
}

// DecIPTTL decrements TTL with an incremental checksum patch; expired
// packets go to output 1 or die.
type DecIPTTL struct {
	click.Base
	Offset int

	// Expired counts TTL-exceeded packets.
	Expired uint64

	live, dead pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *DecIPTTL) Class() string { return "DecIPTTL" }

// Configure implements click.Element.
func (e *DecIPTTL) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) > 0 {
		n, err := click.ParseInt(args[0])
		if err != nil {
			return err
		}
		e.Offset = n
	}
	bc.AllocState(8, 1)
	return nil
}

// Push implements click.Element.
func (e *DecIPTTL) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	live, dead := &e.live, &e.dead
	live.Reset()
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() < e.Offset+netpkt.IPv4HdrLen {
			dead.Append(core, p)
			return true
		}
		hdr := p.Load(core, e.Offset, netpkt.IPv4HdrLen)
		core.Compute(22)
		if !netpkt.DecrementTTL(hdr) {
			e.Expired++
			dead.Append(core, p)
			return true
		}
		p.Store(core, e.Offset+8, 4) // dirty TTL+checksum bytes
		live.Append(core, p)
		return true
	})
	e.CheckedOutput(ec, 1, dead)
	if !live.Empty() {
		e.Inst.Output(ec, 0, live)
	}
}

// LookupIPRoute routes on the destination-address annotation through a
// DIR-24-8 table; output port = route's port argument. Like Click's
// lookup elements it decides packet by packet, so the vanilla binary pays
// per-packet virtual dispatch here.
type LookupIPRoute struct {
	click.Base
	table  *lpm.Table
	nports int

	outs []pktbuf.Batch // per-output scratch, reset each push
	dead pktbuf.Batch
}

// Class implements click.Element.
func (e *LookupIPRoute) Class() string { return "LookupIPRoute" }

// BatchAware implements click.BatchElement.
func (e *LookupIPRoute) BatchAware() bool { return false }

// parseRouteArg parses one route argument — "prefix/len port" or
// "prefix/len gateway port" — shared with the fused IP path element.
func parseRouteArg(a string) (prefix netpkt.IPv4, length int, nh lpm.NextHop, err error) {
	fields := strings.Fields(a)
	if len(fields) < 2 || len(fields) > 3 {
		return prefix, 0, nh, fmt.Errorf("LookupIPRoute: bad route %q", a)
	}
	length = 32
	addr := fields[0]
	if i := strings.IndexByte(addr, '/'); i >= 0 {
		var n int
		if n, err = click.ParseInt(addr[i+1:]); err != nil {
			return prefix, 0, nh, err
		}
		length = n
		addr = addr[:i]
	}
	if prefix, err = netpkt.ParseIPv4(addr); err != nil {
		return prefix, 0, nh, err
	}
	if len(fields) == 3 {
		var gw netpkt.IPv4
		if gw, err = netpkt.ParseIPv4(fields[1]); err != nil {
			return prefix, 0, nh, err
		}
		nh.Gateway = gw.Uint32()
		if nh.Port, err = click.ParseInt(fields[2]); err != nil {
			return prefix, 0, nh, err
		}
	} else {
		if nh.Port, err = click.ParseInt(fields[1]); err != nil {
			return prefix, 0, nh, err
		}
	}
	return prefix, length, nh, nil
}

// Configure implements click.Element. Each arg: "prefix/len port" or
// "prefix/len gateway port".
func (e *LookupIPRoute) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) == 0 {
		return fmt.Errorf("LookupIPRoute: no routes")
	}
	e.table = lpm.New(bc.Huge)
	for _, a := range args {
		prefix, length, nh, err := parseRouteArg(a)
		if err != nil {
			return err
		}
		if err := e.table.AddRoute(prefix.Uint32(), length, nh); err != nil {
			return err
		}
		if nh.Port+1 > e.nports {
			e.nports = nh.Port + 1
		}
	}
	bc.AllocState(64, 1)
	e.outs = make([]pktbuf.Batch, e.nports)
	return nil
}

// NOutputs implements click.Element.
func (e *LookupIPRoute) NOutputs() int { return e.nports }

// Push implements click.Element.
func (e *LookupIPRoute) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	dead := &e.dead
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		var dst uint32
		if p.Meta.L.Has(layout.FieldAnnoDstIP) {
			dst = uint32(p.Meta.Get(core, layout.FieldAnnoDstIP))
		} else if p.Len() >= 20 {
			// No annotation space (minimal descriptors): reread the
			// header.
			hdr := p.Load(core, 16, 4)
			dst = uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		}
		core.Compute(18)
		nh, ok := e.table.Lookup(core, dst)
		if !ok || nh.Port >= e.nports {
			dead.Append(core, p)
			return true
		}
		// Record the gateway for ARPQuerier, like SetIPAddress does.
		if nh.Gateway != 0 && p.Meta.L.Has(layout.FieldAnnoDstIP) {
			p.Meta.Set(core, layout.FieldAnnoDstIP, uint64(nh.Gateway))
		}
		outs[nh.Port].Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}
