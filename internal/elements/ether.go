// Ethernet-layer elements: EtherMirror, EtherRewrite, EtherEncap,
// DropBroadcasts, Classifier, ARPResponder, ARPQuerier.
package elements

import (
	"encoding/binary"
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
)

func init() {
	click.Register("EtherMirror", func() click.Element { return &EtherMirror{} })
	click.Register("EtherRewrite", func() click.Element { return &EtherRewrite{} })
	click.Register("EtherEncap", func() click.Element { return &EtherEncap{} })
	click.Register("DropBroadcasts", func() click.Element { return &DropBroadcasts{} })
	click.Register("Classifier", func() click.Element { return &Classifier{} })
	click.Register("ARPResponder", func() click.Element { return &ARPResponder{} })
	click.Register("ARPQuerier", func() click.Element { return &ARPQuerier{} })
}

// EtherMirror swaps source and destination MAC addresses — the simple
// forwarder's only work (Appendix A.1 uses EtherRewrite; §3.2's Listing 3
// uses EtherMirror; both are provided).
type EtherMirror struct {
	click.Base
}

// Class implements click.Element.
func (e *EtherMirror) Class() string { return "EtherMirror" }

// Configure implements click.Element.
func (e *EtherMirror) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(0, 0)
	return nil
}

// Push implements click.Element.
func (e *EtherMirror) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Load(core, 0, 12)
			p.Store(core, 0, 12)
			netpkt.SwapEtherAddrs(hdr)
			core.Compute(20)
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// EtherRewrite overwrites both MAC addresses with configured constants
// (the simple forwarder of Appendix A.1).
type EtherRewrite struct {
	click.Base
	Src, Dst netpkt.MAC
}

// Class implements click.Element.
func (e *EtherRewrite) Class() string { return "EtherRewrite" }

// Configure implements click.Element. Args: SRC mac, DST mac (or two
// positional MACs: src, dst).
func (e *EtherRewrite) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	kw, pos := click.KeywordArgs(args)
	var err error
	src, dst := "02:00:00:00:00:01", "02:00:00:00:00:02"
	if v, ok := kw["SRC"]; ok {
		src = v
	} else if len(pos) > 0 {
		src = pos[0]
	}
	if v, ok := kw["DST"]; ok {
		dst = v
	} else if len(pos) > 1 {
		dst = pos[1]
	}
	if e.Src, err = netpkt.ParseMAC(src); err != nil {
		return err
	}
	if e.Dst, err = netpkt.ParseMAC(dst); err != nil {
		return err
	}
	bc.AllocState(16, 2)
	return nil
}

// Push implements click.Element.
func (e *EtherRewrite) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	e.Inst.LoadParam(ec, 1)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Store(core, 0, 12)
			copy(hdr[0:6], e.Dst[:])
			copy(hdr[6:12], e.Src[:])
			core.Compute(14)
		}
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// EtherEncap prepends a fresh Ethernet header (after Strip in the router
// graph).
type EtherEncap struct {
	click.Base
	EtherType uint16
	Src, Dst  netpkt.MAC
}

// Class implements click.Element.
func (e *EtherEncap) Class() string { return "EtherEncap" }

// Configure implements click.Element. Args: ethertype, src, dst.
func (e *EtherEncap) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	_, pos := click.KeywordArgs(args)
	if len(pos) != 3 {
		return fmt.Errorf("EtherEncap: want ETHERTYPE SRC DST, got %d args", len(pos))
	}
	var et int
	if _, err := fmt.Sscanf(strings.TrimPrefix(pos[0], "0x"), "%x", &et); err != nil {
		return fmt.Errorf("EtherEncap: bad ethertype %q", pos[0])
	}
	e.EtherType = uint16(et)
	var err error
	if e.Src, err = netpkt.ParseMAC(pos[1]); err != nil {
		return err
	}
	if e.Dst, err = netpkt.ParseMAC(pos[2]); err != nil {
		return err
	}
	bc.AllocState(16, 3)
	return nil
}

// Push implements click.Element.
func (e *EtherEncap) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.Inst.LoadParam(ec, 0)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		p.Push(netpkt.EtherHdrLen)
		hdr := p.Store(core, 0, netpkt.EtherHdrLen)
		netpkt.PutEther(hdr, netpkt.EtherHeader{Dst: e.Dst, Src: e.Src, EtherType: e.EtherType})
		core.Compute(16)
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// DropBroadcasts kills frames whose destination has the group bit set.
type DropBroadcasts struct {
	click.Base
	// keep/dead are per-element scratch: stack batches would escape
	// through the Output/Kill interface calls and allocate every push.
	keep, dead pktbuf.Batch
}

// Class implements click.Element.
func (e *DropBroadcasts) Class() string { return "DropBroadcasts" }

// Configure implements click.Element.
func (e *DropBroadcasts) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	bc.AllocState(0, 0)
	return nil
}

// Push implements click.Element.
func (e *DropBroadcasts) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	keep, dead := &e.keep, &e.dead
	keep.Reset()
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		hdr := p.Load(core, 0, 1)
		core.Compute(8)
		if hdr[0]&1 == 1 {
			dead.Append(core, p)
		} else {
			keep.Append(core, p)
		}
		return true
	})
	ec.Rt.Kill(ec, dead)
	if !keep.Empty() {
		e.Inst.Output(ec, 0, keep)
	}
}

// Classifier dispatches packets by byte patterns ("offset/value" in hex,
// "-" for the catch-all), the front door of the standard router:
//
//	Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -)
type Classifier struct {
	click.Base
	patterns [][]match
	hasDash  bool
	dashPort int
	// outs/dead are reusable per-port scratch batches (allocated once in
	// Configure) so the per-push make and per-unmatched-packet batch
	// don't churn the heap.
	outs []pktbuf.Batch
	dead pktbuf.Batch
}

type match struct {
	offset int
	value  []byte
}

// Class implements click.Element.
func (e *Classifier) Class() string { return "Classifier" }

// BatchAware implements click.BatchElement: Click's classifier decides
// packet by packet, so the vanilla binary pays per-packet dispatch here.
func (e *Classifier) BatchAware() bool { return false }

// Configure implements click.Element.
func (e *Classifier) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) == 0 {
		return fmt.Errorf("Classifier: no patterns")
	}
	for i, a := range args {
		a = strings.TrimSpace(a)
		if a == "-" {
			e.patterns = append(e.patterns, nil)
			e.hasDash, e.dashPort = true, i
			continue
		}
		var ms []match
		for _, part := range strings.Fields(a) {
			var off int
			var hexStr string
			if _, err := fmt.Sscanf(part, "%d/%s", &off, &hexStr); err != nil {
				return fmt.Errorf("Classifier: bad pattern %q", part)
			}
			if len(hexStr)%2 != 0 {
				return fmt.Errorf("Classifier: odd hex in %q", part)
			}
			val := make([]byte, len(hexStr)/2)
			for j := 0; j < len(val); j++ {
				var b int
				if _, err := fmt.Sscanf(hexStr[2*j:2*j+2], "%02x", &b); err != nil {
					return fmt.Errorf("Classifier: bad hex in %q", part)
				}
				val[j] = byte(b)
			}
			ms = append(ms, match{offset: off, value: val})
		}
		e.patterns = append(e.patterns, ms)
	}
	// The decision DAG lives in element state; size scales with patterns.
	bc.AllocState(uint64(64*len(e.patterns)), 1)
	e.outs = make([]pktbuf.Batch, len(e.patterns))
	return nil
}

// NOutputs implements click.Element.
func (e *Classifier) NOutputs() int { return len(e.patterns) }

// Push implements click.Element.
func (e *Classifier) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	outs := e.outs
	for i := range outs {
		outs[i].Reset()
	}
	// Walking the decision DAG touches the element's pattern table.
	e.Inst.TouchState(ec, 0, uint64(16*len(e.patterns)))
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		port := -1
		for i, ms := range e.patterns {
			if ms == nil {
				continue // dash matches only if nothing else did
			}
			ok := true
			for _, m := range ms {
				core.Compute(10)
				if m.offset+len(m.value) > p.Len() {
					ok = false
					break
				}
				got := p.Load(core, m.offset, len(m.value))
				for j := range m.value {
					if got[j] != m.value[j] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				port = i
				break
			}
		}
		if port < 0 && e.hasDash {
			port = e.dashPort
		}
		if port < 0 {
			e.dead.Reset()
			e.dead.Append(core, p)
			ec.Rt.Kill(ec, &e.dead)
			return true
		}
		outs[port].Append(core, p)
		return true
	})
	for i := range outs {
		if !outs[i].Empty() {
			e.CheckedOutput(ec, i, &outs[i])
		}
	}
}

// ARPResponder answers ARP requests for a configured address (the router's
// control path).
type ARPResponder struct {
	click.Base
	IP  netpkt.IPv4
	MAC netpkt.MAC

	replies, dead pktbuf.Batch // per-element scratch, reset each push
}

// Class implements click.Element.
func (e *ARPResponder) Class() string { return "ARPResponder" }

// Configure implements click.Element. Arg: "ip mac".
func (e *ARPResponder) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	if len(args) != 1 {
		return fmt.Errorf("ARPResponder: want one \"IP MAC\" entry")
	}
	fields := strings.Fields(args[0])
	if len(fields) != 2 {
		return fmt.Errorf("ARPResponder: bad entry %q", args[0])
	}
	var err error
	if e.IP, err = netpkt.ParseIPv4(fields[0]); err != nil {
		return err
	}
	if e.MAC, err = netpkt.ParseMAC(fields[1]); err != nil {
		return err
	}
	bc.AllocState(64, 1)
	return nil
}

// Push implements click.Element: rewrites requests into replies in place.
func (e *ARPResponder) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	replies, dead := &e.replies, &e.dead
	replies.Reset()
	dead.Reset()
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		if p.Len() < netpkt.EtherHdrLen+netpkt.ARPLen {
			dead.Append(core, p)
			return true
		}
		body := p.Load(core, netpkt.EtherHdrLen, netpkt.ARPLen)
		req, err := netpkt.ParseARP(body)
		if err != nil || req.Op != netpkt.ARPRequest || req.TargetIP != e.IP {
			dead.Append(core, p)
			return true
		}
		// Build the reply in place.
		hdr := p.Store(core, 0, netpkt.EtherHdrLen+netpkt.ARPLen)
		netpkt.PutEther(hdr, netpkt.EtherHeader{Dst: req.SenderHA, Src: e.MAC, EtherType: netpkt.EtherTypeARP})
		netpkt.PutARP(hdr[netpkt.EtherHdrLen:], netpkt.ARPPacket{
			Op: netpkt.ARPReply, SenderHA: e.MAC, SenderIP: e.IP,
			TargetHA: req.SenderHA, TargetIP: req.SenderIP,
		})
		core.Compute(40)
		replies.Append(core, p)
		return true
	})
	ec.Rt.Kill(ec, dead)
	if !replies.Empty() {
		e.Inst.Output(ec, 0, replies)
	}
}

// ARPQuerier encapsulates IP packets with an Ethernet header using a
// (statically resolved) neighbour table — the router's egress element.
// Input 1, when wired, accepts ARP replies to refresh the table.
type ARPQuerier struct {
	click.Base
	IP  netpkt.IPv4
	MAC netpkt.MAC
	// nextHopMAC is what every data packet gets as destination; real
	// Click resolves per-gateway, our testbed has one peer per port.
	nextHopMAC netpkt.MAC
	tableAddr  uint64
}

// Class implements click.Element.
func (e *ARPQuerier) Class() string { return "ARPQuerier" }

// Configure implements click.Element. Args: IP, MAC.
func (e *ARPQuerier) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	_, pos := click.KeywordArgs(args)
	if len(pos) != 2 {
		return fmt.Errorf("ARPQuerier: want IP MAC")
	}
	var err error
	if e.IP, err = netpkt.ParseIPv4(pos[0]); err != nil {
		return err
	}
	if e.MAC, err = netpkt.ParseMAC(pos[1]); err != nil {
		return err
	}
	// The generator's MAC is the peer in our two-node testbed.
	e.nextHopMAC = netpkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	st := bc.AllocState(256, 2) // neighbour table
	e.tableAddr = uint64(st.Base) + 64
	return nil
}

// Push implements click.Element.
func (e *ARPQuerier) Push(ec *click.ExecCtx, port int, b *pktbuf.Batch) {
	core := ec.Core
	if port == 1 {
		// ARP replies refresh the neighbour table.
		b.ForEach(core, func(p *pktbuf.Packet) bool {
			body := p.Load(core, netpkt.EtherHdrLen, netpkt.ARPLen)
			if rep, err := netpkt.ParseARP(body); err == nil && rep.Op == netpkt.ARPReply {
				e.nextHopMAC = rep.SenderHA
				e.Inst.StoreState(ec, 64, 16)
			}
			return true
		})
		ec.Rt.Kill(ec, b)
		return
	}
	// Data path: prepend Ethernet, reading the neighbour entry.
	e.Inst.TouchState(ec, 64, 16)
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		p.Push(netpkt.EtherHdrLen)
		hdr := p.Store(core, 0, netpkt.EtherHdrLen)
		netpkt.PutEther(hdr, netpkt.EtherHeader{Dst: e.nextHopMAC, Src: e.MAC, EtherType: netpkt.EtherTypeIPv4})
		core.Compute(24)
		return true
	})
	e.Inst.Output(ec, 0, b)
}

// readU16 is a small helper some elements share.
func readU16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }
