// ConnTracker: a standalone connection-tracking element over the
// conntrack state plane. It classifies every packet against the
// per-core flow shard, annotates the paint field with the flow's TCP
// state, and refuses what the policy rejects — strict-mode mid-stream
// pickups and table-pressure overflow — either out a dedicated refuse
// port or into the DropFlowTable* taxonomy.
package elements

import (
	"encoding/binary"

	"packetmill/internal/click"
	"packetmill/internal/conntrack"
	"packetmill/internal/cuckoo"
	"packetmill/internal/flowlog"
	"packetmill/internal/layout"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
)

func init() {
	click.Register("ConnTracker", func() click.Element { return &ConnTracker{} })
}

// ConnTracker tracks flows without rewriting them. Output 0 carries
// admitted traffic; output 1, when wired, carries refused packets
// (strict-mode invalids and table-full overflow) — unwired, they are
// killed under the matching DropFlowTable* reason.
type ConnTracker struct {
	click.Base
	TableSize int
	Annotate  bool

	shard *conntrack.Shard
	flog  *flowlog.Core

	// Tracked counts admitted packets; Refused counts the rest.
	Tracked uint64
	Refused uint64

	lastEvictions uint64
	lastRefusals  uint64

	out, deadFull, deadInvalid, refused pktbuf.Batch
}

// Class implements click.Element.
func (e *ConnTracker) Class() string { return "ConnTracker" }

// NOutputs implements click.Element: output 1 (refused) is optional.
func (e *ConnTracker) NOutputs() int { return 2 }

// Configure implements click.Element.
// Args: [CAPACITY n] [, STRICT bool] [, PROTECT bool] [, ANNOTATE bool]
// [, ESTABLISHED_MS n] [, EMBRYONIC_MS n] [, CLOSING_MS n] [, UDP_MS n].
func (e *ConnTracker) Configure(args []string, bc *click.BuildCtx) error {
	e.InitBase(bc)
	e.TableSize = 65536
	e.Annotate = true
	kw, pos := click.KeywordArgs(args)
	if v, ok := kw["CAPACITY"]; ok {
		n, err := click.ParseInt(v)
		if err != nil {
			return err
		}
		e.TableSize = n
	} else if len(pos) > 0 {
		n, err := click.ParseInt(pos[0])
		if err != nil {
			return err
		}
		e.TableSize = n
	}
	cfg := conntrack.Config{Capacity: e.TableSize}
	if err := parseTimeoutArgs(kw, &cfg); err != nil {
		return err
	}
	boolArg := func(key string) bool {
		v, ok := kw[key]
		return ok && (v == "true" || v == "1")
	}
	cfg.Strict = boolArg("STRICT")
	cfg.ProtectEstablished = boolArg("PROTECT")
	if v, ok := kw["ANNOTATE"]; ok {
		e.Annotate = v == "true" || v == "1"
	}
	e.shard = conntrack.NewShard(cfg, bc.Huge, bc.Seed^0x43545243)
	bc.AllocState(64, 2)
	return nil
}

// Push implements click.Element.
func (e *ConnTracker) Push(ec *click.ExecCtx, _ int, b *pktbuf.Batch) {
	core := ec.Core
	e.shard.Advance(core, ec.Now)
	out, deadFull, deadInvalid, refused := &e.out, &e.deadFull, &e.deadInvalid, &e.refused
	out.Reset()
	deadFull.Reset()
	deadInvalid.Reset()
	refused.Reset()
	refuseWired := len(e.Inst.Outputs) > 1 && e.Inst.Outputs[1] != nil
	b.ForEach(core, func(p *pktbuf.Packet) bool {
		ipOff := netpkt.EtherHdrLen
		l4, proto, _, ok := ipHeaderAt(ec, p, ipOff)
		if !ok {
			// Non-IP traffic is outside the tracker's jurisdiction.
			core.Compute(10)
			e.flog.Untracked(uint64(p.Len()))
			out.Append(core, p)
			return true
		}
		hdr := p.Load(core, ipOff, netpkt.IPv4HdrLen)
		key := cuckoo.Key{
			SrcIP: binary.BigEndian.Uint32(hdr[12:16]),
			DstIP: binary.BigEndian.Uint32(hdr[16:20]),
			Proto: proto,
		}
		var tcpFlags uint8
		if (proto == netpkt.ProtoTCP || proto == netpkt.ProtoUDP) && p.Len() >= l4+4 {
			ports := p.Load(core, l4, 4)
			key.SrcPort = binary.BigEndian.Uint16(ports[0:2])
			key.DstPort = binary.BigEndian.Uint16(ports[2:4])
			if proto == netpkt.ProtoTCP && p.Len() >= l4+14 {
				tcpFlags = p.Load(core, l4+13, 1)[0]
			}
		}
		// Both directions of a conversation share one entry.
		ck, _ := conntrack.Canonical(key)
		ent, verdict := e.shard.Track(core, ck, proto, tcpFlags, ec.Now, 0)
		switch verdict {
		case conntrack.VerdictPass, conntrack.VerdictNew:
			if e.Annotate && p.Meta.L.Has(layout.FieldAnnoPaint) {
				p.Meta.Set(core, layout.FieldAnnoPaint, uint64(ent.State))
			}
			ent.Bytes += uint64(p.Len())
			e.Tracked++
			out.Append(core, p)
		case conntrack.VerdictInvalid:
			e.Refused++
			if refuseWired {
				// Diverted, not killed: downstream decides its fate, so
				// the flow log leaves it to the wire residue or the
				// drop-ledger remainder.
				refused.Append(core, p)
			} else {
				e.flog.Refused(stats.DropFlowTableInvalid, uint64(p.Len()), ec.Now)
				deadInvalid.Append(core, p)
			}
		default: // VerdictFull, VerdictNoResource
			e.Refused++
			if refuseWired {
				refused.Append(core, p)
			} else {
				e.flog.Refused(stats.DropFlowTableFull, uint64(p.Len()), ec.Now)
				deadFull.Append(core, p)
			}
		}
		return true
	})
	st := e.shard.StatsSnapshot()
	if evs := st.EvictionsTotal(); evs > e.lastEvictions {
		e.lastEvictions = evs
		ec.Tel.Trace().Flow("conntrack-evicted")
	}
	if refs := st.RefusedFull + st.RefusedInvalid; refs > e.lastRefusals {
		e.lastRefusals = refs
		ec.Tel.Trace().Flow("conntrack-refused")
	}
	ec.Rt.KillReason(ec, deadInvalid, stats.DropFlowTableInvalid)
	ec.Rt.KillReason(ec, deadFull, stats.DropFlowTableFull)
	if !refused.Empty() {
		e.Inst.Output(ec, 1, refused)
	}
	if !out.Empty() {
		e.Inst.Output(ec, 0, out)
	}
}

// BindFlowLog implements flowlog.Hookable: flow endings, refusals, and
// untracked passthrough feed core fc's flow log, and the log's depart
// hook samples latency into this shard's entries.
func (e *ConnTracker) BindFlowLog(fc *flowlog.Core) {
	e.flog = fc
	fc.BindShard(e.shard, true, 0)
	prev := e.shard.OnReclaim
	e.shard.OnReclaim = func(ent *conntrack.Entry, cause conntrack.Cause) {
		fc.FlowEnd(ent, cause)
		if prev != nil {
			prev(ent, cause)
		}
	}
}

// Shard exposes the flow table for tests and migration wiring.
func (e *ConnTracker) Shard() *conntrack.Shard { return e.shard }

// FlowTableEntries reports current flow-table occupancy.
func (e *ConnTracker) FlowTableEntries() int { return e.shard.Len() }

// FlowReport implements the telemetry flow-table reporting seam; the
// collector fills Core and Element.
func (e *ConnTracker) FlowReport() telemetry.ConntrackReport {
	return conntrackReportFromShard(e.shard)
}
