// Package cache simulates the DUT's cache hierarchy: per-core L1d and L2,
// a shared last-level cache (LLC) with a DDIO window for NIC DMA, and a
// small TLB. It is the substrate under every result in the paper: the three
// metadata-management models and all four code optimizations differ mostly
// in *which cache lines* a packet's processing touches, so we account for
// every simulated memory access at line granularity.
//
// Latency model (matching the paper's testbed description):
//   - L1 and L2 hit latencies are core-cycle denominated — they shrink in
//     wall-clock terms as the core frequency rises.
//   - LLC and DRAM latencies are nanosecond denominated — the uncore runs
//     at a fixed frequency (the paper pins it at 2.4 GHz), so these costs
//     do not scale with the core clock. This is what bends the
//     throughput-vs-frequency curves exactly the way Figure 4 shows.
package cache

import (
	"fmt"

	"packetmill/internal/memsim"
)

// Level identifies a cache level in results and counters.
type Level int

// Cache levels, ordered from closest to the core outwards. DRAM is the
// "miss everywhere" level.
const (
	L1 Level = iota
	L2
	LLC
	DRAM
	numLevels
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LLC:
		return "LLC"
	case DRAM:
		return "DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Config sizes one set-associative cache.
type Config struct {
	Name   string
	SizeB  uint64 // total capacity in bytes
	Ways   int    // associativity
	HitCyc float64
	HitNS  float64
}

// setAssoc is a set-associative LRU cache over 64-byte lines. Tags store
// the full line address so aliasing cannot occur. LRU is kept as an age
// counter per way (sets are small, so a linear scan is fine and fast).
type setAssoc struct {
	cfg  Config
	sets int
	ways int
	tags []uint64 // sets*ways, 0 means empty (line addr 0 is unused)
	age  []int64  // parallel to tags; larger = more recently used
	tick int64
	// insertPenalty implements RRIP-style thrash resistance: new lines
	// enter aged (near-LRU) and are only promoted to MRU on a hit, so a
	// once-through stream evicts itself instead of the working set.
	// Zero means plain LRU (L1/L2/TLB).
	insertPenalty int64
	// lastIdx memoizes the way of the most recent hit or insert. Packet
	// processing re-touches the same lines (header, annotations) many
	// times per packet, so checking it first turns the common repeat
	// lookup into one compare instead of a set scan. Tags hold full line
	// addresses, so a stale memo can never falsely match another line.
	lastIdx int
	// counters
	Loads       uint64
	LoadMisses  uint64
	Stores      uint64
	StoreMisses uint64
}

func newSetAssoc(cfg Config) *setAssoc {
	lines := int(cfg.SizeB / memsim.CacheLineSize)
	if cfg.Ways <= 0 || lines%cfg.Ways != 0 {
		panic("cache: size must be a multiple of ways*64")
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("cache: number of sets must be a power of two")
	}
	return &setAssoc{
		cfg:  cfg,
		sets: sets,
		ways: cfg.Ways,
		tags: make([]uint64, sets*cfg.Ways),
		age:  make([]int64, sets*cfg.Ways),
	}
}

// lookup probes for line; on hit it refreshes LRU and returns true.
func (c *setAssoc) lookup(line uint64) bool {
	c.tick++
	if c.tags[c.lastIdx] == line {
		c.age[c.lastIdx] = c.tick
		return true
	}
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.age[base+w] = c.tick
			c.lastIdx = base + w
			return true
		}
	}
	return false
}

// insert places line into its set, evicting the LRU way. waysLimit, if
// positive, restricts insertion to the *last* waysLimit ways of the set —
// this is how the DDIO window is modelled (I/O-allocated lines may occupy
// only a bounded slice of each set, so DMA bursts cannot wipe the whole
// cache). Returns the evicted line (0 if the victim way was empty).
func (c *setAssoc) insert(line uint64, waysLimit int) uint64 {
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	lo := 0
	if waysLimit > 0 && waysLimit < c.ways {
		lo = c.ways - waysLimit
	}
	victim := base + lo
	victimAge := int64(1) << 62
	for w := lo; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = base + w
			victimAge = 0
			break
		}
		if c.age[base+w] < victimAge {
			victimAge = c.age[base+w]
			victim = base + w
		}
	}
	evicted := c.tags[victim]
	c.tick++
	c.tags[victim] = line
	c.age[victim] = c.tick - c.insertPenalty
	c.lastIdx = victim
	return evicted
}

// invalidate removes line if present.
func (c *setAssoc) invalidate(line uint64) {
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.tags[base+w] = 0
			c.age[base+w] = 0
			return
		}
	}
}

// reset clears contents and counters.
func (c *setAssoc) reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.age[i] = 0
	}
	c.tick = 0
	c.Loads, c.LoadMisses, c.Stores, c.StoreMisses = 0, 0, 0, 0
}

// TLBConfig sizes the TLB model.
type TLBConfig struct {
	Entries int
	Ways    int
	WalkNS  float64 // page-walk penalty
}

// Hierarchy is one core's view of the memory system: private L1/L2, a
// pointer to the shared LLC, and a private TLB. Create one per simulated
// core with System.NewCore.
type Hierarchy struct {
	l1, l2 *setAssoc
	llc    *setAssoc // shared
	tlb    *setAssoc // reuse set-assoc machinery at page granularity
	sys    *System

	// TLBMisses counts page walks charged to this core.
	TLBMisses uint64

	// Per-core LLC demand counters: this core's accesses that reached
	// the shared LLC (L2 misses), and how many missed there too. The
	// shared llc.Loads/… counters aggregate every core; these scope the
	// same events to the hierarchy that caused them, which is what lets
	// a run attribute LLC traffic per core and per element the way
	// `perf stat --per-core` does.
	LLCLoads       uint64
	LLCLoadMisses  uint64
	LLCStores      uint64
	LLCStoreMisses uint64
}

// System owns the shared LLC and global configuration.
type System struct {
	cfg   SystemConfig
	llc   *setAssoc
	cores []*Hierarchy
	// DDIOHits / DDIOMisses count DMA writes that landed in (or missed)
	// the DDIO window of the LLC; DMAReads / DMAReadMisses count device
	// reads of TX buffers. Device traffic never appears in the LLC's
	// core-demand counters.
	DDIOHits      uint64
	DDIOMisses    uint64
	DMAReads      uint64
	DMAReadMisses uint64
}

// SystemConfig describes the whole memory system. DefaultSystemConfig
// matches the paper's Xeon Gold 6140 DUT closely enough for shape fidelity.
//
// Loads stall the pipeline for the full service latency; stores retire
// through the store buffer and only pay a small per-level drain cost —
// this asymmetry is what makes Overlaying's extra cold-line *writes*
// cheaper than Copying's extra *work*, matching the measured ordering.
type SystemConfig struct {
	L1     Config
	L2     Config
	LLCC   Config
	TLB    TLBConfig
	DRAMNS float64
	// Store drain costs (cycles) by serving level.
	StoreCyc [numLevels]float64
	// TLBStoreWalkCyc is the (mostly hidden) page-walk cost on stores.
	TLBStoreWalkCyc float64
	// DDIOWays restricts NIC DMA writes to the last N ways of each LLC
	// set (the paper sets the IIO LLC WAYS register to 8 set bits).
	DDIOWays int
}

// DefaultSystemConfig returns the baseline memory system: 32-KiB 8-way L1d,
// 1-MiB 16-way L2, 24.75-MiB 12-way shared LLC (Skylake-SP class), 8 DDIO
// ways, 1536-entry TLB.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		L1:              Config{Name: "L1d", SizeB: 32 << 10, Ways: 8, HitCyc: 1},
		L2:              Config{Name: "L2", SizeB: 1 << 20, Ways: 16, HitCyc: 12},
		LLCC:            Config{Name: "LLC", SizeB: 24 << 20, Ways: 12, HitNS: 16},
		TLB:             TLBConfig{Entries: 1536, Ways: 12, WalkNS: 25},
		DRAMNS:          80,
		StoreCyc:        [numLevels]float64{1, 3, 5, 8},
		TLBStoreWalkCyc: 10,
		DDIOWays:        8,
	}
}

// llcInsertPenalty ages fresh LLC fills so streaming data cannot flush
// re-referenced working sets — the first-order effect of the adaptive
// insertion policies (RRIP family) shipping in the modelled Xeons.
const llcInsertPenalty = 1 << 16

// NewSystem builds the shared memory system.
func NewSystem(cfg SystemConfig) *System {
	llc := newSetAssoc(cfg.LLCC)
	llc.insertPenalty = llcInsertPenalty
	return &System{cfg: cfg, llc: llc}
}

// NewCore attaches a new core (private L1/L2/TLB) to the system.
func (s *System) NewCore() *Hierarchy {
	h := &Hierarchy{
		l1:  newSetAssoc(s.cfg.L1),
		l2:  newSetAssoc(s.cfg.L2),
		llc: s.llc,
		sys: s,
	}
	// TLB: entries at page granularity; reuse setAssoc with "line" =
	// page number.
	tcfg := Config{Name: "TLB", SizeB: uint64(s.cfg.TLB.Entries) * memsim.CacheLineSize, Ways: s.cfg.TLB.Ways}
	h.tlb = newSetAssoc(tcfg)
	s.cores = append(s.cores, h)
	return h
}

// Reset clears all caches and counters in the system.
func (s *System) Reset() {
	s.llc.reset()
	s.DDIOHits, s.DDIOMisses = 0, 0
	s.DMAReads, s.DMAReadMisses = 0, 0
	for _, c := range s.cores {
		c.l1.reset()
		c.l2.reset()
		c.tlb.reset()
		c.TLBMisses = 0
		c.LLCLoads, c.LLCLoadMisses = 0, 0
		c.LLCStores, c.LLCStoreMisses = 0, 0
	}
}

// LLCCounters exposes the shared LLC's load/miss counters
// (loads, loadMisses, stores, storeMisses).
func (s *System) LLCCounters() (uint64, uint64, uint64, uint64) {
	return s.llc.Loads, s.llc.LoadMisses, s.llc.Stores, s.llc.StoreMisses
}

// Cost is the outcome of one access: the level that served it and its
// latency split into a core-cycle part and a fixed-nanosecond part.
type Cost struct {
	ServedBy Level
	Cycles   float64
	NS       float64
}

func lineOf(addr memsim.Addr) uint64 { return uint64(addr) / memsim.CacheLineSize }

// pageOf returns the TLB tag for addr. The hugepage region (DPDK pools,
// rings, packet buffers) maps with 2-MiB pages, so a multi-megabyte
// buffer pool costs a handful of TLB entries — one of hugepages' main
// points. Everything else uses 4-KiB pages. The two spaces get disjoint
// tag ranges so a hugepage never aliases a small page.
func pageOf(addr memsim.Addr) uint64 {
	if addr >= memsim.HugeBase && addr < memsim.MMIOBase {
		return uint64(addr)/memsim.HugePageSize | 1<<40
	}
	return uint64(addr) / memsim.PageSize
}

// AccessLine performs a load or store of a single cache line containing
// addr and returns its cost. Core code paths call this via machine.Perf
// helpers rather than directly.
func (h *Hierarchy) AccessLine(addr memsim.Addr, write bool) Cost {
	var c Cost
	// TLB first. Loads stall on the page walk; stores mostly hide it
	// behind the store buffer.
	pg := pageOf(addr)
	if !h.tlb.lookup(pg + 1) { // +1 keeps tag 0 meaning "empty"
		h.tlb.insert(pg+1, 0)
		h.TLBMisses++
		if write {
			c.Cycles += h.sys.cfg.TLBStoreWalkCyc
		} else {
			c.NS += h.sys.cfg.TLB.WalkNS
		}
	}

	line := lineOf(addr) + 1 // +1: avoid the reserved 0 tag
	serve := func(lvl Level) Cost {
		c.ServedBy = lvl
		if write {
			c.Cycles += h.sys.cfg.StoreCyc[lvl]
			return c
		}
		switch lvl {
		case L1:
			c.Cycles += h.sys.cfg.L1.HitCyc
		case L2:
			c.Cycles += h.sys.cfg.L2.HitCyc
		case LLC:
			c.NS += h.sys.cfg.LLCC.HitNS
		case DRAM:
			c.NS += h.sys.cfg.DRAMNS
		}
		return c
	}

	if write {
		h.l1.Stores++
	} else {
		h.l1.Loads++
	}
	if h.l1.lookup(line) {
		return serve(L1)
	}
	if write {
		h.l1.StoreMisses++
		h.l2.Stores++
	} else {
		h.l1.LoadMisses++
		h.l2.Loads++
	}
	if h.l2.lookup(line) {
		h.l1.insert(line, 0)
		return serve(L2)
	}
	if write {
		h.l2.StoreMisses++
		h.llc.Stores++
		h.LLCStores++
	} else {
		h.l2.LoadMisses++
		h.llc.Loads++
		h.LLCLoads++
	}
	if h.llc.lookup(line) {
		h.l2.insert(line, 0)
		h.l1.insert(line, 0)
		return serve(LLC)
	}
	if write {
		h.llc.StoreMisses++
		h.LLCStoreMisses++
	} else {
		h.llc.LoadMisses++
		h.LLCLoadMisses++
	}
	h.llc.insert(line, 0)
	h.l2.insert(line, 0)
	h.l1.insert(line, 0)
	return serve(DRAM)
}

// Access touches [addr, addr+size) and returns the summed cost over the
// cache lines the range spans.
func (h *Hierarchy) Access(addr memsim.Addr, size uint64, write bool) Cost {
	if size == 0 {
		return Cost{}
	}
	var total Cost
	first := uint64(addr) / memsim.CacheLineSize
	last := (uint64(addr) + size - 1) / memsim.CacheLineSize
	for ln := first; ln <= last; ln++ {
		c := h.AccessLine(memsim.Addr(ln*memsim.CacheLineSize), write)
		total.Cycles += c.Cycles
		total.NS += c.NS
		if c.ServedBy > total.ServedBy {
			total.ServedBy = c.ServedBy
		}
	}
	return total
}

// DMAWrite models the NIC writing [addr, addr+size) over PCIe with DDIO:
// lines are allocated directly into the LLC, restricted to the DDIO ways,
// and invalidated from every core's L1/L2 (the device stole ownership).
// The cost of DMA is borne by the NIC pipeline, not the core, so no latency
// is returned; what matters to the core is the later read hitting LLC.
func (s *System) DMAWrite(addr memsim.Addr, size uint64) {
	if size == 0 {
		return
	}
	first := uint64(addr) / memsim.CacheLineSize
	last := (uint64(addr) + size - 1) / memsim.CacheLineSize
	for ln := first; ln <= last; ln++ {
		line := ln + 1
		if s.llc.lookup(line) {
			s.DDIOHits++
		} else {
			s.DDIOMisses++
			s.llc.insert(line, s.cfg.DDIOWays)
		}
		for _, c := range s.cores {
			c.l1.invalidate(line)
			c.l2.invalidate(line)
		}
	}
}

// DMARead models the NIC reading a TX buffer. Reads can be served from
// LLC (fast path) or DRAM; either way the core does not stall. Device
// reads are tracked in their own counters — perf's core LLC-loads events
// do not count device traffic, and neither do ours.
func (s *System) DMARead(addr memsim.Addr, size uint64) {
	if size == 0 {
		return
	}
	first := uint64(addr) / memsim.CacheLineSize
	last := (uint64(addr) + size - 1) / memsim.CacheLineSize
	for ln := first; ln <= last; ln++ {
		line := ln + 1
		s.DMAReads++
		if !s.llc.lookup(line) {
			s.DMAReadMisses++
			s.llc.insert(line, s.cfg.DDIOWays)
		}
	}
}

// Prewarm installs [addr, addr+size) into the LLC with normal residency
// and no counter movement — initialization-phase state for long-lived
// structures (a WorkPackage array, a warmed table) that a steady-state
// measurement would find resident. It models the paper's minutes-long
// runs without simulating minutes of packets.
func (s *System) Prewarm(addr memsim.Addr, size uint64) {
	if size == 0 {
		return
	}
	first := uint64(addr) / memsim.CacheLineSize
	last := (uint64(addr) + size - 1) / memsim.CacheLineSize
	for ln := first; ln <= last; ln++ {
		line := ln + 1
		if !s.llc.lookup(line) { // lookup promotes when already present
			s.llc.insert(line, 0)
			s.llc.lookup(line) // promote past the distant-insertion age
		}
	}
}

// CoreCounters returns this core's private-cache counters for tests.
func (h *Hierarchy) CoreCounters() (l1Loads, l1Misses, l2Loads, l2Misses uint64) {
	return h.l1.Loads, h.l1.LoadMisses, h.l2.Loads, h.l2.LoadMisses
}
