package cache

import (
	"testing"

	"packetmill/internal/memsim"
)

func newTestSystem() (*System, *Hierarchy) {
	s := NewSystem(DefaultSystemConfig())
	return s, s.NewCore()
}

func TestColdMissThenHit(t *testing.T) {
	_, h := newTestSystem()
	c1 := h.AccessLine(0x10000, false)
	if c1.ServedBy != DRAM {
		t.Fatalf("first access served by %v, want DRAM", c1.ServedBy)
	}
	c2 := h.AccessLine(0x10000, false)
	if c2.ServedBy != L1 {
		t.Fatalf("second access served by %v, want L1", c2.ServedBy)
	}
	if c2.Cycles >= c1.NS+c1.Cycles {
		t.Fatal("L1 hit not cheaper than DRAM miss")
	}
}

func TestSameLineSharing(t *testing.T) {
	_, h := newTestSystem()
	h.AccessLine(0x10000, false)
	c := h.AccessLine(0x10020, false) // same 64-B line
	if c.ServedBy != L1 {
		t.Fatalf("same-line access served by %v, want L1", c.ServedBy)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	s := NewSystem(DefaultSystemConfig())
	h := s.NewCore()
	// Touch enough distinct lines to overflow the 32-KiB L1 (512 lines).
	for i := 0; i < 2048; i++ {
		h.AccessLine(memsim.Addr(i*memsim.CacheLineSize), false)
	}
	// The first line is long gone from L1 but must still be in L2.
	c := h.AccessLine(0, false)
	if c.ServedBy != L2 {
		t.Fatalf("evicted line served by %v, want L2", c.ServedBy)
	}
}

func TestLLCServesAfterL2Eviction(t *testing.T) {
	s := NewSystem(DefaultSystemConfig())
	h := s.NewCore()
	// Overflow the 1-MiB L2 (16384 lines) with a 4-MiB sweep.
	lines := 4 << 20 / memsim.CacheLineSize
	for i := 0; i < lines; i++ {
		h.AccessLine(memsim.Addr(i*memsim.CacheLineSize), false)
	}
	c := h.AccessLine(0, false)
	if c.ServedBy != LLC {
		t.Fatalf("line served by %v, want LLC", c.ServedBy)
	}
}

func TestDRAMAfterLLCOverflow(t *testing.T) {
	s := NewSystem(DefaultSystemConfig())
	h := s.NewCore()
	// Sweep 2× the 24-MiB LLC.
	lines := 48 << 20 / memsim.CacheLineSize
	for i := 0; i < lines; i++ {
		h.AccessLine(memsim.Addr(i*memsim.CacheLineSize), false)
	}
	c := h.AccessLine(0, false)
	if c.ServedBy != DRAM {
		t.Fatalf("line served by %v, want DRAM after LLC overflow", c.ServedBy)
	}
}

func TestWorkingSetResidency(t *testing.T) {
	// A small hot set (the X-Change scenario: 32 metadata buffers) must
	// hit L1 on every revisit.
	_, h := newTestSystem()
	addrs := make([]memsim.Addr, 32)
	for i := range addrs {
		addrs[i] = memsim.Addr(0x100000 + i*memsim.CacheLineSize)
	}
	for _, a := range addrs {
		h.AccessLine(a, true)
	}
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			if c := h.AccessLine(a, false); c.ServedBy != L1 {
				t.Fatalf("hot line %#x served by %v on round %d", a, c.ServedBy, round)
			}
		}
	}
}

func TestMultiLineAccessCost(t *testing.T) {
	_, h := newTestSystem()
	c := h.Access(0x40000, 256, false) // 4 lines, all cold
	if c.ServedBy != DRAM {
		t.Fatalf("served by %v", c.ServedBy)
	}
	single := h.Access(0x80000, 1, false)
	if c.NS < 3*single.NS {
		t.Fatalf("4-line access (%v ns) not ≈4× 1-line (%v ns)", c.NS, single.NS)
	}
}

func TestZeroSizeAccessFree(t *testing.T) {
	_, h := newTestSystem()
	c := h.Access(0x40000, 0, false)
	if c.Cycles != 0 || c.NS != 0 {
		t.Fatal("zero-size access charged")
	}
}

func TestDMAWriteLandsInLLC(t *testing.T) {
	s, h := newTestSystem()
	s.DMAWrite(0x200000, 1500)
	c := h.AccessLine(0x200000, false)
	if c.ServedBy != LLC {
		t.Fatalf("DMA'd line served by %v, want LLC (DDIO)", c.ServedBy)
	}
}

func TestDMAInvalidatesCoreCaches(t *testing.T) {
	s, h := newTestSystem()
	h.AccessLine(0x300000, false) // pull into L1
	s.DMAWrite(0x300000, 64)      // device overwrites it
	c := h.AccessLine(0x300000, false)
	if c.ServedBy != LLC {
		t.Fatalf("stale line served by %v, want LLC after DMA invalidation", c.ServedBy)
	}
}

func TestDDIOWindowLimitsOccupancy(t *testing.T) {
	// Warm a working set into the LLC, blast a huge DMA region over it,
	// and count how many lines survive. With a 2-way DDIO window most of
	// the set must survive; with the window as wide as the cache, the
	// DMA wipes nearly everything. This is exactly the DDIO-thrashing
	// effect the paper cites from [25].
	survivors := func(ddioWays int) int {
		cfg := DefaultSystemConfig()
		cfg.DDIOWays = ddioWays
		s := NewSystem(cfg)
		h := s.NewCore()
		const nLines = 4096
		for i := 0; i < nLines; i++ {
			h.AccessLine(memsim.Addr(i*memsim.CacheLineSize), false)
		}
		s.DMAWrite(0x8000000, 128<<20) // 128-MiB DMA blast
		// Probe through a fresh core so private caches don't mask LLC state.
		h2 := s.NewCore()
		n := 0
		for i := 0; i < nLines; i++ {
			if c := h2.AccessLine(memsim.Addr(i*memsim.CacheLineSize), false); c.ServedBy == LLC {
				n++
			}
		}
		return n
	}
	narrow := survivors(2)
	wide := survivors(12)
	if narrow <= wide {
		t.Fatalf("DDIO window not protecting LLC: %d survivors (2-way) vs %d (12-way)", narrow, wide)
	}
	if narrow < 2048 {
		t.Fatalf("2-way DDIO window let DMA evict too much: %d/4096 survivors", narrow)
	}
}

func TestDDIOHitMissCounters(t *testing.T) {
	s, _ := newTestSystem()
	s.DMAWrite(0x500000, 64)
	s.DMAWrite(0x500000, 64)
	if s.DDIOMisses != 1 || s.DDIOHits != 1 {
		t.Fatalf("DDIO counters = hits %d misses %d, want 1/1", s.DDIOHits, s.DDIOMisses)
	}
}

func TestLLCCountersMove(t *testing.T) {
	s, h := newTestSystem()
	before, beforeMiss, _, _ := s.LLCCounters()
	h.AccessLine(0x600000, false)
	loads, misses, _, _ := s.LLCCounters()
	if loads != before+1 || misses != beforeMiss+1 {
		t.Fatalf("LLC counters did not record cold miss: loads %d→%d misses %d→%d",
			before, loads, beforeMiss, misses)
	}
	h.AccessLine(0x600000, false) // L1 hit; LLC counters must not move
	loads2, _, _, _ := s.LLCCounters()
	if loads2 != loads {
		t.Fatal("L1 hit incremented LLC loads")
	}
}

func TestTLBMissCharged(t *testing.T) {
	_, h := newTestSystem()
	h.AccessLine(0x1000000, false)
	if h.TLBMisses != 1 {
		t.Fatalf("TLBMisses = %d, want 1", h.TLBMisses)
	}
	h.AccessLine(0x1000040, false) // same page
	if h.TLBMisses != 1 {
		t.Fatalf("second access on same page walked again: %d", h.TLBMisses)
	}
	h.AccessLine(0x1002000, false) // next page
	if h.TLBMisses != 2 {
		t.Fatalf("TLBMisses = %d, want 2", h.TLBMisses)
	}
}

func TestStoreCountsSeparately(t *testing.T) {
	_, h := newTestSystem()
	h.AccessLine(0x700000, true)
	l1Loads, _, _, _ := h.CoreCounters()
	if l1Loads != 0 {
		t.Fatalf("store counted as load: %d", l1Loads)
	}
}

func TestResetClearsEverything(t *testing.T) {
	s, h := newTestSystem()
	h.AccessLine(0x800000, false)
	s.DMAWrite(0x900000, 128)
	s.Reset()
	if l, m, _, _ := s.LLCCounters(); l != 0 || m != 0 {
		t.Fatal("LLC counters survived reset")
	}
	if s.DDIOHits != 0 || s.DDIOMisses != 0 {
		t.Fatal("DDIO counters survived reset")
	}
	if h.TLBMisses != 0 {
		t.Fatal("TLB counter survived reset")
	}
	if c := h.AccessLine(0x800000, false); c.ServedBy != DRAM {
		t.Fatalf("cache contents survived reset: served by %v", c.ServedBy)
	}
}

func TestPrivateCachesAreIsolatedAcrossCores(t *testing.T) {
	s := NewSystem(DefaultSystemConfig())
	h1 := s.NewCore()
	h2 := s.NewCore()
	h1.AccessLine(0xA00000, false)
	c := h2.AccessLine(0xA00000, false)
	if c.ServedBy == L1 || c.ServedBy == L2 {
		t.Fatalf("core 2 hit core 1's private cache: %v", c.ServedBy)
	}
	if c.ServedBy != LLC {
		t.Fatalf("shared LLC did not serve second core: %v", c.ServedBy)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	newSetAssoc(Config{Name: "bad", SizeB: 3 * 64, Ways: 1})
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || DRAM.String() != "DRAM" || LLC.String() != "LLC" || L2.String() != "L2" {
		t.Fatal("Level.String broken")
	}
	if Level(99).String() == "" {
		t.Fatal("unknown level string empty")
	}
}

func TestDeterministicReplayProperty(t *testing.T) {
	// Two hierarchies fed the same access sequence must serve every
	// access from the same level — the simulator has no hidden state.
	seq := make([]struct {
		addr  memsim.Addr
		write bool
	}, 5000)
	r := uint64(12345)
	next := func() uint64 { r = r*6364136223846793005 + 1442695040888963407; return r }
	for i := range seq {
		seq[i].addr = memsim.Addr(next() % (64 << 20))
		seq[i].write = next()%3 == 0
	}
	run := func() []Level {
		s := NewSystem(DefaultSystemConfig())
		h := s.NewCore()
		out := make([]Level, len(seq))
		for i, a := range seq {
			out[i] = h.AccessLine(a.addr, a.write).ServedBy
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestImmediateReaccessHitsL1Property(t *testing.T) {
	// Whatever happened before, touching a line then touching it again
	// must be an L1 hit (no pathological self-eviction).
	s := NewSystem(DefaultSystemConfig())
	h := s.NewCore()
	r := uint64(99)
	next := func() uint64 { r = r*6364136223846793005 + 1; return r }
	for i := 0; i < 5000; i++ {
		addr := memsim.Addr(next() % (256 << 20))
		h.AccessLine(addr, next()%2 == 0)
		if c := h.AccessLine(addr, false); c.ServedBy != L1 {
			t.Fatalf("immediate re-access of %#x served by %v", addr, c.ServedBy)
		}
	}
}
