package xchg

import (
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
)

func testCore() *machine.Core {
	_, c := machine.Default(2.0)
	return c
}

func newPkt(withMbuf bool) *pktbuf.Packet {
	p := pktbuf.NewPacket(make([]byte, 2048), 0x80000, 128)
	if withMbuf {
		p.Mbuf = &pktbuf.Meta{Base: 0x7ff80, L: layout.RteMbuf()}
	}
	return p
}

func TestDefaultBindingWritesMbuf(t *testing.T) {
	c := testCore()
	b := NewDefaultBinding(true)
	p := newPkt(true)
	b.SetDataLen(c, p, 512)
	b.SetVlanTCI(c, p, 0x1234)
	if p.Mbuf.Peek(layout.FieldDataLen) != 512 {
		t.Fatal("data_len not in mbuf")
	}
	if p.Mbuf.Peek(layout.FieldVlanTCI) != 0x1234 {
		t.Fatal("vlan_tci not in mbuf")
	}
	if b.GetDataLen(c, p) != 512 {
		t.Fatal("GetDataLen")
	}
	if b.ExchangesBuffers() {
		t.Fatal("default binding must not exchange buffers")
	}
}

func TestDefaultBindingOverlayFallsBackToMeta(t *testing.T) {
	c := testCore()
	b := NewDefaultBinding(true)
	p := pktbuf.NewPacket(make([]byte, 2048), 0x80000, 128)
	p.Meta = &pktbuf.Meta{Base: 0x7ff00, L: layout.OverlayPacket()}
	b.SetPktLen(c, p, 999)
	if p.Meta.Peek(layout.FieldPktLen) != 999 {
		t.Fatal("overlay meta not written")
	}
}

func TestNonLTOBindingChargesCalls(t *testing.T) {
	run := func(inline bool) float64 {
		c := testCore()
		b := NewDefaultBinding(inline)
		p := newPkt(true)
		for i := 0; i < 100; i++ {
			b.SetDataLen(c, p, 100)
		}
		return c.Snapshot().BusyCycles
	}
	if run(false) <= run(true) {
		t.Fatal("disabling LTO inlining did not cost anything")
	}
}

func newDescPool(n int) *DescriptorPool {
	arena := memsim.NewArena("static", memsim.StaticBase, 1<<20)
	dp, err := NewDescriptorPool(n, layout.XchgPacket(), arena, nil)
	if err != nil {
		panic(err)
	}
	return dp
}

func TestDescriptorPoolLIFOAndCounts(t *testing.T) {
	dp := newDescPool(4)
	if dp.Size() != 4 || dp.FreeCount() != 4 {
		t.Fatalf("size=%d free=%d", dp.Size(), dp.FreeCount())
	}
	a := dp.Get()
	b := dp.Get()
	if a == b || a == nil || b == nil {
		t.Fatal("get broken")
	}
	dp.Put(b)
	if dp.Get() != b {
		t.Fatal("not LIFO")
	}
}

func TestDescriptorPoolContiguous(t *testing.T) {
	dp := newDescPool(4)
	sz := memsim.Addr(layout.XchgPacket().Size())
	for i := 1; i < len(dp.all); i++ {
		if dp.all[i].Base != dp.all[i-1].Base+sz {
			t.Fatalf("descriptors not contiguous: %#x then %#x", dp.all[i-1].Base, dp.all[i].Base)
		}
	}
}

func TestDescriptorPoolExhausted(t *testing.T) {
	dp := newDescPool(1)
	dp.Get()
	if dp.Get() != nil {
		t.Fatal("expected nil from empty pool")
	}
}

func TestDescriptorPoolSetLayout(t *testing.T) {
	dp := newDescPool(2)
	nl := layout.MinimalXchg()
	dp.SetLayout(nl)
	if m := dp.Get(); m.L != nl {
		t.Fatal("SetLayout did not apply")
	}
}

func TestCustomBindingAttachesAndDropsUnknownFields(t *testing.T) {
	c := testCore()
	dp := newDescPool(4)
	b := NewCustomBinding("x", dp, true)
	p := pktbuf.NewPacket(make([]byte, 2048), 0x90000, 128)
	b.SetDataLen(c, p, 64)
	if p.Meta == nil {
		t.Fatal("descriptor not attached")
	}
	// xchg_packet has no packet_type field; the conversion is a no-op.
	b.SetPacketType(c, p, 0xdead)
	if p.Meta.Peek(layout.FieldDataLen) != 64 {
		t.Fatal("data_len lost")
	}
	if b.Name() != "x" || !b.ExchangesBuffers() {
		t.Fatal("binding identity")
	}
}

func TestCustomBindingReleaseRecycles(t *testing.T) {
	c := testCore()
	dp := newDescPool(2)
	b := NewCustomBinding("x", dp, true)
	p := pktbuf.NewPacket(make([]byte, 2048), 0x90000, 128)
	b.SetDataLen(c, p, 64)
	if dp.FreeCount() != 1 {
		t.Fatalf("free %d", dp.FreeCount())
	}
	b.Release(p)
	if dp.FreeCount() != 2 || p.Meta != nil {
		t.Fatal("release did not recycle")
	}
	b.Release(p) // double release is a no-op
	if dp.FreeCount() != 2 {
		t.Fatal("double release corrupted pool")
	}
}

func TestCustomBindingExhaustedPoolIsSurvivable(t *testing.T) {
	// Violating the §3.1 sizing rule must not crash: RxMeta reports nil
	// and conversions become no-ops so the PMD can drop with accounting.
	c := testCore()
	dp := newDescPool(1)
	b := NewCustomBinding("x", dp, true)
	p1 := pktbuf.NewPacket(make([]byte, 2048), 0x90000, 128)
	b.SetDataLen(c, p1, 1)
	p2 := pktbuf.NewPacket(make([]byte, 2048), 0x91000, 128)
	b.SetDataLen(c, p2, 1) // must not panic
	if b.RxMeta(p2) != nil || p2.Meta != nil {
		t.Fatal("exhausted pool must yield nil descriptor")
	}
	// Releasing p1 recovers the pool; p2 can then be served.
	b.Release(p1)
	if b.RxMeta(p2) == nil {
		t.Fatal("pool did not recover after release")
	}
	if dp.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", dp.Outstanding())
	}
}

func TestCustomBindingDescriptorReuseStaysWarm(t *testing.T) {
	// The signature X-Change effect: cycling thousands of packets
	// through a 32-descriptor pool touches only 32 structs' worth of
	// cache lines.
	c := testCore()
	dp := newDescPool(32)
	b := NewCustomBinding("x", dp, true)
	before := c.Snapshot()
	for i := 0; i < 1000; i++ {
		p := pktbuf.NewPacket(make([]byte, 256), memsim.Addr(0x100000+i*256), 64)
		b.SetDataLen(c, p, 64)
		b.SetPktLen(c, p, 64)
		b.Release(p)
	}
	d := c.Snapshot().Delta(before)
	// After the first 32 descriptors warm up, everything is an L1 hit:
	// LLC traffic must be bounded by the pool footprint, not the packet
	// count.
	if d.LLCLoads > 64 {
		t.Fatalf("descriptor pool not cache-resident: %d LLC loads for 1000 packets", d.LLCLoads)
	}
}
