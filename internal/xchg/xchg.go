// Package xchg implements X-Change, the paper's metadata-management model
// (§3.1): an API *inside the driver* made of conversion functions. Instead
// of the poll-mode driver assigning wire metadata straight into rte_mbuf
// fields, every assignment goes through a function the application may
// re-implement:
//
//	/* Default DPDK */             pkt->vlan_tci = v;
//	/* X-Change    */              xchg_set_vlan_tci(pkt, v);
//
// Relinking against a different implementation of those functions changes
// where (and in what layout) the metadata lands — without touching the
// driver. Package dpdk's PMD calls a Binding at every metadata touch
// point; the three bindings here reproduce the three models:
//
//   - DefaultBinding: writes the rte_mbuf descriptor (stock DPDK; the
//     Copying and Overlaying applications build on it).
//   - CustomBinding: writes the application's own descriptor with a
//     custom layout directly (the real X-Change).
//
// A Binding also answers the buffer-exchange half of the model: under
// X-Change, applications hand their own buffers to the driver and receive
// back used ones, so no mempool get/put happens per packet.
package xchg

import (
	"fmt"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
)

// Binding is the set of conversion functions the PMD invokes. The paper's
// implementation adds one .h of declarations to the MLX5 driver; this
// interface is its Go equivalent.
//
// Every method takes the core so the implementation can charge its own
// memory traffic — that asymmetry (which lines each binding dirties) *is*
// the experiment of §4.2.
type Binding interface {
	// Name identifies the metadata model in experiment output.
	Name() string

	// RxMeta returns (and, if needed, attaches) the descriptor the RX
	// conversion functions write for this packet. Exchange bindings
	// return nil when their descriptor pool is exhausted; the PMD must
	// then drop the packet with accounting rather than convert it.
	RxMeta(p *pktbuf.Packet) *pktbuf.Meta

	// RX-path conversion functions (Listing 1/2 of the paper).
	SetDataLen(core *machine.Core, p *pktbuf.Packet, v uint16)
	SetPktLen(core *machine.Core, p *pktbuf.Packet, v uint32)
	SetVlanTCI(core *machine.Core, p *pktbuf.Packet, v uint16)
	SetRSSHash(core *machine.Core, p *pktbuf.Packet, v uint32)
	SetPort(core *machine.Core, p *pktbuf.Packet, v uint16)
	SetPacketType(core *machine.Core, p *pktbuf.Packet, v uint32)

	// TX-path conversion functions.
	GetDataLen(core *machine.Core, p *pktbuf.Packet) uint16
	GetBufAddr(core *machine.Core, p *pktbuf.Packet) memsim.Addr

	// ExchangesBuffers reports whether the application supplies its own
	// buffers to the driver (the exchange workflow) instead of the
	// driver allocating and freeing mbufs through a mempool.
	ExchangesBuffers() bool
}

// callCost lets a binding charge per-conversion call overhead when LTO is
// disabled. With LTO (the default) the conversions inline to plain stores,
// exactly as the paper notes ("these functions will eventually get
// inlined, as we use LTO").
type callCost struct {
	inlined bool
}

func (cc callCost) charge(core *machine.Core) {
	if !cc.inlined {
		core.Call(machine.CallDirect, 0)
	}
}

// DefaultBinding reproduces stock DPDK: conversions assign into the
// packet's rte_mbuf descriptor (p.Mbuf when distinct, else p.Meta for
// overlay layouts that embed the mbuf).
type DefaultBinding struct {
	cc callCost
}

// NewDefaultBinding returns the stock-DPDK binding. inlineLTO=false
// charges a direct call per conversion, modelling a build without LTO.
func NewDefaultBinding(inlineLTO bool) *DefaultBinding {
	return &DefaultBinding{cc: callCost{inlined: inlineLTO}}
}

func (b *DefaultBinding) Name() string { return "dpdk-default" }

func (b *DefaultBinding) RxMeta(p *pktbuf.Packet) *pktbuf.Meta {
	if p.Mbuf != nil {
		return p.Mbuf
	}
	return p.Meta
}

func (b *DefaultBinding) set(core *machine.Core, p *pktbuf.Packet, f layout.FieldID, v uint64) {
	b.cc.charge(core)
	b.RxMeta(p).Set(core, f, v)
}

func (b *DefaultBinding) SetDataLen(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldDataLen, uint64(v))
}
func (b *DefaultBinding) SetPktLen(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldPktLen, uint64(v))
}
func (b *DefaultBinding) SetVlanTCI(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldVlanTCI, uint64(v))
}
func (b *DefaultBinding) SetRSSHash(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldRSSHash, uint64(v))
}
func (b *DefaultBinding) SetPort(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldPort, uint64(v))
}
func (b *DefaultBinding) SetPacketType(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldPacketType, uint64(v))
}

func (b *DefaultBinding) GetDataLen(core *machine.Core, p *pktbuf.Packet) uint16 {
	b.cc.charge(core)
	return uint16(b.RxMeta(p).Get(core, layout.FieldDataLen))
}

func (b *DefaultBinding) GetBufAddr(core *machine.Core, p *pktbuf.Packet) memsim.Addr {
	b.cc.charge(core)
	return memsim.Addr(b.RxMeta(p).Get(core, layout.FieldBufAddr))
}

func (b *DefaultBinding) ExchangesBuffers() bool { return false }

// DescriptorPool is the application's small, recycled set of metadata
// descriptors under X-Change. Its size is "proportional to the RX burst
// size + the number of packets enqueued in software" (§3.1), so the
// descriptors stay cache-warm forever. Descriptors live contiguously in
// the application's static arena.
type DescriptorPool struct {
	free []*pktbuf.Meta
	all  []*pktbuf.Meta
	// fifo switches recycling from LIFO (hot descriptors reused first —
	// the X-Change design point) to FIFO (descriptors cycle through the
	// whole pool like rte_mbufs cycle through a ring). Exists for the
	// residency ablation.
	fifo bool

	// GetFails counts exhausted Get calls; MaxOutstanding is the
	// attachment high-water mark. Both feed the live metrics exporter.
	GetFails       uint64
	MaxOutstanding int
}

// NewDescriptorPool carves n descriptors with the given layout out of the
// arena. Pass the NF's metadata profile to prof to drive the reordering
// pass (may be nil). A pool too large for the arena returns a typed
// *memsim.ExhaustedError instead of panicking — pool size is run
// configuration, not a programming constant.
func NewDescriptorPool(n int, l *layout.Layout, arena *memsim.Arena, prof *layout.OrderProfile) (*DescriptorPool, error) {
	dp := &DescriptorPool{}
	for i := 0; i < n; i++ {
		base, err := arena.TryAlloc(uint64(l.Size()), memsim.CacheLineSize)
		if err != nil {
			return nil, fmt.Errorf("xchg: descriptor pool (%d of %d descriptors placed): %w", i, n, err)
		}
		m := &pktbuf.Meta{Base: base, L: l, Prof: prof}
		dp.all = append(dp.all, m)
		dp.free = append(dp.free, m)
	}
	return dp, nil
}

// Get pops a free descriptor (LIFO, to stay warm); nil when exhausted.
// Pressure is tracked for the observability layer: GetFails counts
// exhausted gets and MaxOutstanding the attachment high-water mark, so
// a pool sized too close to §3.1's bound shows up in live metrics
// before it starts dropping.
func (dp *DescriptorPool) Get() *pktbuf.Meta {
	if len(dp.free) == 0 {
		dp.GetFails++
		return nil
	}
	var m *pktbuf.Meta
	if dp.fifo {
		m = dp.free[0]
		dp.free = dp.free[1:]
	} else {
		m = dp.free[len(dp.free)-1]
		dp.free = dp.free[:len(dp.free)-1]
	}
	if out := len(dp.all) - len(dp.free); out > dp.MaxOutstanding {
		dp.MaxOutstanding = out
	}
	return m
}

// SetFIFO switches the recycling order (ablation hook).
func (dp *DescriptorPool) SetFIFO(f bool) { dp.fifo = f }

// Put returns a descriptor for reuse.
func (dp *DescriptorPool) Put(m *pktbuf.Meta) { dp.free = append(dp.free, m) }

// FreeCount reports available descriptors.
func (dp *DescriptorPool) FreeCount() int { return len(dp.free) }

// Size reports the total descriptor count.
func (dp *DescriptorPool) Size() int { return len(dp.all) }

// Outstanding reports descriptors currently attached to packets — the
// chaos harness's leak check requires it to return to zero after a
// drained run.
func (dp *DescriptorPool) Outstanding() int { return len(dp.all) - len(dp.free) }

// SetLayout swaps the layout of every descriptor — how the mill applies a
// reordered layout to a live application between runs.
func (dp *DescriptorPool) SetLayout(l *layout.Layout) {
	for _, m := range dp.all {
		m.L = l
	}
}

// SetProfile attaches an access profile to every descriptor (input to the
// reorder pass).
func (dp *DescriptorPool) SetProfile(p *layout.OrderProfile) {
	for _, m := range dp.all {
		m.Prof = p
	}
}

// CustomBinding is the real X-Change: conversions write the application's
// own descriptor (attached from the DescriptorPool at RX time), and the
// buffer-exchange workflow replaces mempool traffic.
type CustomBinding struct {
	cc   callCost
	Pool *DescriptorPool
	name string
}

// NewCustomBinding builds an X-Change binding over the given descriptor
// pool.
func NewCustomBinding(name string, pool *DescriptorPool, inlineLTO bool) *CustomBinding {
	return &CustomBinding{cc: callCost{inlined: inlineLTO}, Pool: pool, name: name}
}

func (b *CustomBinding) Name() string { return b.name }

// RxMeta attaches (or returns) the packet's application descriptor. It
// returns nil when the exchange pool is exhausted — the §3.1 sizing rule
// ("pool ≥ burst + enqueued packets") violated at run time. The PMD treats
// a nil descriptor as drop-with-accounting (stats.DropPoolExhausted)
// instead of crashing the run.
func (b *CustomBinding) RxMeta(p *pktbuf.Packet) *pktbuf.Meta {
	if p.Meta == nil {
		m := b.Pool.Get()
		if m == nil {
			return nil
		}
		m.ClearValues()
		p.Meta = m
	}
	return p.Meta
}

func (b *CustomBinding) set(core *machine.Core, p *pktbuf.Packet, f layout.FieldID, v uint64) {
	b.cc.charge(core)
	m := b.RxMeta(p)
	if m == nil {
		// Exhausted pool: the packet is on its way to being dropped by
		// the PMD; the conversion becomes a no-op.
		return
	}
	// A custom descriptor stores only the fields its layout declares;
	// everything else the conversion function drops on the floor — that
	// is the whole point (no useless stores).
	if m.L.Has(f) {
		m.Set(core, f, v)
	}
}

func (b *CustomBinding) SetDataLen(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldDataLen, uint64(v))
}
func (b *CustomBinding) SetPktLen(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldPktLen, uint64(v))
}
func (b *CustomBinding) SetVlanTCI(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldVlanTCI, uint64(v))
}
func (b *CustomBinding) SetRSSHash(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldRSSHash, uint64(v))
}
func (b *CustomBinding) SetPort(core *machine.Core, p *pktbuf.Packet, v uint16) {
	b.set(core, p, layout.FieldPort, uint64(v))
}
func (b *CustomBinding) SetPacketType(core *machine.Core, p *pktbuf.Packet, v uint32) {
	b.set(core, p, layout.FieldPacketType, uint64(v))
}

func (b *CustomBinding) GetDataLen(core *machine.Core, p *pktbuf.Packet) uint16 {
	b.cc.charge(core)
	return uint16(p.Meta.Get(core, layout.FieldDataLen))
}

func (b *CustomBinding) GetBufAddr(core *machine.Core, p *pktbuf.Packet) memsim.Addr {
	b.cc.charge(core)
	return memsim.Addr(p.Meta.Get(core, layout.FieldBufAddr))
}

func (b *CustomBinding) ExchangesBuffers() bool { return true }

// Release detaches and recycles the packet's descriptor after transmit —
// the application-side half of the TX exchange.
func (b *CustomBinding) Release(p *pktbuf.Packet) {
	if p.Meta != nil {
		b.Pool.Put(p.Meta)
		p.Meta = nil
	}
}
