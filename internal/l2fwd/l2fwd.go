// Package l2fwd reimplements the two pure-DPDK applications of §4.6:
// l2fwd, DPDK's classic L2 forwarding sample (minimal features, stock
// rte_mbuf), and l2fwd-xchg, the paper's X-Change port of it whose
// metadata shrinks to two fields (buffer address + packet length).
// Figure 11a compares them against FastClick and PacketMill.
package l2fwd

import (
	"packetmill/internal/dpdk"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
)

// App is a plain-DPDK forwarding loop over one PMD port.
type App struct {
	Port *dpdk.Port
	// SrcMAC/DstMAC are the rewrite constants (l2fwd updates the source
	// MAC and sets a per-port destination).
	SrcMAC, DstMAC netpkt.MAC

	rx []*pktbuf.Packet
	// LoopInstr is the per-packet main-loop overhead; l2fwd is lean.
	LoopInstr float64

	Forwarded uint64
}

// New builds the forwarding app over an existing PMD port (the testbed
// created the port with the binding that distinguishes l2fwd from
// l2fwd-xchg).
func New(port *dpdk.Port) *App {
	return &App{
		Port:      port,
		SrcMAC:    netpkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		DstMAC:    netpkt.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		rx:        make([]*pktbuf.Packet, port.Burst),
		LoopInstr: 24,
	}
}

// Step implements testbed.Engine: one rx burst → MAC rewrite → tx burst.
func (a *App) Step(core *machine.Core, now float64) int {
	// Pool-exhaustion drops are accounted in the port's counters.
	n, _ := a.Port.RxBurst(core, now, a.rx)
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		p := a.rx[i]
		core.Compute(a.LoopInstr)
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Store(core, 0, 12)
			copy(hdr[0:6], a.DstMAC[:])
			copy(hdr[6:12], a.SrcMAC[:])
		}
	}
	sent := a.Port.TxBurst(core, now, a.rx[:n])
	a.Forwarded += uint64(sent)
	// Ring-full drops: recycle like the sample app's rte_pktmbuf_free.
	for i := sent; i < n; i++ {
		a.Port.Drops.Add(stats.DropTxRingFull, 1)
		a.drop(core, a.rx[i])
	}
	return n
}

func (a *App) drop(core *machine.Core, p *pktbuf.Packet) {
	if a.Port.Pool != nil {
		if err := a.Port.Pool.Put(core, p); err != nil {
			panic(err) // a packet just held by the loop cannot double-free
		}
		return
	}
	// X-Change build: hand the buffer straight back to the driver.
	p.Meta = nil
	p.Reset(dpdk.DefaultHeadroom)
	a.Port.ProvideBuffers([]*pktbuf.Packet{p})
}

// MinimalDescriptorLayout returns the two-field descriptor of l2fwd-xchg
// ("the metadata is reduced to two simple fields — the buffer address and
// packet length — instead of the 128-B rte_mbuf").
func MinimalDescriptorLayout() *layout.Layout { return layout.MinimalXchg() }
