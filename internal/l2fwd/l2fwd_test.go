package l2fwd

import (
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/layout"
	"packetmill/internal/nic"
	"packetmill/internal/testbed"
)

func runApp(t *testing.T, model click.MetadataModel, ml *layout.Layout, freq float64) *testbed.Result {
	t.Helper()
	return runAppSized(t, model, ml, freq, 512, nil)
}

func runAppSized(t *testing.T, model click.MetadataModel, ml *layout.Layout, freq float64, size int, nicCfg *nic.Config) *testbed.Result {
	t.Helper()
	res, err := testbed.RunEngines(testbed.Options{
		FreqGHz: freq, Model: model, MetaLayout: ml, NICConfig: nicCfg,
		FixedSize: size, RateGbps: 100, Packets: 6000,
	}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
		return New(d.PortsFor[core][0]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestL2fwdForwards(t *testing.T) {
	res := runApp(t, click.Copying, nil, 2.3)
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
	if res.Dropped > res.Offered/2 {
		t.Fatalf("dropped %d of %d", res.Dropped, res.Offered)
	}
}

func TestL2fwdXchgForwards(t *testing.T) {
	res := runApp(t, click.XChange, MinimalDescriptorLayout(), 2.3)
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestXchgFasterThanStock(t *testing.T) {
	// Figure 11a: l2fwd-xchg forwards up to ~59% faster than l2fwd at
	// small packet sizes. Run both CPU-bound at 1.2 GHz.
	// Lift the NIC's per-queue PPS ceiling so the cores, not the
	// adapter, are the bottleneck (the paper's vectorized-PMD caveat).
	cfg := nic.DefaultConfig("uncapped")
	cfg.MaxQueuePPS = 0
	stock := runAppSized(t, click.Copying, nil, 1.2, 64, &cfg)
	xchg := runAppSized(t, click.XChange, MinimalDescriptorLayout(), 1.2, 64, &cfg)
	ratio := xchg.Mpps() / stock.Mpps()
	t.Logf("l2fwd=%.2f Mpps l2fwd-xchg=%.2f Mpps ratio=%.2f", stock.Mpps(), xchg.Mpps(), ratio)
	if ratio < 1.15 {
		t.Fatalf("l2fwd-xchg only %.2fx faster than l2fwd", ratio)
	}
}

func TestPayloadIntact(t *testing.T) {
	// The rewrite must not corrupt anything beyond the MAC addresses;
	// validated indirectly by the forwarded byte count matching packet
	// count × size.
	res := runApp(t, click.Copying, nil, 2.3)
	if res.Bytes != res.Packets*512 {
		t.Fatalf("bytes %d for %d packets of 512", res.Bytes, res.Packets)
	}
}
