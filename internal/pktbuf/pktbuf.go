// Package pktbuf defines the simulated packet buffer: real payload bytes
// paired with simulated addresses, plus a metadata descriptor whose fields
// are read and written *through* a layout so every access is charged to
// the cache hierarchy at the right line.
//
// A Packet is the unit every engine in this repository moves around. The
// three metadata-management models differ only in how Packets are wired:
//
//   - Copying: Packet.Mbuf is a distinct rte_mbuf descriptor in the DPDK
//     mempool; Packet.Meta is the framework's own object elsewhere, and
//     the RX path copies fields from one to the other.
//   - Overlaying: Packet.Meta sits at the mbuf's address with a layout
//     that carries the whole rte_mbuf as a fixed prefix; Mbuf is nil.
//   - X-Change: Packet.Meta is an application descriptor from a small
//     recycled pool; the driver writes it directly; Mbuf is nil.
package pktbuf

import (
	"fmt"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
)

// Meta is one metadata descriptor instance: a simulated base address, the
// layout giving each field its offset, and the current field values.
// Values live host-side; the address+layout exist so accesses can be
// charged at the correct simulated cache line.
type Meta struct {
	Base memsim.Addr
	L    *layout.Layout
	// Prof, when non-nil, accumulates the access profile the reordering
	// pass consumes.
	Prof *layout.OrderProfile
	vals [layout.NumFields]uint64
}

// Get loads field f, charging the read to core.
func (m *Meta) Get(core *machine.Core, f layout.FieldID) uint64 {
	core.Load(m.Base+memsim.Addr(m.L.Offset(f)), uint64(f.Size()))
	if m.Prof != nil {
		m.Prof.Record(f)
	}
	return m.vals[f]
}

// Set stores v into field f, charging the write to core.
func (m *Meta) Set(core *machine.Core, f layout.FieldID, v uint64) {
	core.Store(m.Base+memsim.Addr(m.L.Offset(f)), uint64(f.Size()))
	if m.Prof != nil {
		m.Prof.Record(f)
	}
	m.vals[f] = v
}

// Peek reads a field without charging — for assertions, tests, and host
// bookkeeping that has no hardware counterpart.
func (m *Meta) Peek(f layout.FieldID) uint64 { return m.vals[f] }

// Poke writes a field without charging.
func (m *Meta) Poke(f layout.FieldID, v uint64) { m.vals[f] = v }

// CopyField copies field f from src, charging one load on src and one
// store on dst — the Copying model's per-field cost.
func (m *Meta) CopyField(core *machine.Core, src *Meta, f layout.FieldID) {
	m.Set(core, f, src.Get(core, f))
}

// ClearValues zeroes all field values (host side only).
func (m *Meta) ClearValues() { m.vals = [layout.NumFields]uint64{} }

// Packet is a packet in flight: payload bytes plus its descriptor(s).
type Packet struct {
	// buf is the full backing store: headroom followed by data room.
	buf []byte
	// BufAddr is the simulated address of buf[0].
	BufAddr memsim.Addr
	// dataOff/dataLen delimit the frame within buf.
	dataOff, dataLen int
	// origHeadroom is the headroom the buffer was created with — the
	// reset target when a driver recycles it. A pool may configure more
	// than the stock DPDK headroom (e.g. room for tunnel encapsulation),
	// so recycling must not assume a global constant.
	origHeadroom int

	// Meta is the application-visible descriptor (always non-nil once
	// the packet is in an engine).
	Meta *Meta
	// Mbuf is the separate DPDK descriptor under the Copying model;
	// nil when Meta overlays or replaces it.
	Mbuf *Meta

	// ArrivalNS is the wire arrival timestamp, for latency measurement.
	ArrivalNS float64

	// TraceID is nonzero while the packet is being followed by the
	// flight recorder (internal/trace): the PMD's 1-in-N sampler sets
	// it at RX and the TX/drop paths emit the matching depart or drop
	// event and clear it.
	TraceID uint64

	// Owner is the pool the buffer belongs to (rte_mbuf's pool pointer).
	// A free routed to the wrong pool forwards to the owner instead of
	// corrupting a foreign free list; pktbuf stays layer-agnostic, so the
	// field is opaque here.
	Owner any

	// next links packets into a Batch (FastClick's linked-list batching).
	next *Packet
}

// NewPacket wraps a backing buffer of the given simulated address and
// headroom. The data region is empty until SetFrame or DMA fills it.
func NewPacket(buf []byte, addr memsim.Addr, headroom int) *Packet {
	if headroom > len(buf) {
		panic("pktbuf: headroom larger than buffer")
	}
	return &Packet{buf: buf, BufAddr: addr, dataOff: headroom, origHeadroom: headroom}
}

// OrigHeadroom returns the headroom the packet was created with, i.e. the
// value a recycling driver should Reset to.
func (p *Packet) OrigHeadroom() int { return p.origHeadroom }

// Reset rewinds the packet to an empty frame at the given headroom and
// forgets chaining. Field values in Meta/Mbuf are left to the caller.
func (p *Packet) Reset(headroom int) {
	p.dataOff = headroom
	p.dataLen = 0
	p.next = nil
	p.ArrivalNS = 0
	p.TraceID = 0
}

// SetFrame copies frame into the data region (host bytes only; DMA cost is
// charged by the NIC model).
func (p *Packet) SetFrame(frame []byte) {
	if p.dataOff+len(frame) > len(p.buf) {
		panic(fmt.Sprintf("pktbuf: frame %dB exceeds buffer room %dB", len(frame), len(p.buf)-p.dataOff))
	}
	copy(p.buf[p.dataOff:], frame)
	p.dataLen = len(frame)
}

// Bytes returns the current frame bytes (no charge; pair with Load/Store
// for accounting).
func (p *Packet) Bytes() []byte { return p.buf[p.dataOff : p.dataOff+p.dataLen] }

// Len returns the frame length.
func (p *Packet) Len() int { return p.dataLen }

// DataAddr returns the simulated address of the first frame byte.
func (p *Packet) DataAddr() memsim.Addr { return p.BufAddr + memsim.Addr(p.dataOff) }

// Headroom returns the bytes available before the frame.
func (p *Packet) Headroom() int { return p.dataOff }

// Tailroom returns the bytes available after the frame.
func (p *Packet) Tailroom() int { return len(p.buf) - p.dataOff - p.dataLen }

// Load charges a read of frame bytes [off, off+n) and returns the slice.
func (p *Packet) Load(core *machine.Core, off, n int) []byte {
	p.check(off, n)
	core.Load(p.DataAddr()+memsim.Addr(off), uint64(n))
	return p.buf[p.dataOff+off : p.dataOff+off+n]
}

// Store charges a write of frame bytes [off, off+n) and returns the slice
// for the caller to fill.
func (p *Packet) Store(core *machine.Core, off, n int) []byte {
	p.check(off, n)
	core.Store(p.DataAddr()+memsim.Addr(off), uint64(n))
	return p.buf[p.dataOff+off : p.dataOff+off+n]
}

func (p *Packet) check(off, n int) {
	if off < 0 || n < 0 || off+n > p.dataLen {
		panic(fmt.Sprintf("pktbuf: access [%d,%d) outside frame of %dB", off, off+n, p.dataLen))
	}
}

// Push extends the frame n bytes into the headroom (for encapsulation) and
// returns the new front slice. It charges nothing; callers charge their
// own writes via Store.
func (p *Packet) Push(n int) []byte {
	if n > p.dataOff {
		panic("pktbuf: Push exceeds headroom")
	}
	p.dataOff -= n
	p.dataLen += n
	return p.buf[p.dataOff : p.dataOff+n]
}

// Pull shrinks the frame from the front by n bytes (decapsulation).
func (p *Packet) Pull(n int) {
	if n > p.dataLen {
		panic("pktbuf: Pull exceeds frame")
	}
	p.dataOff += n
	p.dataLen -= n
}

// Trim shrinks the frame from the back to length n.
func (p *Packet) Trim(n int) {
	if n > p.dataLen {
		panic("pktbuf: Trim grows frame")
	}
	p.dataLen = n
}

// Extend grows the frame n bytes into the tailroom (for padding); the new
// bytes keep whatever the buffer held.
func (p *Packet) Extend(n int) {
	if n > p.Tailroom() {
		panic("pktbuf: Extend exceeds tailroom")
	}
	p.dataLen += n
}

// Batch is FastClick's linked-list packet batch. Chaining uses the
// packets' metadata Next field so batch construction and traversal are
// charged like the pointer chases they are.
type Batch struct {
	head, tail *Packet
	count      int
}

// Append links p at the end of the batch, charging the Next-field store on
// the previous tail when the layout carries a Next field (array-based
// engines pass core=nil to skip charging and use host-side links only).
func (b *Batch) Append(core *machine.Core, p *Packet) {
	p.next = nil
	if b.tail == nil {
		b.head, b.tail = p, p
	} else {
		if core != nil && b.tail.Meta != nil && b.tail.Meta.L.Has(layout.FieldNext) {
			b.tail.Meta.Set(core, layout.FieldNext, uint64(p.BufAddr))
		}
		b.tail.next = p
		b.tail = p
	}
	b.count++
}

// Reset empties the batch for reuse without touching the simulated
// ledger. Steady-state elements keep one Batch per output port and Reset
// it each poll instead of allocating a fresh one — the linked packets
// themselves were already handed downstream or killed.
func (b *Batch) Reset() { b.head, b.tail, b.count = nil, nil, 0 }

// Head returns the first packet (nil if empty).
func (b *Batch) Head() *Packet { return b.head }

// Count returns the number of packets.
func (b *Batch) Count() int { return b.count }

// Empty reports whether the batch holds no packets.
func (b *Batch) Empty() bool { return b.count == 0 }

// Next returns p's successor, charging the Next-field load when charged
// chaining is in use.
func (b *Batch) Next(core *machine.Core, p *Packet) *Packet {
	if p.next != nil && core != nil && p.Meta != nil && p.Meta.L.Has(layout.FieldNext) {
		p.Meta.Get(core, layout.FieldNext)
	}
	return p.next
}

// ForEach traverses the batch, charging Next loads, and calls fn for each
// packet. fn returning false stops early.
func (b *Batch) ForEach(core *machine.Core, fn func(*Packet) bool) {
	for p := b.head; p != nil; {
		nxt := b.Next(core, p)
		if !fn(p) {
			return
		}
		p = nxt
	}
}

// Take removes and returns all packets as a slice (host-side helper for
// engines that work array-at-a-time); the batch becomes empty.
func (b *Batch) Take() []*Packet {
	out := make([]*Packet, 0, b.count)
	for p := b.head; p != nil; {
		nxt := p.next
		p.next = nil
		out = append(out, p)
		p = nxt
	}
	b.head, b.tail, b.count = nil, nil, 0
	return out
}
