package pktbuf

import (
	"bytes"
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
)

func testCore() *machine.Core {
	_, c := machine.Default(2.0)
	return c
}

func newMeta(base memsim.Addr) *Meta {
	return &Meta{Base: base, L: layout.ClickPacket()}
}

func TestMetaGetSetRoundTrip(t *testing.T) {
	c := testCore()
	m := newMeta(0x1000)
	m.Set(c, layout.FieldDataLen, 1500)
	if got := m.Get(c, layout.FieldDataLen); got != 1500 {
		t.Fatalf("Get = %d", got)
	}
	if m.Peek(layout.FieldDataLen) != 1500 {
		t.Fatal("Peek mismatch")
	}
}

func TestMetaAccessIsCharged(t *testing.T) {
	c := testCore()
	m := newMeta(0x1000)
	before := c.Snapshot()
	m.Set(c, layout.FieldDataLen, 99)
	d := c.Snapshot().Delta(before)
	if d.Instructions == 0 || d.BusyCycles == 0 {
		t.Fatal("metadata access was free")
	}
}

func TestMetaAccessChargedAtFieldOffset(t *testing.T) {
	// Two fields in different cache lines of the struct must touch
	// different simulated lines: a cold miss each.
	c := testCore()
	l := layout.RteMbuf()
	m := &Meta{Base: 0x10000, L: l}
	before := c.Snapshot()
	m.Set(c, layout.FieldBufAddr, 1) // line 0
	m.Set(c, layout.FieldPool, 2)    // line 1
	d := c.Snapshot().Delta(before)
	if d.LLCLoadMisses+d.LLCStoreMisses < 2 {
		t.Fatalf("cross-line fields did not cause two cold misses: %+v", d)
	}
}

func TestMetaProfileRecording(t *testing.T) {
	c := testCore()
	m := newMeta(0x1000)
	var prof layout.OrderProfile
	m.Prof = &prof
	m.Set(c, layout.FieldAnnoDstIP, 1)
	m.Get(c, layout.FieldAnnoDstIP)
	if prof.Counts[layout.FieldAnnoDstIP] != 2 {
		t.Fatalf("profile count = %d", prof.Counts[layout.FieldAnnoDstIP])
	}
}

func TestCopyFieldChargesBothSides(t *testing.T) {
	c := testCore()
	src := &Meta{Base: 0x2000, L: layout.RteMbuf()}
	dst := newMeta(0x3000)
	src.Poke(layout.FieldDataLen, 777)
	before := c.Snapshot()
	dst.CopyField(c, src, layout.FieldDataLen)
	d := c.Snapshot().Delta(before)
	if dst.Peek(layout.FieldDataLen) != 777 {
		t.Fatal("value not copied")
	}
	if d.Instructions < 2 {
		t.Fatal("copy under-charged")
	}
}

func TestPacketFrameOps(t *testing.T) {
	p := NewPacket(make([]byte, 2048), 0x40000, 128)
	frame := bytes.Repeat([]byte{0xAB}, 100)
	p.SetFrame(frame)
	if p.Len() != 100 || p.Headroom() != 128 || p.Tailroom() != 2048-128-100 {
		t.Fatalf("geometry: len=%d head=%d tail=%d", p.Len(), p.Headroom(), p.Tailroom())
	}
	if !bytes.Equal(p.Bytes(), frame) {
		t.Fatal("bytes mismatch")
	}
	if p.DataAddr() != 0x40000+128 {
		t.Fatalf("data addr %#x", p.DataAddr())
	}
}

func TestPacketLoadStoreCharged(t *testing.T) {
	c := testCore()
	p := NewPacket(make([]byte, 2048), 0x40000, 128)
	p.SetFrame(make([]byte, 200))
	before := c.Snapshot()
	b := p.Load(c, 0, 14)
	if len(b) != 14 {
		t.Fatalf("load slice len %d", len(b))
	}
	d := c.Snapshot().Delta(before)
	if d.Instructions == 0 {
		t.Fatal("data load was free")
	}
	w := p.Store(c, 0, 6)
	copy(w, []byte{1, 2, 3, 4, 5, 6})
	if p.Bytes()[0] != 1 {
		t.Fatal("store slice not aliased to frame")
	}
}

func TestPacketAccessBoundsPanics(t *testing.T) {
	c := testCore()
	p := NewPacket(make([]byte, 256), 0x40000, 64)
	p.SetFrame(make([]byte, 64))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-frame access did not panic")
		}
	}()
	p.Load(c, 60, 10)
}

func TestPushPullTrim(t *testing.T) {
	p := NewPacket(make([]byte, 512), 0x50000, 64)
	p.SetFrame(bytes.Repeat([]byte{7}, 100))
	front := p.Push(4)
	if len(front) != 4 || p.Len() != 104 || p.Headroom() != 60 {
		t.Fatalf("push: len=%d head=%d", p.Len(), p.Headroom())
	}
	copy(front, []byte{1, 2, 3, 4})
	if p.Bytes()[0] != 1 || p.Bytes()[4] != 7 {
		t.Fatal("push corrupted frame")
	}
	p.Pull(4)
	if p.Len() != 100 || p.Bytes()[0] != 7 {
		t.Fatal("pull broken")
	}
	p.Trim(50)
	if p.Len() != 50 {
		t.Fatal("trim broken")
	}
}

func TestPushBeyondHeadroomPanics(t *testing.T) {
	p := NewPacket(make([]byte, 256), 0x50000, 8)
	p.SetFrame(make([]byte, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Push(9)
}

func TestSetFrameOverflowPanics(t *testing.T) {
	p := NewPacket(make([]byte, 128), 0x50000, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SetFrame(make([]byte, 100))
}

func TestResetRewinds(t *testing.T) {
	p := NewPacket(make([]byte, 256), 0x60000, 32)
	p.SetFrame(make([]byte, 100))
	p.Pull(10)
	p.ArrivalNS = 42
	p.Reset(32)
	if p.Len() != 0 || p.Headroom() != 32 || p.ArrivalNS != 0 {
		t.Fatal("reset incomplete")
	}
}

func makePkt(addr memsim.Addr) *Packet {
	p := NewPacket(make([]byte, 256), addr, 32)
	p.Meta = &Meta{Base: addr - 0x100, L: layout.ClickPacket()}
	p.SetFrame(make([]byte, 64))
	return p
}

func TestBatchAppendTraverse(t *testing.T) {
	c := testCore()
	var b Batch
	if !b.Empty() {
		t.Fatal("fresh batch not empty")
	}
	var pkts []*Packet
	for i := 0; i < 5; i++ {
		p := makePkt(memsim.Addr(0x10000 + i*0x1000))
		pkts = append(pkts, p)
		b.Append(c, p)
	}
	if b.Count() != 5 || b.Head() != pkts[0] {
		t.Fatalf("count=%d", b.Count())
	}
	i := 0
	b.ForEach(c, func(p *Packet) bool {
		if p != pkts[i] {
			t.Fatalf("order broken at %d", i)
		}
		i++
		return true
	})
	if i != 5 {
		t.Fatalf("visited %d", i)
	}
}

func TestBatchForEachEarlyStop(t *testing.T) {
	c := testCore()
	var b Batch
	for i := 0; i < 5; i++ {
		b.Append(c, makePkt(memsim.Addr(0x20000+i*0x1000)))
	}
	n := 0
	b.ForEach(c, func(*Packet) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBatchChainingCharged(t *testing.T) {
	c := testCore()
	var b Batch
	b.Append(c, makePkt(0x30000))
	before := c.Snapshot()
	b.Append(c, makePkt(0x31000)) // must charge the Next store on tail
	d := c.Snapshot().Delta(before)
	if d.Instructions == 0 {
		t.Fatal("chaining store was free")
	}
}

func TestBatchUnchargedMode(t *testing.T) {
	var b Batch
	p1, p2 := makePkt(0x40000), makePkt(0x41000)
	b.Append(nil, p1)
	b.Append(nil, p2)
	if b.Count() != 2 {
		t.Fatal("uncharged append broken")
	}
	got := 0
	b.ForEach(nil, func(*Packet) bool { got++; return true })
	if got != 2 {
		t.Fatal("uncharged traversal broken")
	}
}

func TestBatchTake(t *testing.T) {
	c := testCore()
	var b Batch
	for i := 0; i < 4; i++ {
		b.Append(c, makePkt(memsim.Addr(0x50000+i*0x1000)))
	}
	out := b.Take()
	if len(out) != 4 || !b.Empty() || b.Head() != nil {
		t.Fatalf("take: %d left empty=%v", len(out), b.Empty())
	}
	for _, p := range out {
		if p.next != nil {
			t.Fatal("take left links behind")
		}
	}
}
