package pcapio

import (
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the checked-in capture fixtures")

// fixtureFrames is the deterministic frame set every codec test encodes:
// a minimum-size frame, an odd length (forcing pcapng padding), and a
// full MTU frame, with timestamps crossing a second boundary and carrying
// sub-microsecond digits that only nanosecond captures can hold.
func fixtureFrames() (frames [][]byte, tsNS []int64) {
	lens := []int{60, 61, 1514}
	tsNS = []int64{1_000_000_123, 1_999_999_999, 2_000_000_001_337}
	for i, n := range lens {
		f := make([]byte, n)
		for j := range f {
			f[j] = byte(i*37 + j)
		}
		// A plausible EtherType so frame sniffers don't choke.
		f[12], f[13] = 0x08, 0x00
		frames = append(frames, f)
	}
	return frames, tsNS
}

func encodeAll(t *testing.T, o WriterOptions, frames [][]byte, tsNS []int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, o)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := range frames {
		if err := w.WriteFrame(frames[i], tsNS[i]); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Frames() != uint64(len(frames)) {
		t.Fatalf("Frames() = %d, want %d", w.Frames(), len(frames))
	}
	return buf.Bytes()
}

func decodeAll(t *testing.T, data []byte) (frames [][]byte, tsNS []int64, format Format) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for {
		f, ts, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		frames = append(frames, append([]byte(nil), f...))
		tsNS = append(tsNS, ts)
	}
	if lt := r.LinkType(); lt != LinkTypeEthernet {
		t.Fatalf("LinkType = %d, want %d", lt, LinkTypeEthernet)
	}
	return frames, tsNS, r.Format()
}

// fixtureVariants spans both containers, both byte orders, and both
// timestamp resolutions.
var fixtureVariants = []struct {
	name string
	opts WriterOptions
}{
	{"pcap_le_us.pcap", WriterOptions{Format: FormatPcap}},
	{"pcap_le_ns.pcap", WriterOptions{Format: FormatPcap, Nanosecond: true}},
	{"pcap_be_us.pcap", WriterOptions{Format: FormatPcap, ByteOrder: binary.BigEndian}},
	{"pcap_be_ns.pcap", WriterOptions{Format: FormatPcap, ByteOrder: binary.BigEndian, Nanosecond: true}},
	{"pcapng_le_us.pcapng", WriterOptions{Format: FormatPcapNG}},
	{"pcapng_le_ns.pcapng", WriterOptions{Format: FormatPcapNG, Nanosecond: true}},
	{"pcapng_be_us.pcapng", WriterOptions{Format: FormatPcapNG, ByteOrder: binary.BigEndian}},
	{"pcapng_be_ns.pcapng", WriterOptions{Format: FormatPcapNG, ByteOrder: binary.BigEndian, Nanosecond: true}},
}

// TestRoundTrip encodes and decodes every variant in memory: frames must
// come back byte-identical, timestamps exact under nanosecond resolution
// and truncated to the microsecond otherwise.
func TestRoundTrip(t *testing.T) {
	frames, tsNS := fixtureFrames()
	for _, v := range fixtureVariants {
		t.Run(v.name, func(t *testing.T) {
			data := encodeAll(t, v.opts, frames, tsNS)
			got, gotTS, format := decodeAll(t, data)
			if format != v.opts.Format {
				t.Fatalf("detected format %d, want %d", format, v.opts.Format)
			}
			if len(got) != len(frames) {
				t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
			}
			for i := range frames {
				if !bytes.Equal(got[i], frames[i]) {
					t.Errorf("frame %d differs after round trip", i)
				}
				want := tsNS[i]
				if !v.opts.Nanosecond {
					want = want / 1000 * 1000
				}
				if gotTS[i] != want {
					t.Errorf("frame %d ts = %d, want %d", i, gotTS[i], want)
				}
			}
		})
	}
}

// TestFixtures pins the on-disk encodings: the checked-in files must be
// byte-for-byte what the writer produces today (catching format drift)
// and must decode to the fixture frames (catching reader drift against
// files other tools would have written).
func TestFixtures(t *testing.T) {
	frames, tsNS := fixtureFrames()
	for _, v := range fixtureVariants {
		t.Run(v.name, func(t *testing.T) {
			path := filepath.Join("testdata", v.name)
			want := encodeAll(t, v.opts, frames, tsNS)
			if *update {
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatalf("update fixture: %v", err)
				}
			}
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read fixture (run with -update to generate): %v", err)
			}
			if !bytes.Equal(disk, want) {
				t.Fatalf("writer output drifted from checked-in fixture %s", v.name)
			}
			got, gotTS, _ := decodeAll(t, disk)
			if len(got) != len(frames) {
				t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
			}
			for i := range frames {
				if !bytes.Equal(got[i], frames[i]) {
					t.Errorf("frame %d differs from fixture", i)
				}
				wantTS := tsNS[i]
				if !v.opts.Nanosecond {
					wantTS = wantTS / 1000 * 1000
				}
				if gotTS[i] != wantTS {
					t.Errorf("frame %d ts = %d, want %d", i, gotTS[i], wantTS)
				}
			}
		})
	}
}

// TestHandHexedPcap decodes a classic little-endian microsecond capture
// assembled by hand, byte by byte, independent of the Writer — the
// ground-truth check that the wire format really is libpcap's.
func TestHandHexedPcap(t *testing.T) {
	payload := make([]byte, 60)
	for i := range payload {
		payload[i] = byte(i)
	}
	raw := []byte{
		0xd4, 0xc3, 0xb2, 0xa1, // magic, LE, microseconds
		0x02, 0x00, 0x04, 0x00, // version 2.4
		0x00, 0x00, 0x00, 0x00, // thiszone
		0x00, 0x00, 0x00, 0x00, // sigfigs
		0x00, 0x00, 0x04, 0x00, // snaplen 0x40000
		0x01, 0x00, 0x00, 0x00, // linktype Ethernet
		// record: ts=2s + 3µs, incl=orig=60
		0x02, 0x00, 0x00, 0x00,
		0x03, 0x00, 0x00, 0x00,
		0x3c, 0x00, 0x00, 0x00,
		0x3c, 0x00, 0x00, 0x00,
	}
	raw = append(raw, payload...)
	frames, tsNS, format := decodeAll(t, raw)
	if format != FormatPcap {
		t.Fatalf("format = %d, want pcap", format)
	}
	if len(frames) != 1 || !bytes.Equal(frames[0], payload) {
		t.Fatalf("payload mismatch: %d frames", len(frames))
	}
	if want := int64(2_000_003_000); tsNS[0] != want {
		t.Fatalf("ts = %d, want %d", tsNS[0], want)
	}
	// The writer must produce the identical bytes (modulo snaplen, which
	// it defaults differently — so pin it).
	got := encodeAll(t, WriterOptions{Format: FormatPcap, SnapLen: 0x40000},
		[][]byte{payload}, []int64{2_000_003_000})
	if !bytes.Equal(got, raw) {
		t.Fatalf("writer bytes differ from hand-assembled capture")
	}
}

// TestPcapNGSkipsUnknownBlocks interleaves an unknown block and an
// Interface Statistics-style block between packets; the reader must skip
// them and still return every frame.
func TestPcapNGSkipsUnknownBlocks(t *testing.T) {
	frames, tsNS := fixtureFrames()
	data := encodeAll(t, WriterOptions{Format: FormatPcapNG, Nanosecond: true},
		frames[:1], tsNS[:1])
	// Append an unknown block (type 0x0BAD, 16 bytes, 4-byte body).
	unknown := make([]byte, 16)
	le := binary.LittleEndian
	le.PutUint32(unknown[0:], 0x0BAD)
	le.PutUint32(unknown[4:], 16)
	le.PutUint32(unknown[8:], 0xdeadbeef)
	le.PutUint32(unknown[12:], 16)
	data = append(data, unknown...)
	// Then a second EPB, written through the writer against a fresh
	// header and grafted on (strip its 60-byte SHB+IDB preamble).
	more := encodeAll(t, WriterOptions{Format: FormatPcapNG, Nanosecond: true},
		frames[1:2], tsNS[1:2])
	data = append(data, more[60:]...)
	got, gotTS, _ := decodeAll(t, data)
	if len(got) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(got))
	}
	if !bytes.Equal(got[1], frames[1]) || gotTS[1] != tsNS[1] {
		t.Fatalf("frame after unknown block corrupted")
	}
}

// TestSnapLenTruncates verifies the writer honors the snapshot length.
func TestSnapLenTruncates(t *testing.T) {
	frames, tsNS := fixtureFrames()
	data := encodeAll(t, WriterOptions{Format: FormatPcap, SnapLen: 96}, frames, tsNS)
	got, _, _ := decodeAll(t, data)
	for i, f := range got {
		want := len(frames[i])
		if want > 96 {
			want = 96
		}
		if len(f) != want {
			t.Errorf("frame %d: len %d, want %d", i, len(f), want)
		}
	}
}
