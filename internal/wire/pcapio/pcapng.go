// pcapng codec: the block-structured successor to classic pcap
// (draft-ietf-opsawg-pcapng). The writer emits one section — SHB, one
// Ethernet IDB carrying an if_tsresol option, then one EPB per frame.
// The reader walks blocks in either byte order, honors per-interface
// timestamp resolution, tolerates unknown block types, and accepts
// multi-section files.
package pcapio

import (
	"encoding/binary"
	"fmt"
	"io"
)

// pcapng block type codes.
const (
	ngBlockSHB = 0x0a0d0d0a // Section Header Block
	ngBlockIDB = 0x00000001 // Interface Description Block
	ngBlockSPB = 0x00000003 // Simple Packet Block
	ngBlockEPB = 0x00000006 // Enhanced Packet Block
)

// ngByteOrderMagic distinguishes the section's endianness inside the SHB
// (the SHB type code itself reads the same either way).
const ngByteOrderMagic = 0x1a2b3c4d

// ngOptTsresol is the IDB option declaring timestamp resolution: one
// byte, 10^-v seconds (or 2^-v with the MSB set).
const (
	ngOptEnd     = 0
	ngOptTsresol = 9
)

func pad4(n int) int { return (n + 3) &^ 3 }

// writePcapNGHeader emits the SHB and the single Ethernet IDB.
func (w *Writer) writePcapNGHeader() error {
	// SHB: 12 bytes framing + 16 bytes body.
	h := w.hdr[:28]
	w.bo.PutUint32(h[0:], ngBlockSHB)
	w.bo.PutUint32(h[4:], 28)
	w.bo.PutUint32(h[8:], ngByteOrderMagic)
	w.bo.PutUint16(h[12:], 1) // version 1.0
	w.bo.PutUint16(h[14:], 0)
	// Section length unknown: -1 means "walk the blocks".
	w.bo.PutUint64(h[16:], ^uint64(0))
	w.bo.PutUint32(h[24:], 28)
	if _, err := w.bw.Write(h); err != nil {
		return err
	}
	// IDB: framing + linktype/reserved/snaplen (8) + if_tsresol option
	// (8 with padding) + end-of-options (4) = 32 bytes total.
	h = w.hdr[:32]
	w.bo.PutUint32(h[0:], ngBlockIDB)
	w.bo.PutUint32(h[4:], 32)
	w.bo.PutUint16(h[8:], LinkTypeEthernet)
	w.bo.PutUint16(h[10:], 0) // reserved
	w.bo.PutUint32(h[12:], w.o.SnapLen)
	w.bo.PutUint16(h[16:], ngOptTsresol)
	w.bo.PutUint16(h[18:], 1)
	resol := byte(6)
	if w.o.Nanosecond {
		resol = 9
	}
	h[20], h[21], h[22], h[23] = resol, 0, 0, 0 // value + 3 pad
	w.bo.PutUint16(h[24:], ngOptEnd)
	w.bo.PutUint16(h[26:], 0)
	w.bo.PutUint32(h[28:], 32)
	_, err := w.bw.Write(h)
	return err
}

// writeEPB emits one Enhanced Packet Block for interface 0.
func (w *Writer) writeEPB(data []byte, tsNS int64) error {
	ticks := uint64(tsNS)
	if !w.o.Nanosecond {
		ticks = uint64(tsNS / 1000)
	}
	padded := pad4(len(data))
	total := 12 + 20 + padded
	h := w.hdr[:28]
	w.bo.PutUint32(h[0:], ngBlockEPB)
	w.bo.PutUint32(h[4:], uint32(total))
	w.bo.PutUint32(h[8:], 0) // interface 0
	w.bo.PutUint32(h[12:], uint32(ticks>>32))
	w.bo.PutUint32(h[16:], uint32(ticks))
	w.bo.PutUint32(h[20:], uint32(len(data)))
	w.bo.PutUint32(h[24:], uint32(len(data)))
	if _, err := w.bw.Write(h); err != nil {
		return err
	}
	if _, err := w.bw.Write(data); err != nil {
		return err
	}
	var tail [8]byte // up to 3 pad bytes + trailing total length
	pad := padded - len(data)
	w.bo.PutUint32(tail[pad:], uint32(total))
	_, err := w.bw.Write(tail[:pad+4])
	return err
}

// readSHB parses a Section Header Block body after its type code has
// been consumed, establishing the section's byte order.
func (r *Reader) readSHB() error {
	// Total length (4) + byte-order magic (4): the BOM fixes endianness,
	// then the length is re-read in the right order.
	h := r.hdr[:8]
	if _, err := io.ReadFull(r.br, h); err != nil {
		return fmt.Errorf("wire: pcapng SHB: %w", err)
	}
	switch {
	case binary.LittleEndian.Uint32(h[4:]) == ngByteOrderMagic:
		r.bo = binary.LittleEndian
	case binary.BigEndian.Uint32(h[4:]) == ngByteOrderMagic:
		r.bo = binary.BigEndian
	default:
		return fmt.Errorf("wire: pcapng byte-order magic %#08x unrecognized", binary.LittleEndian.Uint32(h[4:]))
	}
	total := int(r.bo.Uint32(h[0:]))
	if total < 28 || total%4 != 0 || total > maxFrameLen {
		return fmt.Errorf("wire: pcapng SHB length %d invalid", total)
	}
	// Skip version, section length, options, and the trailing length.
	if err := r.skip(total - 12); err != nil {
		return err
	}
	// A new section forgets the previous one's interfaces.
	r.ifaces = r.ifaces[:0]
	return nil
}

// nextNG walks blocks until it produces a frame or hits EOF.
func (r *Reader) nextNG() ([]byte, int64, error) {
	for {
		h := r.hdr[:8]
		if _, err := io.ReadFull(r.br, h); err != nil {
			if err == io.EOF {
				return nil, 0, io.EOF
			}
			return nil, 0, fmt.Errorf("wire: pcapng block header: %w", err)
		}
		typ := r.bo.Uint32(h[0:])
		if typ == ngBlockSHB {
			// New section: push back nothing — readSHB wants exactly the
			// bytes that follow the type code.
			if err := r.readSHB(); err != nil {
				return nil, 0, err
			}
			continue
		}
		total := int(r.bo.Uint32(h[4:]))
		if total < 12 || total%4 != 0 || total > maxFrameLen+64 {
			return nil, 0, fmt.Errorf("wire: pcapng block length %d invalid", total)
		}
		body := total - 12
		switch typ {
		case ngBlockIDB:
			if err := r.readIDB(body); err != nil {
				return nil, 0, err
			}
		case ngBlockEPB:
			frame, ts, err := r.readEPB(body)
			if err != nil {
				return nil, 0, err
			}
			if err := r.skipTrailer(total); err != nil {
				return nil, 0, err
			}
			return frame, ts, nil
		case ngBlockSPB:
			frame, err := r.readSPB(body)
			if err != nil {
				return nil, 0, err
			}
			if err := r.skipTrailer(total); err != nil {
				return nil, 0, err
			}
			return frame, 0, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
			if err := r.skip(body); err != nil {
				return nil, 0, err
			}
		}
		if err := r.skipTrailer(total); err != nil {
			return nil, 0, err
		}
	}
}

// readIDB registers an interface with its timestamp scaling.
func (r *Reader) readIDB(body int) error {
	if body < 8 {
		return fmt.Errorf("wire: pcapng IDB body %dB too short", body)
	}
	h := r.hdr[:8]
	if _, err := io.ReadFull(r.br, h); err != nil {
		return fmt.Errorf("wire: pcapng IDB: %w", err)
	}
	iface := ngIface{
		linkType: uint32(r.bo.Uint16(h[0:])),
		// Default resolution is microseconds (tsresol absent).
		scaleNum: 1000, scaleDen: 1,
	}
	r.snaplen = r.bo.Uint32(h[4:])
	rest := body - 8
	// Options: code u16, len u16, value padded to 4.
	for rest >= 4 {
		oh := r.hdr[:4]
		if _, err := io.ReadFull(r.br, oh); err != nil {
			return fmt.Errorf("wire: pcapng IDB options: %w", err)
		}
		rest -= 4
		code, olen := r.bo.Uint16(oh[0:]), int(r.bo.Uint16(oh[2:]))
		if code == ngOptEnd {
			break
		}
		padded := pad4(olen)
		if padded > rest {
			return fmt.Errorf("wire: pcapng IDB option %d overruns block", code)
		}
		r.grow(padded)
		if _, err := io.ReadFull(r.br, r.buf[:padded]); err != nil {
			return err
		}
		rest -= padded
		if code == ngOptTsresol && olen >= 1 {
			iface.scaleNum, iface.scaleDen = tsresolScale(r.buf[0])
		}
	}
	if err := r.skip(rest); err != nil {
		return err
	}
	r.ifaces = append(r.ifaces, iface)
	return nil
}

// tsresolScale converts an if_tsresol byte into the ns = ticks*num/den
// scaling. MSB clear: 10^-v seconds per tick; MSB set: 2^-v.
func tsresolScale(v byte) (num, den int64) {
	if v&0x80 == 0 {
		e := int(v)
		switch {
		case e <= 9:
			num = 1
			for i := e; i < 9; i++ {
				num *= 10
			}
			return num, 1
		default:
			den = 1
			for i := 9; i < e && i < 19; i++ {
				den *= 10
			}
			return 1, den
		}
	}
	w := uint(v & 0x7f)
	if w > 62 {
		w = 62
	}
	return 1e9, int64(1) << w
}

// readEPB decodes an Enhanced Packet Block body (sans trailer).
func (r *Reader) readEPB(body int) ([]byte, int64, error) {
	if body < 20 {
		return nil, 0, fmt.Errorf("wire: pcapng EPB body %dB too short", body)
	}
	h := r.hdr[:20]
	if _, err := io.ReadFull(r.br, h); err != nil {
		return nil, 0, fmt.Errorf("wire: pcapng EPB: %w", err)
	}
	ifID := int(r.bo.Uint32(h[0:]))
	ticks := int64(r.bo.Uint32(h[4:]))<<32 | int64(r.bo.Uint32(h[8:]))
	capLen := int(r.bo.Uint32(h[12:]))
	if capLen > maxFrameLen || capLen > body-20 {
		return nil, 0, fmt.Errorf("wire: pcapng EPB captured length %d invalid", capLen)
	}
	padded := pad4(capLen)
	r.grow(padded)
	if _, err := io.ReadFull(r.br, r.buf[:padded]); err != nil {
		return nil, 0, fmt.Errorf("wire: pcapng EPB payload: %w", err)
	}
	// Skip any trailing options.
	if err := r.skip(body - 20 - padded); err != nil {
		return nil, 0, err
	}
	num, den := int64(1000), int64(1) // default µs
	if ifID < len(r.ifaces) {
		num, den = r.ifaces[ifID].scaleNum, r.ifaces[ifID].scaleDen
	}
	return r.buf[:capLen], ticks * num / den, nil
}

// readSPB decodes a Simple Packet Block body (no timestamp).
func (r *Reader) readSPB(body int) ([]byte, error) {
	if body < 4 {
		return nil, fmt.Errorf("wire: pcapng SPB body %dB too short", body)
	}
	h := r.hdr[:4]
	if _, err := io.ReadFull(r.br, h); err != nil {
		return nil, err
	}
	origLen := int(r.bo.Uint32(h[0:]))
	capLen := origLen
	if r.snaplen > 0 && capLen > int(r.snaplen) {
		capLen = int(r.snaplen)
	}
	padded := pad4(capLen)
	if padded != body-4 || capLen > maxFrameLen {
		return nil, fmt.Errorf("wire: pcapng SPB length %d inconsistent with block body %d", origLen, body)
	}
	r.grow(padded)
	if _, err := io.ReadFull(r.br, r.buf[:padded]); err != nil {
		return nil, err
	}
	return r.buf[:capLen], nil
}

// skipTrailer consumes a block's trailing total-length field and checks
// it matches the leading one.
func (r *Reader) skipTrailer(total int) error {
	h := r.hdr[:4]
	if _, err := io.ReadFull(r.br, h); err != nil {
		return fmt.Errorf("wire: pcapng block trailer: %w", err)
	}
	if got := int(r.bo.Uint32(h)); got != total {
		return fmt.Errorf("wire: pcapng trailing length %d != leading %d", got, total)
	}
	return nil
}

func (r *Reader) skip(n int) error {
	if n <= 0 {
		return nil
	}
	_, err := io.CopyN(io.Discard, r.br, int64(n))
	return err
}
