// Package pcapio reads and writes capture files: classic pcap and
// pcapng, both endiannesses, microsecond and nanosecond timestamps. It
// is pure encoding — stdlib only, no dependency on the rest of the
// datapath — so trace containers (internal/trafficgen) and the live
// socket backend (internal/wire) can both speak the interchange
// formats the wider capture ecosystem uses.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Format selects a capture container.
type Format int

const (
	// FormatPcap is the classic libpcap format: a 24-byte global header
	// followed by 16-byte-headed records.
	FormatPcap Format = iota
	// FormatPcapNG is the block-structured pcapng format (SHB/IDB/EPB).
	FormatPcapNG
)

// LinkTypeEthernet is the only link type this repository captures.
const LinkTypeEthernet = 1

// Classic pcap magic numbers, written in the file's byte order. The
// second variant declares nanosecond-resolution timestamp fractions.
const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapMagicNanos  = 0xa1b23c4d
)

// DefaultSnapLen is the snapshot length written when the caller leaves it
// zero — large enough that no Ethernet frame is ever truncated.
const DefaultSnapLen = 262144

// WriterOptions shapes a capture file.
type WriterOptions struct {
	Format Format
	// ByteOrder is the file's byte order; nil writes little-endian (the
	// common choice on x86 capture hosts).
	ByteOrder binary.ByteOrder
	// Nanosecond selects nanosecond timestamp resolution: the
	// 0xa1b23c4d magic for classic pcap, an if_tsresol=9 option for
	// pcapng. False writes microseconds, the historical default.
	Nanosecond bool
	// SnapLen is the capture snapshot length (0 = DefaultSnapLen).
	SnapLen uint32
}

// Writer streams frames into a pcap or pcapng capture.
type Writer struct {
	bw     *bufio.Writer
	o      WriterOptions
	bo     binary.ByteOrder
	hdr    [32]byte // scratch for record/block headers
	frames uint64
}

// NewWriter writes the capture's file/section header and returns a
// streaming writer. Call Flush when done.
func NewWriter(w io.Writer, o WriterOptions) (*Writer, error) {
	if o.ByteOrder == nil {
		o.ByteOrder = binary.LittleEndian
	}
	if o.SnapLen == 0 {
		o.SnapLen = DefaultSnapLen
	}
	pw := &Writer{bw: bufio.NewWriter(w), o: o, bo: o.ByteOrder}
	var err error
	switch o.Format {
	case FormatPcap:
		err = pw.writePcapHeader()
	case FormatPcapNG:
		err = pw.writePcapNGHeader()
	default:
		return nil, fmt.Errorf("wire: unknown capture format %d", o.Format)
	}
	if err != nil {
		return nil, err
	}
	return pw, nil
}

func (w *Writer) writePcapHeader() error {
	h := w.hdr[:24]
	magic := uint32(pcapMagicMicros)
	if w.o.Nanosecond {
		magic = pcapMagicNanos
	}
	w.bo.PutUint32(h[0:], magic)
	w.bo.PutUint16(h[4:], 2) // version 2.4
	w.bo.PutUint16(h[6:], 4)
	w.bo.PutUint32(h[8:], 0)  // thiszone
	w.bo.PutUint32(h[12:], 0) // sigfigs
	w.bo.PutUint32(h[16:], w.o.SnapLen)
	w.bo.PutUint32(h[20:], LinkTypeEthernet)
	_, err := w.bw.Write(h)
	return err
}

// Frames reports how many frames have been written.
func (w *Writer) Frames() uint64 { return w.frames }

// WriteFrame appends one frame with its timestamp in nanoseconds. Under
// microsecond resolution the timestamp is truncated toward zero, as
// libpcap does.
func (w *Writer) WriteFrame(data []byte, tsNS int64) error {
	if uint32(len(data)) > w.o.SnapLen {
		data = data[:w.o.SnapLen]
	}
	var err error
	switch w.o.Format {
	case FormatPcap:
		err = w.writePcapRecord(data, tsNS)
	default:
		err = w.writeEPB(data, tsNS)
	}
	if err == nil {
		w.frames++
	}
	return err
}

func (w *Writer) writePcapRecord(data []byte, tsNS int64) error {
	h := w.hdr[:16]
	sec := tsNS / 1e9
	frac := tsNS % 1e9
	if !w.o.Nanosecond {
		frac /= 1000
	}
	w.bo.PutUint32(h[0:], uint32(sec))
	w.bo.PutUint32(h[4:], uint32(frac))
	w.bo.PutUint32(h[8:], uint32(len(data)))
	w.bo.PutUint32(h[12:], uint32(len(data))) // orig_len: nothing truncated
	if _, err := w.bw.Write(h); err != nil {
		return err
	}
	_, err := w.bw.Write(data)
	return err
}

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader decodes pcap and pcapng captures, auto-detecting the container,
// its byte order, and its timestamp resolution from the file header. The
// slice returned by Next is reused across calls.
type Reader struct {
	br     *bufio.Reader
	bo     binary.ByteOrder
	format Format
	// linkType is the capture's link type (first interface for pcapng).
	linkType uint32
	// fracToNS scales a classic-pcap fraction field to nanoseconds.
	fracToNS int64
	// pcapng per-section state.
	ifaces  []ngIface
	snaplen uint32
	hdr     [32]byte
	buf     []byte
}

// ngIface is one pcapng interface description: how to scale its
// timestamps to nanoseconds (ns = ticks * scaleNum / scaleDen).
type ngIface struct {
	linkType           uint32
	scaleNum, scaleDen int64
}

// NewReader sniffs the capture format from the leading magic and returns
// a frame reader.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &Reader{br: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(pr.br, magic); err != nil {
		return nil, fmt.Errorf("wire: capture header: %w", err)
	}
	le := binary.LittleEndian.Uint32(magic)
	be := binary.BigEndian.Uint32(magic)
	switch {
	case le == ngBlockSHB: // palindromic: same in either order
		pr.format = FormatPcapNG
		if err := pr.readSHB(); err != nil {
			return nil, err
		}
	case le == pcapMagicMicros:
		pr.format, pr.bo, pr.fracToNS = FormatPcap, binary.LittleEndian, 1000
	case le == pcapMagicNanos:
		pr.format, pr.bo, pr.fracToNS = FormatPcap, binary.LittleEndian, 1
	case be == pcapMagicMicros:
		pr.format, pr.bo, pr.fracToNS = FormatPcap, binary.BigEndian, 1000
	case be == pcapMagicNanos:
		pr.format, pr.bo, pr.fracToNS = FormatPcap, binary.BigEndian, 1
	default:
		return nil, fmt.Errorf("wire: unrecognized capture magic %#08x", le)
	}
	if pr.format == FormatPcap {
		h := pr.hdr[:20] // rest of the 24-byte global header
		if _, err := io.ReadFull(pr.br, h); err != nil {
			return nil, fmt.Errorf("wire: pcap global header: %w", err)
		}
		if major := pr.bo.Uint16(h[0:]); major != 2 {
			return nil, fmt.Errorf("wire: unsupported pcap version %d.%d", major, pr.bo.Uint16(h[2:]))
		}
		pr.snaplen = pr.bo.Uint32(h[12:])
		pr.linkType = pr.bo.Uint32(h[16:])
	}
	return pr, nil
}

// Format reports the detected container.
func (r *Reader) Format() Format { return r.format }

// LinkType reports the capture's link type (pcapng: of the first
// interface seen, LinkTypeEthernet until one appears).
func (r *Reader) LinkType() uint32 {
	if r.format == FormatPcapNG {
		if len(r.ifaces) == 0 {
			return LinkTypeEthernet
		}
		return r.ifaces[0].linkType
	}
	return r.linkType
}

// Next returns the next frame and its timestamp in nanoseconds, or
// io.EOF at a clean end of capture. The frame slice is only valid until
// the following call.
func (r *Reader) Next() ([]byte, int64, error) {
	if r.format == FormatPcapNG {
		return r.nextNG()
	}
	h := r.hdr[:16]
	if _, err := io.ReadFull(r.br, h); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: pcap record header: %w", err)
	}
	sec := int64(r.bo.Uint32(h[0:]))
	frac := int64(r.bo.Uint32(h[4:]))
	incl := r.bo.Uint32(h[8:])
	if incl > maxFrameLen {
		return nil, 0, fmt.Errorf("wire: pcap record of %d bytes exceeds the %d-byte frame bound", incl, maxFrameLen)
	}
	r.grow(int(incl))
	if _, err := io.ReadFull(r.br, r.buf[:incl]); err != nil {
		return nil, 0, fmt.Errorf("wire: pcap record payload: %w", err)
	}
	return r.buf[:incl], sec*1e9 + frac*r.fracToNS, nil
}

// maxFrameLen bounds a single decoded frame — far above any Ethernet
// jumbo, low enough that a corrupt length field cannot OOM the process.
const maxFrameLen = 1 << 20

func (r *Reader) grow(n int) {
	if cap(r.buf) < n {
		r.buf = make([]byte, n+512)
	}
}
