package wire

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
)

// flakyConn fails every fourth write with a transient errno. Real
// socketpair writes almost never surface EAGAIN through net.Conn — the
// runtime's poller blocks instead — so without injection the Enqueue
// backoff path (the one that drops the port lock mid-call) would go
// unexercised.
type flakyConn struct {
	net.Conn
	n atomic.Uint64
}

func (c *flakyConn) Write(b []byte) (int, error) {
	if c.n.Add(1)%4 == 0 {
		return 0, syscall.ENOBUFS
	}
	return c.Conn.Write(b)
}

// TestPortConcurrentStress hammers one wire.Port from many goroutines —
// Enqueue with injected transient-errno backoff, Post/Poll, Reap, and a
// mid-run RX socket kill that forces a redial — then checks buffer
// conservation: every accepted TX buffer comes back through Reap exactly
// once, and the TX ledger accounts for every Enqueue call. Before the
// slot-reservation fix, a concurrent Enqueue could pass the capacity
// check while another slept in backoff with the lock released;
// pushInflight then overwrote the oldest in-flight record, leaking its
// buffer — this test fails on that build. Run it under -race.
func TestPortConcurrentStress(t *testing.T) {
	txNear, txFar, err := Socketpair()
	if err != nil {
		t.Fatal(err)
	}
	rxNear, rxFar, err := Socketpair()
	if err != nil {
		t.Fatal(err)
	}

	// The feeder's end of the RX wire is swapped when the port redials.
	var feedSide atomic.Value
	feedSide.Store(rxFar)

	cfg := Config{
		Name: "stress0",
		MTU:  1024,
		// Slow enough that pacing genuinely fills the TX ring (~32 µs per
		// frame), so capacity checks race with backoff sleeps — the window
		// the old overwrite bug needed.
		LinkGbps: 0.05,
		TXRing:   64,
		RXRing:   64,
		Redial: func() (net.Conn, error) {
			nr, nf, err := Socketpair()
			if err != nil {
				return nil, err
			}
			feedSide.Store(nf)
			return nr, nil
		},
	}
	p := NewPort(cfg, rxNear, &flakyConn{Conn: txNear})

	// Sink: drain the far TX end so kernel buffers never wedge writers.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := txFar.Read(buf); err != nil {
				return
			}
		}
	}()

	var stop, reapStop atomic.Bool
	var wgEnq, wgAux sync.WaitGroup
	var accepted, refused, reaped atomic.Uint64

	// Feeder: offer frames to the RX side; write errors are expected
	// around the redial window and simply retried on the new segment.
	wgAux.Add(1)
	go func() {
		defer wgAux.Done()
		frame := testFrame(200, 5)
		for !stop.Load() {
			feedSide.Load().(net.Conn).Write(frame)
			time.Sleep(20 * time.Microsecond)
		}
	}()

	// Poster/poller: keep RX buffers posted and drain arrivals.
	wgAux.Add(1)
	go func() {
		defer wgAux.Done()
		pkts := make([]*pktbuf.Packet, 16)
		descs := make([]nic.Descriptor, 16)
		pool := make([]*pktbuf.Packet, 0, 32)
		for i := 0; i < 32; i++ {
			pool = append(pool, testBuf())
		}
		for !stop.Load() {
			for len(pool) > 0 {
				if p.Post(pool[len(pool)-1]) != nil {
					break
				}
				pool = pool[:len(pool)-1]
			}
			n := p.Poll(nil, 0, 16, pkts, descs)
			pool = append(pool, pkts[:n]...)
			if n == 0 {
				runtime.Gosched()
			}
		}
	}()

	// Free list shared by the enqueuers and the reaper. Capacity exceeds
	// the buffer population, so sends never block.
	freeCh := make(chan *pktbuf.Packet, 128)
	for i := 0; i < 96; i++ {
		freeCh <- testBuf()
	}
	for g := 0; g < 4; g++ {
		wgEnq.Add(1)
		go func(seed byte) {
			defer wgEnq.Done()
			small := testFrame(180, seed)
			big := testFrame(cfg.MTU+100, seed) // oversize for the 1024-byte MTU
			for i := 0; !stop.Load(); i++ {
				select {
				case b := <-freeCh:
					if seed == 3 && i%8 == 0 {
						b.SetFrame(big)
					} else {
						b.SetFrame(small)
					}
					if p.Enqueue(nil, b, 0) {
						accepted.Add(1)
					} else {
						refused.Add(1)
						freeCh <- b
					}
				default:
					runtime.Gosched()
				}
			}
		}(byte(g))
	}
	wgAux.Add(1)
	go func() {
		defer wgAux.Done()
		out := make([]*pktbuf.Packet, 32)
		for !reapStop.Load() {
			n := p.Reap(0, out)
			for i := 0; i < n; i++ {
				freeCh <- out[i]
				out[i] = nil
			}
			reaped.Add(uint64(n))
			if n == 0 {
				runtime.Gosched()
			}
		}
	}()

	// Mid-run chaos: kill the RX socket under the drain goroutine. The
	// port must redial and keep delivering off the fresh segment.
	time.Sleep(50 * time.Millisecond)
	rxNear.Close()
	waitCond(t, "RX redial", func() bool { return p.Reopens() >= 1 })
	deliveredAtRedial := p.RXStats().Delivered
	waitCond(t, "post-redial delivery", func() bool {
		return p.RXStats().Delivered > deliveredAtRedial
	})
	time.Sleep(50 * time.Millisecond)

	stop.Store(true)
	wgEnq.Wait()
	waitCond(t, "in-flight drain", func() bool { return p.InflightCount() == 0 })
	reapStop.Store(true)
	wgAux.Wait()

	if a, r := accepted.Load(), reaped.Load(); a != r {
		t.Fatalf("buffer conservation violated: %d accepted, %d reaped (leaked %d)", a, r, int64(a)-int64(r))
	}
	s := p.TXStats()
	if got, want := s.Sent+s.DropTransient+s.DropOversize+s.DropFull, accepted.Load()+refused.Load(); got != want {
		t.Fatalf("TX ledger %+v sums to %d, want %d (accepted %d + refused %d)",
			s, got, want, accepted.Load(), refused.Load())
	}
	if s.Sent == 0 || s.DropOversize == 0 {
		t.Fatalf("stress mix degenerate: %+v", s)
	}

	// Final hammer: operations racing Close must stay memory-safe. The
	// conservation checks are done, so leaks past this point don't matter.
	var wgClose sync.WaitGroup
	for g := 0; g < 3; g++ {
		wgClose.Add(1)
		go func(seed byte) {
			defer wgClose.Done()
			b := testBuf()
			frame := testFrame(120, seed)
			out := make([]*pktbuf.Packet, 8)
			pkts := make([]*pktbuf.Packet, 8)
			descs := make([]nic.Descriptor, 8)
			for i := 0; i < 200; i++ {
				b.SetFrame(frame)
				p.Enqueue(nil, b, 0)
				p.Reap(0, out)
				p.Poll(nil, 0, 8, pkts, descs)
				p.RXStats()
				p.TXStats()
				p.InflightCount()
			}
		}(byte(g))
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wgClose.Wait()
}
