// Fanout: demultiplexing one receive socket into N per-core queue ports
// — the software equivalent of RSS (or Linux's PACKET_FANOUT_CPU) for a
// wire backend whose peer speaks to a single address. One reader
// goroutine drains the shared socket, hashes each frame with the same
// flow hash the simulated adapter uses (nic.HashFrame), and files it
// into the owning core's RX ring through a bucket→queue indirection
// table. The table gives the fallback the run-to-completion model needs
// for skewed traffic: when one queue's load runs far ahead of the rest,
// hot-but-movable buckets migrate to the coldest queue, so a single
// elephant flow keeps its queue (and its frame ordering) while every
// other flow drains off it.
//
// The transmit side needs no demux: every queue port writes the shared
// TX socket directly — datagram writes are atomic, and each queue keeps
// its own pacing clock and in-flight ring, like per-queue TX rings on
// one physical link.
package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"packetmill/internal/nic"
)

const (
	// FanoutBuckets is the indirection-table size (a power of two, like a
	// hardware RSS RETA). 256 entries keep per-bucket load visible even
	// with few flows.
	FanoutBuckets = 256
	// FanoutWindow is how many frames the reader observes between
	// rebalance decisions.
	FanoutWindow = 4096
	// fanoutMaxMoves bounds bucket migrations per window so the table
	// converges gradually instead of thrashing flows across cores.
	fanoutMaxMoves = 4
)

// Fanout owns the shared sockets and the per-core queue ports. Create
// with NewFanout, hand Queue(i) to core i's PMD, and Close once — the
// queue ports must not be closed individually.
type Fanout struct {
	cfg    Config
	txConn net.Conn
	queues []*Port
	done   chan struct{}

	mu      sync.Mutex // guards rxConn (redial swaps it) and closed
	rxConn  net.Conn
	closed  bool
	reopens uint64

	// Reader-owned state: the indirection table and the per-bucket load
	// window. Only the reader goroutine touches these, so the hot path
	// takes no lock and shares no cache line with the cores.
	table   [FanoutBuckets]int
	bucketN [FanoutBuckets]uint32
	loads   []uint64

	// OnMove, when set before traffic starts, observes every rebalance
	// migration (bucket b moved from queue `from` to queue `to`). It is
	// invoked on the reader goroutine between windows — flow-affine
	// state planes (conntrack) hang their migration mailbox here so a
	// moved bucket's flows follow it to the new owning core. It must
	// not block: the reader is the shared RX path.
	OnMove func(bucket, from, to int)

	rebalances atomic.Uint64
}

// NewFanout builds n queue ports demuxed from rxConn and starts the
// reader. cfg applies to every queue (cfg.Queue is overridden with the
// queue index). txConn may be nil for a receive-only fanout; rxConn may
// be nil for a transmit-only one (no reader runs).
func NewFanout(cfg Config, n int, rxConn, txConn net.Conn) *Fanout {
	cfg.fill()
	if n < 1 {
		n = 1
	}
	f := &Fanout{
		cfg:    cfg,
		rxConn: rxConn,
		txConn: txConn,
		done:   make(chan struct{}),
		loads:  make([]uint64, n),
	}
	for q := 0; q < n; q++ {
		qcfg := cfg
		qcfg.Queue = q
		qcfg.Redial = nil // redial belongs to the shared reader, not a queue
		f.queues = append(f.queues, NewPort(qcfg, nil, txConn))
	}
	// Static spread to start, like a freshly programmed RETA.
	for b := range f.table {
		f.table[b] = b % n
	}
	if rxConn != nil {
		go f.run()
	} else {
		close(f.done)
	}
	return f
}

// Queue returns queue port i — hand it to core i's PMD.
func (f *Fanout) Queue(i int) *Port { return f.queues[i] }

// NumQueues reports the fanout width.
func (f *Fanout) NumQueues() int { return len(f.queues) }

// Rebalances counts bucket migrations the skew fallback performed.
func (f *Fanout) Rebalances() uint64 { return f.rebalances.Load() }

// Reopens reports how many times the shared RX socket was redialed.
func (f *Fanout) Reopens() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reopens
}

// Close stops the reader, closes the shared sockets, and closes every
// queue port.
func (f *Fanout) Close() error {
	f.mu.Lock()
	f.closed = true
	rx := f.rxConn
	f.mu.Unlock()
	var err error
	if rx != nil {
		err = rx.Close()
	}
	<-f.done
	for i, q := range f.queues {
		// Every queue shares txConn; the first Close closes it and the
		// rest see an already-closed conn, which is fine.
		if e := q.Close(); err == nil && i == 0 {
			err = e
		}
	}
	return err
}

// run is the reader: drain the shared socket, hash, demux, rebalance.
func (f *Fanout) run() {
	defer close(f.done)
	buf := make([]byte, f.cfg.MTU)
	consecErrs := 0
	window := 0
	for {
		f.mu.Lock()
		conn := f.rxConn
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return
		}
		n, err := conn.Read(buf)
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return
			}
			// Same linear-ramp backoff and redial escalation as a Port's
			// own drain goroutine (see Port.drainRX).
			consecErrs++
			d := time.Duration(consecErrs) * 100 * time.Microsecond
			if d > 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			time.Sleep(d)
			if f.cfg.Redial != nil && consecErrs >= 3 {
				if nc, rerr := f.cfg.Redial(); rerr == nil {
					f.mu.Lock()
					if f.closed {
						f.mu.Unlock()
						nc.Close()
						return
					}
					old := f.rxConn
					f.rxConn = nc
					f.reopens++
					f.mu.Unlock()
					old.Close()
					consecErrs = 0
				}
			}
			continue
		}
		consecErrs = 0
		frame := buf[:n]
		b := nic.HashFrame(frame) & (FanoutBuckets - 1)
		f.bucketN[b]++
		f.queues[f.table[b]].deliver(frame)
		if window++; window >= FanoutWindow {
			window = 0
			f.rebalance()
		}
	}
}

// rebalance is the skew fallback, run once per observation window on the
// reader goroutine. When the hottest queue's load exceeds its fair share
// by 25%, up to fanoutMaxMoves buckets migrate from it to the coldest
// queue — always the largest bucket that fits in half the gap, so a move
// shrinks the imbalance instead of inverting it. A bucket carrying a
// single elephant flow never qualifies (it IS the gap); the mice migrate
// off its queue instead, which is the best a flow-affine demux can do.
func (f *Fanout) rebalance() {
	n := len(f.queues)
	if n > 1 {
		for i := range f.loads {
			f.loads[i] = 0
		}
		var total uint64
		for b, q := range f.table {
			f.loads[q] += uint64(f.bucketN[b])
			total += uint64(f.bucketN[b])
		}
		for move := 0; move < fanoutMaxMoves && total > 0; move++ {
			qMax, qMin := 0, 0
			for q := 1; q < n; q++ {
				if f.loads[q] > f.loads[qMax] {
					qMax = q
				}
				if f.loads[q] < f.loads[qMin] {
					qMin = q
				}
			}
			// Within 25% of the fair share: balanced enough.
			if 4*f.loads[qMax]*uint64(n) <= 5*total {
				break
			}
			gap := f.loads[qMax] - f.loads[qMin]
			best, bestN := -1, uint64(0)
			for b := range f.table {
				if f.table[b] != qMax {
					continue
				}
				if c := uint64(f.bucketN[b]); c > bestN && c <= gap/2 {
					best, bestN = b, c
				}
			}
			if best < 0 {
				break
			}
			f.table[best] = qMin
			f.loads[qMax] -= bestN
			f.loads[qMin] += bestN
			f.rebalances.Add(1)
			if f.OnMove != nil {
				f.OnMove(best, qMax, qMin)
			}
		}
	}
	for b := range f.bucketN {
		f.bucketN[b] = 0
	}
}
