// Package wire is the repository's real packet I/O subsystem: a live
// NIC backend over datagram sockets implementing the same driver-facing
// nic.Port surface as the simulated adapter (capture codecs live in the
// wire/pcapio subpackage). Everything above the port seam — the DPDK
// PMD, the metadata bindings, fault injection, telemetry — runs
// unchanged on either backend; this package is the device boundary the
// paper's X-Change argument is about.
//
// The port itself: a nic.Port whose RX and TX sides are datagram
// sockets instead of the simulated MAC. A background reader drains the
// RX socket into a fixed ring of preallocated MTU-sized slots — like a
// hardware FIFO, frames wait there until the driver polls, and overflow
// is dropped with a counter, never buffered without bound. The driver
// side (Poll/Post/Enqueue/Reap) is mutex-guarded, allocation-free in
// steady state, and charges nothing to the simulated memory hierarchy:
// on a live wire the cycle ledger measures only what the host actually
// does.
package wire

import (
	"errors"
	"math"
	"net"
	"sync"
	"syscall"
	"time"

	"packetmill/internal/machine"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
)

// Config shapes one live port.
type Config struct {
	// Name labels the port in telemetry reports.
	Name string
	// Queue is the queue index reported to the driver (default 0).
	Queue int
	// LinkGbps paces transmission: each frame occupies the emulated wire
	// for (len+20)*8/LinkGbps ns of wall-clock time, which delays buffer
	// reclamation exactly as a real serializer would. 0 means 10 Gbps.
	LinkGbps float64
	// MTU is the largest frame the port accepts, RX slot size included.
	// Larger TX frames are dropped with accounting. 0 means 2048.
	MTU int
	// RXRing/TXRing bound the descriptor rings (0 means 256).
	RXRing, TXRing int
	// Redial, when set, reopens the RX socket after repeated read
	// errors: the old conn is closed and the returned one takes its
	// place — the self-healing path for a peer that restarted.
	Redial func() (net.Conn, error)
}

func (c *Config) fill() {
	if c.Name == "" {
		c.Name = "wire0"
	}
	if c.LinkGbps == 0 {
		c.LinkGbps = 10
	}
	if c.MTU == 0 {
		c.MTU = 2048
	}
	if c.RXRing == 0 {
		c.RXRing = 256
	}
	if c.TXRing == 0 {
		c.TXRing = 256
	}
}

// intRing is a fixed-capacity FIFO of slot indices. Fixed so the hot
// path never grows a slice.
type intRing struct {
	buf  []int
	head int
	n    int
}

func newIntRing(capacity int) intRing { return intRing{buf: make([]int, capacity)} }

func (r *intRing) push(v int) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *intRing) pop() int {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// txRec is one in-flight transmission: the buffer the driver lent the
// port and the wall-clock instant its frame has fully left the wire.
type txRec struct {
	pkt        *pktbuf.Packet
	departWall time.Time
}

// Port is a live queue pair over datagram sockets. It implements
// nic.Port, so internal/dpdk, the metadata bindings, fault injection,
// and telemetry drive it exactly as they drive the simulated adapter.
type Port struct {
	cfg    Config
	rxConn net.Conn
	txConn net.Conn

	mu sync.Mutex
	// RX: slots[i][:slotLen[i]] holds a received frame when i sits in
	// filled; free holds the rest. posted queues driver buffers.
	slots   [][]byte
	slotLen []int
	free    intRing
	filled  intRing
	posted  []*pktbuf.Packet
	// TX: a fixed ring of in-flight buffers awaiting wall-clock depart.
	// txPending counts Enqueue calls that reserved a slot but are still
	// inside the unlocked retry backoff; capacity checks use txN+txPending
	// so a concurrent Enqueue can never overwrite an in-flight record.
	inflight   []txRec
	txHead     int
	txN        int
	txPending  int
	lastDepart time.Time

	rxStats nic.RXQueueStats
	txStats nic.TXQueueStats
	reopens uint64

	closed bool
	done   chan struct{}
}

// txMaxRetries bounds the in-place retries a transient TX errno gets
// before the frame is booked under the transient-drop counter.
const txMaxRetries = 3

// isTransient classifies the errnos a loaded-but-alive socket returns —
// would-block (EAGAIN) and kernel buffer exhaustion (ENOBUFS/ENOMEM) —
// which deserve a bounded retry rather than an immediate drop. Anything
// else (peer gone, fd closed) is a hard error.
func isTransient(err error) bool {
	return errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EWOULDBLOCK) ||
		errors.Is(err, syscall.ENOBUFS) ||
		errors.Is(err, syscall.ENOMEM)
}

var _ nic.Port = (*Port)(nil)

// NewPort wraps a receive and a transmit socket as a driver-facing port
// and starts the RX drain goroutine. Either conn may be nil for a
// one-directional port (capture-only, replay-only).
func NewPort(cfg Config, rxConn, txConn net.Conn) *Port {
	cfg.fill()
	p := &Port{
		cfg:      cfg,
		rxConn:   rxConn,
		txConn:   txConn,
		slots:    make([][]byte, cfg.RXRing),
		slotLen:  make([]int, cfg.RXRing),
		free:     newIntRing(cfg.RXRing),
		filled:   newIntRing(cfg.RXRing),
		posted:   make([]*pktbuf.Packet, 0, cfg.RXRing),
		inflight: make([]txRec, cfg.TXRing),
		done:     make(chan struct{}),
	}
	for i := range p.slots {
		p.slots[i] = make([]byte, cfg.MTU)
		p.free.push(i)
	}
	if rxConn != nil {
		go p.drainRX()
	} else {
		close(p.done)
	}
	return p
}

// drainRX moves frames from the socket into ring slots. It claims a slot
// under the lock, reads outside it (so Poll never waits on the kernel),
// and files the result. With the ring full it still reads — into a
// sacrificial slot — so the socket buffer cannot silently absorb the
// overrun; the drop is counted where a NIC would count it.
func (p *Port) drainRX() {
	defer close(p.done)
	scratch := make([]byte, p.cfg.MTU)
	consecErrs := 0
	for {
		p.mu.Lock()
		slot := -1
		if p.free.n > 0 {
			slot = p.free.pop()
		}
		closed := p.closed
		conn := p.rxConn // snapshot: Redial may swap the field under the lock
		p.mu.Unlock()
		if closed {
			return
		}
		buf := scratch
		if slot >= 0 {
			buf = p.slots[slot]
		}
		n, err := conn.Read(buf)
		p.mu.Lock()
		switch {
		case err != nil:
			if slot >= 0 {
				p.free.push(slot)
			}
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return
			}
			// Back off while the socket misbehaves (linear ramp, capped)
			// so a dead peer doesn't spin this goroutine flat out, then
			// escalate to a reopen once the errors look persistent.
			consecErrs++
			d := time.Duration(consecErrs) * 100 * time.Microsecond
			if d > 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			time.Sleep(d)
			if p.cfg.Redial != nil && consecErrs >= 3 {
				if nc, rerr := p.cfg.Redial(); rerr == nil {
					p.mu.Lock()
					if p.closed {
						p.mu.Unlock()
						nc.Close()
						return
					}
					old := p.rxConn
					p.rxConn = nc
					p.reopens++
					p.mu.Unlock()
					old.Close()
					consecErrs = 0
				}
			}
			continue
		case slot < 0:
			p.rxStats.DropFull++
		case n < nic.MinFrameSize:
			p.rxStats.DropRunt++
			p.free.push(slot)
		default:
			p.slotLen[slot] = n
			p.filled.push(slot)
			p.rxStats.Delivered++
			p.rxStats.Bytes += uint64(n)
		}
		consecErrs = 0
		p.mu.Unlock()
	}
}

// deliver files one received frame into a free RX slot, with the same
// accounting the drain goroutine performs — the entry point a Fanout
// reader uses for queue ports that share a single socket and so run no
// reader of their own. The frame is copied; the caller keeps its buffer.
func (p *Port) deliver(frame []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	switch {
	case len(frame) < nic.MinFrameSize:
		p.rxStats.DropRunt++
	case p.free.n == 0:
		p.rxStats.DropFull++
	default:
		slot := p.free.pop()
		n := copy(p.slots[slot], frame)
		p.slotLen[slot] = n
		p.filled.push(slot)
		p.rxStats.Delivered++
		p.rxStats.Bytes += uint64(n)
	}
}

// Close shuts both sockets and stops the drain goroutine.
func (p *Port) Close() error {
	p.mu.Lock()
	p.closed = true
	rx, tx := p.rxConn, p.txConn
	p.mu.Unlock()
	var err error
	if rx != nil {
		err = rx.Close()
	}
	if tx != nil {
		if e := tx.Close(); err == nil {
			err = e
		}
	}
	<-p.done
	return err
}

// Reopens reports how many times the RX socket was redialed after
// persistent read errors.
func (p *Port) Reopens() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reopens
}

// PortName implements nic.Port.
func (p *Port) PortName() string { return p.cfg.Name }

// QueueID implements nic.Port.
func (p *Port) QueueID() int { return p.cfg.Queue }

// RXRingSize implements nic.Port.
func (p *Port) RXRingSize() int { return p.cfg.RXRing }

// TXRingSize implements nic.Port.
func (p *Port) TXRingSize() int { return p.cfg.TXRing }

// Post hands a fresh buffer to the RX ring.
func (p *Port) Post(pkt *pktbuf.Packet) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Unlike the simulated queue, pending frames hold ring *slots*, not
	// posted buffers — a buffer can always be posted against a parked
	// frame, so only the posted queue itself is bounded.
	if len(p.posted) >= p.cfg.RXRing {
		return nic.ErrOverPosted
	}
	p.posted = append(p.posted, pkt)
	return nil
}

// PostedCount implements nic.Port.
func (p *Port) PostedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.posted)
}

// PendingCount reports frames sitting in the RX ring awaiting a poll.
func (p *Port) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.filled.n
}

// NextReadyNS returns -Inf when frames are pending — a live arrival is
// never in the simulated future — and +Inf when the ring is empty, so
// the driver's empty-poll fast path works unchanged.
func (p *Port) NextReadyNS() float64 {
	p.mu.Lock()
	n := p.filled.n
	p.mu.Unlock()
	if n > 0 {
		return math.Inf(-1)
	}
	return math.Inf(1)
}

// Poll pops up to max received frames into posted buffers. Unlike the
// simulated queue there is no CQE charge: the host really did the work,
// and the cycle ledger should not double-count it.
func (p *Port) Poll(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []nic.Descriptor) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for n < max && p.filled.n > 0 && len(p.posted) > 0 {
		slot := p.filled.pop()
		pkt := p.posted[0]
		copy(p.posted, p.posted[1:])
		p.posted = p.posted[:len(p.posted)-1]
		frame := p.slots[slot][:p.slotLen[slot]]
		pkt.SetFrame(frame)
		pkt.ArrivalNS = nowNS
		pkts[n] = pkt
		descs[n] = nic.Descriptor{
			Len:     len(frame),
			Queue:   p.cfg.Queue,
			RSSHash: nic.HashFrame(frame),
			VlanTCI: nic.FrameVlanTCI(frame),
		}
		p.free.push(slot)
		n++
	}
	return n
}

// PollCompressed implements nic.Port; the live backend has no CQE
// format, so it is plain Poll.
func (p *Port) PollCompressed(core *machine.Core, nowNS float64, max int,
	pkts []*pktbuf.Packet, descs []nic.Descriptor) int {
	return p.Poll(core, nowNS, max, pkts, descs)
}

// Enqueue writes the frame to the TX socket and parks the buffer until
// its wall-clock departure. The link-rate pacing delays only *buffer
// reclamation* — the datagram itself leaves immediately — which is the
// part of serialization the driver can observe: TX-ring backpressure.
func (p *Port) Enqueue(core *machine.Core, pkt *pktbuf.Packet, nowNS float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txN+p.txPending >= p.cfg.TXRing {
		p.txStats.DropFull++
		return false
	}
	now := time.Now()
	if pkt.Len() > p.cfg.MTU {
		// Oversize for the emulated link: dropped on the wire, but the
		// buffer still cycles back through Reap immediately.
		p.txStats.DropOversize++
		p.pushInflight(txRec{pkt: pkt, departWall: now})
		return true
	}
	if p.txConn != nil {
		var err error
		backoff := 50 * time.Microsecond
		// Reserve the in-flight slot before any backoff can release the
		// lock: without the reservation, a concurrent Enqueue could pass
		// the capacity check during the sleep and pushInflight would then
		// overwrite the oldest in-flight record — leaking that buffer
		// (never reaped) and corrupting txN.
		p.txPending++
		for attempt := 0; ; attempt++ {
			_, err = p.txConn.Write(pkt.Bytes())
			if err == nil || !isTransient(err) || attempt >= txMaxRetries || p.closed {
				break
			}
			// Transient errno (EAGAIN/ENOBUFS): bounded doubling backoff,
			// lock released so Poll/Reap keep moving while we wait.
			p.mu.Unlock()
			time.Sleep(backoff)
			backoff *= 2
			p.mu.Lock()
		}
		p.txPending--
		if err != nil {
			// A transient errno that survived the retries is the kernel
			// buffer overrunning; a hard error is the peer overrun or
			// gone. Distinct counters so dashboards can tell congestion
			// from breakage. Either way the buffer cycles back via Reap.
			if isTransient(err) {
				p.txStats.DropTransient++
			} else {
				p.txStats.DropFull++
			}
			p.pushInflight(txRec{pkt: pkt, departWall: now})
			return true
		}
	}
	wire := time.Duration(float64(pkt.Len()+20) * 8 / p.cfg.LinkGbps) // ns
	start := now
	if p.lastDepart.After(start) {
		start = p.lastDepart
	}
	depart := start.Add(wire)
	p.lastDepart = depart
	p.pushInflight(txRec{pkt: pkt, departWall: depart})
	p.txStats.Sent++
	p.txStats.Bytes += uint64(pkt.Len())
	return true
}

func (p *Port) pushInflight(r txRec) {
	p.inflight[(p.txHead+p.txN)%len(p.inflight)] = r
	p.txN++
}

// Reap returns buffers whose frames have departed. Departure is wall
// clock — nowNS is the caller's simulated clock and does not apply to a
// live wire — so a driver spinning on Reap sees buffers come back at
// the emulated link rate.
func (p *Port) Reap(nowNS float64, out []*pktbuf.Packet) int {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for n < len(out) && p.txN > 0 && !p.inflight[p.txHead].departWall.After(now) {
		out[n] = p.inflight[p.txHead].pkt
		p.inflight[p.txHead].pkt = nil
		p.txHead = (p.txHead + 1) % len(p.inflight)
		p.txN--
		n++
	}
	return n
}

// InflightCount implements nic.Port.
func (p *Port) InflightCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txN
}

// RXStats implements nic.Port.
func (p *Port) RXStats() nic.RXQueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rxStats
}

// TXStats implements nic.Port.
func (p *Port) TXStats() nic.TXQueueStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txStats
}
