package wire

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
)

func testBuf() *pktbuf.Packet {
	return pktbuf.NewPacket(make([]byte, 2300), 0, 128)
}

func testFrame(n int, seed byte) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = seed + byte(i)
	}
	f[12], f[13] = 0x08, 0x00
	return f
}

// waitPending spins until the port has at least n frames pending or the
// deadline passes.
func waitPending(t *testing.T, p *Port, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.PendingCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending frames (have %d)", n, p.PendingCount())
		}
		runtime.Gosched()
	}
}

// waitCond spins until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	a, b, err := Loopback(Config{Name: "wireA"}, Config{Name: "wireB"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	for i := 0; i < 4; i++ {
		if err := b.Post(testBuf()); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	frame := testFrame(100, 7)
	tx := testBuf()
	tx.SetFrame(frame)
	if !a.Enqueue(nil, tx, 0) {
		t.Fatal("Enqueue refused")
	}
	waitPending(t, b, 1)

	if b.NextReadyNS() > 0 {
		t.Fatal("NextReadyNS should be -Inf with a frame pending")
	}
	pkts := make([]*pktbuf.Packet, 8)
	descs := make([]nic.Descriptor, 8)
	n := b.Poll(nil, 42, 8, pkts, descs)
	if n != 1 {
		t.Fatalf("Poll = %d, want 1", n)
	}
	if !bytes.Equal(pkts[0].Bytes(), frame) {
		t.Fatal("received frame differs from transmitted")
	}
	if pkts[0].ArrivalNS != 42 {
		t.Fatalf("ArrivalNS = %v, want the poll time", pkts[0].ArrivalNS)
	}
	if descs[0].Len != len(frame) || descs[0].RSSHash != nic.HashFrame(frame) {
		t.Fatal("descriptor not derived from the frame")
	}
	if b.NextReadyNS() < 0 {
		t.Fatal("NextReadyNS should be +Inf when drained")
	}

	// The TX buffer comes back once its wall-clock serialization ends.
	reap := make([]*pktbuf.Packet, 4)
	waitCond(t, "TX reap", func() bool { return a.Reap(0, reap) == 1 })
	if reap[0] != tx {
		t.Fatal("reaped a different buffer than was enqueued")
	}
	if s := a.TXStats(); s.Sent != 1 || s.Bytes != uint64(len(frame)) {
		t.Fatalf("TXStats = %+v", s)
	}
	if s := b.RXStats(); s.Delivered != 1 || s.Bytes != uint64(len(frame)) {
		t.Fatalf("RXStats = %+v", s)
	}
}

// TestRXOverrun fills the RX ring with no posted buffers: the ring holds
// ring-size frames (a hardware FIFO) and drops the rest with a counter.
func TestRXOverrun(t *testing.T) {
	a, b, err := Loopback(Config{}, Config{RXRing: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	const sent = 10
	for i := 0; i < sent; i++ {
		tx := testBuf()
		tx.SetFrame(testFrame(80, byte(i)))
		if !a.Enqueue(nil, tx, 0) {
			t.Fatalf("Enqueue %d refused", i)
		}
		reap := make([]*pktbuf.Packet, 1)
		waitCond(t, "reap", func() bool { return a.Reap(0, reap) == 1 })
	}
	waitCond(t, "all frames accounted", func() bool {
		s := b.RXStats()
		return s.Delivered+s.DropFull == sent
	})
	s := b.RXStats()
	if s.Delivered != 4 || s.DropFull != sent-4 {
		t.Fatalf("Delivered=%d DropFull=%d, want 4 and %d", s.Delivered, s.DropFull, sent-4)
	}

	// The parked frames are still there: post buffers and poll them out.
	for i := 0; i < 4; i++ {
		if err := b.Post(testBuf()); err != nil {
			t.Fatalf("Post: %v", err)
		}
	}
	pkts := make([]*pktbuf.Packet, 8)
	descs := make([]nic.Descriptor, 8)
	if n := b.Poll(nil, 0, 8, pkts, descs); n != 4 {
		t.Fatalf("Poll = %d, want 4", n)
	}
}

func TestRuntDropped(t *testing.T) {
	a, b, err := Loopback(Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := b.Post(testBuf()); err != nil {
		t.Fatal(err)
	}
	// Bypass Enqueue (which would be within its rights to refuse a runt)
	// and write the short datagram straight onto the wire.
	if _, err := a.txConn.Write(make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "runt drop", func() bool { return b.RXStats().DropRunt == 1 })
	if b.PendingCount() != 0 {
		t.Fatal("runt should not occupy the ring")
	}
}

// TestOversizeTXRecycles: a frame over the MTU is dropped on the wire but
// its buffer still comes back through Reap, so the pool cannot leak. The
// drop is booked under its own oversize counter — a configuration error,
// not ring congestion.
func TestOversizeTXRecycles(t *testing.T) {
	a, b, err := Loopback(Config{MTU: 256}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	tx := testBuf()
	tx.SetFrame(testFrame(300, 1))
	if !a.Enqueue(nil, tx, 0) {
		t.Fatal("oversize Enqueue should accept and drop")
	}
	if s := a.TXStats(); s.DropOversize != 1 || s.DropFull != 0 || s.Sent != 0 {
		t.Fatalf("TXStats = %+v, want one oversize drop and no send", s)
	}
	reap := make([]*pktbuf.Packet, 1)
	waitCond(t, "oversize reap", func() bool { return a.Reap(0, reap) == 1 })
	if reap[0] != tx {
		t.Fatal("oversize buffer not recycled")
	}
}

// TestTXRingBackpressure: with a glacial link rate the ring fills and
// Enqueue refuses, exactly like the simulated queue.
func TestTXRingBackpressure(t *testing.T) {
	a, b, err := Loopback(Config{TXRing: 2, LinkGbps: 1e-6}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	for i := 0; i < 2; i++ {
		tx := testBuf()
		tx.SetFrame(testFrame(80, byte(i)))
		if !a.Enqueue(nil, tx, 0) {
			t.Fatalf("Enqueue %d refused with ring space", i)
		}
	}
	tx := testBuf()
	tx.SetFrame(testFrame(80, 9))
	if a.Enqueue(nil, tx, 0) {
		t.Fatal("Enqueue accepted into a full ring")
	}
	if a.TXStats().DropFull != 1 {
		t.Fatal("ring-full drop not counted")
	}
	if a.InflightCount() != 2 {
		t.Fatalf("InflightCount = %d, want 2", a.InflightCount())
	}
}

// TestSteadyStateRXAllocs is the live backend's zero-allocation gate:
// once the rings are primed, a full send→drain→poll→repost→reap cycle
// must not allocate — the only allocations belong to setup and refill.
func TestSteadyStateRXAllocs(t *testing.T) {
	a, b, err := Loopback(Config{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	rx := testBuf()
	if err := b.Post(rx); err != nil {
		t.Fatal(err)
	}
	frame := testFrame(128, 3)
	tx := testBuf()
	tx.SetFrame(frame)
	pkts := make([]*pktbuf.Packet, 4)
	descs := make([]nic.Descriptor, 4)
	reap := make([]*pktbuf.Packet, 4)

	cycle := func() {
		if !a.Enqueue(nil, tx, 0) {
			t.Fatal("Enqueue refused")
		}
		for b.PendingCount() == 0 {
			runtime.Gosched()
		}
		if n := b.Poll(nil, 0, 4, pkts, descs); n != 1 {
			t.Fatalf("Poll = %d", n)
		}
		if err := b.Post(pkts[0]); err != nil { // refill
			t.Fatal(err)
		}
		for a.Reap(0, reap) == 0 {
			runtime.Gosched()
		}
	}
	for i := 0; i < 50; i++ { // warm up socket buffers and runtime paths
		cycle()
	}
	avg := testing.AllocsPerRun(200, cycle)
	if avg > 0 {
		t.Fatalf("steady-state cycle allocates %.2f objects/run, want 0", avg)
	}
}
