package wire

import (
	"testing"

	"packetmill/internal/nic"
)

// flowFrame builds a minimal IPv4/UDP frame whose flow identity is the
// UDP source port — distinct ports hash to (mostly) distinct buckets.
func flowFrame(srcPort uint16) []byte {
	f := make([]byte, 64)
	f[12], f[13] = 0x08, 0x00            // IPv4
	f[14] = 0x45                         // version + IHL
	f[14+9] = 17                         // UDP
	copy(f[14+12:], []byte{10, 0, 0, 1}) // src IP
	copy(f[14+16:], []byte{10, 0, 0, 2}) // dst IP
	f[14+20], f[14+21] = byte(srcPort>>8), byte(srcPort)
	f[14+22], f[14+23] = 0x1f, 0x90 // dst port 8080
	return f
}

// fanoutOffered is the load a queue saw: frames filed into its ring plus
// frames the ring refused — what the demux sent its way, poll or no poll.
func fanoutOffered(q *Port) uint64 {
	s := q.RXStats()
	return s.Delivered + s.DropFull + s.DropRunt
}

// TestFanoutDemux: every frame written to the shared socket lands on
// exactly one queue, and the queue is the one the freshly programmed
// indirection table (bucket = hash mod table size, queue = bucket mod N)
// picks — software RSS, deterministic and flow-affine.
func TestFanoutDemux(t *testing.T) {
	near, far, err := Socketpair()
	if err != nil {
		t.Fatal(err)
	}
	f := NewFanout(Config{Name: "fan", RXRing: 1024}, 2, near, nil)
	defer f.Close()
	defer far.Close()

	const flows, per = 32, 8
	want := make([]uint64, 2)
	for fl := 0; fl < flows; fl++ {
		frame := flowFrame(uint16(1000 + fl))
		want[int(nic.HashFrame(frame)&(FanoutBuckets-1))%2] += per
		for i := 0; i < per; i++ {
			if _, err := far.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCond(t, "all frames demuxed", func() bool {
		return fanoutOffered(f.Queue(0))+fanoutOffered(f.Queue(1)) == flows*per
	})
	for q := 0; q < 2; q++ {
		if got := f.Queue(q).RXStats().Delivered; got != want[q] {
			t.Fatalf("queue %d delivered %d frames, indirection table says %d", q, got, want[q])
		}
		if want[q] == 0 {
			t.Fatalf("degenerate flow set: every flow hashed to one queue")
		}
	}
}

// TestFanoutRebalanceSkew is the elephant-flow fallback: one flow
// carrying half the load pins its queue far above the fair share, and
// the per-window rebalance must migrate mice buckets off that queue —
// never the elephant's own bucket, which would break its ordering.
func TestFanoutRebalanceSkew(t *testing.T) {
	near, far, err := Socketpair()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny rings, nobody polling: Delivered+DropFull still measures the
	// load each queue was offered, which is all the test needs.
	f := NewFanout(Config{Name: "skew", RXRing: 8}, 2, near, nil)
	defer far.Close()

	elephant := flowFrame(7)
	eBucket := int(nic.HashFrame(elephant) & (FanoutBuckets - 1))
	eQueue := eBucket % 2
	const mice = 64
	miceFrames := make([][]byte, mice)
	for i := range miceFrames {
		miceFrames[i] = flowFrame(uint16(2000 + i))
	}

	// 3 windows of 50% elephant / 50% mice. Track what the *static*
	// table would have offered the elephant's queue; the rebalancer must
	// beat it.
	const total = 3 * FanoutWindow
	var staticLoad uint64
	for i := 0; i < total; i++ {
		frame := elephant
		if i%2 == 1 {
			frame = miceFrames[(i/2)%mice]
		}
		if int(nic.HashFrame(frame)&(FanoutBuckets-1))%2 == eQueue {
			staticLoad++
		}
		if _, err := far.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "skewed traffic demuxed", func() bool {
		return fanoutOffered(f.Queue(0))+fanoutOffered(f.Queue(1)) == total
	})
	hotLoad := fanoutOffered(f.Queue(eQueue))
	if f.Rebalances() == 0 {
		t.Fatalf("elephant skew (queue %d got %d/%d) triggered no rebalance", eQueue, hotLoad, total)
	}
	if hotLoad >= staticLoad {
		t.Fatalf("rebalance did not shed load: hot queue got %d, static table would give %d", hotLoad, staticLoad)
	}
	// The reader is quiescent after Close, so the table is safe to read:
	// the elephant's bucket must still be pinned to its original queue.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.table[eBucket] != eQueue {
		t.Fatalf("elephant bucket migrated to queue %d — ordering broken", f.table[eBucket])
	}
}

// TestFanoutRuntAndOverflowCounters: demuxed delivery books runts and
// ring overruns on the owning queue exactly like a port's own reader.
func TestFanoutRuntAndOverflowCounters(t *testing.T) {
	near, far, err := Socketpair()
	if err != nil {
		t.Fatal(err)
	}
	f := NewFanout(Config{RXRing: 4}, 1, near, nil)
	defer f.Close()
	defer far.Close()

	if _, err := far.Write(make([]byte, 20)); err != nil { // runt
		t.Fatal(err)
	}
	frame := flowFrame(1)
	for i := 0; i < 6; i++ { // 4 fill the ring, 2 overflow
		if _, err := far.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "counters settled", func() bool {
		s := f.Queue(0).RXStats()
		return s.DropRunt == 1 && s.Delivered == 4 && s.DropFull == 2
	})
}
