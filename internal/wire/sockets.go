// Socket plumbing for the live backend. A wire.Port reads frames from
// one datagram socket and writes them to another; this file makes those
// sockets. Datagram semantics matter: one Write is one frame, preserving
// packet boundaries the way a MAC does, which a stream socket would not.
package wire

import (
	"fmt"
	"net"
	"os"
	"strings"
	"syscall"
	"time"
)

// Socketpair returns two connected AF_UNIX datagram sockets — an
// in-process wire segment. Frames written to one end are read from the
// other, whole, in order.
func Socketpair() (a, b net.Conn, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_DGRAM, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: socketpair: %w", err)
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	fa := os.NewFile(uintptr(fds[0]), "wire-a")
	fb := os.NewFile(uintptr(fds[1]), "wire-b")
	// net.FileConn dups the descriptor, so the os.File wrappers close.
	defer fa.Close()
	defer fb.Close()
	if a, err = net.FileConn(fa); err != nil {
		fb.Close()
		return nil, nil, fmt.Errorf("wire: socketpair conn: %w", err)
	}
	if b, err = net.FileConn(fb); err != nil {
		a.Close()
		return nil, nil, fmt.Errorf("wire: socketpair conn: %w", err)
	}
	return a, b, nil
}

// splitAddr parses the "scheme:rest" wire addresses the commands accept:
// "unix:/path/to.sock" for unix datagram, "udp:host:port" for UDP.
func splitAddr(addr string) (network, rest string, err error) {
	i := strings.IndexByte(addr, ':')
	if i < 0 {
		return "", "", fmt.Errorf("wire: address %q needs a unix: or udp: scheme", addr)
	}
	switch addr[:i] {
	case "unix":
		return "unixgram", addr[i+1:], nil
	case "udp":
		return "udp", addr[i+1:], nil
	default:
		return "", "", fmt.Errorf("wire: unknown address scheme %q (want unix: or udp:)", addr[:i])
	}
}

// Listen binds the receive side of a wire address. The returned conn is
// read-only in practice: frames sent to the address arrive on it.
func Listen(addr string) (net.Conn, error) {
	network, rest, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	switch network {
	case "unixgram":
		// A stale socket file from a crashed run would fail the bind.
		os.Remove(rest)
		ua, err := net.ResolveUnixAddr("unixgram", rest)
		if err != nil {
			return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
		}
		return net.ListenUnixgram("unixgram", ua)
	default:
		na, err := net.ResolveUDPAddr("udp", rest)
		if err != nil {
			return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
		}
		return net.ListenUDP("udp", na)
	}
}

// Dial connects the transmit side of a wire address, retrying briefly so
// a peer started in parallel (make pcap-demo backgrounds the listener)
// has time to bind.
func Dial(addr string) (net.Conn, error) {
	network, rest, err := splitAddr(addr)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		c, err := net.Dial(network, rest)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Loopback builds two Ports wired back to back over socketpairs: frames
// port A transmits arrive at port B and vice versa. This is the in-process
// equivalent of a cable between two NICs, used by the end-to-end tests.
func Loopback(cfgA, cfgB Config) (*Port, *Port, error) {
	ab1, ab2, err := Socketpair() // A tx -> B rx
	if err != nil {
		return nil, nil, err
	}
	ba1, ba2, err := Socketpair() // B tx -> A rx
	if err != nil {
		ab1.Close()
		ab2.Close()
		return nil, nil, err
	}
	a := NewPort(cfgA, ba2, ab1)
	b := NewPort(cfgB, ab2, ba1)
	return a, b, nil
}
