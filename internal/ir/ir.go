// Package ir is the dispatch-level intermediate representation of a
// compiled network function — the artifact PacketMill's passes transform
// (Figure 3's "Merged IR Code" → "Optimized IR Code").
//
// Element *bodies* stay native (they are Go methods, as they are C++ in
// FastClick); what the IR captures is everything the configuration-driven
// passes change: how each element hop dispatches (virtual / direct /
// inlined), where each element's state lives (.data vs heap), whether each
// parameter is a memory load or an immediate, and the metadata struct's
// field offsets. The textual form is deliberately LLVM-flavoured so dumps
// read like the paper's Listing 4.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
)

// Segment says where an element object lives.
type Segment int

// Placement segments.
const (
	SegHeap Segment = iota
	SegData         // static .data/.bss (contiguous)
)

func (s Segment) String() string {
	if s == SegData {
		return ".data"
	}
	return "heap"
}

// ParamKind says how a configuration parameter reaches the code.
type ParamKind int

// Parameter kinds.
const (
	ParamLoad  ParamKind = iota // loaded from element state each use
	ParamConst                  // embedded immediate (constant propagation)
)

func (p ParamKind) String() string {
	if p == ParamConst {
		return "const"
	}
	return "load"
}

// Param is one element parameter.
type Param struct {
	Name  string
	Value string
	Kind  ParamKind
}

// Func is one element instance's entry point.
type Func struct {
	Name   string // instance name
	Class  string
	Seg    Segment
	Params []Param
	// Calls are the outgoing hops in output-port order (nil for
	// unconnected ports).
	Calls []*Call
}

// Call is one element hand-off site.
type Call struct {
	Callee string
	ToPort int
	Kind   machine.CallKind
}

// Module is a whole compiled NF.
type Module struct {
	Name  string
	Funcs []*Func
	// Meta is the packet-descriptor layout in effect.
	Meta *layout.Layout
	// Notes records what each pass did (the paper's pass pipeline log).
	Notes []string
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Note appends a pass note.
func (m *Module) Note(format string, args ...any) {
	m.Notes = append(m.Notes, fmt.Sprintf(format, args...))
}

// Stats summarizes dispatch kinds for tests and reports.
type Stats struct {
	Virtual, Direct, Inlined int
	HeapFuncs, DataFuncs     int
	ConstParams, LoadParams  int
}

// Stats computes the module's dispatch/placement statistics.
func (m *Module) Stats() Stats {
	var s Stats
	for _, f := range m.Funcs {
		if f.Seg == SegData {
			s.DataFuncs++
		} else {
			s.HeapFuncs++
		}
		for _, p := range f.Params {
			if p.Kind == ParamConst {
				s.ConstParams++
			} else {
				s.LoadParams++
			}
		}
		for _, c := range f.Calls {
			if c == nil {
				continue
			}
			switch c.Kind {
			case machine.CallVirtual:
				s.Virtual++
			case machine.CallDirect:
				s.Direct++
			case machine.CallInlined:
				s.Inlined++
			}
		}
	}
	return s
}

// Dump renders the module in an LLVM-flavoured textual form.
func (m *Module) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; module %s\n", m.Name)
	for _, n := range m.Notes {
		fmt.Fprintf(&b, "; pass: %s\n", n)
	}
	if m.Meta != nil {
		fmt.Fprintf(&b, "%%class.Packet = type ; %s\n", m.Meta.String())
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "\n@%s.state = global %%class.%s section %q\n", f.Name, f.Class, f.Seg.String())
		fmt.Fprintf(&b, "define void @%s.push(%%class.PacketBatch* %%b) {\n", f.Name)
		for _, p := range f.Params {
			switch p.Kind {
			case ParamConst:
				fmt.Fprintf(&b, "  %%%s = i64 %s ; constant-embedded\n", sanitize(p.Name), p.Value)
			default:
				fmt.Fprintf(&b, "  %%%s = load i64, i64* getelementptr(@%s.state, %s)\n",
					sanitize(p.Name), f.Name, p.Name)
			}
		}
		for port, c := range f.Calls {
			if c == nil {
				fmt.Fprintf(&b, "  ; output %d unconnected\n", port)
				continue
			}
			switch c.Kind {
			case machine.CallInlined:
				fmt.Fprintf(&b, "  ; inlined body of @%s.push (port %d -> [%d])\n", c.Callee, port, c.ToPort)
			case machine.CallDirect:
				fmt.Fprintf(&b, "  call void @%s.push(%%b) ; port %d -> [%d]\n", c.Callee, port, c.ToPort)
			default:
				fmt.Fprintf(&b, "  %%vtbl%d = load void(...)**, @%s.state\n", port, f.Name)
				fmt.Fprintf(&b, "  call void %%vtbl%d(%%b) ; virtual, port %d -> [%d]@%s\n", port, port, c.ToPort, c.Callee)
			}
		}
		b.WriteString("  ret void\n}\n")
	}
	return b.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, strings.ToLower(s))
}

// SortFuncs orders functions by name for deterministic dumps.
func (m *Module) SortFuncs() {
	sort.Slice(m.Funcs, func(i, j int) bool { return m.Funcs[i].Name < m.Funcs[j].Name })
}
