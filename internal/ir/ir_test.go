package ir

import (
	"strings"
	"testing"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
)

func sampleModule() *Module {
	m := &Module{Name: "test", Meta: layout.ClickPacket()}
	f1 := &Func{Name: "input", Class: "FromDPDKDevice", Seg: SegHeap,
		Params: []Param{{Name: "arg0", Value: "PORT 0", Kind: ParamLoad}},
		Calls:  []*Call{{Callee: "mirror", Kind: machine.CallVirtual}},
	}
	f2 := &Func{Name: "mirror", Class: "EtherMirror", Seg: SegHeap,
		Calls: []*Call{{Callee: "output", Kind: machine.CallVirtual}},
	}
	f3 := &Func{Name: "output", Class: "ToDPDKDevice", Seg: SegHeap}
	m.Funcs = []*Func{f1, f2, f3}
	return m
}

func TestStats(t *testing.T) {
	m := sampleModule()
	st := m.Stats()
	if st.Virtual != 2 || st.Direct != 0 || st.Inlined != 0 {
		t.Fatalf("dispatch stats: %+v", st)
	}
	if st.HeapFuncs != 3 || st.DataFuncs != 0 {
		t.Fatalf("placement stats: %+v", st)
	}
	if st.LoadParams != 1 || st.ConstParams != 0 {
		t.Fatalf("param stats: %+v", st)
	}
}

func TestStatsAfterTransform(t *testing.T) {
	m := sampleModule()
	for _, f := range m.Funcs {
		f.Seg = SegData
		for i := range f.Params {
			f.Params[i].Kind = ParamConst
		}
		for _, c := range f.Calls {
			c.Kind = machine.CallInlined
		}
	}
	st := m.Stats()
	if st.Inlined != 2 || st.Virtual != 0 || st.DataFuncs != 3 || st.ConstParams != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	m := sampleModule()
	m.Note("test pass: did a thing")
	d := m.Dump()
	for _, want := range []string{
		"; module test",
		"; pass: test pass: did a thing",
		"%class.Packet",
		"@input.state",
		"define void @input.push",
		"%vtbl",
		"load i64", // the load-kind param
		`section "heap"`,
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestDumpUnconnectedPort(t *testing.T) {
	m := &Module{Name: "x"}
	m.Funcs = []*Func{{Name: "c", Class: "Classifier",
		Calls: []*Call{nil, {Callee: "d", Kind: machine.CallDirect}}}}
	d := m.Dump()
	if !strings.Contains(d, "output 0 unconnected") {
		t.Fatalf("dump: %s", d)
	}
	if !strings.Contains(d, "call void @d.push") {
		t.Fatalf("dump: %s", d)
	}
}

func TestFuncLookupAndSort(t *testing.T) {
	m := sampleModule()
	if m.Func("mirror") == nil || m.Func("ghost") != nil {
		t.Fatal("Func lookup broken")
	}
	m.SortFuncs()
	if m.Funcs[0].Name != "input" || m.Funcs[2].Name != "output" {
		t.Fatalf("sort order: %s %s %s", m.Funcs[0].Name, m.Funcs[1].Name, m.Funcs[2].Name)
	}
}

func TestSegmentAndParamStrings(t *testing.T) {
	if SegHeap.String() != "heap" || SegData.String() != ".data" {
		t.Fatal("segment strings")
	}
	if ParamLoad.String() != "load" || ParamConst.String() != "const" {
		t.Fatal("param strings")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Ether@Mirror-1"); strings.ContainsAny(got, "@-") {
		t.Fatalf("sanitize: %q", got)
	}
}
