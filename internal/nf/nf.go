// Package nf holds the paper's network-function configurations
// (Appendix A) as Click-language sources, parameterized where the
// experiments sweep them. These are the inputs PacketMill's pipeline
// consumes.
package nf

import "fmt"

// Forwarder is the simple forwarder of A.1: receive, rewrite the MAC
// addresses, transmit.
func Forwarder(port, burst int) string {
	return fmt.Sprintf(`
// Simple forwarder (Appendix A.1)
input :: FromDPDKDevice(PORT %d, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT %d, BURST %d);
input -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01) -> output;
`, port, burst, port, burst)
}

// Mirror is the EtherMirror forwarder of Listing 3.
func Mirror(port, burst int) string {
	return fmt.Sprintf(`
// Listing 3 forwarder
input :: FromDPDKDevice(PORT %d, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT %d, BURST %d);
input -> EtherMirror -> output;
`, port, burst, port, burst)
}

// TwoNICForwarder forwards between two ports with one core (Figure 5b).
func TwoNICForwarder(burst int) string {
	return fmt.Sprintf(`
// Two-NIC forwarder, one core (Fig. 5b)
in0 :: FromDPDKDevice(PORT 0, BURST %d);
out0 :: ToDPDKDevice(PORT 0, BURST %d);
in1 :: FromDPDKDevice(PORT 1, BURST %d);
out1 :: ToDPDKDevice(PORT 1, BURST %d);
in0 -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01) -> out0;
in1 -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01) -> out1;
`, burst, burst, burst, burst)
}

// Router is the standard-compliant IP router of A.2: classify
// ARP/IP, validate, route, decrement TTL, re-encapsulate.
func Router(burst int) string {
	return fmt.Sprintf(`
// Standard IP router (Appendix A.2)
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT 0, BURST %d);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
rt :: LookupIPRoute(10.1.0.0/16 0, 10.0.0.0/8 0, 0.0.0.0/0 10.1.0.1 0);
arpq :: ARPQuerier(10.1.0.254, 02:00:00:00:00:02);

input -> c;
c[0] -> ARPResponder(10.1.0.254 02:00:00:00:00:02) -> output;
c[1] -> [1]arpq;
c[2] -> Strip(14) -> CheckIPHeader(0) -> rt;
c[3] -> Discard;
rt[0] -> DecIPTTL -> [0]arpq;
arpq[0] -> output;
`, burst, burst)
}

// IDSRouter is the router preceded by the IDS checks and followed by VLAN
// encapsulation (A.3, §4.4's "IDS+router").
func IDSRouter(burst int) string {
	return fmt.Sprintf(`
// IDS + router + VLAN (Appendix A.3)
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT 0, BURST %d);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ids :: CheckTCPHeader(14);
idsu :: CheckUDPHeader(14);
idsi :: CheckICMPHeader(14);
rt :: LookupIPRoute(10.1.0.0/16 0, 10.0.0.0/8 0, 0.0.0.0/0 10.1.0.1 0);
arpq :: ARPQuerier(10.1.0.254, 02:00:00:00:00:02);

input -> c;
c[0] -> ARPResponder(10.1.0.254 02:00:00:00:00:02) -> output;
c[1] -> [1]arpq;
c[2] -> ids -> idsu -> idsi -> Strip(14) -> CheckIPHeader(0) -> rt;
c[3] -> Discard;
rt[0] -> DecIPTTL -> [0]arpq;
arpq[0] -> VLANEncap(VLAN_ID 42, VLAN_PCP 0) -> output;
`, burst, burst)
}

// NATRouter is the router plus the stateful NAPT of A.3 (§4.5's
// multicore NF).
func NATRouter(burst int) string {
	return fmt.Sprintf(`
// Router + NAT (Appendix A.3)
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT 0, BURST %d);
c :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
nat :: IPRewriter(EXTIP 192.168.100.1, CAPACITY 65536);
rt :: LookupIPRoute(10.1.0.0/16 0, 10.0.0.0/8 0, 0.0.0.0/0 10.1.0.1 0);
arpq :: ARPQuerier(10.1.0.254, 02:00:00:00:00:02);

input -> c;
c[0] -> ARPResponder(10.1.0.254 02:00:00:00:00:02) -> output;
c[1] -> [1]arpq;
c[2] -> nat -> Strip(14) -> CheckIPHeader(0) -> rt;
c[3] -> Discard;
rt[0] -> DecIPTTL -> [0]arpq;
arpq[0] -> output;
`, burst, burst)
}

// ConnTrackForwarder is the forwarder with the standalone connection
// tracker in the path: every packet is classified against the per-core
// flow shard (and annotated with its TCP state) before leaving. The
// million-flow state-plane exhibits drive this NF.
func ConnTrackForwarder(burst, capacity int) string {
	return fmt.Sprintf(`
// Forwarder + connection tracker
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT 0, BURST %d);
input -> ConnTracker(CAPACITY %d)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`, burst, burst, capacity)
}

// WorkPackageForwarder is the synthetic NF of A.4: the forwarder with a
// WorkPackage element of S MB, N accesses, and W random numbers.
func WorkPackageForwarder(burst, s, n, w int) string {
	return fmt.Sprintf(`
// WorkPackage forwarder (Appendix A.4)
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %d);
output :: ToDPDKDevice(PORT %d, BURST %d);
input -> WorkPackage(S %d, N %d, W %d)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`, burst, 0, burst, s, n, w)
}
