package nf

import (
	"os"
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
)

// Every configuration in the catalog must parse and reference only
// registered element classes with sane port usage.
func TestAllConfigsParse(t *testing.T) {
	configs := map[string]string{
		"forwarder":   Forwarder(0, 32),
		"mirror":      Mirror(0, 32),
		"two-nic":     TwoNICForwarder(32),
		"router":      Router(32),
		"ids-router":  IDSRouter(32),
		"nat-router":  NATRouter(32),
		"conntrack":   ConnTrackForwarder(32, 65536),
		"workpackage": WorkPackageForwarder(32, 4, 1, 4),
	}
	for name, cfg := range configs {
		g, err := click.Parse(cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(g.Elements) == 0 || len(g.Conns) == 0 {
			t.Errorf("%s: empty graph", name)
		}
		for _, e := range g.Elements {
			if _, err := click.NewElement(e.Class); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
		// Exactly the sources a config should have.
		srcs := 0
		for _, e := range g.Elements {
			if click.IsSourceClass(e.Class) {
				srcs++
			}
		}
		want := 1
		if name == "two-nic" {
			want = 2
		}
		if srcs != want {
			t.Errorf("%s: %d sources, want %d", name, srcs, want)
		}
	}
}

func TestBurstParameterPropagates(t *testing.T) {
	g, err := click.Parse(Router(64))
	if err != nil {
		t.Fatal(err)
	}
	in := g.Element("input")
	found := false
	for _, a := range in.Args {
		if a == "BURST 64" {
			found = true
		}
	}
	if !found {
		t.Fatalf("BURST not propagated: %v", in.Args)
	}
}

func TestRouterHasClassifierFanout(t *testing.T) {
	g, err := click.Parse(Router(32))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Element("c")
	if c == nil || c.Class != "Classifier" || len(c.Args) != 4 {
		t.Fatalf("classifier: %+v", c)
	}
	outs := 0
	for _, conn := range g.Conns {
		if conn.From == "c" {
			outs++
		}
	}
	if outs != 4 {
		t.Fatalf("classifier fanout %d", outs)
	}
}

// TestShippedConfigFilesInSync verifies the .click files under configs/
// stay identical to the generated catalog (they are the documented CLI
// inputs: `packetmill -config configs/router.click`).
func TestShippedConfigFilesInSync(t *testing.T) {
	files := map[string]string{
		"../../configs/forwarder.click":   Forwarder(0, 32),
		"../../configs/mirror.click":      Mirror(0, 32),
		"../../configs/router.click":      Router(32),
		"../../configs/ids-router.click":  IDSRouter(32),
		"../../configs/nat-router.click":  NATRouter(32),
		"../../configs/conntrack.click":   ConnTrackForwarder(32, 65536),
		"../../configs/workpackage.click": WorkPackageForwarder(32, 4, 1, 4),
	}
	for path, want := range files {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s is out of sync with the nf catalog", path)
		}
	}
}
