package cuckoo

import (
	"testing"
	"testing/quick"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/simrand"
)

func newTable(capacity int) *Table {
	return New(capacity, memsim.NewArena("cuckoo", memsim.HeapBase, 1<<28), 42)
}

func key(i uint32) Key {
	return Key{SrcIP: 0x0a000000 + i, DstIP: 0x0b000000 + i*7, SrcPort: uint16(i), DstPort: 80, Proto: 6}
}

func TestInsertLookup(t *testing.T) {
	tb := newTable(1024)
	if err := tb.Insert(nil, key(1), 100); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Lookup(nil, key(1))
	if !ok || v != 100 {
		t.Fatalf("lookup: %d %v", v, ok)
	}
	if _, ok := tb.Lookup(nil, key(2)); ok {
		t.Fatal("phantom entry")
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d", tb.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := newTable(1024)
	tb.Insert(nil, key(1), 100)
	tb.Insert(nil, key(1), 200)
	if tb.Len() != 1 {
		t.Fatalf("update grew table: %d", tb.Len())
	}
	if v, _ := tb.Lookup(nil, key(1)); v != 200 {
		t.Fatalf("v = %d", v)
	}
}

func TestDelete(t *testing.T) {
	tb := newTable(1024)
	tb.Insert(nil, key(1), 100)
	if !tb.Delete(nil, key(1)) {
		t.Fatal("delete missed")
	}
	if tb.Delete(nil, key(1)) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tb.Lookup(nil, key(1)); ok || tb.Len() != 0 {
		t.Fatal("entry survived delete")
	}
}

func TestManyEntriesWithDisplacement(t *testing.T) {
	tb := newTable(4096)
	const n = 4096
	for i := uint32(0); i < n; i++ {
		if err := tb.Insert(nil, key(i), uint64(i)); err != nil {
			t.Fatalf("insert %d/%d: %v", i, n, err)
		}
	}
	if tb.Len() != n {
		t.Fatalf("len %d", tb.Len())
	}
	for i := uint32(0); i < n; i++ {
		v, ok := tb.Lookup(nil, key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("entry %d lost after displacements (v=%d ok=%v)", i, v, ok)
		}
	}
}

func TestFullTableFailsWithoutLosingEntries(t *testing.T) {
	tb := newTable(64) // real capacity: rounded up + headroom
	inserted := map[uint32]bool{}
	var i uint32
	for {
		if err := tb.Insert(nil, key(i), uint64(i)); err != nil {
			break
		}
		inserted[i] = true
		i++
		if i > 1<<20 {
			t.Fatal("table never filled")
		}
	}
	// Every successfully inserted key must still be present (rollback
	// must not have evicted anyone).
	for k := range inserted {
		if v, ok := tb.Lookup(nil, key(k)); !ok || v != uint64(k) {
			t.Fatalf("key %d lost after failed insert", k)
		}
	}
}

func TestChargedOpsCost(t *testing.T) {
	_, core := machine.Default(2.0)
	tb := newTable(1024)
	before := core.Snapshot()
	tb.Insert(core, key(1), 1)
	tb.Lookup(core, key(1))
	tb.Delete(core, key(1))
	if d := core.Snapshot().Delta(before); d.Instructions == 0 {
		t.Fatal("table ops were free")
	}
}

func TestLargeTableLookupsTouchLLC(t *testing.T) {
	// A NAT-scale table (1M slots ≈ 16 MiB of buckets) probed randomly
	// must generate LLC traffic — the memory-intensiveness effect of
	// Figure 9.
	_, core := machine.Default(2.0)
	tb := New(1<<20, memsim.NewArena("cuckoo", memsim.HeapBase, 1<<30), 7)
	r := simrand.New(1)
	for i := 0; i < 10000; i++ {
		tb.Insert(nil, key(uint32(r.Intn(1<<30))), 1)
	}
	before := core.Snapshot()
	for i := 0; i < 1000; i++ {
		tb.Lookup(core, key(uint32(r.Intn(1<<30))))
	}
	if d := core.Snapshot().Delta(before); d.LLCLoads < 500 {
		t.Fatalf("random probes of a 16-MiB table produced only %d LLC loads", d.LLCLoads)
	}
}

func TestCapacityAndHeadroom(t *testing.T) {
	tb := newTable(1000)
	if tb.Capacity() < 1000 {
		t.Fatalf("capacity %d < requested", tb.Capacity())
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTable(0)
}

func TestPropertyMatchesMapModel(t *testing.T) {
	tb := newTable(8192)
	model := map[Key]uint64{}
	r := simrand.New(99)
	if err := quick.Check(func(op uint8, kSeed uint32, v uint64) bool {
		k := key(kSeed % 2000)
		switch op % 3 {
		case 0:
			if err := tb.Insert(nil, k, v); err == nil {
				model[k] = v
			}
		case 1:
			got, ok := tb.Lookup(nil, k)
			want, wantOK := model[k]
			if ok != wantOK || (ok && got != want) {
				return false
			}
		case 2:
			if tb.Delete(nil, k) != (func() bool { _, ok := model[k]; return ok })() {
				return false
			}
			delete(model, k)
		}
		_ = r
		return tb.Len() == len(model)
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
