// Package cuckoo implements a bucketed cuckoo hash table in the style of
// DPDK's rte_hash, which the paper's NAT configuration uses for its flow
// table ("the DPDK Cuckoo hash table, resulting in more lookups and higher
// memory usage", Appendix A.3). Keys hash to two candidate buckets of
// four slots each; inserts displace residents along a bounded cuckoo path.
//
// Lookups charge their bucket probes through the simulated cache, so a
// NAT's flow-table footprint shows up in the LLC exactly like Figure 9's
// WorkPackage sweeps.
package cuckoo

import (
	"errors"
	"fmt"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
)

// ErrFull is wrapped by Insert's error when the cuckoo path is exhausted,
// so callers layering an eviction policy on top can detect capacity
// pressure with errors.Is instead of string matching.
var ErrFull = errors.New("cuckoo: table full")

// SlotsPerBucket matches rte_hash's bucket width.
const SlotsPerBucket = 4

// maxDisplacements bounds the cuckoo path before declaring the table full.
const maxDisplacements = 128

// Key is the 5-tuple-sized fixed key (src/dst IP, src/dst port, proto).
type Key struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

type slot struct {
	occupied bool
	tag      uint16 // short fingerprint checked before full compare
	key      Key
	value    uint64
}

type bucket struct {
	slots [SlotsPerBucket]slot
}

// bucketBytes is the simulated footprint of one bucket (a cache line,
// like rte_hash's 64-byte buckets).
const bucketBytes = memsim.CacheLineSize

// Table is a fixed-capacity cuckoo hash table. Not safe for concurrent
// use; the NAT runs per-core tables.
type Table struct {
	buckets []bucket
	mask    uint32
	base    memsim.Addr
	count   int
	seed    uint64
}

// New builds a table with at least capacity slots (rounded up to a power
// of two bucket count), placing its buckets in the given arena.
func New(capacity int, arena *memsim.Arena, seed uint64) *Table {
	if capacity <= 0 {
		panic("cuckoo: capacity must be positive")
	}
	nb := 1
	for nb*SlotsPerBucket < capacity {
		nb <<= 1
	}
	// Head-room: cuckoo tables degrade near full; keep load factor ≤ ~94%.
	nb <<= 1
	return &Table{
		buckets: make([]bucket, nb),
		mask:    uint32(nb - 1),
		base:    arena.Alloc(uint64(nb)*bucketBytes, memsim.PageSize),
		seed:    seed,
	}
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Capacity returns the total slot count.
func (t *Table) Capacity() int { return len(t.buckets) * SlotsPerBucket }

// hash mixes the key with the table seed (xxhash-like avalanche).
func (t *Table) hash(k Key) uint64 {
	h := t.seed ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	mix(uint64(k.SrcIP)<<32 | uint64(k.DstIP))
	mix(uint64(k.SrcPort)<<32 | uint64(k.DstPort)<<16 | uint64(k.Proto))
	return h
}

// indices derives the two candidate buckets and the tag.
func (t *Table) indices(k Key) (uint32, uint32, uint16) {
	h := t.hash(k)
	tag := uint16(h>>48) | 1 // never zero
	i1 := uint32(h) & t.mask
	// Partial-key cuckoo: the alternate bucket is derived from the tag so
	// displacement can compute it without the full key's hash.
	i2 := (i1 ^ (uint32(tag) * 0x5bd1e995)) & t.mask
	return i1, i2, tag
}

func (t *Table) chargeBucket(core *machine.Core, idx uint32) {
	if core != nil {
		core.Load(t.base+memsim.Addr(idx)*bucketBytes, bucketBytes)
		core.Compute(6) // tag compares across the bucket
	}
}

// Lookup finds k, charging one or two bucket probes.
func (t *Table) Lookup(core *machine.Core, k Key) (uint64, bool) {
	i1, i2, tag := t.indices(k)
	t.chargeBucket(core, i1)
	if v, ok := t.searchBucket(i1, tag, k); ok {
		return v, true
	}
	t.chargeBucket(core, i2)
	return t.searchBucket(i2, tag, k)
}

func (t *Table) searchBucket(idx uint32, tag uint16, k Key) (uint64, bool) {
	b := &t.buckets[idx]
	for s := range b.slots {
		if b.slots[s].occupied && b.slots[s].tag == tag && b.slots[s].key == k {
			return b.slots[s].value, true
		}
	}
	return 0, false
}

// Insert stores k→v (updating in place if present). It returns an error
// when the cuckoo path is exhausted (table effectively full).
func (t *Table) Insert(core *machine.Core, k Key, v uint64) error {
	i1, i2, tag := t.indices(k)
	t.chargeBucket(core, i1)
	if t.updateInBucket(i1, tag, k, v) {
		return nil
	}
	t.chargeBucket(core, i2)
	if t.updateInBucket(i2, tag, k, v) {
		return nil
	}
	if t.placeInBucket(core, i1, tag, k, v) || t.placeInBucket(core, i2, tag, k, v) {
		t.count++
		return nil
	}
	// Displace along a cuckoo path starting from i1, journaling every
	// swap so a dead-end path can be rolled back without losing any
	// resident entry. The journal is a fixed stack array: inserts stay
	// allocation-free even when the path displaces.
	type step struct {
		idx    uint32
		victim int
		old    slot
	}
	var journal [maxDisplacements]step
	jn := 0
	cur := slot{occupied: true, tag: tag, key: k, value: v}
	idx := i1
	victim := 0
	for hop := 0; hop < maxDisplacements; hop++ {
		b := &t.buckets[idx]
		journal[jn] = step{idx: idx, victim: victim, old: b.slots[victim]}
		jn++
		cur, b.slots[victim] = b.slots[victim], cur
		if core != nil {
			core.Store(t.base+memsim.Addr(idx)*bucketBytes, bucketBytes)
			core.Compute(8)
		}
		// Move the displaced entry to its alternate bucket.
		alt := (idx ^ (uint32(cur.tag) * 0x5bd1e995)) & t.mask
		t.chargeBucket(core, alt)
		if t.placeSlot(alt, cur) {
			t.count++
			return nil
		}
		idx = alt
		victim = (victim + hop) % SlotsPerBucket
	}
	// Roll back: undo swaps newest-first, restoring each displaced entry.
	for i := jn - 1; i >= 0; i-- {
		s := journal[i]
		t.buckets[s.idx].slots[s.victim] = s.old
	}
	return fmt.Errorf("%w (%d/%d entries)", ErrFull, t.count, t.Capacity())
}

// InsertEvict inserts k→v like Insert, but when the bounded cuckoo path
// is exhausted it asks evict for a resident key to remove and retries.
// The callback returning false ends the attempt and the ErrFull-wrapped
// error is returned; evicted keys the table does not actually hold are a
// callback bug and surface the same way. Retries are bounded so a
// misbehaving callback cannot loop forever.
func (t *Table) InsertEvict(core *machine.Core, k Key, v uint64, evict func() (Key, bool)) error {
	const maxEvictions = 8
	var err error
	for attempt := 0; ; attempt++ {
		err = t.Insert(core, k, v)
		if err == nil || !errors.Is(err, ErrFull) {
			return err
		}
		if attempt >= maxEvictions || evict == nil {
			return err
		}
		victim, ok := evict()
		if !ok || !t.Delete(core, victim) {
			return err
		}
	}
}

func (t *Table) updateInBucket(idx uint32, tag uint16, k Key, v uint64) bool {
	b := &t.buckets[idx]
	for s := range b.slots {
		if b.slots[s].occupied && b.slots[s].tag == tag && b.slots[s].key == k {
			b.slots[s].value = v
			return true
		}
	}
	return false
}

func (t *Table) placeInBucket(core *machine.Core, idx uint32, tag uint16, k Key, v uint64) bool {
	return t.placeSlot(idx, slot{occupied: true, tag: tag, key: k, value: v})
}

func (t *Table) placeSlot(idx uint32, s slot) bool {
	b := &t.buckets[idx]
	for i := range b.slots {
		if !b.slots[i].occupied {
			b.slots[i] = s
			return true
		}
	}
	return false
}

// Delete removes k, reporting whether it was present.
func (t *Table) Delete(core *machine.Core, k Key) bool {
	i1, i2, tag := t.indices(k)
	for _, idx := range [2]uint32{i1, i2} {
		t.chargeBucket(core, idx)
		b := &t.buckets[idx]
		for s := range b.slots {
			if b.slots[s].occupied && b.slots[s].tag == tag && b.slots[s].key == k {
				b.slots[s] = slot{}
				t.count--
				return true
			}
		}
	}
	return false
}
