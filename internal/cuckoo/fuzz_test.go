// Fuzzing the cuckoo table against a map oracle: the fuzzer drives an
// arbitrary interleaving of inserts, lookups, and deletes (encoded as an
// op-stream of bytes) over a deliberately small table, so displacement
// paths, rollbacks, and full-table refusals all fire. After every op the
// table must agree with the oracle on membership, values, and length —
// the invariant TestFullTableFailsWithoutLosingEntries checks once,
// checked under adversarial schedules.
package cuckoo

import (
	"errors"
	"testing"
)

// fuzzKey derives a key from two fuzz bytes, concentrating the keyspace
// so collisions, displacements, and reinserts of the same key are common.
func fuzzKey(a, b byte) Key {
	return Key{
		SrcIP:   0x0a000000 | uint32(a),
		DstIP:   0x0b000000 | uint32(b)*7,
		SrcPort: uint16(a)<<8 | uint16(b),
		DstPort: 443,
		Proto:   17,
	}
}

func FuzzTableVsMapOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0x00, 0x10, 0x20, 0x00, 0x10, 0x40, 0x00, 0x10})
	// A delete/reinsert-heavy stream (op 2 then op 0 on the same key).
	f.Add([]byte{0x80, 5, 0x00, 5, 0x80, 5, 0x00, 5, 0x40, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb := newTable(64) // small: pressure and displacement are the point
		model := map[Key]uint64{}
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			k := fuzzKey(op&0x3f, arg)
			switch op >> 6 {
			case 0, 1: // insert (twice as likely: fills the table)
				v := uint64(arg) ^ uint64(i)<<8
				err := tb.Insert(nil, k, v)
				if err == nil {
					model[k] = v
				} else if !errors.Is(err, ErrFull) {
					t.Fatalf("op %d: unexpected insert error: %v", i, err)
				} else if _, present := model[k]; present {
					t.Fatalf("op %d: insert of resident key reported full", i)
				}
			case 2: // delete
				_, want := model[k]
				if got := tb.Delete(nil, k); got != want {
					t.Fatalf("op %d: delete=%v oracle=%v", i, got, want)
				}
				delete(model, k)
			case 3: // lookup
				got, ok := tb.Lookup(nil, k)
				want, wantOK := model[k]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("op %d: lookup=(%d,%v) oracle=(%d,%v)", i, got, ok, want, wantOK)
				}
			}
			if tb.Len() != len(model) {
				t.Fatalf("op %d: len=%d oracle=%d", i, tb.Len(), len(model))
			}
		}
		// Post-stream sweep: every oracle entry must be retrievable.
		for k, want := range model {
			if got, ok := tb.Lookup(nil, k); !ok || got != want {
				t.Fatalf("final sweep: key %+v =(%d,%v), oracle %d", k, got, ok, want)
			}
		}
	})
}

// The delete-then-reinsert regression: a slot freed by Delete must be
// reusable by a later Insert of the same key, with the fresh value — a
// stale tombstone or duplicate slot would return the old value or
// double-count Len. Exercised both before and after displacement traffic.
func TestDeleteThenReinsertSameKey(t *testing.T) {
	tb := newTable(256)
	k := key(7)
	for round := 0; round < 3; round++ {
		if err := tb.Insert(nil, k, uint64(100+round)); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		if v, ok := tb.Lookup(nil, k); !ok || v != uint64(100+round) {
			t.Fatalf("round %d lookup: (%d,%v)", round, v, ok)
		}
		if !tb.Delete(nil, k) {
			t.Fatalf("round %d delete missed", round)
		}
		if _, ok := tb.Lookup(nil, k); ok {
			t.Fatalf("round %d: entry survived delete", round)
		}
		// Churn the neighborhood so later rounds hit displaced layouts.
		for i := uint32(0); i < 64; i++ {
			tb.Insert(nil, key(1000+i*uint32(round+1)), uint64(i))
		}
	}
	if err := tb.Insert(nil, k, 999); err != nil {
		t.Fatalf("final reinsert: %v", err)
	}
	if v, ok := tb.Lookup(nil, k); !ok || v != 999 {
		t.Fatalf("final lookup: (%d,%v)", v, ok)
	}
}

// InsertEvict must turn a full-table refusal into an eviction of the
// callback's victim and a successful retry, and must give up cleanly
// when the callback has nothing to offer.
func TestInsertEvict(t *testing.T) {
	tb := newTable(64)
	var resident []uint32
	var i uint32
	for {
		if err := tb.Insert(nil, key(i), uint64(i)); err != nil {
			break
		}
		resident = append(resident, i)
		i++
	}
	// Fullness is path-dependent: reuse the key whose insert just failed,
	// which is known to have no cuckoo path left.
	newKey := key(i)
	// No callback: still full.
	if err := tb.InsertEvict(nil, newKey, 1, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("nil-callback InsertEvict: %v", err)
	}
	// Callback offering residents oldest-first: must succeed.
	next := 0
	evicted := 0
	err := tb.InsertEvict(nil, newKey, 42, func() (Key, bool) {
		if next >= len(resident) {
			return Key{}, false
		}
		k := key(resident[next])
		next++
		evicted++
		return k, true
	})
	if err != nil {
		t.Fatalf("InsertEvict with victims: %v", err)
	}
	if evicted == 0 {
		t.Fatal("insert succeeded without evicting — table was not full")
	}
	if v, ok := tb.Lookup(nil, newKey); !ok || v != 42 {
		t.Fatalf("new key after evict: (%d,%v)", v, ok)
	}
	// Exactly the evicted keys are gone; the rest survive.
	for j, id := range resident {
		_, ok := tb.Lookup(nil, key(id))
		if j < next && ok {
			t.Fatalf("victim %d still resident", id)
		}
		if j >= next && !ok {
			t.Fatalf("bystander %d lost during eviction", id)
		}
	}
}
