package overload

import (
	"testing"

	"packetmill/internal/stats"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"":          PolicyNone,
		"none":      PolicyNone,
		"off":       PolicyNone,
		"tail-drop": PolicyTailDrop,
		"taildrop":  PolicyTailDrop,
		"RED":       PolicyRED,
		"priority":  PolicyPriority,
		"prio":      PolicyPriority,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted a bogus policy")
	}
	for p := Policy(0); p < numPolicies; p++ {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("policy %v does not round-trip its String form", p)
		}
	}
}

func TestClassOf(t *testing.T) {
	ipv4 := make([]byte, 64)
	ipv4[12], ipv4[13] = 0x08, 0x00
	ipv4[15] = 0xb8 // DSCP EF: precedence 5
	if got := ClassOf(ipv4); got != 5 {
		t.Errorf("IPv4 EF frame: class %d, want 5", got)
	}
	vlan := make([]byte, 64)
	vlan[12], vlan[13] = 0x81, 0x00
	vlan[14] = 0xe0 // PCP 7
	if got := ClassOf(vlan); got != 7 {
		t.Errorf("VLAN PCP-7 frame: class %d, want 7", got)
	}
	if got := ClassOf(make([]byte, 64)); got != 0 {
		t.Errorf("untagged non-IP frame: class %d, want 0", got)
	}
	if got := ClassOf([]byte{0x08}); got != 0 {
		t.Error("runt frame must class as 0, not panic")
	}
}

// degrade pushes a controller out of Healthy so the shedder arms.
func degrade(c *Controller, nowNS float64) float64 {
	c.Observe(nowNS, Signals{Occupancy: 0.6})
	nowNS += c.cfg.Health.DwellNS + 1
	c.Observe(nowNS, Signals{Occupancy: 0.6})
	return nowNS
}

func TestAdmitPolicies(t *testing.T) {
	t.Run("none-admits-everything", func(t *testing.T) {
		c := New(Config{Policy: PolicyNone})
		degrade(c, 0)
		c.occ = 0.99
		if ok, _ := c.Admit(0); !ok {
			t.Error("PolicyNone shed a frame")
		}
	})
	t.Run("nil-admits-everything", func(t *testing.T) {
		var c *Controller
		if ok, _ := c.Admit(0); !ok {
			t.Error("nil controller shed a frame")
		}
	})
	t.Run("healthy-admits-everything", func(t *testing.T) {
		c := New(Config{Policy: PolicyTailDrop})
		c.occ = 0.99 // high occupancy but still Healthy (no Observe yet)
		if ok, _ := c.Admit(0); !ok {
			t.Error("Healthy state shed a frame")
		}
	})
	t.Run("tail-drop", func(t *testing.T) {
		c := New(Config{Policy: PolicyTailDrop, HighWater: 0.8})
		degrade(c, 0)
		c.occ = 0.79
		if ok, _ := c.Admit(0); !ok {
			t.Error("tail-drop shed below the high watermark")
		}
		c.occ = 0.8
		ok, reason := c.Admit(0)
		if ok || reason != stats.DropOverloadShed {
			t.Errorf("tail-drop at watermark: admit=%v reason=%v", ok, reason)
		}
	})
	t.Run("red-ramps", func(t *testing.T) {
		c := New(Config{Policy: PolicyRED, HighWater: 0.9, LowWater: 0.3, Seed: 42})
		degrade(c, 0)
		shedAt := func(occ float64) float64 {
			c.occ = occ
			shed := 0
			for i := 0; i < 2000; i++ {
				if ok, reason := c.Admit(0); !ok {
					if reason != stats.DropOverloadRED {
						t.Fatalf("RED shed under reason %v", reason)
					}
					shed++
				}
			}
			return float64(shed) / 2000
		}
		if r := shedAt(0.25); r != 0 {
			t.Errorf("RED shed %.2f below the low watermark", r)
		}
		mid := shedAt(0.6)
		if mid < 0.3 || mid > 0.7 {
			t.Errorf("RED mid-ramp shed rate %.2f, want ≈0.5", mid)
		}
		if r := shedAt(0.95); r != 1 {
			t.Errorf("RED shed %.2f at the high watermark, want 1", r)
		}
	})
	t.Run("priority-ordering", func(t *testing.T) {
		c := New(Config{Policy: PolicyPriority, HighWater: 0.9, LowWater: 0.1})
		degrade(c, 0)
		c.occ = 0.5
		lowOK, _ := c.Admit(0)
		hiOK, _ := c.Admit(7)
		if lowOK || !hiOK {
			t.Errorf("at mid occupancy: class0 admit=%v class7 admit=%v; want false,true", lowOK, hiOK)
		}
		c.occ = 0.95 // above high: even class 7 sheds
		if ok, reason := c.Admit(7); ok || reason != stats.DropOverloadPrio {
			t.Errorf("class 7 above high watermark: admit=%v reason=%v", ok, reason)
		}
	})
}

func TestBackpressureCounting(t *testing.T) {
	c := New(Config{Lossless: true})
	if c.Paused() {
		t.Fatal("paused with no pressure")
	}
	c.RaisePressure(100)
	c.RaisePressure(200)
	if !c.Paused() || c.PressureSources() != 2 {
		t.Fatalf("two raisers: paused=%v sources=%d", c.Paused(), c.PressureSources())
	}
	c.LowerPressure(300)
	if !c.Paused() {
		t.Fatal("unpaused while one raiser remains")
	}
	c.LowerPressure(500)
	if c.Paused() {
		t.Fatal("still paused after all raisers cleared")
	}
	st := c.Status(500)
	if st.Pauses != 1 || st.PausedNS != 400 {
		t.Errorf("pause accounting: pauses=%d pausedNS=%v; want 1, 400", st.Pauses, st.PausedNS)
	}
	// Lossy controllers never pause even under pressure.
	lossy := New(Config{})
	lossy.RaisePressure(0)
	if lossy.Paused() {
		t.Error("lossy controller paused")
	}
	// ResetPressure clears a wedged raiser set.
	c.RaisePressure(600)
	c.ResetPressure(700)
	if c.Paused() || c.PressureSources() != 0 {
		t.Error("ResetPressure left pressure raised")
	}
}

func TestHealthLifecycle(t *testing.T) {
	var hops []string
	c := New(Config{Policy: PolicyTailDrop, OnTransition: func(_ float64, from, to State) {
		hops = append(hops, from.String()+">"+to.String())
	}})
	dwell := c.cfg.Health.DwellNS
	now := 0.0
	step := func(occ float64) {
		now += dwell + 1
		c.Observe(now, Signals{Occupancy: occ})
	}
	step(0.1) // healthy
	if c.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", c.State())
	}
	step(0.6)
	if c.State() != StateDegraded {
		t.Fatalf("state %v, want degraded", c.State())
	}
	step(0.95)
	if c.State() != StateOverloaded {
		t.Fatalf("state %v, want overloaded", c.State())
	}
	step(0.4)
	if c.State() != StateRecovering {
		t.Fatalf("state %v, want recovering", c.State())
	}
	step(0.1)
	if c.State() != StateHealthy {
		t.Fatalf("state %v, want healthy", c.State())
	}
	want := []string{"healthy>degraded", "degraded>overloaded", "overloaded>recovering", "recovering>healthy"}
	if len(hops) != len(want) {
		t.Fatalf("transitions %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, hops[i], want[i])
		}
	}
	st := c.Status(now)
	if st.Transitions != 4 {
		t.Errorf("Transitions = %d, want 4", st.Transitions)
	}
	var total float64
	for _, ns := range st.TimeInNS {
		total += ns
	}
	if total <= 0 {
		t.Error("time-in-state accounting recorded nothing")
	}
}

func TestHealthDwellGate(t *testing.T) {
	c := New(Config{})
	dwell := c.cfg.Health.DwellNS
	c.Observe(0, Signals{Occupancy: 0.6})
	c.Observe(dwell+1, Signals{Occupancy: 0.6}) // -> degraded
	if c.State() != StateDegraded {
		t.Fatalf("state %v, want degraded", c.State())
	}
	// Inside the dwell window nothing moves, however hard the signal swings.
	for _, occ := range []float64{0.99, 0.0, 0.99, 0.0} {
		c.Observe(dwell+2, Signals{Occupancy: occ})
		if c.State() != StateDegraded {
			t.Fatalf("state changed to %v inside the dwell window", c.State())
		}
	}
}

func TestLatencyBudgetSignal(t *testing.T) {
	c := New(Config{Health: HealthConfig{P99BudgetNS: 10_000}})
	dwell := c.cfg.Health.DwellNS
	c.Observe(0, Signals{Occupancy: 0.05, P99NS: 50_000})
	c.Observe(dwell+1, Signals{Occupancy: 0.05, P99NS: 50_000})
	if c.State() != StateDegraded {
		t.Fatalf("p99 over budget at low occupancy: state %v, want degraded", c.State())
	}
	// A starved core with a stale histogram must recover despite the p99.
	c.Observe(2*(dwell+1), Signals{Occupancy: 0.0, EmptyPollRate: 0.99, P99NS: 50_000})
	if c.State() != StateHealthy {
		t.Fatalf("idle override: state %v, want healthy", c.State())
	}
}

// TestOscillationSoak sweeps offered occupancy up and down across the
// watermarks many times and asserts the state machine is monotone per
// sweep: each rising sweep walks Healthy→Degraded→Overloaded without
// revisiting an earlier state, each falling sweep walks back without
// re-escalating, and no two transitions ever land inside one dwell
// window. This is the anti-flap guarantee the hysteresis exists for.
func TestOscillationSoak(t *testing.T) {
	c := New(Config{Policy: PolicyRED, Seed: 7})
	dwell := c.cfg.Health.DwellNS
	var transNS []float64
	var hops [][2]State
	c.cfg.OnTransition = func(nowNS float64, from, to State) {
		transNS = append(transNS, nowNS)
		hops = append(hops, [2]State{from, to})
	}
	rank := map[State]int{StateHealthy: 0, StateRecovering: 1, StateDegraded: 2, StateOverloaded: 3}

	now := 0.0
	const obsGap = 12_500.0 // DwellNS/4: the testbed's observe cadence
	sweep := func(from, to float64) {
		steps := 400
		for i := 0; i <= steps; i++ {
			occ := from + (to-from)*float64(i)/float64(steps)
			now += obsGap
			c.Observe(now, Signals{Occupancy: occ})
		}
	}
	for cycle := 0; cycle < 20; cycle++ {
		start := len(hops)
		sweep(0.05, 0.98) // rising: pressure must only escalate
		for _, h := range hops[start:] {
			if rank[h[1]] < rank[h[0]] {
				t.Fatalf("cycle %d rising sweep de-escalated %v→%v", cycle, h[0], h[1])
			}
		}
		start = len(hops)
		sweep(0.98, 0.05) // falling: pressure must only release
		for _, h := range hops[start:] {
			if rank[h[1]] > rank[h[0]] {
				t.Fatalf("cycle %d falling sweep re-escalated %v→%v", cycle, h[0], h[1])
			}
		}
		if c.State() != StateHealthy {
			t.Fatalf("cycle %d did not settle back to healthy (state %v)", cycle, c.State())
		}
	}
	for i := 1; i < len(transNS); i++ {
		if transNS[i]-transNS[i-1] < dwell {
			t.Fatalf("transitions %d and %d are %.0f ns apart — flapping inside the %.0f ns dwell window",
				i-1, i, transNS[i]-transNS[i-1], dwell)
		}
	}
	if len(transNS) == 0 {
		t.Fatal("soak produced no transitions at all")
	}
}

func TestAdmitZeroAlloc(t *testing.T) {
	c := New(Config{Policy: PolicyRED, Seed: 1})
	degrade(c, 0)
	c.occ = 0.6
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x00
	allocs := testing.AllocsPerRun(1000, func() {
		c.Admit(ClassOf(frame))
		c.Observe(1e9, Signals{Occupancy: 0.6})
	})
	if allocs != 0 {
		t.Fatalf("Admit/Observe allocate %.1f per call; the RX hot path must be allocation-free", allocs)
	}
}
