// The per-core health state machine: Healthy → Degraded → Overloaded →
// Recovering, driven by the telemetry signals the datapath already
// produces (ring occupancy, empty-poll rate, latency p99). Metronome's
// observation — that ring occupancy is the control signal software
// datapaths should react to — is the design anchor; the dwell-time
// hysteresis keeps a noisy signal from flapping the state.
package overload

import "fmt"

// State is one node of the health lifecycle.
type State uint8

const (
	// StateHealthy: occupancy and latency inside budget; no shedding.
	StateHealthy State = iota
	// StateDegraded: early pressure — occupancy crossed the degrade
	// threshold or p99 left its budget. The shedder arms at its
	// configured watermarks.
	StateDegraded
	// StateOverloaded: sustained pressure — occupancy at the overload
	// threshold. Watermarks tighten so shedding starts earlier.
	StateOverloaded
	// StateRecovering: pressure released from Overloaded; watermarks
	// relax above nominal so the pipeline drains before shedding stops,
	// preventing an admit-burst from re-triggering overload.
	StateRecovering

	// NumStates bounds the lifecycle.
	NumStates
)

var stateNames = [NumStates]string{"healthy", "degraded", "overloaded", "recovering"}

// String names the state the way /metrics and trace events label it.
func (s State) String() string {
	if s < NumStates {
		return stateNames[s]
	}
	return fmt.Sprintf("state-%d", uint8(s))
}

// Signals is one observation of a core's load, fed to Observe on the
// control cadence. All fields are instantaneous readings; the state
// machine supplies the smoothing via dwell-time hysteresis.
type Signals struct {
	// Occupancy is the worst ring/queue fill fraction on the core, 0–1.
	Occupancy float64
	// EmptyPollRate is the fraction of recent PMD polls that returned
	// nothing — high when the core is starved of work.
	EmptyPollRate float64
	// P99NS is the current p99 of the core's latency histogram in ns
	// (0 when no histogram is attached).
	P99NS float64
}

// HealthConfig tunes the state machine's thresholds.
type HealthConfig struct {
	// DegradeOcc: occupancy at or above this enters Degraded. Default 0.5.
	DegradeOcc float64
	// OverloadOcc: occupancy at or above this enters Overloaded. Default 0.85.
	OverloadOcc float64
	// RecoverOcc: occupancy at or below this releases toward Healthy.
	// Default 0.30.
	RecoverOcc float64
	// P99BudgetNS: a latency budget; p99 beyond it counts as pressure
	// even at low occupancy. 0 ignores latency.
	P99BudgetNS float64
	// DwellNS: minimum time between transitions. Default 50 µs — a few
	// thousand packet times at 100 Gbps, long enough to ride out bursts.
	DwellNS float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.DegradeOcc <= 0 {
		c.DegradeOcc = 0.5
	}
	if c.OverloadOcc <= 0 {
		c.OverloadOcc = 0.85
	}
	if c.RecoverOcc <= 0 {
		c.RecoverOcc = 0.30
	}
	if c.DwellNS <= 0 {
		c.DwellNS = 50e3
	}
	return c
}

// health is the state machine proper. Single-core; allocation-free.
type health struct {
	cfg          HealthConfig
	state        State
	lastChangeNS float64
	lastObsNS    float64
	transitions  uint64
	timeIn       [NumStates]float64
}

// observe folds one reading into the machine and returns the state it
// lands in. Transitions are dwell-gated: once the state changes, no
// further change happens until DwellNS has elapsed, in either direction —
// that is the anti-flap hysteresis.
func (h *health) observe(nowNS float64, s Signals) State {
	if h.lastObsNS > 0 && nowNS > h.lastObsNS {
		h.timeIn[h.state] += nowNS - h.lastObsNS
	}
	h.lastObsNS = nowNS
	if nowNS-h.lastChangeNS < h.cfg.DwellNS {
		return h.state
	}
	occ := s.Occupancy
	latBad := h.cfg.P99BudgetNS > 0 && s.P99NS > h.cfg.P99BudgetNS
	// A starved core with empty queues reads a stale p99 — the histogram
	// only decays as new packets land — so idleness overrides latency.
	idle := s.EmptyPollRate > 0.9 && occ <= h.cfg.RecoverOcc

	next := h.state
	switch h.state {
	case StateHealthy:
		if occ >= h.cfg.OverloadOcc {
			next = StateOverloaded
		} else if occ >= h.cfg.DegradeOcc || (latBad && !idle) {
			next = StateDegraded
		}
	case StateDegraded:
		switch {
		case occ >= h.cfg.OverloadOcc:
			next = StateOverloaded
		case occ <= h.cfg.RecoverOcc && (!latBad || idle):
			next = StateHealthy
		}
	case StateOverloaded:
		if occ < h.cfg.DegradeOcc {
			next = StateRecovering
		}
	case StateRecovering:
		switch {
		case occ >= h.cfg.OverloadOcc:
			next = StateOverloaded
		case (occ <= h.cfg.RecoverOcc && !latBad) || idle:
			next = StateHealthy
		}
	}
	if next != h.state {
		h.state = next
		h.lastChangeNS = nowNS
		h.transitions++
	}
	return h.state
}

// force moves the machine straight to a state (watchdog recovery), still
// counting the transition and restarting the dwell clock.
func (h *health) force(nowNS float64, s State) {
	if h.lastObsNS > 0 && nowNS > h.lastObsNS {
		h.timeIn[h.state] += nowNS - h.lastObsNS
		h.lastObsNS = nowNS
	}
	if s != h.state {
		h.state = s
		h.lastChangeNS = nowNS
		h.transitions++
	}
}
