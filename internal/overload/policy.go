// Admission policies: how a core sheds load at the PMD RX boundary once
// the control plane decides shedding is necessary. Shedding at RX — before
// metadata conversion — is the cheapest possible drop: the frame has cost
// one descriptor poll and nothing else, which is why admission control
// lives in RxBurst rather than anywhere downstream.
package overload

import (
	"fmt"
	"strings"
)

// Policy selects the admission-control shedder.
type Policy uint8

const (
	// PolicyNone admits everything; the health state machine still runs
	// (for observability and backpressure) but never sheds.
	PolicyNone Policy = iota
	// PolicyTailDrop sheds every arrival while occupancy sits at or
	// above the high watermark — the classic queue-tail behaviour, moved
	// up to the RX boundary.
	PolicyTailDrop
	// PolicyRED sheds probabilistically: admission probability ramps
	// from 1 at the low watermark to 0 at the high watermark, smearing
	// drops across flows instead of bursting them (RED without the EWMA,
	// since ring occupancy is already a smoothed signal here).
	PolicyRED
	// PolicyPriority sheds by traffic class: lower classes meet a lower
	// occupancy threshold, so under sustained overload high-priority
	// traffic keeps its latency budget while best-effort is shed first.
	// The class comes from the 802.1Q PCP bits when the frame is tagged,
	// else the IPv4 precedence bits (top three TOS/DSCP bits).
	PolicyPriority

	numPolicies
)

var policyNames = [numPolicies]string{"none", "tail-drop", "red", "priority"}

// String names the policy the way the CLI flags spell it.
func (p Policy) String() string {
	if p < numPolicies {
		return policyNames[p]
	}
	return fmt.Sprintf("policy-%d", uint8(p))
}

// ParsePolicy reads a CLI spelling of a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "off":
		return PolicyNone, nil
	case "tail-drop", "taildrop", "tail":
		return PolicyTailDrop, nil
	case "red":
		return PolicyRED, nil
	case "priority", "prio":
		return PolicyPriority, nil
	}
	return PolicyNone, fmt.Errorf("overload: unknown policy %q (want none, tail-drop, red, or priority)", s)
}

// NumClasses is the traffic-class range ClassOf returns: 3 bits, matching
// both 802.1Q PCP and IPv4 precedence. Class 7 is shed last.
const NumClasses = 8

// ClassOf extracts a frame's traffic class for the priority shedder:
// the 802.1Q PCP bits when tagged, else the IPv4 precedence bits, else 0
// (best effort). Allocation-free and safe on runts.
func ClassOf(frame []byte) uint8 {
	if len(frame) < 15 {
		return 0
	}
	switch {
	case frame[12] == 0x81 && frame[13] == 0x00: // 802.1Q tag
		return frame[14] >> 5 // PCP
	case frame[12] == 0x08 && frame[13] == 0x00: // IPv4
		return frame[15] >> 5 // TOS precedence (byte 1 of the IP header)
	}
	return 0
}
