// Package overload is the per-core overload control plane: it turns the
// telemetry signals the datapath already exports (ring occupancy,
// empty-poll rate, latency p99) into control actions — admission control
// at the PMD RX boundary, end-to-end backpressure for lossless
// pipelines, and a self-healing health state machine whose transitions
// select the active shedding posture.
//
// The package sits below everything that uses it: it imports only the
// stats taxonomy and the seeded RNG, so dpdk, click, elements, wire, and
// testbed can all hold a *Controller without an import cycle. Every
// method is nil-receiver-safe and allocation-free, so the datapath hooks
// cost one pointer test when the control plane is off — the same
// discipline as the trace flight recorder.
package overload

import (
	"packetmill/internal/simrand"
	"packetmill/internal/stats"
)

// Config shapes one core's controller.
type Config struct {
	// Policy selects the RX admission shedder.
	Policy Policy
	// HighWater/LowWater are the occupancy watermarks (fractions of ring
	// capacity) between which shedding ramps. Defaults 0.85 / 0.35.
	HighWater, LowWater float64
	// Lossless configures backpressure instead of mid-graph drops:
	// downstream stages above their high watermark raise pressure, and
	// the PMD RX pauses until every raiser clears its low watermark.
	Lossless bool
	// Health tunes the state machine.
	Health HealthConfig
	// Seed derives the RED shedder's probability stream.
	Seed uint64
	// OnTransition, when set, observes every health-state change —
	// the testbed routes it to the trace flight recorder.
	OnTransition func(nowNS float64, from, to State)
}

func (c Config) withDefaults() Config {
	if c.HighWater <= 0 {
		c.HighWater = 0.85
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.35
	}
	if c.LowWater >= c.HighWater {
		c.LowWater = c.HighWater / 2
	}
	c.Health = c.Health.withDefaults()
	return c
}

// CoreStatus is a snapshot of one controller for reports and metrics.
type CoreStatus struct {
	Policy      Policy
	State       State
	Transitions uint64
	TimeInNS    [NumStates]float64
	AdmitOK     uint64
	Sheds       uint64
	Raises      uint64
	Pauses      uint64
	PausedNS    float64
}

// Controller is one core's control plane. All methods are single-core
// (called only from the owning engine loop or the driver between steps)
// and nil-safe.
type Controller struct {
	cfg    Config
	rng    *simrand.Rand
	health health

	occ float64 // latest observed occupancy, set by Observe

	// backpressure: a counted set of raised stages.
	sources      int
	pauseStartNS float64
	raises       uint64
	pauses       uint64
	pausedNS     float64
	admitOK      uint64
	sheds        uint64
}

// New builds a controller. A nil return never happens; callers keep nil
// *Controller to mean "control plane off".
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:    cfg,
		rng:    simrand.New(simrand.Derive(cfg.Seed, 0x0fed, 0)),
		health: health{cfg: cfg.Health},
	}
}

// Policy returns the configured shedding policy (PolicyNone when nil).
func (c *Controller) Policy() Policy {
	if c == nil {
		return PolicyNone
	}
	return c.cfg.Policy
}

// State returns the current health state (StateHealthy when nil).
func (c *Controller) State() State {
	if c == nil {
		return StateHealthy
	}
	return c.health.state
}

// Lossless reports whether backpressure (rather than mid-graph drops)
// is configured.
func (c *Controller) Lossless() bool { return c != nil && c.cfg.Lossless }

// DwellNS returns the health machine's dwell time — the harness paces
// its observation cadence off it (a few observations per dwell window).
func (c *Controller) DwellNS() float64 {
	if c == nil {
		return 0
	}
	return c.cfg.Health.DwellNS
}

// Watermarks returns the effective high/low occupancy watermarks for
// the current health state. Overloaded tightens them so shedding starts
// earlier; Recovering relaxes them so the pipeline drains fully before
// admission returns to normal.
func (c *Controller) Watermarks() (high, low float64) {
	if c == nil {
		return 1, 1
	}
	high, low = c.cfg.HighWater, c.cfg.LowWater
	switch c.health.state {
	case StateOverloaded:
		high *= 0.7
		low *= 0.7
	case StateRecovering:
		high *= 1.15
		if high > 1 {
			high = 1
		}
	}
	return high, low
}

// NoteOccupancy refreshes the occupancy the shedder prices admissions
// against, without touching the health machine. The PMD calls this once
// per burst poll with the live RX-ring fill: admission must see the
// queue as it is *now*, not as it was at the last Observe — a stale
// reading turns the shedder bang-bang (whole observation windows of
// shed-everything alternating with admit-everything overflows).
func (c *Controller) NoteOccupancy(occ float64) {
	if c == nil {
		return
	}
	c.occ = occ
}

// Observe feeds one reading of the core's signals to the health machine
// and caches the occupancy the shedder prices admissions against.
func (c *Controller) Observe(nowNS float64, s Signals) {
	if c == nil {
		return
	}
	c.occ = s.Occupancy
	from := c.health.state
	to := c.health.observe(nowNS, s)
	if to != from && c.cfg.OnTransition != nil {
		c.cfg.OnTransition(nowNS, from, to)
	}
}

// Admit prices one arriving frame against the active policy and the
// current health state. It returns (true, 0) to admit, or (false,
// reason) naming the DropOverload* reason to book the shed under. The
// frame's traffic class (from ClassOf) matters only to PolicyPriority.
func (c *Controller) Admit(class uint8) (bool, stats.DropReason) {
	if c == nil || c.cfg.Policy == PolicyNone || c.health.state == StateHealthy {
		if c != nil {
			c.admitOK++
		}
		return true, 0
	}
	high, low := c.Watermarks()
	occ := c.occ
	switch c.cfg.Policy {
	case PolicyTailDrop:
		if occ >= high {
			c.sheds++
			return false, stats.DropOverloadShed
		}
	case PolicyRED:
		if occ >= high {
			c.sheds++
			return false, stats.DropOverloadRED
		}
		if occ > low {
			p := (occ - low) / (high - low)
			if c.rng.Float64() < p {
				c.sheds++
				return false, stats.DropOverloadRED
			}
		}
	case PolicyPriority:
		// Class k sheds once occupancy crosses a per-class threshold
		// spread across [low, high]: class 0 sheds first, class 7 only
		// at the high watermark itself.
		thresh := low + (high-low)*float64(class+1)/float64(NumClasses)
		if occ >= thresh {
			c.sheds++
			return false, stats.DropOverloadPrio
		}
	}
	c.admitOK++
	return true, 0
}

// RaisePressure marks one downstream stage above its high watermark.
// The first raiser starts the pause clock.
func (c *Controller) RaisePressure(nowNS float64) {
	if c == nil {
		return
	}
	c.sources++
	c.raises++
	if c.sources == 1 {
		c.pauses++
		c.pauseStartNS = nowNS
	}
}

// LowerPressure clears one raiser. When the last one clears, the pause
// interval is accounted.
func (c *Controller) LowerPressure(nowNS float64) {
	if c == nil || c.sources == 0 {
		return
	}
	c.sources--
	if c.sources == 0 && nowNS > c.pauseStartNS {
		c.pausedNS += nowNS - c.pauseStartNS
	}
}

// PressureSources returns the number of currently-raised stages.
func (c *Controller) PressureSources() int {
	if c == nil {
		return 0
	}
	return c.sources
}

// Paused reports whether the PMD RX should skip this poll: lossless
// mode with at least one downstream stage holding pressure.
func (c *Controller) Paused() bool {
	return c != nil && c.cfg.Lossless && c.sources > 0
}

// ResetPressure drops every raised source — the watchdog calls this
// after drain-and-restart, when the stages that raised pressure have
// been flushed and will not lower it themselves.
func (c *Controller) ResetPressure(nowNS float64) {
	if c == nil {
		return
	}
	if c.sources > 0 && nowNS > c.pauseStartNS {
		c.pausedNS += nowNS - c.pauseStartNS
	}
	c.sources = 0
}

// ForceRecover moves the health machine to Recovering — the watchdog's
// drain-and-restart escalation path.
func (c *Controller) ForceRecover(nowNS float64) {
	if c == nil {
		return
	}
	from := c.health.state
	c.health.force(nowNS, StateRecovering)
	if from != StateRecovering && c.cfg.OnTransition != nil {
		c.cfg.OnTransition(nowNS, from, StateRecovering)
	}
}

// Status snapshots the controller for reports; nowNS closes the open
// time-in-state and pause intervals.
func (c *Controller) Status(nowNS float64) CoreStatus {
	if c == nil {
		return CoreStatus{}
	}
	st := CoreStatus{
		Policy:      c.cfg.Policy,
		State:       c.health.state,
		Transitions: c.health.transitions,
		TimeInNS:    c.health.timeIn,
		AdmitOK:     c.admitOK,
		Sheds:       c.sheds,
		Raises:      c.raises,
		Pauses:      c.pauses,
		PausedNS:    c.pausedNS,
	}
	if c.health.lastObsNS > 0 && nowNS > c.health.lastObsNS {
		st.TimeInNS[c.health.state] += nowNS - c.health.lastObsNS
	}
	if c.sources > 0 && nowNS > c.pauseStartNS {
		st.PausedNS += nowNS - c.pauseStartNS
	}
	return st
}
