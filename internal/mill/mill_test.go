package mill

import (
	"strings"
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/nf"
)

func plan(t *testing.T, config string) *Plan {
	t.Helper()
	p, err := NewPlan(config)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDevirtualizePass(t *testing.T) {
	p := plan(t, nf.Router(32))
	if err := p.Apply(Devirtualize{}); err != nil {
		t.Fatal(err)
	}
	if !p.Opt.Devirtualize || p.Opt.StaticGraph {
		t.Fatalf("opt = %+v", p.Opt)
	}
	if len(p.Notes) == 0 {
		t.Fatal("pass left no note")
	}
}

func TestStaticGraphImpliesDevirtualize(t *testing.T) {
	p := plan(t, nf.Router(32))
	if err := p.Apply(StaticGraph{}); err != nil {
		t.Fatal(err)
	}
	if !p.Opt.StaticGraph || !p.Opt.Devirtualize {
		t.Fatalf("opt = %+v", p.Opt)
	}
}

func TestPacketMillPipeline(t *testing.T) {
	p := plan(t, nf.Router(32))
	if err := p.Apply(PacketMill()...); err != nil {
		t.Fatal(err)
	}
	if !p.Opt.StaticGraph || !p.Opt.ConstEmbed || !p.Opt.Devirtualize {
		t.Fatalf("opt = %+v", p.Opt)
	}
	if len(p.Notes) < 4 {
		t.Fatalf("notes: %v", p.Notes)
	}
}

func TestDeadCodeRemovesUnreachable(t *testing.T) {
	cfg := nf.Forwarder(0, 32) + `
orphan :: Counter;
orphan2 :: Discard;
orphan -> orphan2;
`
	p := plan(t, cfg)
	nBefore := len(p.Graph.Elements)
	if err := p.Apply(DeadCode{}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Graph.Elements); got != nBefore-2 {
		t.Fatalf("elements %d -> %d, want -2", nBefore, got)
	}
	if p.Graph.Element("orphan") != nil {
		t.Fatal("orphan survived")
	}
	if p.Graph.Element("input") == nil || p.Graph.Element("output") == nil {
		t.Fatal("live elements removed")
	}
}

func TestDeadCodeKeepsEverythingReachable(t *testing.T) {
	p := plan(t, nf.Router(32))
	n := len(p.Graph.Elements)
	c := len(p.Graph.Conns)
	if err := p.Apply(DeadCode{}); err != nil {
		t.Fatal(err)
	}
	if len(p.Graph.Elements) != n || len(p.Graph.Conns) != c {
		t.Fatalf("deadcode mangled a fully-live graph: %d/%d -> %d/%d",
			n, c, len(p.Graph.Elements), len(p.Graph.Conns))
	}
}

func TestDeadCodeGraphStillBuilds(t *testing.T) {
	p := plan(t, nf.Router(32)+"\nzombie :: Counter;\nzombie -> Discard;\n")
	if err := p.Apply(DeadCode{}); err != nil {
		t.Fatal(err)
	}
	// The transformed graph must still build into a runnable router.
	if _, err := click.Build(p.Graph, click.BuildEnv{
		Ports: nil,
	}); err == nil {
		t.Fatal("expected port error (no ports provided) — but graph parsed")
	} else if !strings.Contains(err.Error(), "no DPDK port") {
		t.Fatalf("unexpected build failure: %v", err)
	}
}

func TestReorderMetaPass(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	var prof layout.OrderProfile
	for i := 0; i < 100; i++ {
		prof.Record(layout.FieldAnnoDstIP)
		prof.Record(layout.FieldDataLen)
	}
	err := p.Apply(ReorderMeta{Base: layout.ClickPacket(), Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	if p.MetaLayout == nil {
		t.Fatal("no layout produced")
	}
	if p.MetaLayout.Offset(layout.FieldAnnoDstIP) >= 64 {
		t.Fatalf("hot field not in first line: %s", p.MetaLayout)
	}
	if !p.Opt.ReorderMeta {
		t.Fatal("flag not set")
	}
}

func TestReorderMetaRequiresInputs(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	if err := p.Apply(ReorderMeta{}); err == nil {
		t.Fatal("pass accepted nil inputs")
	}
}

func TestPruneMetaRemovesDeadFields(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	var prof layout.OrderProfile
	// The forwarder only ever touches lengths and the routing anno.
	prof.Record(layout.FieldDataLen)
	prof.Record(layout.FieldAnnoDstIP)
	base := layout.XchgPacket()
	if err := p.Apply(PruneMeta{Base: base, Profile: &prof}); err != nil {
		t.Fatal(err)
	}
	nl := p.MetaLayout
	if nl == nil {
		t.Fatal("no pruned layout")
	}
	// Dead fields gone; profiled + essential fields kept.
	if nl.Has(layout.FieldAnnoPaint) || nl.Has(layout.FieldVlanTCI) {
		t.Fatalf("dead fields survived: %s", nl)
	}
	for _, f := range []layout.FieldID{layout.FieldBufAddr, layout.FieldDataLen,
		layout.FieldPktLen, layout.FieldAnnoDstIP} {
		if !nl.Has(f) {
			t.Fatalf("pruned an essential/live field %s: %s", f, nl)
		}
	}
	if nl.Size() > base.Size() {
		t.Fatalf("pruning grew the struct: %d > %d", nl.Size(), base.Size())
	}
}

func TestPruneMetaRefusesOverlay(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	var prof layout.OrderProfile
	prof.Record(layout.FieldDataLen)
	if err := p.Apply(PruneMeta{Base: layout.OverlayPacket(), Profile: &prof}); err == nil {
		t.Fatal("pruned an overlay layout")
	}
}

func TestPruneMetaRequiresInputs(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	if err := p.Apply(PruneMeta{}); err == nil {
		t.Fatal("pass accepted nil inputs")
	}
}

func TestBuildModuleVanilla(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	m := BuildModule(p, click.Copying)
	st := m.Stats()
	if st.Virtual == 0 || st.Direct != 0 || st.Inlined != 0 {
		t.Fatalf("vanilla stats: %+v", st)
	}
	if st.HeapFuncs == 0 || st.DataFuncs != 0 {
		t.Fatalf("vanilla placement: %+v", st)
	}
	if st.LoadParams == 0 || st.ConstParams != 0 {
		t.Fatalf("vanilla params: %+v", st)
	}
}

func TestBuildModuleMilled(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	if err := p.Apply(PacketMill()...); err != nil {
		t.Fatal(err)
	}
	m := BuildModule(p, click.Copying)
	st := m.Stats()
	if st.Virtual != 0 || st.Inlined == 0 {
		t.Fatalf("milled stats: %+v", st)
	}
	if st.HeapFuncs != 0 || st.DataFuncs == 0 {
		t.Fatalf("milled placement: %+v", st)
	}
	if st.LoadParams != 0 || st.ConstParams == 0 {
		t.Fatalf("milled params: %+v", st)
	}
}

func TestIRDumpShapes(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	vanilla := BuildModule(p, click.Copying).Dump()
	if !strings.Contains(vanilla, "%vtbl") {
		t.Fatal("vanilla dump has no virtual dispatch")
	}
	if !strings.Contains(vanilla, `section "heap"`) {
		t.Fatal("vanilla dump has no heap placement")
	}
	if err := p.Apply(PacketMill()...); err != nil {
		t.Fatal(err)
	}
	milled := BuildModule(p, click.Copying).Dump()
	if strings.Contains(milled, "%vtbl") {
		t.Fatal("milled dump still has virtual dispatch")
	}
	if !strings.Contains(milled, `section ".data"`) {
		t.Fatal("milled dump not in .data")
	}
	if !strings.Contains(milled, "inlined body") {
		t.Fatal("milled dump not inlined")
	}
	if !strings.Contains(milled, "constant-embedded") {
		t.Fatal("milled dump has no constants")
	}
}

func TestModuleStatsKinds(t *testing.T) {
	p := plan(t, nf.Forwarder(0, 32))
	if err := p.Apply(Devirtualize{}); err != nil {
		t.Fatal(err)
	}
	m := BuildModule(p, click.Copying)
	for _, f := range m.Funcs {
		for _, c := range f.Calls {
			if c != nil && c.Kind != machine.CallDirect {
				t.Fatalf("call kind %v after devirtualize", c.Kind)
			}
		}
	}
}
