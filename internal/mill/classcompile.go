package mill

import (
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/elements"
)

// CompileClassifiers replaces every Classifier/IPClassifier with its
// compiled counterpart (CompiledClassifier/CompiledIPClassifier): the
// rule list becomes decision bytecode with deduplicated loads, and — when
// a profile is available — branch order follows the observed per-port
// match frequencies. The reorder is semantics-preserving by construction
// (see the compiler in internal/elements), so this pass is safe even when
// the frequency estimate is off; a bad profile costs performance, never
// correctness.
type CompileClassifiers struct {
	Profile *Profile
}

// Name implements Pass.
func (CompileClassifiers) Name() string { return "classcompile" }

// Run implements Pass.
func (cc CompileClassifiers) Run(p *Plan) error {
	compiled := 0
	reordered := 0
	for _, d := range p.Graph.Elements {
		var newClass string
		switch d.Class {
		case "Classifier":
			newClass = "CompiledClassifier"
		case "IPClassifier":
			newClass = "CompiledIPClassifier"
		default:
			continue
		}
		hot := portFrequencies(p.Graph, d, cc.Profile)
		d.Class = newClass
		if hot != "" {
			d.Args = append(d.Args, hot)
			reordered++
		}
		compiled++
	}
	if compiled == 0 {
		p.note("classcompile: no classifiers")
		return nil
	}
	p.note("classcompile: compiled %d classifier(s), %d with profile-driven branch order",
		compiled, reordered)
	return nil
}

// portFrequencies estimates each rule's match frequency as the profiled
// packet count of the element wired to its output port, rendered as a
// "HOT f0 f1 ..." argument. Empty when no profile or no observations.
func portFrequencies(g *click.Graph, d *click.ElementDecl, prof *Profile) string {
	if prof == nil {
		return ""
	}
	freqs := make([]float64, len(d.Args))
	any := false
	for _, c := range g.Conns {
		if c.From != d.Name || c.FromPort >= len(freqs) {
			continue
		}
		if w := float64(prof.Packets[c.To]); w > 0 {
			freqs[c.FromPort] += w
			any = true
		}
	}
	if !any {
		return ""
	}
	parts := make([]string, 0, len(freqs))
	for _, f := range freqs {
		parts = append(parts, fmt.Sprintf("%.6g", f))
	}
	return elements.HotArg + " " + strings.Join(parts, " ")
}
