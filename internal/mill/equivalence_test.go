// Byte-equivalence harness for the full profile-guided mill: every
// shipped configuration, vanilla vs profiled+milled, under the Copying
// and X-Change models, must emit byte-identical output frame sequences.
// This is the correctness bar the fusion and classifier-compilation
// passes are held to.
package mill_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
	"packetmill/internal/verify"
)

// equivOpts leaves ample headroom so neither build drops and the diff is
// pure functional equivalence (congestion would legitimately diverge
// between builds of different speed).
func equivOpts(model click.MetadataModel) testbed.Options {
	return testbed.Options{
		FreqGHz: 3.0, Model: model, RateGbps: 5, Packets: 2000, Seed: 7,
	}
}

// equivalenceConfigs gathers every config the repo ships: the .click
// files under configs/ and the nf builtins the examples use, plus a
// synthetic IP-protocol demux that exercises CompiledIPClassifier.
func equivalenceConfigs(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{
		"builtin-forwarder":   nf.Forwarder(0, 32),
		"builtin-mirror":      nf.Mirror(0, 32),
		"builtin-router":      nf.Router(32),
		"builtin-ids":         nf.IDSRouter(32),
		"builtin-nat":         nf.NATRouter(32),
		"builtin-workpackage": nf.WorkPackageForwarder(32, 4, 1, 4),
		"ipclassifier": `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
ipc :: IPClassifier(tcp, udp, icmp, -);
input -> ipc;
ipc[0] -> output;
ipc[1] -> output;
ipc[2] -> output;
ipc[3] -> output;
`,
	}
	paths, err := filepath.Glob("../../configs/*.click")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no configs found under configs/")
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(filepath.Base(p), ".click")] = string(b)
	}
	return out
}

// millProfiled grinds config through the static passes, captures a
// profile from a short telemetered run, and applies the profile-guided
// passes. Returns the pipeline for graph/opt inspection.
func millProfiled(t *testing.T, config string, model click.MetadataModel) *core.Pipeline {
	t.Helper()
	p, err := core.Parse(config)
	if err != nil {
		t.Fatal(err)
	}
	p.Model = model
	if err := p.Mill(); err != nil {
		t.Fatal(err)
	}
	po := equivOpts(model)
	po.Packets = 1000
	prof, err := p.CaptureProfile(po)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MillProfileGuided(prof); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileGuidedMillIsByteEquivalent(t *testing.T) {
	for name, config := range equivalenceConfigs(t) {
		for _, model := range []click.MetadataModel{click.Copying, click.XChange} {
			t.Run(name+"/"+model.String(), func(t *testing.T) {
				vanilla, err := core.Parse(config)
				if err != nil {
					t.Fatal(err)
				}
				milled := millProfiled(t, config, model)
				a := equivOpts(model)
				b := equivOpts(model)
				b.Opt = milled.Plan.Opt
				if milled.Plan.MetaLayout != nil {
					b.MetaLayout = milled.Plan.MetaLayout
				}
				rep, err := verify.DifferentialGraphs(vanilla.Plan.Graph, milled.Plan.Graph, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Equivalent() {
					t.Errorf("vanilla vs profile-guided mill: %s", rep)
					if len(rep.Mismatches) > 0 {
						mm := rep.Mismatches[0]
						t.Errorf("first mismatch at %d:\nA: %x\nB: %x", mm.Index, mm.A, mm.B)
					}
					for _, n := range milled.Notes() {
						t.Logf("pass: %s", n)
					}
				}
			})
		}
	}
}

// TestProfileGuidedPassesActuallyFire guards the harness against
// vacuous equivalence: on the canonical router the fusion pass must
// collapse the IP chain and the classifier must compile.
func TestProfileGuidedPassesActuallyFire(t *testing.T) {
	p := millProfiled(t, nf.Router(32), click.XChange)
	var fused, compiled bool
	for _, e := range p.Plan.Graph.Elements {
		switch e.Class {
		case "FusedIPPath", "FusedL4Check":
			fused = true
		case "CompiledClassifier", "CompiledIPClassifier":
			compiled = true
		}
	}
	if !fused {
		t.Errorf("router graph has no fused element; notes: %v", p.Notes())
	}
	if !compiled {
		t.Errorf("router graph has no compiled classifier; notes: %v", p.Notes())
	}
	// The pass ledger must record the shrink fusion caused.
	var sawFuse bool
	for _, st := range p.Plan.PassStats {
		if st.Pass == "fuse" {
			sawFuse = true
			if st.ElementsAfter >= st.ElementsBefore {
				t.Errorf("fuse pass did not shrink the graph: %+v", st)
			}
		}
	}
	if !sawFuse {
		t.Errorf("no fuse entry in PassStats: %+v", p.Plan.PassStats)
	}
}

// TestMilledOutputByteIdenticalAcrossRuns is the determinism gate: the
// whole feedback loop — profile capture, profile-guided passes, metadata
// reorder and prune — must produce byte-identical IR and layouts on
// every repetition (no map-iteration order may leak into the build).
func TestMilledOutputByteIdenticalAcrossRuns(t *testing.T) {
	render := func() (string, string) {
		p, err := core.Parse(nf.Router(32))
		if err != nil {
			t.Fatal(err)
		}
		p.Model = click.XChange
		if err := p.Mill(); err != nil {
			t.Fatal(err)
		}
		po := equivOpts(click.XChange)
		po.Packets = 1000
		prof, err := p.CaptureProfile(po)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.MillProfileGuided(prof); err != nil {
			t.Fatal(err)
		}
		if err := p.ReorderMetadata(po, layout.ByAccessCount); err != nil {
			t.Fatal(err)
		}
		return p.IR().Dump(), p.Plan.MetaLayout.String()
	}
	ir0, lay0 := render()
	for run := 1; run < 3; run++ {
		ir, lay := render()
		if ir != ir0 {
			t.Fatalf("run %d produced different IR:\n--- first ---\n%s\n--- run %d ---\n%s",
				run, ir0, run, ir)
		}
		if lay != lay0 {
			t.Fatalf("run %d produced different layout:\n%s\nvs\n%s", run, lay0, lay)
		}
	}
}

// TestReorderPreservesPinnedPrefixOrder locks the fixed-prefix rendering:
// pinned fields must keep their declaration order in Fields()/String()
// (the reorder pass once reversed them).
func TestReorderPreservesPinnedPrefixOrder(t *testing.T) {
	base := layout.OverlayPacket()
	var prof layout.OrderProfile
	prof.Record(layout.FieldAnnoDstIP)
	prof.Record(layout.FieldNetworkHeader)
	nl := layout.Reorder(base, &prof, layout.ByAccessCount)
	bf, nf2 := base.Fields(), nl.Fields()
	var basePinned, newPinned []layout.FieldID
	for _, f := range bf {
		if base.Offset(f) < base.FixedPrefix() {
			basePinned = append(basePinned, f)
		}
	}
	for _, f := range nf2 {
		if nl.Offset(f) < nl.FixedPrefix() {
			newPinned = append(newPinned, f)
		}
	}
	if len(basePinned) != len(newPinned) {
		t.Fatalf("pinned count changed: %d vs %d", len(basePinned), len(newPinned))
	}
	for i := range basePinned {
		if basePinned[i] != newPinned[i] {
			t.Fatalf("pinned order changed at %d: %v vs %v", i, basePinned, newPinned)
		}
		if base.Offset(basePinned[i]) != nl.Offset(newPinned[i]) {
			t.Fatalf("pinned offset moved for %v", basePinned[i])
		}
	}
}
