// Package mill is PacketMill's optimizer: the pipeline of Figure 3 that
// turns an NF configuration plus the vanilla framework into a specialized
// build plan. It hosts the source-code passes (§3.2.1: devirtualization,
// constant embedding, static graph, dead-code elimination) and the
// IR-level metadata-reordering pass (§3.2.2), and renders the result as a
// dispatch-level IR module for inspection.
package mill

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/ir"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
)

// Plan is the mill's working object: the parsed graph plus everything the
// passes decide. testbed/core lower a Plan into a runnable build.
type Plan struct {
	Graph *click.Graph
	Opt   click.OptLevel
	// MetaLayout, when non-nil, overrides the model's default packet
	// descriptor layout (set by the reorder pass).
	MetaLayout *layout.Layout
	// Notes logs what each pass did.
	Notes []string
	// PassStats records each applied pass's graph-shape delta, in order,
	// so ablation reports don't re-derive it.
	PassStats []PassStat
}

// PassStat is one pass's before/after element and connection counts.
type PassStat struct {
	Pass           string
	ElementsBefore int
	ElementsAfter  int
	ConnsBefore    int
	ConnsAfter     int
}

// NewPlan parses a configuration into a vanilla plan.
func NewPlan(config string) (*Plan, error) {
	g, err := click.Parse(config)
	if err != nil {
		return nil, err
	}
	return &Plan{Graph: g}, nil
}

func (p *Plan) note(format string, args ...any) {
	p.Notes = append(p.Notes, fmt.Sprintf(format, args...))
}

// Pass is one mill transformation.
type Pass interface {
	Name() string
	Run(p *Plan) error
}

// Apply runs passes in order, recording each pass's graph-shape delta.
func (p *Plan) Apply(passes ...Pass) error {
	for _, pass := range passes {
		st := PassStat{
			Pass:           pass.Name(),
			ElementsBefore: len(p.Graph.Elements),
			ConnsBefore:    len(p.Graph.Conns),
		}
		if err := pass.Run(p); err != nil {
			return fmt.Errorf("mill: pass %s: %w", pass.Name(), err)
		}
		st.ElementsAfter = len(p.Graph.Elements)
		st.ConnsAfter = len(p.Graph.Conns)
		p.PassStats = append(p.PassStats, st)
	}
	return nil
}

// --- passes ---

// Devirtualize is click-devirtualize: with the graph known, every element
// hand-off becomes a direct call.
type Devirtualize struct{}

// Name implements Pass.
func (Devirtualize) Name() string { return "devirtualize" }

// Run implements Pass.
func (Devirtualize) Run(p *Plan) error {
	p.Opt.Devirtualize = true
	p.note("devirtualize: %d connections rewritten to direct calls", len(p.Graph.Conns))
	return nil
}

// ConstEmbed embeds constant element parameters into the generated source
// so the compiler can propagate and fold them.
type ConstEmbed struct{}

// Name implements Pass.
func (ConstEmbed) Name() string { return "constembed" }

// Run implements Pass.
func (ConstEmbed) Run(p *Plan) error {
	p.Opt.ConstEmbed = true
	n := 0
	for _, e := range p.Graph.Elements {
		n += len(e.Args)
	}
	p.note("constembed: %d parameters embedded as immediates", n)
	return nil
}

// StaticGraph declares the elements statically (contiguous .data
// placement) and embeds the connection graph, enabling full inlining.
// Per the paper it subsumes devirtualization.
type StaticGraph struct{}

// Name implements Pass.
func (StaticGraph) Name() string { return "staticgraph" }

// Run implements Pass.
func (StaticGraph) Run(p *Plan) error {
	p.Opt.StaticGraph = true
	p.Opt.Devirtualize = true
	p.note("staticgraph: %d elements moved to .data, %d connections embedded",
		len(p.Graph.Elements), len(p.Graph.Conns))
	return nil
}

// DeadCode removes elements unreachable from any source element — the
// dead-code elimination the paper borrows from classic compilation (and
// NFReducer's "excluding unrelated logic").
type DeadCode struct{}

// Name implements Pass.
func (DeadCode) Name() string { return "deadcode" }

// Run implements Pass.
func (DeadCode) Run(p *Plan) error {
	g := p.Graph
	// Roots: schedulable source elements (FromDPDKDevice and friends) —
	// packets can only originate there.
	reach := map[string]bool{}
	var walk func(name string)
	walk = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		for _, c := range g.Conns {
			if c.From == name {
				walk(c.To)
			}
		}
	}
	for _, e := range g.Elements {
		if click.IsSourceClass(e.Class) {
			walk(e.Name)
		}
	}
	var kept []*click.ElementDecl
	removed := 0
	for _, e := range g.Elements {
		if reach[e.Name] {
			kept = append(kept, e)
		} else {
			removed++
		}
	}
	if removed > 0 {
		var keptConns []click.Connection
		for _, c := range g.Conns {
			if reach[c.From] && reach[c.To] {
				keptConns = append(keptConns, c)
			}
		}
		ng, err := rebuildGraph(kept, keptConns)
		if err != nil {
			return err
		}
		p.Graph = ng
	}
	p.note("deadcode: removed %d unreachable elements", removed)
	return nil
}

// rebuildGraph reconstructs a Graph from kept declarations/connections by
// re-parsing the normalized source — it keeps the Graph's internal name
// index consistent without exporting it. Anonymous names ("Class@3")
// remain valid identifiers in the Click lexer.
func rebuildGraph(elems []*click.ElementDecl, conns []click.Connection) (*click.Graph, error) {
	var b []byte
	for _, e := range elems {
		args := ""
		for i, a := range e.Args {
			if i > 0 {
				args += ", "
			}
			args += a
		}
		b = append(b, fmt.Sprintf("%s :: %s(%s);\n", e.Name, e.Class, args)...)
	}
	for _, c := range conns {
		b = append(b, fmt.Sprintf("%s[%d] -> [%d]%s;\n", c.From, c.FromPort, c.ToPort, c.To)...)
	}
	return click.Parse(string(b))
}

// ReorderMeta is the IR pass of §3.2.2: given an access profile measured
// on a previous run, re-pack the packet descriptor's fields so the hot
// ones share the first cache line(s). Like the paper's pass it only
// applies to reorderable layouts (the fixed prefix of an overlay is
// pinned).
type ReorderMeta struct {
	Base      *layout.Layout
	Profile   *layout.OrderProfile
	Criterion layout.SortCriterion
}

// Name implements Pass.
func (ReorderMeta) Name() string { return "reorder-meta" }

// Run implements Pass.
func (r ReorderMeta) Run(p *Plan) error {
	if r.Base == nil || r.Profile == nil {
		return fmt.Errorf("reorder-meta: need a base layout and a profile")
	}
	nl := layout.Reorder(r.Base, r.Profile, r.Criterion)
	p.MetaLayout = nl
	p.Opt.ReorderMeta = true
	var before, after int
	before = layout.LinesTouched(r.Base, r.Profile)
	after = layout.LinesTouched(nl, r.Profile)
	p.note("reorder-meta: hot fields span %d line(s), was %d (%d profiled accesses)",
		after, before, r.Profile.Total())
	return nil
}

// PruneMeta implements the extension §3.2.2 leaves as future work: "one
// could also remove unused variables/fields". Fields the profile never
// saw are dropped from the descriptor entirely, shrinking its cache
// footprint; driver-essential fields (buffer address, lengths) are kept
// regardless, since the PMD hardware path writes them.
type PruneMeta struct {
	Base    *layout.Layout
	Profile *layout.OrderProfile
}

// Name implements Pass.
func (PruneMeta) Name() string { return "prune-meta" }

// essentialFields must survive pruning: the RX/TX driver path touches them
// unconditionally.
var essentialFields = []layout.FieldID{
	layout.FieldBufAddr, layout.FieldDataLen, layout.FieldPktLen,
}

// Run implements Pass.
func (r PruneMeta) Run(p *Plan) error {
	if r.Base == nil || r.Profile == nil {
		return fmt.Errorf("prune-meta: need a base layout and a profile")
	}
	if r.Base.FixedPrefix() > 0 {
		return fmt.Errorf("prune-meta: cannot prune an overlay layout (fixed prefix)")
	}
	essential := map[layout.FieldID]bool{}
	for _, f := range essentialFields {
		essential[f] = true
	}
	var kept []layout.FieldID
	removed := 0
	for _, f := range r.Base.Fields() {
		if r.Profile.Counts[f] > 0 || essential[f] {
			kept = append(kept, f)
		} else {
			removed++
		}
	}
	nl := layout.New(r.Base.Name()+"+pruned", kept)
	p.MetaLayout = nl
	p.note("prune-meta: removed %d dead fields, %dB -> %dB descriptor",
		removed, r.Base.Size(), nl.Size())
	return nil
}

// PacketMill returns the full pass pipeline of the paper's headline
// configuration (source-code passes; run ReorderMeta separately once a
// profile exists).
func PacketMill() []Pass {
	return []Pass{DeadCode{}, Devirtualize{}, ConstEmbed{}, StaticGraph{}}
}

// --- IR rendering ---

// BuildModule renders a plan (with its model's descriptor layout) as a
// dispatch-level IR module.
func BuildModule(p *Plan, model click.MetadataModel) *ir.Module {
	m := &ir.Module{Name: "nf", Notes: p.Notes}
	if p.MetaLayout != nil {
		m.Meta = p.MetaLayout
	} else {
		m.Meta = click.DefaultMetaLayout(model)
	}
	seg := ir.SegHeap
	if p.Opt.StaticGraph {
		seg = ir.SegData
	}
	pk := ir.ParamLoad
	if p.Opt.ConstEmbed {
		pk = ir.ParamConst
	}
	kind := machine.CallVirtual
	switch {
	case p.Opt.StaticGraph:
		kind = machine.CallInlined
	case p.Opt.Devirtualize:
		kind = machine.CallDirect
	}
	funcs := map[string]*ir.Func{}
	for _, e := range p.Graph.Elements {
		f := &ir.Func{Name: e.Name, Class: e.Class, Seg: seg}
		for i, a := range e.Args {
			f.Params = append(f.Params, ir.Param{
				Name: fmt.Sprintf("arg%d", i), Value: a, Kind: pk,
			})
		}
		funcs[e.Name] = f
		m.Funcs = append(m.Funcs, f)
	}
	for _, c := range p.Graph.Conns {
		f := funcs[c.From]
		for len(f.Calls) <= c.FromPort {
			f.Calls = append(f.Calls, nil)
		}
		f.Calls[c.FromPort] = &ir.Call{Callee: c.To, ToPort: c.ToPort, Kind: kind}
	}
	return m
}
