package mill_test

import (
	"fmt"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/mill"
)

// Example shows the source-code pass pipeline transforming a forwarder's
// dispatch structure.
func Example() {
	plan, err := mill.NewPlan(`
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
`)
	if err != nil {
		panic(err)
	}
	before := mill.BuildModule(plan, click.Copying).Stats()
	fmt.Printf("vanilla: %d virtual calls, %d heap objects, %d loaded params\n",
		before.Virtual, before.HeapFuncs, before.LoadParams)

	if err := plan.Apply(mill.PacketMill()...); err != nil {
		panic(err)
	}
	after := mill.BuildModule(plan, click.Copying).Stats()
	fmt.Printf("milled:  %d inlined calls, %d .data objects, %d constants\n",
		after.Inlined, after.DataFuncs, after.ConstParams)
	// Output:
	// vanilla: 2 virtual calls, 3 heap objects, 4 loaded params
	// milled:  2 inlined calls, 3 .data objects, 4 constants
}
