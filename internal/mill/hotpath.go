package mill

import (
	"sort"

	"packetmill/internal/click"
)

// HotLayout is the hot-path-ordered layout pass: element declarations are
// re-ordered by a hottest-first walk from the packet sources, so the
// profile-hottest chain becomes the fallthrough path — contiguous element
// state in the static arena and first in the emitted ir.Module, the way a
// PGO build lays out its hot text. Schedulable (Task) elements keep their
// original relative order so the driver's round-robin is untouched, and
// connections are untouched entirely: this pass changes placement, never
// routing.
type HotLayout struct {
	Profile *Profile
}

// Name implements Pass.
func (HotLayout) Name() string { return "hotlayout" }

// Run implements Pass.
func (h HotLayout) Run(p *Plan) error {
	if h.Profile == nil || h.Profile.TotalCycles <= 0 {
		p.note("hotlayout: no profile; element layout unchanged")
		return nil
	}
	g := p.Graph
	outBy := map[string][]click.Connection{}
	for _, c := range g.Conns {
		outBy[c.From] = append(outBy[c.From], c)
	}
	byName := map[string]*click.ElementDecl{}
	for _, e := range g.Elements {
		byName[e.Name] = e
	}
	visited := map[string]bool{}
	var order []*click.ElementDecl
	var walk func(d *click.ElementDecl)
	walk = func(d *click.ElementDecl) {
		if visited[d.Name] {
			return
		}
		visited[d.Name] = true
		order = append(order, d)
		outs := append([]click.Connection(nil), outBy[d.Name]...)
		sort.SliceStable(outs, func(i, j int) bool {
			return h.Profile.Weight(outs[i].To) > h.Profile.Weight(outs[j].To)
		})
		for _, c := range outs {
			if nd := byName[c.To]; nd != nil {
				walk(nd)
			}
		}
	}
	for _, e := range g.Elements {
		if click.IsSourceClass(e.Class) {
			walk(e)
		}
	}
	for _, e := range g.Elements {
		if !visited[e.Name] {
			visited[e.Name] = true
			order = append(order, e)
		}
	}
	// Pin schedulable elements at their original relative order.
	var tasks []*click.ElementDecl
	for _, e := range g.Elements {
		if click.IsTaskClass(e.Class) {
			tasks = append(tasks, e)
		}
	}
	ti := 0
	final := make([]*click.ElementDecl, 0, len(order))
	for _, e := range order {
		if click.IsTaskClass(e.Class) {
			final = append(final, tasks[ti])
			ti++
		} else {
			final = append(final, e)
		}
	}
	same := true
	for i := range final {
		if final[i] != g.Elements[i] {
			same = false
			break
		}
	}
	if same {
		p.note("hotlayout: layout already hot-first")
		return nil
	}
	ng, err := rebuildGraph(final, g.Conns)
	if err != nil {
		return err
	}
	p.Graph = ng
	hottest := ""
	var best float64
	for _, e := range final {
		if w := h.Profile.Weight(e.Name); w > best {
			best, hottest = w, e.Name
		}
	}
	p.note("hotlayout: %d elements re-laid hot-first (hottest: %s)", len(final), hottest)
	return nil
}
