package mill

import (
	"fmt"

	"packetmill/internal/telemetry"
)

// Profile is the feedback half of the mill: a digest of a telemetry
// report keyed by element instance name, consumed by the profile-guided
// passes (FuseElements, CompileClassifiers, HotLayout). Cycles drive
// layout and share attribution; Packets drive branch ordering.
type Profile struct {
	// Cycles maps element instance name to busy cycles attributed to it
	// (summed across stages and cores).
	Cycles map[string]float64
	// Packets maps element instance name to packets it reported moving.
	Packets map[string]uint64
	// TotalCycles is the sum over all elements.
	TotalCycles float64
}

// FromReport digests a telemetry report into a Profile.
func FromReport(r *telemetry.Report) *Profile {
	p := &Profile{
		Cycles:  map[string]float64{},
		Packets: map[string]uint64{},
	}
	for _, e := range r.Elements {
		p.Cycles[e.Name] += e.Cycles
		p.Packets[e.Name] += e.Packets
		p.TotalCycles += e.Cycles
	}
	return p
}

// LoadProfile parses a JSON telemetry report (as written by -report json
// or snapshotted from /report) into a Profile.
func LoadProfile(data []byte) (*Profile, error) {
	r, err := telemetry.LoadReport(data)
	if err != nil {
		return nil, err
	}
	if len(r.Elements) == 0 {
		return nil, fmt.Errorf("mill: report has no per-element attribution (was the run telemetered?)")
	}
	return FromReport(r), nil
}

// Weight returns the profile's relative cost for one element: cycles when
// attributed, otherwise packets (so a profile from a packet-count-only
// source still orders elements), otherwise zero.
func (p *Profile) Weight(name string) float64 {
	if p == nil {
		return 0
	}
	if c := p.Cycles[name]; c > 0 {
		return c
	}
	return float64(p.Packets[name])
}

// Saw reports whether the profile observed the element moving traffic.
func (p *Profile) Saw(name string) bool {
	return p != nil && (p.Packets[name] > 0 || p.Cycles[name] > 0)
}

// ProfileGuided returns the profile-guided pass pipeline (run after the
// static PacketMill passes). The profile may be nil: fusion and
// classifier compilation then fall back to structural heuristics (fuse
// every matching chain, keep declared rule order) and HotLayout becomes a
// no-op. CompileClassifiers runs before FuseElements so per-port match
// frequencies resolve against the original downstream instance names the
// profile knows.
func ProfileGuided(prof *Profile) []Pass {
	return []Pass{
		HotLayout{Profile: prof},
		CompileClassifiers{Profile: prof},
		FuseElements{Profile: prof},
	}
}

// PacketMillProfiled is the full profile-guided pipeline: the paper's
// static passes followed by the feedback passes.
func PacketMillProfiled(prof *Profile) []Pass {
	return append(PacketMill(), ProfileGuided(prof)...)
}
