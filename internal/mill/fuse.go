package mill

import (
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/elements"
)

// FuseElements is the cross-element fusion pass: linear chains matching a
// registered fusable pattern (elements.FusableChains) collapse into one
// fused element that walks the packet header once. Fusion is proven safe
// structurally — every interior hand-off must be the sole wiring on both
// sides and every side port (bad, expired) unwired, so the fused
// element's kill path is exactly the chain's CheckedOutput-kill path.
//
// With a profile, only chains the profile saw moving traffic are fused,
// and the fused declaration carries a SHARES argument so telemetry keeps
// attributing cycles to the original instance names pro-rata.
type FuseElements struct {
	Profile *Profile
}

// Name implements Pass.
func (FuseElements) Name() string { return "fuse" }

// Run implements Pass.
func (f FuseElements) Run(p *Plan) error {
	total := 0
	var collapsed []string
	for {
		m := findFusableChain(p.Graph, f.Profile)
		if m == nil {
			break
		}
		ng, desc, err := fuseChain(p.Graph, m, f.Profile)
		if err != nil {
			return err
		}
		p.Graph = ng
		collapsed = append(collapsed, desc)
		total++
	}
	if total == 0 {
		p.note("fuse: no fusable chains")
		return nil
	}
	p.note("fuse: collapsed %d chain(s): %s", total, strings.Join(collapsed, "; "))
	return nil
}

type chainMatch struct {
	pat   elements.FusedChain
	decls []*click.ElementDecl
}

// findFusableChain returns the first fusable chain in the graph, trying
// the registered patterns longest-first.
func findFusableChain(g *click.Graph, prof *Profile) *chainMatch {
	outBy := map[string][]click.Connection{}
	inBy := map[string]int{}
	for _, c := range g.Conns {
		outBy[c.From] = append(outBy[c.From], c)
		inBy[c.To]++
	}
	byName := map[string]*click.ElementDecl{}
	for _, e := range g.Elements {
		byName[e.Name] = e
	}
	for _, pat := range elements.FusableChains() {
		for _, head := range g.Elements {
			if head.Class != pat.Classes[0] {
				continue
			}
			decls := matchChainAt(head, pat.Classes, outBy, inBy, byName)
			if decls == nil {
				continue
			}
			if prof != nil && !chainIsHot(decls, prof) {
				continue
			}
			// The builder may still reject a structural match (e.g.
			// constituents disagree on header offsets).
			if pat.Build(fusedName(g, decls[0].Name), decls) == nil {
				continue
			}
			return &chainMatch{pat: pat, decls: decls}
		}
	}
	return nil
}

func chainIsHot(decls []*click.ElementDecl, prof *Profile) bool {
	for _, d := range decls {
		if prof.Saw(d.Name) {
			return true
		}
	}
	return false
}

// matchChainAt checks that head begins a linear run of classes: each
// interior hand-off is the element's only outgoing wire (port 0 to port
// 0), each successor has exactly one incoming wire, and the last
// element's side ports are unwired (LookupIPRoute excepted — its full
// port space becomes the fused element's).
func matchChainAt(head *click.ElementDecl, classes []string,
	outBy map[string][]click.Connection, inBy map[string]int,
	byName map[string]*click.ElementDecl) []*click.ElementDecl {
	decls := []*click.ElementDecl{head}
	cur := head
	for k := 1; k < len(classes); k++ {
		outs := outBy[cur.Name]
		if len(outs) != 1 || outs[0].FromPort != 0 || outs[0].ToPort != 0 {
			return nil
		}
		next := byName[outs[0].To]
		if next == nil || next.Class != classes[k] || inBy[next.Name] != 1 {
			return nil
		}
		decls = append(decls, next)
		cur = next
	}
	last := decls[len(decls)-1]
	if last.Class != "LookupIPRoute" {
		for _, c := range outBy[last.Name] {
			if c.FromPort != 0 {
				return nil
			}
		}
	}
	return decls
}

// fusedName picks a fresh element name derived from the chain head's.
func fusedName(g *click.Graph, base string) string {
	taken := map[string]bool{}
	for _, e := range g.Elements {
		taken[e.Name] = true
	}
	name := "fused_" + base
	for i := 2; taken[name]; i++ {
		name = fmt.Sprintf("fused_%s_%d", base, i)
	}
	return name
}

// fuseChain rewrites the graph with the matched chain replaced by its
// fused declaration: the fused element takes the head's position (so a
// hot-first layout survives fusion), inherits the head's incoming wires
// and the last element's outgoing wires, and the interior hops vanish.
func fuseChain(g *click.Graph, m *chainMatch, prof *Profile) (*click.Graph, string, error) {
	head := m.decls[0]
	last := m.decls[len(m.decls)-1]
	name := fusedName(g, head.Name)
	fused := m.pat.Build(name, m.decls)
	if fused == nil {
		return nil, "", fmt.Errorf("fuse: builder rejected chain at %s", head.Name)
	}
	if prof != nil {
		var total float64
		for _, d := range m.decls {
			total += prof.Weight(d.Name)
		}
		if total > 0 {
			shares := make([]string, 0, len(m.decls))
			for _, d := range m.decls {
				shares = append(shares, fmt.Sprintf("%s:%.6g", d.Name, prof.Weight(d.Name)))
			}
			fused.Args = append(fused.Args, "SHARES "+strings.Join(shares, " "))
		}
	}
	inChain := map[string]bool{}
	chainNames := make([]string, 0, len(m.decls))
	for _, d := range m.decls {
		inChain[d.Name] = true
		chainNames = append(chainNames, d.Name)
	}
	var elems []*click.ElementDecl
	for _, e := range g.Elements {
		switch {
		case e == head:
			elems = append(elems, fused)
		case inChain[e.Name]:
			// dropped: absorbed into the fused element
		default:
			elems = append(elems, e)
		}
	}
	var conns []click.Connection
	for _, c := range g.Conns {
		if inChain[c.From] && inChain[c.To] {
			continue // interior hop
		}
		if c.To == head.Name {
			c.To = name
		}
		if c.From == last.Name {
			c.From = name
		}
		conns = append(conns, c)
	}
	ng, err := rebuildGraph(elems, conns)
	if err != nil {
		return nil, "", err
	}
	return ng, strings.Join(chainNames, "→") + " ⇒ " + name, nil
}
