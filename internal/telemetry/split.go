package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"

	"packetmill/internal/machine"
)

// SharePart names one constituent of a fused span and its share of the
// span's cost. Shares are relative weights (typically the constituent
// elements' cycle shares from a profile); they need not sum to 1.
type SharePart struct {
	Name  string
	Share float64
}

// EnterShares opens a span like Enter, except that on Exit the span's
// exclusive delta is distributed across parts pro-rata by Share instead
// of being charged to a single bucket. Each part's bucket receives one
// visit, the span's full packet count (every constituent logically saw
// every packet), and its share of the cycles, instructions, LLC traffic,
// and duration. The last part absorbs the rounding remainder, so the
// distributed counters sum exactly to the span total and the coverage
// invariant is preserved.
//
// This is how a fused element (one Push, one machine-level span) keeps
// per-constituent attribution: the mill computes the shares from the
// profile it fused against, and reports keep showing CheckIPHeader,
// LookupIPRoute, ... as if they were never collapsed.
//
// name is the span's trace identity (the fused instance); with no parts
// this degenerates to a plain Enter(stage, name).
func (t *Tracker) EnterShares(stage Stage, name string, parts []SharePart) {
	if t == nil {
		return
	}
	if len(parts) == 0 {
		t.Enter(stage, name)
		return
	}
	now := t.core.Snapshot()
	if n := len(t.stack); n > 0 {
		top := &t.stack[n-1]
		top.b.add(now.Delta(top.start))
		top.accNS += now.WallNS - top.start.WallNS
	}
	sc := t.scratchBucket(stage, name)
	t.stack = append(t.stack, frame{b: sc, start: now, parts: parts})
	t.trace.SpanEnter()
}

// scratchBucket returns a reusable accumulator for one split-span nesting
// level. The pool grows to the maximum nesting depth once and is reused
// thereafter, so steady-state split spans allocate nothing.
func (t *Tracker) scratchBucket(stage Stage, name string) *Bucket {
	if t.splitDepth >= len(t.scratch) {
		t.scratch = append(t.scratch, &Bucket{})
	}
	sc := t.scratch[t.splitDepth]
	t.splitDepth++
	sc.Stage = stage
	sc.Name = name
	sc.Visits = 0
	sc.Packets = 0
	sc.Delta = machine.Counters{}
	return sc
}

// settleSplit distributes a closed split span's accumulated delta across
// its parts. durNS is the visit's exclusive duration.
func (t *Tracker) settleSplit(f *frame, durNS float64) {
	sc := f.b
	t.splitDepth--
	total := 0.0
	for _, p := range f.parts {
		if p.Share > 0 {
			total += p.Share
		}
	}
	d := sc.Delta
	n := len(f.parts)
	var acc machine.Counters
	accDur := 0.0
	for i, p := range f.parts {
		fr := 1 / float64(n)
		if total > 0 {
			fr = 0
			if p.Share > 0 {
				fr = p.Share / total
			}
		}
		b := t.bucket(sc.Stage, p.Name)
		b.Visits++
		b.Packets += sc.Packets
		var part machine.Counters
		var dpart float64
		if i == n-1 {
			part = d.Delta(acc)
			dpart = durNS - accDur
		} else {
			part = machine.Counters{
				Instructions:   uint64(float64(d.Instructions) * fr),
				BusyCycles:     d.BusyCycles * fr,
				WallNS:         d.WallNS * fr,
				IdleNS:         d.IdleNS * fr,
				TLBMisses:      uint64(float64(d.TLBMisses) * fr),
				LLCLoads:       uint64(float64(d.LLCLoads) * fr),
				LLCLoadMisses:  uint64(float64(d.LLCLoadMisses) * fr),
				LLCStores:      uint64(float64(d.LLCStores) * fr),
				LLCStoreMisses: uint64(float64(d.LLCStoreMisses) * fr),
			}
			acc.Instructions += part.Instructions
			acc.BusyCycles += part.BusyCycles
			acc.WallNS += part.WallNS
			acc.IdleNS += part.IdleNS
			acc.TLBMisses += part.TLBMisses
			acc.LLCLoads += part.LLCLoads
			acc.LLCLoadMisses += part.LLCLoadMisses
			acc.LLCStores += part.LLCStores
			acc.LLCStoreMisses += part.LLCStoreMisses
			dpart = durNS * fr
			accDur += dpart
		}
		b.add(part)
		if dpart >= 0 {
			b.Dur.Record(dpart)
		}
	}
}

// LoadReport parses a JSON telemetry report (the output of -report json
// or a /report snapshot) and validates its schema tag.
func LoadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: parse report: %w", err)
	}
	if !strings.HasPrefix(r.Schema, "packetmill/telemetry/") {
		return nil, fmt.Errorf("telemetry: unrecognized report schema %q", r.Schema)
	}
	return &r, nil
}
