// Package telemetry is the run-wide observability layer: it attributes
// the simulated perf counters (cycles, instructions, LLC traffic) to the
// datapath stage and Click element that spent them — the way the paper
// reads `perf annotate` in §4 — and aggregates per-queue, per-core, and
// interval-snapshot counters into one machine-readable Report.
//
// The core abstraction is the Tracker: a per-core span stack. Entering a
// span snapshots the core's counters; the delta accumulated while a span
// is on top of the stack is charged to that span's bucket *exclusively*
// (a nested span pauses its parent), so the buckets partition the core's
// busy time — their sum equals the core total by construction, which is
// what makes the "attribution sums to the core totals within 1%"
// invariant checkable instead of aspirational.
//
// A nil *Tracker is valid and free: every method nil-checks, so a
// non-telemetered run pays one predictable branch per hook site.
package telemetry

import (
	"encoding/json"
	"sort"

	"packetmill/internal/machine"
	"packetmill/internal/trace"
)

// Stage identifies a datapath stage, mirroring the paper's breakdown of
// where a packet's cycles go: the PMD receive path, the metadata
// conversion functions, the element graph, and the PMD transmit path.
// StageDriver absorbs the scheduler loop and anything not inside a more
// specific span.
type Stage uint8

// Stages in pipeline order.
const (
	StageDriver Stage = iota
	StageRx
	StageConv
	StageEngine
	StageTx
	NumStages
)

var stageNames = [NumStages]string{"driver", "pmd-rx", "conversion", "engine", "pmd-tx"}

// String names the stage the way reports print it.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "stage-?"
}

// Bucket accumulates the counters attributed to one (stage, name) pair on
// one core. Cycles are busy cycles (execution + memory stalls) in
// core-clock terms; LLC counters are the core's own demand traffic.
type Bucket struct {
	Stage   Stage
	Name    string
	Visits  uint64 // spans entered
	Packets uint64 // packets the span owner reported moving
	Delta   machine.Counters
	// Dur is the distribution of per-visit *exclusive* span durations
	// in nanoseconds (core-clock time, so ∝ cycles on sim runs). It
	// feeds the per-element latency percentiles in the report; merging
	// the per-core histograms is order-independent.
	Dur *trace.Hist
}

func (b *Bucket) add(d machine.Counters) {
	b.Delta.Instructions += d.Instructions
	b.Delta.BusyCycles += d.BusyCycles
	b.Delta.WallNS += d.WallNS
	b.Delta.IdleNS += d.IdleNS
	b.Delta.TLBMisses += d.TLBMisses
	b.Delta.LLCLoads += d.LLCLoads
	b.Delta.LLCLoadMisses += d.LLCLoadMisses
	b.Delta.LLCStores += d.LLCStores
	b.Delta.LLCStoreMisses += d.LLCStoreMisses
}

type bucketKey struct {
	stage Stage
	name  string
}

type frame struct {
	b     *Bucket
	start machine.Counters
	// accNS accumulates the wall-ns this visit already charged to the
	// bucket before nested spans paused it, so Exit can record the
	// visit's full exclusive duration into b.Dur in one observation.
	accNS float64
	// parts marks a split span (EnterShares): b is then a scratch
	// accumulator whose delta is distributed across parts at Exit.
	parts []SharePart
}

// Tracker attributes one core's counter movement to spans. It is not
// safe for concurrent use; the simulation is single-threaded per core.
type Tracker struct {
	core    *machine.Core
	stack   []frame
	buckets map[bucketKey]*Bucket
	order   []bucketKey
	trace   *trace.CoreTrace
	// scratch pools split-span accumulators by nesting depth (see
	// EnterShares); splitDepth counts the open split spans.
	scratch    []*Bucket
	splitDepth int
}

// NewTracker attaches a tracker to a core.
func NewTracker(core *machine.Core) *Tracker {
	return &Tracker{core: core, buckets: map[bucketKey]*Bucket{}}
}

// Core returns the tracked core (nil for a nil tracker).
func (t *Tracker) Core() *machine.Core {
	if t == nil {
		return nil
	}
	return t.core
}

// SetTrace attaches the core's flight recorder: every span boundary is
// mirrored into it, giving the trace per-element events without any
// per-element edits. Safe to leave unset (and on a nil tracker).
func (t *Tracker) SetTrace(ct *trace.CoreTrace) {
	if t != nil {
		t.trace = ct
	}
}

// Trace returns the attached flight recorder (nil when tracing is off
// or the tracker is nil), for drop/fault hooks that need it.
func (t *Tracker) Trace() *trace.CoreTrace {
	if t == nil {
		return nil
	}
	return t.trace
}

func (t *Tracker) bucket(stage Stage, name string) *Bucket {
	k := bucketKey{stage, name}
	b, ok := t.buckets[k]
	if !ok {
		b = &Bucket{Stage: stage, Name: name, Dur: trace.NewHist()}
		t.buckets[k] = b
		t.order = append(t.order, k)
	}
	return b
}

// Enter opens a span attributed to (stage, name). The parent span (if
// any) stops accumulating until the matching Exit.
func (t *Tracker) Enter(stage Stage, name string) {
	if t == nil {
		return
	}
	now := t.core.Snapshot()
	if n := len(t.stack); n > 0 {
		top := &t.stack[n-1]
		top.b.add(now.Delta(top.start))
		top.accNS += now.WallNS - top.start.WallNS
	}
	b := t.bucket(stage, name)
	b.Visits++
	t.stack = append(t.stack, frame{b: b, start: now})
	t.trace.SpanEnter()
}

// Exit closes the innermost span, charging its exclusive delta, and
// resumes the parent.
func (t *Tracker) Exit() {
	if t == nil {
		return
	}
	n := len(t.stack)
	if n == 0 {
		return
	}
	now := t.core.Snapshot()
	top := &t.stack[n-1]
	top.b.add(now.Delta(top.start))
	durNS := top.accNS + now.WallNS - top.start.WallNS
	if top.parts != nil {
		t.settleSplit(top, durNS)
	} else {
		top.b.Dur.Record(durNS)
	}
	t.trace.SpanExit(top.b.Stage.String(), top.b.Name)
	t.stack = t.stack[:n-1]
	if n > 1 {
		t.stack[n-2].start = now
	}
}

// AddPackets credits n packets to the innermost open span (how per-stage
// cycles/packet is derived).
func (t *Tracker) AddPackets(n int) {
	if t == nil || n <= 0 {
		return
	}
	if m := len(t.stack); m > 0 {
		t.stack[m-1].b.Packets += uint64(n)
	}
}

// Depth reports the open-span count (for tests and assertions).
func (t *Tracker) Depth() int {
	if t == nil {
		return 0
	}
	return len(t.stack)
}

// Buckets returns the accumulated buckets in first-seen order.
func (t *Tracker) Buckets() []*Bucket {
	if t == nil {
		return nil
	}
	out := make([]*Bucket, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, t.buckets[k])
	}
	return out
}

// AttributedCycles sums the busy cycles charged to all buckets.
func (t *Tracker) AttributedCycles() float64 {
	if t == nil {
		return 0
	}
	var sum float64
	for _, b := range t.buckets {
		sum += b.Delta.BusyCycles
	}
	return sum
}

// --- Report ---

// Schema is the version tag stamped into every JSON report.
const Schema = "packetmill/telemetry/v1"

// RunConfig echoes the run's configuration into the report so a result
// file is self-describing.
type RunConfig struct {
	Config    string  `json:"config,omitempty"` // builtin name or file
	Model     string  `json:"model"`
	Opt       string  `json:"opt"`
	FreqGHz   float64 `json:"freq_ghz"`
	Cores     int     `json:"cores"`
	NICs      int     `json:"nics"`
	RateGbps  float64 `json:"rate_gbps"`
	Packets   int     `json:"packets"`
	FixedSize int     `json:"fixed_size,omitempty"`
	Seed      uint64  `json:"seed"`
	Faults    string  `json:"faults,omitempty"`
}

// Totals is the run's end-to-end summary.
type Totals struct {
	Offered      uint64  `json:"offered"`
	TxWire       uint64  `json:"tx_wire"`
	Dropped      uint64  `json:"dropped"`
	Gbps         float64 `json:"gbps"`
	Mpps         float64 `json:"mpps"`
	DurationNS   float64 `json:"duration_ns"`
	Instructions uint64  `json:"instructions"`
	BusyCycles   float64 `json:"busy_cycles"`
	IPC          float64 `json:"ipc"`
	LLCLoads     uint64  `json:"llc_loads"`
	LLCMisses    uint64  `json:"llc_load_misses"`
	TLBMisses    uint64  `json:"tlb_misses"`
}

// LatencyUS summarizes a latency distribution. This type is the single
// place latency units are defined for every report surface (Report,
// -report json, the experiments tables, and the /report endpoint):
//
//   - All values are MICROSECONDS.
//   - On simulated runs time is core-clock time (cycles ÷ frequency);
//     on wire runs it is wall-clock time.
//   - Run-level latency is wire arrival → TX departure, measured over
//     the FULL post-warmup run (full-run totals, not interval-end
//     snapshots). Mean/min/max are exact; percentiles come from the
//     log-bucketed histogram (≤3% relative quantization error).
//   - Per-element latency (ElementReport.Latency) is the distribution
//     of per-visit *exclusive* span durations.
type LatencyUS struct {
	Count uint64  `json:"count"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// LatencyFromHist digests a nanosecond histogram into the report's
// microsecond summary.
func LatencyFromHist(h *trace.Hist) LatencyUS {
	s := h.Summary()
	return LatencyUS{
		Count: s.Count,
		Min:   s.Min / 1e3,
		Mean:  s.Mean / 1e3,
		P50:   s.P50 / 1e3,
		P90:   s.P90 / 1e3,
		P99:   s.P99 / 1e3,
		P999:  s.P999 / 1e3,
		Max:   s.Max / 1e3,
	}
}

// CoreReport is one core's ledger: perf totals plus the idle/busy split.
type CoreReport struct {
	Core          int     `json:"core"`
	Instructions  uint64  `json:"instructions"`
	BusyCycles    float64 `json:"busy_cycles"`
	BusyNS        float64 `json:"busy_ns"`
	IdleNS        float64 `json:"idle_ns"`
	WallNS        float64 `json:"wall_ns"`
	IPC           float64 `json:"ipc"`
	LLCLoads      uint64  `json:"llc_loads"`
	LLCLoadMisses uint64  `json:"llc_load_misses"`
	TLBMisses     uint64  `json:"tlb_misses"`
	// AttributedCycles is the sum over this core's spans; Coverage is
	// attributed/busy (the ≥0.99 invariant).
	AttributedCycles float64 `json:"attributed_cycles"`
	Coverage         float64 `json:"coverage"`
}

// QueueReport is one (NIC, queue) pair's ledger, merged from the NIC's
// per-queue counters and the PMD port that polls it.
type QueueReport struct {
	NIC   string `json:"nic"`
	Queue int    `json:"queue"`
	Core  int    `json:"core"`
	// NIC side.
	RxDelivered     uint64 `json:"rx_delivered"`
	RxBytes         uint64 `json:"rx_bytes"`
	RxDropNoBuf     uint64 `json:"rx_drop_no_buf"`
	RxDropFull      uint64 `json:"rx_drop_ring_full"`
	RxDropRunt      uint64 `json:"rx_drop_runt"`
	TxSent          uint64 `json:"tx_sent"`
	TxBytes         uint64 `json:"tx_bytes"`
	TxDropFull      uint64 `json:"tx_drop_ring_full"`
	TxDropTransient uint64 `json:"tx_drop_transient,omitempty"`
	TxDropOversize  uint64 `json:"tx_drop_oversize,omitempty"`
	// PMD side.
	Polls           uint64 `json:"polls"`
	EmptyPolls      uint64 `json:"empty_polls"`
	RxPackets       uint64 `json:"rx_packets"`
	TxPackets       uint64 `json:"tx_packets"`
	RefillShort     uint64 `json:"refill_short"`
	RefillShortBufs uint64 `json:"refill_short_bufs"`
	PoolExhausted   uint64 `json:"pool_exhausted"`
	// End-of-run occupancy.
	Posted    uint64 `json:"posted"`
	PendingRx uint64 `json:"pending_rx"`
}

// SpanReport is one attributed bucket, flattened for JSON (per element
// and per stage views are both built from these).
type SpanReport struct {
	Core            int     `json:"core"`
	Stage           string  `json:"stage"`
	Name            string  `json:"name"`
	Visits          uint64  `json:"visits"`
	Packets         uint64  `json:"packets"`
	Cycles          float64 `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
	Instructions    uint64  `json:"instructions"`
	LLCLoads        uint64  `json:"llc_loads"`
	LLCLoadMisses   uint64  `json:"llc_load_misses"`
	ShareOfCore     float64 `json:"share_of_core"`
}

// StageReport aggregates spans by stage across cores.
type StageReport struct {
	Stage           string  `json:"stage"`
	Packets         uint64  `json:"packets"`
	Cycles          float64 `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
	Instructions    uint64  `json:"instructions"`
	LLCLoads        uint64  `json:"llc_loads"`
	LLCLoadMisses   uint64  `json:"llc_load_misses"`
	Share           float64 `json:"share"`
}

// ElementReport aggregates spans by element name across stages and cores.
type ElementReport struct {
	Name            string  `json:"name"`
	Stages          string  `json:"stages"`
	Visits          uint64  `json:"visits"`
	Packets         uint64  `json:"packets"`
	Cycles          float64 `json:"cycles"`
	CyclesPerPacket float64 `json:"cycles_per_packet"`
	Instructions    uint64  `json:"instructions"`
	LLCLoads        uint64  `json:"llc_loads"`
	LLCLoadMisses   uint64  `json:"llc_load_misses"`
	Share           float64 `json:"share"`
	// Latency is the per-visit exclusive-duration distribution, merged
	// across cores (units per LatencyUS).
	Latency *LatencyUS `json:"latency_us,omitempty"`
}

// Interval is one periodic snapshot: cumulative progress plus instant
// occupancy, for spotting transients (fault-window recoveries, ring
// shrink) a run-total would average away.
type Interval struct {
	TNS       float64 `json:"t_ns"`
	Offered   uint64  `json:"offered"`
	TxWire    uint64  `json:"tx_wire"`
	Mpps      float64 `json:"mpps"` // delivered rate over this interval
	PendingRx uint64  `json:"pending_rx"`
	TxBacklog uint64  `json:"tx_backlog"`
	Posted    uint64  `json:"posted"`
}

// Attribution is the report's self-check: the per-span cycle attribution
// against the measured core totals.
type Attribution struct {
	CoreBusyCycles   float64 `json:"core_busy_cycles"`
	AttributedCycles float64 `json:"attributed_cycles"`
	Coverage         float64 `json:"coverage"` // attributed / core busy
}

// Report is the whole run, machine-readable.
type Report struct {
	Schema      string            `json:"schema"`
	Config      RunConfig         `json:"config"`
	Totals      Totals            `json:"totals"`
	LatencyUS   LatencyUS         `json:"latency_us"`
	Drops       map[string]uint64 `json:"drops"`
	Cores       []CoreReport      `json:"cores"`
	Queues      []QueueReport     `json:"queues"`
	Stages      []StageReport     `json:"stages"`
	Elements    []ElementReport   `json:"elements"`
	Spans       []SpanReport      `json:"spans"`
	Attribution Attribution       `json:"attribution"`
	Intervals   []Interval        `json:"intervals,omitempty"`
	// Overload is present when the overload control plane ran: one entry
	// per core with its health lifecycle and shed/backpressure ledger.
	Overload []OverloadCoreReport `json:"overload,omitempty"`
	// Conntrack is present when a stateful element tracked flows: one
	// entry per (core, element instance) with the shard's occupancy,
	// lifecycle counters, and pressure ledger.
	Conntrack []ConntrackReport `json:"conntrack,omitempty"`
	// Flows is present when the flow-record pipeline ran: the verdict
	// roll-up and top flows of the run's record stream.
	Flows *FlowSummary `json:"flows,omitempty"`
}

// FlowSummary is the report-level roll-up of a run's flow records. The
// maps are keyed by verdict name (forwarded/dropped/shed/evicted/
// refused); the flowlog package fills the shape so telemetry stays free
// of its types.
type FlowSummary struct {
	Records        uint64            `json:"records"`
	VerdictFlows   map[string]uint64 `json:"verdict_flows"`
	VerdictPackets map[string]uint64 `json:"verdict_packets"`
	VerdictBytes   map[string]uint64 `json:"verdict_bytes"`
	// TxSidePackets + DropSidePackets split the records along the
	// conservation invariant; Unattributed is forwarded traffic no
	// tracked flow claims.
	TxSidePackets   uint64 `json:"tx_side_packets"`
	DropSidePackets uint64 `json:"drop_side_packets"`
	Unattributed    uint64 `json:"unattributed_packets,omitempty"`
	LatencySamples  uint64 `json:"latency_samples,omitempty"`
	// TopFlows are the largest flows by bytes.
	TopFlows []TopFlow `json:"top_flows,omitempty"`
}

// TopFlow is one entry of FlowSummary.TopFlows.
type TopFlow struct {
	Key        string  `json:"key"`
	Verdict    string  `json:"verdict"`
	State      string  `json:"state,omitempty"`
	Packets    uint64  `json:"packets"`
	Bytes      uint64  `json:"bytes"`
	DurationUS float64 `json:"duration_us"`
	LatAvgUS   float64 `json:"lat_avg_us,omitempty"`
}

// OverloadCoreReport is one core's overload-control-plane summary. The
// state and policy fields carry the control plane's string spellings so
// the report stays readable without the overload package's enums.
type OverloadCoreReport struct {
	Core        int    `json:"core"`
	Policy      string `json:"policy"`
	State       string `json:"state"`
	Transitions uint64 `json:"transitions"`
	// TimeInUS maps state name to microseconds spent there.
	TimeInUS map[string]float64 `json:"time_in_us"`
	AdmitOK  uint64             `json:"admit_ok"`
	Sheds    uint64             `json:"sheds"`
	Pauses   uint64             `json:"pauses"`
	PausedUS float64            `json:"paused_us"`
	// WatchdogRestarts counts drain-and-restart recoveries on this core.
	WatchdogRestarts uint64 `json:"watchdog_restarts,omitempty"`
}

// FlowReporter is implemented by elements that track flows (IPRewriter,
// ConnTracker); report assembly discovers them by interface and fills
// Core and Element itself.
type FlowReporter interface {
	FlowReport() ConntrackReport
}

// ConntrackReport is one flow-table shard's summary: a (core, element)
// pair's occupancy and lifecycle ledger. FlowTableEntries is the live
// gauge the leak satellite watches; the eviction split shows whether
// pressure fell on embryonic half-opens or real connections.
type ConntrackReport struct {
	Core    int    `json:"core"`
	Element string `json:"element"`
	// FlowTableEntries is current occupancy; Capacity the slab bound.
	FlowTableEntries uint64 `json:"flow_table_entries"`
	Capacity         uint64 `json:"capacity"`
	Insertions       uint64 `json:"insertions"`
	Lookups          uint64 `json:"lookups"`
	Hits             uint64 `json:"hits"`
	Expirations      uint64 `json:"expirations"`
	// Evictions maps eviction class (embryonic/transient/established)
	// to entries displaced under table pressure.
	Evictions      map[string]uint64 `json:"evictions,omitempty"`
	RefusedFull    uint64            `json:"refused_full,omitempty"`
	RefusedInvalid uint64            `json:"refused_invalid,omitempty"`
	MigratedIn     uint64            `json:"migrated_in,omitempty"`
	MigratedOut    uint64            `json:"migrated_out,omitempty"`
	// WheelLagUS is the worst timer-wheel lag observed (budgeted expiry
	// sweeps park behind wall time under a storm).
	WheelLagUS float64 `json:"wheel_lag_us,omitempty"`
	// PortsInUse/PortsRecycled are NAT-only: live external ports and
	// ports returned to the pool by expiry/eviction.
	PortsInUse    uint64 `json:"ports_in_use,omitempty"`
	PortsRecycled uint64 `json:"ports_recycled,omitempty"`
}

// JSON renders the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// BuildSpans flattens per-core trackers into span reports and fills the
// stage and element aggregates plus the attribution check. coreBusy maps
// core ID to its measured total busy cycles.
func (r *Report) BuildSpans(trackers []*Tracker, coreBusy []float64) {
	var totalBusy, totalAttr float64
	for _, b := range coreBusy {
		totalBusy += b
	}
	stageAgg := map[string]*StageReport{}
	elemAgg := map[string]*ElementReport{}
	elemStages := map[string]map[string]bool{}
	elemDur := map[string]*trace.Hist{}
	for ci, t := range trackers {
		if t == nil {
			continue
		}
		busy := 0.0
		if ci < len(coreBusy) {
			busy = coreBusy[ci]
		}
		for _, b := range t.Buckets() {
			totalAttr += b.Delta.BusyCycles
			sr := SpanReport{
				Core:          ci,
				Stage:         b.Stage.String(),
				Name:          b.Name,
				Visits:        b.Visits,
				Packets:       b.Packets,
				Cycles:        b.Delta.BusyCycles,
				Instructions:  b.Delta.Instructions,
				LLCLoads:      b.Delta.LLCLoads,
				LLCLoadMisses: b.Delta.LLCLoadMisses,
			}
			if b.Packets > 0 {
				sr.CyclesPerPacket = sr.Cycles / float64(b.Packets)
			}
			if busy > 0 {
				sr.ShareOfCore = sr.Cycles / busy
			}
			r.Spans = append(r.Spans, sr)

			sa, ok := stageAgg[sr.Stage]
			if !ok {
				sa = &StageReport{Stage: sr.Stage}
				stageAgg[sr.Stage] = sa
			}
			sa.Packets += sr.Packets
			sa.Cycles += sr.Cycles
			sa.Instructions += sr.Instructions
			sa.LLCLoads += sr.LLCLoads
			sa.LLCLoadMisses += sr.LLCLoadMisses

			ea, ok := elemAgg[sr.Name]
			if !ok {
				ea = &ElementReport{Name: sr.Name}
				elemAgg[sr.Name] = ea
				elemStages[sr.Name] = map[string]bool{}
				elemDur[sr.Name] = trace.NewHist()
			}
			elemStages[sr.Name][sr.Stage] = true
			elemDur[sr.Name].Merge(b.Dur)
			ea.Visits += sr.Visits
			ea.Packets += sr.Packets
			ea.Cycles += sr.Cycles
			ea.Instructions += sr.Instructions
			ea.LLCLoads += sr.LLCLoads
			ea.LLCLoadMisses += sr.LLCLoadMisses
		}
	}
	for s := Stage(0); s < NumStages; s++ {
		sa, ok := stageAgg[s.String()]
		if !ok {
			continue
		}
		if sa.Packets > 0 {
			sa.CyclesPerPacket = sa.Cycles / float64(sa.Packets)
		}
		if totalBusy > 0 {
			sa.Share = sa.Cycles / totalBusy
		}
		r.Stages = append(r.Stages, *sa)
	}
	names := make([]string, 0, len(elemAgg))
	for n := range elemAgg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ea := elemAgg[n]
		stages := make([]string, 0, len(elemStages[n]))
		for s := range elemStages[n] {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		ea.Stages = joinComma(stages)
		if d := elemDur[n]; d.Count() > 0 {
			l := LatencyFromHist(d)
			ea.Latency = &l
		}
		if ea.Packets > 0 {
			ea.CyclesPerPacket = ea.Cycles / float64(ea.Packets)
		}
		if totalBusy > 0 {
			ea.Share = ea.Cycles / totalBusy
		}
		r.Elements = append(r.Elements, *ea)
	}
	r.Attribution = Attribution{
		CoreBusyCycles:   totalBusy,
		AttributedCycles: totalAttr,
	}
	if totalBusy > 0 {
		r.Attribution.Coverage = totalAttr / totalBusy
	}
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
