package telemetry

import (
	"math"
	"testing"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
)

// TestExclusiveAttributionSums drives nested spans with real core work and
// checks the partition property: the buckets' busy-cycle sum equals the
// core's total busy cycles exactly, and a child's cycles are not double
// counted in its parent.
func TestExclusiveAttributionSums(t *testing.T) {
	_, core := machine.Default(2.3)
	tr := NewTracker(core)

	tr.Enter(StageDriver, "driver")
	core.Compute(1000)
	tr.Enter(StageRx, "rx0")
	core.Compute(400)
	core.Load(memsim.HugeBase, 64) // memory stall charged inside rx span
	tr.AddPackets(32)
	tr.Exit()
	core.Compute(200)
	tr.Enter(StageEngine, "counter")
	core.Compute(800)
	tr.Enter(StageEngine, "checker") // nested element pauses the parent
	core.Compute(300)
	tr.Exit()
	core.Compute(50)
	tr.Exit()
	tr.Exit()

	if d := tr.Depth(); d != 0 {
		t.Fatalf("span stack not drained: depth %d", d)
	}
	total := core.Snapshot().BusyCycles
	attr := tr.AttributedCycles()
	if math.Abs(total-attr) > 1e-6*total {
		t.Fatalf("attribution %f != core busy %f", attr, total)
	}

	byName := map[string]*Bucket{}
	for _, b := range tr.Buckets() {
		byName[b.Name] = b
	}
	if byName["rx0"].Packets != 32 {
		t.Fatalf("rx0 packets = %d, want 32", byName["rx0"].Packets)
	}
	// The rx span held the only memory access; its stall must not leak
	// into the driver bucket.
	if byName["rx0"].Delta.LLCLoadMisses == 0 && byName["rx0"].Delta.TLBMisses == 0 {
		t.Fatalf("rx0 span did not capture its memory traffic")
	}
	// checker's 300 instructions are exclusive of counter's.
	wantCounter := (800.0 + 50.0) / 4 // IssueWidth 4
	if c := byName["counter"].Delta.BusyCycles; math.Abs(c-wantCounter) > 1e-6 {
		t.Fatalf("counter cycles = %f, want %f (exclusive of nested span)", c, wantCounter)
	}
}

// TestNilTrackerIsFree checks a nil tracker accepts every call.
func TestNilTrackerIsFree(t *testing.T) {
	var tr *Tracker
	tr.Enter(StageRx, "x")
	tr.AddPackets(5)
	tr.Exit()
	if tr.Buckets() != nil || tr.Depth() != 0 || tr.AttributedCycles() != 0 || tr.Core() != nil {
		t.Fatal("nil tracker misbehaved")
	}
}

// TestReportBuildSpans checks the stage/element aggregation and the
// attribution self-check.
func TestReportBuildSpans(t *testing.T) {
	_, core := machine.Default(2.3)
	tr := NewTracker(core)
	tr.Enter(StageDriver, "driver")
	core.Compute(100)
	tr.Enter(StageEngine, "counter")
	core.Compute(400)
	tr.AddPackets(10)
	tr.Exit()
	tr.Exit()

	busy := core.Snapshot().BusyCycles
	var rep Report
	rep.BuildSpans([]*Tracker{tr}, []float64{busy})
	if rep.Attribution.Coverage < 0.999 || rep.Attribution.Coverage > 1.001 {
		t.Fatalf("coverage %f, want ≈1", rep.Attribution.Coverage)
	}
	if len(rep.Stages) != 2 || len(rep.Elements) != 2 || len(rep.Spans) != 2 {
		t.Fatalf("aggregation sizes: stages=%d elements=%d spans=%d",
			len(rep.Stages), len(rep.Elements), len(rep.Spans))
	}
	var engine *StageReport
	for i := range rep.Stages {
		if rep.Stages[i].Stage == "engine" {
			engine = &rep.Stages[i]
		}
	}
	if engine == nil || engine.Packets != 10 || engine.CyclesPerPacket <= 0 {
		t.Fatalf("engine stage aggregate wrong: %+v", engine)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}
