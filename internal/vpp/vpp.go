// Package vpp is a minimal Vector Packet Processing engine: graph nodes
// over frames of packet indices, the Cisco/FD.io design Figure 11b
// compares against. VPP's defining trait for this comparison is its
// Copying+Overlaying metadata model (Figure 2's 2bis arrow): the
// vlib_buffer_t overlays the rte_mbuf region, *and* the input node
// copy-converts the fields VPP needs into vlib's own area so they fit its
// vector code.
package vpp

import (
	"packetmill/internal/dpdk"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
)

// Node is one VPP graph node processing a frame (vector) of packets.
type Node interface {
	Name() string
	// Process handles the frame in place, returning the kept prefix.
	Process(core *machine.Core, frame []*pktbuf.Packet) int
}

// Graph is dpdk-input → nodes → interface-output on one PMD port.
type Graph struct {
	Port  *dpdk.Port
	Nodes []Node

	// VectorSize is VPP's frame size (default 256): the input node loops
	// rx bursts until the frame fills or the ring empties.
	VectorSize int

	frame []*pktbuf.Packet
	rx    []*pktbuf.Packet

	// NodeInstr is per-node per-frame dispatch overhead; PerPktInstr the
	// per-packet loop body overhead (VPP's dual/quad loops are tight).
	NodeInstr   float64
	PerPktInstr float64

	Forwarded uint64
}

// New builds a VPP graph over an existing Overlaying-model PMD port whose
// descriptor layout is layout.VLIBBuffer().
func New(port *dpdk.Port, nodes ...Node) *Graph {
	return &Graph{
		Port:        port,
		Nodes:       nodes,
		VectorSize:  256,
		rx:          make([]*pktbuf.Packet, port.Burst),
		NodeInstr:   16,
		PerPktInstr: 9,
	}
}

// Step implements testbed.Engine: gather a vector, run it through every
// node, transmit.
func (g *Graph) Step(core *machine.Core, now float64) int {
	g.frame = g.frame[:0]
	for len(g.frame) < g.VectorSize {
		// Pool-exhaustion drops are accounted in the port's counters;
		// the input node only sees survivors.
		n, _ := g.Port.RxBurst(core, now, g.rx)
		if n == 0 {
			break
		}
		// dpdk-input's conversion: copy the fields vlib code uses out
		// of the mbuf region into the vlib area (the 2bis copy).
		for i := 0; i < n; i++ {
			p := g.rx[i]
			m := p.Meta
			core.Compute(12)
			if m.L.Has(layout.FieldMacHeader) {
				m.Set(core, layout.FieldMacHeader, uint64(p.DataAddr()))
			}
			// current_length/flags conversion: read mbuf-side fields,
			// store vlib-side copies.
			m.Get(core, layout.FieldDataLen)
			if m.L.Has(layout.FieldAnnoFlowID) {
				m.Set(core, layout.FieldAnnoFlowID, m.Get(core, layout.FieldRSSHash))
			}
			g.frame = append(g.frame, p)
		}
	}
	if len(g.frame) == 0 {
		return 0
	}
	kept := g.frame
	for _, n := range g.Nodes {
		core.Call(machine.CallDirect, 0)
		core.Compute(g.NodeInstr + g.PerPktInstr*float64(len(kept)))
		k := n.Process(core, kept)
		kept = kept[:k]
		if len(kept) == 0 {
			break
		}
	}
	sent := 0
	if len(kept) > 0 {
		sent = g.Port.TxBurst(core, now, kept)
	}
	g.Forwarded += uint64(sent)
	for i := sent; i < len(kept); i++ {
		g.Port.Drops.Add(stats.DropTxRingFull, 1)
		if err := g.Port.Pool.Put(core, kept[i]); err != nil {
			panic(err) // a packet just held by the graph cannot double-free
		}
	}
	return len(g.frame)
}

// L2Rewrite rewrites the Ethernet addresses (VPP's l2-output rewrite).
type L2Rewrite struct {
	Src, Dst netpkt.MAC
}

// Name implements Node.
func (L2Rewrite) Name() string { return "l2-rewrite" }

// Process implements Node.
func (r L2Rewrite) Process(core *machine.Core, frame []*pktbuf.Packet) int {
	for _, p := range frame {
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Store(core, 0, 12)
			copy(hdr[0:6], r.Dst[:])
			copy(hdr[6:12], r.Src[:])
			core.Compute(8)
		}
	}
	return len(frame)
}
