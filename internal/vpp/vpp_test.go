package vpp

import (
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/netpkt"
	"packetmill/internal/nic"
	"packetmill/internal/testbed"
)

func runGraph(t *testing.T, freq float64) *testbed.Result {
	return runGraphCfg(t, freq, 512, nil)
}

func runGraphCfg(t *testing.T, freq float64, size int, nicCfg *nic.Config) *testbed.Result {
	t.Helper()
	res, err := testbed.RunEngines(testbed.Options{
		FreqGHz: freq, Model: click.Overlaying, MetaLayout: layout.VLIBBuffer(),
		NICConfig: nicCfg, FixedSize: size, RateGbps: 100, Packets: 6000,
	}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
		return New(d.PortsFor[core][0], L2Rewrite{
			Src: netpkt.MAC{0x02, 0, 0, 0, 0, 2},
			Dst: netpkt.MAC{0x02, 0, 0, 0, 0, 1},
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGraphForwards(t *testing.T) {
	res := runGraph(t, 2.3)
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
	if res.Bytes != res.Packets*512 {
		t.Fatalf("byte accounting: %d bytes, %d packets", res.Bytes, res.Packets)
	}
}

func TestVPPBetweenCopyingAndXChange(t *testing.T) {
	// Figure 11b: VPP lands near FastClick's Copying model — its 2bis
	// copy+overlay conversion costs like a copy — and clearly below
	// PacketMill (X-Change).
	cfg := nic.DefaultConfig("uncapped")
	cfg.MaxQueuePPS = 0
	vpp := runGraphCfg(t, 1.2, 64, &cfg)
	forwarder := `
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01) -> output;
`
	packetmill, err := testbed.Run(forwarder, testbed.Options{
		FreqGHz: 1.2, Model: click.XChange, Opt: click.AllOpts(),
		NICConfig: &cfg, FixedSize: 64, RateGbps: 100, Packets: 6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vpp=%.2f Mpps packetmill=%.2f Mpps", vpp.Mpps(), packetmill.Mpps())
	if packetmill.Mpps() <= vpp.Mpps() {
		t.Fatalf("PacketMill (%.2f Mpps) not faster than VPP (%.2f Mpps)",
			packetmill.Mpps(), vpp.Mpps())
	}
}

func TestVectorGathersAcrossBursts(t *testing.T) {
	// With a 256-deep vector and 32-deep bursts, a backlogged ring must
	// be drained in few Steps (the input node loops).
	res := runGraph(t, 3.0)
	if res.Packets == 0 {
		t.Fatal("no throughput")
	}
}
