// Package memsim models the DUT's physical address space.
//
// Nothing in this package stores payload bytes; it only hands out simulated
// addresses. The point is that *where* an object lives decides which cache
// sets, cache lines, and TLB pages its accesses touch, and PacketMill's
// "static graph" optimization is exactly a placement change: element objects
// move from a fragmented heap into one contiguous static arena. By making
// placement explicit we can reproduce that effect instead of asserting it.
//
// Address map (all sizes are simulation constants, not host memory):
//
//	0x0000_0000_0000 –          : static/.data arena (contiguous)
//	0x0000_4000_0000 –          : heap (fragmented allocator)
//	0x0000_8000_0000 –          : hugepage region for DPDK mempools & rings
//	0x0000_c000_0000 –          : per-NIC MMIO / descriptor shadow space
package memsim

import "fmt"

// Addr is a simulated physical address.
type Addr uint64

// Base addresses of the regions. They are far enough apart that no
// allocator can run into its neighbour under any workload in this repo.
const (
	StaticBase Addr = 0x0000_0000_1000 // skip page zero
	HeapBase   Addr = 0x0000_4000_0000
	HugeBase   Addr = 0x0000_8000_0000
	MMIOBase   Addr = 0x0000_c000_0000
)

const (
	// CacheLineSize is the line size assumed by the whole simulator.
	CacheLineSize = 64
	// PageSize is the small-page size used by the TLB model for heap and
	// static data.
	PageSize = 4096
	// HugePageSize is the page size of the hugepage region (DPDK pools).
	HugePageSize = 2 << 20
)

// align rounds addr up to a multiple of a (a must be a power of two).
func align(addr Addr, a Addr) Addr {
	return (addr + a - 1) &^ (a - 1)
}

// ExhaustedError reports an allocation that did not fit its region. It is
// the typed form of every out-of-memory condition in this package, so
// callers on a runtime path (pool construction sized from user config) can
// detect it with errors.As and degrade instead of crashing.
type ExhaustedError struct {
	// Region names the arena or heap region that ran out.
	Region string
	// Requested is the allocation size that failed.
	Requested uint64
	// Free is the space that remained in the region.
	Free uint64
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("memsim: region %q exhausted (%d bytes requested, %d free)",
		e.Region, e.Requested, e.Free)
}

// Arena hands out addresses from a contiguous region. It is the model for
// the static/.data segment and for hugepage pools: objects placed here sit
// back to back, so a working set of N small objects touches close to the
// minimal number of cache lines and pages.
type Arena struct {
	name string
	base Addr
	next Addr
	end  Addr
}

// NewArena returns an arena spanning [base, base+size).
func NewArena(name string, base Addr, size uint64) *Arena {
	return &Arena{name: name, base: base, next: base, end: base + Addr(size)}
}

// Alloc reserves size bytes aligned to alignTo (power of two; 0 means
// cache-line alignment) and returns the base address. It panics (with a
// typed *ExhaustedError) when the arena is out of space — use TryAlloc on
// paths where exhaustion is a run-time condition rather than a programming
// error.
func (a *Arena) Alloc(size uint64, alignTo uint64) Addr {
	p, err := a.TryAlloc(size, alignTo)
	if err != nil {
		panic(err)
	}
	return p
}

// TryAlloc is Alloc returning a typed error instead of panicking when the
// arena cannot satisfy the request. Pool constructors sized from user
// configuration use it so an oversized config surfaces as an error the
// testbed can report, not a crash mid-experiment.
func (a *Arena) TryAlloc(size uint64, alignTo uint64) (Addr, error) {
	if alignTo == 0 {
		alignTo = CacheLineSize
	}
	p := align(a.next, Addr(alignTo))
	if p+Addr(size) > a.end {
		free := uint64(0)
		if a.end > a.next {
			free = uint64(a.end - a.next)
		}
		return 0, &ExhaustedError{Region: a.name, Requested: size, Free: free}
	}
	a.next = p + Addr(size)
	return p, nil
}

// Used reports the number of bytes consumed so far.
func (a *Arena) Used() uint64 { return uint64(a.next - a.base) }

// Reset forgets every allocation. Callers must not use previously returned
// addresses afterwards.
func (a *Arena) Reset() { a.next = a.base }

// Heap models a general-purpose allocator after a process has been running:
// allocations of different sizes land in different size-class runs and are
// separated by allocator metadata and fragmentation. The practical effect —
// the one that matters for the cache and TLB — is that consecutive
// allocations are *not* adjacent. We model that with a per-size-class
// cursor plus a deterministic stride of slack between objects.
type Heap struct {
	base    Addr
	end     Addr
	classes map[uint64]*heapClass
	// slackFn decides the gap inserted after each object; deterministic,
	// derived from the allocation counter so runs are reproducible.
	count uint64
}

type heapClass struct {
	next Addr
	end  Addr
}

// heapClassSpan is the virtual span reserved per size class.
const heapClassSpan = 64 << 20

// NewHeap returns an empty fragmented-heap model.
func NewHeap() *Heap {
	return &Heap{base: HeapBase, end: HeapBase + 0x4000_0000, classes: map[uint64]*heapClass{}}
}

// sizeClass buckets a request the way tcmalloc-family allocators do:
// small sizes to rounded classes, large sizes to page multiples.
func sizeClass(size uint64) uint64 {
	switch {
	case size <= 64:
		return 64
	case size <= 128:
		return 128
	case size <= 256:
		return 256
	case size <= 512:
		return 512
	case size <= 1024:
		return 1024
	case size <= 4096:
		return align(Addr(size), 1024).u()
	default:
		return align(Addr(size), PageSize).u()
	}
}

func (a Addr) u() uint64 { return uint64(a) }

// Alloc reserves size bytes on the heap and returns the address. Objects in
// the same size class are spread out: each allocation is followed by
// allocator slack, and every few allocations skip to a fresh page, the way
// real heaps leave holes once earlier garbage has been freed.
func (h *Heap) Alloc(size uint64) Addr {
	cls := sizeClass(size)
	c, ok := h.classes[cls]
	if !ok {
		// Each class gets its own span, so two objects of different
		// classes are automatically far apart.
		base := h.base + Addr(uint64(len(h.classes))*heapClassSpan)
		if base+heapClassSpan > h.end {
			panic(&ExhaustedError{Region: "heap", Requested: heapClassSpan,
				Free: uint64(h.end - base)})
		}
		c = &heapClass{next: base, end: base + heapClassSpan}
		h.classes[cls] = c
	}
	p := align(c.next, CacheLineSize)
	if p+Addr(cls) > c.end {
		panic(&ExhaustedError{Region: fmt.Sprintf("heap class %d", cls),
			Requested: cls, Free: uint64(c.end - c.next)})
	}
	h.count++
	// Fragmentation model: one line of allocator slack after every
	// object, and a jump to a fresh page every 7th allocation.
	next := p + Addr(cls) + CacheLineSize
	if h.count%7 == 0 {
		next = align(next, PageSize) + Addr(cls)
	}
	c.next = next
	return p
}

// Object is a placed simulated object: a base address plus a size. It is a
// convenience for code that wants to talk about "the element's state" or
// "this descriptor" without tracking raw addresses.
type Object struct {
	Base Addr
	Size uint64
}

// Contains reports whether addr falls inside the object.
func (o Object) Contains(addr Addr) bool {
	return addr >= o.Base && addr < o.Base+Addr(o.Size)
}

// Lines reports how many distinct cache lines the object spans.
func (o Object) Lines() int {
	if o.Size == 0 {
		return 0
	}
	first := uint64(o.Base) / CacheLineSize
	last := (uint64(o.Base) + o.Size - 1) / CacheLineSize
	return int(last-first) + 1
}
