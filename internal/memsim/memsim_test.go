package memsim

import (
	"testing"
	"testing/quick"
)

func TestArenaContiguity(t *testing.T) {
	a := NewArena("static", StaticBase, 1<<20)
	p1 := a.Alloc(64, 64)
	p2 := a.Alloc(64, 64)
	if p2 != p1+64 {
		t.Fatalf("arena not contiguous: %#x then %#x", p1, p2)
	}
}

func TestArenaAlignment(t *testing.T) {
	a := NewArena("static", StaticBase, 1<<20)
	a.Alloc(3, 1)
	p := a.Alloc(128, 128)
	if uint64(p)%128 != 0 {
		t.Fatalf("misaligned: %#x", p)
	}
}

func TestArenaDefaultAlignIsCacheLine(t *testing.T) {
	a := NewArena("static", StaticBase, 1<<20)
	a.Alloc(1, 0)
	p := a.Alloc(1, 0)
	if uint64(p)%CacheLineSize != 0 {
		t.Fatalf("default alignment not cache line: %#x", p)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena("tiny", StaticBase, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	a.Alloc(256, 64)
}

func TestArenaReset(t *testing.T) {
	a := NewArena("static", StaticBase, 1<<20)
	p1 := a.Alloc(64, 64)
	a.Reset()
	p2 := a.Alloc(64, 64)
	if p1 != p2 {
		t.Fatalf("reset did not rewind: %#x vs %#x", p1, p2)
	}
	if a.Used() != 64 {
		t.Fatalf("Used() = %d after reset+alloc", a.Used())
	}
}

func TestHeapScatters(t *testing.T) {
	h := NewHeap()
	p1 := h.Alloc(64)
	p2 := h.Alloc(64)
	if p2 == p1+64 {
		t.Fatal("heap allocations came out adjacent; fragmentation model broken")
	}
	if p2 <= p1 {
		t.Fatalf("heap cursor went backwards: %#x then %#x", p1, p2)
	}
}

func TestHeapClassesAreSeparated(t *testing.T) {
	h := NewHeap()
	small := h.Alloc(64)
	big := h.Alloc(2048)
	diff := int64(big) - int64(small)
	if diff < 0 {
		diff = -diff
	}
	if diff < heapClassSpan/2 {
		t.Fatalf("size classes too close: %#x vs %#x", small, big)
	}
}

func TestHeapAddressesNeverOverlap(t *testing.T) {
	h := NewHeap()
	type span struct{ base, end uint64 }
	var spans []span
	sizes := []uint64{24, 64, 100, 128, 500, 1024, 1500, 4096}
	for i := 0; i < 500; i++ {
		sz := sizes[i%len(sizes)]
		p := uint64(h.Alloc(sz))
		for _, s := range spans {
			if p < s.end && p+sz > s.base {
				t.Fatalf("overlap: [%#x,%#x) with [%#x,%#x)", p, p+sz, s.base, s.end)
			}
		}
		spans = append(spans, span{p, p + sz})
	}
}

func TestHeapDeterministic(t *testing.T) {
	h1, h2 := NewHeap(), NewHeap()
	for i := 0; i < 100; i++ {
		if a, b := h1.Alloc(64), h2.Alloc(64); a != b {
			t.Fatalf("heap nondeterministic at %d: %#x vs %#x", i, a, b)
		}
	}
}

func TestObjectLines(t *testing.T) {
	cases := []struct {
		base Addr
		size uint64
		want int
	}{
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{64, 64, 1},
		{0, 0, 0},
		{10, 128, 3},
	}
	for _, c := range cases {
		o := Object{Base: c.base, Size: c.size}
		if got := o.Lines(); got != c.want {
			t.Errorf("Lines(%#x,%d) = %d, want %d", c.base, c.size, got, c.want)
		}
	}
}

func TestObjectContains(t *testing.T) {
	o := Object{Base: 100, Size: 10}
	if !o.Contains(100) || !o.Contains(109) || o.Contains(110) || o.Contains(99) {
		t.Fatal("Contains boundary check failed")
	}
}

func TestAlignProperty(t *testing.T) {
	if err := quick.Check(func(a uint32, shift uint8) bool {
		al := Addr(1) << (shift % 12)
		got := align(Addr(a), al)
		return got >= Addr(a) && uint64(got)%uint64(al) == 0 && got-Addr(a) < al
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeClassMonotonicAndCovering(t *testing.T) {
	if err := quick.Check(func(n uint16) bool {
		sz := uint64(n) + 1
		cls := sizeClass(sz)
		return cls >= sz
	}, nil); err != nil {
		t.Fatal(err)
	}
}
