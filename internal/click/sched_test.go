package click

import (
	"testing"

	"packetmill/internal/machine"
	"packetmill/internal/pktbuf"
)

// countingTask is a fake source element counting RunTask invocations,
// with configurable tickets.
type countingTask struct {
	Base
	tickets int
	runs    int
}

func (e *countingTask) Class() string { return "CountingTask" }
func (e *countingTask) Configure(args []string, bc *BuildCtx) error {
	e.InitBase(bc)
	if len(args) == 1 {
		n, err := ParseInt(args[0])
		if err != nil {
			return err
		}
		e.tickets = n
	}
	bc.AllocState(0, 0)
	return nil
}
func (e *countingTask) Push(*ExecCtx, int, *pktbuf.Batch) {}
func (e *countingTask) RunTask(*ExecCtx) int              { e.runs++; return 1 }
func (e *countingTask) Tickets() int                      { return e.tickets }

func init() {
	Register("CountingTask", func() Element { return &countingTask{} })
}

func TestStrideSchedulerProportionalShares(t *testing.T) {
	g, err := Parse(`
a :: CountingTask(1024);
b :: CountingTask(3072);
`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(g, BuildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	_, core := machine.Default(2.0)
	ec := &ExecCtx{Core: core, Rt: rt}
	for i := 0; i < 400; i++ {
		rt.Step(ec)
	}
	a := rt.Instance("a").El.(*countingTask)
	b := rt.Instance("b").El.(*countingTask)
	if a.runs == 0 || b.runs == 0 {
		t.Fatalf("starvation: a=%d b=%d", a.runs, b.runs)
	}
	ratio := float64(b.runs) / float64(a.runs)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ticket ratio 3:1 gave run ratio %.2f (a=%d b=%d)", ratio, a.runs, b.runs)
	}
}

func TestStrideSchedulerEqualTicketsRoundRobin(t *testing.T) {
	g, err := Parse(`
a :: CountingTask(1024);
b :: CountingTask(1024);
`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Build(g, BuildEnv{})
	if err != nil {
		t.Fatal(err)
	}
	_, core := machine.Default(2.0)
	ec := &ExecCtx{Core: core, Rt: rt}
	for i := 0; i < 100; i++ {
		rt.Step(ec)
	}
	a := rt.Instance("a").El.(*countingTask)
	b := rt.Instance("b").El.(*countingTask)
	if a.runs != b.runs {
		t.Fatalf("equal tickets diverged: a=%d b=%d", a.runs, b.runs)
	}
}
