// Package click implements the modular packet-processing framework the
// paper optimizes: a Click-language configuration parser, an element
// graph with push ports, linked-list packet batches, and a driver — the
// FastClick of this repository.
//
// This file is the configuration language front end. It accepts the
// subset of the Click language the paper's NF configurations use
// (Appendix A):
//
//	// declarations
//	input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
//	output :: ToDPDKDevice(PORT 0, BURST 32);
//	// processing graph, with optional port numbers and inline elements
//	input -> EtherMirror -> output;
//	c[1] -> Paint(2) -> [0]rt;
package click

import (
	"fmt"
	"strings"
	"unicode"
)

// ElementDecl is one element instance in a configuration.
type ElementDecl struct {
	Name  string
	Class string
	Args  []string
	// Anonymous marks inline elements synthesized from connections.
	Anonymous bool
}

// Connection is one edge of the processing graph.
type Connection struct {
	From     string
	FromPort int
	To       string
	ToPort   int
}

// Graph is a parsed configuration.
type Graph struct {
	Elements []*ElementDecl
	Conns    []Connection
	byName   map[string]*ElementDecl
}

// Element returns the declaration for name, or nil.
func (g *Graph) Element(name string) *ElementDecl { return g.byName[name] }

// String renders the graph back in Click syntax (normalized).
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.Elements {
		fmt.Fprintf(&b, "%s :: %s(%s);\n", e.Name, e.Class, strings.Join(e.Args, ", "))
	}
	for _, c := range g.Conns {
		fmt.Fprintf(&b, "%s[%d] -> [%d]%s;\n", c.From, c.FromPort, c.ToPort, c.To)
	}
	return b.String()
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokColonColon
	tokArrow
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokSemi
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset for error messages
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peek(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("click: line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case c == ':' && l.peek(1) == ':':
			l.emit(tokColonColon, "::")
			l.pos += 2
		case c == '-' && l.peek(1) == '>':
			l.emit(tokArrow, "->")
			l.pos += 2
		case c == '(':
			// Capture the balanced argument text verbatim; argument
			// grammar is element-specific in Click.
			text, nl, err := l.balanced()
			if err != nil {
				return nil, err
			}
			l.emit(tokLParen, text)
			l.line += nl
		case c == ')':
			return nil, fmt.Errorf("click: line %d: unbalanced ')'", l.line)
		case c == '[':
			l.emit(tokLBracket, "[")
			l.pos++
		case c == ']':
			l.emit(tokRBracket, "]")
			l.pos++
		case c == ';':
			l.emit(tokSemi, ";")
			l.pos++
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos])
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos])
		default:
			return nil, fmt.Errorf("click: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos, line: l.line})
}

// balanced consumes a parenthesized argument list starting at '(' and
// returns the inner text.
func (l *lexer) balanced() (string, int, error) {
	depth := 0
	start := l.pos + 1
	nl := 0
	for i := l.pos; i < len(l.src); i++ {
		switch l.src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				l.pos = i + 1
				return l.src[start:i], nl, nil
			}
		case '\n':
			nl++
		}
	}
	return "", 0, fmt.Errorf("click: line %d: unterminated '('", l.line)
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// SplitArgs splits a Click argument string on top-level commas and trims
// whitespace: "PORT 0, BURST 32" → ["PORT 0", "BURST 32"]. Nested parens
// and brackets do not split.
func SplitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

// KeywordArgs interprets args of the form "KEYWORD value" and returns the
// map plus the positional (non-keyword) arguments in order. A keyword is
// an all-caps first word.
func KeywordArgs(args []string) (map[string]string, []string) {
	kw := map[string]string{}
	var pos []string
	for _, a := range args {
		sp := strings.IndexAny(a, " \t")
		if sp > 0 {
			head := a[:sp]
			if head == strings.ToUpper(head) && strings.IndexFunc(head, unicode.IsLetter) >= 0 {
				kw[head] = strings.TrimSpace(a[sp+1:])
				continue
			}
		}
		pos = append(pos, a)
	}
	return kw, pos
}

// --- parser ---

type parser struct {
	toks []token
	i    int
	g    *Graph
	anon int
}

// Parse parses a Click configuration into a Graph.
func Parse(src string) (*Graph, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, g: &Graph{byName: map[string]*ElementDecl{}}}
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokSemi {
			p.i++
			continue
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.g, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("click: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, got %q", what, p.cur().text)
	}
	return p.next(), nil
}

// statement parses either a declaration or a connection chain.
func (p *parser) statement() error {
	// Lookahead: IDENT '::' → declaration.
	if p.cur().kind == tokIdent && p.toks[p.i+1].kind == tokColonColon {
		return p.declaration()
	}
	return p.connection()
}

func (p *parser) declaration() error {
	name, _ := p.expect(tokIdent, "element name")
	p.next() // '::'
	class, err := p.expect(tokIdent, "element class")
	if err != nil {
		return err
	}
	var args []string
	if p.cur().kind == tokLParen {
		args = SplitArgs(p.next().text)
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	if _, dup := p.g.byName[name.text]; dup {
		return fmt.Errorf("click: line %d: element %q redeclared", name.line, name.text)
	}
	decl := &ElementDecl{Name: name.text, Class: class.text, Args: args}
	p.g.Elements = append(p.g.Elements, decl)
	p.g.byName[name.text] = decl
	return nil
}

// endpoint is one element reference in a connection chain with its
// resolved input/output port numbers.
type endpoint struct {
	name    string
	inPort  int
	outPort int
}

func (p *parser) connection() error {
	first, err := p.endpoint()
	if err != nil {
		return err
	}
	prev := first
	for p.cur().kind == tokArrow {
		p.next()
		nxt, err := p.endpoint()
		if err != nil {
			return err
		}
		p.g.Conns = append(p.g.Conns, Connection{
			From: prev.name, FromPort: prev.outPort,
			To: nxt.name, ToPort: nxt.inPort,
		})
		prev = nxt
	}
	if prev == first {
		return p.errf("connection with a single endpoint")
	}
	_, err = p.expect(tokSemi, "';'")
	return err
}

// endpoint := [ '[' NUM ']' ] elem [ '[' NUM ']' ]
func (p *parser) endpoint() (endpoint, error) {
	ep := endpoint{}
	if p.cur().kind == tokLBracket {
		p.next()
		n, err := p.expect(tokNumber, "input port number")
		if err != nil {
			return ep, err
		}
		fmt.Sscanf(n.text, "%d", &ep.inPort)
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return ep, err
		}
	}
	id, err := p.expect(tokIdent, "element")
	if err != nil {
		return ep, err
	}
	// Inline *named* declaration inside a chain: "name :: Class(args)".
	if p.cur().kind == tokColonColon {
		p.next()
		class, err := p.expect(tokIdent, "element class")
		if err != nil {
			return ep, err
		}
		var args []string
		if p.cur().kind == tokLParen {
			args = SplitArgs(p.next().text)
		}
		if _, dup := p.g.byName[id.text]; dup {
			return ep, fmt.Errorf("click: line %d: element %q redeclared", id.line, id.text)
		}
		decl := &ElementDecl{Name: id.text, Class: class.text, Args: args}
		p.g.Elements = append(p.g.Elements, decl)
		p.g.byName[id.text] = decl
		ep.name = id.text
		if p.cur().kind == tokLBracket {
			p.next()
			n, err := p.expect(tokNumber, "output port number")
			if err != nil {
				return ep, err
			}
			fmt.Sscanf(n.text, "%d", &ep.outPort)
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return ep, err
			}
		}
		return ep, nil
	}
	// Inline anonymous element: "Class(args)" or an undeclared
	// capitalized class name.
	if p.cur().kind == tokLParen {
		args := SplitArgs(p.next().text)
		ep.name = p.declareAnon(id.text, args)
	} else if _, known := p.g.byName[id.text]; known {
		ep.name = id.text
	} else if len(id.text) > 0 && unicode.IsUpper(rune(id.text[0])) {
		ep.name = p.declareAnon(id.text, nil)
	} else {
		return ep, fmt.Errorf("click: line %d: undeclared element %q", id.line, id.text)
	}
	if p.cur().kind == tokLBracket {
		p.next()
		n, err := p.expect(tokNumber, "output port number")
		if err != nil {
			return ep, err
		}
		fmt.Sscanf(n.text, "%d", &ep.outPort)
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return ep, err
		}
	}
	return ep, nil
}

func (p *parser) declareAnon(class string, args []string) string {
	p.anon++
	name := fmt.Sprintf("%s@%d", class, p.anon)
	decl := &ElementDecl{Name: name, Class: class, Args: args, Anonymous: true}
	p.g.Elements = append(p.g.Elements, decl)
	p.g.byName[name] = decl
	return name
}
