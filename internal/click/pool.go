// PacketPool: the framework's recycled Packet-descriptor pool used by the
// Copying model — FastClick's per-thread packet pool. Descriptors are
// freed as soon as the packet has been handed back to DPDK, so the pool
// runs LIFO-hot: a batch's worth of descriptors cycles in cache.
package click

import (
	"fmt"

	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
)

// PacketPool recycles framework Packet descriptors.
type PacketPool struct {
	free []*pktbuf.Meta
	all  []*pktbuf.Meta
	// headAddr is the pool's free-list head; each op touches it.
	headAddr memsim.Addr

	Gets, Puts uint64
}

// PacketPoolOpInstr is the instruction cost of a pool get or put (Click's
// pool is a simple thread-local stack, much leaner than a DPDK mempool).
const PacketPoolOpInstr = 8

// NewPacketPool allocates n descriptors with the given layout. Placement:
// the heap in the vanilla build, the static arena when the static-graph
// pass runs (it knows every pool size from the embedded constants). A
// pool that does not fit the static arena returns a typed
// *memsim.ExhaustedError — pool size is build configuration.
func NewPacketPool(n int, l *layout.Layout, bc *BuildCtx, prof *layout.OrderProfile) (*PacketPool, error) {
	pp := &PacketPool{}
	for i := 0; i < n; i++ {
		var base memsim.Addr
		if bc.UseStatic {
			var err error
			base, err = bc.Static.TryAlloc(uint64(l.Size()), memsim.CacheLineSize)
			if err != nil {
				return nil, fmt.Errorf("click: packet pool (%d of %d descriptors placed): %w", i, n, err)
			}
		} else {
			base = bc.Heap.Alloc(uint64(l.Size()))
		}
		m := &pktbuf.Meta{Base: base, L: l, Prof: prof}
		pp.all = append(pp.all, m)
		pp.free = append(pp.free, m)
	}
	if bc.UseStatic {
		head, err := bc.Static.TryAlloc(64, memsim.CacheLineSize)
		if err != nil {
			return nil, fmt.Errorf("click: packet pool free-list head: %w", err)
		}
		pp.headAddr = head
	} else {
		pp.headAddr = bc.Heap.Alloc(64)
	}
	return pp, nil
}

// Get pops a descriptor, charging the pool op.
func (pp *PacketPool) Get(core *machine.Core) *pktbuf.Meta {
	if len(pp.free) == 0 {
		return nil
	}
	core.Load(pp.headAddr, 8)
	core.Compute(PacketPoolOpInstr)
	m := pp.free[len(pp.free)-1]
	pp.free = pp.free[:len(pp.free)-1]
	pp.Gets++
	return m
}

// Put recycles a descriptor.
func (pp *PacketPool) Put(core *machine.Core, m *pktbuf.Meta) {
	core.Store(pp.headAddr, 8)
	core.Compute(PacketPoolOpInstr)
	m.ClearValues()
	pp.free = append(pp.free, m)
	pp.Puts++
}

// FreeCount reports available descriptors.
func (pp *PacketPool) FreeCount() int { return len(pp.free) }

// Size reports the pool's total descriptor count.
func (pp *PacketPool) Size() int { return len(pp.all) }

// SetLayout swaps every descriptor's layout (the reorder pass applying its
// result between runs).
func (pp *PacketPool) SetLayout(l *layout.Layout) {
	for _, m := range pp.all {
		m.L = l
	}
}
