package click

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"packetmill/internal/simrand"
)

// genGraphSource builds a random but well-formed configuration: a chain of
// declarations with assorted argument shapes and random port annotations.
func genGraphSource(r *simrand.Rand) (string, int, int) {
	classes := []struct {
		class string
		args  []string
	}{
		{"FromDPDKDevice", []string{"PORT 0", "BURST 32"}},
		{"EtherMirror", nil},
		{"Counter", nil},
		{"Paint", []string{"3"}},
		{"Strip", []string{"14"}},
		{"Classifier", []string{"12/0800", "-"}},
		{"Discard", nil},
	}
	var b strings.Builder
	n := 2 + r.Intn(6)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		c := classes[r.Intn(len(classes))]
		names[i] = fmt.Sprintf("e%d", i)
		fmt.Fprintf(&b, "%s :: %s(%s);\n", names[i], c.class, strings.Join(c.args, ", "))
	}
	conns := 0
	for i := 0; i+1 < n; i++ {
		// Random port annotations (always port 0 to stay in range).
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "%s -> %s;\n", names[i], names[i+1])
		case 1:
			fmt.Fprintf(&b, "%s[0] -> %s;\n", names[i], names[i+1])
		default:
			fmt.Fprintf(&b, "%s[0] -> [0]%s;\n", names[i], names[i+1])
		}
		conns++
	}
	return b.String(), n, conns
}

func TestParseRoundTripProperty(t *testing.T) {
	r := simrand.New(0xC11C)
	if err := quick.Check(func(seed uint32) bool {
		_ = seed
		src, wantN, wantC := genGraphSource(r)
		g, err := Parse(src)
		if err != nil {
			t.Logf("parse failed for:\n%s\n%v", src, err)
			return false
		}
		if len(g.Elements) != wantN || len(g.Conns) != wantC {
			return false
		}
		// Normalized form must re-parse to the identical structure.
		g2, err := Parse(g.String())
		if err != nil {
			t.Logf("re-parse failed for:\n%s\n%v", g.String(), err)
			return false
		}
		if len(g2.Elements) != len(g.Elements) || len(g2.Conns) != len(g.Conns) {
			return false
		}
		for i := range g.Elements {
			a, b := g.Elements[i], g2.Elements[i]
			if a.Name != b.Name || a.Class != b.Class || len(a.Args) != len(b.Args) {
				return false
			}
		}
		for i := range g.Conns {
			if g.Conns[i] != g2.Conns[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitArgsJoinProperty(t *testing.T) {
	// Property: splitting a join of clean (comma-free) args returns the
	// original list.
	r := simrand.New(7)
	words := []string{"PORT 0", "BURST 32", "10.0.0.0/8 1", "a(b,c)", "-", "x y z"}
	if err := quick.Check(func(k uint8) bool {
		n := int(k%4) + 1
		var parts []string
		for i := 0; i < n; i++ {
			parts = append(parts, words[r.Intn(len(words))])
		}
		got := SplitArgs(strings.Join(parts, ", "))
		if len(got) != len(parts) {
			return false
		}
		for i := range got {
			if got[i] != parts[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
