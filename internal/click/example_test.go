package click_test

import (
	"fmt"

	"packetmill/internal/click"
)

// ExampleParse shows the configuration front end on the paper's Listing 3.
func ExampleParse() {
	g, err := click.Parse(`
// Listing 3: a simple forwarder
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
`)
	if err != nil {
		panic(err)
	}
	for _, e := range g.Elements {
		fmt.Printf("%s :: %s (%d args)\n", e.Name, e.Class, len(e.Args))
	}
	for _, c := range g.Conns {
		fmt.Printf("%s[%d] -> [%d]%s\n", c.From, c.FromPort, c.ToPort, c.To)
	}
	// Output:
	// input :: FromDPDKDevice (3 args)
	// output :: ToDPDKDevice (2 args)
	// EtherMirror@1 :: EtherMirror (0 args)
	// input[0] -> [0]EtherMirror@1
	// EtherMirror@1[0] -> [0]output
}

// ExampleSplitArgs shows top-level comma splitting of element arguments.
func ExampleSplitArgs() {
	fmt.Printf("%q\n", click.SplitArgs("12/0806 20/0001, 12/0800, -"))
	// Output:
	// ["12/0806 20/0001" "12/0800" "-"]
}
