// Builder and driver: wiring a parsed Graph into a runnable Router and
// scheduling its source tasks — the "Click binary" stage of Figure 3.
package click

import (
	"fmt"

	"packetmill/internal/dpdk"
	"packetmill/internal/layout"
	"packetmill/internal/memsim"
	"packetmill/internal/overload"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/telemetry"
)

// BuildEnv supplies everything a build needs beyond the configuration.
type BuildEnv struct {
	Opt   OptLevel
	Model MetadataModel

	Heap   *memsim.Heap
	Static *memsim.Arena
	Huge   *memsim.Arena

	// Ports maps Click PORT numbers to PMD ports (created by the
	// testbed with the binding matching Model).
	Ports map[int]*dpdk.Port

	// MetaLayout overrides the model's default framework layout — how a
	// reordered layout from the IR pass is applied.
	MetaLayout *layout.Layout

	// Profile turns on metadata access profiling (input to the reorder
	// pass).
	Profile bool

	// PacketPoolSize sizes the Copying-model descriptor pool (default
	// 2048, FastClick's per-thread pool size).
	PacketPoolSize int

	// Prewarm forwards to BuildCtx (see cache.System.Prewarm).
	Prewarm func(addr memsim.Addr, size uint64)

	Seed uint64
}

// Router is a wired, runnable network function — the equivalent of the
// specialized binary Figure 3 produces.
type Router struct {
	Graph *Graph
	Opt   OptLevel
	Model MetadataModel

	Instances []*Instance
	// Conns is the wired connection list in configuration order
	// (exported for the mill's IR dump).
	Conns  []*OutputPort
	byName map[string]*Instance
	sched  []schedEntry

	PacketPool *PacketPool
	MetaLayout *layout.Layout
	Prof       *layout.OrderProfile

	// SchedInstr is the driver-loop overhead charged per task run.
	SchedInstr float64

	// Recycle returns a dead packet's buffer and descriptor(s) to their
	// pools; the testbed wires it to the build's mempool/binding.
	// Elements call it for every packet they kill.
	Recycle func(ec *ExecCtx, p *pktbuf.Packet)
	// Drops counts killed packets.
	Drops uint64
	// DropStats breaks Drops (and element-level overload drops) down by
	// reason, so the conservation check rx == tx + Σ drops can attribute
	// every lost packet.
	DropStats stats.DropCounters

	// Tel, when non-nil, attributes this router's work to spans; the
	// driver loop installs it into every ExecCtx it runs.
	Tel *telemetry.Tracker

	// Overload is the core's overload control plane, or nil. The I/O and
	// Queue elements consult it for backpressure (lossless pipelines
	// raise/lower pressure at their watermarks; the PMD RX pauses while
	// pressure is held) and the PMD prices admissions against it.
	Overload *overload.Controller
}

// Kill recycles every packet in b (an element dropping traffic).
func (rt *Router) Kill(ec *ExecCtx, b *pktbuf.Batch) {
	rt.KillReason(ec, b, stats.DropEngine)
}

// KillReason is Kill with an explicit drop reason for the taxonomy.
func (rt *Router) KillReason(ec *ExecCtx, b *pktbuf.Batch, reason stats.DropReason) {
	b.ForEach(ec.Core, func(p *pktbuf.Packet) bool {
		rt.KillPacket(ec, p, reason)
		return true
	})
}

// KillPacket drops a single packet with accounting: taxonomy counter,
// flight-recorder drop event when the packet is being traced, recycle.
// Every engine-side drop path funnels through here so no drop can lose
// its trace or its reason.
func (rt *Router) KillPacket(ec *ExecCtx, p *pktbuf.Packet, reason stats.DropReason) {
	rt.Drops++
	rt.DropStats.Add(reason, 1)
	if p.TraceID != 0 {
		ec.Tel.Trace().Drop(p.TraceID, reason.String(), p.Len())
		p.TraceID = 0
	}
	if rt.Recycle != nil {
		rt.Recycle(ec, p)
	}
}

// DefaultMetaLayout returns the framework descriptor layout a metadata
// model uses out of the box.
func DefaultMetaLayout(m MetadataModel) *layout.Layout {
	switch m {
	case Overlaying:
		return layout.OverlayPacket()
	case XChange:
		return layout.XchgPacket()
	default:
		return layout.ClickPacket()
	}
}

// Build wires a parsed graph into a Router.
func Build(g *Graph, env BuildEnv) (*Router, error) {
	if env.Heap == nil {
		env.Heap = memsim.NewHeap()
	}
	if env.Static == nil {
		env.Static = memsim.NewArena("static", memsim.StaticBase, 256<<20)
	}
	if env.Huge == nil {
		env.Huge = memsim.NewArena("huge", memsim.HugeBase, 1<<30)
	}
	if env.PacketPoolSize <= 0 {
		env.PacketPoolSize = 2048
	}
	rt := &Router{
		Graph:      g,
		Opt:        env.Opt,
		Model:      env.Model,
		byName:     map[string]*Instance{},
		MetaLayout: env.MetaLayout,
		SchedInstr: 24,
	}
	if rt.MetaLayout == nil {
		rt.MetaLayout = DefaultMetaLayout(env.Model)
	}
	if env.Profile {
		rt.Prof = &layout.OrderProfile{}
	}

	bc := &BuildCtx{
		Heap:       env.Heap,
		Static:     env.Static,
		Huge:       env.Huge,
		UseStatic:  env.Opt.StaticGraph,
		Ports:      env.Ports,
		Model:      env.Model,
		MetaLayout: rt.MetaLayout,
		Prof:       rt.Prof,
		Seed:       env.Seed,
		Prewarm:    env.Prewarm,
	}
	if env.Model == Copying {
		pp, err := NewPacketPool(env.PacketPoolSize, rt.MetaLayout, bc, rt.Prof)
		if err != nil {
			return nil, err
		}
		bc.PacketPool = pp
		rt.PacketPool = pp
	}

	// Instantiate and configure every element.
	for _, decl := range g.Elements {
		el, err := NewElement(decl.Class)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", decl.Name, err)
		}
		inst := &Instance{Name: decl.Name, El: el}
		if be, ok := el.(BatchElement); ok {
			inst.batchAware = be.BatchAware()
		} else {
			inst.batchAware = true
		}
		bc.Self = inst
		if err := el.Configure(decl.Args, bc); err != nil {
			return nil, fmt.Errorf("%s :: %s: %w", decl.Name, decl.Class, err)
		}
		if inst.State.Size == 0 {
			// Element did not place itself; give it the base object.
			bc.AllocState(0, len(decl.Args))
		}
		rt.Instances = append(rt.Instances, inst)
		rt.byName[decl.Name] = inst
	}

	// Wire connections.
	for _, c := range g.Conns {
		from, ok := rt.byName[c.From]
		if !ok {
			return nil, fmt.Errorf("click: connection from unknown element %q", c.From)
		}
		to, ok := rt.byName[c.To]
		if !ok {
			return nil, fmt.Errorf("click: connection to unknown element %q", c.To)
		}
		if n := from.El.NOutputs(); n >= 0 && c.FromPort >= n {
			return nil, fmt.Errorf("click: %s has no output %d", c.From, c.FromPort)
		}
		if n := to.El.NInputs(); n >= 0 && c.ToPort >= n {
			return nil, fmt.Errorf("click: %s has no input %d", c.To, c.ToPort)
		}
		for len(from.Outputs) <= c.FromPort {
			from.Outputs = append(from.Outputs, nil)
		}
		if from.Outputs[c.FromPort] != nil {
			return nil, fmt.Errorf("click: output %s[%d] connected twice", c.From, c.FromPort)
		}
		op := &OutputPort{
			To:       to,
			ToPort:   c.ToPort,
			Kind:     env.Opt.CallKind(),
			Embedded: env.Opt.StaticGraph,
		}
		if !op.Embedded {
			op.ConnAddr = env.Heap.Alloc(32) // Click Port object
		}
		if c.ToPort+1 > to.NIn {
			to.NIn = c.ToPort + 1
		}
		rt.Conns = append(rt.Conns, op)
		from.Outputs[c.FromPort] = op

		// Mirror the wiring on the input side for pull consumers.
		for len(to.Inputs) <= c.ToPort {
			to.Inputs = append(to.Inputs, nil)
		}
		to.Inputs[c.ToPort] = &InputPort{
			From: from, FromPort: c.FromPort,
			Kind: op.Kind, ConnAddr: op.ConnAddr, Embedded: op.Embedded,
		}
	}

	if err := validatePullAgreement(rt, g); err != nil {
		return nil, err
	}

	// Collect driver tasks into the stride scheduler.
	hasSource := false
	for _, inst := range rt.Instances {
		if t, ok := inst.El.(Task); ok {
			tickets := DefaultTickets
			if tt, ok := inst.El.(TaskTickets); ok && tt.Tickets() > 0 {
				tickets = tt.Tickets()
			}
			rt.sched = append(rt.sched, schedEntry{
				task:   t,
				stride: stride1 / float64(tickets),
			})
			if inst.El.NInputs() <= 0 {
				hasSource = true
			}
		}
	}
	if !hasSource {
		return nil, fmt.Errorf("click: configuration has no schedulable source element")
	}
	return rt, nil
}

// Stride scheduling, as in Click's task scheduler: each task advances a
// pass value by stride1/tickets per run, and the driver always runs the
// minimum-pass task. Equal tickets degenerate to round-robin; a task with
// twice the tickets runs twice as often.
const (
	stride1        = 1 << 20
	DefaultTickets = 1024
)

// TaskTickets is implemented by task elements that want a non-default
// scheduling share (e.g. Unqueue's TICKETS argument).
type TaskTickets interface {
	Tickets() int
}

type schedEntry struct {
	task   Task
	pass   float64
	stride float64
}

// HopCost returns the per-packet overhead of one element hand-off under
// this build's optimization level: straight-line instructions plus
// pipeline bubbles (frontend/pointer-chase stalls the inliner removes).
func (rt *Router) HopCost() (instr, bubbleCyc float64) {
	switch {
	case rt.Opt.StaticGraph:
		return 4, 0
	case rt.Opt.ConstEmbed:
		return 7, 3
	default:
		return 8, 3
	}
}

// Instance returns the wired instance by name (nil if absent).
func (rt *Router) Instance(name string) *Instance { return rt.byName[name] }

// Step runs one driver round: as many task invocations as there are
// tasks, each time picking the minimum-pass task (stride scheduling). It
// returns the number of packets moved.
func (rt *Router) Step(ec *ExecCtx) int {
	if ec.Tel == nil {
		ec.Tel = rt.Tel
	}
	// The driver span is the attribution root: every charge in the round
	// lands in it unless a more specific stage span is open, so the span
	// set partitions the core's busy cycles.
	ec.Tel.Enter(telemetry.StageDriver, "driver")
	moved := 0
	for i := 0; i < len(rt.sched); i++ {
		min := 0
		for j := 1; j < len(rt.sched); j++ {
			if rt.sched[j].pass < rt.sched[min].pass {
				min = j
			}
		}
		e := &rt.sched[min]
		e.pass += e.stride
		ec.Core.Compute(rt.SchedInstr)
		moved += e.task.RunTask(ec)
	}
	ec.Tel.Exit()
	return moved
}

// Tasks returns the schedulable tasks.
func (rt *Router) Tasks() []Task {
	out := make([]Task, len(rt.sched))
	for i := range rt.sched {
		out[i] = rt.sched[i].task
	}
	return out
}
