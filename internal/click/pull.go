// The pull path: Click connects push outputs to push inputs, but also
// supports pull connections, where a downstream element (classically a
// device's transmit side, here Unqueue) *asks* upstream for packets.
// Queues are the push-to-pull boundary. The paper's configurations are
// full-push (FastClick's preferred mode), but the framework supports both
// so queueing NFs can be expressed.
package click

import (
	"fmt"

	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
)

// PullElement is implemented by elements whose outputs are pull ports
// (Queue). Pull returns up to max packets from output port.
type PullElement interface {
	Pull(ec *ExecCtx, port int, max int) *pktbuf.Batch
}

// PullConsumer is implemented by elements whose inputs are pull ports
// (Unqueue): they drive their upstream by pulling rather than being
// pushed into.
type PullConsumer interface {
	PullsInput(port int) bool
}

// InputPort is the wired upstream reference a pull consumer uses; the
// mirror of OutputPort with the same dispatch cost model.
type InputPort struct {
	From     *Instance
	FromPort int
	Kind     machine.CallKind
	ConnAddr memsim.Addr
	Embedded bool
}

// Pull asks the upstream element for up to max packets, charging dispatch
// like a push hand-off in the opposite direction.
func (ip *InputPort) Pull(ec *ExecCtx, max int) *pktbuf.Batch {
	core := ec.Core
	if !ip.Embedded {
		core.Load(ip.ConnAddr, 16)
	}
	core.Call(ip.Kind, ip.From.State.Base)
	pe, ok := ip.From.El.(PullElement)
	if !ok {
		// Build validates this; a miss here is a program bug.
		panic(fmt.Sprintf("click: pull from non-pull element %s", ip.From.Name))
	}
	return pe.Pull(ec, ip.FromPort, max)
}

// Input returns inst's wired input port i (nil when unconnected).
func (inst *Instance) Input(i int) *InputPort {
	if i < 0 || i >= len(inst.Inputs) {
		return nil
	}
	return inst.Inputs[i]
}

// validatePullAgreement checks every connection's push/pull agreement:
// a pull output (PullElement) may only feed a pull input (PullConsumer),
// and vice versa — Click's configure-time port-kind check.
func validatePullAgreement(rt *Router, g *Graph) error {
	for _, c := range g.Conns {
		from := rt.byName[c.From]
		to := rt.byName[c.To]
		_, fromPull := from.El.(PullElement)
		toPull := false
		if pc, ok := to.El.(PullConsumer); ok {
			toPull = pc.PullsInput(c.ToPort)
		}
		if fromPull != toPull {
			kind := map[bool]string{true: "pull", false: "push"}
			return fmt.Errorf("click: %s[%d] (%s output) -> [%d]%s (%s input): port kinds disagree",
				c.From, c.FromPort, kind[fromPull], c.ToPort, c.To, kind[toPull])
		}
	}
	return nil
}
