package click

import "testing"

// FuzzParse guards the configuration front end: arbitrary input must
// either parse cleanly or return an error — never panic — and whatever
// parses must re-parse from its normalized form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"input :: FromDPDKDevice(PORT 0, BURST 32);\ninput -> EtherMirror -> output;",
		"a :: X; b :: Y; a[1] -> [0]b;",
		"x :: Classifier(12/0806 20/0001, -);",
		"/* c */ a :: B(1,2,(3,4)); a -> C(5) -> a;",
		"a :: B;;; a -> b :: C;",
		"",
		"-> ;",
		"a :: B(",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(g.String()); err != nil {
			t.Fatalf("normalized form does not re-parse: %v\noriginal: %q\nnormalized: %q",
				err, src, g.String())
		}
	})
}
