package click

import (
	"strings"
	"testing"
)

func TestParseDeclarationsAndChain(t *testing.T) {
	g, err := Parse(`
// a comment
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherMirror -> output;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Elements) != 3 {
		t.Fatalf("%d elements", len(g.Elements))
	}
	in := g.Element("input")
	if in == nil || in.Class != "FromDPDKDevice" {
		t.Fatalf("input decl: %+v", in)
	}
	if len(in.Args) != 3 || in.Args[0] != "PORT 0" || in.Args[2] != "BURST 32" {
		t.Fatalf("args: %v", in.Args)
	}
	if len(g.Conns) != 2 {
		t.Fatalf("%d conns", len(g.Conns))
	}
	if g.Conns[0].From != "input" || !strings.HasPrefix(g.Conns[0].To, "EtherMirror@") {
		t.Fatalf("conn 0: %+v", g.Conns[0])
	}
	anon := g.Element(g.Conns[0].To)
	if anon == nil || !anon.Anonymous || anon.Class != "EtherMirror" {
		t.Fatalf("anon: %+v", anon)
	}
}

func TestParsePorts(t *testing.T) {
	g, err := Parse(`
c :: Classifier(12/0806, -);
d :: Discard;
e :: Discard;
c[0] -> d;
c[1] -> [0]e;
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Conns[0].FromPort != 0 || g.Conns[1].FromPort != 1 || g.Conns[1].ToPort != 0 {
		t.Fatalf("ports: %+v", g.Conns)
	}
}

func TestParseInlineElementWithArgs(t *testing.T) {
	g, err := Parse(`
a :: Discard;
b :: Discard;
a -> Paint(3) -> b;
`)
	if err != nil {
		t.Fatal(err)
	}
	var paint *ElementDecl
	for _, e := range g.Elements {
		if e.Class == "Paint" {
			paint = e
		}
	}
	if paint == nil || len(paint.Args) != 1 || paint.Args[0] != "3" {
		t.Fatalf("paint: %+v", paint)
	}
}

func TestParseBlockComments(t *testing.T) {
	g, err := Parse(`
/* multi
   line */ x :: Discard;
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Element("x") == nil {
		t.Fatal("declaration after block comment lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`x :: ;`,                      // missing class
		`x :: Discard`,                // missing semicolon
		`a -> b;`,                     // undeclared lowercase elements
		`x :: Discard; x :: Discard;`, // redeclared
		`x :: Discard; x;`,            // single-endpoint connection
		`x :: Broken(`,                // unterminated args
		`/* unterminated`,             // unterminated comment
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"PORT 0, BURST 32", []string{"PORT 0", "BURST 32"}},
		{"", nil},
		{"a(b,c), d", []string{"a(b,c)", "d"}},
		{"12/0806 20/0001, -", []string{"12/0806 20/0001", "-"}},
	}
	for _, c := range cases {
		got := SplitArgs(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitArgs(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitArgs(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestKeywordArgs(t *testing.T) {
	kw, pos := KeywordArgs([]string{"PORT 0", "BURST 32", "10.0.0.0/8 1"})
	if kw["PORT"] != "0" || kw["BURST"] != "32" {
		t.Fatalf("kw: %v", kw)
	}
	if len(pos) != 1 || pos[0] != "10.0.0.0/8 1" {
		t.Fatalf("pos: %v", pos)
	}
}

func TestGraphStringRoundTrips(t *testing.T) {
	src := `
input :: FromDPDKDevice(PORT 0);
output :: ToDPDKDevice(PORT 0);
input -> output;
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(g.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, g.String())
	}
	if len(g2.Elements) != len(g.Elements) || len(g2.Conns) != len(g.Conns) {
		t.Fatal("round trip changed the graph")
	}
}

func TestOptLevelStrings(t *testing.T) {
	if (OptLevel{}).String() != "vanilla" {
		t.Fatal("vanilla string")
	}
	s := AllOpts().String()
	for _, want := range []string{"devirtualize", "constembed", "staticgraph", "reorder"} {
		if !strings.Contains(s, want) {
			t.Fatalf("AllOpts string missing %s: %s", want, s)
		}
	}
}

func TestMetadataModelStrings(t *testing.T) {
	if Copying.String() != "copying" || Overlaying.String() != "overlaying" || XChange.String() != "x-change" {
		t.Fatal("model strings")
	}
}
