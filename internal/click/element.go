// Element runtime: the push-port execution model, the element registry,
// and the dispatch machinery whose cost structure PacketMill's passes
// transform.
package click

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"packetmill/internal/dpdk"
	"packetmill/internal/layout"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/pktbuf"
	"packetmill/internal/telemetry"
)

// MetadataModel selects how the framework manages packet metadata (§2.2).
type MetadataModel int

// The three models of Figure 2, in the paper's order.
const (
	// Copying: driver fills rte_mbuf; the framework copies the useful
	// fields into its own Packet descriptor (FastClick default).
	Copying MetadataModel = iota
	// Overlaying: the framework descriptor overlays the rte_mbuf
	// (FastClick-Light / BESS style).
	Overlaying
	// XChange: the driver writes the framework descriptor directly and
	// exchanges buffers with the application (PacketMill).
	XChange
)

func (m MetadataModel) String() string {
	switch m {
	case Copying:
		return "copying"
	case Overlaying:
		return "overlaying"
	case XChange:
		return "x-change"
	}
	return "?"
}

// OptLevel records which PacketMill source-code optimizations are applied
// to a build. The zero value is the vanilla binary.
type OptLevel struct {
	// Devirtualize replaces virtual element calls with direct calls
	// (click-devirtualize).
	Devirtualize bool
	// ConstEmbed embeds constant element parameters into the code.
	ConstEmbed bool
	// StaticGraph allocates elements statically & contiguously and
	// inlines the fully-known call graph.
	StaticGraph bool
	// ReorderMeta applies the IR pass reordering the metadata struct by
	// the NF's access profile (Copying model only, like the paper).
	ReorderMeta bool
}

// AllOpts returns every source-code optimization enabled.
func AllOpts() OptLevel {
	return OptLevel{Devirtualize: true, ConstEmbed: true, StaticGraph: true, ReorderMeta: true}
}

// String renders the enabled passes ("vanilla" when none).
func (o OptLevel) String() string {
	var parts []string
	if o.Devirtualize {
		parts = append(parts, "devirtualize")
	}
	if o.ConstEmbed {
		parts = append(parts, "constembed")
	}
	if o.StaticGraph {
		parts = append(parts, "staticgraph")
	}
	if o.ReorderMeta {
		parts = append(parts, "reorder")
	}
	if len(parts) == 0 {
		return "vanilla"
	}
	return strings.Join(parts, "+")
}

// CallKind returns the dispatch flavour this optimization level gives
// element hand-offs.
func (o OptLevel) CallKind() machine.CallKind {
	switch {
	case o.StaticGraph:
		return machine.CallInlined
	case o.Devirtualize:
		return machine.CallDirect
	default:
		return machine.CallVirtual
	}
}

// ExecCtx is threaded through every Push: the core to charge, the current
// simulated time, and the build's execution parameters.
type ExecCtx struct {
	Core *machine.Core
	Now  float64
	Rt   *Router
	// Tel attributes charged work to datapath spans; nil (the default)
	// disables attribution at the cost of one branch per hook.
	Tel *telemetry.Tracker
}

// Element is the behaviour contract. Elements process batches arriving on
// an input port and push results through their output ports.
type Element interface {
	// Class returns the Click class name.
	Class() string
	// Configure parses arguments at build time.
	Configure(args []string, bc *BuildCtx) error
	// Push processes a batch arriving on input port.
	Push(ec *ExecCtx, port int, b *pktbuf.Batch)
	// NOutputs/NInputs bound the port numbers (‑1 = unlimited).
	NOutputs() int
	NInputs() int
}

// BatchElement is implemented by elements that process whole batches
// natively; others are driven packet-at-a-time through a virtual
// simple_action in the vanilla binary, which is exactly the per-packet
// dispatch cost click-devirtualize removes.
type BatchElement interface {
	BatchAware() bool
}

// Task is implemented by source elements the driver schedules
// (FromDPDKDevice).
type Task interface {
	// RunTask polls once; returns work done (packets moved).
	RunTask(ec *ExecCtx) int
}

// factory builds a fresh element of a class.
type factory func() Element

var registry = map[string]factory{}

// Register adds an element class to the global registry; element packages
// call this from init().
func Register(class string, f factory) {
	if _, dup := registry[class]; dup {
		panic(fmt.Sprintf("click: element class %q registered twice", class))
	}
	registry[class] = f
}

// NewElement instantiates a registered class.
func NewElement(class string) (Element, error) {
	f, ok := registry[class]
	if !ok {
		return nil, fmt.Errorf("click: unknown element class %q", class)
	}
	return f(), nil
}

// IsSourceClass reports whether class is a schedulable source element
// (implements Task and has no inputs) — what graph analyses use as
// reachability roots. Sink-side tasks (e.g. ToDPDKDevice's TX flush)
// are schedulable but originate no packets.
func IsSourceClass(class string) bool {
	f, ok := registry[class]
	if !ok {
		return false
	}
	el := f()
	_, isTask := el.(Task)
	return isTask && el.NInputs() <= 0
}

// IsTaskClass reports whether class is schedulable (implements Task),
// source or sink side. The driver's round-robin order follows the
// declaration order of these elements, so graph-layout passes must keep
// their relative order to leave scheduling untouched.
func IsTaskClass(class string) bool {
	f, ok := registry[class]
	if !ok {
		return false
	}
	_, isTask := f().(Task)
	return isTask
}

// Classes returns the registered class names, sorted.
func Classes() []string {
	out := make([]string, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Instance is one wired element: behaviour + placement + ports.
type Instance struct {
	Name  string
	El    Element
	State memsim.Object // element object placement (heap or static)
	// Outputs are the wired output ports.
	Outputs []*OutputPort
	// Inputs are the wired upstream references (used by pull consumers).
	Inputs []*InputPort
	// NIn is the wired input-port count.
	NIn int
	// batchAware caches the BatchElement query.
	batchAware bool
	// paramAddrs are the simulated addresses of the element's stored
	// configuration parameters (loaded per run unless const-embedded).
	paramAddrs []memsim.Addr
}

// OutputPort carries a batch to the next element, charging dispatch
// according to the build's optimization level — the load-bearing indirection
// of the whole reproduction.
type OutputPort struct {
	To     *Instance
	ToPort int
	// Kind is the dispatch flavour (set by the mill's passes).
	Kind machine.CallKind
	// ConnAddr is the connection record Click's dynamic graph walks
	// (heap-allocated Port object); the static graph embeds connections
	// in code and skips it.
	ConnAddr memsim.Addr
	// Embedded marks a static-graph connection (no record to read).
	Embedded bool
}

// Push hands a batch to the downstream element.
//
// Cost model, mirroring FastClick's generated code:
//   - dynamic graph: read the connection record, then dispatch
//     (virtual in vanilla, direct after click-devirtualize);
//   - static graph: the connection is a compile-time constant and the
//     callee body is inlined — no record read, no call;
//   - non-batch-aware callees additionally pay a per-packet virtual
//     simple_action dispatch in the vanilla binary (devirtualization
//     turns those into direct calls; the static graph inlines them).
func (op *OutputPort) Push(ec *ExecCtx, b *pktbuf.Batch) {
	if b.Empty() {
		return
	}
	core := ec.Core
	if !op.Embedded {
		core.Load(op.ConnAddr, 16)
	}
	core.Call(op.Kind, op.To.State.Base)
	if !op.To.batchAware && op.Kind != machine.CallInlined {
		perPkt := op.Kind
		for i := 0; i < b.Count(); i++ {
			core.Call(perPkt, op.To.State.Base)
		}
	}
	// Per-packet hand-off overhead: the generic push path (batch list
	// maintenance, annotation bookkeeping, bounds checks). Constant
	// embedding trims the loop; the static graph's inlining lets the
	// compiler elide most of it, including the pipeline bubbles.
	instr, bubble := ec.Rt.HopCost()
	n := float64(b.Count())
	core.Compute(instr * n)
	core.Cycles(bubble * n)
	// The callee body runs under its own span so graph-walk profiles
	// attribute cycles to the element that spends them; the hand-off cost
	// above stays with the caller, like a call instruction in perf.
	ec.Tel.Enter(telemetry.StageEngine, op.To.Name)
	ec.Tel.AddPackets(b.Count())
	op.To.El.Push(ec, op.ToPort, b)
	ec.Tel.Exit()
}

// Output pushes b out of inst's port i; elements call this from Push.
func (inst *Instance) Output(ec *ExecCtx, i int, b *pktbuf.Batch) {
	if i < 0 || i >= len(inst.Outputs) || inst.Outputs[i] == nil {
		// Unconnected output: Click discards (with a warning at config
		// time); we silently drop and recycle nothing — the packets
		// are lost to the run, like a dangling port.
		return
	}
	inst.Outputs[i].Push(ec, b)
}

// LoadParam charges the read of stored parameter idx unless the build
// embedded constants; it returns nothing because parameter *values* are
// host-side state in each element — only the cost is modelled.
func (inst *Instance) LoadParam(ec *ExecCtx, idx int) {
	if ec.Rt.Opt.ConstEmbed {
		return
	}
	if idx < len(inst.paramAddrs) {
		ec.Core.Load(inst.paramAddrs[idx], 8)
	}
}

// TouchState charges a read of [off, off+n) of the element's own state.
func (inst *Instance) TouchState(ec *ExecCtx, off, n uint64) {
	ec.Core.Load(inst.State.Base+memsim.Addr(off), n)
}

// StoreState charges a write of [off, off+n) of the element's own state.
func (inst *Instance) StoreState(ec *ExecCtx, off, n uint64) {
	ec.Core.Store(inst.State.Base+memsim.Addr(off), n)
}

// Base provides the boilerplate every element embeds: a back-pointer to
// its wired Instance and permissive default port bounds.
type Base struct {
	Inst *Instance
}

// InitBase records the instance; elements call it first in Configure.
func (b *Base) InitBase(bc *BuildCtx) { b.Inst = bc.Self }

// NInputs defaults to unlimited.
func (b *Base) NInputs() int { return -1 }

// NOutputs defaults to unlimited.
func (b *Base) NOutputs() int { return -1 }

// CheckedOutput pushes batch out of port i when that port is wired, and
// kills it otherwise — Click's convention for "bad packet" ports.
func (b *Base) CheckedOutput(ec *ExecCtx, i int, batch *pktbuf.Batch) {
	if batch.Empty() {
		return
	}
	if i < len(b.Inst.Outputs) && b.Inst.Outputs[i] != nil {
		b.Inst.Outputs[i].Push(ec, batch)
		return
	}
	ec.Rt.Kill(ec, batch)
}

// BuildCtx is what elements see while configuring: placement arenas, DPDK
// ports, the metadata model, and shared facilities.
type BuildCtx struct {
	Heap   *memsim.Heap
	Static *memsim.Arena
	Huge   *memsim.Arena
	// UseStatic places element state in the static arena (StaticGraph).
	UseStatic bool
	// Ports maps DPDK port numbers to PMD ports.
	Ports map[int]*dpdk.Port
	// Model is the metadata-management model of this build.
	Model MetadataModel
	// PacketPool is the framework descriptor pool (Copying model).
	PacketPool *PacketPool
	// MetaLayout is the framework Packet layout in use.
	MetaLayout *layout.Layout
	// Prof receives the metadata access profile when profiling is on.
	Prof *layout.OrderProfile
	// Self is the instance being configured (set by the builder before
	// Configure runs) so elements can allocate state through it.
	Self *Instance
	// Rand seed for elements that need deterministic randomness.
	Seed uint64
	// Prewarm, when non-nil, installs a long-lived region into the LLC
	// as initialization-phase state (see cache.System.Prewarm).
	Prewarm func(addr memsim.Addr, size uint64)
}

// AllocState places the element object (base state + extra bytes) and
// records parameter slots. Click's Element base object is ~160 B; extra
// is element-specific state.
func (bc *BuildCtx) AllocState(extra uint64, nParams int) memsim.Object {
	const elementBaseBytes = 160
	size := elementBaseBytes + extra
	var base memsim.Addr
	if bc.UseStatic {
		base = bc.Static.Alloc(size, memsim.CacheLineSize)
	} else {
		base = bc.Heap.Alloc(size)
	}
	obj := memsim.Object{Base: base, Size: size}
	bc.Self.State = obj
	bc.Self.paramAddrs = nil
	for i := 0; i < nParams; i++ {
		bc.Self.paramAddrs = append(bc.Self.paramAddrs, base+memsim.Addr(64+8*i))
	}
	return obj
}

// AllocAux places a bulk auxiliary region (tables, pools) owned by the
// element. Big tables always live off the element object; placement
// follows the same static/heap decision.
func (bc *BuildCtx) AllocAux(size uint64) memsim.Addr {
	if bc.UseStatic {
		return bc.Static.Alloc(size, memsim.CacheLineSize)
	}
	return bc.Heap.Alloc(size)
}

// ParseInt parses a Click integer argument.
func ParseInt(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("click: bad integer %q", s)
	}
	return v, nil
}
