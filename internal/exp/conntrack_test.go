package exp

import "testing"

// The conntrack exhibit's shape: the shard table must hold its full
// population at every capacity and drain the mass-expiry storm within
// the budgeted-sweep bound; the datapath table must show the eviction
// policy's signature (flood absorbed by embryonic evictions only) and
// the NAT recycling ports under churn.
func TestConntrackShape(t *testing.T) {
	tbs := runExp(t, "conntrack")
	scaleT, churnT := tbs[0], tbs[1]

	if len(scaleT.Rows) != 3 {
		t.Fatalf("scale table has %d rows, want 3", len(scaleT.Rows))
	}
	for _, r := range scaleT.Rows {
		capN := cell(t, scaleT, map[int]string{0: r[0]}, 0)
		held := cell(t, scaleT, map[int]string{0: r[0]}, 1)
		exps := cell(t, scaleT, map[int]string{0: r[0]}, 2)
		sweeps := cell(t, scaleT, map[int]string{0: r[0]}, 5)
		if held < capN*0.99 {
			t.Errorf("capacity %v: held only %v flows", capN, held)
		}
		if exps+cell(t, scaleT, map[int]string{0: r[0]}, 3) < capN {
			t.Errorf("capacity %v: storm left flows unaged (%v expired)", capN, exps)
		}
		// The budget (256/sweep) bounds how long a full-table storm can
		// take; leave slack for cascades and partial sweeps.
		if sweeps > capN/256*4+64 {
			t.Errorf("capacity %v: drain took %v sweeps", capN, sweeps)
		}
	}

	if len(churnT.Rows) != 4 {
		t.Fatalf("churn table has %d rows, want 4", len(churnT.Rows))
	}
	for _, sc := range []string{"churn", "syn-flood", "expiry-storm", "nat-churn"} {
		entries := cell(t, churnT, map[int]string{0: sc}, 3)
		capN := cell(t, churnT, map[int]string{0: sc}, 4)
		if entries > capN {
			t.Errorf("%s: occupancy %v exceeds capacity %v", sc, entries, capN)
		}
		if p99 := cell(t, churnT, map[int]string{0: sc}, 2); p99 <= 0 {
			t.Errorf("%s: p99 latency %v µs not measured", sc, p99)
		}
	}
	// The flood's pressure lands on embryonic entries; the protected
	// established population survives untouched.
	if emb := cell(t, churnT, map[int]string{0: "syn-flood"}, 7); emb == 0 {
		t.Error("syn-flood: no embryonic evictions")
	}
	if est := cell(t, churnT, map[int]string{0: "syn-flood"}, 8); est != 0 {
		t.Errorf("syn-flood: %v established connections cannibalized", est)
	}
	// The storm's waves age out instead of accumulating.
	if exps := cell(t, churnT, map[int]string{0: "expiry-storm"}, 6); exps == 0 {
		t.Error("expiry-storm: nothing expired")
	}
	// The NAT leak fix: churn recycles ports instead of filling forever.
	if rec := cell(t, churnT, map[int]string{0: "nat-churn"}, 11); rec == 0 {
		t.Error("nat-churn: no ports recycled")
	}
}
