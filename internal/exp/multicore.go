// Experiment: the per-core run-to-completion wire datapath. Not a paper
// figure — a scaling exhibit for this repository's multicore wire
// backend: N independent cores, each owning its own socket queue pair,
// buffer pool, and Click graph replica, with zero hot-path sharing.
// Table one measures aggregate forwarding throughput from 1 to 4 cores
// over live socketpairs; table two drives the software-RSS fanout with
// one elephant flow and shows the mice-migration fallback flattening the
// skew a static indirection table would lock in. Unlike the simulated
// exhibits, throughput here is wall-clock over real sockets, so absolute
// numbers (and the scaling ratio, on a starved host) vary with the
// machine; the skew table is deterministic.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/netpkt"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/testbed"
	"packetmill/internal/wire"
)

func init() {
	register("multicore", "per-core run-to-completion wire datapath: core scaling + RSS-skew fallback", multicoreExhibit)
}

// mcCoreCounts is the scaling axis: every core count the exhibit serves.
var mcCoreCounts = []int{1, 2, 4}

// mcFrame builds one minimum-size IPv4/UDP frame whose flow identity (and
// therefore RSS hash) is the source port.
func mcFrame(flow uint16) []byte {
	return netpkt.BuildUDP(make([]byte, 64), netpkt.UDPPacketSpec{
		SrcMAC:  netpkt.MAC{0x02, 0, 0, 0, 0, 1},
		DstMAC:  netpkt.MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP:   netpkt.IPv4{10, 0, 0, 1},
		DstIP:   netpkt.IPv4{10, 0, 0, 2},
		SrcPort: flow,
		DstPort: 9,
	})
}

func multicoreExhibit(scale float64) *Plan {
	scaling := &Table{
		ID:    "multicore",
		Title: "run-to-completion wire datapath: aggregate throughput vs cores (EtherMirror, 64B)",
		Columns: []string{"cores", "frames", "elapsed_ms", "agg_kpps",
			"per_core_kpps", "speedup"},
	}
	skew := &Table{
		ID:      "multicore-skew",
		Title:   "software-RSS fanout, one elephant flow at 50% load: static table vs mice migration (share over final window)",
		Columns: []string{"table", "queues", "frames", "bucket_moves", "hot_queue_share"},
	}
	p := &Plan{Tables: []*Table{scaling, skew}}

	// The wire exhibits measure wall clock, so the budget floor is about
	// syscall-noise amortization, not statistical confidence.
	perCore := int(2500 * scale)
	if perCore < 600 {
		perCore = 600
	}

	// One unit for everything: the scaling rows time real work, and a
	// sibling unit on another worker would steal the cycles being timed.
	p.Unit(func(u *U) {
		var base float64
		for _, cores := range mcCoreCounts {
			elapsed, frames, err := mcServe(cores, perCore, u.Seed)
			if err != nil {
				panic(fmt.Sprintf("multicore %d-core serve: %v", cores, err))
			}
			kpps := float64(frames) / elapsed / 1e3
			if base == 0 {
				base = kpps
			}
			u.Add(fmt.Sprint(cores), fmt.Sprint(frames),
				f1(elapsed*1e3), f1(kpps), f1(kpps/float64(cores)), f2(kpps/base))
		}

		staticHot, steadyHot, moves, total, err := mcSkew()
		if err != nil {
			panic(fmt.Sprintf("multicore skew: %v", err))
		}
		u.AddTo(1, "static", "2", fmt.Sprint(total), "0",
			f1(staticHot*100)+"%")
		u.AddTo(1, "rebalanced", "2", fmt.Sprint(total),
			fmt.Sprint(moves), f1(steadyHot*100)+"%")
	})
	return p
}

// mcServe stands up `cores` independent loopback segments, serves the
// EtherMirror graph with one run-to-completion pipeline per core, and
// pushes perCore frames through each from concurrent generators. Returns
// the wall-clock serving time and the frames actually processed.
func mcServe(cores, perCore int, seed uint64) (elapsedSec float64, frames uint64, err error) {
	gens := make([]*wire.Port, cores)
	devsPerCore := make([][]nic.Port, cores)
	defer func() {
		for _, g := range gens {
			if g != nil {
				g.Close()
			}
		}
		for _, devs := range devsPerCore {
			for _, d := range devs {
				d.(*wire.Port).Close()
			}
		}
	}()
	for c := 0; c < cores; c++ {
		gen, dut, lerr := wire.Loopback(
			wire.Config{Name: fmt.Sprintf("gen%d", c), RXRing: 512, TXRing: 512},
			wire.Config{Name: fmt.Sprintf("wire%d", c), Queue: c, RXRing: 512, TXRing: 512})
		if lerr != nil {
			return 0, 0, lerr
		}
		gens[c] = gen
		devsPerCore[c] = []nic.Port{dut}
		for i := 0; i < 512; i++ {
			if perr := gen.Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); perr != nil {
				return 0, 0, perr
			}
		}
	}
	g, err := click.Parse(nf.Mirror(0, 32))
	if err != nil {
		return 0, 0, err
	}

	// 64 flows so the frames spread across RSS buckets like real traffic.
	flows := make([][]byte, 64)
	for i := range flows {
		flows[i] = mcFrame(uint16(1000 + i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	total := uint64(cores) * uint64(perCore)
	start := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) { // generator: enqueue, then reap the completion
			defer wg.Done()
			tx := pktbuf.NewPacket(make([]byte, 2300), 0, 128)
			reap := make([]*pktbuf.Packet, 1)
			for i := 0; i < perCore; i++ {
				tx.Reset(tx.OrigHeadroom())
				tx.SetFrame(flows[i%len(flows)])
				for !gens[c].Enqueue(nil, tx, 0) {
					runtime.Gosched()
				}
				for gens[c].Reap(0, reap) == 0 {
					runtime.Gosched()
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) { // capture: recycle RX buffers so the DUT never stalls
			defer wg.Done()
			pkts := make([]*pktbuf.Packet, 32)
			descs := make([]nic.Descriptor, 32)
			for {
				n := gens[c].Poll(nil, 0, len(pkts), pkts, descs)
				for i := 0; i < n; i++ {
					if gens[c].Post(pkts[i]) != nil {
						return
					}
				}
				if n == 0 {
					select {
					case <-stop:
						return
					default:
						runtime.Gosched()
					}
				}
			}
		}(c)
	}
	_, st, err := testbed.ServeWireGraphPerCore(ctx, g,
		testbed.Options{Model: click.XChange, Seed: seed},
		devsPerCore, 2*time.Second, total)
	elapsedSec = time.Since(start).Seconds()
	close(stop)
	wg.Wait()
	if err != nil {
		return 0, 0, err
	}
	return elapsedSec, st.Packets, nil
}

// mcSkew drives the 2-queue fanout with an elephant flow carrying half
// the load and 64 mice sharing the rest, long enough for the
// mice-migration fallback to converge. Returns the hottest queue's
// offered share under a static indirection table (predicted by hashing
// the same sequence — identical every window, since the mix repeats) and
// under the live rebalancer over the final window, plus the number of
// bucket migrations performed.
func mcSkew() (staticHot, steadyHot float64, moves uint64, total int, err error) {
	rxNear, rxFar, err := wire.Socketpair()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	txNear, txFar, err := wire.Socketpair()
	if err != nil {
		rxNear.Close()
		rxFar.Close()
		return 0, 0, 0, 0, err
	}
	defer rxFar.Close()
	defer txFar.Close()
	const queues = 2
	f := wire.NewFanout(wire.Config{Name: "rss", RXRing: 64, TXRing: 64},
		queues, rxNear, txNear)
	defer f.Close()

	elephant := mcFrame(7)
	mice := make([][]byte, 64)
	for i := range mice {
		mice[i] = mcFrame(uint16(2000 + i))
	}
	pick := func(i int) []byte {
		if i%2 == 0 {
			return elephant
		}
		return mice[(i/2)%len(mice)]
	}

	offered := func() (per [queues]uint64, sum uint64) {
		for q := 0; q < queues; q++ {
			s := f.Queue(q).RXStats()
			per[q] = s.Delivered + s.DropFull + s.DropRunt
			sum += per[q]
		}
		return
	}
	var static [queues]uint64
	sent := 0
	feed := func(frames int) error {
		for i := 0; i < frames; i++ {
			frame := pick(sent)
			sent++
			static[int(nic.HashFrame(frame)&(wire.FanoutBuckets-1))%queues]++
			if _, werr := rxFar.Write(frame); werr != nil {
				return werr
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			if _, sum := offered(); sum >= uint64(sent) {
				return nil
			}
			if time.Now().After(deadline) {
				_, sum := offered()
				return fmt.Errorf("fanout consumed %d of %d frames", sum, sent)
			}
			time.Sleep(time.Millisecond)
		}
	}
	max := func(a [queues]uint64) uint64 {
		m := a[0]
		for _, v := range a[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}

	// Five windows converge the table (four moves per window against ~32
	// hot mice buckets), then the final window measures steady state.
	const windows = 6
	total = windows * wire.FanoutWindow
	if err := feed((windows - 1) * wire.FanoutWindow); err != nil {
		return 0, 0, 0, 0, err
	}
	before, _ := offered()
	if err := feed(wire.FanoutWindow); err != nil {
		return 0, 0, 0, 0, err
	}
	after, _ := offered()
	var last [queues]uint64
	for q := range last {
		last[q] = after[q] - before[q]
	}
	staticHot = float64(max(static)) / float64(total)
	steadyHot = float64(max(last)) / float64(wire.FanoutWindow)
	return staticHot, steadyHot, f.Rebalances(), total, nil
}
