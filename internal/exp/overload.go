// Experiment: the overload control plane's shed/latency surface. Not a
// paper figure — a robustness exhibit for this repository's overload
// subsystem: sweep offered load (as a multiple of the DUT's measured
// capacity) against each admission policy and report where the loss
// goes (attributed RX-boundary sheds vs anonymous NIC ring overruns)
// and what happens to the high-priority class's tail latency.
package exp

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/stats"
	"packetmill/internal/testbed"
	"packetmill/internal/trafficgen"
)

func init() {
	register("overload", "overload control plane: policy × offered-factor surface @1.2 GHz", overloadExhibit)
}

// overloadNFCfg is the CPU-bound WorkPackage forwarder the exhibit
// overloads; service time dwarfs poll cost, so admission control (not
// ring depth) decides who gets through.
func overloadNFCfg() string {
	return nf.WorkPackageForwarder(4, 16, 5, 200)
}

// overloadControl is the tuned controller the testbed exhibits use:
// tight watermarks keep the RX ring equilibrium shallow, and the health
// thresholds sit below it so the shedder stays armed through the
// overload.
func overloadControl(policy overload.Policy) *overload.Config {
	return &overload.Config{
		Policy:    policy,
		HighWater: 0.1,
		LowWater:  0.005,
		Health: overload.HealthConfig{
			DegradeOcc:  0.012,
			OverloadOcc: 0.6,
			RecoverOcc:  0.006,
			DwellNS:     5e3,
		},
	}
}

// overloadExhibit sweeps policy × offered factor. Every unit probes its
// own capacity (same seed stream as its runs, so the factor is honest)
// and offers factor× that rate with a 10% high-priority share.
func overloadExhibit(scale float64) *Plan {
	t := &Table{
		ID:    "overload",
		Title: "admission policy × offered load: goodput, loss attribution, hi-class p99",
		Columns: []string{"policy", "offered_factor", "capacity_gbps", "goodput_gbps",
			"sheds", "nic_drops", "hi_p99_us", "transitions", "final_state"},
	}
	p := &Plan{Tables: []*Table{t}}
	policies := []overload.Policy{
		overload.PolicyNone, overload.PolicyTailDrop, overload.PolicyRED, overload.PolicyPriority,
	}
	for _, policy := range policies {
		for _, factor := range []float64{1, 2, 4} {
			policy, factor := policy, factor
			p.Unit(func(u *U) {
				rings := nic.DefaultConfig("overload")
				rings.RXRingSize = 256
				rings.TXRingSize = 256
				probeOpts := campusOpts(1.2, 100, pkts(3000, scale))
				probeOpts.Model = click.XChange
				probeOpts.NICConfig = &rings
				probeOpts.Seed = u.Seed
				probe, err := testbed.Run(overloadNFCfg(), probeOpts)
				if err != nil {
					panic(fmt.Sprintf("overload probe %v: %v", policy, err))
				}
				capGbps := float64(probe.Bytes) * 8 / probe.Duration

				o := campusOpts(1.2, factor*capGbps, pkts(6000, scale))
				o.Model = click.XChange
				o.NICConfig = &rings
				o.Overload = overloadControl(policy)
				o.Seed = u.Seed
				o.Traffic = func(n int, cfg trafficgen.Config) trafficgen.Source {
					return trafficgen.NewPriorityMix(cfg, 0.1, 0xE0)
				}
				res, err := testbed.Run(overloadNFCfg(), o)
				if err != nil {
					panic(fmt.Sprintf("overload %v x%v: %v", policy, factor, err))
				}
				st := res.Overload[0]
				nicDrops := res.DropsByReason.Get(stats.DropRxNoBuf) +
					res.DropsByReason.Get(stats.DropRxRingFull)
				hiP99 := res.ClassLat[7].Quantile(0.99) / 1e3
				u.Add(policy.String(), f1(factor), f1(capGbps), f1(res.Gbps()),
					fmt.Sprint(st.Sheds), fmt.Sprint(nicDrops),
					f2(hiP99), fmt.Sprint(st.Transitions), st.State.String())
			})
		}
	}
	return p
}
