package exp

import (
	"fmt"
	"strings"
	"testing"
)

// renderAll renders every table of an exhibit in both output formats, so
// a byte-compare covers the TSV and the JSON paths.
func renderAll(t *testing.T, tables []*Table) string {
	t.Helper()
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.TSV())
		j, err := tb.JSON()
		if err != nil {
			t.Fatalf("JSON %s: %v", tb.ID, err)
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelDeterminism is the tentpole's guarantee: a parallel run
// must be byte-identical to a serial run, and repeatable. The sample
// covers a plain exhibit (tab1), a PacketMill sweep (abl-burst), and the
// multi-table Finish path (fig4's fits).
func TestParallelDeterminism(t *testing.T) {
	sample := []string{"tab1", "abl-burst", "fig4"}
	if testing.Short() {
		// Keep the race tier fast but still push real exhibits through
		// the worker pool.
		sample = sample[:2]
	}
	for _, id := range sample {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown exhibit %s", id)
		}
		serial := renderAll(t, e.Run(tiny))
		par := renderAll(t, e.RunParallel(tiny, 4))
		if serial != par {
			t.Errorf("%s: parallel output differs from serial", id)
			continue
		}
		par2 := renderAll(t, e.RunParallel(tiny, 4))
		if par != par2 {
			t.Errorf("%s: two parallel runs differ", id)
		}
	}
}

func TestUnitSeedDerivation(t *testing.T) {
	if UnitSeed("fig1", 0) == UnitSeed("fig1", 1) {
		t.Fatal("adjacent units share a seed")
	}
	if UnitSeed("fig1", 0) == UnitSeed("fig2", 0) {
		t.Fatal("distinct exhibits share unit-0 seeds")
	}
	if UnitSeed("fig1", 3) != UnitSeed("fig1", 3) {
		t.Fatal("unit seeds not stable")
	}
}

// TestSchedulerMergeOrder checks units merge by index, not completion
// order, and that Finish sees the fully merged tables.
func TestSchedulerMergeOrder(t *testing.T) {
	tb := &Table{ID: "order", Columns: []string{"i"}}
	var finishRows int
	p := &Plan{Tables: []*Table{tb}}
	const n = 64
	for i := 0; i < n; i++ {
		p.Unit(func(u *U) { u.Add(fmt.Sprint(i)) })
	}
	p.Finish(func() { finishRows = len(tb.Rows) })
	e := Experiment{ID: "order-test", plan: func(float64) *Plan { return p }}
	e.RunParallel(1, 8)
	if finishRows != n {
		t.Fatalf("Finish saw %d rows, want %d", finishRows, n)
	}
	for i, r := range tb.Rows {
		if r[0] != fmt.Sprint(i) {
			t.Fatalf("row %d = %s; merge not in unit order", i, r[0])
		}
	}
}

// TestSchedulerPanic checks a unit panic surfaces from RunParallel just
// like it would from a serial run.
func TestSchedulerPanic(t *testing.T) {
	p := &Plan{Tables: []*Table{{ID: "boom"}}}
	for i := 0; i < 8; i++ {
		p.Unit(func(u *U) {
			if i == 5 {
				panic("unit 5 failed")
			}
		})
	}
	e := Experiment{ID: "panic-test", plan: func(float64) *Plan { return p }}
	defer func() {
		if r := recover(); r != "unit 5 failed" {
			t.Fatalf("recovered %v, want unit 5's panic", r)
		}
	}()
	e.RunParallel(1, 4)
	t.Fatal("panic did not propagate")
}
