// Experiments: Figure 7 (WorkPackage surface), Figure 8 (IDS+router),
// Figure 9 (memory-footprint slice), Figure 10 (multicore NAT),
// Figure 11a/11b (framework comparison).
//
// Exhibits build Plans of independent units in the old serial loop
// order. Paired comparisons (vanilla vs PacketMill in one table cell)
// stay in one unit so both builds see the same derived seed and thus the
// same traffic.
package exp

import (
	"fmt"

	"packetmill/internal/bess"
	"packetmill/internal/click"
	"packetmill/internal/l2fwd"
	"packetmill/internal/layout"
	"packetmill/internal/netpkt"
	"packetmill/internal/nf"
	"packetmill/internal/stats"
	"packetmill/internal/testbed"
	"packetmill/internal/vpp"
)

func init() {
	register("fig7", "WorkPackage improvement surface (W × S, N ∈ {1,5}) @2.3 GHz", fig7)
	register("fig8", "IDS+router: throughput & median latency vs frequency", fig8)
	register("fig9", "memory-footprint slice (N=1, W=4): Gbps, LLC miss %, LLC loads", fig9)
	register("fig10", "multicore NAT: throughput vs cores @2.3 GHz, 1024-B packets", fig10)
	register("fig11a", "DPDK apps vs FastClick/PacketMill per packet size @1.2 GHz", fig11a)
	register("fig11b", "framework comparison per packet size @1.2 GHz", fig11b)
}

// fig7 sweeps WorkPackage's compute (W) and memory (S) intensity for
// N ∈ {1, 5} accesses per packet and reports PacketMill's improvement.
func fig7(scale float64) *Plan {
	t := &Table{
		ID:      "fig7",
		Title:   "PacketMill improvement (%) over vanilla for WorkPackage NFs @2.3 GHz",
		Columns: []string{"n_accesses", "w_randoms", "s_mb", "vanilla_gbps", "packetmill_gbps", "improvement_pct"},
	}
	p := &Plan{Tables: []*Table{t}}
	ws := []int{0, 4, 8, 12, 16, 20}
	ss := []int{0, 1, 2, 4, 8, 16}
	for _, n := range []int{1, 5} {
		for _, w := range ws {
			for _, s := range ss {
				p.Unit(func(u *U) {
					cfg := nf.WorkPackageForwarder(32, s, n, w)
					o := campusOpts(2.3, 100, pkts(6000, scale))
					o.Seed = u.Seed
					van, err := runVanilla(cfg, o)
					if err != nil {
						panic(fmt.Sprintf("fig7 vanilla W=%d S=%d: %v", w, s, err))
					}
					pm, err := runPacketMill(cfg, o)
					if err != nil {
						panic(fmt.Sprintf("fig7 packetmill W=%d S=%d: %v", w, s, err))
					}
					imp := 0.0
					if van.Gbps() > 0 {
						imp = (pm.Gbps() - van.Gbps()) / van.Gbps() * 100
					}
					u.Add(fmt.Sprint(n), fmt.Sprint(w), fmt.Sprint(s),
						f1(van.Gbps()), f1(pm.Gbps()), f1(imp))
				})
			}
		}
	}
	return p
}

// fig8 sweeps frequency for the IDS+router under vanilla and PacketMill.
func fig8(scale float64) *Plan {
	t := &Table{
		ID:      "fig8",
		Title:   "IDS+router: throughput & median latency vs frequency",
		Columns: []string{"variant", "freq_ghz", "throughput_gbps", "median_latency_us"},
	}
	p := &Plan{Tables: []*Table{t}}
	cfg := nf.IDSRouter(32)
	for _, variant := range []string{"vanilla", "packetmill"} {
		for _, f := range freqSweep {
			p.Unit(func(u *U) {
				o := campusOpts(f, 100, pkts(12000, scale))
				o.Seed = u.Seed
				var (
					res *testbed.Result
					err error
				)
				if variant == "vanilla" {
					res, err = runVanilla(cfg, o)
				} else {
					res, err = runPacketMill(cfg, o)
				}
				if err != nil {
					panic(fmt.Sprintf("fig8 %s@%v: %v", variant, f, err))
				}
				u.Add(variant, f1(f), f1(res.Gbps()), f1(stats.MicrosFromNS(res.Latency.Median())))
			})
		}
	}
	return p
}

// fig9 zooms into the N=1, W=4 slice: throughput, LLC load-miss
// percentage, and LLC kilo-loads per 100 ms as the footprint S grows.
func fig9(scale float64) *Plan {
	t := &Table{
		ID:      "fig9",
		Title:   "memory intensiveness (N=1, W=4): throughput, LLC miss %, LLC loads vs S",
		Columns: []string{"variant", "s_mb", "throughput_gbps", "llc_miss_pct", "llc_kilo_loads_100ms"},
	}
	p := &Plan{Tables: []*Table{t}}
	sizes := []int{0, 1, 2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	for _, variant := range []string{"vanilla", "packetmill"} {
		for _, s := range sizes {
			p.Unit(func(u *U) {
				cfg := nf.WorkPackageForwarder(32, s, 1, 4)
				o := campusOpts(2.3, 100, pkts(30000, scale))
				o.Seed = u.Seed
				var (
					res *testbed.Result
					err error
				)
				if variant == "vanilla" {
					res, err = runVanilla(cfg, o)
				} else {
					res, err = runPacketMill(cfg, o)
				}
				if err != nil {
					panic(fmt.Sprintf("fig9 %s S=%d: %v", variant, s, err))
				}
				missPct := 0.0
				if res.Counters.LLCLoads > 0 {
					missPct = float64(res.Counters.LLCLoadMisses) / float64(res.Counters.LLCLoads) * 100
				}
				window := 1e8 / res.Duration
				u.Add(variant, fmt.Sprint(s), f1(res.Gbps()), f1(missPct),
					f1(float64(res.Counters.LLCLoads)*window/1e3))
			})
		}
	}
	return p
}

// fig10 scales the NAT across cores with RSS.
func fig10(scale float64) *Plan {
	t := &Table{
		ID:      "fig10",
		Title:   "NAT: throughput vs core count (1024-B packets, RSS)",
		Columns: []string{"variant", "cores", "throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	cfg := nf.NATRouter(32)
	for _, variant := range []string{"vanilla", "packetmill"} {
		for _, cores := range []int{1, 2, 3, 4} {
			p.Unit(func(u *U) {
				o := campusOpts(2.3, 100, pkts(12000, scale))
				o.Cores = cores
				o.FixedSize = 1024
				o.Seed = u.Seed
				var (
					res *testbed.Result
					err error
				)
				if variant == "vanilla" {
					res, err = runVanilla(cfg, o)
				} else {
					res, err = runPacketMill(cfg, o)
				}
				if err != nil {
					panic(fmt.Sprintf("fig10 %s cores=%d: %v", variant, cores, err))
				}
				u.Add(variant, fmt.Sprint(cores), f1(res.Gbps()))
			})
		}
	}
	return p
}

// fig11a compares FastClick (Copying), l2fwd, PacketMill (X-Change), and
// l2fwd-xchg per packet size at 1.2 GHz. Each app×size cell is one unit.
func fig11a(scale float64) *Plan {
	t := &Table{
		ID:      "fig11a",
		Title:   "DPDK apps vs FastClick/PacketMill per packet size @1.2 GHz",
		Columns: []string{"app", "size_b", "throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	n := pkts(8000, scale)
	for _, size := range sizeSweep {
		// FastClick, Copying model, vanilla.
		p.Unit(func(u *U) {
			fc, err := runVanilla(nf.Forwarder(0, 32), testbed.Options{
				FreqGHz: 1.2, RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed})
			if err != nil {
				panic(err)
			}
			u.Add("fastclick-copying", fmt.Sprint(size), f1(fc.Gbps()))
		})

		// l2fwd: stock DPDK sample.
		p.Unit(func(u *U) {
			l2, err := testbed.RunEngines(testbed.Options{
				FreqGHz: 1.2, Model: click.Copying, RateGbps: 100, Packets: n, FixedSize: size,
				Seed: u.Seed,
			}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
				return l2fwd.New(d.PortsFor[core][0]), nil
			})
			if err != nil {
				panic(err)
			}
			u.Add("l2fwd", fmt.Sprint(size), f1(l2.Gbps()))
		})

		// PacketMill: X-Change + source-code opts.
		p.Unit(func(u *U) {
			pm, err := runPacketMill(nf.Forwarder(0, 32), testbed.Options{
				FreqGHz: 1.2, RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed})
			if err != nil {
				panic(err)
			}
			u.Add("packetmill", fmt.Sprint(size), f1(pm.Gbps()))
		})

		// l2fwd-xchg: the two-field descriptor.
		p.Unit(func(u *U) {
			lx, err := testbed.RunEngines(testbed.Options{
				FreqGHz: 1.2, Model: click.XChange, MetaLayout: layout.MinimalXchg(),
				RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed,
			}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
				return l2fwd.New(d.PortsFor[core][0]), nil
			})
			if err != nil {
				panic(err)
			}
			u.Add("l2fwd-xchg", fmt.Sprint(size), f1(lx.Gbps()))
		})
	}
	return p
}

// fig11b compares VPP, FastClick (Copying), FastClick-Light (Overlaying),
// BESS, and PacketMill per packet size at 1.2 GHz.
func fig11b(scale float64) *Plan {
	t := &Table{
		ID:      "fig11b",
		Title:   "framework comparison per packet size @1.2 GHz",
		Columns: []string{"framework", "size_b", "throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	n := pkts(8000, scale)
	src := netpkt.MAC{0x02, 0, 0, 0, 0, 2}
	dst := netpkt.MAC{0x02, 0, 0, 0, 0, 1}
	for _, size := range sizeSweep {
		// VPP.
		p.Unit(func(u *U) {
			vp, err := testbed.RunEngines(testbed.Options{
				FreqGHz: 1.2, Model: click.Overlaying, MetaLayout: layout.VLIBBuffer(),
				RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed,
			}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
				return vpp.New(d.PortsFor[core][0], vpp.L2Rewrite{Src: src, Dst: dst}), nil
			})
			if err != nil {
				panic(err)
			}
			u.Add("vpp", fmt.Sprint(size), f1(vp.Gbps()))
		})

		// FastClick default (Copying).
		p.Unit(func(u *U) {
			fc, err := runVanilla(nf.Forwarder(0, 32), testbed.Options{
				FreqGHz: 1.2, RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed})
			if err != nil {
				panic(err)
			}
			u.Add("fastclick-copying", fmt.Sprint(size), f1(fc.Gbps()))
		})

		// FastClick-Light (Overlaying).
		p.Unit(func(u *U) {
			fl, err := testbed.Run(nf.Forwarder(0, 32), testbed.Options{
				FreqGHz: 1.2, Model: click.Overlaying,
				RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed})
			if err != nil {
				panic(err)
			}
			u.Add("fastclick-light", fmt.Sprint(size), f1(fl.Gbps()))
		})

		// BESS.
		p.Unit(func(u *U) {
			bs, err := testbed.RunEngines(testbed.Options{
				FreqGHz: 1.2, Model: click.Overlaying,
				RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed,
			}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
				return bess.New(d.PortsFor[core][0], bess.Update{Src: src, Dst: dst}), nil
			})
			if err != nil {
				panic(err)
			}
			u.Add("bess", fmt.Sprint(size), f1(bs.Gbps()))
		})

		// PacketMill.
		p.Unit(func(u *U) {
			pm, err := runPacketMill(nf.Forwarder(0, 32), testbed.Options{
				FreqGHz: 1.2, RateGbps: 100, Packets: n, FixedSize: size, Seed: u.Seed})
			if err != nil {
				panic(err)
			}
			u.Add("packetmill", fmt.Sprint(size), f1(pm.Gbps()))
		})
	}
	return p
}
