package exp

import (
	"os"
	"strconv"
	"testing"
)

// TestAblPGOShape checks structure and the ungated invariants: every row
// equivalent, the pass-delta table populated, fusion shrinking the graph.
// The throughput ordering (fused ≥ static) is asserted by the armed gate
// and by benchcheck; at tiny scale it holds too but the gate owns it.
func TestAblPGOShape(t *testing.T) {
	tbs := runExp(t, "abl-pgo")
	if len(tbs) != 2 {
		t.Fatalf("abl-pgo produced %d tables, want 2", len(tbs))
	}
	perf, deltas := tbs[0], tbs[1]
	if len(perf.Rows) != len(pgoVariants) {
		t.Fatalf("perf table has %d rows, want %d", len(perf.Rows), len(pgoVariants))
	}
	for _, r := range perf.Rows {
		if r[4] != "yes" {
			t.Errorf("build %s not byte-equivalent to vanilla: %s", r[0], r[4])
		}
		if g := cell(t, perf, map[int]string{0: r[0]}, 1); g <= 0 {
			t.Errorf("build %s throughput %.1f, want positive", r[0], g)
		}
	}
	if len(deltas.Rows) == 0 {
		t.Fatal("pass-delta table empty; static+all recorded no PassStats")
	}
	var sawFuse bool
	for _, r := range deltas.Rows {
		if r[0] == "fuse" {
			sawFuse = true
			before, _ := strconv.Atoi(r[1])
			after, _ := strconv.Atoi(r[2])
			if after >= before {
				t.Errorf("fuse pass did not shrink the graph: %d -> %d", before, after)
			}
		}
	}
	if !sawFuse {
		t.Errorf("no fuse row in pass-delta table: %v", deltas.Rows)
	}
	// The fused build's element count is strictly below the static mill's.
	es := cell(t, perf, map[int]string{0: "static-mill"}, 3)
	ea := cell(t, perf, map[int]string{0: "static+all"}, 3)
	if ea >= es {
		t.Errorf("static+all has %d elements, static-mill %d — fusion vacuous", int(ea), int(es))
	}
}

// TestMillAblationGate is the armed acceptance bar for the profile-guided
// mill, run by the dedicated CI job: the combined feedback passes must
// beat the static mill on throughput while every variant stays
// byte-equivalent. The exhibit tables (including the per-pass delta
// table) land in PACKETMILL_MILL_ABLATION_ARTIFACTS either way; CI
// uploads them when the gate fails.
func TestMillAblationGate(t *testing.T) {
	if os.Getenv("PACKETMILL_MILL_ABLATION_GATE") != "1" {
		t.Skip("mill ablation gate disarmed; set PACKETMILL_MILL_ABLATION_GATE=1")
	}
	tbs := runExp(t, "abl-pgo")
	if dir := os.Getenv("PACKETMILL_MILL_ABLATION_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
		} else {
			for _, tb := range tbs {
				path := dir + "/" + tb.ID + ".tsv"
				if err := os.WriteFile(path, []byte(tb.TSV()), 0o644); err != nil {
					t.Logf("artifact %s: %v", path, err)
				}
			}
		}
	}
	perf := tbs[0]
	for _, r := range perf.Rows {
		if r[4] != "yes" {
			t.Errorf("build %s not byte-equivalent to vanilla: %s", r[0], r[4])
		}
	}
	static := cell(t, perf, map[int]string{0: "static-mill"}, 2)
	all := cell(t, perf, map[int]string{0: "static+all"}, 2)
	if all < static {
		t.Errorf("profile-guided build %.2f Mpps/core < static mill %.2f — feedback passes lost throughput", all, static)
	}
}
