// Package exp regenerates every table and figure of the paper's
// evaluation (§4): each Experiment runs the corresponding workloads on
// the simulated testbed and reports the same rows/series the paper plots.
// Absolute numbers come from a simulator, not the authors' Xeon testbed;
// the shapes — who wins, by what factor, where the knees fall — are the
// reproduction targets (see EXPERIMENTS.md).
package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/core"
	_ "packetmill/internal/elements"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

// Table is one reproduced exhibit.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Add appends a formatted row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// TSV renders the table as tab-separated values with a header.
func (t *Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table with each row keyed by column name, so exhibit
// files can be consumed without re-parsing the TSV header.
func (t *Table) JSON() ([]byte, error) {
	out := struct {
		ID      string              `json:"id"`
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}{ID: t.ID, Title: t.Title, Columns: t.Columns}
	for _, r := range t.Rows {
		m := make(map[string]string, len(t.Columns))
		for i, col := range t.Columns {
			if i < len(r) {
				m[col] = r[i]
			}
		}
		out.Rows = append(out.Rows, m)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Experiment produces one or more tables. scale (0,1] shrinks packet
// counts for quick runs; 1.0 is the full configuration. plan decomposes
// the exhibit into independent run units (see sched.go); Run and
// RunParallel execute it.
type Experiment struct {
	ID    string
	Title string
	plan  func(scale float64) *Plan
}

var registry []Experiment

func register(id, title string, plan func(scale float64) *Plan) {
	registry = append(registry, Experiment{ID: id, Title: title, plan: plan})
}

// All returns every registered experiment, ordered by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// pkts scales a packet budget.
func pkts(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

// runVanilla runs a config under the vanilla FastClick build (Copying
// model, no optimizations).
func runVanilla(config string, o testbed.Options) (*testbed.Result, error) {
	o.Model = click.Copying
	o.Opt = click.OptLevel{}
	return testbed.Run(config, o)
}

// runPacketMill runs a config under the full PacketMill build: X-Change
// plus the source-code optimizations (Figure 1's legend: "X-Change +
// Source-Code Optimizations"; the combined impact excludes metadata
// reordering, matching §4.4's footnote).
func runPacketMill(config string, o testbed.Options) (*testbed.Result, error) {
	p, err := core.Parse(config)
	if err != nil {
		return nil, err
	}
	p.Model = click.XChange
	if err := p.Mill(); err != nil {
		return nil, err
	}
	return p.Run(o)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// freqSweep is the paper's frequency axis.
var freqSweep = []float64{1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0}

// sizeSweep is Figure 6/11's packet-size axis (subset for runtime).
var sizeSweep = []int{64, 192, 320, 448, 576, 704, 832, 960, 1088, 1216, 1344, 1472}

// campus configures campus-mix traffic at the given rate; fixed size 0
// means the mix.
func campusOpts(freq, rate float64, packets int) testbed.Options {
	return testbed.Options{FreqGHz: freq, RateGbps: rate, Packets: packets}
}

var _ = nf.Forwarder // imported by sibling files
