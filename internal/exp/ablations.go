// Ablation experiments for the design choices DESIGN.md calls out:
// exchange-pool size, field-reordering criterion, BURST size, and the
// DDIO window width. These go beyond the paper's figures but probe the
// same mechanisms.
package exp

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/core"
	"packetmill/internal/layout"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/testbed"
)

func init() {
	register("abl-pool", "ablation: X-Change descriptor-pool size vs throughput", ablPool)
	register("abl-vector", "ablation: scalar vs vectorized PMD (compressed CQEs)", ablVector)
	register("abl-reorder", "ablation: metadata reorder criterion (count vs first-access) and LTO", ablReorder)
	register("abl-burst", "ablation: BURST size vs throughput & latency", ablBurst)
	register("abl-ddio", "ablation: DDIO window width vs throughput", ablDDIO)
}

// ablPool sweeps the X-Change descriptor pool size: the paper argues a
// small pool (≈ burst + queued) keeps metadata cache-resident; a huge pool
// degenerates toward mbuf-style cycling.
func ablPool(scale float64) *Plan {
	t := &Table{
		ID:      "abl-pool",
		Title:   "X-Change descriptor-pool size × recycling order (forwarder @1.2 GHz, 64-B frames)",
		Columns: []string{"recycling", "pool_descriptors", "throughput_gbps", "llc_loads_per_pkt"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, fifo := range []bool{false, true} {
		name := "lifo-warm"
		if fifo {
			name = "fifo-cycling"
		}
		for _, size := range []int{33, 64, 512, 4096, 32768} {
			p.Unit(func(u *U) {
				// Uncap the NIC so the descriptors' cache behaviour is the
				// limiter. Per-unit so units never share the config struct.
				cfg := nic.DefaultConfig("uncapped")
				cfg.MaxQueuePPS = 0
				o := campusOpts(1.2, 100, pkts(12000, scale))
				o.FixedSize = 64 // pps-bound: the descriptors are the workload
				o.Model = click.XChange
				o.DescPool = size
				o.DescPoolFIFO = fifo
				o.NICConfig = &cfg
				o.Seed = u.Seed
				res, err := testbed.Run(nf.Forwarder(0, 32), o)
				if err != nil {
					panic(fmt.Sprintf("abl-pool %s/%d: %v", name, size, err))
				}
				perPkt := 0.0
				if res.Packets > 0 {
					perPkt = float64(res.Counters.LLCLoads) / float64(res.Packets)
				}
				u.Add(name, fmt.Sprint(size), f1(res.Gbps()), f2(perPkt))
			})
		}
	}
	return p
}

// ablReorder compares LTO off/on and the two reordering criteria on the
// Copying-model router (§4.1's "LTO & structure reordering").
func ablReorder(scale float64) *Plan {
	t := &Table{
		ID:      "abl-reorder",
		Title:   "LTO & metadata reordering (router @3 GHz, Copying model)",
		Columns: []string{"build", "throughput_gbps", "median_latency_us"},
	}
	p := &Plan{Tables: []*Table{t}}
	unit := func(name string, noLTO bool, crit *layout.SortCriterion) {
		p.Unit(func(u *U) {
			o := campusOpts(3.0, 100, pkts(12000, scale))
			o.Model = click.Copying
			o.NoLTO = noLTO
			o.Seed = u.Seed
			pp, err := core.Parse(nf.Router(32))
			if err != nil {
				panic(err)
			}
			pp.Model = click.Copying
			if crit != nil {
				profOpts := o
				profOpts.Packets = pkts(4000, scale)
				if err := pp.ReorderMetadata(profOpts, *crit); err != nil {
					panic(fmt.Sprintf("abl-reorder %s: %v", name, err))
				}
			}
			res, err := pp.Run(o)
			if err != nil {
				panic(fmt.Sprintf("abl-reorder %s: %v", name, err))
			}
			u.Add(name, f1(res.Gbps()), f1(res.Latency.Median()/1e3))
		})
	}
	byCount := layout.ByAccessCount
	byOrder := layout.ByFirstAccess
	unit("no-lto", true, nil)
	unit("lto", false, nil)
	unit("lto+reorder-count", false, &byCount)
	unit("lto+reorder-order", false, &byOrder)
	return p
}

// ablBurst sweeps the BURST constant of the I/O elements.
func ablBurst(scale float64) *Plan {
	t := &Table{
		ID:      "abl-burst",
		Title:   "BURST size (router @2.3 GHz, PacketMill build)",
		Columns: []string{"burst", "throughput_gbps", "p99_us"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, burst := range []int{1, 4, 8, 16, 32, 64, 128} {
		p.Unit(func(u *U) {
			o := campusOpts(2.3, 100, pkts(12000, scale))
			o.Seed = u.Seed
			res, err := runPacketMill(nf.Router(burst), o)
			if err != nil {
				panic(fmt.Sprintf("abl-burst %d: %v", burst, err))
			}
			u.Add(fmt.Sprint(burst), f1(res.Gbps()), f1(res.Latency.P99()/1e3))
		})
	}
	return p
}

// ablDDIO sweeps the DDIO window width (the IIO LLC WAYS register the
// paper sets to 8 bits, citing [25]).
func ablDDIO(scale float64) *Plan {
	t := &Table{
		ID:      "abl-ddio",
		Title:   "DDIO window width (router @2.3 GHz, PacketMill build)",
		Columns: []string{"ddio_ways", "throughput_gbps", "llc_miss_pct"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, ways := range []int{1, 2, 4, 8, 11} {
		p.Unit(func(u *U) {
			o := campusOpts(2.3, 100, pkts(12000, scale))
			cfg := nic.DefaultConfig("ddio")
			o.NICConfig = &cfg
			o.DDIOWays = ways
			o.Seed = u.Seed
			res, err := runPacketMill(nf.Router(32), o)
			if err != nil {
				panic(fmt.Sprintf("abl-ddio %d: %v", ways, err))
			}
			missPct := 0.0
			if res.Counters.LLCLoads > 0 {
				missPct = float64(res.Counters.LLCLoadMisses) / float64(res.Counters.LLCLoads) * 100
			}
			u.Add(fmt.Sprint(ways), f1(res.Gbps()), f1(missPct))
		})
	}
	return p
}

// ablVector compares the scalar and vectorized (compressed-CQE) receive
// paths — the paper's stated future work for X-Change, available here for
// the mbuf-based models.
func ablVector(scale float64) *Plan {
	t := &Table{
		ID:      "abl-vector",
		Title:   "scalar vs vectorized PMD (forwarder @1.2 GHz, 64-B frames)",
		Columns: []string{"model", "pmd", "throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, model := range []click.MetadataModel{click.Copying, click.Overlaying} {
		for _, vec := range []bool{false, true} {
			name := "scalar"
			if vec {
				name = "vectorized"
			}
			p.Unit(func(u *U) {
				cfg := nic.DefaultConfig("uncapped")
				cfg.MaxQueuePPS = 0
				o := campusOpts(1.2, 100, pkts(10000, scale))
				o.FixedSize = 64
				o.Model = model
				o.VectorizedPMD = vec
				o.NICConfig = &cfg
				o.Seed = u.Seed
				res, err := testbed.Run(nf.Forwarder(0, 32), o)
				if err != nil {
					panic(fmt.Sprintf("abl-vector %v/%s: %v", model, name, err))
				}
				u.Add(model.String(), name, f1(res.Gbps()))
			})
		}
	}
	return p
}
