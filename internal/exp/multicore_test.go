package exp

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestMulticoreShape checks the scaling exhibit's structure and the
// deterministic skew table. Wall-clock cells only need to be positive —
// real scaling ratios are asserted by TestMulticoreScalingGate on hosts
// that opt in.
func TestMulticoreShape(t *testing.T) {
	tbs := runExp(t, "multicore")
	if len(tbs) != 2 {
		t.Fatalf("multicore produced %d tables, want 2", len(tbs))
	}
	scaling, skew := tbs[0], tbs[1]

	if len(scaling.Rows) != len(mcCoreCounts) {
		t.Fatalf("scaling table has %d rows, want %d", len(scaling.Rows), len(mcCoreCounts))
	}
	for i, cores := range mcCoreCounts {
		r := scaling.Rows[i]
		if r[0] != strconv.Itoa(cores) {
			t.Fatalf("row %d cores = %s, want %d", i, r[0], cores)
		}
		frames := cell(t, scaling, map[int]string{0: r[0]}, 1)
		kpps := cell(t, scaling, map[int]string{0: r[0]}, 3)
		if frames <= 0 || kpps <= 0 {
			t.Fatalf("%s-core row: frames %.0f kpps %.1f, want both positive", r[0], frames, kpps)
		}
	}
	if base := cell(t, scaling, map[int]string{0: "1"}, 5); base != 1.0 {
		t.Fatalf("1-core speedup column = %.2f, want 1.00", base)
	}

	if len(skew.Rows) != 2 {
		t.Fatalf("skew table has %d rows, want 2", len(skew.Rows))
	}
	share := func(variant string) float64 {
		raw := skew.Rows[0]
		for _, r := range skew.Rows {
			if r[0] == variant {
				raw = r
			}
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(raw[4], "%"), 64)
		if err != nil {
			t.Fatalf("hot share %q: %v", raw[4], err)
		}
		return v
	}
	staticHot, rebalHot := share("static"), share("rebalanced")
	// The elephant carries 50% of the load, so a static table pins its
	// queue at >= 50% + its half of the mice; migration can strip the
	// mice but never the elephant.
	if staticHot < 55 {
		t.Fatalf("static hot-queue share %.1f%%, want the skew visible (>= 55%%)", staticHot)
	}
	if rebalHot >= staticHot {
		t.Fatalf("rebalanced hot share %.1f%% did not improve on static %.1f%%", rebalHot, staticHot)
	}
	if rebal := cell(t, skew, map[int]string{0: "rebalanced"}, 3); rebal < 1 {
		t.Fatalf("rebalances = %.0f, want >= 1", rebal)
	}
}

// TestMulticoreScalingGate asserts the near-linear scaling acceptance
// bar (>= 1.7x at 2 cores, >= 3x at 4). Wall-clock scaling needs real
// parallel CPUs, so the gate only arms when PACKETMILL_SCALING_GATE=1
// (set by the dedicated CI job, which runs on a multi-core runner).
func TestMulticoreScalingGate(t *testing.T) {
	if os.Getenv("PACKETMILL_SCALING_GATE") != "1" {
		t.Skip("scaling gate disarmed; set PACKETMILL_SCALING_GATE=1 on a multi-core host")
	}
	tbs := runExp(t, "multicore")
	if dir := os.Getenv("PACKETMILL_SCALING_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
		} else {
			for _, tb := range tbs {
				path := dir + "/" + tb.ID + ".tsv"
				if err := os.WriteFile(path, []byte(tb.TSV()), 0o644); err != nil {
					t.Logf("artifact %s: %v", path, err)
				}
			}
		}
	}
	speedup := func(cores string) float64 {
		return cell(t, tbs[0], map[int]string{0: cores}, 5)
	}
	if s := speedup("2"); s < 1.7 {
		t.Errorf("2-core speedup %.2fx, want >= 1.7x", s)
	}
	if s := speedup("4"); s < 3.0 {
		t.Errorf("4-core speedup %.2fx, want >= 3.0x", s)
	}
}
