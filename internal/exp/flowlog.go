// Experiment: the flow-observability pipeline end to end. Not a paper
// figure — the acceptance exhibit for this repository's flow-record
// subsystem: five scenarios (clean churn, SYN flood, NAT port
// exhaustion, overload shedding, expiry storm, elephant skew) each run
// on the full datapath with the flow log armed, and for every run (a)
// the records must reconcile EXACTLY against the conservation ledgers —
// TX-side packets equal the wire count, drop-side packets equal the
// drop taxonomy — and (b) the diagnosis engine must name that run's
// scenario and stay silent on every other's (the zero-false-positive
// matrix). A violation panics the exhibit rather than printing a row.
package exp

import (
	"fmt"
	"strings"

	"packetmill/internal/click"
	"packetmill/internal/flowlog"
	"packetmill/internal/flowlog/diagnose"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/overload"
	"packetmill/internal/testbed"
	"packetmill/internal/trafficgen"
)

func init() {
	register("flowlog", "flow observability: verdict reconciliation × scenario diagnosis matrix", flowlogExhibit)
}

// flTrackerCfg is the tracked forwarder; CAPACITY is spliced per
// scenario.
const flTrackerCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY %s)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

// flNATCfg starves the external-port pool behind a roomy table, so
// every refusal is a no-port, not a table-full.
const flNATCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> nat :: IPRewriter(EXTIP 192.168.100.1, CAPACITY 4096, PORTS 512)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

func flCfg(capacity string) string {
	return strings.Replace(flTrackerCfg, "%s", capacity, 1)
}

// flowScenario is one row of the exhibit matrix.
type flowScenario struct {
	name   string
	expect diagnose.Scenario // "" = the clean baseline, zero findings
	opts   func(seed uint64, packets int) testbed.Options
	config string
}

func churnSrc(concurrent, flowPackets int) func(int, trafficgen.Config) trafficgen.Source {
	return func(n int, cfg trafficgen.Config) trafficgen.Source {
		return trafficgen.NewChurn(trafficgen.ChurnConfig{
			Config: cfg, Concurrent: concurrent, FlowPackets: flowPackets,
		})
	}
}

func flowScenarios(scale float64) []flowScenario {
	base := func(seed uint64, packets int) testbed.Options {
		return testbed.Options{
			Model: click.XChange, FreqGHz: 2.4, RateGbps: 40,
			Packets: packets, Telemetry: true, Seed: seed,
		}
	}
	return []flowScenario{
		{
			// Clean churn: capacity above the live population, so no
			// evictions, no refusals — and no findings.
			name: "churn", expect: "",
			config: flCfg("4096"),
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.Traffic = churnSrc(2048, 8)
				return o
			},
		},
		{
			name: "syn-flood", expect: diagnose.SYNFlood,
			config: flCfg("256, PROTECT true"),
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.Traffic = func(n int, cfg trafficgen.Config) trafficgen.Source {
					return synFloodMix(cfg)
				}
				return o
			},
		},
		{
			name: "nat-exhaustion", expect: diagnose.NATPortExhaustion,
			config: flNATCfg,
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.Traffic = churnSrc(2048, 8)
				return o
			},
		},
		{
			// The CPU-bound forwarder at far past capacity with
			// tail-drop admission: no tracking element at all, so every
			// TX'd packet rides the wire residue and every shed the drop
			// ledger — and the cut must still reconcile exactly.
			name: "overload-shed", expect: diagnose.ShedStorm,
			config: nf.WorkPackageForwarder(4, 16, 5, 200),
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.FreqGHz = 1.2
				rings := nic.DefaultConfig("flowlog-overload")
				rings.RXRingSize = 256
				rings.TXRingSize = 256
				o.NICConfig = &rings
				o.Overload = &overload.Config{
					Policy:    overload.PolicyTailDrop,
					HighWater: 0.1,
					LowWater:  0.005,
					Health: overload.HealthConfig{
						DegradeOcc:  0.012,
						OverloadOcc: 0.6,
						RecoverOcc:  0.006,
						DwellNS:     5e3,
					},
				}
				return o
			},
		},
		{
			// Handshake waves separated by 10x the compressed idle
			// timeout: each wave's timers mature together. Wave size
			// tracks the packet budget (2 frames per flow) so the run
			// always holds 4 dense waves regardless of scale.
			name: "expiry-storm", expect: diagnose.ExpiryStorm,
			config: flCfg("4096, ESTABLISHED_MS 1, EMBRYONIC_MS 1"),
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.Traffic = func(n int, cfg trafficgen.Config) trafficgen.Source {
					return trafficgen.NewExpiryStorm(cfg, packets/8, 1e7)
				}
				return o
			},
		},
		{
			// One full-size long-lived flow over a floor of 64-byte
			// mice: the elephant carries the byte share.
			name: "elephant-skew", expect: diagnose.ElephantSkew,
			config: flCfg("4096"),
			opts: func(seed uint64, packets int) testbed.Options {
				o := base(seed, packets)
				o.Traffic = func(n int, cfg trafficgen.Config) trafficgen.Source {
					mice := cfg
					mice.Count = cfg.Count * 7 / 10
					mice.RateGbps = cfg.RateGbps / 4
					ele := cfg
					ele.Seed = cfg.Seed ^ 0xe1e
					ele.Count = cfg.Count - mice.Count
					ele.RateGbps = cfg.RateGbps - mice.RateGbps
					return trafficgen.NewMerge(
						trafficgen.NewChurn(trafficgen.ChurnConfig{
							Config: mice, Concurrent: 1024, FlowPackets: 8,
						}),
						trafficgen.NewChurn(trafficgen.ChurnConfig{
							// Lifetime far beyond the run so the one
							// flow never closes.
							Config: ele, Concurrent: 1, FlowPackets: 4 * ele.Count,
							FrameSize: 1472,
						}),
					)
				}
				return o
			},
		},
	}
}

// flowlogExhibit runs the matrix. Table one is the verdict ledger per
// scenario with the reconciliation outcome; table two is the diagnosis
// matrix: what each run was diagnosed as, against what it must be.
func flowlogExhibit(scale float64) *Plan {
	verdictT := &Table{
		ID:    "flowlog-verdicts",
		Title: "flow records by verdict: exact reconciliation against wire TX and the drop taxonomy",
		Columns: []string{"scenario", "gbps", "records", "forwarded_pkts", "evicted_pkts",
			"dropped_pkts", "shed_pkts", "refused_pkts", "unattributed", "lat_samples",
			"records_lost", "tx_side", "tx_wire", "drop_side", "drops", "exact"},
	}
	diagT := &Table{
		ID:      "flowlog-diagnosis",
		Title:   "scenario diagnosis matrix: each run must earn exactly its own finding",
		Columns: []string{"scenario", "expected", "diagnosed", "findings", "summary"},
	}
	p := &Plan{Tables: []*Table{verdictT, diagT}}

	for _, sc := range flowScenarios(scale) {
		sc := sc
		p.Unit(func(u *U) {
			o := sc.opts(u.Seed, pkts(16000, scale))
			o.FlowLog = flowlog.New(flowlog.Config{})
			res, err := testbed.Run(sc.config, o)
			if err != nil {
				panic(fmt.Sprintf("flowlog %s: %v", sc.name, err))
			}
			if len(res.Flows) == 0 {
				panic(fmt.Sprintf("flowlog %s: no flow records", sc.name))
			}
			rec := flowlog.Reconcile(res.Flows, res.Offered, res.TxWire, &res.DropsByReason)
			if !rec.Exact {
				panic(fmt.Sprintf("flowlog %s: reconciliation inexact: tx_side=%d tx_wire=%d drop_side=%d drops=%d",
					sc.name, rec.TxSide, rec.TxWire, rec.DropSide, rec.Drops))
			}
			sum := flowlog.Summarize(res.Flows)
			u.AddTo(0, sc.name, f1(res.Gbps()), fmt.Sprint(sum.Records),
				fmt.Sprint(sum.Packets[flowlog.VerdictForwarded]),
				fmt.Sprint(sum.Packets[flowlog.VerdictEvicted]),
				fmt.Sprint(sum.Packets[flowlog.VerdictDropped]),
				fmt.Sprint(sum.Packets[flowlog.VerdictShed]),
				fmt.Sprint(sum.Packets[flowlog.VerdictRefused]),
				fmt.Sprint(sum.Unattributed), fmt.Sprint(sum.LatSamples),
				fmt.Sprint(o.FlowLog.RecordsLost()),
				fmt.Sprint(rec.TxSide), fmt.Sprint(rec.TxWire),
				fmt.Sprint(rec.DropSide), fmt.Sprint(rec.Drops), "yes")

			findings := diagnose.Run(res.Flows, diagnose.Defaults())
			var names []string
			summary := ""
			for _, f := range findings {
				names = append(names, string(f.Scenario))
				summary = f.Summary
			}
			diagnosed := strings.Join(names, "+")
			// The matrix: the expected scenario and nothing else — a
			// cross-fire here is a detector regression, not a data point.
			switch {
			case sc.expect == "" && len(findings) != 0:
				panic(fmt.Sprintf("flowlog %s: clean run diagnosed as %s", sc.name, diagnosed))
			case sc.expect != "" && (len(findings) != 1 || findings[0].Scenario != sc.expect):
				panic(fmt.Sprintf("flowlog %s: diagnosed as [%s], want exactly [%s]",
					sc.name, diagnosed, sc.expect))
			}
			expect := string(sc.expect)
			if expect == "" {
				expect = "-"
				diagnosed = "-"
				summary = "clean baseline: no findings"
			}
			u.AddTo(1, sc.name, expect, diagnosed, fmt.Sprint(len(findings)), summary)
		})
	}
	return p
}
