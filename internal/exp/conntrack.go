// Experiment: the million-flow state plane. Not a paper figure — a
// robustness exhibit for this repository's conntrack subsystem: (1) the
// shard alone, filled to capacity and then hit with a mass-expiry storm,
// showing that occupancy holds at a million concurrent flows and that
// the timer wheel drains the storm under its per-call sweep budget; and
// (2) the full datapath under flow churn, SYN flood, and expiry-storm
// traffic, showing where the pressure goes (state-aware evictions vs
// the DropFlowTable* taxonomy) while conservation holds.
package exp

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/conntrack"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
	"packetmill/internal/stats"
	"packetmill/internal/testbed"
	"packetmill/internal/trafficgen"
)

func init() {
	register("conntrack", "million-flow state plane: shard scaling × datapath churn", conntrackExhibit)
}

// shardKey derives a distinct 5-tuple per flow index.
func shardKey(i uint32) conntrack.Key {
	return conntrack.Key{
		SrcIP: 0x0a000000 + i, DstIP: 0x0b000000 + i*13,
		SrcPort: uint16(i%60000) + 1024, DstPort: 443,
		Proto: netpkt.ProtoTCP,
	}
}

// ctChurnCfg is the standalone tracker under sustained churn; timeouts
// are compressed so flows age out within the run's simulated window.
const ctChurnCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY 1024, ESTABLISHED_MS 2, EMBRYONIC_MS 1, CLOSING_MS 1, UDP_MS 1)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

// ctFloodCfg is a deliberately small protected tracker: the flood must
// be absorbed by embryonic evictions, never an established connection.
const ctFloodCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY 256, PROTECT true)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

// ctStormCfg gives every wave room, so drained occupancy is pure aging.
const ctStormCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> ct :: ConnTracker(CAPACITY 8192, ESTABLISHED_MS 1, EMBRYONIC_MS 1)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

// natChurnCfg is the rebuilt NAT: churn far beyond capacity must recycle
// ports instead of leaking the table full.
const natChurnCfg = `
input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> nat :: IPRewriter(EXTIP 192.168.100.1, CAPACITY 256, UDP_MS 1, ESTABLISHED_MS 2)
      -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01)
      -> output;
`

func synFloodMix(cfg trafficgen.Config) trafficgen.Source {
	legit := cfg
	legit.Count = cfg.Count / 4
	legit.RateGbps = cfg.RateGbps / 4
	flood := cfg
	flood.Seed = cfg.Seed ^ 0x5f1d
	flood.Count = cfg.Count - legit.Count
	flood.RateGbps = cfg.RateGbps - legit.RateGbps
	return trafficgen.NewMerge(
		trafficgen.NewChurn(trafficgen.ChurnConfig{Config: legit, Concurrent: 64, FlowPackets: 16}),
		trafficgen.NewSYNFlood(flood),
	)
}

// conntrackExhibit builds both tables. Table one drives the shard
// directly (no packets): fill to capacity with established flows, hold,
// then jump the clock past the idle timeout so every timer matures at
// once, counting how many budgeted sweeps drain the storm. Table two
// runs the datapath scenarios end to end on the testbed.
func conntrackExhibit(scale float64) *Plan {
	scaleT := &Table{
		ID:    "conntrack-scale",
		Title: "shard scaling: held flows, mass-expiry drain under sweep budget",
		Columns: []string{"capacity", "held_flows", "expirations", "evictions",
			"refusals", "drain_sweeps", "max_lag_ms"},
	}
	churnT := &Table{
		ID:    "conntrack-churn",
		Title: "datapath under churn/flood/storm: occupancy, eviction split, drop taxonomy",
		Columns: []string{"scenario", "gbps", "p99_us", "entries", "capacity", "insertions",
			"expirations", "evict_embryonic", "evict_established", "refused",
			"table_drops", "ports_recycled"},
	}
	p := &Plan{Tables: []*Table{scaleT, churnT}}

	for _, base := range []int{1 << 16, 1 << 18, 1 << 20} {
		base := base
		p.Unit(func(u *U) {
			capN := int(float64(base) * scale)
			if capN < 4096 {
				capN = 4096
			}
			cfg := conntrack.Config{Capacity: capN}
			s := conntrack.NewShard(cfg, memsim.NewArena("exp-conntrack", memsim.HeapBase, 1<<31), u.Seed)
			// Fill: one flow per microsecond, walked to Established.
			now := 0.0
			for i := 0; i < capN; i++ {
				k := shardKey(uint32(i))
				s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN, now, 0)
				s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN|netpkt.TCPFlagACK, now, 0)
				s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagACK, now, 0)
				now += 1e3
				if i&255 == 255 {
					s.Advance(nil, now)
				}
			}
			// Hold: refresh every flow once; the population must stay live.
			for i := 0; i < capN; i++ {
				s.Track(nil, shardKey(uint32(i)), netpkt.ProtoTCP,
					netpkt.TCPFlagACK|netpkt.TCPFlagPSH, now, 0)
				now += 100
			}
			held := s.Len()
			// Storm: jump past the established timeout so every timer
			// matures at once; count budgeted sweeps until drained.
			now += 130e9
			sweeps := 0
			for s.Len() > 0 && sweeps < 4*capN {
				s.Advance(nil, now)
				now += 1e6
				sweeps++
			}
			st := s.StatsSnapshot()
			u.AddTo(0, fmt.Sprint(capN), fmt.Sprint(held),
				fmt.Sprint(st.Expirations), fmt.Sprint(st.EvictionsTotal()),
				fmt.Sprint(st.RefusedFull), fmt.Sprint(sweeps),
				f1(st.MaxWheelLagNS/1e6))
		})
	}

	scenarios := []struct {
		name    string
		config  string
		traffic func(cfg trafficgen.Config) trafficgen.Source
	}{
		{"churn", ctChurnCfg, func(cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewChurn(trafficgen.ChurnConfig{
				Config: cfg, Concurrent: 2048, FlowPackets: 6,
			})
		}},
		{"syn-flood", ctFloodCfg, synFloodMix},
		{"expiry-storm", ctStormCfg, func(cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewExpiryStorm(cfg, 512, 1e7)
		}},
		{"nat-churn", natChurnCfg, func(cfg trafficgen.Config) trafficgen.Source {
			return trafficgen.NewChurn(trafficgen.ChurnConfig{
				Config: cfg, Concurrent: 2048, FlowPackets: 4,
			})
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		p.Unit(func(u *U) {
			o := testbed.Options{
				FreqGHz: 2.4, RateGbps: 100, Packets: pkts(20000, scale),
				Model: click.XChange, Telemetry: true, Seed: u.Seed,
			}
			o.Traffic = func(n int, cfg trafficgen.Config) trafficgen.Source {
				return sc.traffic(cfg)
			}
			res, err := testbed.Run(sc.config, o)
			if err != nil {
				panic(fmt.Sprintf("conntrack %s: %v", sc.name, err))
			}
			if res.Telemetry == nil || len(res.Telemetry.Conntrack) == 0 {
				panic(fmt.Sprintf("conntrack %s: no flow-table report", sc.name))
			}
			ct := res.Telemetry.Conntrack[0]
			tableDrops := res.DropsByReason.Get(stats.DropFlowTableFull) +
				res.DropsByReason.Get(stats.DropFlowTableNoPort) +
				res.DropsByReason.Get(stats.DropFlowTableInvalid)
			u.AddTo(1, sc.name, f1(res.Gbps()), f2(res.Latency.P99()/1e3),
				fmt.Sprint(ct.FlowTableEntries), fmt.Sprint(ct.Capacity),
				fmt.Sprint(ct.Insertions), fmt.Sprint(ct.Expirations),
				fmt.Sprint(ct.Evictions["embryonic"]), fmt.Sprint(ct.Evictions["established"]),
				fmt.Sprint(ct.RefusedFull+ct.RefusedInvalid),
				fmt.Sprint(tableDrops), fmt.Sprint(ct.PortsRecycled))
		})
	}
	return p
}
