// Experiments: Figure 1, Figure 4 + Table 1, Figure 5a/5b, Figure 6.
//
// Each exhibit builds a Plan of independent run units — one per
// (variant, sweep-point) cell — enumerated in the same nested order the
// old serial loops used, so the merged tables are byte-identical.
package exp

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/stats"
	"packetmill/internal/testbed"
)

func init() {
	register("fig1", "p99 latency vs throughput, router @2.3 GHz, 1 core", fig1)
	register("fig4", "router throughput & median latency vs frequency, 5 variants", fig4)
	register("tab1", "microarchitectural metrics @3 GHz (LLC loads/misses, IPC, Mpps)", tab1)
	register("fig5a", "forwarder: metadata models vs frequency, one NIC", fig5a)
	register("fig5b", "forwarder: metadata models vs frequency, two NICs, one core", fig5b)
	register("fig6", "router @2.3 GHz: throughput & PPS vs packet size", fig6)
}

// fig1 sweeps the offered load and reports p99 latency vs achieved
// throughput for vanilla and PacketMill — the latency knee.
func fig1(scale float64) *Plan {
	t := &Table{
		ID:      "fig1",
		Title:   "99th-percentile latency vs throughput (router, 1 core @2.3 GHz, campus mix)",
		Columns: []string{"variant", "offered_gbps", "throughput_gbps", "p99_us", "p50_us", "p999_us"},
	}
	p := &Plan{Tables: []*Table{t}}
	loads := []float64{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cfg := nf.Router(32)
	for _, variant := range []string{"vanilla", "packetmill"} {
		for _, load := range loads {
			p.Unit(func(u *U) {
				o := campusOpts(2.3, load, pkts(20000, scale))
				o.Seed = u.Seed
				var (
					res *testbed.Result
					err error
				)
				if variant == "vanilla" {
					res, err = runVanilla(cfg, o)
				} else {
					res, err = runPacketMill(cfg, o)
				}
				if err != nil {
					panic(fmt.Sprintf("fig1 %s@%v: %v", variant, load, err))
				}
				// p99 stays in column 3 (the shape checks read it by
				// index); the tail column rides behind it.
				u.Add(variant, f1(load), f1(res.Gbps()),
					f1(stats.MicrosFromNS(res.Latency.P99())),
					f1(stats.MicrosFromNS(res.Latency.Median())),
					f1(stats.MicrosFromNS(res.Latency.Percentile(99.9))))
			})
		}
	}
	return p
}

// fig4Variants are the five builds of Figure 4 / Table 1.
var fig4Variants = []struct {
	name string
	opt  click.OptLevel
}{
	{"vanilla", click.OptLevel{}},
	{"devirtualize", click.OptLevel{Devirtualize: true}},
	{"constembed", click.OptLevel{Devirtualize: true, ConstEmbed: true}},
	{"staticgraph", click.OptLevel{Devirtualize: true, ConstEmbed: true, StaticGraph: true}},
	{"all", click.AllOpts()},
}

func runFig4Variant(opt click.OptLevel, o testbed.Options) (*testbed.Result, error) {
	o.Model = click.Copying // §4.1 uses the default model; code opts only
	o.Opt = opt
	return testbed.Run(nf.Router(32), o)
}

// fig4 sweeps frequency for the five code-optimization variants and, like
// the paper's figure annotations, fits Thr(f) = a + b·f and
// Lat(f) = a + b·f + c·f² with R². Units fill disjoint slots of the raw
// series; the fits run in Finish, after every unit has merged.
func fig4(scale float64) *Plan {
	t := &Table{
		ID:      "fig4",
		Title:   "router: throughput & median latency vs core frequency (code optimizations, Copying model)",
		Columns: []string{"variant", "freq_ghz", "throughput_gbps", "median_latency_us"},
	}
	fits := &Table{
		ID:      "fig4-fits",
		Title:   "fitted curves per variant (the paper's figure annotations)",
		Columns: []string{"variant", "thr_a", "thr_b", "thr_r2", "lat_a", "lat_b", "lat_c", "lat_r2"},
	}
	p := &Plan{Tables: []*Table{t, fits}}
	thr := make([][]float64, len(fig4Variants))
	lat := make([][]float64, len(fig4Variants))
	for vi, v := range fig4Variants {
		thr[vi] = make([]float64, len(freqSweep))
		lat[vi] = make([]float64, len(freqSweep))
		for fi, f := range freqSweep {
			p.Unit(func(u *U) {
				o := campusOpts(f, 100, pkts(15000, scale))
				o.Seed = u.Seed
				res, err := runFig4Variant(v.opt, o)
				if err != nil {
					panic(fmt.Sprintf("fig4 %s@%v: %v", v.name, f, err))
				}
				u.Add(v.name, f1(f), f1(res.Gbps()), f1(stats.MicrosFromNS(res.Latency.Median())))
				thr[vi][fi] = res.Gbps()
				lat[vi][fi] = stats.MicrosFromNS(res.Latency.Median())
			})
		}
	}
	p.Finish(func() {
		for vi, v := range fig4Variants {
			ta, tb, tr2 := stats.LinearFit(freqSweep, thr[vi])
			la, lb, lc, lr2 := stats.QuadFit(freqSweep, lat[vi])
			fits.Add(v.name, f2(ta), f2(tb), fmt.Sprintf("%.4f", tr2),
				f2(la), f2(lb), f2(lc), fmt.Sprintf("%.4f", lr2))
		}
	})
	return p
}

// tab1 reports Table 1's microarchitectural metrics at 3 GHz: LLC kilo
// loads and load misses per 100 ms, IPC, and Mpps.
func tab1(scale float64) *Plan {
	t := &Table{
		ID:      "tab1",
		Title:   "microarchitectural metrics @3 GHz (per 100 ms, campus mix)",
		Columns: []string{"variant", "llc_kilo_loads", "llc_kilo_load_misses", "ipc", "mpps"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, v := range fig4Variants {
		p.Unit(func(u *U) {
			o := campusOpts(3.0, 100, pkts(25000, scale))
			o.Seed = u.Seed
			res, err := runFig4Variant(v.opt, o)
			if err != nil {
				panic(fmt.Sprintf("tab1 %s: %v", v.name, err))
			}
			// Scale counters to a 100-ms window like perf's sampling.
			window := 1e8 / res.Duration // (100 ms) / measured ns
			u.Add(v.name,
				f1(float64(res.Counters.LLCLoads)*window/1e3),
				f2(float64(res.Counters.LLCLoadMisses)*window/1e3),
				f2(res.Counters.IPC()),
				f2(res.Mpps()))
		})
	}
	return p
}

// modelVariants are Figure 5's three metadata-management models.
var modelVariants = []struct {
	name  string
	model click.MetadataModel
}{
	{"copying", click.Copying},
	{"overlaying", click.Overlaying},
	{"x-change", click.XChange},
}

// fig5a compares the metadata models on the forwarder across frequency
// (one NIC, one core, LTO everywhere, no code opts — §4.2's isolation).
func fig5a(scale float64) *Plan {
	t := &Table{
		ID:      "fig5a",
		Title:   "forwarder: throughput vs frequency per metadata model (one NIC)",
		Columns: []string{"model", "freq_ghz", "throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, v := range modelVariants {
		for _, f := range freqSweep {
			p.Unit(func(u *U) {
				o := campusOpts(f, 100, pkts(15000, scale))
				o.Model = v.model
				o.Seed = u.Seed
				res, err := testbed.Run(nf.Forwarder(0, 32), o)
				if err != nil {
					panic(fmt.Sprintf("fig5a %s@%v: %v", v.name, f, err))
				}
				u.Add(v.name, f1(f), f1(res.Gbps()))
			})
		}
	}
	return p
}

// fig5b repeats fig5a with two 100-GbE NICs feeding one core.
func fig5b(scale float64) *Plan {
	t := &Table{
		ID:      "fig5b",
		Title:   "forwarder: total throughput vs frequency per metadata model (two NICs, one core)",
		Columns: []string{"model", "freq_ghz", "total_throughput_gbps"},
	}
	p := &Plan{Tables: []*Table{t}}
	for _, v := range modelVariants {
		for _, f := range freqSweep {
			p.Unit(func(u *U) {
				o := campusOpts(f, 100, pkts(10000, scale))
				o.Model = v.model
				o.NICs = 2
				o.Seed = u.Seed
				res, err := testbed.Run(nf.TwoNICForwarder(32), o)
				if err != nil {
					panic(fmt.Sprintf("fig5b %s@%v: %v", v.name, f, err))
				}
				u.Add(v.name, f1(f), f1(res.Gbps()))
			})
		}
	}
	return p
}

// fig6 sweeps fixed packet sizes through the router at 2.3 GHz.
func fig6(scale float64) *Plan {
	t := &Table{
		ID:      "fig6",
		Title:   "router @2.3 GHz: throughput (Gbps) and rate (Mpps) vs packet size",
		Columns: []string{"variant", "size_b", "throughput_gbps", "mpps"},
	}
	p := &Plan{Tables: []*Table{t}}
	cfg := nf.Router(32)
	for _, variant := range []string{"vanilla", "packetmill"} {
		for _, size := range sizeSweep {
			p.Unit(func(u *U) {
				o := campusOpts(2.3, 100, pkts(15000, scale))
				o.FixedSize = size
				o.Seed = u.Seed
				var (
					res *testbed.Result
					err error
				)
				if variant == "vanilla" {
					res, err = runVanilla(cfg, o)
				} else {
					res, err = runPacketMill(cfg, o)
				}
				if err != nil {
					panic(fmt.Sprintf("fig6 %s@%d: %v", variant, size, err))
				}
				u.Add(variant, fmt.Sprint(size), f1(res.Gbps()), f2(res.Mpps()))
			})
		}
	}
	return p
}
