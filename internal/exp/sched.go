// Parallel run scheduler. Every exhibit is decomposed into independent
// run units — one sweep point or variant cell each — that can execute on
// a bounded worker pool. Each unit is an isolated deterministic
// simulation whose seed derives from (exhibit id, unit index), and unit
// results are merged in unit-index order, so the rendered TSV/JSON is
// byte-identical whether the plan runs serially or on N workers.
package exp

import (
	"runtime"
	"sync"

	"packetmill/internal/simrand"
)

// rowPatch is one row a unit wants appended to one of the plan's tables.
type rowPatch struct {
	table int
	cells []string
}

// U is the per-unit context handed to each run unit. Seed is the unit's
// derived simulation seed; every testbed.Options the unit builds must
// carry it so the unit's result is independent of scheduling order.
// Units record rows via Add/AddTo instead of touching tables directly —
// rows land in the tables only during the deterministic merge.
type U struct {
	Seed    uint64
	patches []rowPatch
}

// Add records a row for the plan's first table.
func (u *U) Add(cells ...string) { u.AddTo(0, cells...) }

// AddTo records a row for the plan's table-th table.
func (u *U) AddTo(table int, cells ...string) {
	u.patches = append(u.patches, rowPatch{table: table, cells: cells})
}

// Plan is an exhibit decomposed into independent units. Tables holds the
// output tables (with columns set, rows empty); units fill them via U.
type Plan struct {
	Tables []*Table
	units  []func(*U)
	finish func()
}

// Unit appends an independent run unit. Units never share mutable state
// except disjoint slots of result slices preallocated by the builder.
func (p *Plan) Unit(fn func(*U)) { p.units = append(p.units, fn) }

// Finish registers a hook that runs after all units completed and merged,
// for cross-unit post-processing such as fig4's curve fits.
func (p *Plan) Finish(fn func()) { p.finish = fn }

// DefaultWorkers is the default fan-out for parallel runs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// UnitSeed returns the seed the scheduler assigns to unit idx of the
// given exhibit — exported so tests can assert the derivation is stable.
func UnitSeed(id string, idx int) uint64 {
	return simrand.Derive(simrand.HashString(id), uint64(idx))
}

// Run executes the experiment serially. It is exactly RunParallel with
// one worker; exhibits produce identical bytes either way.
func (e Experiment) Run(scale float64) []*Table { return e.RunParallel(scale, 1) }

// RunParallel executes the experiment's units on a pool of the given
// number of workers (<=1 means serial, in the calling goroutine) and
// merges the results in unit order.
func (e Experiment) RunParallel(scale float64, workers int) []*Table {
	p := e.plan(scale)
	units := make([]*U, len(p.units))
	for i := range units {
		units[i] = &U{Seed: UnitSeed(e.ID, i)}
	}

	if workers > len(p.units) {
		workers = len(p.units)
	}
	if workers <= 1 {
		for i, fn := range p.units {
			fn(units[i])
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstPanic any
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runUnit(p.units[i], units[i], &mu, &firstPanic)
				}
			}()
		}
		for i := range p.units {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		// A unit panic (a failed simulation) must surface exactly like it
		// does in a serial run, after the pool has drained.
		if firstPanic != nil {
			panic(firstPanic)
		}
	}

	for _, u := range units {
		for _, pt := range u.patches {
			p.Tables[pt.table].Add(pt.cells...)
		}
	}
	if p.finish != nil {
		p.finish()
	}
	return p.Tables
}

func runUnit(fn func(*U), u *U, mu *sync.Mutex, firstPanic *any) {
	defer func() {
		if r := recover(); r != nil {
			mu.Lock()
			if *firstPanic == nil {
				*firstPanic = r
			}
			mu.Unlock()
		}
	}()
	fn(u)
}
