package exp

import (
	"testing"
)

// allRows returns every row matching the given column values.
func allRows(tb *Table, match map[int]string) [][]string {
	var out [][]string
	for _, r := range tb.Rows {
		ok := true
		for i, want := range match {
			if r[i] != want {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func TestFig7Shape(t *testing.T) {
	tb := runExp(t, "fig7")[0]
	// Improvement must be positive everywhere, and the heavy corner's
	// improvement must be below the light corner's (gains shrink as NFs
	// get memory/compute-bound).
	light := cell(t, tb, map[int]string{0: "1", 1: "0", 2: "0"}, 5)
	heavy := cell(t, tb, map[int]string{0: "5", 1: "20", 2: "16"}, 5)
	if light <= 0 || heavy <= 0 {
		t.Fatalf("negative improvement: light=%.1f heavy=%.1f", light, heavy)
	}
	if heavy >= light {
		t.Fatalf("improvement did not shrink with intensity: light=%.1f heavy=%.1f", light, heavy)
	}
	// Vanilla throughput must fall as W grows at fixed S,N.
	v0 := cell(t, tb, map[int]string{0: "5", 1: "0", 2: "0"}, 3)
	v20 := cell(t, tb, map[int]string{0: "5", 1: "20", 2: "0"}, 3)
	if v20 >= v0 {
		t.Fatalf("compute intensity free: W=0 %.1f, W=20 %.1f", v0, v20)
	}
}

func TestFig8Shape(t *testing.T) {
	tb := runExp(t, "fig8")[0]
	for _, fr := range []string{"1.2", "3.0"} {
		v := cell(t, tb, map[int]string{0: "vanilla", 1: fr}, 2)
		p := cell(t, tb, map[int]string{0: "packetmill", 1: fr}, 2)
		if p <= v {
			t.Errorf("@%s GHz: packetmill %.1f ≤ vanilla %.1f", fr, p, v)
		}
	}
	// Latency falls with frequency for the vanilla build.
	l12 := cell(t, tb, map[int]string{0: "vanilla", 1: "1.2"}, 3)
	l30 := cell(t, tb, map[int]string{0: "vanilla", 1: "3.0"}, 3)
	if l30 >= l12 {
		t.Errorf("median latency not falling: %.0f -> %.0f µs", l12, l30)
	}
}

func TestFig10Shape(t *testing.T) {
	tb := runExp(t, "fig10")[0]
	v1 := cell(t, tb, map[int]string{0: "vanilla", 1: "1"}, 2)
	v4 := cell(t, tb, map[int]string{0: "vanilla", 1: "4"}, 2)
	p1 := cell(t, tb, map[int]string{0: "packetmill", 1: "1"}, 2)
	p2 := cell(t, tb, map[int]string{0: "packetmill", 1: "2"}, 2)
	if v4 < v1*1.5 {
		t.Errorf("vanilla NAT not scaling: %.1f -> %.1f", v1, v4)
	}
	if p1 <= v1 {
		t.Errorf("single-core: packetmill %.1f ≤ vanilla %.1f", p1, v1)
	}
	if p2 < 90 {
		t.Errorf("packetmill 2-core NAT below line-rate band: %.1f", p2)
	}
}

func TestFig11aShape(t *testing.T) {
	tb := runExp(t, "fig11a")[0]
	for _, size := range []string{"64", "704"} {
		fc := cell(t, tb, map[int]string{0: "fastclick-copying", 1: size}, 2)
		l2 := cell(t, tb, map[int]string{0: "l2fwd", 1: size}, 2)
		pm := cell(t, tb, map[int]string{0: "packetmill", 1: size}, 2)
		lx := cell(t, tb, map[int]string{0: "l2fwd-xchg", 1: size}, 2)
		if !(lx > l2) {
			t.Errorf("size %s: l2fwd-xchg %.1f ≤ l2fwd %.1f", size, lx, l2)
		}
		if !(pm > fc) {
			t.Errorf("size %s: packetmill %.1f ≤ fastclick %.1f", size, pm, fc)
		}
		if !(pm > l2) {
			t.Errorf("size %s: packetmill %.1f ≤ plain l2fwd %.1f (the paper's surprise win)", size, pm, l2)
		}
	}
}

func TestFig11bShape(t *testing.T) {
	tb := runExp(t, "fig11b")[0]
	size := "64"
	vpp := cell(t, tb, map[int]string{0: "vpp", 1: size}, 2)
	fc := cell(t, tb, map[int]string{0: "fastclick-copying", 1: size}, 2)
	fl := cell(t, tb, map[int]string{0: "fastclick-light", 1: size}, 2)
	bs := cell(t, tb, map[int]string{0: "bess", 1: size}, 2)
	pm := cell(t, tb, map[int]string{0: "packetmill", 1: size}, 2)
	if !(pm > bs && pm > vpp && pm > fc && pm > fl) {
		t.Errorf("packetmill (%.1f) not best overall: vpp=%.1f fc=%.1f fl=%.1f bess=%.1f",
			pm, vpp, fc, fl, bs)
	}
	// VPP lands near FastClick-Copying (both pay a copy); both trail the
	// overlay engines.
	if !(bs > fc) {
		t.Errorf("bess %.1f ≤ fastclick-copying %.1f", bs, fc)
	}
	if !(fl > fc) {
		t.Errorf("fastclick-light %.1f ≤ fastclick-copying %.1f", fl, fc)
	}
}

func TestAblPoolShape(t *testing.T) {
	tb := runExp(t, "abl-pool")[0]
	// LIFO flat; FIFO degrades with size.
	lifoSmall := cell(t, tb, map[int]string{0: "lifo-warm", 1: "33"}, 2)
	lifoBig := cell(t, tb, map[int]string{0: "lifo-warm", 1: "32768"}, 2)
	fifoSmall := cell(t, tb, map[int]string{0: "fifo-cycling", 1: "33"}, 2)
	fifoBig := cell(t, tb, map[int]string{0: "fifo-cycling", 1: "32768"}, 2)
	if lifoBig < lifoSmall*0.97 {
		t.Errorf("LIFO degraded with pool size: %.2f -> %.2f", lifoSmall, lifoBig)
	}
	if fifoBig >= fifoSmall*0.99 {
		t.Errorf("FIFO cycling shows no residency cliff: %.2f -> %.2f", fifoSmall, fifoBig)
	}
	if rows := allRows(tb, map[int]string{0: "lifo-warm"}); len(rows) != 5 {
		t.Errorf("lifo rows: %d", len(rows))
	}
}

func TestAblDDIOShape(t *testing.T) {
	tb := runExp(t, "abl-ddio")[0]
	miss1 := cell(t, tb, map[int]string{0: "1"}, 2)
	miss8 := cell(t, tb, map[int]string{0: "8"}, 2)
	if miss1 <= miss8 {
		t.Errorf("narrow DDIO window not worse: 1-way %.1f%% vs 8-way %.1f%%", miss1, miss8)
	}
}

func TestAblReorderShape(t *testing.T) {
	tb := runExp(t, "abl-reorder")[0]
	noLTO := cell(t, tb, map[int]string{0: "no-lto"}, 1)
	lto := cell(t, tb, map[int]string{0: "lto"}, 1)
	reord := cell(t, tb, map[int]string{0: "lto+reorder-count"}, 1)
	if lto <= noLTO {
		t.Errorf("LTO inlining free: %.1f vs %.1f", lto, noLTO)
	}
	if reord < lto*0.99 {
		t.Errorf("reordering regressed: %.2f vs %.2f", reord, lto)
	}
}

func TestFig4FitsShape(t *testing.T) {
	tables := runExp(t, "fig4")
	if len(tables) != 2 {
		t.Fatalf("fig4 returned %d tables", len(tables))
	}
	fits := tables[1]
	for _, variant := range []string{"vanilla", "all"} {
		a := cell(t, fits, map[int]string{0: variant}, 1)
		b := cell(t, fits, map[int]string{0: variant}, 2)
		r2 := cell(t, fits, map[int]string{0: variant}, 3)
		if a <= 0 || b <= 0 {
			t.Errorf("%s: throughput fit %0.2f + %0.2f·f lacks the paper's positive intercept/slope", variant, a, b)
		}
		if r2 < 0.95 {
			t.Errorf("%s: throughput fit R² = %.3f, not near-linear", variant, r2)
		}
		latC := cell(t, fits, map[int]string{0: variant}, 6)
		if latC <= 0 {
			t.Errorf("%s: latency quadratic curvature %.2f not positive", variant, latC)
		}
	}
}

func TestOverloadShape(t *testing.T) {
	tb := runExp(t, "overload")[0]
	if len(tb.Rows) != 12 {
		t.Fatalf("overload surface has %d rows, want 12 (4 policies × 3 factors)", len(tb.Rows))
	}
	// Uncontrolled at 4×: the loss is anonymous — NIC ring overruns, no
	// attributed sheds. Every armed policy at 4× must shed at the RX
	// boundary instead and keep the ring from overflowing blind.
	noneSheds := cell(t, tb, map[int]string{0: "none", 1: "4.0"}, 4)
	noneNIC := cell(t, tb, map[int]string{0: "none", 1: "4.0"}, 5)
	if noneSheds != 0 {
		t.Errorf("policy none booked %v sheds", noneSheds)
	}
	if noneNIC == 0 {
		t.Errorf("policy none at 4×: no NIC-level drops — not actually overloaded")
	}
	for _, policy := range []string{"tail-drop", "red", "priority"} {
		sheds := cell(t, tb, map[int]string{0: policy, 1: "4.0"}, 4)
		if sheds == 0 {
			t.Errorf("%s at 4×: no sheds", policy)
		}
	}
	// Priority shedding protects the high class: its p99 at 4× stays
	// within 2× of the priority run at capacity.
	base := cell(t, tb, map[int]string{0: "priority", 1: "1.0"}, 6)
	over := cell(t, tb, map[int]string{0: "priority", 1: "4.0"}, 6)
	if base <= 0 || over <= 0 {
		t.Fatalf("priority hi-class p99 missing: base=%.2f over=%.2f", base, over)
	}
	if over > 2*base {
		t.Errorf("priority hi-class p99 blew up under 4× load: %.2f µs vs %.2f µs at capacity", over, base)
	}
}
