// The profile-guided-milling ablation: each feedback pass — hot layout,
// classifier compilation, element fusion — toggled on top of the static
// mill on the canonical router. Every variant row carries a differential
// equivalence verdict against the unoptimized graph (the §5 bar: byte-
// identical output frames), and the full build contributes a second table
// with each pass's graph-shape delta straight from Plan.PassStats.
package exp

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/core"
	"packetmill/internal/mill"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
	"packetmill/internal/verify"
)

func init() {
	register("abl-pgo", "ablation: profile-guided milling (hot layout, compiled classifiers, fusion)", ablPGO)
}

// pgoVariants are the ablation rows. All run the X-Change model so the
// deltas isolate the codegen passes, not the metadata model. Each
// feedback pass appears once on its own before the combined row —
// FuseElements matches original element classes, so it needs no
// classcompile prerequisite when run alone.
var pgoVariants = []struct {
	name   string
	static bool
	passes func(prof *mill.Profile) []mill.Pass
}{
	{name: "vanilla"},
	{name: "static-mill", static: true},
	{name: "static+hotlayout", static: true,
		passes: func(p *mill.Profile) []mill.Pass { return []mill.Pass{mill.HotLayout{Profile: p}} }},
	{name: "static+classcompile", static: true,
		passes: func(p *mill.Profile) []mill.Pass { return []mill.Pass{mill.CompileClassifiers{Profile: p}} }},
	{name: "static+fuse", static: true,
		passes: func(p *mill.Profile) []mill.Pass { return []mill.Pass{mill.FuseElements{Profile: p}} }},
	{name: "static+all", static: true, passes: mill.ProfileGuided},
}

// ablPGO builds each variant, checks it byte-equivalent to the vanilla
// graph under headroom load, then measures it at line rate.
func ablPGO(scale float64) *Plan {
	perf := &Table{
		ID:      "abl-pgo",
		Title:   "profile-guided milling (router @1.6 GHz, X-Change model)",
		Columns: []string{"build", "throughput_gbps", "mpps_per_core", "elements", "equivalent"},
	}
	deltas := &Table{
		ID:      "abl-pgo-passes",
		Title:   "per-pass graph deltas (static+all build)",
		Columns: []string{"pass", "elements_before", "elements_after", "conns_before", "conns_after"},
	}
	p := &Plan{Tables: []*Table{perf, deltas}}
	for _, v := range pgoVariants {
		v := v
		p.Unit(func(u *U) {
			o := campusOpts(1.6, 100, pkts(12000, scale))
			o.Model = click.XChange
			o.Seed = u.Seed
			pp, err := core.Parse(nf.Router(32))
			if err != nil {
				panic(fmt.Sprintf("abl-pgo %s: %v", v.name, err))
			}
			pp.Model = click.XChange
			if v.static {
				if err := pp.Mill(); err != nil {
					panic(fmt.Sprintf("abl-pgo %s: %v", v.name, err))
				}
			}
			if v.passes != nil {
				profOpts := o
				profOpts.Packets = pkts(4000, scale)
				prof, err := pp.CaptureProfile(profOpts)
				if err != nil {
					panic(fmt.Sprintf("abl-pgo %s: profile: %v", v.name, err))
				}
				if err := pp.Plan.Apply(v.passes(prof)...); err != nil {
					panic(fmt.Sprintf("abl-pgo %s: %v", v.name, err))
				}
			}

			// Equivalence gate: the transformed graph must emit the same
			// bytes as the untouched one. Low rate keeps both builds
			// congestion-free so the diff is pure semantics.
			vp, err := core.Parse(nf.Router(32))
			if err != nil {
				panic(fmt.Sprintf("abl-pgo %s: %v", v.name, err))
			}
			eq := testbed.Options{
				FreqGHz: 3.0, Model: click.XChange, RateGbps: 5,
				Packets: 2000, Seed: u.Seed,
			}
			eqB := eq
			eqB.Opt = pp.Plan.Opt
			if pp.Plan.MetaLayout != nil {
				eqB.MetaLayout = pp.Plan.MetaLayout
			}
			rep, err := verify.DifferentialGraphs(vp.Plan.Graph, pp.Plan.Graph, eq, eqB)
			if err != nil {
				panic(fmt.Sprintf("abl-pgo %s: differential: %v", v.name, err))
			}
			equiv := "yes"
			if !rep.Equivalent() {
				equiv = "NO: " + rep.String()
			}

			res, err := pp.Run(o)
			if err != nil {
				panic(fmt.Sprintf("abl-pgo %s: %v", v.name, err))
			}
			u.Add(v.name, f1(res.Gbps()), f2(res.Mpps()),
				fmt.Sprint(len(pp.Plan.Graph.Elements)), equiv)
			if v.name == "static+all" {
				for _, st := range pp.Plan.PassStats {
					u.AddTo(1, st.Pass,
						fmt.Sprint(st.ElementsBefore), fmt.Sprint(st.ElementsAfter),
						fmt.Sprint(st.ConnsBefore), fmt.Sprint(st.ConnsAfter))
				}
			}
		})
	}
	return p
}
