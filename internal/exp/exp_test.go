package exp

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// tiny scale for CI-speed runs.
const tiny = 0.1

var (
	expCacheMu sync.Mutex
	expCache   = map[string][]*Table{}
)

// runExp runs one exhibit at tiny scale on 4 workers (exercising the
// parallel scheduler) and caches the tables so shape tests that share an
// exhibit don't re-run it.
func runExp(t *testing.T, id string) []*Table {
	t.Helper()
	if testing.Short() {
		t.Skip("exhibit regeneration skipped in -short mode (race tier)")
	}
	expCacheMu.Lock()
	defer expCacheMu.Unlock()
	if tbs, ok := expCache[id]; ok {
		return tbs
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown exhibit %s", id)
	}
	tbs := e.RunParallel(tiny, 4)
	expCache[id] = tbs
	return tbs
}

func cell(t *testing.T, tb *Table, rowMatch map[int]string, col int) float64 {
	t.Helper()
	for _, r := range tb.Rows {
		ok := true
		for i, want := range rowMatch {
			if r[i] != want {
				ok = false
				break
			}
		}
		if ok {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				t.Fatalf("cell %v/%d: %v", rowMatch, col, err)
			}
			return v
		}
	}
	t.Fatalf("row %v not found in %s", rowMatch, tb.ID)
	return 0
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-burst", "abl-ddio", "abl-pgo", "abl-pool", "abl-reorder", "abl-vector",
		"conntrack", "fig1", "fig10", "fig11a", "fig11b", "fig4", "fig5a", "fig5b",
		"fig6", "fig7", "fig8", "fig9", "flowlog", "multicore", "overload", "tab1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("ByID broken")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a ghost")
	}
}

func TestTSVRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "y", Columns: []string{"a", "b"}}
	tb.Add("1", "2")
	s := tb.TSV()
	if !strings.Contains(s, "a\tb") || !strings.Contains(s, "1\t2") {
		t.Fatalf("TSV: %q", s)
	}
}

func TestFig1Shape(t *testing.T) {
	tb := runExp(t, "fig1")[0]
	// PacketMill's knee is to the right: at 100 Gbps offered it must
	// push more throughput at lower p99 than vanilla.
	vThr := cell(t, tb, map[int]string{0: "vanilla", 1: "100.0"}, 2)
	pThr := cell(t, tb, map[int]string{0: "packetmill", 1: "100.0"}, 2)
	vP99 := cell(t, tb, map[int]string{0: "vanilla", 1: "100.0"}, 3)
	pP99 := cell(t, tb, map[int]string{0: "packetmill", 1: "100.0"}, 3)
	if pThr <= vThr {
		t.Errorf("saturated throughput: packetmill %.1f ≤ vanilla %.1f", pThr, vThr)
	}
	if pP99 >= vP99 {
		t.Errorf("saturated p99: packetmill %.1f ≥ vanilla %.1f µs", pP99, vP99)
	}
	// At light load both serve with low latency.
	vLight := cell(t, tb, map[int]string{0: "vanilla", 1: "5.0"}, 3)
	if vLight >= vP99 {
		t.Errorf("no latency knee: light-load p99 %.1f ≥ saturated %.1f", vLight, vP99)
	}
}

func TestFig4Shape(t *testing.T) {
	tb := runExp(t, "fig4")[0]
	// Throughput grows with frequency for every variant, and the fully
	// optimized build dominates vanilla at every frequency.
	for _, f := range []string{"1.2", "2.2", "3.0"} {
		v := cell(t, tb, map[int]string{0: "vanilla", 1: f}, 2)
		a := cell(t, tb, map[int]string{0: "all", 1: f}, 2)
		if a <= v {
			t.Errorf("@%s GHz: all %.1f ≤ vanilla %.1f", f, a, v)
		}
	}
	lo := cell(t, tb, map[int]string{0: "vanilla", 1: "1.2"}, 2)
	hi := cell(t, tb, map[int]string{0: "vanilla", 1: "3.0"}, 2)
	if hi <= lo {
		t.Errorf("vanilla not scaling with frequency: %.1f → %.1f", lo, hi)
	}
	// Median latency at saturation falls as throughput rises.
	lLo := cell(t, tb, map[int]string{0: "vanilla", 1: "1.2"}, 3)
	lHi := cell(t, tb, map[int]string{0: "vanilla", 1: "3.0"}, 3)
	if lHi >= lLo {
		t.Errorf("median latency not falling with frequency: %.1f → %.1f µs", lLo, lHi)
	}
}

func TestTable1Shape(t *testing.T) {
	tb := runExp(t, "tab1")[0]
	vMpps := cell(t, tb, map[int]string{0: "vanilla"}, 4)
	aMpps := cell(t, tb, map[int]string{0: "all"}, 4)
	if aMpps <= vMpps {
		t.Errorf("Mpps: all %.2f ≤ vanilla %.2f", aMpps, vMpps)
	}
	vIPC := cell(t, tb, map[int]string{0: "vanilla"}, 3)
	aIPC := cell(t, tb, map[int]string{0: "all"}, 3)
	if aIPC <= vIPC {
		t.Errorf("IPC: all %.2f ≤ vanilla %.2f", aIPC, vIPC)
	}
	// IPC in a plausible band (Table 1: 2.24–2.59).
	if vIPC < 0.8 || vIPC > 4 {
		t.Errorf("vanilla IPC %.2f implausible", vIPC)
	}
}

func TestFig5aShape(t *testing.T) {
	tb := runExp(t, "fig5a")[0]
	for _, f := range []string{"1.2", "2.0"} {
		cp := cell(t, tb, map[int]string{0: "copying", 1: f}, 2)
		ov := cell(t, tb, map[int]string{0: "overlaying", 1: f}, 2)
		xc := cell(t, tb, map[int]string{0: "x-change", 1: f}, 2)
		if !(xc > ov && ov > cp) {
			t.Errorf("@%s GHz: ordering violated cp=%.1f ov=%.1f xc=%.1f", f, cp, ov, xc)
		}
	}
	// X-Change saturates: its 2.4→3.0 gain is marginal.
	x24 := cell(t, tb, map[int]string{0: "x-change", 1: "2.4"}, 2)
	x30 := cell(t, tb, map[int]string{0: "x-change", 1: "3.0"}, 2)
	if x30 > x24*1.1 {
		t.Errorf("x-change did not saturate: %.1f → %.1f", x24, x30)
	}
}

func TestFig5bCrosses100G(t *testing.T) {
	tb := runExp(t, "fig5b")[0]
	xc := cell(t, tb, map[int]string{0: "x-change", 1: "3.0"}, 2)
	cp := cell(t, tb, map[int]string{0: "copying", 1: "3.0"}, 2)
	if xc <= 100 {
		t.Errorf("two-NIC X-Change = %.1f Gbps, want >100", xc)
	}
	if cp >= xc {
		t.Errorf("copying %.1f ≥ x-change %.1f on two NICs", cp, xc)
	}
}

func TestFig6Shape(t *testing.T) {
	tb := runExp(t, "fig6")[0]
	// PacketMill leads at every size; PPS falls once goodput saturates.
	for _, size := range []string{"64", "704", "1472"} {
		v := cell(t, tb, map[int]string{0: "vanilla", 1: size}, 2)
		p := cell(t, tb, map[int]string{0: "packetmill", 1: size}, 2)
		if p <= v {
			t.Errorf("size %s: packetmill %.1f ≤ vanilla %.1f", size, p, v)
		}
	}
	pps832 := cell(t, tb, map[int]string{0: "packetmill", 1: "832"}, 3)
	pps1472 := cell(t, tb, map[int]string{0: "packetmill", 1: "1472"}, 3)
	if pps1472 >= pps832 {
		t.Errorf("PPS roll-off missing: %.2f @832 ≤ %.2f @1472", pps832, pps1472)
	}
}
