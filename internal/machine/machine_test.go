package machine

import (
	"math"
	"testing"

	"packetmill/internal/cache"
	"packetmill/internal/memsim"
)

func TestComputeScalesWithFrequency(t *testing.T) {
	_, slow := Default(1.0)
	_, fast := Default(2.0)
	slow.Compute(4000)
	fast.Compute(4000)
	if r := slow.NowNS() / fast.NowNS(); math.Abs(r-2.0) > 1e-9 {
		t.Fatalf("compute time ratio = %v, want 2.0", r)
	}
}

func TestMemoryStallsDoNotScaleWithFrequency(t *testing.T) {
	_, slow := Default(1.0)
	_, fast := Default(3.0)
	// Cold DRAM miss: dominated by fixed NS.
	slow.Load(0x5000000, 1)
	fast.Load(0x5000000, 1)
	sn, fn := slow.NowNS(), fast.NowNS()
	// The DRAM + TLB-walk part is identical; only the small L1-fill
	// cycle portion scales. Ratio must be far below the 3× compute ratio.
	if sn/fn > 1.5 {
		t.Fatalf("memory stall scaled with frequency: %v vs %v ns", sn, fn)
	}
}

func TestIPCBandIsPlausible(t *testing.T) {
	// A compute-heavy loop with occasional L1 hits should land between
	// 1 and 4 IPC, like Table 1's 2.2–2.6.
	_, c := Default(3.0)
	c.Store(0x1000, 8)
	for i := 0; i < 1000; i++ {
		c.Compute(10)
		c.Load(0x1000, 8)
	}
	ipc := c.Snapshot().IPC()
	if ipc < 1 || ipc > 4 {
		t.Fatalf("IPC = %v, want within (1,4)", ipc)
	}
}

func TestCallCostsOrdered(t *testing.T) {
	m, _ := Default(2.0)
	virt := m.AddCore(2.0)
	dir := m.AddCore(2.0)
	inl := m.AddCore(2.0)
	obj := memsim.Addr(0x2000)
	// Warm the vtable line so virtual pays only dispatch, not a cold miss.
	virt.Load(obj, 8)
	base := virt.NowNS()
	for i := 0; i < 100; i++ {
		virt.Call(CallVirtual, obj)
	}
	virtCost := virt.NowNS() - base
	for i := 0; i < 100; i++ {
		dir.Call(CallDirect, 0)
	}
	for i := 0; i < 100; i++ {
		inl.Call(CallInlined, 0)
	}
	if !(virtCost > dir.NowNS() && dir.NowNS() > inl.NowNS()) {
		t.Fatalf("call cost ordering violated: virt=%v direct=%v inlined=%v",
			virtCost, dir.NowNS(), inl.NowNS())
	}
}

func TestVirtualCallMispredictsDeterministically(t *testing.T) {
	run := func() float64 {
		_, c := Default(2.0)
		c.Load(0x2000, 8)
		for i := 0; i < 1000; i++ {
			c.Call(CallVirtual, 0x2000)
		}
		return c.NowNS()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("virtual-call cost nondeterministic: %v vs %v", a, b)
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	_, c := Default(2.0)
	c.Compute(100)
	now := c.NowNS()
	c.Idle(now + 500)
	if got := c.NowNS(); math.Abs(got-(now+500)) > 1e-9 {
		t.Fatalf("Idle: now = %v, want %v", got, now+500)
	}
	// Idle into the past must be a no-op.
	c.Idle(10)
	if got := c.NowNS(); math.Abs(got-(now+500)) > 1e-9 {
		t.Fatal("Idle moved the clock backwards")
	}
}

func TestIdleExcludedFromBusyCycles(t *testing.T) {
	_, c := Default(2.0)
	c.Compute(1000)
	busy := c.Snapshot().BusyCycles
	c.Idle(c.NowNS() + 1e6)
	if c.Snapshot().BusyCycles != busy {
		t.Fatal("idle time leaked into busy cycles")
	}
}

func TestSnapshotDelta(t *testing.T) {
	_, c := Default(2.0)
	c.Compute(100)
	a := c.Snapshot()
	c.Compute(100)
	c.Load(0x9000000, 1)
	d := c.Snapshot().Delta(a)
	if d.Instructions != 101 {
		t.Fatalf("delta instructions = %d, want 101", d.Instructions)
	}
	if d.LLCLoads != 1 || d.LLCLoadMisses != 1 {
		t.Fatalf("delta LLC = %d/%d, want 1/1", d.LLCLoads, d.LLCLoadMisses)
	}
}

func TestLoadReturnsServiceLevel(t *testing.T) {
	_, c := Default(2.0)
	if lvl := c.Load(0x3000, 8); lvl != cache.DRAM {
		t.Fatalf("cold load served by %v", lvl)
	}
	if lvl := c.Load(0x3000, 8); lvl != cache.L1 {
		t.Fatalf("warm load served by %v", lvl)
	}
}

func TestAddCorePanicsOnBadFreq(t *testing.T) {
	m := New(cache.DefaultSystemConfig(), DefaultCostModel())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddCore(0)
}

func TestCoresShareLLC(t *testing.T) {
	m := New(cache.DefaultSystemConfig(), DefaultCostModel())
	c1 := m.AddCore(2.0)
	c2 := m.AddCore(2.0)
	c1.Load(0xB00000, 8)
	if lvl := c2.Load(0xB00000, 8); lvl != cache.LLC {
		t.Fatalf("second core load served by %v, want shared LLC", lvl)
	}
	if len(m.Cores()) != 2 {
		t.Fatalf("Cores() = %d", len(m.Cores()))
	}
}

func TestThroughputFrequencyShape(t *testing.T) {
	// rate(f) must grow with f but sublinearly once fixed-NS stalls are
	// present — the Figure 4 family.
	perPkt := func(f float64) float64 {
		_, c := Default(f)
		for i := 0; i < 1000; i++ {
			c.Compute(300)
			c.Load(memsim.Addr(0x4000000+i*4096), 64) // cold misses
		}
		return c.NowNS() / 1000
	}
	t12, t30 := perPkt(1.2), perPkt(3.0)
	if t30 >= t12 {
		t.Fatal("higher frequency not faster")
	}
	speedup := t12 / t30
	if speedup >= 3.0/1.2 {
		t.Fatalf("speedup %v ≥ frequency ratio; fixed stalls missing", speedup)
	}
	if speedup < 1.2 {
		t.Fatalf("speedup %v too small; compute not scaling", speedup)
	}
}

func TestCallKindString(t *testing.T) {
	if CallVirtual.String() != "virtual" || CallDirect.String() != "direct" || CallInlined.String() != "inlined" {
		t.Fatal("CallKind.String broken")
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// No operation may ever move a core's clock backwards.
	_, c := Default(2.0)
	r := uint64(4242)
	next := func() uint64 { r = r*6364136223846793005 + 1; return r }
	last := c.NowNS()
	for i := 0; i < 20000; i++ {
		switch next() % 5 {
		case 0:
			c.Compute(float64(next() % 100))
		case 1:
			c.Load(memsim.Addr(next()%(64<<20)), 8)
		case 2:
			c.Store(memsim.Addr(next()%(64<<20)), 8)
		case 3:
			c.Call(CallKind(next()%3), memsim.Addr(next()%(1<<20)))
		case 4:
			c.Idle(c.NowNS() + float64(next()%50))
		}
		now := c.NowNS()
		if now < last {
			t.Fatalf("clock went backwards at op %d: %v -> %v", i, last, now)
		}
		last = now
	}
}
