// Package machine models the device-under-test processor: one or more
// cores with a clock frequency, a cost ledger that converts work into
// simulated time, and perf-style counters (instructions, cycles, IPC, LLC
// loads/misses) that the experiments read back the way the paper reads
// `perf`.
//
// The accounting split mirrors real hardware:
//
//   - Computation is charged in *instructions*; a superscalar core retires
//     IssueWidth of them per cycle, so n instructions cost n/IssueWidth
//     core cycles. Core cycles shrink in wall-clock time as frequency
//     rises.
//   - Memory stalls beyond L2 are charged in *nanoseconds* (the uncore and
//     DRAM do not speed up with the core clock). L1/L2 hits are charged in
//     cycles.
//   - Idle time (polling an empty ring) advances the wall clock without
//     retiring instructions.
//
// Throughput-vs-frequency therefore comes out as
// rate(f) = 1 / (cycles/f + stall_ns), the same near-linear-with-intercept
// family the paper fits in Figure 4.
package machine

import (
	"fmt"

	"packetmill/internal/cache"
	"packetmill/internal/memsim"
)

// CostModel collects the per-operation cycle prices. The defaults were
// calibrated so that the paper's vanilla router spends ≈350 core cycles
// per packet at 3 GHz (Table 1: 8.66 Mpps on one 3-GHz core) and the
// relative savings of each optimization land in the published bands.
type CostModel struct {
	// IssueWidth is the instructions retired per un-stalled cycle.
	IssueWidth float64
	// InlinedCallCyc / DirectCallCyc / VirtualCallCyc price element hand-off.
	// A virtual call additionally loads the vtable pointer through the
	// cache hierarchy, so its total cost depends on where the element
	// object lives — that part is charged by the caller.
	InlinedCallCyc float64
	DirectCallCyc  float64
	VirtualCallCyc float64
	// BranchMispredictCyc is the flush penalty for a mispredicted
	// indirect branch; graph traversal in the vanilla binary eats a
	// fraction of these per hop.
	BranchMispredictCyc float64
	// IndirectMispredictRate is the probability a *virtual* element hop
	// mispredicts (the BTB struggles once the graph has many targets).
	IndirectMispredictRate float64
}

// DefaultCostModel returns the calibrated cost model used everywhere.
func DefaultCostModel() CostModel {
	return CostModel{
		IssueWidth:             4,
		InlinedCallCyc:         0,
		DirectCallCyc:          3,
		VirtualCallCyc:         6,
		BranchMispredictCyc:    17,
		IndirectMispredictRate: 0.08,
	}
}

// Machine is the whole DUT: the shared memory system plus its cores.
type Machine struct {
	Sys   *cache.System
	Cost  CostModel
	cores []*Core
}

// New builds a machine with the given memory system config; cores are added
// with AddCore.
func New(memCfg cache.SystemConfig, cost CostModel) *Machine {
	return &Machine{Sys: cache.NewSystem(memCfg), Cost: cost}
}

// Default returns a machine with the default memory system and cost model
// and one core at freqGHz.
func Default(freqGHz float64) (*Machine, *Core) {
	m := New(cache.DefaultSystemConfig(), DefaultCostModel())
	return m, m.AddCore(freqGHz)
}

// AddCore attaches a core running at freqGHz.
func (m *Machine) AddCore(freqGHz float64) *Core {
	if freqGHz <= 0 {
		panic(fmt.Sprintf("machine: invalid frequency %v", freqGHz))
	}
	c := &Core{
		ID:      len(m.cores),
		FreqGHz: freqGHz,
		Mem:     m.Sys.NewCore(),
		mach:    m,
	}
	m.cores = append(m.cores, c)
	return c
}

// Cores returns the attached cores.
func (m *Machine) Cores() []*Core { return m.cores }

// Core is one hardware thread's ledger.
type Core struct {
	ID      int
	FreqGHz float64
	Mem     *cache.Hierarchy
	mach    *Machine

	// Ledger. coreCycles are frequency-scaled; stallNS and idleNS are
	// wall-clock.
	coreCycles float64
	stallNS    float64
	idleNS     float64
	instrs     uint64

	// mispredictSeed drives the deterministic mispredict pattern.
	mispredictAcc float64
}

// NowNS returns this core's wall-clock position in nanoseconds.
func (c *Core) NowNS() float64 {
	return c.coreCycles/c.FreqGHz + c.stallNS + c.idleNS
}

// Compute charges n instructions of straight-line work.
func (c *Core) Compute(n float64) {
	if n <= 0 {
		return
	}
	c.instrs += uint64(n)
	c.coreCycles += n / c.mach.Cost.IssueWidth
}

// Cycles charges raw core cycles without retiring instructions
// (pipeline bubbles, fixed-function work).
func (c *Core) Cycles(n float64) {
	if n > 0 {
		c.coreCycles += n
	}
}

// Load charges a read of [addr, addr+size) through the cache hierarchy and
// returns the level that served it.
func (c *Core) Load(addr memsim.Addr, size uint64) cache.Level {
	cost := c.Mem.Access(addr, size, false)
	c.instrs++ // the load µop itself
	c.coreCycles += cost.Cycles
	c.stallNS += cost.NS
	return cost.ServedBy
}

// Store charges a write of [addr, addr+size).
func (c *Core) Store(addr memsim.Addr, size uint64) cache.Level {
	cost := c.Mem.Access(addr, size, true)
	c.instrs++
	c.coreCycles += cost.Cycles
	c.stallNS += cost.NS
	return cost.ServedBy
}

// CallKind describes how an element hop is dispatched after optimization.
type CallKind int

// Dispatch flavours, from most expensive to free.
const (
	CallVirtual CallKind = iota // vtable load + indirect branch
	CallDirect                  // direct call instruction
	CallInlined                 // no call at all
)

func (k CallKind) String() string {
	switch k {
	case CallVirtual:
		return "virtual"
	case CallDirect:
		return "direct"
	case CallInlined:
		return "inlined"
	}
	return "?"
}

// Call charges one element hand-off. For virtual dispatch, objAddr is the
// callee object whose vtable pointer must be loaded; mispredictions are
// charged deterministically at the configured rate.
func (c *Core) Call(kind CallKind, objAddr memsim.Addr) {
	switch kind {
	case CallInlined:
		c.Cycles(c.mach.Cost.InlinedCallCyc)
	case CallDirect:
		c.instrs += 2 // call + ret
		c.Cycles(c.mach.Cost.DirectCallCyc)
	case CallVirtual:
		c.instrs += 3 // load vptr, indirect call, ret
		c.Load(objAddr, 8)
		c.Cycles(c.mach.Cost.VirtualCallCyc)
		c.mispredictAcc += c.mach.Cost.IndirectMispredictRate
		if c.mispredictAcc >= 1 {
			c.mispredictAcc -= 1
			c.Cycles(c.mach.Cost.BranchMispredictCyc)
		}
	}
}

// Idle advances the wall clock to atNS if that is in the future; used when
// the core polls an empty RX ring and the next packet has not arrived yet.
func (c *Core) Idle(atNS float64) {
	now := c.NowNS()
	if atNS > now {
		c.idleNS += atNS - now
	}
}

// Counters is a perf snapshot.
type Counters struct {
	Instructions uint64
	// BusyCycles counts cycles the core was executing or stalled on
	// memory (idle excluded), in core-clock cycles at the current
	// frequency.
	BusyCycles float64
	WallNS     float64
	IdleNS     float64
	TLBMisses  uint64
	// LLC counters, scoped to this core's own demand traffic (its L2
	// misses and where they were served). Summing the per-core counters
	// over all cores reproduces the system-wide LLC totals; DMA traffic
	// is excluded from both, like perf's core LLC events.
	LLCLoads       uint64
	LLCLoadMisses  uint64
	LLCStores      uint64
	LLCStoreMisses uint64
}

// IPC returns instructions per (busy) cycle.
func (ct Counters) IPC() float64 {
	if ct.BusyCycles <= 0 {
		return 0
	}
	return float64(ct.Instructions) / ct.BusyCycles
}

// Snapshot reads the core's counters. LLC counters are scoped to this
// core's own demand traffic (see Counters); use Machine.Sys.LLCCounters
// for the system-wide view.
func (c *Core) Snapshot() Counters {
	return Counters{
		Instructions:   c.instrs,
		BusyCycles:     c.coreCycles + c.stallNS*c.FreqGHz,
		WallNS:         c.NowNS(),
		IdleNS:         c.idleNS,
		TLBMisses:      c.Mem.TLBMisses,
		LLCLoads:       c.Mem.LLCLoads,
		LLCLoadMisses:  c.Mem.LLCLoadMisses,
		LLCStores:      c.Mem.LLCStores,
		LLCStoreMisses: c.Mem.LLCStoreMisses,
	}
}

// Delta returns the counter difference b - a, assuming b was captured after a.
func (b Counters) Delta(a Counters) Counters {
	return Counters{
		Instructions:   b.Instructions - a.Instructions,
		BusyCycles:     b.BusyCycles - a.BusyCycles,
		WallNS:         b.WallNS - a.WallNS,
		IdleNS:         b.IdleNS - a.IdleNS,
		TLBMisses:      b.TLBMisses - a.TLBMisses,
		LLCLoads:       b.LLCLoads - a.LLCLoads,
		LLCLoadMisses:  b.LLCLoadMisses - a.LLCLoadMisses,
		LLCStores:      b.LLCStores - a.LLCStores,
		LLCStoreMisses: b.LLCStoreMisses - a.LLCStoreMisses,
	}
}
