package core

import (
	"strings"
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/layout"
	"packetmill/internal/nf"
	"packetmill/internal/testbed"
)

func quickOpts() testbed.Options {
	return testbed.Options{FreqGHz: 2.3, RateGbps: 20, Packets: 3000}
}

func TestParseAndRunVanilla(t *testing.T) {
	p, err := Parse(nf.Forwarder(0, 32))
	if err != nil {
		t.Fatal(err)
	}
	p.Model = click.Copying
	res, err := p.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("no throughput")
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse("this is not click"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMillChangesIRAndSpeedsUp(t *testing.T) {
	mk := func(milled bool) (*Pipeline, *testbed.Result) {
		p, err := Parse(nf.Router(32))
		if err != nil {
			t.Fatal(err)
		}
		p.Model = click.Copying
		if milled {
			if err := p.Mill(); err != nil {
				t.Fatal(err)
			}
		}
		o := quickOpts()
		o.RateGbps = 100
		o.FreqGHz = 1.2
		o.Packets = 6000
		res, err := p.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return p, res
	}
	vp, vres := mk(false)
	mp, mres := mk(true)
	if mres.Gbps() <= vres.Gbps() {
		t.Fatalf("mill did not speed up: %.1f vs %.1f", mres.Gbps(), vres.Gbps())
	}
	if strings.Contains(vp.IR().Dump(), "inlined body") {
		t.Fatal("vanilla IR already inlined")
	}
	if !strings.Contains(mp.IR().Dump(), "inlined body") {
		t.Fatal("milled IR not inlined")
	}
	if len(mp.Notes()) == 0 {
		t.Fatal("no pass notes")
	}
}

func TestReorderMetadataPipeline(t *testing.T) {
	p, err := Parse(nf.Router(32))
	if err != nil {
		t.Fatal(err)
	}
	p.Model = click.Copying
	if err := p.ReorderMetadata(quickOpts(), layout.ByAccessCount); err != nil {
		t.Fatal(err)
	}
	if p.Plan.MetaLayout == nil {
		t.Fatal("no reordered layout")
	}
	// The router's hot annotation must land in the first cache line.
	if off := p.Plan.MetaLayout.Offset(layout.FieldAnnoDstIP); off >= 64 {
		t.Fatalf("anno_dst_ip at %d after reorder:\n%s", off, p.Plan.MetaLayout)
	}
	// And the reordered build still runs.
	res, err := p.Run(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("reordered build forwarded nothing")
	}
}

func TestReorderedLayoutNotSlower(t *testing.T) {
	// §4.1: LTO + reordering improves throughput "at no additional
	// cost". At minimum the reordered build must not regress.
	run := func(reorder bool) float64 {
		p, err := Parse(nf.Router(32))
		if err != nil {
			t.Fatal(err)
		}
		p.Model = click.Copying
		if reorder {
			if err := p.ReorderMetadata(quickOpts(), layout.ByAccessCount); err != nil {
				t.Fatal(err)
			}
		}
		o := testbed.Options{FreqGHz: 1.2, RateGbps: 100, Packets: 8000}
		res, err := p.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Gbps()
	}
	base, reordered := run(false), run(true)
	t.Logf("base=%.2f reordered=%.2f Gbps", base, reordered)
	if reordered < base*0.995 {
		t.Fatalf("reordering regressed throughput: %.2f -> %.2f", base, reordered)
	}
}
