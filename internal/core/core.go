// Package core is PacketMill's top-level pipeline — the public face of
// the system of Figure 3. A Pipeline takes an NF configuration file,
// grinds it through the mill's source-code passes, optionally runs the
// profile-guided metadata-reordering pass, selects the metadata-management
// model (X-Change, Overlaying, or Copying), and produces a specialized
// build that the simulated two-node testbed can drive.
//
// Typical use (the quickstart example):
//
//	p, _ := core.Parse(nf.Forwarder(0, 32))
//	p.Model = click.XChange
//	_ = p.Mill()                       // devirtualize+constembed+staticgraph
//	res, _ := p.Run(testbed.Options{FreqGHz: 2.3, RateGbps: 100})
//	fmt.Println(res.Gbps(), "Gbps")
package core

import (
	"fmt"

	"packetmill/internal/click"
	"packetmill/internal/ir"
	"packetmill/internal/layout"
	"packetmill/internal/mill"
	"packetmill/internal/testbed"
)

// Pipeline is one NF's journey from configuration to specialized build.
type Pipeline struct {
	// Plan holds the (possibly transformed) graph and pass decisions.
	Plan *mill.Plan
	// Model is the metadata-management model of the build.
	Model click.MetadataModel
}

// Parse starts a pipeline from Click configuration source.
func Parse(config string) (*Pipeline, error) {
	plan, err := mill.NewPlan(config)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Plan: plan, Model: click.XChange}, nil
}

// Mill applies the given passes (default: the full PacketMill pipeline —
// dead-code elimination, devirtualization, constant embedding, static
// graph).
func (p *Pipeline) Mill(passes ...mill.Pass) error {
	if len(passes) == 0 {
		passes = mill.PacketMill()
	}
	return p.Plan.Apply(passes...)
}

// options folds the plan into testbed options.
func (p *Pipeline) options(o testbed.Options) testbed.Options {
	o.Model = p.Model
	o.Opt = p.Plan.Opt
	if p.Plan.MetaLayout != nil {
		o.MetaLayout = p.Plan.MetaLayout
	}
	return o
}

// Run drives the specialized build on the simulated testbed.
func (p *Pipeline) Run(o testbed.Options) (*testbed.Result, error) {
	return testbed.RunGraph(p.Plan.Graph, p.options(o))
}

// CaptureProfile executes a short telemetered run with the current build
// and digests the per-element attribution into a profile for the
// profile-guided passes (a few thousand packets suffice).
func (p *Pipeline) CaptureProfile(profileOpts testbed.Options) (*mill.Profile, error) {
	profileOpts.Telemetry = true
	res, err := testbed.RunGraph(p.Plan.Graph, p.options(profileOpts))
	if err != nil {
		return nil, fmt.Errorf("core: profiling run: %w", err)
	}
	if res.Telemetry == nil || len(res.Telemetry.Elements) == 0 {
		return nil, fmt.Errorf("core: profiling run recorded no per-element attribution")
	}
	return mill.FromReport(res.Telemetry), nil
}

// MillProfileGuided applies the profile-guided passes — hot-path layout,
// classifier compilation, cross-element fusion — on top of whatever
// passes already ran. prof may be nil: the passes then fall back to
// structural heuristics (see mill.ProfileGuided).
func (p *Pipeline) MillProfileGuided(prof *mill.Profile) error {
	return p.Plan.Apply(mill.ProfileGuided(prof)...)
}

// ReorderMetadata runs the profile-guided metadata-reordering pass
// (§3.2.2): execute a short profiling run with the current build, then
// re-pack the descriptor layout by the measured access counts. profileOpts
// configures the profiling run (a few thousand packets suffice).
func (p *Pipeline) ReorderMetadata(profileOpts testbed.Options, crit layout.SortCriterion) error {
	profileOpts.Profile = true
	po := p.options(profileOpts)
	res, err := testbed.RunGraph(p.Plan.Graph, po)
	if err != nil {
		return fmt.Errorf("core: profiling run: %w", err)
	}
	if res.Prof == nil || res.Prof.Total() == 0 {
		return fmt.Errorf("core: profiling run recorded no metadata accesses")
	}
	base := po.MetaLayout
	if base == nil {
		base = click.DefaultMetaLayout(p.Model)
	}
	return p.Plan.Apply(mill.ReorderMeta{Base: base, Profile: res.Prof, Criterion: crit})
}

// PruneMetadata runs the profile-guided dead-field removal pass (the
// future-work extension of §3.2.2): execute a short profiling run, then
// drop descriptor fields the NF never touches.
func (p *Pipeline) PruneMetadata(profileOpts testbed.Options) error {
	profileOpts.Profile = true
	po := p.options(profileOpts)
	res, err := testbed.RunGraph(p.Plan.Graph, po)
	if err != nil {
		return fmt.Errorf("core: profiling run: %w", err)
	}
	if res.Prof == nil || res.Prof.Total() == 0 {
		return fmt.Errorf("core: profiling run recorded no metadata accesses")
	}
	base := po.MetaLayout
	if base == nil {
		base = click.DefaultMetaLayout(p.Model)
	}
	return p.Plan.Apply(mill.PruneMeta{Base: base, Profile: res.Prof})
}

// IR renders the current plan as a dispatch-level IR module.
func (p *Pipeline) IR() *ir.Module {
	return mill.BuildModule(p.Plan, p.Model)
}

// Notes returns the pass log.
func (p *Pipeline) Notes() []string { return p.Plan.Notes }
