// Package conntrack is the million-flow state plane: per-core-sharded
// connection tracking built for PacketMill's run-to-completion model.
// Each core owns one Shard — a preallocated entry slab indexed by a
// cuckoo hash table (the same rte_hash-style table the NAT already
// uses), aged by a hierarchical timer wheel, and bounded by a TCP-state-
// aware eviction policy. Nothing in the per-packet path allocates,
// takes a lock, or shares a cache line with another core: the slab, the
// wheel, and the per-class activity lists are all index-linked fixed
// storage, so a shard holds a million concurrent flows at steady state
// with 0 allocs/packet.
//
// Under pressure the shard does not grow: a new flow displaces the
// oldest resident of the cheapest eviction class (embryonic half-opens
// first, established connections last), and only when nothing evictable
// remains is the packet refused — booked under the DropFlowTable*
// taxonomy so the conservation invariant (offered == tx + drops) still
// balances through a SYN flood.
package conntrack

import (
	"fmt"

	"packetmill/internal/cuckoo"
	"packetmill/internal/machine"
	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
)

// Key is the flow 5-tuple, shared with the cuckoo table.
type Key = cuckoo.Key

// entryBytes is the simulated footprint of one slab entry: one cache
// line, like a packed C conntrack entry. Touching an entry charges a
// line load through the simulated hierarchy, so a million-flow table
// generates the LLC pressure a real one would.
const entryBytes = memsim.CacheLineSize

// Entry is one tracked flow. Fields the datapath reads are exported;
// the index links threading the wheel and activity lists are not.
type Entry struct {
	Key     Key
	Value   uint64 // caller payload (the NAT keeps its external port here)
	State   State
	Packets uint64
	Bytes   uint64  // wire bytes carried by the flow (element-maintained)
	Created float64 // arrival of the first segment, simulated ns
	Last    float64 // arrival of the most recent segment, simulated ns

	// Sampled per-flow TX latency, accumulated by the flow log's depart
	// hook. Zero when flow logging is off or the flow was never sampled.
	LatSumNS   float64
	LatMaxNS   float64
	LatSamples uint32

	class Class
	live  bool

	// Timer-wheel linkage (index-based intrusive list).
	deadTick             int64
	wheelPos             int32
	wheelNext, wheelPrev int32

	// Per-class activity list linkage: least-recent at the head, so the
	// head is always the eviction victim for its class.
	lruNext, lruPrev int32
}

// Cause tells the reclaim callback why an entry is leaving the table.
type Cause uint8

const (
	// CauseExpired: the idle timeout fired on the timer wheel.
	CauseExpired Cause = iota
	// CauseEvicted: displaced by a new flow under table pressure.
	CauseEvicted
	// CauseDeleted: removed explicitly (flow teardown, test cleanup).
	CauseDeleted
	// CauseMigrated: exported to another core's shard; the flow lives
	// on, so owners must not recycle its resources.
	CauseMigrated
)

var causeNames = [...]string{"expired", "evicted", "deleted", "migrated"}

// String names the cause the way trace events print it.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "invalid"
}

// Verdict is the per-packet outcome of Track.
type Verdict uint8

const (
	// VerdictNew: the packet opened a flow; an entry was installed.
	VerdictNew Verdict = iota
	// VerdictPass: the packet matched a tracked flow.
	VerdictPass
	// VerdictInvalid: strict mode refused a mid-stream TCP pickup.
	VerdictInvalid
	// VerdictFull: the table is at capacity with nothing evictable.
	VerdictFull
	// VerdictNoResource: the caller's resource hook refused the flow
	// (the NAT's port pool ran dry).
	VerdictNoResource
)

// Config sizes and tunes one shard.
type Config struct {
	// Capacity is the maximum number of concurrent flows. The cuckoo
	// index is provisioned with headroom above it, so refusals come
	// from the eviction policy, not hash clustering.
	Capacity int
	// Timeouts are the state-dependent idle limits; zero fields take
	// DefaultTimeouts.
	Timeouts Timeouts
	// TickNS is the wheel granularity (default 1 ms of simulated time).
	TickNS float64
	// SweepBudget bounds expirations per Advance call so a mass-expiry
	// storm amortizes across bursts (default 256).
	SweepBudget int
	// Strict refuses TCP packets for unknown flows that do not open
	// with a SYN (VerdictInvalid) instead of admitting a mid-stream
	// pickup as established.
	Strict bool
	// ProtectEstablished forbids evicting ClassEstablished entries: a
	// full table of real connections refuses new flows (VerdictFull,
	// booked as flow-table-full) instead of cannibalizing them.
	ProtectEstablished bool
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	z := Timeouts{}
	d := DefaultTimeouts()
	if c.Timeouts == z {
		c.Timeouts = d
	} else {
		if c.Timeouts.Embryonic == 0 {
			c.Timeouts.Embryonic = d.Embryonic
		}
		if c.Timeouts.Established == 0 {
			c.Timeouts.Established = d.Established
		}
		if c.Timeouts.Closing == 0 {
			c.Timeouts.Closing = d.Closing
		}
		if c.Timeouts.Untracked == 0 {
			c.Timeouts.Untracked = d.Untracked
		}
	}
	if c.TickNS <= 0 {
		c.TickNS = 1e6
	}
	if c.SweepBudget <= 0 {
		c.SweepBudget = 256
	}
	return c
}

// Stats is the shard's counter ledger; Occupancy and wheel lag are read
// live off the shard.
type Stats struct {
	Insertions  uint64
	Lookups     uint64
	Hits        uint64
	Expirations uint64
	Evictions   [NumClasses]uint64
	// RefusedFull counts VerdictFull packets, RefusedInvalid the strict-
	// mode VerdictInvalid ones. The caller books the matching
	// DropFlowTable* reasons; these stay here so shard-level accounting
	// is self-contained.
	RefusedFull    uint64
	RefusedInvalid uint64
	MigratedIn     uint64
	MigratedOut    uint64
	// MaxWheelLagNS is the worst wheel-time lag observed at an Advance.
	MaxWheelLagNS float64
}

// EvictionsTotal sums the per-class eviction counters.
func (s *Stats) EvictionsTotal() uint64 {
	var t uint64
	for _, v := range s.Evictions {
		t += v
	}
	return t
}

// listHead is one intrusive activity list (least-recent first).
type listHead struct{ head, tail int32 }

// Shard is one core's flow table. Not safe for concurrent use — that is
// the point: one shard per core, migration via explicit export/import.
type Shard struct {
	cfg   Config
	table *cuckoo.Table
	ents  []Entry
	free  int32 // free-slot list through lruNext
	liveN int
	w     wheel
	act   [NumClasses]listHead
	base  memsim.Addr
	stats Stats
	now   float64

	// OnReclaim, when set, observes every entry leaving the table with
	// the cause. The NAT recycles external ports here. The entry is
	// still intact when called; it is freed immediately after.
	OnReclaim func(e *Entry, cause Cause)

	// evictKey is scratch for the cuckoo eviction callback (avoids a
	// closure allocation per insert).
	evictCb func() (Key, bool)
}

// NewShard builds a shard with cfg.Capacity preallocated entries, the
// cuckoo index, and the timer wheel, placing simulated state in arena.
func NewShard(cfg Config, arena *memsim.Arena, seed uint64) *Shard {
	cfg = cfg.withDefaults()
	s := &Shard{
		cfg:   cfg,
		table: cuckoo.New(cfg.Capacity, arena, seed^0x636f6e6e),
		ents:  make([]Entry, cfg.Capacity),
		base:  arena.Alloc(uint64(cfg.Capacity)*entryBytes, memsim.PageSize),
	}
	for c := range s.act {
		s.act[c] = listHead{head: noEntry, tail: noEntry}
	}
	// Thread the free list through lruNext.
	s.free = 0
	for i := range s.ents {
		s.ents[i].lruNext = int32(i + 1)
		s.ents[i].wheelPos = -1
	}
	s.ents[len(s.ents)-1].lruNext = noEntry
	s.w.init(s.ents, cfg.TickNS)
	s.evictCb = s.evictForInsert
	return s
}

// Len reports live flows.
func (s *Shard) Len() int { return s.liveN }

// Capacity reports the slab size.
func (s *Shard) Capacity() int { return len(s.ents) }

// StatsSnapshot copies the counter ledger.
func (s *Shard) StatsSnapshot() Stats { return s.stats }

// WheelLagNS reports how far the wheel trails the last observed clock.
func (s *Shard) WheelLagNS() float64 { return s.w.lagNS(s.now) }

// chargeEntry models the cache cost of touching entry idx.
func (s *Shard) chargeEntry(core *machine.Core, idx int32) {
	if core != nil {
		core.Load(s.base+memsim.Addr(idx)*entryBytes, entryBytes)
		core.Compute(8)
	}
}

// --- activity lists -------------------------------------------------

func (s *Shard) actPush(idx int32) {
	e := &s.ents[idx]
	l := &s.act[e.class]
	e.lruNext = noEntry
	e.lruPrev = l.tail
	if l.tail != noEntry {
		s.ents[l.tail].lruNext = idx
	} else {
		l.head = idx
	}
	l.tail = idx
}

func (s *Shard) actRemove(idx int32) {
	e := &s.ents[idx]
	l := &s.act[e.class]
	if e.lruPrev != noEntry {
		s.ents[e.lruPrev].lruNext = e.lruNext
	} else {
		l.head = e.lruNext
	}
	if e.lruNext != noEntry {
		s.ents[e.lruNext].lruPrev = e.lruPrev
	} else {
		l.tail = e.lruPrev
	}
	e.lruNext, e.lruPrev = noEntry, noEntry
}

// actTouch moves idx to the most-recent end of its class list.
func (s *Shard) actTouch(idx int32) {
	if s.act[s.ents[idx].class].tail == idx {
		return
	}
	s.actRemove(idx)
	s.actPush(idx)
}

// --- slab -----------------------------------------------------------

func (s *Shard) allocEntry() int32 {
	idx := s.free
	if idx == noEntry {
		return noEntry
	}
	s.free = s.ents[idx].lruNext
	e := &s.ents[idx]
	*e = Entry{wheelPos: -1, wheelNext: noEntry, wheelPrev: noEntry,
		lruNext: noEntry, lruPrev: noEntry}
	s.liveN++
	return idx
}

func (s *Shard) freeEntry(idx int32) {
	e := &s.ents[idx]
	e.live = false
	e.State = StateFree
	e.lruNext = s.free
	s.free = idx
	s.liveN--
}

// reclaim removes a live entry: unlink wheel + activity list, notify
// OnReclaim, delete the cuckoo mapping unless the caller owns that step
// (the cuckoo eviction callback deletes it itself), and free the slot.
func (s *Shard) reclaim(core *machine.Core, idx int32, cause Cause, deleteKey bool) {
	e := &s.ents[idx]
	s.w.cancel(idx)
	s.actRemove(idx)
	if s.OnReclaim != nil {
		s.OnReclaim(e, cause)
	}
	if deleteKey {
		s.table.Delete(core, e.Key)
	}
	s.freeEntry(idx)
}

// evictVictim picks the eviction victim: the least-recently-active
// entry of the lowest-priority class that has one. With
// ProtectEstablished the established class is off limits.
func (s *Shard) evictVictim() int32 {
	ceiling := NumClasses
	if s.cfg.ProtectEstablished {
		ceiling = ClassEstablished
	}
	for c := ClassEmbryonic; c < ceiling; c++ {
		if idx := s.act[c].head; idx != noEntry {
			return idx
		}
	}
	return noEntry
}

// evictForInsert is the cuckoo InsertEvict callback: sacrifice the
// current victim (full reclaim except the cuckoo delete, which the
// table performs) and hand its key back for removal.
func (s *Shard) evictForInsert() (Key, bool) {
	idx := s.evictVictim()
	if idx == noEntry {
		return Key{}, false
	}
	e := &s.ents[idx]
	k := e.Key
	s.stats.Evictions[e.class]++
	s.reclaim(nil, idx, CauseEvicted, false)
	return k, true
}

// Advance drives the timer wheel to nowNS, expiring idle flows within
// the sweep budget. Entries that saw traffic since arming are lazily
// re-armed instead of expired. Returns the number of flows expired.
func (s *Shard) Advance(core *machine.Core, nowNS float64) int {
	if nowNS > s.now {
		s.now = nowNS
	}
	expired := 0
	s.w.advance(nowNS, s.cfg.SweepBudget, func(idx int32) {
		e := &s.ents[idx]
		s.chargeEntry(core, idx)
		deadline := e.Last + s.cfg.Timeouts.forState(e.State)
		if deadline > nowNS {
			s.w.arm(idx, deadline)
			return
		}
		s.stats.Expirations++
		s.reclaim(core, idx, CauseExpired, true)
		expired++
	})
	if lag := s.w.lagNS(nowNS); lag > s.stats.MaxWheelLagNS {
		s.stats.MaxWheelLagNS = lag
	}
	return expired
}

// Lookup finds a flow without updating its state or activity.
func (s *Shard) Lookup(core *machine.Core, k Key) (*Entry, bool) {
	v, ok := s.table.Lookup(core, k)
	if !ok {
		return nil, false
	}
	idx := int32(v)
	s.chargeEntry(core, idx)
	return &s.ents[idx], true
}

// Track is the per-packet operation: look the flow up, advance its TCP
// state, stamp activity, and — for unknown flows — admit it (evicting
// under pressure) or refuse it. value seeds Entry.Value for new flows;
// existing flows keep theirs. No allocation on any path.
func (s *Shard) Track(core *machine.Core, k Key, proto uint8, tcpFlags uint8, nowNS float64, value uint64) (*Entry, Verdict) {
	if e, ok := s.Update(core, k, proto, tcpFlags, nowNS); ok {
		return e, VerdictPass
	}
	return s.Admit(core, k, proto, tcpFlags, nowNS, value)
}

// Update is the hit-only half of Track: advance an existing flow's TCP
// state and stamp its activity, reporting a miss without admitting
// anything. Callers that must allocate a resource before admission (the
// NAT's port pool) use Update + Admit instead of Track.
func (s *Shard) Update(core *machine.Core, k Key, proto uint8, tcpFlags uint8, nowNS float64) (*Entry, bool) {
	if nowNS > s.now {
		s.now = nowNS
	}
	s.stats.Lookups++
	v, ok := s.table.Lookup(core, k)
	if !ok {
		return nil, false
	}
	idx := int32(v)
	s.chargeEntry(core, idx)
	e := &s.ents[idx]
	s.stats.Hits++
	ns := next(e.State, proto, tcpFlags)
	if ns != e.State {
		s.transition(idx, ns, nowNS)
	}
	e.Last = nowNS
	e.Packets++
	s.actTouch(idx)
	if core != nil {
		core.Store(s.base+memsim.Addr(idx)*entryBytes, 16)
	}
	return e, true
}

// Admit installs a new flow for a packet that missed in Update,
// applying the strict-mode check and the eviction policy. value seeds
// Entry.Value.
func (s *Shard) Admit(core *machine.Core, k Key, proto uint8, tcpFlags uint8, nowNS float64, value uint64) (*Entry, Verdict) {
	if nowNS > s.now {
		s.now = nowNS
	}
	// Strict mode refuses TCP mid-stream pickups for unknown flows.
	st := next(StateFree, proto, tcpFlags)
	if s.cfg.Strict && st == StateEstablished && proto == netpkt.ProtoTCP {
		s.stats.RefusedInvalid++
		return nil, VerdictInvalid
	}
	idx, v := s.insert(core, k, st, nowNS, value)
	if v != VerdictNew {
		return nil, v
	}
	return &s.ents[idx], v
}

// insert admits a new flow in state st, evicting under pressure.
func (s *Shard) insert(core *machine.Core, k Key, st State, nowNS float64, value uint64) (int32, Verdict) {
	if s.liveN >= len(s.ents) {
		// Slab full: evict by class priority before anything else.
		vidx := s.evictVictim()
		if vidx == noEntry {
			s.stats.RefusedFull++
			return noEntry, VerdictFull
		}
		s.stats.Evictions[s.ents[vidx].class]++
		s.reclaim(core, vidx, CauseEvicted, true)
	}
	idx := s.allocEntry()
	if idx == noEntry {
		s.stats.RefusedFull++
		return noEntry, VerdictFull
	}
	if err := s.table.InsertEvict(core, k, uint64(idx), s.evictCb); err != nil {
		s.freeEntry(idx)
		s.stats.RefusedFull++
		return noEntry, VerdictFull
	}
	e := &s.ents[idx]
	e.Key = k
	e.Value = value
	e.State = st
	e.class = classOf(st)
	e.live = true
	e.Created = nowNS
	e.Last = nowNS
	e.Packets = 1
	s.actPush(idx)
	s.w.arm(idx, nowNS+s.cfg.Timeouts.forState(st))
	s.stats.Insertions++
	if core != nil {
		core.Store(s.base+memsim.Addr(idx)*entryBytes, entryBytes)
		core.Compute(12)
	}
	return idx, VerdictNew
}

// transition moves an entry between states, re-filing it across class
// lists and re-arming its deadline when the timeout regime changes.
func (s *Shard) transition(idx int32, ns State, nowNS float64) {
	e := &s.ents[idx]
	oldClass, newClass := e.class, classOf(ns)
	oldTimeout := s.cfg.Timeouts.forState(e.State)
	newTimeout := s.cfg.Timeouts.forState(ns)
	if oldClass != newClass {
		s.actRemove(idx)
		e.class = newClass
		s.actPush(idx)
	}
	e.State = ns
	if oldTimeout != newTimeout {
		s.w.cancel(idx)
		s.w.arm(idx, nowNS+newTimeout)
	}
}

// Delete removes a flow explicitly, reporting whether it was present.
func (s *Shard) Delete(core *machine.Core, k Key) bool {
	v, ok := s.table.Lookup(core, k)
	if !ok {
		return false
	}
	s.reclaim(core, int32(v), CauseDeleted, true)
	return true
}

// FlowRecord is a flow's portable state for core-to-core migration.
type FlowRecord struct {
	Key     Key
	Value   uint64
	State   State
	Packets uint64
	Bytes   uint64
	Created float64
	Last    float64
}

// Export removes a flow from the shard for migration: OnReclaim sees
// CauseMigrated (so resources travel with the record instead of being
// recycled) and the portable state is returned.
func (s *Shard) Export(core *machine.Core, k Key) (FlowRecord, bool) {
	v, ok := s.table.Lookup(core, k)
	if !ok {
		return FlowRecord{}, false
	}
	idx := int32(v)
	e := &s.ents[idx]
	rec := FlowRecord{Key: e.Key, Value: e.Value, State: e.State,
		Packets: e.Packets, Bytes: e.Bytes, Created: e.Created, Last: e.Last}
	s.stats.MigratedOut++
	s.reclaim(core, idx, CauseMigrated, true)
	return rec, true
}

// Import installs a migrated flow, preserving its state, payload, and
// history. Under pressure it evicts like any other admission. The
// deadline is re-armed against the flow's true last activity, so a
// migration cannot extend an idle flow's life.
func (s *Shard) Import(core *machine.Core, rec FlowRecord, nowNS float64) (*Entry, Verdict) {
	idx, v := s.insert(core, rec.Key, rec.State, nowNS, rec.Value)
	if v != VerdictNew {
		return nil, v
	}
	e := &s.ents[idx]
	e.Packets = rec.Packets
	e.Bytes = rec.Bytes
	e.Created = rec.Created
	if rec.Last > 0 && rec.Last < e.Last {
		e.Last = rec.Last
		s.w.cancel(idx)
		s.w.arm(idx, rec.Last+s.cfg.Timeouts.forState(e.State))
	}
	s.stats.MigratedIn++
	return e, VerdictNew
}

// ForEachLive visits every live entry; return false from fn to stop.
// Migration scans use it; it is O(capacity), not a datapath operation.
func (s *Shard) ForEachLive(fn func(e *Entry) bool) {
	for i := range s.ents {
		if s.ents[i].live {
			if !fn(&s.ents[i]) {
				return
			}
		}
	}
}

// String summarizes the shard for debug logs.
func (s *Shard) String() string {
	return fmt.Sprintf("conntrack{live=%d/%d armed=%d ins=%d exp=%d evict=%d}",
		s.liveN, len(s.ents), s.w.armed, s.stats.Insertions,
		s.stats.Expirations, s.stats.EvictionsTotal())
}
