// The per-entry TCP state machine. A middlebox tracker sees an arbitrary
// cut of the conversation — often only one direction (a source NAT sees
// outbound segments; the returns may take another path) — so transitions
// accept unidirectional evidence: a client ACK after SYN promotes the
// flow to established without requiring the SYN/ACK to have been
// observed. State drives two policies: the idle timeout armed on the
// timer wheel (embryonic flows age out in seconds, established ones
// persist) and the eviction class under table pressure (embryonic
// evicted first, established last — the shape that makes a SYN flood
// cannibalize itself instead of the long-lived flows).
package conntrack

import "packetmill/internal/netpkt"

// State is the tracked position of a flow in its lifecycle.
type State uint8

const (
	// StateFree marks an unoccupied slab slot; live entries never hold it.
	StateFree State = iota
	// StateUntracked covers non-TCP flows (UDP, ICMP): no handshake to
	// observe, so only the idle timeout applies.
	StateUntracked
	// StateSynSent: a SYN has been seen, nothing more — embryonic.
	StateSynSent
	// StateSynAck: the SYN/ACK came back — still embryonic until the
	// handshake completes.
	StateSynAck
	// StateEstablished: handshake complete (or a mid-stream pickup in
	// loose mode).
	StateEstablished
	// StateFinWait: a FIN has been seen; the flow is winding down.
	StateFinWait
	// StateClosed: an RST arrived (or teardown finished); the entry
	// lingers briefly so late segments match instead of looking new.
	StateClosed

	// NumStates bounds the state space.
	NumStates
)

var stateNames = [NumStates]string{
	"free", "untracked", "syn-sent", "syn-ack", "established", "fin-wait", "closed",
}

// String names the state the way reports print it.
func (s State) String() string {
	if s < NumStates {
		return stateNames[s]
	}
	return "invalid"
}

// Class is the eviction priority group a state maps to. Under table
// pressure victims are taken from the lowest class with a resident
// entry, oldest activity first.
type Class uint8

const (
	// ClassEmbryonic: half-open handshakes — the first to go (SYN-flood
	// entries live here).
	ClassEmbryonic Class = iota
	// ClassTransient: connectionless flows and closing/closed TCP.
	ClassTransient
	// ClassEstablished: full connections — evicted only when nothing
	// cheaper remains.
	ClassEstablished

	// NumClasses bounds the class space.
	NumClasses
)

var classNames = [NumClasses]string{"embryonic", "transient", "established"}

// String names the class the way reports print it.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return "invalid"
}

// classOf maps a state to its eviction class.
func classOf(s State) Class {
	switch s {
	case StateSynSent, StateSynAck:
		return ClassEmbryonic
	case StateEstablished:
		return ClassEstablished
	default:
		return ClassTransient
	}
}

// Timeouts are the state-dependent idle limits, in simulated nanoseconds.
type Timeouts struct {
	// Embryonic applies to SynSent/SynAck — short, so half-open floods
	// age out on their own.
	Embryonic float64
	// Established applies to completed connections.
	Established float64
	// Closing applies to FinWait/Closed — long enough to absorb stray
	// retransmits, short enough to free the slot promptly.
	Closing float64
	// Untracked applies to UDP/ICMP flows.
	Untracked float64
}

// DefaultTimeouts mirrors the shape (not the wall-clock scale) of kernel
// conntrack defaults, compressed so simulated runs exercise expiry.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		Embryonic:   5e9,   // 5 s
		Established: 120e9, // 2 min
		Closing:     10e9,  // 10 s
		Untracked:   30e9,  // 30 s
	}
}

// forState picks the idle limit for a state.
func (t Timeouts) forState(s State) float64 {
	switch s {
	case StateSynSent, StateSynAck:
		return t.Embryonic
	case StateEstablished:
		return t.Established
	case StateFinWait, StateClosed:
		return t.Closing
	default:
		return t.Untracked
	}
}

// next advances the state machine by one observed segment's flags.
// Non-TCP protocols stay untracked. The machine is deliberately loose
// about direction: it tracks the strongest evidence seen from either
// side, which is all a unidirectional vantage can do.
func next(cur State, proto uint8, flags uint8) State {
	if proto != netpkt.ProtoTCP {
		return StateUntracked
	}
	if flags&netpkt.TCPFlagRST != 0 {
		return StateClosed
	}
	if flags&netpkt.TCPFlagFIN != 0 {
		if cur == StateClosed {
			return StateClosed
		}
		return StateFinWait
	}
	switch cur {
	case StateSynSent:
		if flags&netpkt.TCPFlagSYN != 0 {
			if flags&netpkt.TCPFlagACK != 0 {
				return StateSynAck
			}
			return StateSynSent // retransmitted SYN
		}
		if flags&netpkt.TCPFlagACK != 0 {
			return StateEstablished // third leg of the handshake
		}
		return StateSynSent
	case StateSynAck:
		if flags&netpkt.TCPFlagACK != 0 && flags&netpkt.TCPFlagSYN == 0 {
			return StateEstablished
		}
		return StateSynAck
	case StateEstablished:
		return StateEstablished
	case StateFinWait:
		return StateFinWait
	case StateClosed:
		// A fresh SYN on a lingering closed entry is the 5-tuple being
		// reincarnated: restart the handshake instead of resurrecting
		// the corpse.
		if flags&netpkt.TCPFlagSYN != 0 && flags&netpkt.TCPFlagACK == 0 {
			return StateSynSent
		}
		return StateClosed
	default:
		// First segment of an unknown flow.
		if flags&netpkt.TCPFlagSYN != 0 && flags&netpkt.TCPFlagACK == 0 {
			return StateSynSent
		}
		// Mid-stream pickup (loose mode admits it as established; strict
		// mode refuses before calling next).
		return StateEstablished
	}
}
