package conntrack

import (
	"testing"

	"packetmill/internal/memsim"
	"packetmill/internal/netpkt"
)

func testShard(cfg Config) *Shard {
	return NewShard(cfg, memsim.NewArena("ct", memsim.HeapBase, 1<<30), 7)
}

func flowKey(i uint32) Key {
	return Key{SrcIP: 0x0a000000 + i, DstIP: 0x0b000000 + i*13,
		SrcPort: uint16(i%60000) + 1024, DstPort: 443, Proto: netpkt.ProtoTCP}
}

func udpKey(i uint32) Key {
	k := flowKey(i)
	k.Proto = netpkt.ProtoUDP
	return k
}

// establish walks a flow through SYN → SYN/ACK → ACK.
func establish(s *Shard, k Key, now float64) *Entry {
	s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN, now, 0)
	s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN|netpkt.TCPFlagACK, now+1e4, 0)
	e, _ := s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagACK, now+2e4, 0)
	return e
}

func TestTCPLifecycle(t *testing.T) {
	s := testShard(Config{Capacity: 64})
	k := flowKey(1)
	e, v := s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN, 0, 42)
	if v != VerdictNew || e.State != StateSynSent || e.class != ClassEmbryonic {
		t.Fatalf("after SYN: v=%v state=%v class=%v", v, e.State, e.class)
	}
	if e.Value != 42 {
		t.Fatalf("value not seeded: %d", e.Value)
	}
	e, v = s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN|netpkt.TCPFlagACK, 1e4, 0)
	if v != VerdictPass || e.State != StateSynAck {
		t.Fatalf("after SYN/ACK: v=%v state=%v", v, e.State)
	}
	e, _ = s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagACK, 2e4, 0)
	if e.State != StateEstablished || e.class != ClassEstablished {
		t.Fatalf("after ACK: state=%v class=%v", e.State, e.class)
	}
	if e.Value != 42 {
		t.Fatal("value lost across transitions")
	}
	e, _ = s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagFIN|netpkt.TCPFlagACK, 3e4, 0)
	if e.State != StateFinWait || e.class != ClassTransient {
		t.Fatalf("after FIN: state=%v class=%v", e.State, e.class)
	}
	e, _ = s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagRST, 4e4, 0)
	if e.State != StateClosed {
		t.Fatalf("after RST: state=%v", e.State)
	}
	if e.Packets != 5 {
		t.Fatalf("packets=%d, want 5", e.Packets)
	}
}

func TestFlowReincarnation(t *testing.T) {
	s := testShard(Config{Capacity: 64})
	k := flowKey(1)
	establish(s, k, 0)
	s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagRST, 1e5, 0)
	// Same 5-tuple, fresh SYN while the corpse lingers: handshake restarts.
	e, v := s.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagSYN, 2e5, 0)
	if v != VerdictPass || e.State != StateSynSent || e.class != ClassEmbryonic {
		t.Fatalf("reincarnation: v=%v state=%v class=%v", v, e.State, e.class)
	}
}

func TestStrictModeRefusesMidStream(t *testing.T) {
	s := testShard(Config{Capacity: 64, Strict: true})
	e, v := s.Track(nil, flowKey(1), netpkt.ProtoTCP, netpkt.TCPFlagACK, 0, 0)
	if v != VerdictInvalid || e != nil {
		t.Fatalf("strict mid-stream pickup: v=%v e=%v", v, e)
	}
	if s.StatsSnapshot().RefusedInvalid != 1 {
		t.Fatal("refusal not counted")
	}
	// A SYN opens normally, and UDP is never refused.
	if _, v := s.Track(nil, flowKey(2), netpkt.ProtoTCP, netpkt.TCPFlagSYN, 0, 0); v != VerdictNew {
		t.Fatalf("strict SYN open: %v", v)
	}
	if _, v := s.Track(nil, udpKey(3), netpkt.ProtoUDP, 0, 0, 0); v != VerdictNew {
		t.Fatalf("strict UDP open: %v", v)
	}
}

func TestLooseModePicksUpMidStream(t *testing.T) {
	s := testShard(Config{Capacity: 64})
	e, v := s.Track(nil, flowKey(1), netpkt.ProtoTCP, netpkt.TCPFlagACK, 0, 0)
	if v != VerdictNew || e.State != StateEstablished {
		t.Fatalf("loose pickup: v=%v state=%v", v, e.State)
	}
}

func TestIdleExpiry(t *testing.T) {
	s := testShard(Config{Capacity: 256, Timeouts: Timeouts{Untracked: 1e6}})
	var reclaimed []Cause
	s.OnReclaim = func(e *Entry, c Cause) { reclaimed = append(reclaimed, c) }
	for i := uint32(0); i < 10; i++ {
		s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, 0, 0)
	}
	if s.Len() != 10 {
		t.Fatalf("len=%d", s.Len())
	}
	if n := s.Advance(nil, 5e5); n != 0 || s.Len() != 10 {
		t.Fatalf("early expiry: n=%d len=%d", n, s.Len())
	}
	if n := s.Advance(nil, 3e6); n != 10 || s.Len() != 0 {
		t.Fatalf("expiry: n=%d len=%d", n, s.Len())
	}
	if len(reclaimed) != 10 {
		t.Fatalf("OnReclaim calls: %d", len(reclaimed))
	}
	for _, c := range reclaimed {
		if c != CauseExpired {
			t.Fatalf("cause %v", c)
		}
	}
	if st := s.StatsSnapshot(); st.Expirations != 10 {
		t.Fatalf("expirations=%d", st.Expirations)
	}
}

// Activity must push the deadline out without the hot path touching the
// wheel: the wheel fires at the armed deadline, sees fresh LastSeen,
// and re-arms instead of expiring.
func TestLazyRearmKeepsActiveFlowAlive(t *testing.T) {
	s := testShard(Config{Capacity: 64, Timeouts: Timeouts{Untracked: 1e6}})
	k := udpKey(1)
	s.Track(nil, k, netpkt.ProtoUDP, 0, 0, 0)
	for now := 5e5; now <= 5e6; now += 5e5 {
		s.Track(nil, k, netpkt.ProtoUDP, 0, now, 0)
		s.Advance(nil, now)
		if s.Len() != 1 {
			t.Fatalf("active flow expired at %v", now)
		}
	}
	// Silence: one idle timeout later it goes.
	if s.Advance(nil, 5e6+2.1e6); s.Len() != 0 {
		t.Fatal("idle flow survived")
	}
}

func TestEvictionPriority(t *testing.T) {
	s := testShard(Config{Capacity: 8})
	// 4 established flows, then fill the rest with embryonic SYNs.
	for i := uint32(0); i < 4; i++ {
		establish(s, flowKey(i), float64(i)*1e3)
	}
	for i := uint32(100); i < 104; i++ {
		s.Track(nil, flowKey(i), netpkt.ProtoTCP, netpkt.TCPFlagSYN, 1e6, 0)
	}
	if s.Len() != 8 {
		t.Fatalf("len=%d", s.Len())
	}
	// Pressure: 4 more SYNs. Each evicts an embryonic entry (oldest
	// first), never an established one.
	for i := uint32(200); i < 204; i++ {
		if _, v := s.Track(nil, flowKey(i), netpkt.ProtoTCP, netpkt.TCPFlagSYN, 2e6, 0); v != VerdictNew {
			t.Fatalf("pressure insert %d: %v", i, v)
		}
	}
	st := s.StatsSnapshot()
	if st.Evictions[ClassEmbryonic] != 4 || st.Evictions[ClassEstablished] != 0 {
		t.Fatalf("evictions: %v", st.Evictions)
	}
	for i := uint32(0); i < 4; i++ {
		if _, ok := s.Lookup(nil, flowKey(i)); !ok {
			t.Fatalf("established flow %d evicted", i)
		}
	}
	for i := uint32(100); i < 104; i++ {
		if _, ok := s.Lookup(nil, flowKey(i)); ok {
			t.Fatalf("embryonic flow %d survived pressure", i)
		}
	}
}

func TestProtectEstablishedRefusesWhenFull(t *testing.T) {
	s := testShard(Config{Capacity: 4, ProtectEstablished: true})
	for i := uint32(0); i < 4; i++ {
		establish(s, flowKey(i), 0)
	}
	e, v := s.Track(nil, flowKey(99), netpkt.ProtoTCP, netpkt.TCPFlagSYN, 1e6, 0)
	if v != VerdictFull || e != nil {
		t.Fatalf("protected full table: v=%v", v)
	}
	if st := s.StatsSnapshot(); st.RefusedFull != 1 || st.EvictionsTotal() != 0 {
		t.Fatalf("stats: refused=%d evictions=%d", st.RefusedFull, st.EvictionsTotal())
	}
	// Without protection the same insert displaces an established flow.
	s2 := testShard(Config{Capacity: 4})
	for i := uint32(0); i < 4; i++ {
		establish(s2, flowKey(i), 0)
	}
	if _, v := s2.Track(nil, flowKey(99), netpkt.ProtoTCP, netpkt.TCPFlagSYN, 1e6, 0); v != VerdictNew {
		t.Fatalf("unprotected full table: v=%v", v)
	}
	if st := s2.StatsSnapshot(); st.Evictions[ClassEstablished] != 1 {
		t.Fatalf("evictions: %v", st.Evictions)
	}
}

func TestDeleteRecyclesSlot(t *testing.T) {
	s := testShard(Config{Capacity: 4})
	var causes []Cause
	s.OnReclaim = func(e *Entry, c Cause) { causes = append(causes, c) }
	k := udpKey(1)
	s.Track(nil, k, netpkt.ProtoUDP, 0, 0, 7)
	if !s.Delete(nil, k) || s.Len() != 0 {
		t.Fatal("delete failed")
	}
	if s.Delete(nil, k) {
		t.Fatal("double delete")
	}
	if len(causes) != 1 || causes[0] != CauseDeleted {
		t.Fatalf("causes: %v", causes)
	}
	// The slot is reusable at capacity.
	for i := uint32(0); i < 4; i++ {
		if _, v := s.Track(nil, udpKey(10+i), netpkt.ProtoUDP, 0, 0, 0); v != VerdictNew {
			t.Fatalf("refill %d: %v", i, v)
		}
	}
}

func TestExportImportPreservesFlow(t *testing.T) {
	src := testShard(Config{Capacity: 64})
	dst := testShard(Config{Capacity: 64})
	recycled := 0
	src.OnReclaim = func(e *Entry, c Cause) {
		if c != CauseMigrated {
			t.Fatalf("export cause %v", c)
		}
		recycled++
	}
	k := flowKey(1)
	establish(src, k, 0)
	rec, ok := src.Export(nil, k)
	if !ok || src.Len() != 0 {
		t.Fatal("export failed")
	}
	if recycled != 1 {
		t.Fatal("OnReclaim not told about migration")
	}
	e, v := dst.Import(nil, rec, 5e4)
	if v != VerdictNew || e.State != StateEstablished || e.Packets != 3 {
		t.Fatalf("import: v=%v state=%v packets=%d", v, e.State, e.Packets)
	}
	// The migrated flow keeps tracking on the new shard.
	if _, v := dst.Track(nil, k, netpkt.ProtoTCP, netpkt.TCPFlagACK, 6e4, 0); v != VerdictPass {
		t.Fatalf("post-import track: %v", v)
	}
	ss, ds := src.StatsSnapshot(), dst.StatsSnapshot()
	if ss.MigratedOut != 1 || ds.MigratedIn != 1 {
		t.Fatalf("migration counters: out=%d in=%d", ss.MigratedOut, ds.MigratedIn)
	}
	// An imported idle flow expires against its true last activity
	// (one established timeout past the final packet).
	dst.Advance(nil, 2.5e11)
	if dst.Len() != 0 {
		t.Fatal("imported flow immortal")
	}
}

func TestMigratorFollowsBucketMoves(t *testing.T) {
	shards := []*Shard{testShard(Config{Capacity: 64}), testShard(Config{Capacity: 64})}
	bucketOf := func(k Key) int { return int(k.SrcIP) % 16 }
	m := NewMigrator(2, bucketOf)
	// Shard 0 owns flows across buckets 0..15.
	for i := uint32(0); i < 16; i++ {
		establish(shards[0], flowKey(i), 0)
	}
	// The fanout moves buckets 3 and 7 to core 1.
	m.OnMove(3, 0, 1)
	m.OnMove(7, 0, 1)
	m.OnMove(5, 1, 1) // self-move: ignored
	if n := m.Collect(0, nil, shards[0]); n != 2 {
		t.Fatalf("collected %d, want 2", n)
	}
	if shards[0].Len() != 14 {
		t.Fatalf("source len=%d", shards[0].Len())
	}
	if n := m.Adopt(1, nil, shards[1], 1e6); n != 2 {
		t.Fatalf("adopted %d", n)
	}
	for i := uint32(0); i < 16; i++ {
		want := 0
		if b := bucketOf(flowKey(i)); b == 3 || b == 7 {
			want = 1
		}
		if _, ok := shards[want].Lookup(nil, flowKey(i)); !ok {
			t.Fatalf("flow %d not on shard %d", i, want)
		}
	}
	// Migrated flows arrive established — strict tracking continues.
	posted, exported, adopted := m.Counters()
	if posted != 2 || exported != 2 || adopted != 2 {
		t.Fatalf("counters: %d %d %d", posted, exported, adopted)
	}
	if mv, rec := m.PendingFor(0); mv != 0 || rec != 0 {
		t.Fatalf("pending after drain: %d %d", mv, rec)
	}
}

func TestCanonicalMergesDirections(t *testing.T) {
	fwd := Key{SrcIP: 0x0a000001, DstIP: 0x0b000001, SrcPort: 40000, DstPort: 443, Proto: 6}
	rev := Key{SrcIP: 0x0b000001, DstIP: 0x0a000001, SrcPort: 443, DstPort: 40000, Proto: 6}
	cf, sf := Canonical(fwd)
	cr, sr := Canonical(rev)
	if cf != cr {
		t.Fatalf("directions diverge: %+v vs %+v", cf, cr)
	}
	if sf == sr {
		t.Fatal("both directions claim the same orientation")
	}
}

func TestStatsOccupancyAndLag(t *testing.T) {
	s := testShard(Config{Capacity: 1024, SweepBudget: 8, Timeouts: Timeouts{Untracked: 1e6}})
	for i := uint32(0); i < 512; i++ {
		s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, 0, 0)
	}
	// One budgeted sweep cannot clear 512 expirations: lag shows up.
	s.Advance(nil, 1e7)
	if s.Len() == 0 {
		t.Fatal("budget did not amortize")
	}
	if s.WheelLagNS() <= 0 {
		t.Fatal("no wheel lag under storm")
	}
	for i := 0; i < 200 && s.Len() > 0; i++ {
		s.Advance(nil, 1e7)
	}
	if s.Len() != 0 || s.WheelLagNS() != 0 {
		t.Fatalf("after catch-up: len=%d lag=%v", s.Len(), s.WheelLagNS())
	}
	if st := s.StatsSnapshot(); st.MaxWheelLagNS <= 0 {
		t.Fatal("max lag gauge never moved")
	}
}

// The headline gate: a shard holding a million concurrent flows at
// steady state, with the per-packet path (hits, state updates, aging
// sweeps) allocation-free.
func TestMillionFlowsSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow slab in -short mode")
	}
	const n = 1 << 20
	s := NewShard(Config{Capacity: n, Timeouts: Timeouts{Untracked: 60e9}},
		memsim.NewArena("ct1m", memsim.HeapBase, 1<<31), 7)
	for i := uint32(0); i < n; i++ {
		if _, v := s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, float64(i), 0); v != VerdictNew {
			t.Fatalf("insert %d: %v", i, v)
		}
	}
	if s.Len() != n {
		t.Fatalf("len=%d, want %d", s.Len(), n)
	}
	if st := s.StatsSnapshot(); st.EvictionsTotal() != 0 || st.RefusedFull != 0 {
		t.Fatalf("pressure during fill: %+v", st)
	}
	// Steady state: every flow stays active; sweeps only re-arm.
	var i uint32
	now := float64(n)
	avg := testing.AllocsPerRun(5000, func() {
		i = (i + 99991) % n
		now += 1e3
		if _, v := s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, now, 0); v != VerdictPass {
			t.Fatalf("steady-state miss on flow %d", i)
		}
		s.Advance(nil, now)
	})
	if avg != 0 {
		t.Errorf("steady state allocates %.2f/packet, want 0", avg)
	}
	if s.Len() != n {
		t.Fatalf("flows lost at steady state: %d", s.Len())
	}
}

// New-flow admissions under churn — insert, evict, expire — must also
// stay allocation-free once the slab is warm.
func TestChurnZeroAllocs(t *testing.T) {
	s := testShard(Config{Capacity: 4096, Timeouts: Timeouts{Untracked: 1e6}})
	for i := uint32(0); i < 4096; i++ {
		s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, float64(i*100), 0)
	}
	var i uint32 = 4096
	now := 4096 * 100.0
	avg := testing.AllocsPerRun(5000, func() {
		i++
		now += 1e3
		s.Track(nil, udpKey(i), netpkt.ProtoUDP, 0, now, 0)
		s.Advance(nil, now)
	})
	if avg != 0 {
		t.Errorf("churn allocates %.2f/insert, want 0", avg)
	}
}
