// Flow migration: when wire.Fanout's rebalance moves an RSS bucket to a
// colder core, the flows pinned under that bucket must follow — their
// state lives in the old owner's shard, and a conntrack miss on the new
// core would refuse (strict mode) or mistrack them. The Migrator is the
// mailbox between the fanout's reader goroutine and the per-core serve
// loops: the reader posts bucket moves (OnMove), the old owner exports
// matching flows on its next collection pass (Collect), and the new
// owner installs them before it sees the rerouted packets (Adopt).
//
// Steady state shares nothing: the mutex is taken only around the rare
// rebalance events and their drain, never per packet, and shards remain
// single-core-owned throughout — flows cross cores as values, not as
// shared memory.
package conntrack

import (
	"sync"

	"packetmill/internal/machine"
)

// Migrator routes flow records between per-core shards on fanout bucket
// moves. Create one per fanout with NewMigrator, hang its OnMove on the
// fanout, and have each core call Collect/Adopt from its serve loop.
type Migrator struct {
	bucketOf func(Key) int
	mu       sync.Mutex
	pending  []map[int]int  // per-source core: bucket → new owner
	inbox    [][]FlowRecord // per-destination core
	posted   uint64
	exported uint64
	adopted  uint64
}

// NewMigrator builds a migrator for n cores. bucketOf must map a flow
// key to the same bucket the fanout's frame hash yields (see
// nic.HashTuple), or flows will chase the wrong moves.
func NewMigrator(n int, bucketOf func(Key) int) *Migrator {
	m := &Migrator{
		bucketOf: bucketOf,
		pending:  make([]map[int]int, n),
		inbox:    make([][]FlowRecord, n),
	}
	for i := range m.pending {
		m.pending[i] = map[int]int{}
	}
	return m
}

// OnMove records that bucket now belongs to core to; callable from the
// fanout reader goroutine (this is the wire.Fanout.OnMove signature).
func (m *Migrator) OnMove(bucket, from, to int) {
	if from == to || from < 0 || from >= len(m.pending) || to < 0 || to >= len(m.inbox) {
		return
	}
	m.mu.Lock()
	m.pending[from][bucket] = to
	m.posted++
	m.mu.Unlock()
}

// Collect is run by core coreID against its own shard: every live flow
// whose bucket has been reassigned is exported from the shard (the
// reclaim callback sees CauseMigrated) and posted to the new owner's
// inbox. Returns the number of flows exported. O(capacity) on the rare
// rebalance event, never on the packet path.
func (m *Migrator) Collect(coreID int, core *machine.Core, s *Shard) int {
	m.mu.Lock()
	moves := m.pending[coreID]
	if len(moves) == 0 {
		m.mu.Unlock()
		return 0
	}
	m.pending[coreID] = map[int]int{}
	m.mu.Unlock()

	type job struct {
		key Key
		to  int
	}
	var jobs []job
	s.ForEachLive(func(e *Entry) bool {
		if to, ok := moves[m.bucketOf(e.Key)]; ok {
			jobs = append(jobs, job{key: e.Key, to: to})
		}
		return true
	})
	n := 0
	for _, j := range jobs {
		rec, ok := s.Export(core, j.key)
		if !ok {
			continue
		}
		m.mu.Lock()
		m.inbox[j.to] = append(m.inbox[j.to], rec)
		m.exported++
		m.mu.Unlock()
		n++
	}
	return n
}

// Adopt is run by core coreID against its own shard: drain the inbox
// and install every record. Returns the number adopted; records the
// shard refuses (pressure) are dropped — the flow re-tracks on its next
// packet like any new flow.
func (m *Migrator) Adopt(coreID int, core *machine.Core, s *Shard, nowNS float64) int {
	m.mu.Lock()
	recs := m.inbox[coreID]
	if len(recs) == 0 {
		m.mu.Unlock()
		return 0
	}
	m.inbox[coreID] = nil
	m.mu.Unlock()
	n := 0
	for _, rec := range recs {
		if _, v := s.Import(core, rec, nowNS); v == VerdictNew {
			n++
		}
	}
	m.mu.Lock()
	m.adopted += uint64(n)
	m.mu.Unlock()
	return n
}

// PendingFor reports queued bucket moves (not yet collected) for a core
// plus inbox records awaiting adoption — a health probe for tests.
func (m *Migrator) PendingFor(coreID int) (moves, records int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending[coreID]), len(m.inbox[coreID])
}

// Counters reports lifetime posted moves, exported flows, and adopted
// flows.
func (m *Migrator) Counters() (posted, exported, adopted uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.posted, m.exported, m.adopted
}

// Canonical orders a bidirectional 5-tuple so both directions of a
// conversation map to one entry; swapped reports whether this packet
// traveled the reverse (responder→initiator) direction.
func Canonical(k Key) (canon Key, swapped bool) {
	a := uint64(k.SrcIP)<<16 | uint64(k.SrcPort)
	b := uint64(k.DstIP)<<16 | uint64(k.DstPort)
	if a <= b {
		return k, false
	}
	return Key{SrcIP: k.DstIP, DstIP: k.SrcIP,
		SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}, true
}
