package conntrack

import "testing"

// wheelRig builds a wheel over a bare slab, bypassing the shard, so the
// timing structure is testable in isolation. tickNS = 1 for readable
// arithmetic: deadlines are in ticks.
func wheelRig(n int) (*wheel, []Entry) {
	ents := make([]Entry, n)
	for i := range ents {
		ents[i].wheelPos = -1
		ents[i].wheelNext, ents[i].wheelPrev = noEntry, noEntry
	}
	w := &wheel{}
	w.init(ents, 1)
	return w, ents
}

func collectFired(w *wheel, nowNS float64, budget int) []int32 {
	var fired []int32
	w.advance(nowNS, budget, func(idx int32) { fired = append(fired, idx) })
	return fired
}

func TestWheelFiresAtDeadline(t *testing.T) {
	w, _ := wheelRig(4)
	w.arm(0, 10)
	if f := collectFired(w, 9, 1000); len(f) != 0 {
		t.Fatalf("fired %v before deadline", f)
	}
	if f := collectFired(w, 10, 1000); len(f) != 1 || f[0] != 0 {
		t.Fatalf("at deadline fired %v, want [0]", f)
	}
	if w.armed != 0 {
		t.Fatalf("armed=%d after firing", w.armed)
	}
}

func TestWheelCancel(t *testing.T) {
	w, _ := wheelRig(4)
	w.arm(0, 5)
	w.arm(1, 5)
	w.arm(2, 5)
	w.cancel(1)
	f := collectFired(w, 100, 1000)
	for _, idx := range f {
		if idx == 1 {
			t.Fatal("cancelled entry fired")
		}
	}
	if len(f) != 2 {
		t.Fatalf("fired %v, want two survivors", f)
	}
	// Double cancel is a no-op.
	w.cancel(1)
	if w.armed != 0 {
		t.Fatalf("armed=%d", w.armed)
	}
}

// Deadlines spanning every level — including the exact level bounds
// (256, 65536) where an off-by-one strands an entry for a full lap —
// must fire at their tick, never early, never a lap late.
func TestWheelHierarchyBounds(t *testing.T) {
	deadlines := []int64{1, 2, 255, 256, 257, 511, 512, 1000,
		65535, 65536, 65537, 1 << 20, (1 << 16) * 3}
	w, _ := wheelRig(len(deadlines))
	for i, d := range deadlines {
		w.arm(int32(i), float64(d))
	}
	for now := int64(1); now <= 1<<20+1; now <<= 1 {
		for _, idx := range collectFired(w, float64(now), 1<<21) {
			if d := deadlines[idx]; d > now {
				t.Fatalf("entry %d (deadline %d) fired early at %d", idx, d, now)
			}
		}
		for i, d := range deadlines {
			if d <= now && w.ents[i].wheelPos >= 0 {
				t.Fatalf("entry %d (deadline %d) still armed at %d", i, d, now)
			}
		}
	}
	if f := collectFired(w, 1<<21, 1<<22); len(f) != 0 && w.armed != 0 {
		t.Fatalf("stragglers: %v, armed=%d", f, w.armed)
	}
	if w.armed != 0 {
		t.Fatalf("armed=%d after full sweep", w.armed)
	}
}

// The budget must amortize a mass-expiry storm: far fewer firings per
// advance than armed entries, full drain across calls, monotonic lag
// that returns to zero.
func TestWheelBudgetAmortizesStorm(t *testing.T) {
	const n = 10000
	w, _ := wheelRig(n)
	for i := 0; i < n; i++ {
		w.arm(int32(i), float64(100+i%3)) // three adjacent ticks
	}
	total, calls := 0, 0
	for total < n {
		f := len(collectFired(w, 200, 256))
		if f == 0 {
			t.Fatalf("stalled at %d/%d after %d calls", total, n, calls)
		}
		if f > 256 {
			t.Fatalf("budget exceeded: %d fired in one call", f)
		}
		total += f
		calls++
		if total < n && w.lagNS(200) <= 0 {
			t.Fatal("no lag while entries remain")
		}
	}
	if calls < n/256 {
		t.Fatalf("storm drained in %d calls — budget not enforced", calls)
	}
	if w.lagNS(200) != 0 {
		t.Fatalf("lag %v after full drain", w.lagNS(200))
	}
}

// Re-arming from inside the fire callback (the lazy-expiry pattern)
// must defer the entry, not lose it or fire it twice in one pass.
func TestWheelRearmFromFire(t *testing.T) {
	w, _ := wheelRig(2)
	w.arm(0, 10)
	rearmed := false
	fires := 0
	w.advance(50, 100, func(idx int32) {
		fires++
		if !rearmed {
			rearmed = true
			w.arm(idx, 40)
		}
	})
	if fires != 2 {
		t.Fatalf("fires=%d, want 2 (original + re-armed)", fires)
	}
	if w.armed != 0 {
		t.Fatalf("armed=%d", w.armed)
	}
}
