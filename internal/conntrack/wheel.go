// The hierarchical timer wheel that ages flows. Classic hashed-wheel
// design (Varghese & Lauck): four levels of 256 slots, each slot an
// intrusive doubly-linked list threaded through the shard's entry slab
// by index — arming, cancelling, and re-arming are O(1) pointer splices
// with no allocation, no goroutines, and no time.Timer anywhere. Level 0
// resolves one tick (1 ms of simulated time by default); each higher
// level is 256× coarser, so the wheel spans ~50 days of deadline at
// millisecond resolution in 4×256 list heads.
//
// Expiry is lazy: the wheel fires an entry at the deadline it was armed
// with, and the shard's expire callback re-arms it if packets have
// arrived since (the hot path only stamps LastSeen — it never touches
// the wheel). Advance takes a budget so a mass-expiry storm is amortized
// across bursts: when the budget runs out mid-slot the wheel parks and
// resumes at the same tick on the next call, and the distance between
// wall time and wheel time is exported as the wheel-lag gauge.
package conntrack

const (
	wheelLevelBits = 8
	wheelSlotCount = 1 << wheelLevelBits // slots per level
	wheelSlotMask  = wheelSlotCount - 1
	wheelLevels    = 4

	// noEntry is the nil of slab indices.
	noEntry = int32(-1)
)

// wheel is the aging structure. It owns no entries — it links the
// shard's slab through the wheelNext/wheelPrev/wheelPos fields.
type wheel struct {
	ents   []Entry
	tickNS float64
	cur    int64 // last fully processed tick
	heads  [wheelLevels][wheelSlotCount]int32
	armed  int
}

func (w *wheel) init(ents []Entry, tickNS float64) {
	w.ents = ents
	w.tickNS = tickNS
	w.cur = 0
	w.armed = 0
	for l := range w.heads {
		for s := range w.heads[l] {
			w.heads[l][s] = noEntry
		}
	}
}

// arm links entry idx so it fires at deadlineNS. The entry must not be
// armed already (cancel first); deadlines at or before the wheel's
// current position are clamped to the next tick.
func (w *wheel) arm(idx int32, deadlineNS float64) {
	w.armAt(idx, int64(deadlineNS/w.tickNS))
}

// armAt is arm in tick units — also the cascade's re-filing path.
// A level-l slot resolves deltas up to 256^(l+1) inclusive: a slot
// fires when the tick counter next congruence-matches it, which for a
// delta of exactly 256^(l+1) is one full lap away — still correct, and
// the inclusive bound is what keeps a cascaded entry from bouncing back
// into the slot it was just pulled from.
func (w *wheel) armAt(idx int32, tick int64) {
	if tick <= w.cur {
		tick = w.cur + 1
	}
	e := &w.ents[idx]
	e.deadTick = tick
	delta := tick - w.cur
	level := 0
	for level < wheelLevels-1 && delta > int64(1)<<(wheelLevelBits*(level+1)) {
		level++
	}
	slot := (tick >> (wheelLevelBits * level)) & wheelSlotMask
	head := &w.heads[level][slot]
	e.wheelPos = int32(level)<<wheelLevelBits | int32(slot)
	e.wheelPrev = noEntry
	e.wheelNext = *head
	if *head != noEntry {
		w.ents[*head].wheelPrev = idx
	}
	*head = idx
	w.armed++
}

// cancel unlinks entry idx from whatever slot holds it. No-op when the
// entry is not armed.
func (w *wheel) cancel(idx int32) {
	e := &w.ents[idx]
	if e.wheelPos < 0 {
		return
	}
	level := int(e.wheelPos) >> wheelLevelBits
	slot := int(e.wheelPos) & wheelSlotMask
	if e.wheelPrev != noEntry {
		w.ents[e.wheelPrev].wheelNext = e.wheelNext
	} else {
		w.heads[level][slot] = e.wheelNext
	}
	if e.wheelNext != noEntry {
		w.ents[e.wheelNext].wheelPrev = e.wheelPrev
	}
	e.wheelPos = -1
	e.wheelNext, e.wheelPrev = noEntry, noEntry
	w.armed--
}

// cascade re-files every entry parked in a higher-level slot down to the
// level that can now resolve its deadline. The chain is detached first,
// so an entry re-filing into the same head (delta exactly at the level
// bound) cannot loop the iteration.
func (w *wheel) cascade(level int, slot int64) {
	head := &w.heads[level][slot]
	idx := *head
	*head = noEntry
	for idx != noEntry {
		e := &w.ents[idx]
		next := e.wheelNext
		e.wheelPos = -1
		e.wheelNext, e.wheelPrev = noEntry, noEntry
		w.armed--
		w.armAt(idx, e.deadTick)
		idx = next
	}
}

// advance processes ticks up to nowNS, invoking fire for every armed
// entry whose slot comes due, at most budget firings. It returns the
// number fired. fire may re-arm the entry (lazy re-arm) or reclaim it;
// it must not touch other armed entries. When the budget is exhausted
// mid-tick the tick is left unprocessed, so the next call resumes
// exactly there (re-running its cascade is harmless — the higher slots
// are already empty).
func (w *wheel) advance(nowNS float64, budget int, fire func(idx int32)) int {
	target := int64(nowNS / w.tickNS)
	fired := 0
	for w.cur < target {
		tick := w.cur + 1
		// Pull coarser slots down before draining: an entry due exactly
		// at a boundary tick cascades into the level-0 slot drained
		// just below.
		for level := 1; level < wheelLevels; level++ {
			if tick&((int64(1)<<(wheelLevelBits*level))-1) != 0 {
				break
			}
			w.cascade(level, (tick>>(wheelLevelBits*level))&wheelSlotMask)
		}
		slot := &w.heads[0][tick&wheelSlotMask]
		for *slot != noEntry {
			if fired >= budget {
				return fired
			}
			idx := *slot
			w.cancel(idx)
			fire(idx)
			fired++
		}
		w.cur = tick
	}
	return fired
}

// lagNS reports how far wheel time trails nowNS — nonzero while a
// budgeted sweep is catching up on a storm.
func (w *wheel) lagNS(nowNS float64) float64 {
	lag := nowNS - float64(w.cur)*w.tickNS
	if lag < 0 {
		return 0
	}
	return lag
}
