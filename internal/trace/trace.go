package trace

import (
	"packetmill/internal/simrand"
)

// Event kinds. A span covers an element or pipeline-stage visit on a
// core while at least one sampled packet was in flight there; the
// instant kinds mark per-packet milestones.
const (
	EvSpan   = uint8(iota) // [TSNS, TSNS+DurNS): stage/element visit
	EvSample               // packet chosen by the 1-in-N sampler at RX
	EvDepart               // sampled packet handed to the TX ring
	EvDrop                 // sampled packet dropped; Name is the reason
	EvFault                // fault injection fired on this core
	EvHealth               // overload health-state transition; Name is the new state
	EvFlow                 // flow-table lifecycle event; Name labels it (e.g. "evict-established")
)

// Event is one flight-recorder entry: {core, seq, stage/element,
// time, pktlen}. Strings are static identifiers (stage names, element
// names, drop reasons), so copying an Event copies headers only.
type Event struct {
	TSNS   float64 // start time, ns (core-ns on sim, wall-ns on wire)
	DurNS  float64 // span duration; 0 for instants
	Seq    uint64  // sampled-packet id (core<<48|n); 0 when not packet-bound
	Name   string  // element name, drop reason, or fault label
	Stage  string  // pipeline stage (driver/pmd-rx/conversion/engine/pmd-tx)
	Kind   uint8
	Core   int32
	PktLen int32
}

// Config sizes and seeds a Recorder.
type Config struct {
	// SampleEvery is the deterministic sampling period: packet k on a
	// core is traced iff an independent per-core simrand draw hits
	// 1-in-SampleEvery. <= 0 disables sampling (the recorder still
	// captures fault events).
	SampleEvery int

	// RingSize is the per-core event capacity. When full, the oldest
	// events are overwritten — flight-recorder semantics. Default 4096.
	RingSize int

	// Seed derives the per-core sampling streams.
	Seed uint64
}

const defaultRingSize = 4096

// Recorder owns one CoreTrace per core. A nil *Recorder is valid and
// inert, as is a nil *CoreTrace — the datapath hooks cost one pointer
// test when tracing is off.
type Recorder struct {
	cfg   Config
	cores []*CoreTrace
}

// NewRecorder returns a recorder; per-core traces are materialized on
// first Core(i) access (setup time, never on the datapath).
func NewRecorder(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	return &Recorder{cfg: cfg}
}

// Core returns (creating if needed) the trace for core i. Nil-safe:
// a nil recorder yields a nil CoreTrace, which every method accepts.
func (r *Recorder) Core(i int) *CoreTrace {
	if r == nil {
		return nil
	}
	for len(r.cores) <= i {
		r.cores = append(r.cores, nil)
	}
	if r.cores[i] == nil {
		var every uint64
		if r.cfg.SampleEvery > 0 {
			every = uint64(r.cfg.SampleEvery)
		}
		r.cores[i] = &CoreTrace{
			core:  int32(i),
			every: every,
			ring:  make([]Event, r.cfg.RingSize),
			rng:   simrand.New(simrand.Derive(r.cfg.Seed, 0x7ace, uint64(i))),
		}
	}
	return r.cores[i]
}

// Cores returns the materialized per-core traces in core order.
func (r *Recorder) Cores() []*CoreTrace {
	if r == nil {
		return nil
	}
	return r.cores
}

// CoreTrace is one core's flight recorder: a fixed ring of events, the
// sampling stream, and a small span-start stack mirroring the
// telemetry Tracker's nesting. All methods are single-core (called
// only from the owning core's engine loop) and allocation-free.
type CoreTrace struct {
	core  int32
	every uint64
	ring  []Event
	head  int    // next slot to write
	total uint64 // events ever pushed (total - len(ring) were lost)
	rng   *simrand.Rand
	clock func() float64
	seq   uint64      // sampled packets so far on this core
	armed int         // sampled packets currently in flight
	spans [64]float64 // enter timestamps, one per nesting level
	depth int
}

// SetClock installs the timestamp source: the core's simulated clock
// (machine.Core.NowNS) on sim runs, wall time since start on wire runs.
func (ct *CoreTrace) SetClock(f func() float64) {
	if ct != nil {
		ct.clock = f
	}
}

func (ct *CoreTrace) now() float64 {
	if ct.clock == nil {
		return 0
	}
	return ct.clock()
}

func (ct *CoreTrace) push(ev Event) {
	ev.Core = ct.core
	ct.ring[ct.head] = ev
	ct.head++
	if ct.head == len(ct.ring) {
		ct.head = 0
	}
	ct.total++
}

// MaybeSample runs the 1-in-N draw for a packet that survived RX
// conversion. On a hit it arms the recorder, emits the sample instant
// (timestamped at the packet's wire arrival — the driver stage), and
// returns the packet's nonzero trace id; otherwise 0.
func (ct *CoreTrace) MaybeSample(pktLen int, arrivalNS float64) uint64 {
	if ct == nil || ct.every == 0 {
		return 0
	}
	if ct.rng.Uint64n(ct.every) != 0 {
		return 0
	}
	ct.seq++
	id := uint64(ct.core)<<48 | ct.seq
	ct.armed++
	ct.push(Event{
		TSNS:   arrivalNS,
		Seq:    id,
		Name:   "sampled",
		Stage:  "driver",
		Kind:   EvSample,
		PktLen: int32(pktLen),
	})
	return id
}

// SpanEnter marks the start of a stage/element visit. It always tracks
// nesting — a packet may be sampled mid-span — but records nothing yet.
func (ct *CoreTrace) SpanEnter() {
	if ct == nil || ct.depth >= len(ct.spans) {
		return
	}
	ct.spans[ct.depth] = ct.now()
	ct.depth++
}

// SpanExit closes the innermost visit; the span is recorded only when
// a sampled packet is in flight on this core, so an idle (or unsampled)
// steady state writes nothing.
func (ct *CoreTrace) SpanExit(stage, name string) {
	if ct == nil || ct.depth == 0 {
		return
	}
	ct.depth--
	if ct.armed <= 0 {
		return
	}
	start := ct.spans[ct.depth]
	ct.push(Event{
		TSNS:  start,
		DurNS: ct.now() - start,
		Name:  name,
		Stage: stage,
		Kind:  EvSpan,
	})
}

// Depart records a sampled packet entering the TX ring and disarms it.
func (ct *CoreTrace) Depart(id uint64, pktLen int) {
	if ct == nil || id == 0 {
		return
	}
	ct.push(Event{
		TSNS:   ct.now(),
		Seq:    id,
		Name:   "depart",
		Stage:  "pmd-tx",
		Kind:   EvDepart,
		PktLen: int32(pktLen),
	})
	if ct.armed > 0 {
		ct.armed--
	}
}

// Drop records a sampled packet being dropped, with its DropReason
// name, and disarms it.
func (ct *CoreTrace) Drop(id uint64, reason string, pktLen int) {
	if ct == nil || id == 0 {
		return
	}
	ct.push(Event{
		TSNS:   ct.now(),
		Seq:    id,
		Name:   reason,
		Stage:  "drop",
		Kind:   EvDrop,
		PktLen: int32(pktLen),
	})
	if ct.armed > 0 {
		ct.armed--
	}
}

// Fault records a fault injection firing on this core. Faults are rare
// and always post-mortem-relevant, so they are recorded regardless of
// sampling state.
func (ct *CoreTrace) Fault(name string) {
	if ct == nil {
		return
	}
	ct.push(Event{
		TSNS:  ct.now(),
		Name:  name,
		Stage: "fault",
		Kind:  EvFault,
	})
}

// Health records an overload health-state transition on this core.
// Like faults, transitions are rare and always post-mortem-relevant,
// so they bypass the sampler. Name strings are the static State names.
func (ct *CoreTrace) Health(state string) {
	if ct == nil {
		return
	}
	ct.push(Event{
		TSNS:  ct.now(),
		Name:  state,
		Stage: "health",
		Kind:  EvHealth,
	})
}

// Flow records a flow-table lifecycle event on this core — the edge of
// a pressure-eviction wave, a strict-mode refusal burst, an expiry
// sweep parking behind wall time. Like faults, these are rare and
// post-mortem-relevant, so they bypass the sampler. Callers edge-detect
// (first occurrence per burst) to keep the ring from flooding.
func (ct *CoreTrace) Flow(event string) {
	if ct == nil {
		return
	}
	ct.push(Event{
		TSNS:  ct.now(),
		Name:  event,
		Stage: "conntrack",
		Kind:  EvFlow,
	})
}

// Sampled returns how many packets this core's sampler selected.
func (ct *CoreTrace) Sampled() uint64 {
	if ct == nil {
		return 0
	}
	return ct.seq
}

// Lost returns how many events the ring overwrote.
func (ct *CoreTrace) Lost() uint64 {
	if ct == nil || ct.total <= uint64(len(ct.ring)) {
		return 0
	}
	return ct.total - uint64(len(ct.ring))
}

// Events returns the retained events oldest-first. It copies, so the
// result stays valid while the ring keeps recording.
func (ct *CoreTrace) Events() []Event {
	if ct == nil || ct.total == 0 {
		return nil
	}
	if ct.total <= uint64(len(ct.ring)) {
		out := make([]Event, ct.head)
		copy(out, ct.ring[:ct.head])
		return out
	}
	out := make([]Event, 0, len(ct.ring))
	out = append(out, ct.ring[ct.head:]...)
	return append(out, ct.ring[:ct.head]...)
}
