// Prometheus exposition lint: structural conformance checks for the
// text format (version 0.0.4) that /metrics serves. The linter is a
// test aid — CI scrapes the in-process exporter and fails on any
// problem — but it lives with the renderer so the format contract and
// its checker evolve together.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// promTypes are the sample types the text format admits.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// LintProm checks a text-format exposition for structural problems:
// samples without HELP/TYPE headers, duplicate or interleaved metric
// families, malformed metric/label names, invalid label escaping,
// unparsable values, and duplicate series. It returns one message per
// problem; an empty slice means the exposition is clean.
func LintProm(text []byte) []string {
	var problems []string
	bad := func(line int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	closed := map[string]bool{} // families we have moved past
	series := map[string]bool{} // name{labels} uniqueness
	current := ""               // family of the preceding sample line

	enter := func(line int, fam string) {
		if fam == current {
			return
		}
		if current != "" {
			closed[current] = true
		}
		if closed[fam] {
			bad(line, "family %s reappears after other families (samples must be grouped)", fam)
		}
		current = fam
	}

	for i, raw := range strings.Split(string(text), "\n") {
		line := i + 1
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "# HELP ") {
			rest := strings.TrimPrefix(raw, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				bad(line, "HELP without a metric name and text")
				continue
			}
			if helpSeen[name] {
				bad(line, "duplicate HELP for %s", name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(raw, "# TYPE ") {
			rest := strings.TrimPrefix(raw, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				bad(line, "TYPE without a metric name and type")
				continue
			}
			if !promTypes[typ] {
				bad(line, "unknown TYPE %q for %s", typ, name)
			}
			if _, dup := typeSeen[name]; dup {
				bad(line, "duplicate TYPE for %s", name)
			}
			if closed[name] || current == name {
				bad(line, "TYPE for %s after its samples", name)
			}
			typeSeen[name] = typ
			continue
		}
		if strings.HasPrefix(raw, "#") {
			continue // free-form comment
		}

		name, labels, value, err := splitSample(raw)
		if err != nil {
			bad(line, "%v", err)
			continue
		}
		if !validMetricName(name) {
			bad(line, "invalid metric name %q", name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			bad(line, "unparsable value %q for %s", value, name)
		}
		if lerr := lintLabels(labels); lerr != "" {
			bad(line, "%s: %s", name, lerr)
		}
		fam := familyOf(name, typeSeen)
		if !helpSeen[fam] {
			bad(line, "sample %s has no HELP header", name)
		}
		if _, ok := typeSeen[fam]; !ok {
			bad(line, "sample %s has no TYPE header", name)
		}
		key := name + "{" + labels + "}"
		if series[key] {
			bad(line, "duplicate series %s{%s}", name, labels)
		}
		series[key] = true
		enter(line, fam)
	}
	return problems
}

// splitSample cuts a sample line into name, raw label text (without the
// braces, "" when absent), and the value field.
func splitSample(raw string) (name, labels, value string, err error) {
	if open := strings.IndexByte(raw, '{'); open >= 0 {
		end := strings.LastIndexByte(raw, '}')
		if end < open {
			return "", "", "", fmt.Errorf("unbalanced label braces")
		}
		name = raw[:open]
		labels = raw[open+1 : end]
		value = strings.TrimSpace(raw[end+1:])
	} else {
		var ok bool
		name, value, ok = strings.Cut(raw, " ")
		if !ok {
			return "", "", "", fmt.Errorf("sample without a value field")
		}
		value = strings.TrimSpace(value)
	}
	// A timestamp field is permitted after the value; strip it.
	if sp := strings.IndexByte(value, ' '); sp >= 0 {
		value = value[:sp]
	}
	if name == "" || value == "" {
		return "", "", "", fmt.Errorf("sample missing name or value")
	}
	return name, labels, value, nil
}

// lintLabels validates the label pairs of one sample: name charset,
// quoting, and escape sequences ("" labels text = no labels).
func lintLabels(labels string) string {
	rest := labels
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Sprintf("label text %q without '='", rest)
		}
		lname := rest[:eq]
		if !validLabelName(lname) {
			return fmt.Sprintf("invalid label name %q", lname)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Sprintf("label %s value is not quoted", lname)
		}
		rest = rest[1:]
		// Scan the quoted value honoring escapes.
		closedAt := -1
		for j := 0; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if j+1 >= len(rest) {
					return fmt.Sprintf("label %s value ends mid-escape", lname)
				}
				if c := rest[j+1]; c != '\\' && c != '"' && c != 'n' {
					return fmt.Sprintf("label %s value has invalid escape \\%c", lname, c)
				}
				j++
			case '"':
				closedAt = j
			}
			if closedAt >= 0 {
				break
			}
		}
		if closedAt < 0 {
			return fmt.Sprintf("label %s value is unterminated", lname)
		}
		rest = rest[closedAt+1:]
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return fmt.Sprintf("label %s is not followed by ','", lname)
		}
		rest = rest[1:]
	}
	return ""
}

// familyOf maps a sample name onto its metric family: histogram and
// summary member suffixes fold back onto the declared family name.
func familyOf(name string, typeSeen map[string]string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t, ok := typeSeen[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}
