package trace

import (
	"bytes"
	"encoding/json"
	"strconv"
)

// ChromeJSON renders every core's retained events as Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load).
// Spans become "X" (complete) events and packet milestones become "i"
// (instant) events; pid is always 0 and tid is the core id, so each
// core renders as one timeline row.
//
// The output is deterministic: cores in id order, events in ring
// (chronological) order, and all numbers formatted with fixed
// precision — two runs with the same seed and config produce
// byte-identical files.
func (r *Recorder) ChromeJSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func() {
		if !first {
			b.WriteByte(',')
		}
		first = false
	}
	for _, ct := range r.Cores() {
		if ct == nil {
			continue
		}
		emit()
		b.WriteString(`{"ph":"M","pid":0,"tid":`)
		writeInt(&b, int64(ct.core))
		b.WriteString(`,"name":"thread_name","args":{"name":"core `)
		writeInt(&b, int64(ct.core))
		b.WriteString(`"}}`)
		for _, ev := range ct.Events() {
			emit()
			writeEvent(&b, ev)
		}
	}
	b.WriteString("]}\n")
	return b.Bytes()
}

func writeEvent(b *bytes.Buffer, ev Event) {
	b.WriteString(`{"ph":"`)
	if ev.Kind == EvSpan {
		b.WriteByte('X')
	} else {
		b.WriteByte('i')
	}
	b.WriteString(`","pid":0,"tid":`)
	writeInt(b, int64(ev.Core))
	b.WriteString(`,"ts":`)
	writeMicros(b, ev.TSNS)
	if ev.Kind == EvSpan {
		b.WriteString(`,"dur":`)
		writeMicros(b, ev.DurNS)
	} else {
		b.WriteString(`,"s":"t"`)
	}
	b.WriteString(`,"cat":`)
	writeString(b, ev.Stage)
	b.WriteString(`,"name":`)
	writeString(b, ev.Name)
	if ev.Seq != 0 || ev.PktLen != 0 {
		b.WriteString(`,"args":{"seq":`)
		b.WriteString(strconv.FormatUint(ev.Seq, 10))
		b.WriteString(`,"pktlen":`)
		writeInt(b, int64(ev.PktLen))
		b.WriteByte('}')
	}
	b.WriteByte('}')
}

// writeMicros writes a nanosecond quantity as microseconds with fixed
// millinanosecond precision, keeping output byte-stable across runs.
func writeMicros(b *bytes.Buffer, ns float64) {
	b.WriteString(strconv.FormatFloat(ns/1e3, 'f', 3, 64))
}

func writeInt(b *bytes.Buffer, v int64) {
	b.WriteString(strconv.FormatInt(v, 10))
}

// writeString JSON-quotes s. Names are internal identifiers, but Click
// element names come from user configs, so escape properly.
func writeString(b *bytes.Buffer, s string) {
	enc, err := json.Marshal(s)
	if err != nil {
		b.WriteString(`""`)
		return
	}
	b.Write(enc)
}
