package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fakeClock is a deterministic monotonic timestamp source.
type fakeClock struct{ now float64 }

func (c *fakeClock) tick() float64 { c.now += 100; return c.now }

func recordSomething(r *Recorder) {
	clk := &fakeClock{}
	ct := r.Core(0)
	ct.SetClock(clk.tick)
	for pkt := 0; pkt < 64; pkt++ {
		id := ct.MaybeSample(64, clk.tick())
		ct.SpanEnter()
		ct.SpanEnter()
		ct.SpanExit("engine", "EtherMirror@1")
		ct.SpanExit("pmd-rx", "fd0")
		if id != 0 && pkt%8 == 0 {
			ct.Drop(id, "tx-ring-full", 64)
		} else {
			ct.Depart(id, 64)
		}
	}
	ct.Fault("rx-stall")
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	ct := r.Core(3)
	if ct != nil {
		t.Fatal("nil recorder returned non-nil core")
	}
	// Every hook must be a no-op on a nil CoreTrace.
	if id := ct.MaybeSample(64, 1); id != 0 {
		t.Fatal("nil core sampled")
	}
	ct.SpanEnter()
	ct.SpanExit("engine", "x")
	ct.Depart(1, 64)
	ct.Drop(1, "engine", 64)
	ct.Fault("x")
	if ct.Events() != nil || ct.Sampled() != 0 || ct.Lost() != 0 {
		t.Fatal("nil core not inert")
	}
}

func TestSpanRecordedOnlyWhenArmed(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, RingSize: 128, Seed: 1})
	clk := &fakeClock{}
	ct := r.Core(0)
	ct.SetClock(clk.tick)

	// Not armed: spans must not appear.
	ct.SpanEnter()
	ct.SpanExit("engine", "quiet")
	if n := len(ct.Events()); n != 0 {
		t.Fatalf("unarmed span recorded: %d events", n)
	}

	// SampleEvery=1 arms on the first packet; the enclosing span (the
	// packet is sampled mid-span, as in RxBurst) must be recorded.
	ct.SpanEnter()
	id := ct.MaybeSample(128, clk.tick())
	if id == 0 {
		t.Fatal("SampleEvery=1 did not sample")
	}
	ct.SpanExit("pmd-rx", "fd0")
	ct.Depart(id, 128)
	evs := ct.Events()
	var kinds []uint8
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	if len(evs) != 3 || evs[0].Kind != EvSample || evs[1].Kind != EvSpan || evs[2].Kind != EvDepart {
		t.Fatalf("event kinds: %v", kinds)
	}
	if evs[1].DurNS <= 0 || evs[1].Name != "fd0" || evs[1].Stage != "pmd-rx" {
		t.Fatalf("span event: %+v", evs[1])
	}

	// Disarmed again after depart.
	ct.SpanEnter()
	ct.SpanExit("engine", "quiet2")
	if n := len(ct.Events()); n != 3 {
		t.Fatalf("post-depart span recorded: %d events", n)
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, RingSize: 8, Seed: 1})
	clk := &fakeClock{}
	ct := r.Core(0)
	ct.SetClock(clk.tick)
	for i := 0; i < 20; i++ {
		id := ct.MaybeSample(64, clk.tick())
		ct.Depart(id, 64)
	}
	evs := ct.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want ring size 8", len(evs))
	}
	if ct.Lost() != 40-8 {
		t.Fatalf("lost %d, want %d", ct.Lost(), 40-8)
	}
	// Oldest-first: timestamps strictly increasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].TSNS <= evs[i-1].TSNS {
			t.Fatalf("events out of order at %d: %g after %g", i, evs[i].TSNS, evs[i-1].TSNS)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	pick := func() []int {
		r := NewRecorder(Config{SampleEvery: 16, RingSize: 64, Seed: 99})
		ct := r.Core(2)
		var hits []int
		for i := 0; i < 1000; i++ {
			if ct.MaybeSample(64, float64(i)) != 0 {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := pick(), pick()
	if len(a) == 0 {
		t.Fatal("no samples in 1000 packets at 1/16")
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestChromeJSONDeterministicAndValid(t *testing.T) {
	gen := func() []byte {
		r := NewRecorder(Config{SampleEvery: 4, RingSize: 256, Seed: 7})
		recordSomething(r)
		return r.ChromeJSON()
	}
	a, b := gen(), gen()
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeJSON not byte-identical across identical runs")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Cat  string  `json:"cat"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Fatalf("span with non-positive dur: %+v", ev)
			}
		case "i":
			instants++
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("want spans and instants, got %d/%d", spans, instants)
	}
	if !strings.Contains(string(a), `"EtherMirror@1"`) {
		t.Fatal("per-element span name missing")
	}
}

func TestTraceHooksZeroAlloc(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, RingSize: 1024, Seed: 3})
	clk := &fakeClock{}
	ct := r.Core(0)
	ct.SetClock(clk.tick)
	if a := testing.AllocsPerRun(200, func() {
		id := ct.MaybeSample(64, clk.tick())
		ct.SpanEnter()
		ct.SpanExit("engine", "el")
		ct.Depart(id, 64)
	}); a != 0 {
		t.Fatalf("trace hooks allocate %.1f/op", a)
	}
}

func TestMetricsServer(t *testing.T) {
	m, err := NewMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + m.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	// Before any publish: empty exposition, empty JSON object.
	if body, _ := get("/report"); strings.TrimSpace(body) != "{}" {
		t.Fatalf("/report before publish: %q", body)
	}

	h := NewHist()
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i) * 1000) // 1µs .. 1ms
	}
	m.Publish(&Snapshot{
		Samples: []Sample{
			{Name: "pm_tx_packets_total", Help: "h", Type: "counter",
				Labels: [][2]string{{"port", "wire0"}}, Value: 12345},
		},
		Hists:      []HistSample{PromHist("pm_latency_seconds", "h", nil, h)},
		ReportJSON: []byte(`{"schema":"x"}`),
	})

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("content type: %q", ctype)
	}
	for _, want := range []string{
		"# HELP pm_tx_packets_total h",
		"# TYPE pm_tx_packets_total counter",
		`pm_tx_packets_total{port="wire0"} 12345`,
		"# TYPE pm_latency_seconds histogram",
		`pm_latency_seconds_bucket{le="+Inf"} 1000`,
		"pm_latency_seconds_count 1000",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	// Bucket counts must be cumulative: the 1e-3 bucket holds nearly all.
	if !strings.Contains(body, `pm_latency_seconds_bucket{le="0.001"} 1000`) &&
		!strings.Contains(body, `pm_latency_seconds_bucket{le="0.001"} 999`) {
		t.Fatalf("cumulative le=0.001 bucket wrong:\n%s", body)
	}

	if body, _ := get("/report"); !strings.Contains(body, `"schema":"x"`) {
		t.Fatalf("/report: %q", body)
	}
}
