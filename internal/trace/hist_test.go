package trace

import (
	"math"
	"testing"

	"packetmill/internal/simrand"
)

func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, math.MaxUint64} {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		// The bucket must actually contain the value. float64(v) can
		// round up to the exclusive upper bound for values near 2^64,
		// so the top edge compares with ≤.
		lo, w := histLower(i), histWidth(i)
		if float64(v) < lo || float64(v) > lo+w {
			t.Fatalf("value %d not in bucket %d [%g, %g)", v, i, lo, lo+w)
		}
		prev = i
	}
}

func TestHistRelativeError(t *testing.T) {
	// Above the unit range, the quantile of a single observation must
	// be within one sub-bucket (2^-histSubBits relative) of the value.
	for _, v := range []float64{100, 1234, 99999, 5e6, 3.7e9} {
		h := NewHist()
		h.Record(v)
		got := h.Quantile(0.5)
		if relErr := math.Abs(got-v) / v; relErr > 1.0/histSub {
			t.Errorf("Record(%g): q50=%g, rel err %.3f > %.3f", v, got, relErr, 1.0/histSub)
		}
	}
}

func TestHistExactExtremes(t *testing.T) {
	h := NewHist()
	for _, v := range []float64{500, 100, 900, 250} {
		h.Record(v)
	}
	if h.Min() != 100 || h.Max() != 900 {
		t.Fatalf("min/max: got %g/%g, want 100/900", h.Min(), h.Max())
	}
	if got := h.Mean(); got != (500+100+900+250)/4.0 {
		t.Fatalf("mean: got %g", got)
	}
	if h.Count() != 4 {
		t.Fatalf("count: got %d", h.Count())
	}
	if q := h.Quantile(1); q != 900 {
		t.Fatalf("q100: got %g", q)
	}
	if q := h.Quantile(0); q != 100 {
		t.Fatalf("q0: got %g", q)
	}
}

func TestHistNilAndEmpty(t *testing.T) {
	var nilH *Hist
	nilH.Record(5) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Max() != 0 {
		t.Fatal("nil hist not inert")
	}
	h := NewHist()
	if s := h.Summary(); s != (HistSummary{}) {
		t.Fatalf("empty summary: %+v", s)
	}
	h.Merge(nil)
	h.Merge(NewHist())
	if h.Count() != 0 {
		t.Fatal("merge of empties changed count")
	}
}

// TestHistMergeOrderIndependent is the satellite gate: merging per-core
// histograms must give the same result no matter the merge order.
func TestHistMergeOrderIndependent(t *testing.T) {
	rng := simrand.New(42)
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = NewHist()
		for j := 0; j < 5000; j++ {
			// Heavy-tailed values spanning several octaves.
			v := float64(rng.Uint64n(1 << uint(10+4*i)))
			parts[i].Record(v)
		}
	}
	merge := func(order []int) *Hist {
		m := NewHist()
		for _, i := range order {
			m.Merge(parts[i])
		}
		return m
	}
	a := merge([]int{0, 1, 2, 3})
	b := merge([]int{3, 1, 0, 2})
	if *a != *b {
		t.Fatal("merge result depends on order")
	}
	// And merging must equal recording everything into one histogram.
	var total uint64
	for _, p := range parts {
		total += p.Count()
	}
	if a.Count() != total {
		t.Fatalf("merged count %d != %d", a.Count(), total)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("quantile %g differs across merge orders", q)
		}
	}
}

func TestHistCountAtOrBelow(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Record(float64(i * 1000)) // 0..99 µs
	}
	if n := h.CountAtOrBelow(0); n > 1 {
		t.Fatalf("≤0ns: %d", n)
	}
	if n := h.CountAtOrBelow(2e9); n != 100 {
		t.Fatalf("≤2s: %d, want 100", n)
	}
	mid := h.CountAtOrBelow(50_000)
	if mid == 0 || mid >= 100 {
		t.Fatalf("≤50µs: %d, want interior", mid)
	}
	// Cumulative counts must be monotone in the bound.
	prev := uint64(0)
	for ns := 0.0; ns < 2e5; ns += 1500 {
		n := h.CountAtOrBelow(ns)
		if n < prev {
			t.Fatalf("not monotone at %g: %d < %d", ns, n, prev)
		}
		prev = n
	}
}

func TestHistRecordAllocs(t *testing.T) {
	h := NewHist()
	if a := testing.AllocsPerRun(100, func() { h.Record(12345) }); a != 0 {
		t.Fatalf("Record allocates %.1f/op", a)
	}
	o := NewHist()
	o.Record(777)
	if a := testing.AllocsPerRun(100, func() { h.Merge(o) }); a != 0 {
		t.Fatalf("Merge allocates %.1f/op", a)
	}
}
