package trace

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Sample is one scalar exposition line: counter or gauge. Labels are
// ordered pairs so rendering is deterministic.
type Sample struct {
	Name   string
	Help   string
	Type   string // "counter" or "gauge"
	Labels [][2]string
	Value  float64
}

// BucketCount is one cumulative histogram bucket: observations with
// value ≤ LE (seconds).
type BucketCount struct {
	LE float64
	N  uint64
}

// HistSample is a Prometheus histogram family member.
type HistSample struct {
	Name    string
	Help    string
	Labels  [][2]string
	Buckets []BucketCount // cumulative, ascending LE; +Inf appended by the renderer
	Sum     float64       // seconds
	Count   uint64
}

// Snapshot is one immutable export of the run's state. The serving
// loop builds a fresh Snapshot between engine steps and publishes it
// atomically; HTTP handlers only ever read published snapshots, so no
// lock crosses the datapath.
type Snapshot struct {
	Samples    []Sample
	Hists      []HistSample
	ReportJSON []byte // served verbatim at /report
	FlowsJSONL []byte // served verbatim at /flows (JSON lines)
}

// promBounds is the exposition bucket ladder in seconds: a 1-2-5
// decade ladder from 1 µs to 1 s, wide enough for both simulated
// per-element times and wire round trips.
var promBounds = func() []float64 {
	var b []float64
	for _, decade := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		b = append(b, 1*decade, 2*decade, 5*decade)
	}
	return append(b, 1)
}()

// PromHist digests h (nanoseconds) into an exposition histogram in
// seconds on the standard ladder.
func PromHist(name, help string, labels [][2]string, h *Hist) HistSample {
	hs := HistSample{
		Name:   name,
		Help:   help,
		Labels: labels,
		Sum:    h.Sum() * 1e-9,
		Count:  h.Count(),
	}
	hs.Buckets = make([]BucketCount, len(promBounds))
	for i, le := range promBounds {
		hs.Buckets[i] = BucketCount{LE: le, N: h.CountAtOrBelow(le * 1e9)}
	}
	return hs
}

// RenderProm renders the snapshot in Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per
// metric family, on first occurrence.
func RenderProm(s *Snapshot) []byte {
	var b bytes.Buffer
	if s == nil {
		return b.Bytes()
	}
	seen := map[string]bool{}
	header := func(name, help, typ string) {
		if seen[name] {
			return
		}
		seen[name] = true
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(help)
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
	}
	for _, m := range s.Samples {
		header(m.Name, m.Help, m.Type)
		b.WriteString(m.Name)
		writeLabels(&b, m.Labels, "")
		b.WriteByte(' ')
		writeValue(&b, m.Value)
		b.WriteByte('\n')
	}
	for _, h := range s.Hists {
		header(h.Name, h.Help, "histogram")
		for _, bk := range h.Buckets {
			b.WriteString(h.Name)
			b.WriteString("_bucket")
			writeLabels(&b, h.Labels, strconv.FormatFloat(bk.LE, 'g', -1, 64))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(bk.N, 10))
			b.WriteByte('\n')
		}
		b.WriteString(h.Name)
		b.WriteString("_bucket")
		writeLabels(&b, h.Labels, "+Inf")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
		b.WriteString(h.Name)
		b.WriteString("_sum")
		writeLabels(&b, h.Labels, "")
		b.WriteByte(' ')
		writeValue(&b, h.Sum)
		b.WriteByte('\n')
		b.WriteString(h.Name)
		b.WriteString("_count")
		writeLabels(&b, h.Labels, "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func writeLabels(b *bytes.Buffer, labels [][2]string, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		escapeLabel(b, kv[1])
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(b *bytes.Buffer, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

func writeValue(b *bytes.Buffer, v float64) {
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// MetricsServer serves the live endpoints: Prometheus text at
// /metrics and the latest telemetry report JSON at /report. It holds
// no locks against the datapath — Publish swaps an atomic pointer and
// handlers render whatever snapshot is current.
type MetricsServer struct {
	lis net.Listener
	srv *http.Server
	cur atomic.Pointer[Snapshot]
}

// NewMetricsServer binds addr (e.g. ":9100" or "127.0.0.1:0") and
// starts serving in a background goroutine.
func NewMetricsServer(addr string) (*MetricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{lis: lis}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(RenderProm(m.cur.Load()))
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s := m.cur.Load(); s != nil && len(s.ReportJSON) > 0 {
			w.Write(s.ReportJSON)
			return
		}
		w.Write([]byte("{}\n"))
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if s := m.cur.Load(); s != nil {
			w.Write(s.FlowsJSONL)
		}
	})
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go m.srv.Serve(lis)
	return m, nil
}

// Publish makes s the snapshot served from now on. s must not be
// mutated afterwards.
func (m *MetricsServer) Publish(s *Snapshot) {
	if m != nil {
		m.cur.Store(s)
	}
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string {
	if m == nil {
		return ""
	}
	return m.lis.Addr().String()
}

// Close shuts the server down.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return m.srv.Shutdown(ctx)
}
