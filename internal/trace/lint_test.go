package trace

import (
	"strings"
	"testing"
)

// A rendered snapshot — samples, escaping-hostile labels, and a
// histogram — must lint clean: the renderer and the linter define the
// same format.
func TestLintPromAcceptsRenderedSnapshot(t *testing.T) {
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Record(float64(i) * 1e3)
	}
	s := &Snapshot{
		Samples: []Sample{
			{Name: "pm_up", Help: "Up.", Type: "gauge", Value: 1},
			{Name: "pm_rx_total", Help: "RX.", Type: "counter",
				Labels: [][2]string{{"port", "wire0"}, {"queue", "0"}}, Value: 42},
			{Name: "pm_rx_total", Help: "RX.", Type: "counter",
				Labels: [][2]string{{"port", "wire1"}, {"queue", "0"}}, Value: 7},
			{Name: "pm_flow_top", Help: "Top flows.", Type: "gauge",
				Labels: [][2]string{{"flow", `tcp "10.0.0.1:1">back\slash` + "\nnewline"}}, Value: 1},
		},
		Hists: []HistSample{PromHist("pm_lat_seconds", "Latency.", nil, h)},
	}
	text := RenderProm(s)
	if problems := LintProm(text); len(problems) != 0 {
		t.Fatalf("rendered exposition fails lint:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLintPromCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the expected problem
	}{
		{"missing help",
			"# TYPE a counter\na 1\n", "no HELP"},
		{"missing type",
			"# HELP a A.\na 1\n", "no TYPE"},
		{"duplicate help",
			"# HELP a A.\n# HELP a A.\n# TYPE a counter\na 1\n", "duplicate HELP"},
		{"duplicate type",
			"# HELP a A.\n# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		{"unknown type",
			"# HELP a A.\n# TYPE a trend\na 1\n", "unknown TYPE"},
		{"interleaved family",
			"# HELP a A.\n# TYPE a counter\n# HELP b B.\n# TYPE b counter\na 1\nb 1\na 2\n",
			"reappears"},
		{"duplicate series",
			"# HELP a A.\n# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n", "duplicate series"},
		{"bad metric name",
			"# HELP 9a A.\n# TYPE 9a counter\n9a 1\n", "invalid metric name"},
		{"bad label name",
			"# HELP a A.\n# TYPE a counter\na{9x=\"1\"} 1\n", "invalid label name"},
		{"unquoted label value",
			"# HELP a A.\n# TYPE a counter\na{x=1} 1\n", "not quoted"},
		{"invalid escape",
			"# HELP a A.\n# TYPE a counter\na{x=\"\\t\"} 1\n", "invalid escape"},
		{"unterminated label value",
			"# HELP a A.\n# TYPE a counter\na{x=\"1} 1\n", "unterminated"},
		{"bad value",
			"# HELP a A.\n# TYPE a counter\na one\n", "unparsable value"},
		{"missing value",
			"# HELP a A.\n# TYPE a counter\na\n", "without a value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := LintProm([]byte(tc.text))
			if len(problems) == 0 {
				t.Fatalf("lint accepted:\n%s", tc.text)
			}
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got:\n%s",
				tc.want, strings.Join(problems, "\n"))
		})
	}
}
