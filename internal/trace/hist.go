// Package trace is the observability substrate of the repo: a sampled
// per-packet flight recorder (fixed-size per-core event rings, Chrome
// trace-event export), HDR-style log-bucketed latency histograms, and a
// live Prometheus/JSON exporter for wire runs.
//
// The package is a leaf: it imports only simrand and the standard
// library, so every datapath layer (pktbuf, dpdk, click, telemetry,
// testbed) can hook into it without cycles. Stage and element names
// cross the boundary as plain strings.
//
// Units. All durations handled by this package are nanoseconds, carried
// as float64 to match the simulator's clock (machine.Core.NowNS). On
// simulated runs those nanoseconds are *core* nanoseconds — cycles
// divided by the core frequency — and on wire runs they are wall-clock
// nanoseconds. Exports convert at the edge (microseconds in Chrome
// traces and reports, seconds in Prometheus exposition).
package trace

import (
	"math"
	"math/bits"
)

// Histogram geometry: a log-linear ("HDR-style") layout. Values below
// 2^histSubBits land in exact unit buckets; above that, each octave is
// split into 2^histSubBits sub-buckets, bounding the relative
// quantization error by 2^-histSubBits (≈3% at 5 bits). The layout is
// fixed at compile time so Record is a pure array increment and Merge
// is element-wise addition — commutative and associative, which is what
// makes cross-core merging order-independent.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave

	// 64-bit values need bits.Len64 up to 64 → shift up to
	// 63-histSubBits, and the index for shift s spans
	// [s*histSub+histSub, (s+1)*histSub+histSub), so the largest index
	// is (63-histSubBits+2)*histSub - 1.
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Hist is a fixed-size log-bucketed histogram of nanosecond durations.
// Record and Merge never allocate; Min/Max/Sum are tracked exactly so
// the mean and extremes do not suffer bucket quantization. The zero
// value is ready to use.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// histIndex maps a value to its bucket. Values < histSub get exact unit
// buckets; larger values keep histSubBits of mantissa per octave.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(v) - histSubBits - 1
	mant := v >> uint(shift) // in [histSub, 2*histSub)
	return shift*histSub + int(mant)
}

// histLower returns the inclusive lower bound of bucket i; the bucket
// covers [histLower(i), histLower(i+1)).
func histLower(i int) float64 {
	if i < histSub {
		return float64(i)
	}
	shift := i/histSub - 1
	return math.Ldexp(float64(histSub+i%histSub), shift)
}

// histWidth returns the width of bucket i.
func histWidth(i int) float64 {
	if i < histSub {
		return 1
	}
	return math.Ldexp(1, i/histSub-1)
}

// Record adds one nanosecond observation. Negative values clamp to
// zero (clock skew on wire runs); NaN is dropped.
func (h *Hist) Record(ns float64) {
	if h == nil || math.IsNaN(ns) {
		return
	}
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	h.counts[histIndex(v)]++
	if h.count == 0 || ns < h.min {
		h.min = ns
	}
	if h.count == 0 || ns > h.max {
		h.max = ns
	}
	h.count++
	h.sum += ns
}

// Merge adds o's observations into h. Because buckets are fixed and
// addition commutes, merging per-core histograms in any order yields
// the identical result.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the exact sum of all observations in nanoseconds.
func (h *Hist) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the exact minimum observation (0 when empty).
func (h *Hist) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observation (0 when empty).
func (h *Hist) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) in nanoseconds,
// interpolated linearly within the containing bucket and clamped to
// the exact min/max so the tails never report impossible values.
func (h *Hist) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the target observation, 1-based.
	rank := q * float64(h.count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			frac := (rank - cum) / float64(c)
			v := histLower(i) + frac*histWidth(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// CountAtOrBelow returns how many observations fall in buckets whose
// upper bound does not exceed ns — the cumulative count used to render
// Prometheus `le` buckets. It is conservative at bucket granularity.
func (h *Hist) CountAtOrBelow(ns float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if ns < 0 {
		return 0
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if histLower(i)+histWidth(i) > ns {
			break
		}
		cum += c
	}
	return cum
}

// HistSummary is the standard percentile digest, all in nanoseconds.
type HistSummary struct {
	Count uint64
	Min   float64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	P999  float64
	Max   float64
}

// Summary digests the histogram into the percentiles every report in
// this repo publishes (p50/p90/p99/p99.9 plus exact min/mean/max).
func (h *Hist) Summary() HistSummary {
	if h == nil || h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.count,
		Min:   h.min,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.max,
	}
}
