package layout_test

import (
	"fmt"

	"packetmill/internal/layout"
)

// ExampleReorder shows the §3.2.2 pass: profile which fields an NF
// touches, then re-pack the struct so the hot ones share the first cache
// line.
func ExampleReorder() {
	l := layout.ClickPacket()
	var prof layout.OrderProfile
	// A router's hot set: lengths and the routing annotation.
	for i := 0; i < 100; i++ {
		prof.Record(layout.FieldDataLen)
		prof.Record(layout.FieldAnnoDstIP)
	}
	prof.Record(layout.FieldTimestamp)

	fmt.Printf("before: anno_dst_ip at offset %d (line %d)\n",
		l.Offset(layout.FieldAnnoDstIP), l.LineOf(layout.FieldAnnoDstIP))
	nl := layout.Reorder(l, &prof, layout.ByAccessCount)
	fmt.Printf("after:  anno_dst_ip at offset %d (line %d)\n",
		nl.Offset(layout.FieldAnnoDstIP), nl.LineOf(layout.FieldAnnoDstIP))
	fmt.Printf("hot lines touched: %d -> %d\n",
		layout.LinesTouched(l, &prof), layout.LinesTouched(nl, &prof))
	// Output:
	// before: anno_dst_ip at offset 76 (line 1)
	// after:  anno_dst_ip at offset 4 (line 0)
	// hot lines touched: 2 -> 1
}
