package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"packetmill/internal/memsim"
)

func TestFieldSizesComplete(t *testing.T) {
	for f := FieldID(0); f < NumFields; f++ {
		if f.Size() == 0 {
			t.Errorf("field %s has zero size", f)
		}
		if f.String() == "" {
			t.Errorf("field %d has no name", f)
		}
	}
}

func TestNewPacksWithAlignment(t *testing.T) {
	l := New("t", []FieldID{FieldAnnoPaint, FieldPktLen, FieldBufAddr})
	if l.Offset(FieldAnnoPaint) != 0 {
		t.Fatalf("paint at %d", l.Offset(FieldAnnoPaint))
	}
	if l.Offset(FieldPktLen)%4 != 0 {
		t.Fatalf("u32 misaligned: %d", l.Offset(FieldPktLen))
	}
	if l.Offset(FieldBufAddr)%8 != 0 {
		t.Fatalf("u64 misaligned: %d", l.Offset(FieldBufAddr))
	}
	if l.Size()%memsim.CacheLineSize != 0 {
		t.Fatalf("size %d not line multiple", l.Size())
	}
}

func TestOffsetsNeverOverlap(t *testing.T) {
	check := func(l *Layout) {
		t.Helper()
		type span struct {
			f      FieldID
			lo, hi uint32
		}
		var spans []span
		for _, f := range l.Fields() {
			lo := l.Offset(f)
			hi := lo + f.Size()
			for _, s := range spans {
				if lo < s.hi && hi > s.lo {
					t.Fatalf("%s: %s [%d,%d) overlaps %s [%d,%d)",
						l.Name(), f, lo, hi, s.f, s.lo, s.hi)
				}
			}
			if hi > l.Size() {
				t.Fatalf("%s: %s extends past struct size", l.Name(), f)
			}
			spans = append(spans, span{f, lo, hi})
		}
	}
	for _, l := range []*Layout{RteMbuf(), ClickPacket(), OverlayPacket(), XchgPacket(), MinimalXchg(), VLIBBuffer()} {
		check(l)
	}
}

func TestCanonicalLayoutShapes(t *testing.T) {
	if got := RteMbuf().Size(); got != 128 {
		t.Errorf("rte_mbuf size = %d, want 128 (two cache lines)", got)
	}
	// RX-hot fields must sit in the first line of rte_mbuf, as in DPDK.
	m := RteMbuf()
	for _, f := range []FieldID{FieldBufAddr, FieldPktLen, FieldDataLen, FieldVlanTCI, FieldRSSHash} {
		if m.LineOf(f) != 0 {
			t.Errorf("rte_mbuf: %s in line %d, want 0", f, m.LineOf(f))
		}
	}
	if m.LineOf(FieldPool) != 1 {
		t.Errorf("rte_mbuf: pool in line %d, want 1", m.LineOf(FieldPool))
	}
	if got := MinimalXchg().Size(); got != 64 {
		t.Errorf("minimal xchg size = %d, want 64 (one line)", got)
	}
	if ov := OverlayPacket(); ov.FixedPrefix() != 128 {
		t.Errorf("overlay prefix = %d", ov.FixedPrefix())
	}
	// Overlay must be strictly fatter than the xchg descriptor.
	if OverlayPacket().Size() <= XchgPacket().Size() {
		t.Error("overlay layout not fatter than xchg layout")
	}
}

func TestDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate field")
		}
	}()
	New("dup", []FieldID{FieldPktLen, FieldPktLen})
}

func TestOffsetPanicsOnMissingField(t *testing.T) {
	l := MinimalXchg()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on absent field")
		}
	}()
	l.Offset(FieldAnnoDstIP)
}

func TestHasAndFields(t *testing.T) {
	l := MinimalXchg()
	if !l.Has(FieldBufAddr) || l.Has(FieldPool) {
		t.Fatal("Has broken")
	}
	fs := l.Fields()
	if len(fs) != 2 || fs[0] != FieldBufAddr || fs[1] != FieldDataLen {
		t.Fatalf("Fields = %v", fs)
	}
}

func TestStringMentionsEveryField(t *testing.T) {
	s := ClickPacket().String()
	for _, f := range ClickPacket().Fields() {
		if !strings.Contains(s, f.String()) {
			t.Errorf("String() missing %s", f)
		}
	}
}

func TestProfileRecordAndHottest(t *testing.T) {
	var p Profile
	for i := 0; i < 10; i++ {
		p.Record(FieldDataLen)
	}
	for i := 0; i < 5; i++ {
		p.Record(FieldAnnoDstIP)
	}
	p.Record(FieldPktLen)
	if p.Total() != 16 {
		t.Fatalf("total = %d", p.Total())
	}
	h := p.Hottest()
	if len(h) != 3 || h[0] != FieldDataLen || h[1] != FieldAnnoDstIP || h[2] != FieldPktLen {
		t.Fatalf("hottest = %v", h)
	}
	p.Reset()
	if p.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestReorderPutsHotFieldsFirst(t *testing.T) {
	l := ClickPacket()
	var p OrderProfile
	// The router's hot set: data pointer, lengths, annotations.
	for i := 0; i < 100; i++ {
		p.Record(FieldAnnoDstIP)
		p.Record(FieldDataLen)
	}
	for i := 0; i < 3; i++ {
		p.Record(FieldTimestamp)
	}
	nl := Reorder(l, &p, ByAccessCount)
	if nl.Offset(FieldAnnoDstIP) >= memsim.CacheLineSize || nl.Offset(FieldDataLen) >= memsim.CacheLineSize {
		t.Fatalf("hot fields not in first line: %s", nl)
	}
	// All original fields must survive.
	for _, f := range l.Fields() {
		if !nl.Has(f) {
			t.Fatalf("reorder dropped %s", f)
		}
	}
	if nl.Size() > l.Size() {
		t.Fatalf("reorder grew the struct: %d > %d", nl.Size(), l.Size())
	}
}

func TestReorderReducesLinesTouched(t *testing.T) {
	l := ClickPacket()
	var p OrderProfile
	// Touch a hot set that the declaration order spreads across lines:
	// anno fields live in line 1+, data_len in line 0.
	for i := 0; i < 50; i++ {
		p.Record(FieldDataLen)
		p.Record(FieldAnnoDstIP)
		p.Record(FieldAnnoVLAN)
		p.Record(FieldAnnoPaint)
	}
	before := LinesTouched(l, &p)
	after := LinesTouched(Reorder(l, &p, ByAccessCount), &p)
	if after > before {
		t.Fatalf("reorder made locality worse: %d -> %d lines", before, after)
	}
	if after != 1 {
		t.Fatalf("4 small hot fields should fit one line, got %d", after)
	}
}

func TestReorderRespectsFixedPrefix(t *testing.T) {
	l := OverlayPacket()
	var p OrderProfile
	for i := 0; i < 10; i++ {
		p.Record(FieldAnnoDstIP)
	}
	nl := Reorder(l, &p, ByAccessCount)
	if nl.FixedPrefix() != 128 {
		t.Fatalf("prefix lost: %d", nl.FixedPrefix())
	}
	if nl.Offset(FieldAnnoDstIP) < 128 {
		t.Fatalf("reorder moved a field into the overlaid rte_mbuf prefix: %s", nl)
	}
}

func TestReorderByFirstAccess(t *testing.T) {
	l := ClickPacket()
	var p OrderProfile
	// First touched: timestamp (once); then data_len many times.
	p.Record(FieldTimestamp)
	for i := 0; i < 99; i++ {
		p.Record(FieldDataLen)
	}
	byCount := Reorder(l, &p, ByAccessCount)
	byOrder := Reorder(l, &p, ByFirstAccess)
	if byCount.Fields()[0] != FieldDataLen {
		t.Fatalf("ByAccessCount first field = %s", byCount.Fields()[0])
	}
	if byOrder.Fields()[0] != FieldTimestamp {
		t.Fatalf("ByFirstAccess first field = %s", byOrder.Fields()[0])
	}
}

func TestReorderDeterministic(t *testing.T) {
	l := ClickPacket()
	var p OrderProfile
	p.Record(FieldDataLen)
	p.Record(FieldPktLen) // tie: both count 1
	a := Reorder(l, &p, ByAccessCount).String()
	b := Reorder(l, &p, ByAccessCount).String()
	if a != b {
		t.Fatal("reorder nondeterministic")
	}
}

func TestReorderPreservesFieldSetProperty(t *testing.T) {
	// Property: for random profiles, Reorder preserves the field set and
	// never overlaps fields.
	l := ClickPacket()
	if err := quick.Check(func(counts [8]uint16) bool {
		var p OrderProfile
		fs := l.Fields()
		for i, c := range counts {
			for j := 0; j < int(c%50); j++ {
				p.Record(fs[i%len(fs)])
			}
		}
		nl := Reorder(l, &p, ByAccessCount)
		if len(nl.Fields()) != len(fs) {
			return false
		}
		for _, f := range fs {
			if !nl.Has(f) {
				return false
			}
		}
		// No overlaps.
		occupied := map[uint32]FieldID{}
		for _, f := range nl.Fields() {
			for b := nl.Offset(f); b < nl.Offset(f)+f.Size(); b++ {
				if _, dup := occupied[b]; dup {
					return false
				}
				occupied[b] = f
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderProfileFirstSeenStable(t *testing.T) {
	var p OrderProfile
	p.Record(FieldPktLen)
	p.Record(FieldDataLen)
	p.Record(FieldPktLen) // re-touch must not change first-seen order
	if p.firstSeen[FieldPktLen] >= p.firstSeen[FieldDataLen] {
		t.Fatal("first-seen ordering wrong")
	}
}
