// Package layout describes packet-metadata structures *as data*: an
// ordered list of fields with sizes, alignments, and byte offsets. Making
// the layout a runtime value is what lets this repository reproduce the
// paper's two central ideas faithfully:
//
//   - The three metadata-management models (Copying, Overlaying, X-Change)
//     are three different layouts placed at different simulated addresses;
//     every element reads and writes metadata *through* the layout, so the
//     cache simulator sees exactly the lines each model touches.
//
//   - PacketMill's LLVM field-reordering pass becomes a transformation on
//     the layout: profile the per-field access counts of a given NF, sort
//     the hot fields into the first cache line(s), and re-run. This is the
//     same GEPI-offset rewrite as the paper's pass, applied to the same
//     kind of object.
package layout

import (
	"fmt"
	"sort"
	"strings"

	"packetmill/internal/memsim"
)

// FieldID names a metadata field. The set is shared across all layouts —
// DPDK's rte_mbuf, FastClick's Packet, BESS's sn_buff, VPP's vlib_buffer,
// and the X-Change custom descriptor each include a subset.
type FieldID int

// The universe of metadata fields.
const (
	// rte_mbuf-style hardware/driver metadata.
	FieldBufAddr FieldID = iota
	FieldDataOff
	FieldRefCnt
	FieldNbSegs
	FieldPort
	FieldOlFlags
	FieldPacketType
	FieldPktLen
	FieldDataLen
	FieldVlanTCI
	FieldRSSHash
	FieldTimestamp
	FieldNext
	FieldPool

	// Framework (Click Packet) header pointers and batching links.
	FieldMacHeader
	FieldNetworkHeader
	FieldTransportHeader
	FieldPrev

	// Packet annotations (the application metadata of §2.2).
	FieldAnnoPaint
	FieldAnnoDstIP
	FieldAnnoVLAN
	FieldAnnoAggregate
	FieldAnnoFlowID
	FieldAnnoExtra

	NumFields
)

var fieldNames = [NumFields]string{
	"buf_addr", "data_off", "refcnt", "nb_segs", "port", "ol_flags",
	"packet_type", "pkt_len", "data_len", "vlan_tci", "rss_hash",
	"timestamp", "next", "pool",
	"mac_header", "network_header", "transport_header", "prev",
	"anno_paint", "anno_dst_ip", "anno_vlan", "anno_aggregate",
	"anno_flow_id", "anno_extra",
}

var fieldSizes = [NumFields]uint32{
	8, 2, 2, 2, 2, 8,
	4, 4, 2, 2, 4,
	8, 8, 8,
	8, 8, 8, 8,
	1, 4, 2, 4,
	4, 16,
}

func (f FieldID) String() string {
	if f >= 0 && f < NumFields {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// Size returns the field's width in bytes.
func (f FieldID) Size() uint32 {
	return fieldSizes[f]
}

// PadTo returns a copy of l whose size is grown to at least size bytes
// (trailing reserved space, e.g. the full 128-B rte_mbuf footprint when
// only the first line's fields are overlaid).
func PadTo(l *Layout, size uint32) *Layout {
	nl := *l
	if size > nl.size {
		nl.size = (size + memsim.CacheLineSize - 1) &^ (memsim.CacheLineSize - 1)
	}
	return &nl
}

// Extend builds a layout that embeds base verbatim (every base field keeps
// its exact offset — an overlay cast in C) and appends extra fields after
// it. The embedded region becomes a fixed prefix: the reorder pass will
// not move fields the driver hardware-writes at known offsets, matching
// the paper's correctness discussion in §3.2.2.
func Extend(base *Layout, name string, extra []FieldID) *Layout {
	nl := newAt(name, extra, base.size, base.size)
	for _, f := range base.order {
		if nl.offsets[f] != -1 {
			panic(fmt.Sprintf("layout %s: field %s in both base and extension", name, f))
		}
		nl.offsets[f] = base.offsets[f]
	}
	nl.order = append(append([]FieldID{}, base.order...), nl.order...)
	return nl
}

// Layout is a concrete placement of a set of fields in a struct.
// The zero value is unusable; build with New.
type Layout struct {
	name    string
	order   []FieldID
	offsets [NumFields]int32 // -1 if absent
	size    uint32
	// fixedPrefix marks layouts whose leading bytes mirror a foreign
	// layout (Overlaying carries the whole rte_mbuf); the reorder pass
	// refuses to move fields inside the prefix, matching the paper's
	// "only the Copying model is reorderable" restriction.
	fixedPrefix uint32
}

// New builds a layout by packing fields in the given order with natural
// alignment (size-aligned, like a C compiler would).
func New(name string, fields []FieldID) *Layout {
	return newAt(name, fields, 0, 0)
}

// NewWithFixedPrefix builds a layout whose first prefix bytes are reserved
// (an overlaid foreign struct); listed fields are packed after it.
func NewWithFixedPrefix(name string, prefix uint32, fields []FieldID) *Layout {
	return newAt(name, fields, prefix, prefix)
}

// NewGrouped builds a layout where each group of fields starts at a fresh
// cache-line boundary — how DPDK splits rte_mbuf into an RX line and a TX
// line (the `RTE_MARKER cacheline1` trick).
func NewGrouped(name string, groups ...[]FieldID) *Layout {
	l := &Layout{name: name}
	for i := range l.offsets {
		l.offsets[i] = -1
	}
	var off uint32
	for gi, g := range groups {
		if gi > 0 {
			// Round up to the next line boundary. If the previous
			// group ended exactly on a boundary that address is
			// already a fresh line.
			off = (off + memsim.CacheLineSize - 1) &^ (memsim.CacheLineSize - 1)
		}
		for _, f := range g {
			if l.offsets[f] != -1 {
				panic(fmt.Sprintf("layout %s: duplicate field %s", name, f))
			}
			sz := fieldSizes[f]
			al := sz
			if al > 8 {
				al = 8
			}
			off = (off + al - 1) &^ (al - 1)
			l.offsets[f] = int32(off)
			off += sz
			l.order = append(l.order, f)
		}
	}
	l.size = (off + memsim.CacheLineSize - 1) &^ (memsim.CacheLineSize - 1)
	if l.size == 0 {
		l.size = memsim.CacheLineSize
	}
	return l
}

func newAt(name string, fields []FieldID, start, fixed uint32) *Layout {
	l := &Layout{name: name, fixedPrefix: fixed}
	for i := range l.offsets {
		l.offsets[i] = -1
	}
	off := start
	for _, f := range fields {
		if f < 0 || f >= NumFields {
			panic(fmt.Sprintf("layout: bad field %d", f))
		}
		if l.offsets[f] != -1 {
			panic(fmt.Sprintf("layout %s: duplicate field %s", name, f))
		}
		sz := fieldSizes[f]
		al := sz
		if al > 8 {
			al = 8
		}
		off = (off + al - 1) &^ (al - 1)
		l.offsets[f] = int32(off)
		off += sz
		l.order = append(l.order, f)
	}
	// Struct size rounds to cache-line multiple: metadata objects are
	// line-aligned in every framework we model.
	l.size = (off + memsim.CacheLineSize - 1) &^ (memsim.CacheLineSize - 1)
	if l.size == 0 {
		l.size = memsim.CacheLineSize
	}
	return l
}

// Name returns the layout's name.
func (l *Layout) Name() string { return l.name }

// Size returns the struct size in bytes (cache-line multiple).
func (l *Layout) Size() uint32 { return l.size }

// Has reports whether the layout contains field f.
func (l *Layout) Has(f FieldID) bool { return l.offsets[f] >= 0 }

// Offset returns the byte offset of f; it panics if the layout lacks f,
// because an element compiled against the wrong layout is a program bug.
func (l *Layout) Offset(f FieldID) uint32 {
	o := l.offsets[f]
	if o < 0 {
		panic(fmt.Sprintf("layout %s: field %s not present", l.name, f))
	}
	return uint32(o)
}

// Fields returns the fields in placement order.
func (l *Layout) Fields() []FieldID {
	out := make([]FieldID, len(l.order))
	copy(out, l.order)
	return out
}

// LineOf returns which cache line (0-based, within the struct) field f
// occupies (its first byte).
func (l *Layout) LineOf(f FieldID) int {
	return int(l.Offset(f)) / memsim.CacheLineSize
}

// FixedPrefix returns the reserved prefix length (0 for reorderable layouts).
func (l *Layout) FixedPrefix() uint32 { return l.fixedPrefix }

// String renders a compact offset map, handy in golden tests and -v logs.
func (l *Layout) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dB", l.name, l.size)
	if l.fixedPrefix > 0 {
		fmt.Fprintf(&b, ", %dB fixed prefix", l.fixedPrefix)
	}
	b.WriteString("):")
	for _, f := range l.order {
		fmt.Fprintf(&b, " %s@%d", f, l.offsets[f])
	}
	return b.String()
}

// Profile accumulates per-field access counts for one NF run. It is the
// input to the reordering pass (the paper's "references done by the NF ...
// sorted by estimated number of accesses").
type Profile struct {
	Counts [NumFields]uint64
}

// Record notes one access to f.
func (p *Profile) Record(f FieldID) { p.Counts[f]++ }

// Reset zeroes the profile.
func (p *Profile) Reset() { p.Counts = [NumFields]uint64{} }

// Total returns the sum of all counts.
func (p *Profile) Total() uint64 {
	var t uint64
	for _, c := range p.Counts {
		t += c
	}
	return t
}

// Hottest returns the profiled fields sorted by descending count,
// ties broken by field order for determinism.
func (p *Profile) Hottest() []FieldID {
	var fs []FieldID
	for f := FieldID(0); f < NumFields; f++ {
		if p.Counts[f] > 0 {
			fs = append(fs, f)
		}
	}
	sort.SliceStable(fs, func(i, j int) bool { return p.Counts[fs[i]] > p.Counts[fs[j]] })
	return fs
}

// SortCriterion selects how the reorder pass ranks fields. The paper's
// implemented pass sorts by access count; sorting by first-access order is
// called out as future work — we provide both so the ablation bench can
// compare them.
type SortCriterion int

const (
	// ByAccessCount places the most-accessed fields first.
	ByAccessCount SortCriterion = iota
	// ByFirstAccess places fields in the order the NF first touched them.
	ByFirstAccess
)

// OrderProfile extends Profile with first-access ordering for the
// ByFirstAccess criterion.
type OrderProfile struct {
	Profile
	firstSeen [NumFields]uint64
	clock     uint64
}

// Record notes one access, remembering first-touch order.
func (p *OrderProfile) Record(f FieldID) {
	p.clock++
	if p.Counts[f] == 0 {
		p.firstSeen[f] = p.clock
	}
	p.Profile.Record(f)
}

// Reorder produces a new layout for l with the same field set, re-packed
// so that hot fields come first. Fields inside a fixed prefix stay where
// they are. Unprofiled fields retain their relative order after the
// profiled ones (they are cold by definition).
func Reorder(l *Layout, p *OrderProfile, crit SortCriterion) *Layout {
	var movable, pinned []FieldID
	for _, f := range l.order {
		if uint32(l.offsets[f]) < l.fixedPrefix && l.fixedPrefix > 0 {
			pinned = append(pinned, f)
		} else {
			movable = append(movable, f)
		}
	}
	sort.SliceStable(movable, func(i, j int) bool {
		a, b := movable[i], movable[j]
		switch crit {
		case ByFirstAccess:
			ca, cb := p.firstSeen[a], p.firstSeen[b]
			// Untouched fields (firstSeen 0) sink to the back.
			if ca == 0 {
				ca = ^uint64(0)
			}
			if cb == 0 {
				cb = ^uint64(0)
			}
			return ca < cb
		default:
			return p.Counts[a] > p.Counts[b]
		}
	})
	name := l.name + "+reordered"
	if l.fixedPrefix > 0 {
		// Rebuild with the pinned prefix intact (placement order preserved,
		// not reversed — Fields()/String() must render identically run to
		// run for the byte-identical-output guarantee).
		nl := newAt(name, movable, l.fixedPrefix, l.fixedPrefix)
		for _, f := range pinned {
			nl.offsets[f] = l.offsets[f]
		}
		nl.order = append(append([]FieldID{}, pinned...), nl.order...)
		return nl
	}
	return New(name, movable)
}

// LinesTouched reports how many distinct cache lines of the layout a
// given access profile touches — the quantity the reorder pass minimizes.
func LinesTouched(l *Layout, p *OrderProfile) int {
	seen := map[int]bool{}
	for f := FieldID(0); f < NumFields; f++ {
		if p.Counts[f] > 0 && l.Has(f) {
			seen[l.LineOf(f)] = true
		}
	}
	return len(seen)
}

// --- canonical layouts ---

// RteMbuf returns the DPDK rte_mbuf layout: two cache lines, with the
// RX-hot fields in the first line, exactly as DPDK lays it out.
func RteMbuf() *Layout {
	return NewGrouped("rte_mbuf",
		// First cache line: RX-path fields.
		[]FieldID{
			FieldBufAddr, FieldDataOff, FieldRefCnt, FieldNbSegs, FieldPort,
			FieldOlFlags, FieldPacketType, FieldPktLen, FieldDataLen,
			FieldVlanTCI, FieldRSSHash, FieldTimestamp,
		},
		// Second cache line: TX/pool fields.
		[]FieldID{FieldNext, FieldPool},
	)
}

// ClickPacket returns FastClick's Packet class layout under the Copying
// model: header pointers and batching links up front (declaration order in
// packet.hh), then the 48-B annotation area. Deliberately *not* sorted by
// heat — that is the reorder pass's job.
func ClickPacket() *Layout {
	return New("click_packet", []FieldID{
		FieldBufAddr, FieldDataOff, FieldPktLen, FieldDataLen,
		FieldMacHeader, FieldNetworkHeader, FieldTransportHeader,
		FieldNext, FieldPrev, FieldTimestamp,
		FieldAnnoPaint, FieldAnnoDstIP, FieldAnnoVLAN,
		FieldAnnoAggregate, FieldAnnoFlowID, FieldAnnoExtra,
	})
}

// rteMbufRxLine returns just the RX (first) cache line of rte_mbuf — the
// fields the receive path writes. Overlay layouts embed this line and
// reserve the full 128-B mbuf footprint; they do not address the TX line.
func rteMbufRxLine() *Layout {
	return New("rte_mbuf_rx", []FieldID{
		FieldBufAddr, FieldDataOff, FieldRefCnt, FieldNbSegs, FieldPort,
		FieldOlFlags, FieldPacketType, FieldPktLen, FieldDataLen,
		FieldVlanTCI, FieldRSSHash, FieldTimestamp,
	})
}

// OverlayPacket returns the Overlaying-model layout: the rte_mbuf is
// embedded verbatim (the framework descriptor *is* a cast of the mbuf,
// with the full 128-B footprint reserved) and the framework's fields
// follow — BESS's sn_buff arrangement. The framework's hot fields (batch
// link, header pointers, routing annotation) are declared first so they
// pack into the line right after the mbuf; the struct stays deliberately
// fat compared to an X-Change descriptor.
func OverlayPacket() *Layout {
	return Extend(PadTo(rteMbufRxLine(), 128), "overlay_packet", []FieldID{
		FieldNext, FieldMacHeader, FieldNetworkHeader,
		FieldAnnoDstIP, FieldAnnoPaint, FieldAnnoVLAN,
		FieldTransportHeader, FieldPrev,
		FieldAnnoAggregate, FieldAnnoFlowID, FieldAnnoExtra,
	})
}

// XchgPacket returns the X-Change custom descriptor: only the fields the
// application actually needs, compact enough for a single cache line.
// The forwarder variant used by l2fwd-xchg is even smaller (see Minimal).
func XchgPacket() *Layout {
	return New("xchg_packet", []FieldID{
		FieldBufAddr, FieldDataLen, FieldPktLen, FieldVlanTCI,
		FieldNext,
		FieldAnnoPaint, FieldAnnoDstIP, FieldAnnoVLAN,
	})
}

// MinimalXchg returns the two-field descriptor of the paper's l2fwd-xchg
// sample (buffer address + packet length).
func MinimalXchg() *Layout {
	return New("xchg_minimal", []FieldID{FieldBufAddr, FieldDataLen})
}

// VLIBBuffer returns VPP's vlib_buffer_t-style layout: the rte_mbuf region
// is overlaid, and the fields VPP actually uses are copy-converted into a
// vector-friendly area after it (Copying+Overlaying, the 2bis arrow in
// Figure 2). The copied fields are distinct FieldIDs from the mbuf ones in
// spirit, but we reuse the anno/extra slots for the converted block.
func VLIBBuffer() *Layout {
	return Extend(PadTo(rteMbufRxLine(), 128), "vlib_buffer", []FieldID{
		FieldNext, FieldMacHeader, FieldNetworkHeader,
		FieldAnnoDstIP, FieldAnnoFlowID, FieldAnnoExtra,
	})
}
