// Package bess is a minimal Berkeley Extensible Software Switch: the
// run-to-completion module pipeline FastClick is compared against in
// Figure 11b. BESS's defining traits for this comparison are (i) the
// Overlaying metadata model — its Packet (né sn_buff) is a cast over the
// rte_mbuf with BESS fields appended — and (ii) a lean, array-based
// module chain with per-batch dispatch (no per-packet virtual calls, none
// of Click's generality tax).
package bess

import (
	"packetmill/internal/dpdk"
	"packetmill/internal/machine"
	"packetmill/internal/netpkt"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
)

// Module is one BESS processing stage. Batches are plain slices (BESS's
// pkt_batch array), processed run-to-completion.
type Module interface {
	Name() string
	// Process filters/transforms the batch in place, returning the kept
	// prefix length.
	Process(core *machine.Core, pkts []*pktbuf.Packet) int
}

// Pipeline is PortInc → modules → PortOut on one PMD port.
type Pipeline struct {
	Port    *dpdk.Port
	Modules []Module

	rx []*pktbuf.Packet
	// GateInstr is the per-module per-batch dispatch overhead (BESS
	// gates are direct calls through an array).
	GateInstr float64
	// PerPktInstr is BESS's per-packet loop overhead per module.
	PerPktInstr float64

	Forwarded uint64
}

// New builds a pipeline over an existing Overlaying-model PMD port.
func New(port *dpdk.Port, mods ...Module) *Pipeline {
	return &Pipeline{
		Port:        port,
		Modules:     mods,
		rx:          make([]*pktbuf.Packet, port.Burst),
		GateInstr:   10,
		PerPktInstr: 8,
	}
}

// Step implements testbed.Engine.
func (pl *Pipeline) Step(core *machine.Core, now float64) int {
	// RX-path pool exhaustion is already accounted in the port's drop
	// counters; only the survivors reach the module chain.
	n, _ := pl.Port.RxBurst(core, now, pl.rx)
	if n == 0 {
		return 0
	}
	kept := pl.rx[:n]
	for _, m := range pl.Modules {
		core.Call(machine.CallDirect, 0)
		core.Compute(pl.GateInstr + pl.PerPktInstr*float64(len(kept)))
		k := m.Process(core, kept)
		kept = kept[:k]
		if len(kept) == 0 {
			break
		}
	}
	sent := 0
	if len(kept) > 0 {
		sent = pl.Port.TxBurst(core, now, kept)
	}
	pl.Forwarded += uint64(sent)
	for i := sent; i < len(kept); i++ {
		pl.Port.Drops.Add(stats.DropTxRingFull, 1)
		if err := pl.Port.Pool.Put(core, kept[i]); err != nil {
			panic(err) // a packet just held by the pipeline cannot double-free
		}
	}
	// Packets dropped by modules were already recycled by the module.
	return n
}

// MACSwap is BESS's canonical forwarding module: swap Ethernet addresses.
type MACSwap struct{}

// Name implements Module.
func (MACSwap) Name() string { return "MACSwap" }

// Process implements Module.
func (MACSwap) Process(core *machine.Core, pkts []*pktbuf.Packet) int {
	for _, p := range pkts {
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Load(core, 0, 12)
			p.Store(core, 0, 12)
			netpkt.SwapEtherAddrs(hdr)
			core.Compute(12)
		}
	}
	return len(pkts)
}

// Update rewrites both MAC addresses with constants (BESS `Update`-style
// fixed-offset writes).
type Update struct {
	Src, Dst netpkt.MAC
}

// Name implements Module.
func (u Update) Name() string { return "Update" }

// Process implements Module.
func (u Update) Process(core *machine.Core, pkts []*pktbuf.Packet) int {
	for _, p := range pkts {
		if p.Len() >= netpkt.EtherHdrLen {
			hdr := p.Store(core, 0, 12)
			copy(hdr[0:6], u.Dst[:])
			copy(hdr[6:12], u.Src[:])
			core.Compute(8)
		}
	}
	return len(pkts)
}
