package bess

import (
	"testing"

	"packetmill/internal/click"
	_ "packetmill/internal/elements"
	"packetmill/internal/netpkt"
	"packetmill/internal/testbed"
)

func runPipeline(t *testing.T, freq float64) *testbed.Result {
	t.Helper()
	res, err := testbed.RunEngines(testbed.Options{
		FreqGHz: freq, Model: click.Overlaying,
		FixedSize: 512, RateGbps: 100, Packets: 6000,
	}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
		return New(d.PortsFor[core][0], Update{
			Src: netpkt.MAC{0x02, 0, 0, 0, 0, 2},
			Dst: netpkt.MAC{0x02, 0, 0, 0, 0, 1},
		}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPipelineForwards(t *testing.T) {
	res := runPipeline(t, 2.3)
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestMACSwapModule(t *testing.T) {
	// Behavioural check via a full run with MACSwap.
	res, err := testbed.RunEngines(testbed.Options{
		FreqGHz: 2.3, Model: click.Overlaying,
		FixedSize: 256, RateGbps: 20, Packets: 3000,
	}, func(d *testbed.DUT, core int) (testbed.Engine, error) {
		return New(d.PortsFor[core][0], MACSwap{}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestBESSFasterThanClickCopying(t *testing.T) {
	// Figure 11b: BESS beats default FastClick (Copying); FastClick-Light
	// (Overlaying) roughly matches BESS.
	bess := runPipeline(t, 1.2)
	fastclick, err := testbed.Run(`
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> EtherRewrite(SRC 02:00:00:00:00:02, DST 02:00:00:00:00:01) -> output;
`, testbed.Options{FreqGHz: 1.2, Model: click.Copying, FixedSize: 512, RateGbps: 100, Packets: 6000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bess=%.2f Mpps fastclick(copying)=%.2f Mpps", bess.Mpps(), fastclick.Mpps())
	if bess.Mpps() <= fastclick.Mpps() {
		t.Fatalf("BESS (%.2f Mpps) not faster than FastClick Copying (%.2f Mpps)",
			bess.Mpps(), fastclick.Mpps())
	}
}
