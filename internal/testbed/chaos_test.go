package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"packetmill/internal/click"
	"packetmill/internal/faults"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/simrand"
	"packetmill/internal/stats"
	"packetmill/internal/trafficgen"
)

// chaosRun is RunGraph with the DUT kept for the post-run leak audit.
func chaosRun(config string, o Options) (*Result, *DUT, error) {
	g, err := click.Parse(config)
	if err != nil {
		return nil, nil, err
	}
	d, err := NewDUT(o)
	if err != nil {
		return nil, nil, err
	}
	routers, err := d.BuildRouters(g)
	if err != nil {
		return nil, nil, err
	}
	engines := make([]Engine, len(routers))
	for i, rt := range routers {
		engines[i] = &clickEngine{rt: rt, core: d.Cores[i]}
	}
	res, err := d.Drive(engines)
	return res, d, err
}

// checkInvariants asserts the two chaos-run invariants: conservation
// (every offered frame left on the wire or is attributed to a drop
// reason) and zero leaked buffers/descriptors in every pool.
func checkInvariants(t *testing.T, res *Result, d *DUT) {
	t.Helper()
	if res.Offered != res.TxWire+res.DropsByReason.Total() {
		t.Fatalf("conservation violated: offered %d != tx %d + drops %d [%s]",
			res.Offered, res.TxWire, res.DropsByReason.Total(), res.DropsByReason.String())
	}
	if err := d.Audit(); err != nil {
		t.Fatalf("leak audit: %v", err)
	}
}

func mustSched(t *testing.T, src string) *faults.Schedule {
	t.Helper()
	s, err := faults.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// smallRings is an adapter config that makes overload faults bite with a
// small packet budget: a 64-buffer RX ring runs out of refills during a
// mempool-depletion window, and a 32-slot TX ring fills behind a slow
// receiver.
func smallRings() *nic.Config {
	cfg := nic.DefaultConfig("chaos")
	cfg.RXRingSize = 64
	cfg.TXRingSize = 32
	return &cfg
}

// TestChaosSurvivesEachFaultKind runs the forwarder under every fault
// type in the taxonomy. The pipeline must complete without panicking,
// conserve packets (rx == tx + Σ drops by reason), and leak nothing —
// and each fault must demonstrably fire.
func TestChaosSurvivesEachFaultKind(t *testing.T) {
	cases := []struct {
		name     string
		model    click.MetadataModel
		sched    string
		nicCfg   *nic.Config
		descPool int
		check    func(t *testing.T, res *Result)
	}{
		{
			name: "drop-iid", model: click.XChange,
			sched: "drop p=0.05",
			check: func(t *testing.T, res *Result) {
				if res.DropsByReason.Get(stats.DropWireFault) == 0 {
					t.Fatal("no wire drops injected")
				}
				if res.FaultStats.WireDrops != res.DropsByReason.Get(stats.DropWireFault) {
					t.Fatalf("engine/harness disagree: %d vs %d",
						res.FaultStats.WireDrops, res.DropsByReason.Get(stats.DropWireFault))
				}
			},
		},
		{
			name: "drop-bursty", model: click.Copying,
			sched: "drop burst=8 every=100",
			check: func(t *testing.T, res *Result) {
				if res.FaultStats.WireDrops == 0 {
					t.Fatal("no bursty drops injected")
				}
			},
		},
		{
			name: "corrupt", model: click.XChange,
			sched: "corrupt p=0.1 bits=4",
			check: func(t *testing.T, res *Result) {
				if res.FaultStats.Corruptions == 0 {
					t.Fatal("no corruptions injected")
				}
			},
		},
		{
			name: "truncate", model: click.Overlaying,
			sched: "truncate p=0.2 min=0",
			check: func(t *testing.T, res *Result) {
				if res.FaultStats.Truncations == 0 {
					t.Fatal("no truncations injected")
				}
				// Cuts below the 60-byte Ethernet minimum must surface as
				// MAC runt drops, not as crashes or silent loss.
				if res.DropsByReason.Get(stats.DropRxRunt) == 0 {
					t.Fatal("no runt drops from truncation")
				}
			},
		},
		{
			name: "flap", model: click.XChange,
			sched: "flap at=5us for=8us",
			check: func(t *testing.T, res *Result) {
				got := res.DropsByReason.Get(stats.DropLinkDown)
				if got == 0 {
					t.Fatal("link flap lost nothing")
				}
				if got != res.FaultStats.LinkDownDrops {
					t.Fatalf("link-down accounting: %d vs %d", got, res.FaultStats.LinkDownDrops)
				}
			},
		},
		{
			name: "rx-stall", model: click.XChange,
			sched: "stall at=5us for=10us",
			check: func(t *testing.T, res *Result) {
				// A stall delays completions but loses nothing by itself;
				// surviving the window with conservation intact is the test.
				if res.TxWire == 0 {
					t.Fatal("nothing forwarded across the stall")
				}
			},
		},
		{
			name: "deplete-desc", model: click.XChange,
			sched: "deplete target=desc at=5us for=10us",
			check: func(t *testing.T, res *Result) {
				if res.DropsByReason.Get(stats.DropPoolExhausted) == 0 {
					t.Fatal("descriptor depletion dropped nothing")
				}
			},
		},
		{
			name: "deplete-mempool", model: click.Copying,
			sched:  "deplete target=mempool at=5us for=10us",
			nicCfg: smallRings(),
			check: func(t *testing.T, res *Result) {
				// With refills gated and a 64-deep ring, arrivals overrun
				// the posted buffers: hardware-drop semantics.
				if res.DropsByReason.Get(stats.DropRxNoBuf) == 0 {
					t.Fatal("mempool depletion dropped nothing")
				}
			},
		},
		{
			name: "slowrx-backpressure", model: click.XChange,
			sched:  "slowrx at=0 factor=50 for=10us",
			nicCfg: smallRings(),
			// Size the exchange pool past the driver queue (ring + backlog)
			// so backpressure — not descriptor exhaustion — is what binds.
			descPool: 512,
			check: func(t *testing.T, res *Result) {
				// The driver-level queue absorbs the full TX ring, then
				// tail-drops with accounting.
				if res.DropsByReason.Get(stats.DropTxRingFull) == 0 {
					t.Fatal("slow receiver produced no tx-ring-full drops")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, d, err := chaosRun(nf.Mirror(0, 32), Options{
				Model:     tc.model,
				Packets:   1500,
				FixedSize: 200,
				RateGbps:  100,
				NICConfig: tc.nicCfg,
				DescPool:  tc.descPool,
				Faults:    mustSched(t, tc.sched),
				Seed:      11,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, res, d)
			if res.FaultStats == nil {
				t.Fatal("faulted run reported no FaultStats")
			}
			tc.check(t, res)
		})
	}
}

// TestCleanRunHasNoFaultResidue: with the fault layer compiled in but no
// schedule set, a run must report no injected faults and no fault-reason
// drops.
func TestCleanRunHasNoFaultResidue(t *testing.T) {
	res, d, err := chaosRun(nf.Mirror(0, 32), Options{
		Model: click.XChange, Packets: 1500, FixedSize: 200, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	if res.FaultStats != nil {
		t.Fatal("clean run reported fault stats")
	}
	for _, r := range []stats.DropReason{stats.DropWireFault, stats.DropLinkDown} {
		if res.DropsByReason.Get(r) != 0 {
			t.Fatalf("clean run counted %s drops", r)
		}
	}
}

// replaySource feeds a recorded (frame, arrival) schedule back into a DUT.
type replaySource struct {
	frames [][]byte
	times  []float64
	i      int
}

func (s *replaySource) Next() ([]byte, float64, bool) {
	if s.i >= len(s.frames) {
		return nil, 0, false
	}
	f, ns := s.frames[s.i], s.times[s.i]
	s.i++
	return f, ns, true
}

func (s *replaySource) Remaining() int { return len(s.frames) - s.i }

// TestFaultedRunMatchesCleanReplay is the equivalence oracle for
// wire-level faults: a faulted run must produce byte-identical output to
// a clean run that is offered exactly the frames that survived injection,
// at the same arrival times. (Only wire faults qualify — stalls,
// depletion, and slow receivers change timing-dependent resource
// behavior, not the offered schedule.)
func TestFaultedRunMatchesCleanReplay(t *testing.T) {
	sched := mustSched(t, "drop p=0.1; corrupt p=0.1 bits=2; truncate p=0.1 min=40; flap at=5us for=3us")
	var frames [][]byte
	var times []float64
	var faultedOut [][]byte
	res, d, err := chaosRun(nf.Mirror(0, 32), Options{
		Model:    click.XChange,
		Packets:  1200,
		RateGbps: 100,
		Faults:   sched,
		Seed:     7,
		RxTap: func(nicID int, frame []byte, ns float64) {
			frames = append(frames, append([]byte(nil), frame...))
			times = append(times, ns)
		},
		Tap: func(frame []byte, departNS float64) {
			faultedOut = append(faultedOut, append([]byte(nil), frame...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res, d)
	if res.FaultStats.WireDrops == 0 || res.FaultStats.Corruptions == 0 {
		t.Fatalf("schedule did not bite: %+v", *res.FaultStats)
	}
	if uint64(len(frames)) != res.Offered-res.FaultStats.WireDrops-res.FaultStats.LinkDownDrops {
		t.Fatalf("RxTap saw %d frames, want offered %d minus %d consumed on the wire",
			len(frames), res.Offered, res.FaultStats.WireDrops+res.FaultStats.LinkDownDrops)
	}

	var replayOut [][]byte
	res2, d2, err := chaosRun(nf.Mirror(0, 32), Options{
		Model:    click.XChange,
		Packets:  1200,
		RateGbps: 100,
		Seed:     7,
		Traffic: func(nicID int, cfg trafficgen.Config) trafficgen.Source {
			return &replaySource{frames: frames, times: times}
		},
		Tap: func(frame []byte, departNS float64) {
			replayOut = append(replayOut, append([]byte(nil), frame...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, res2, d2)
	if len(faultedOut) != len(replayOut) {
		t.Fatalf("output counts differ: faulted %d vs replay %d", len(faultedOut), len(replayOut))
	}
	for i := range faultedOut {
		if !bytes.Equal(faultedOut[i], replayOut[i]) {
			t.Fatalf("output frame %d differs between faulted run and clean replay", i)
		}
	}
}

// TestWatchdogTripsOnWedgedPipeline wedges the datapath — a pathological
// slow receiver behind a tiny TX ring, so the backlog can never drain —
// and checks the watchdog converts the livelock into a *StallError with
// a diagnostic snapshot instead of spinning forever.
func TestWatchdogTripsOnWedgedPipeline(t *testing.T) {
	_, _, err := chaosRun(nf.Mirror(0, 32), Options{
		Model:      click.Copying,
		Packets:    400,
		FixedSize:  64,
		RateGbps:   100,
		NICConfig:  smallRings(),
		Faults:     mustSched(t, "slowrx factor=1000000"),
		WatchdogNS: 1e6, // 1 simulated ms
		Seed:       3,
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if stall.Snapshot == "" {
		t.Fatal("stall error carries no diagnostic snapshot")
	}
	if stall.NowNS-stall.LastProgressNS < 1e6 {
		t.Fatalf("tripped after only %v ns of no progress", stall.NowNS-stall.LastProgressNS)
	}
}

// TestChaosSoak drives randomized fault schedules across seeds and
// metadata models; every run must finish, conserve packets, and leak
// nothing. This is the short-budget soak tier (`go test -run TestChaosSoak`).
func TestChaosSoak(t *testing.T) {
	models := []click.MetadataModel{click.Copying, click.Overlaying, click.XChange}
	r := simrand.New(0xC4405)
	for seed := uint64(1); seed <= 6; seed++ {
		sched := faults.Random(r, 3e4)
		model := models[int(seed)%len(models)]
		name := fmt.Sprintf("seed%d-%v", seed, model)
		t.Run(name, func(t *testing.T) {
			res, d, err := chaosRun(nf.Mirror(0, 32), Options{
				Model:     model,
				Packets:   1200,
				FixedSize: 200,
				RateGbps:  100,
				Faults:    sched,
				Seed:      seed,
				FaultSeed: seed * 977,
			})
			if err != nil {
				t.Fatalf("schedule %q: %v", sched, err)
			}
			checkInvariants(t, res, d)
		})
	}
}
