package testbed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/nf"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/trace"
	"packetmill/internal/wire"
)

// traceRun drives the router config with the flight recorder on and
// returns the exported Chrome trace. When the CI artifact dir is set, a
// watchdog trip dumps the flight recorder there for upload.
func traceRun(seed uint64) ([]byte, error) {
	rec := trace.NewRecorder(trace.Config{SampleEvery: 8, Seed: seed})
	o := Options{
		Model: click.XChange, Cores: 1, NICs: 1, Seed: seed,
		RateGbps: 40, Packets: 4000, Trace: rec,
	}
	if dir := os.Getenv("WIRE_PCAP_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		o.StallTracePath = filepath.Join(dir, fmt.Sprintf("stall-seed%d-trace.json", seed))
	}
	if _, err := Run(nf.Router(32), o); err != nil {
		return nil, err
	}
	return rec.ChromeJSON(), nil
}

// TestTraceDeterministic: the exported trace is a pure function of seed
// and config — byte-identical across repeated runs, byte-identical when
// another run executes concurrently, and different for a different seed.
func TestTraceDeterministic(t *testing.T) {
	a, err := traceRun(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traceRun(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated runs exported different traces (%d vs %d bytes)", len(a), len(b))
	}

	// Two identical runs racing each other: the recorders are per-run and
	// per-core, so concurrency must not leak into the export.
	type out struct {
		raw []byte
		err error
	}
	ch := make(chan out, 2)
	for i := 0; i < 2; i++ {
		go func() {
			raw, err := traceRun(9)
			ch <- out{raw, err}
		}()
	}
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !bytes.Equal(a, o.raw) {
			t.Fatalf("concurrent run %d exported a different trace", i)
		}
	}

	c, err := traceRun(10)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds exported identical traces; sampling is not seeded")
	}

	// The export is valid JSON with the expected event shapes.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		kinds[ev.Ph] = true
	}
	for _, ph := range []string{"X", "i", "M"} {
		if !kinds[ph] {
			t.Errorf("trace has no %q events", ph)
		}
	}
}

// TestWireMetricsScrape serves a mirror NF on a live loopback wire with
// the exporter attached, pushes traffic through, and scrapes /metrics
// and /report afterwards. The exported families must match the golden
// list (testdata/metrics.golden) — dashboards key on those names.
func TestWireMetricsScrape(t *testing.T) {
	const nFrames = 300
	gen, dut, err := wire.Loopback(
		wire.Config{Name: "gen", RXRing: 1024, TXRing: 1024},
		wire.Config{Name: "dut", RXRing: 1024, TXRing: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	defer dut.Close()

	ms, err := trace.NewMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	rec := trace.NewRecorder(trace.Config{SampleEvery: 1, Seed: 7})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		d, _, err := ServeWireGraph(ctx, mustParse(t, nf.Mirror(0, 32)),
			Options{Model: click.Copying, Seed: 7, Telemetry: true,
				Metrics: ms, Trace: rec},
			[]nic.Port{dut}, 300*time.Millisecond, 0)
		if err == nil {
			err = d.Audit()
		}
		serveDone <- err
	}()

	for i := 0; i < nFrames+32; i++ {
		if err := gen.Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); err != nil {
			t.Fatal(err)
		}
	}
	frames := campusFrames(nFrames)
	tx := pktbuf.NewPacket(make([]byte, 2300), 0, 128)
	reap := make([]*pktbuf.Packet, 1)
	for _, frame := range frames {
		tx.Reset(tx.OrigHeadroom())
		tx.SetFrame(frame)
		if !gen.Enqueue(nil, tx, 0) {
			t.Fatal("generator Enqueue refused")
		}
		deadline := time.Now().Add(5 * time.Second)
		for gen.Reap(0, reap) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("generator TX buffer never came back")
			}
			runtime.Gosched()
		}
	}
	// Drain the mirrored frames so the DUT's TX ring empties.
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]nic.Descriptor, 32)
	got := 0
	deadline := time.Now().Add(20 * time.Second)
	for got < nFrames && time.Now().Before(deadline) {
		n := gen.Poll(nil, 0, len(pkts), pkts, descs)
		got += n
		if n == 0 {
			runtime.Gosched()
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("wire serve: %v", err)
	}

	// /metrics: every golden family must be present.
	body := httpGet(t, "http://"+ms.Addr()+"/metrics")
	golden, err := os.ReadFile("testdata/metrics.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strings.Fields(string(golden)) {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics is missing %s", name)
		}
	}
	if !strings.Contains(body, `packetmill_drops_total{reason="tx-ring-full"} `) {
		t.Error("/metrics drop taxonomy is missing the tx-ring-full reason")
	}

	// /report: the same document a -report json run prints.
	var rep struct {
		Schema    string `json:"schema"`
		LatencyUS struct {
			Count uint64 `json:"count"`
		} `json:"latency_us"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+ms.Addr()+"/report")), &rep); err != nil {
		t.Fatalf("/report is not valid JSON: %v", err)
	}
	if rep.Schema == "" {
		t.Error("/report has no schema field")
	}
	if rep.LatencyUS.Count == 0 {
		t.Error("/report latency histogram is empty after a served session")
	}

	// The flight recorder ran on the wall clock and sampled the traffic.
	if rec.Core(0).Sampled() == 0 {
		t.Error("flight recorder sampled nothing on the wire")
	}
	if err := json.Unmarshal(rec.ChromeJSON(), &struct{}{}); err != nil {
		t.Errorf("wire trace is not valid JSON: %v", err)
	}
}

func mustParse(t *testing.T, config string) *click.Graph {
	t.Helper()
	g, err := click.Parse(config)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}
