package testbed

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"packetmill/internal/click"
	"packetmill/internal/mill"
	"packetmill/internal/nic"
	"packetmill/internal/pktbuf"
	"packetmill/internal/stats"
	"packetmill/internal/trafficgen"
	"packetmill/internal/wire"
	"packetmill/internal/wire/pcapio"
)

// TestWireLoopback is the subsystem's end-to-end proof: a recorded
// campus trace goes to a pcap file, comes back as a replay source, and
// is pushed over real datagram sockets through a milled NAT-router
// serving on a live wire port. The captured output must match, packet
// by packet and byte for byte, what the simulated testbed produces for
// the identical input — the sim run is the oracle, which is sound
// because every element in the NAT config is arrival-order
// deterministic.
func TestWireLoopback(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model click.MetadataModel
	}{
		{"Copying", click.Copying},
		{"XChange", click.XChange},
	} {
		t.Run(tc.name, func(t *testing.T) { runWireLoopback(t, tc.model) })
	}
}

func runWireLoopback(t *testing.T, model click.MetadataModel) {
	const nFrames = 200

	// When WIRE_PCAP_DIR is set (the CI job sets it), keep the input
	// pcap there and dump the expected/captured frame sets as pcaps on
	// failure, so the run's captures can be uploaded as artifacts.
	// t.TempDir is destroyed even on failure, so it only serves the
	// passing path.
	var want, got [][]byte
	artifactDir := os.Getenv("WIRE_PCAP_DIR")
	workDir := artifactDir
	if workDir == "" {
		workDir = t.TempDir()
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := strings.ReplaceAll(t.Name(), "/", "_")
	t.Cleanup(func() {
		if !t.Failed() || artifactDir == "" {
			return
		}
		dumpPcap(t, filepath.Join(artifactDir, base+"-expected.pcap"), want)
		dumpPcap(t, filepath.Join(artifactDir, base+"-captured.pcap"), got)
	})

	cfgSrc, err := os.ReadFile("../../configs/nat-router.click")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := mill.NewPlan(string(cfgSrc))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(mill.PacketMill()...); err != nil {
		t.Fatal(err)
	}

	// The workload: a recorded slice of the campus mix, modest rate so
	// the simulated oracle run is lossless.
	gcfg := trafficgen.Config{Seed: 7, Flows: 64, RateGbps: 1, Count: nFrames}
	trace := trafficgen.Record(trafficgen.NewCampus(gcfg), nFrames)

	// Oracle: the same trace through the simulated testbed, tapping
	// every frame that leaves the DUT.
	oracleOpts := Options{
		Model: model, Cores: 1, NICs: 1, Seed: 7,
		RateGbps: 1, Packets: nFrames,
		Traffic: func(int, trafficgen.Config) trafficgen.Source { return trace.Replay(1) },
		Tap: func(frame []byte, _ float64) {
			want = append(want, append([]byte(nil), frame...))
		},
	}
	oracle, err := RunGraph(plan.Graph, oracleOpts)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	// Engine drops (Discard, unresolved ARP) are part of the NF's
	// semantics and replay identically on the wire; any *capacity* drop
	// (ring full, pool exhausted) is timing-dependent and would poison
	// the oracle.
	if capacity := oracle.Dropped - oracle.DropsByReason.Get(stats.DropEngine); capacity != 0 {
		t.Fatalf("oracle run lost %d packets to capacity (%v); the comparison needs a lossless reference",
			capacity, oracle.DropsByReason.Map())
	}
	if len(want) == 0 {
		t.Fatal("oracle run produced no output frames")
	}

	// Trace → pcap file → replay trace: the capture round trip is part
	// of the path under test.
	pcapPath := filepath.Join(workDir, base+"-input.pcap")
	f, err := os.Create(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ToPcap(f, pcapio.WriterOptions{Nanosecond: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := trafficgen.TraceFromPcap(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replay.Len() != nFrames {
		t.Fatalf("pcap round trip lost frames: %d of %d", replay.Len(), nFrames)
	}

	// The wire: generator port and DUT port joined by socketpairs. The
	// DUT ring must hold the whole burst — the generator does not pace.
	gen, dut, err := wire.Loopback(
		wire.Config{Name: "gen", RXRing: 512, TXRing: 512},
		wire.Config{Name: "dut", RXRing: 512, TXRing: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()
	defer dut.Close()

	// The device under test serves in its own goroutine, exiting once
	// the wire has been idle — a separate process in spirit.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	serveDone := make(chan error, 1)
	go func() {
		d, _, err := ServeWireGraph(ctx, plan.Graph,
			Options{Model: model, Seed: 7}, []nic.Port{dut},
			300*time.Millisecond, 0)
		if err == nil {
			err = d.Audit()
		}
		serveDone <- err
	}()

	// Capture side: enough posted buffers for every expected frame.
	for i := 0; i < len(want)+32; i++ {
		if err := gen.Post(pktbuf.NewPacket(make([]byte, 2300), 0, 128)); err != nil {
			t.Fatal(err)
		}
	}

	// Replay the pcap onto the wire, recycling one TX buffer.
	tx := pktbuf.NewPacket(make([]byte, 2300), 0, 128)
	reap := make([]*pktbuf.Packet, 1)
	src := replay.Replay(1)
	for {
		frame, _, ok := src.Next()
		if !ok {
			break
		}
		tx.Reset(tx.OrigHeadroom())
		tx.SetFrame(frame)
		if !gen.Enqueue(nil, tx, 0) {
			t.Fatal("generator Enqueue refused")
		}
		deadline := time.Now().Add(5 * time.Second)
		for gen.Reap(0, reap) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("generator TX buffer never came back")
			}
			runtime.Gosched()
		}
	}

	// Collect the DUT's output until every expected frame arrived.
	pkts := make([]*pktbuf.Packet, 32)
	descs := make([]nic.Descriptor, 32)
	deadline := time.Now().Add(20 * time.Second)
	for len(got) < len(want) && time.Now().Before(deadline) {
		n := gen.Poll(nil, 0, len(pkts), pkts, descs)
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), pkts[i].Bytes()...))
		}
		if n == 0 {
			runtime.Gosched()
		}
	}

	if err := <-serveDone; err != nil {
		t.Fatalf("wire serve: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("captured %d frames, oracle produced %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d differs from the simulated oracle (%d vs %d bytes)",
				i, len(got[i]), len(want[i]))
		}
	}
}

// dumpPcap writes a frame set as a nanosecond pcap (frame index as the
// timestamp) for post-mortem artifact collection; failures to write are
// logged, not fatal — the test has already failed.
func dumpPcap(t *testing.T, path string, frames [][]byte) {
	f, err := os.Create(path)
	if err != nil {
		t.Logf("artifact dump: %v", err)
		return
	}
	defer f.Close()
	w, err := pcapio.NewWriter(f, pcapio.WriterOptions{Nanosecond: true})
	if err != nil {
		t.Logf("artifact dump: %v", err)
		return
	}
	for i, fr := range frames {
		if err := w.WriteFrame(fr, int64(i)); err != nil {
			t.Logf("artifact dump: %v", err)
			return
		}
	}
	if err := w.Flush(); err != nil {
		t.Logf("artifact dump: %v", err)
	}
}
